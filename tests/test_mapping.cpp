// SEI weight mapping: cells-per-weight, port coefficients, effective-value
// extraction in both sign modes, and the dynamic-threshold column.
#include <gtest/gtest.h>

#include <cmath>

#include "core/mapping.hpp"

namespace sei::core {
namespace {

quant::QLayer make_fc_layer(int rows, int cols, float threshold = 0.5f,
                            bool binarize = true) {
  quant::QLayer l;
  l.geom.kind = quant::StageSpec::Kind::Fc;
  l.geom.in_h = 1;
  l.geom.in_w = rows;
  l.geom.in_ch = 1;
  l.geom.out_h = 1;
  l.geom.out_w = 1;
  l.geom.pooled_h = 1;
  l.geom.pooled_w = 1;
  l.geom.rows = rows;
  l.geom.cols = cols;
  l.weight = nn::Tensor({rows, cols});
  l.bias = nn::Tensor({cols});
  l.threshold = threshold;
  l.binarize = binarize;
  return l;
}

TEST(Mapping, CellsPerWeightByMode) {
  HardwareConfig cfg;  // 8-bit weights, 4-bit devices
  cfg.sign_mode = SignMode::kBipolarPort;
  EXPECT_EQ(cfg.cells_per_weight(), 4);  // paper: "4 cells per weight"
  cfg.sign_mode = SignMode::kUnipolarDynThresh;
  EXPECT_EQ(cfg.cells_per_weight(), 2);
  cfg.device.bits = 2;
  EXPECT_EQ(cfg.cells_per_weight(), 4);  // ceil(8/2)
}

TEST(Mapping, PortCoefficientsBipolar) {
  HardwareConfig cfg;
  const auto c = port_coefficients(cfg);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[0], 16.0);   // 2^4 for the high nibble (paper's 2^4·v)
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_DOUBLE_EQ(c[2], -16.0);  // negative polarity lines
  EXPECT_DOUBLE_EQ(c[3], -1.0);
}

TEST(Mapping, PortCoefficientsUnipolar) {
  HardwareConfig cfg;
  cfg.sign_mode = SignMode::kUnipolarDynThresh;
  const auto c = port_coefficients(cfg);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0], 16.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
}

TEST(Mapping, IdealBipolarEffectiveEqualsQuantizedInteger) {
  quant::QLayer l = make_fc_layer(6, 3);
  Rng wr(5);
  for (float& v : l.weight.flat()) v = static_cast<float>(wr.uniform(-1, 1));
  HardwareConfig cfg;  // ideal device
  Rng rng(1);
  MappedLayer m = map_layer(l, cfg, split::natural_order(6), rng);
  const quant::QuantizedMatrix q = quant::quantize_weights(l.weight, 8);
  for (int r = 0; r < 6; ++r)
    for (int c = 0; c < 3; ++c)
      EXPECT_NEAR(m.effective(r, c), static_cast<double>(q.at(r, c)), 1e-9)
          << r << "," << c;
  EXPECT_EQ(m.block_count, 1);
  EXPECT_EQ(m.physical_rows_per_weight, 4);
}

TEST(Mapping, IdealUnipolarEffectiveEqualsQuantizedInteger) {
  // The w* = w + w0 mapping with the dynamic-threshold column must cancel
  // exactly for an ideal device.
  quant::QLayer l = make_fc_layer(5, 2);
  Rng wr(6);
  for (float& v : l.weight.flat()) v = static_cast<float>(wr.uniform(-1, 1));
  HardwareConfig cfg;
  cfg.sign_mode = SignMode::kUnipolarDynThresh;
  Rng rng(2);
  MappedLayer m = map_layer(l, cfg, split::natural_order(5), rng);
  const quant::QuantizedMatrix q = quant::quantize_weights(l.weight, 8);
  for (int r = 0; r < 5; ++r)
    for (int c = 0; c < 2; ++c)
      EXPECT_NEAR(m.effective(r, c), static_cast<double>(q.at(r, c)), 1e-9);
}

TEST(Mapping, ColumnThresholdFoldsBias) {
  quant::QLayer l = make_fc_layer(4, 2, /*threshold=*/0.8f);
  l.weight.at(0, 0) = 1.0f;  // sets the quantization scale
  l.bias.at(0) = 0.3f;
  l.bias.at(1) = -0.1f;
  HardwareConfig cfg;
  Rng rng(3);
  MappedLayer m = map_layer(l, cfg, split::natural_order(4), rng);
  const float s = m.weight_scale;
  EXPECT_NEAR(m.col_threshold[0], (0.8f - 0.3f) / s, 1e-4f);
  EXPECT_NEAR(m.col_threshold[1], (0.8f + 0.1f) / s, 1e-4f);
}

TEST(Mapping, FinalLayerKeepsBias) {
  quant::QLayer l = make_fc_layer(4, 3, 0.0f, /*binarize=*/false);
  l.bias.at(1) = 0.7f;
  HardwareConfig cfg;
  Rng rng(4);
  MappedLayer m = map_layer(l, cfg, split::natural_order(4), rng);
  EXPECT_TRUE(m.col_threshold.empty());
  ASSERT_EQ(m.col_bias.size(), 3u);
  EXPECT_FLOAT_EQ(m.col_bias[1], 0.7f);
}

TEST(Mapping, SplitsAtCrossbarLimit) {
  // 300 logical rows × 4 cells = 1200 physical rows → 3 blocks at 512
  // (the paper's "three 400×64 crossbars").
  quant::QLayer l = make_fc_layer(300, 8);
  HardwareConfig cfg;
  Rng rng(5);
  MappedLayer m = map_layer(l, cfg, split::natural_order(300), rng);
  EXPECT_EQ(m.block_count, 3);
  EXPECT_EQ(m.crossbars, 3);
  EXPECT_EQ(m.partition.blocks[0].size(), 100u);
  EXPECT_EQ(m.vote_threshold, 2);  // majority default
  for (int r = 0; r < 300; ++r) {
    const int b = m.row_to_block[static_cast<std::size_t>(r)];
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 3);
  }
}

TEST(Mapping, BuildBlockCrossbarsGeometry) {
  quant::QLayer l = make_fc_layer(10, 4);
  const quant::QuantizedMatrix q = quant::quantize_weights(l.weight, 8);
  HardwareConfig cfg;
  auto part = split::partition_from_order(split::natural_order(10), 2);
  Rng rng(6);
  auto xbars = build_block_crossbars(q, cfg, part, rng);
  ASSERT_EQ(xbars.size(), 2u);
  EXPECT_EQ(xbars[0].rows(), 20);  // 5 logical rows × 4 cells
  EXPECT_EQ(xbars[0].cols(), 4);
  cfg.sign_mode = SignMode::kUnipolarDynThresh;
  auto xbars_u = build_block_crossbars(q, cfg, part, rng);
  EXPECT_EQ(xbars_u[0].rows(), 10);  // 5 logical rows × 2 cells
  EXPECT_EQ(xbars_u[0].cols(), 5);   // + dynamic-threshold column
}

TEST(Mapping, OppositePolarityCellsStayOff) {
  quant::QLayer l = make_fc_layer(2, 1);
  l.weight.at(0, 0) = 1.0f;   // positive → +127
  l.weight.at(1, 0) = -0.5f;  // negative
  const quant::QuantizedMatrix q = quant::quantize_weights(l.weight, 8);
  HardwareConfig cfg;
  auto part = split::partition_from_order(split::natural_order(2), 1);
  Rng rng(7);
  auto xbars = build_block_crossbars(q, cfg, part, rng);
  const auto& xb = xbars[0];
  // Row 0 (w=+127): negative lines (2,3) off.
  EXPECT_EQ(xb.cell_level(0, 0), 7);
  EXPECT_EQ(xb.cell_level(1, 0), 15);
  EXPECT_EQ(xb.cell_level(2, 0), 0);
  EXPECT_EQ(xb.cell_level(3, 0), 0);
  // Row 1 (w≈−64): positive lines (4,5) off, negative lines loaded.
  EXPECT_EQ(xb.cell_level(4, 0), 0);
  EXPECT_EQ(xb.cell_level(5, 0), 0);
  EXPECT_EQ(xb.cell_level(6, 0) * 16 + xb.cell_level(7, 0), -q.at(1, 0));
}

TEST(Mapping, VariationPerturbsEffectiveValues) {
  quant::QLayer l = make_fc_layer(20, 4);
  Rng wr(8);
  for (float& v : l.weight.flat()) v = static_cast<float>(wr.uniform(-1, 1));
  HardwareConfig cfg;
  cfg.device.program_sigma = 0.1;
  Rng rng(9);
  MappedLayer m = map_layer(l, cfg, split::natural_order(20), rng);
  const quant::QuantizedMatrix q = quant::quantize_weights(l.weight, 8);
  double total_dev = 0.0;
  for (int r = 0; r < 20; ++r)
    for (int c = 0; c < 4; ++c)
      total_dev += std::fabs(m.effective(r, c) - q.at(r, c));
  EXPECT_GT(total_dev, 1.0);
  EXPECT_GT(m.misprogrammed_fraction, 0.0);
}

TEST(Mapping, WideMatricesSplitColumns) {
  // Columns partition freely (disjoint outputs, no merging): a 600-output
  // layer needs two column groups at the 512 limit, and the effective
  // values are still exact for ideal devices.
  quant::QLayer l = make_fc_layer(4, 600);
  Rng wr(12);
  for (float& v : l.weight.flat()) v = static_cast<float>(wr.uniform(-1, 1));
  HardwareConfig cfg;  // max_cols = 512
  EXPECT_EQ(column_blocks(600, cfg), 2);
  Rng rng(10);
  MappedLayer m = map_layer(l, cfg, split::natural_order(4), rng);
  EXPECT_EQ(m.crossbars, 2);
  const quant::QuantizedMatrix q = quant::quantize_weights(l.weight, 8);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 600; ++c)
      EXPECT_NEAR(m.effective(r, c), static_cast<double>(q.at(r, c)), 1e-9);
}

TEST(Mapping, UnipolarColumnBlocksReserveThresholdColumn) {
  HardwareConfig cfg;
  cfg.sign_mode = SignMode::kUnipolarDynThresh;
  // 512 usable columns become 511 (one reserved for the threshold column).
  EXPECT_EQ(column_blocks(511, cfg), 1);
  EXPECT_EQ(column_blocks(512, cfg), 2);
}

TEST(Mapping, DefaultOrderHomogenizesOnlyWhenSplit) {
  HardwareConfig cfg;
  quant::QLayer small = make_fc_layer(10, 2);
  EXPECT_EQ(default_row_order(small, cfg), split::natural_order(10));
  quant::QLayer big = make_fc_layer(300, 2);
  Rng wr(11);
  for (float& v : big.weight.flat()) v = static_cast<float>(wr.uniform(-1, 1));
  const auto order = default_row_order(big, cfg);
  EXPECT_NE(order, split::natural_order(300));
  auto p = split::partition_from_order(order, 3);
  EXPECT_NO_THROW(p.check_valid(300));
}

}  // namespace
}  // namespace sei::core
