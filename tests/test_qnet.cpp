// QNetwork: geometry resolution (Table 2), binary stage evaluation, OR-pool
// equivalence, and consistency with the float network on the first stage.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "quant/qnet.hpp"
#include "workloads/networks.hpp"

namespace sei::quant {
namespace {

TEST(Geometry, Network1MatchesTable2) {
  const auto g = resolve_geometry(workloads::network1().topo);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0].rows, 25);   // weight matrix 1: 25 × 12
  EXPECT_EQ(g[0].cols, 12);
  EXPECT_EQ(g[0].out_h, 24);
  EXPECT_EQ(g[0].pooled_h, 12);
  EXPECT_EQ(g[1].rows, 300);  // weight matrix 2: 300 × 64
  EXPECT_EQ(g[1].cols, 64);
  EXPECT_EQ(g[1].out_h, 8);
  EXPECT_EQ(g[1].pooled_h, 4);
  EXPECT_EQ(g[2].rows, 1024);  // FC 1024 × 10
  EXPECT_EQ(g[2].cols, 10);
}

TEST(Geometry, Network2MatchesTable2) {
  const auto g = resolve_geometry(workloads::network2().topo);
  EXPECT_EQ(g[0].rows, 9);
  EXPECT_EQ(g[0].cols, 4);
  EXPECT_EQ(g[1].rows, 36);
  EXPECT_EQ(g[1].cols, 8);
  EXPECT_EQ(g[2].rows, 200);
  EXPECT_EQ(g[2].cols, 10);
}

TEST(Geometry, Network3MatchesTable2) {
  const auto g = resolve_geometry(workloads::network3().topo);
  EXPECT_EQ(g[0].rows, 9);
  EXPECT_EQ(g[0].cols, 6);
  EXPECT_EQ(g[1].rows, 54);
  EXPECT_EQ(g[1].cols, 12);
  EXPECT_EQ(g[2].rows, 300);
  EXPECT_EQ(g[2].cols, 10);
}

TEST(Geometry, MacsCountPositions) {
  const auto g = resolve_geometry(workloads::network1().topo);
  EXPECT_EQ(g[0].macs(), 24LL * 24 * 25 * 12);
  EXPECT_EQ(g[1].macs(), 8LL * 8 * 300 * 64);
  EXPECT_EQ(g[2].macs(), 1024LL * 10);
}

/// Tiny hand-checkable stage: 2×2 kernel, 1 input channel, 1 kernel.
QLayer tiny_conv_layer(bool pool) {
  QLayer l;
  l.geom.kind = StageSpec::Kind::Conv;
  l.geom.kernel = 2;
  l.geom.in_h = 3;
  l.geom.in_w = 3;
  l.geom.in_ch = 1;
  l.geom.out_h = 2;
  l.geom.out_w = 2;
  l.geom.pool_after = pool;
  l.geom.pooled_h = pool ? 1 : 2;
  l.geom.pooled_w = pool ? 1 : 2;
  l.geom.rows = 4;
  l.geom.cols = 1;
  l.weight = nn::Tensor({4, 1});
  l.weight.at(0, 0) = 1.0f;   // top-left of window
  l.weight.at(3, 0) = -2.0f;  // bottom-right of window
  l.bias = nn::Tensor({1});
  l.bias.at(0) = 0.5f;
  l.threshold = 0.9f;
  return l;
}

TEST(QNet, FloatStageEvaluation) {
  QLayer l = tiny_conv_layer(false);
  // Input: 3×3 ramp 0..8.
  std::vector<float> in(9);
  for (int i = 0; i < 9; ++i) in[static_cast<std::size_t>(i)] = static_cast<float>(i);
  std::vector<float> out;
  eval_stage_float_input(l, in, out);
  ASSERT_EQ(out.size(), 4u);
  // Position (0,0): 1·in[0] − 2·in[4] + 0.5 = 0 − 8 + 0.5 = −7.5.
  EXPECT_FLOAT_EQ(out[0], -7.5f);
  // Position (1,1): 1·in[4] − 2·in[8] + 0.5 = 4 − 16 + 0.5 = −11.5.
  EXPECT_FLOAT_EQ(out[3], -11.5f);
}

TEST(QNet, BinaryStageEvaluation) {
  QLayer l = tiny_conv_layer(false);
  BitMap in(9, 0);
  in[0] = 1;  // only the top-left pixel active
  std::vector<float> out;
  eval_stage_binary_input(l, in, out);
  // Position (0,0): w[0] + bias = 1.5; others see only bias or nothing.
  EXPECT_FLOAT_EQ(out[0], 1.5f);
  EXPECT_FLOAT_EQ(out[1], 0.5f);
}

TEST(QNet, BinarizeThenOrPoolEqualsThresholdOfMax) {
  QLayer l = tiny_conv_layer(true);
  // Pre-threshold sums for the 2×2 output, one channel.
  std::vector<float> sums{0.1f, 0.95f, 0.2f, 0.3f};
  BitMap pooled = binarize_and_pool(l, sums);
  ASSERT_EQ(pooled.size(), 1u);
  EXPECT_EQ(pooled[0], 1);  // max = 0.95 > 0.9

  std::vector<float> low{0.1f, 0.85f, 0.2f, 0.3f};
  EXPECT_EQ(binarize_and_pool(l, low)[0], 0);
}

TEST(QNet, BuildFromFloatNetworkAndPredict) {
  auto wl = workloads::network2();
  nn::Network net = workloads::build_float_network(wl.topo, 7);
  QNetwork q = build_qnetwork(net, wl.topo);
  ASSERT_EQ(q.layers.size(), 3u);
  EXPECT_TRUE(q.layers[0].binarize);
  EXPECT_FALSE(q.layers[2].binarize);

  // First-stage float evaluation must equal the float conv layer exactly.
  Rng rng(3);
  nn::Tensor img({1, 28, 28, 1});
  for (float& v : img.flat())
    v = rng.bernoulli(0.7) ? 0.0f : static_cast<float>(rng.uniform(0, 1));
  nn::Tensor conv_out = net.forward_range(img, 0, 1, false);
  std::vector<float> qnet_out;
  eval_stage_float_input(q.layers[0], {img.data(), img.numel()}, qnet_out);
  ASSERT_EQ(qnet_out.size(), conv_out.numel());
  for (std::size_t i = 0; i < qnet_out.size(); ++i)
    EXPECT_NEAR(qnet_out[i], conv_out[i], 1e-4f);

  // Predict returns a class index and is deterministic.
  const int p1 = q.predict({img.data(), img.numel()});
  const int p2 = q.predict({img.data(), img.numel()});
  EXPECT_EQ(p1, p2);
  EXPECT_GE(p1, 0);
  EXPECT_LT(p1, 10);
}

TEST(QNet, FinalScoresMatchFcSum) {
  auto wl = workloads::network2();
  nn::Network net = workloads::build_float_network(wl.topo, 8);
  QNetwork q = build_qnetwork(net, wl.topo);
  // With thresholds at 0, all positive sums binarize to 1.
  q.layers[0].threshold = 0.0f;
  q.layers[1].threshold = 0.0f;
  nn::Tensor img({1, 28, 28, 1});
  img.fill(0.3f);
  const auto scores = q.final_scores({img.data(), img.numel()});
  ASSERT_EQ(scores.size(), 10u);
  // Rebuild by hand: bits after stage 1 → FC affine.
  BitMap bits = q.binary_activations({img.data(), img.numel()}, 1);
  double expect0 = q.layers[2].bias.at(0);
  for (int r = 0; r < q.layers[2].geom.rows; ++r)
    if (bits[static_cast<std::size_t>(r)])
      expect0 += q.layers[2].weight.at(r, 0);
  EXPECT_NEAR(scores[0], expect0, 1e-3);
}

TEST(Geometry, RejectsBadTopologies) {
  Topology t;
  t.name = "bad";
  EXPECT_THROW(resolve_geometry(t), CheckError);  // empty

  t.stages = {StageSpec{StageSpec::Kind::Conv, 31, 4, false}};
  EXPECT_THROW(resolve_geometry(t), CheckError);  // kernel > input

  StageSpec fc;
  fc.kind = StageSpec::Kind::Fc;
  fc.out_channels = 10;
  fc.pool_after = true;
  t.stages = {fc};
  EXPECT_THROW(resolve_geometry(t), CheckError);  // pool after FC
}

}  // namespace
}  // namespace sei::quant
