// Network composition, training convergence on a small task, and model I/O.
#include <gtest/gtest.h>

#include <filesystem>

#include "data/synthetic_digits.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/maxpool.hpp"
#include "nn/model_io.hpp"
#include "nn/relu.hpp"
#include "nn/trainer.hpp"

namespace sei::nn {
namespace {

Network tiny_net(std::uint64_t seed) {
  Rng rng(seed);
  Network net;
  net.add<Conv2D>(3, 1, 4, rng);
  net.add<ReLU>();
  net.add<MaxPool2x2>();
  net.add<Dense>(13 * 13 * 4, 10, rng);
  return net;
}

TEST(Network, ForwardShapes) {
  Network net = tiny_net(1);
  Tensor in({2, 28, 28, 1});
  Tensor out = net.forward(in);
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 10}));
}

TEST(Network, ForwardRangeComposes) {
  Network net = tiny_net(2);
  Tensor in({1, 28, 28, 1});
  for (std::size_t i = 0; i < in.numel(); ++i)
    in[i] = static_cast<float>(i % 7) / 7.0f;
  Tensor full = net.forward(in);
  Tensor half = net.forward_range(in, 0, 2, false);
  Tensor rest = net.forward_range(half, 2, net.size(), false);
  ASSERT_EQ(full.numel(), rest.numel());
  for (std::size_t i = 0; i < full.numel(); ++i)
    EXPECT_FLOAT_EQ(full[i], rest[i]);
}

TEST(Network, MatrixLayersInOrder) {
  Network net = tiny_net(3);
  auto mats = net.matrix_layers();
  ASSERT_EQ(mats.size(), 2u);
  EXPECT_EQ(mats[0]->matrix_rows(), 9);
  EXPECT_EQ(mats[1]->matrix_rows(), 13 * 13 * 4);
  auto idx = net.matrix_layer_indices();
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 3}));
}

TEST(Network, SliceBatchCopiesRows) {
  Tensor images({4, 2, 2, 1});
  for (std::size_t i = 0; i < images.numel(); ++i)
    images[i] = static_cast<float>(i);
  Tensor slice = Network::slice_batch(images, 1, 3);
  EXPECT_EQ(slice.dim(0), 2);
  EXPECT_FLOAT_EQ(slice[0], 4.0f);
  EXPECT_FLOAT_EQ(slice[7], 11.0f);
}

TEST(Trainer, LearnsTinyTask) {
  data::Dataset train = data::generate_synthetic(800, 42);
  data::Dataset test = data::generate_synthetic(200, 43);
  Network net = tiny_net(4);
  TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 32;
  EpochStats last = Trainer(tc).fit(net, train.images, train.label_span());
  EXPECT_LT(last.train_error_pct, 20.0);
  EXPECT_LT(net.error_rate(test.images, test.label_span()), 40.0);
}

TEST(Trainer, LossDecreasesAcrossEpochs) {
  data::Dataset train = data::generate_synthetic(400, 7);
  Network net = tiny_net(5);
  TrainConfig tc;
  tc.epochs = 3;
  std::vector<double> losses;
  Trainer(tc).fit(net, train.images, train.label_span(),
                  [&](const EpochStats& s) { losses.push_back(s.train_loss); });
  ASSERT_EQ(losses.size(), 3u);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(ModelIo, RoundTripPreservesWeights) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sei_test_model.bin").string();
  Network a = tiny_net(6);
  save_model(a, path);
  Network b = tiny_net(7);  // different init
  load_model(b, path);
  auto pa = a.params(), pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].value->numel(), pb[i].value->numel());
    for (std::size_t j = 0; j < pa[i].value->numel(); ++j)
      EXPECT_FLOAT_EQ((*pa[i].value)[j], (*pb[i].value)[j]);
  }
  std::filesystem::remove(path);
}

TEST(ModelIo, TopologyMismatchThrows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sei_test_model2.bin").string();
  Network a = tiny_net(8);
  save_model(a, path);
  Rng rng(9);
  Network different;
  different.add<Dense>(784, 10, rng);
  EXPECT_THROW(load_model(different, path), CheckError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sei::nn
