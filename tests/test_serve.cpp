// Serving runtime: structured errors, cooperative deadlines, checkpoint
// integrity, canary sentinel, and circuit-breaker trip → repair → close.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <vector>

#include "common/io.hpp"
#include "core/sei_network.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "reliability/repair.hpp"
#include "serve/runtime.hpp"
#include "workloads/networks.hpp"

namespace sei {
namespace {

/// Small trained + quantized network2 shared across tests.
struct Fixture {
  workloads::Workload wl = workloads::network2();
  data::Dataset train = data::generate_synthetic(800, 81);
  data::Dataset test = data::generate_synthetic(240, 82);
  quant::QNetwork qnet;

  Fixture() {
    nn::Network net = workloads::build_float_network(wl.topo, 52);
    nn::TrainConfig tc;
    tc.epochs = 2;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 300;
    sc.step = 0.05;
    qnet = quant::quantize_network(net, wl.topo, train, sc).qnet;
  }

  std::span<const float> image(int i) const {
    const std::size_t per_image =
        test.images.numel() / static_cast<std::size_t>(test.size());
    const int k = i % test.size();
    return {test.images.data() + static_cast<std::size_t>(k) * per_image,
            per_image};
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Runtime config that never probes or trips — for pure serving tests.
serve::RuntimeConfig quiet_config() {
  serve::RuntimeConfig rc;
  rc.sentinel.probe_every = 1 << 20;
  rc.breaker.trip_drop_pct = 1000.0;
  return rc;
}

TEST(TryPredict, CancelledTokenYieldsStructuredError) {
  Fixture& f = fixture();
  core::SeiNetwork hw(f.qnet, core::HardwareConfig{});
  core::EvalContext ctx;
  exec::CancelToken token;
  token.cancel();
  ctx.cancel = &token;
  const Result<int> res = hw.try_predict(f.image(0), ctx, 0);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.code(), ErrorCode::kCancelled);
}

TEST(TryPredict, ExpiredDeadlineYieldsDeadlineExceeded) {
  Fixture& f = fixture();
  core::SeiNetwork hw(f.qnet, core::HardwareConfig{});
  core::EvalContext ctx;
  exec::CancelToken token;
  token.set_deadline(exec::CancelToken::Clock::now() -
                     std::chrono::milliseconds(1));
  ctx.cancel = &token;
  const Result<int> res = hw.try_predict(f.image(0), ctx, 0);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.code(), ErrorCode::kDeadlineExceeded);
}

TEST(TryPredict, CompletedPredictionBitIdenticalWithToken) {
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.05;
  core::SeiNetwork hw(f.qnet, cfg);
  core::EvalContext ctx;
  exec::CancelToken token;  // armed far in the future: never fires
  token.set_deadline_after(std::chrono::hours(1));
  for (int i = 0; i < 20; ++i) {
    const int plain = hw.predict(f.image(i), ctx, i);
    ctx.cancel = &token;
    const Result<int> tokened = hw.try_predict(f.image(i), ctx, i);
    ctx.cancel = nullptr;
    ASSERT_TRUE(tokened.ok());
    EXPECT_EQ(tokened.value(), plain) << "image " << i;
  }
}

TEST(Checkpoint, RoundTripRestoresExactState) {
  Fixture& f = fixture();
  const std::string path = tmp_path("sei_ckpt_roundtrip.bin");
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.02;
  core::SeiNetwork a(f.qnet, cfg);
  // Mutate post-construction state the way serving does (threshold trims).
  for (int s = 0; s < a.stage_count(); ++s)
    for (float& t : a.layer(s).col_threshold) t *= 1.05f;
  serve::RuntimeSnapshot snap;
  snap.next_sequence = 123;
  snap.requests_served = 130;
  snap.checkpoint_epoch = 7;
  snap.probe_cursor = 9;
  ASSERT_TRUE(serve::save_checkpoint(a, snap, path).ok());

  core::SeiNetwork b(f.qnet, cfg);
  const Result<serve::RuntimeSnapshot> loaded = serve::load_checkpoint(b, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().next_sequence, 123u);
  EXPECT_EQ(loaded.value().requests_served, 130u);
  EXPECT_EQ(loaded.value().checkpoint_epoch, 7u);
  EXPECT_EQ(loaded.value().probe_cursor, 9u);
  for (int s = 0; s < a.stage_count(); ++s) {
    EXPECT_EQ(b.layer(s).eff, a.layer(s).eff) << "stage " << s;
    EXPECT_EQ(b.layer(s).col_threshold, a.layer(s).col_threshold);
    EXPECT_EQ(b.layer(s).row_to_block, a.layer(s).row_to_block);
  }
  core::EvalContext ca, cb;
  for (int i = 0; i < 30; ++i)
    EXPECT_EQ(b.predict(f.image(i), cb, 1000 + i),
              a.predict(f.image(i), ca, 1000 + i));
  std::filesystem::remove(path);
}

TEST(Checkpoint, CorruptAndTruncatedFilesAreRejected) {
  Fixture& f = fixture();
  const std::string path = tmp_path("sei_ckpt_corrupt.bin");
  core::SeiNetwork net(f.qnet, core::HardwareConfig{});
  serve::RuntimeSnapshot snap;
  ASSERT_TRUE(serve::save_checkpoint(net, snap, path).ok());

  // Bit flip inside the payload → CRC mismatch → kCorrupt.
  {
    std::fstream fs(path, std::ios::in | std::ios::out | std::ios::binary);
    fs.seekp(64);
    const char b = 0x7f;
    fs.write(&b, 1);
  }
  Result<serve::RuntimeSnapshot> r = serve::load_checkpoint(net, path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kCorrupt);

  // Truncation (torn write without the rename barrier) → kCorrupt.
  ASSERT_TRUE(serve::save_checkpoint(net, snap, path).ok());
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  r = serve::load_checkpoint(net, path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kCorrupt);

  // Missing file → kIo ("cold start", not corruption).
  std::filesystem::remove(path);
  r = serve::load_checkpoint(net, path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kIo);
}

TEST(Checkpoint, StrayTmpFromKilledWriterIsIgnored) {
  // A process killed mid-write leaves <path>.tmp; the durable file at
  // <path> must still load, and the next save must replace the leftovers.
  Fixture& f = fixture();
  const std::string path = tmp_path("sei_ckpt_straytmp.bin");
  core::SeiNetwork net(f.qnet, core::HardwareConfig{});
  serve::RuntimeSnapshot snap;
  snap.next_sequence = 55;
  ASSERT_TRUE(serve::save_checkpoint(net, snap, path).ok());
  {
    std::ofstream garbage(path + ".tmp", std::ios::binary);
    garbage << "partial checkpoint cut off by kill -9";
  }
  const Result<serve::RuntimeSnapshot> r = serve::load_checkpoint(net, path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().next_sequence, 55u);
  ASSERT_TRUE(serve::save_checkpoint(net, snap, path).ok());
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(Runtime, ServedLabelsMatchDirectPredictions) {
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.03;
  core::SeiNetwork served(f.qnet, cfg);
  core::SeiNetwork reference(f.qnet, cfg);  // identical twin

  serve::ServingRuntime rt(served, f.qnet, f.test, f.train, quiet_config());
  rt.start();
  std::vector<std::future<serve::Response>> futs;
  const int n = 60;
  futs.reserve(n);
  for (int i = 0; i < n; ++i) futs.push_back(rt.submit(f.image(i)));
  core::EvalContext ctx;
  for (int i = 0; i < n; ++i) {
    const serve::Response r = futs[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.status, serve::ResponseStatus::kOk) << "request " << i;
    EXPECT_EQ(r.sequence, static_cast<std::uint64_t>(i));
    EXPECT_EQ(r.label, reference.predict(f.image(i), ctx, i));
  }
  rt.stop();
  const serve::RuntimeStats st = rt.stats();
  EXPECT_EQ(st.ok, static_cast<std::uint64_t>(n));
  EXPECT_EQ(st.rejected, 0u);
}

TEST(Runtime, RejectsWhenNotAccepting) {
  Fixture& f = fixture();
  core::SeiNetwork net(f.qnet, core::HardwareConfig{});
  serve::ServingRuntime rt(net, f.qnet, f.test, f.train, quiet_config());
  // Not started yet.
  serve::Response r = rt.submit(f.image(0)).get();
  EXPECT_EQ(r.status, serve::ResponseStatus::kRejected);
  EXPECT_EQ(r.error, ErrorCode::kUnavailable);
  rt.start();
  EXPECT_EQ(rt.submit(f.image(0)).get().status, serve::ResponseStatus::kOk);
  rt.stop();
  r = rt.submit(f.image(0)).get();
  EXPECT_EQ(r.status, serve::ResponseStatus::kRejected);
  EXPECT_EQ(r.error, ErrorCode::kUnavailable);
}

TEST(Runtime, ExpiredDeadlineIsRejectedNotServed) {
  Fixture& f = fixture();
  core::SeiNetwork net(f.qnet, core::HardwareConfig{});
  serve::RuntimeConfig rc = quiet_config();
  rc.queue_capacity = 512;
  serve::ServingRuntime rt(net, f.qnet, f.test, f.train, rc);
  rt.start();
  // Pile plain requests in front so the 1 ms deadline has long passed by
  // the time the worker pops the deadlined request off the queue.
  std::vector<std::future<serve::Response>> fillers;
  for (int i = 0; i < 200; ++i) fillers.push_back(rt.submit(f.image(i)));
  const serve::Response r =
      rt.submit(f.image(0), std::chrono::milliseconds(1)).get();
  rt.stop();
  EXPECT_EQ(r.status, serve::ResponseStatus::kRejected);
  EXPECT_EQ(r.error, ErrorCode::kDeadlineExceeded);
  EXPECT_GE(rt.stats().deadline_misses, 1u);
  for (auto& fu : fillers)
    EXPECT_EQ(fu.get().status, serve::ResponseStatus::kOk);
}

TEST(Runtime, BreakerTripsRepairsAndRecovers) {
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  cfg.spare_row_fraction = 0.2;
  core::SeiNetwork net(
      f.qnet, cfg,
      reliability::make_repair_hook(reliability::RepairConfig{}, nullptr));

  serve::RuntimeConfig rc;
  rc.sentinel.probe_every = 2;
  rc.sentinel.probe_count = 48;
  rc.sentinel.window = 24;
  rc.sentinel.min_probes = 12;
  rc.breaker.max_retries = 1;
  rc.breaker.retry_backoff_ms = 1;
  // Pin recalibration to the nominal thresholds: on this weak fixture
  // (baseline ~75%) a trim that gains on the train-set batch routinely
  // loses on the 48 test probes, which would mask the repair result.
  // Trim benefits on a realistic network are covered by the CI soak run.
  rc.calibration.max_images = 240;
  rc.calibration.gamma_min = 1.0;
  rc.calibration.gamma_max = 1.0;
  rc.calibration.gamma_step = 0.1;
  rc.queue_capacity = 512;  // all 400 requests admitted; stop() drains
  serve::ServingRuntime rt(net, f.qnet, f.test, f.train, rc);

  const std::uint64_t fault_at = 60;
  serve::FaultSchedule sched;
  sched.events.push_back({fault_at, -1, 0.10, 1.0});
  rt.set_fault_schedule(sched);

  rt.start();
  const double baseline = rt.sentinel_baseline_pct();
  std::vector<std::future<serve::Response>> futs;
  for (int i = 0; i < 400; ++i) futs.push_back(rt.submit(f.image(i)));
  for (auto& fu : futs) fu.get();
  rt.stop();

  ASSERT_GE(rt.stats().breaker_trips, 1);
  // The first recovery at/after the fault (earlier ones are transient
  // sentinel-noise trips that tier-0 re-measure closes).
  const std::vector<serve::RecoveryRecord> recs = rt.recoveries();
  const serve::RecoveryRecord* rec = nullptr;
  for (const serve::RecoveryRecord& rr : recs)
    if (rr.tripped_at_served >= fault_at && rec == nullptr) rec = &rr;
  ASSERT_NE(rec, nullptr) << "breaker never tripped on the injected fault";
  // Detection: tripped within 200 served requests of the fault.
  EXPECT_LE(rec->tripped_at_served, fault_at + 200);
  // Recovery: SEI path restored without a restart, within 2 points.
  EXPECT_TRUE(rec->closed);
  EXPECT_GE(rec->acc_after_pct, baseline - 2.0);
  EXPECT_EQ(rt.breaker_state(), serve::BreakerState::kClosed);
}

}  // namespace
}  // namespace sei
