// Serving runtime: structured errors, cooperative deadlines, checkpoint
// integrity, canary sentinel, and circuit-breaker trip → repair → close.
// Fleet layer: weighted-fair admission, micro-batch deadline drops,
// checkpoint retry, replica failover, and crash-resume replay determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/io.hpp"
#include "core/adc_network.hpp"
#include "core/sei_network.hpp"
#include "data/synthetic_digits.hpp"
#include "exec/thread_pool.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "reliability/repair.hpp"
#include "serve/fleet.hpp"
#include "serve/runtime.hpp"
#include "workloads/networks.hpp"

namespace sei {
namespace {

/// Small trained + quantized network2 shared across tests.
struct Fixture {
  workloads::Workload wl = workloads::network2();
  data::Dataset train = data::generate_synthetic(800, 81);
  data::Dataset test = data::generate_synthetic(240, 82);
  quant::QNetwork qnet;

  Fixture() {
    nn::Network net = workloads::build_float_network(wl.topo, 52);
    nn::TrainConfig tc;
    tc.epochs = 2;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 300;
    sc.step = 0.05;
    qnet = quant::quantize_network(net, wl.topo, train, sc).qnet;
  }

  std::span<const float> image(int i) const {
    const std::size_t per_image =
        test.images.numel() / static_cast<std::size_t>(test.size());
    const int k = i % test.size();
    return {test.images.data() + static_cast<std::size_t>(k) * per_image,
            per_image};
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Runtime config that never probes or trips — for pure serving tests.
serve::RuntimeConfig quiet_config() {
  serve::RuntimeConfig rc;
  rc.sentinel.probe_every = 1 << 20;
  rc.breaker.trip_drop_pct = 1000.0;
  return rc;
}

TEST(TryPredict, CancelledTokenYieldsStructuredError) {
  Fixture& f = fixture();
  core::SeiNetwork hw(f.qnet, core::HardwareConfig{});
  core::EvalContext ctx;
  exec::CancelToken token;
  token.cancel();
  ctx.cancel = &token;
  const Result<int> res = hw.try_predict(f.image(0), ctx, 0);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.code(), ErrorCode::kCancelled);
}

TEST(TryPredict, ExpiredDeadlineYieldsDeadlineExceeded) {
  Fixture& f = fixture();
  core::SeiNetwork hw(f.qnet, core::HardwareConfig{});
  core::EvalContext ctx;
  exec::CancelToken token;
  token.set_deadline(exec::CancelToken::Clock::now() -
                     std::chrono::milliseconds(1));
  ctx.cancel = &token;
  const Result<int> res = hw.try_predict(f.image(0), ctx, 0);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.code(), ErrorCode::kDeadlineExceeded);
}

TEST(TryPredict, CompletedPredictionBitIdenticalWithToken) {
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.05;
  core::SeiNetwork hw(f.qnet, cfg);
  core::EvalContext ctx;
  exec::CancelToken token;  // armed far in the future: never fires
  token.set_deadline_after(std::chrono::hours(1));
  for (int i = 0; i < 20; ++i) {
    const int plain = hw.predict(f.image(i), ctx, i);
    ctx.cancel = &token;
    const Result<int> tokened = hw.try_predict(f.image(i), ctx, i);
    ctx.cancel = nullptr;
    ASSERT_TRUE(tokened.ok());
    EXPECT_EQ(tokened.value(), plain) << "image " << i;
  }
}

TEST(Checkpoint, RoundTripRestoresExactState) {
  Fixture& f = fixture();
  const std::string path = tmp_path("sei_ckpt_roundtrip.bin");
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.02;
  core::SeiNetwork a(f.qnet, cfg);
  // Mutate post-construction state the way serving does (threshold trims).
  for (int s = 0; s < a.stage_count(); ++s)
    for (float& t : a.layer(s).col_threshold) t *= 1.05f;
  serve::RuntimeSnapshot snap;
  snap.next_sequence = 123;
  snap.requests_served = 130;
  snap.checkpoint_epoch = 7;
  snap.probe_cursor = 9;
  ASSERT_TRUE(serve::save_checkpoint(a, snap, path).ok());

  core::SeiNetwork b(f.qnet, cfg);
  const Result<serve::RuntimeSnapshot> loaded = serve::load_checkpoint(b, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().next_sequence, 123u);
  EXPECT_EQ(loaded.value().requests_served, 130u);
  EXPECT_EQ(loaded.value().checkpoint_epoch, 7u);
  EXPECT_EQ(loaded.value().probe_cursor, 9u);
  for (int s = 0; s < a.stage_count(); ++s) {
    EXPECT_EQ(b.layer(s).eff, a.layer(s).eff) << "stage " << s;
    EXPECT_EQ(b.layer(s).col_threshold, a.layer(s).col_threshold);
    EXPECT_EQ(b.layer(s).row_to_block, a.layer(s).row_to_block);
  }
  core::EvalContext ca, cb;
  for (int i = 0; i < 30; ++i)
    EXPECT_EQ(b.predict(f.image(i), cb, 1000 + i),
              a.predict(f.image(i), ca, 1000 + i));
  std::filesystem::remove(path);
}

TEST(Checkpoint, CorruptAndTruncatedFilesAreRejected) {
  Fixture& f = fixture();
  const std::string path = tmp_path("sei_ckpt_corrupt.bin");
  core::SeiNetwork net(f.qnet, core::HardwareConfig{});
  serve::RuntimeSnapshot snap;
  ASSERT_TRUE(serve::save_checkpoint(net, snap, path).ok());

  // Bit flip inside the payload → CRC mismatch → kCorrupt.
  {
    std::fstream fs(path, std::ios::in | std::ios::out | std::ios::binary);
    fs.seekp(64);
    const char b = 0x7f;
    fs.write(&b, 1);
  }
  Result<serve::RuntimeSnapshot> r = serve::load_checkpoint(net, path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kCorrupt);

  // Truncation (torn write without the rename barrier) → kCorrupt.
  ASSERT_TRUE(serve::save_checkpoint(net, snap, path).ok());
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  r = serve::load_checkpoint(net, path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kCorrupt);

  // Missing file → kIo ("cold start", not corruption).
  std::filesystem::remove(path);
  r = serve::load_checkpoint(net, path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kIo);
}

TEST(Checkpoint, StrayTmpFromKilledWriterIsIgnored) {
  // A process killed mid-write leaves <path>.tmp; the durable file at
  // <path> must still load, and the next save must replace the leftovers.
  Fixture& f = fixture();
  const std::string path = tmp_path("sei_ckpt_straytmp.bin");
  core::SeiNetwork net(f.qnet, core::HardwareConfig{});
  serve::RuntimeSnapshot snap;
  snap.next_sequence = 55;
  ASSERT_TRUE(serve::save_checkpoint(net, snap, path).ok());
  {
    std::ofstream garbage(path + ".tmp", std::ios::binary);
    garbage << "partial checkpoint cut off by kill -9";
  }
  const Result<serve::RuntimeSnapshot> r = serve::load_checkpoint(net, path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().next_sequence, 55u);
  ASSERT_TRUE(serve::save_checkpoint(net, snap, path).ok());
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(Runtime, ServedLabelsMatchDirectPredictions) {
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.03;
  core::SeiNetwork served(f.qnet, cfg);
  core::SeiNetwork reference(f.qnet, cfg);  // identical twin

  serve::ServingRuntime rt(served, f.qnet, f.test, f.train, quiet_config());
  rt.start();
  std::vector<std::future<serve::Response>> futs;
  const int n = 60;
  futs.reserve(n);
  for (int i = 0; i < n; ++i) futs.push_back(rt.submit(f.image(i)));
  core::EvalContext ctx;
  for (int i = 0; i < n; ++i) {
    const serve::Response r = futs[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.status, serve::ResponseStatus::kOk) << "request " << i;
    EXPECT_EQ(r.sequence, static_cast<std::uint64_t>(i));
    EXPECT_EQ(r.label, reference.predict(f.image(i), ctx, i));
  }
  rt.stop();
  const serve::RuntimeStats st = rt.stats();
  EXPECT_EQ(st.ok, static_cast<std::uint64_t>(n));
  EXPECT_EQ(st.rejected, 0u);
}

TEST(Runtime, RejectsWhenNotAccepting) {
  Fixture& f = fixture();
  core::SeiNetwork net(f.qnet, core::HardwareConfig{});
  serve::ServingRuntime rt(net, f.qnet, f.test, f.train, quiet_config());
  // Not started yet.
  serve::Response r = rt.submit(f.image(0)).get();
  EXPECT_EQ(r.status, serve::ResponseStatus::kRejected);
  EXPECT_EQ(r.error, ErrorCode::kUnavailable);
  rt.start();
  EXPECT_EQ(rt.submit(f.image(0)).get().status, serve::ResponseStatus::kOk);
  rt.stop();
  r = rt.submit(f.image(0)).get();
  EXPECT_EQ(r.status, serve::ResponseStatus::kRejected);
  EXPECT_EQ(r.error, ErrorCode::kUnavailable);
}

TEST(Runtime, ExpiredDeadlineIsRejectedNotServed) {
  Fixture& f = fixture();
  core::SeiNetwork net(f.qnet, core::HardwareConfig{});
  serve::RuntimeConfig rc = quiet_config();
  rc.queue_capacity = 512;
  serve::ServingRuntime rt(net, f.qnet, f.test, f.train, rc);
  rt.start();
  // Pile plain requests in front so the 1 ms deadline has long passed by
  // the time the worker pops the deadlined request off the queue.
  std::vector<std::future<serve::Response>> fillers;
  for (int i = 0; i < 200; ++i) fillers.push_back(rt.submit(f.image(i)));
  const serve::Response r =
      rt.submit(f.image(0), std::chrono::milliseconds(1)).get();
  rt.stop();
  EXPECT_EQ(r.status, serve::ResponseStatus::kRejected);
  EXPECT_EQ(r.error, ErrorCode::kDeadlineExceeded);
  EXPECT_GE(rt.stats().deadline_misses, 1u);
  for (auto& fu : fillers)
    EXPECT_EQ(fu.get().status, serve::ResponseStatus::kOk);
}

TEST(Runtime, BreakerTripsRepairsAndRecovers) {
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  cfg.spare_row_fraction = 0.2;
  core::SeiNetwork net(
      f.qnet, cfg,
      reliability::make_repair_hook(reliability::RepairConfig{}, nullptr));

  serve::RuntimeConfig rc;
  rc.sentinel.probe_every = 2;
  rc.sentinel.probe_count = 48;
  rc.sentinel.window = 24;
  rc.sentinel.min_probes = 12;
  rc.breaker.max_retries = 1;
  rc.breaker.retry_backoff_ms = 1;
  // Pin recalibration to the nominal thresholds: on this weak fixture
  // (baseline ~75%) a trim that gains on the train-set batch routinely
  // loses on the 48 test probes, which would mask the repair result.
  // Trim benefits on a realistic network are covered by the CI soak run.
  rc.calibration.max_images = 240;
  rc.calibration.gamma_min = 1.0;
  rc.calibration.gamma_max = 1.0;
  rc.calibration.gamma_step = 0.1;
  rc.queue_capacity = 512;  // all 400 requests admitted; stop() drains
  serve::ServingRuntime rt(net, f.qnet, f.test, f.train, rc);

  const std::uint64_t fault_at = 60;
  serve::FaultSchedule sched;
  sched.events.push_back({fault_at, -1, 0.10, 1.0});
  rt.set_fault_schedule(sched);

  rt.start();
  const double baseline = rt.sentinel_baseline_pct();
  std::vector<std::future<serve::Response>> futs;
  for (int i = 0; i < 400; ++i) futs.push_back(rt.submit(f.image(i)));
  for (auto& fu : futs) fu.get();
  rt.stop();

  ASSERT_GE(rt.stats().breaker_trips, 1);
  // The first recovery at/after the fault (earlier ones are transient
  // sentinel-noise trips that tier-0 re-measure closes).
  const std::vector<serve::RecoveryRecord> recs = rt.recoveries();
  const serve::RecoveryRecord* rec = nullptr;
  for (const serve::RecoveryRecord& rr : recs)
    if (rr.tripped_at_served >= fault_at && rec == nullptr) rec = &rr;
  ASSERT_NE(rec, nullptr) << "breaker never tripped on the injected fault";
  // Detection: tripped within 200 served requests of the fault.
  EXPECT_LE(rec->tripped_at_served, fault_at + 200);
  // Recovery: SEI path restored without a restart, within 2 points.
  EXPECT_TRUE(rec->closed);
  EXPECT_GE(rec->acc_after_pct, baseline - 2.0);
  EXPECT_EQ(rt.breaker_state(), serve::BreakerState::kClosed);
}

// ---------------------------------------------------------------------------
// Weighted-fair admission policy (pure, single-threaded core).

std::unique_ptr<serve::FleetRequest> make_request(int tenant) {
  auto req = std::make_unique<serve::FleetRequest>();
  req->tenant = tenant;
  req->enqueued = std::chrono::steady_clock::now();
  return req;
}

TEST(Admission, StridePopOrderFollowsWeights) {
  serve::AdmissionController adm(serve::parse_tenant_specs("A:2,B:1"));
  for (int i = 0; i < 8; ++i) {
    auto a = make_request(0);
    auto b = make_request(1);
    EXPECT_FALSE(adm.try_admit(a).has_value());
    EXPECT_FALSE(adm.try_admit(b).has_value());
  }
  // Over any saturated window the pop ratio is the weight ratio 2:1.
  int a_pops = 0, b_pops = 0;
  for (int i = 0; i < 9; ++i) {
    auto req = adm.pop_next();
    ASSERT_NE(req, nullptr);
    (req->tenant == 0 ? a_pops : b_pops)++;
    // The promise is never fulfilled in this policy-only test; silence the
    // broken-promise exception by satisfying it here.
    req->promise.set_value(serve::FleetResponse{});
  }
  EXPECT_EQ(a_pops, 6);
  EXPECT_EQ(b_pops, 3);
}

TEST(Admission, QueueBoundRejectsWithQueueFull) {
  std::vector<serve::TenantConfig> tenants = serve::parse_tenant_specs("A:1");
  tenants[0].queue_capacity = 2;
  serve::AdmissionController adm(tenants);
  auto r1 = make_request(0);
  auto r2 = make_request(0);
  auto r3 = make_request(0);
  EXPECT_FALSE(adm.try_admit(r1).has_value());
  EXPECT_FALSE(adm.try_admit(r2).has_value());
  const auto rej = adm.try_admit(r3);
  ASSERT_TRUE(rej.has_value());
  EXPECT_EQ(*rej, ErrorCode::kQueueFull);
  ASSERT_NE(r3, nullptr);  // ownership stays with the caller on rejection
  EXPECT_EQ(adm.counters(0).queue_rejections, 1u);
  while (auto req = adm.pop_next()) req->promise.set_value({});
}

TEST(Admission, QuotaExhaustionRejectsNewRequests) {
  std::vector<serve::TenantConfig> tenants = serve::parse_tenant_specs("A:1");
  tenants[0].energy_quota_j = 1.0e-6;
  serve::AdmissionController adm(tenants);
  auto ok = make_request(0);
  EXPECT_FALSE(adm.try_admit(ok).has_value());
  adm.charge_energy(0, 2.0e-6);  // bill past the quota
  auto rejected = make_request(0);
  const auto rej = adm.try_admit(rejected);
  ASSERT_TRUE(rej.has_value());
  EXPECT_EQ(*rej, ErrorCode::kQuotaExceeded);
  EXPECT_EQ(adm.counters(0).quota_rejections, 1u);
  while (auto req = adm.pop_next()) req->promise.set_value({});
}

TEST(Admission, IdleTenantRejoinsAtGlobalPassWithoutBurst) {
  serve::AdmissionController adm(serve::parse_tenant_specs("A:1,B:1"));
  for (int i = 0; i < 6; ++i) {
    auto a = make_request(0);
    ASSERT_FALSE(adm.try_admit(a).has_value());
  }
  for (int i = 0; i < 6; ++i) adm.pop_next()->promise.set_value({});
  // B was idle the whole time; it must rejoin at the current global pass,
  // not claim 6 backdated pops in a row.
  std::vector<int> order;
  for (int i = 0; i < 2; ++i) {
    auto a = make_request(0);
    auto b = make_request(1);
    ASSERT_FALSE(adm.try_admit(a).has_value());
    ASSERT_FALSE(adm.try_admit(b).has_value());
  }
  for (int i = 0; i < 4; ++i) {
    auto req = adm.pop_next();
    order.push_back(req->tenant);
    req->promise.set_value({});
  }
  EXPECT_EQ(std::count(order.begin(), order.begin() + 2, 1), 1)
      << "idle tenant must not monopolize the first pops after rejoining";
}

TEST(Admission, JainFairnessIndex) {
  EXPECT_DOUBLE_EQ(serve::jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(serve::jain_fairness({5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(serve::jain_fairness({1.0, 0.0}), 0.5);
}

// ---------------------------------------------------------------------------
// Micro-batcher: deadline-expired requests die at batch assembly.

TEST(Batcher, DropsExpiredRequestsAtAssembly) {
  serve::AdmissionController adm(serve::parse_tenant_specs("A:1"));
  serve::MicroBatcher batcher(adm, serve::BatcherConfig{});
  auto expired = make_request(0);
  expired->token.set_deadline(std::chrono::steady_clock::now() -
                              std::chrono::milliseconds(1));
  auto fresh = make_request(0);
  std::future<serve::FleetResponse> expired_fut =
      batcher.submit(std::move(expired));
  std::future<serve::FleetResponse> fresh_fut =
      batcher.submit(std::move(fresh));
  std::vector<std::unique_ptr<serve::FleetRequest>> batch =
      batcher.next_batch();
  ASSERT_EQ(batch.size(), 1u) << "expired request must not reach the batch";
  const serve::FleetResponse r = expired_fut.get();
  EXPECT_EQ(r.status, serve::FleetResponseStatus::kRejected);
  EXPECT_EQ(r.error, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(batcher.stats().dropped_expired, 1u);
  EXPECT_EQ(adm.counters(0).dropped_expired, 1u);
  batch[0]->promise.set_value({});
  (void)fresh_fut;
}

// ---------------------------------------------------------------------------
// Checkpoint IO retry with exponential backoff.

TEST(CheckpointRetry, TransientIoFailureRetriesUntilSuccess) {
  Fixture& f = fixture();
  core::SeiNetwork net(f.qnet, core::HardwareConfig{});
  serve::RuntimeSnapshot snap;
  snap.next_sequence = 7;
  snap.requests_served = 7;
  const std::string path = tmp_path("sei_fleet_retry.ckpt");
  int attempts = 0;
  serve::CheckpointRetryPolicy pol;
  pol.max_attempts = 3;
  pol.backoff_ms = 1;
  pol.inject_failure = [&](int attempt) -> Status {
    ++attempts;
    if (attempt < 3) return Error{ErrorCode::kIo, "transient write failure"};
    return serve::save_checkpoint(net, snap, path);
  };
  const Status st = serve::save_checkpoint_with_retry(net, snap, path, pol);
  ASSERT_TRUE(st.ok()) << st.error().message;
  EXPECT_EQ(attempts, 3);
  core::SeiNetwork restored(f.qnet, core::HardwareConfig{});
  const Result<serve::RuntimeSnapshot> loaded =
      serve::load_checkpoint(restored, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().next_sequence, 7u);
  std::filesystem::remove(path);
}

TEST(CheckpointRetry, PermanentIoFailureGivesUpAfterMaxAttempts) {
  Fixture& f = fixture();
  core::SeiNetwork net(f.qnet, core::HardwareConfig{});
  int attempts = 0;
  serve::CheckpointRetryPolicy pol;
  pol.max_attempts = 3;
  pol.backoff_ms = 1;
  pol.inject_failure = [&](int) -> Status {
    ++attempts;
    return Error{ErrorCode::kIo, "disk on fire"};
  };
  const Status st = serve::save_checkpoint_with_retry(
      net, serve::RuntimeSnapshot{}, tmp_path("sei_fleet_retry2.ckpt"), pol);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ErrorCode::kIo);
  EXPECT_EQ(attempts, 3);
}

TEST(CheckpointRetry, NonTransientErrorIsNotRetried) {
  Fixture& f = fixture();
  core::SeiNetwork net(f.qnet, core::HardwareConfig{});
  int attempts = 0;
  serve::CheckpointRetryPolicy pol;
  pol.max_attempts = 3;
  pol.backoff_ms = 1;
  pol.inject_failure = [&](int) -> Status {
    ++attempts;
    return Error{ErrorCode::kCorrupt, "not an IO problem"};
  };
  const Status st = serve::save_checkpoint_with_retry(
      net, serve::RuntimeSnapshot{}, tmp_path("sei_fleet_retry3.ckpt"), pol);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ErrorCode::kCorrupt);
  EXPECT_EQ(attempts, 1) << "only kIo counts as transient";
}

// ---------------------------------------------------------------------------
// Fleet runtime: routing, failover, quotas, crash-resume determinism.

/// Fleet config that never probes or trips — for pure routing tests.
serve::FleetConfig quiet_fleet_config(const std::string& spec) {
  serve::FleetConfig fc;
  fc.tenants = serve::parse_tenant_specs(spec);
  for (serve::TenantConfig& t : fc.tenants) t.queue_capacity = 1024;
  fc.sentinel.probe_every = 1 << 20;
  fc.breaker.trip_drop_pct = 1000.0;
  return fc;
}

/// Fleet config with a live sentinel/breaker tuned for the weak fixture
/// (mirrors Runtime.BreakerTripsRepairsAndRecovers).
serve::FleetConfig storm_fleet_config(const std::string& spec) {
  serve::FleetConfig fc;
  fc.tenants = serve::parse_tenant_specs(spec);
  for (serve::TenantConfig& t : fc.tenants) t.queue_capacity = 1024;
  fc.sentinel.probe_every = 4;
  fc.sentinel.probe_count = 48;
  fc.sentinel.window = 24;
  fc.sentinel.min_probes = 12;
  fc.breaker.max_retries = 1;
  fc.breaker.retry_backoff_ms = 1;
  fc.breaker.reattempt_interval = 64;
  fc.calibration.max_images = 240;
  fc.calibration.gamma_min = 1.0;
  fc.calibration.gamma_max = 1.0;
  fc.calibration.gamma_step = 0.1;
  return fc;
}

TEST(Fleet, ServedLabelsMatchReferenceAcrossShards) {
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.03;
  core::HardwareConfig cfg1 = cfg;
  cfg1.seed += 1000003;
  core::SeiNetwork s0(f.qnet, cfg), s1(f.qnet, cfg1);
  core::SeiNetwork twin0(f.qnet, cfg), twin1(f.qnet, cfg1);

  serve::FleetRuntime fleet({&s0, &s1}, f.qnet, f.test, f.train,
                            quiet_fleet_config("A:1"));
  fleet.start();
  const int n = 40;
  std::vector<std::future<serve::FleetResponse>> futs;
  for (int i = 0; i < n; ++i) futs.push_back(fleet.submit(0, f.image(i)));
  core::EvalContext ctx;
  for (int i = 0; i < n; ++i) {
    const serve::FleetResponse r = futs[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.status, serve::FleetResponseStatus::kOk) << "request " << i;
    // Round-robin home placement: ticket i lands on shard i % 2 with
    // shard-local sequence i / 2 — and the label matches an offline twin
    // evaluated at exactly that RNG index.
    EXPECT_EQ(r.ticket, static_cast<std::uint64_t>(i));
    ASSERT_EQ(r.shard, i % 2);
    EXPECT_EQ(r.sequence, static_cast<std::uint64_t>(i / 2));
    core::SeiNetwork& twin = r.shard == 0 ? twin0 : twin1;
    EXPECT_EQ(r.label, twin.predict(f.image(i), ctx,
                                    static_cast<long long>(r.sequence)));
  }
  fleet.stop();
  const serve::FleetStats st = fleet.stats();
  EXPECT_EQ(st.total_dispatched, static_cast<std::uint64_t>(n));
  EXPECT_EQ(st.failovers, 0u);
  EXPECT_EQ(st.shed, 0u);
}

TEST(Fleet, StormFailoverKeepsServingOnReplicas) {
  Fixture& f = fixture();
  std::vector<std::unique_ptr<core::SeiNetwork>> nets;
  std::vector<core::SeiNetwork*> ptrs;
  for (int k = 0; k < 3; ++k) {
    core::HardwareConfig cfg;
    cfg.spare_row_fraction = 0.2;
    cfg.seed += static_cast<std::uint64_t>(k) * 1000003ULL;
    nets.push_back(std::make_unique<core::SeiNetwork>(
        f.qnet, cfg,
        reliability::make_repair_hook(reliability::RepairConfig{}, nullptr)));
    ptrs.push_back(nets.back().get());
  }
  core::AdcNetwork fallback(f.qnet, core::AdcConfig{}, f.train);

  serve::FleetRuntime fleet(ptrs, f.qnet, f.test, f.train,
                            storm_fleet_config("A:1"), &fallback);
  // A storm that outlives the test: repair re-lands the damage, so shard 0
  // must park and its traffic must fail over to the replicas.
  serve::StormSchedule storm;
  storm.events.push_back({60, 0, {0, -1, 0.10, 1.0}, 1u << 20});
  fleet.set_storm(storm);

  fleet.start();
  const int n = 400;
  std::vector<std::future<serve::FleetResponse>> futs;
  for (int i = 0; i < n; ++i) futs.push_back(fleet.submit(0, f.image(i)));
  int ok = 0;
  for (auto& fu : futs)
    if (fu.get().status == serve::FleetResponseStatus::kOk) ++ok;
  fleet.stop();

  // Availability through the storm: replicas absorb everything on the SEI
  // path — nothing sheds, nothing degrades.
  EXPECT_EQ(ok, n);
  const serve::FleetStats st = fleet.stats();
  EXPECT_GT(st.failovers, 0u);
  EXPECT_EQ(st.shed, 0u);
  EXPECT_EQ(st.fallback_served, 0u);
  EXPECT_EQ(fleet.shard_state(0), serve::BreakerState::kFallback)
      << "shard 0 must stay parked while the storm is overhead";
  EXPECT_EQ(fleet.shard_state(1), serve::BreakerState::kClosed);
  EXPECT_EQ(fleet.shard_state(2), serve::BreakerState::kClosed);
  ASSERT_FALSE(fleet.failovers().empty());
  EXPECT_EQ(fleet.failovers().front().home_shard, 0);
}

TEST(Fleet, TenantEnergyQuotaRejectsAfterExhaustion) {
  Fixture& f = fixture();
  core::SeiNetwork net(f.qnet, core::HardwareConfig{});
  serve::FleetConfig fc = quiet_fleet_config("A:1");
  fc.tenants[0].energy_quota_j = 1.0e-9;  // less than one evaluation
  serve::FleetRuntime fleet({&net}, f.qnet, f.test, f.train, fc);
  fleet.start();
  // First request is admitted (bill is zero) and billed at flush.
  EXPECT_EQ(fleet.submit(0, f.image(0)).get().status,
            serve::FleetResponseStatus::kOk);
  // Its bill now exceeds the quota: everything further is rejected.
  const serve::FleetResponse r = fleet.submit(0, f.image(1)).get();
  EXPECT_EQ(r.status, serve::FleetResponseStatus::kRejected);
  EXPECT_EQ(r.error, ErrorCode::kQuotaExceeded);
  fleet.stop();
  EXPECT_GE(fleet.stats().tenants[0].quota_rejections, 1u);
  EXPECT_GT(fleet.stats().tenants[0].energy_j, 1.0e-9);
}

TEST(FaultSchedule, PlanRebuiltAfterApplyFault) {
  // apply_fault mutates the live effective weights, so it must rebuild the
  // packed decompositions and recompile the plan — a stale plan would keep
  // dispatching engines (and packed words) programmed for the healthy
  // weights. The compiled path must agree with the pure scalar interpreter
  // evaluated on the damaged state, and the rebuild must bump the epoch.
  Fixture& f = fixture();
  core::SeiNetwork hw(f.qnet, core::HardwareConfig{});
  const std::uint64_t epoch_before = hw.plan().epoch;

  serve::FaultEvent ev;
  ev.stage = -1;  // damage every stage
  ev.stuck_fraction = 0.15;
  serve::apply_fault(hw, ev, /*seed=*/1234, /*event_index=*/0);
  EXPECT_GT(hw.plan().epoch, epoch_before);

  // Scalar interpreter reads the damaged `eff` directly — ground truth.
  std::vector<int> scalar_ref;
  hw.set_plan_mode(false);
  hw.set_packed_eval(false);
  core::EvalContext ctx;
  for (int i = 0; i < 40; ++i) scalar_ref.push_back(hw.predict(f.image(i), ctx, i));
  hw.set_packed_eval(true);
  hw.set_plan_mode(true);
  for (int i = 0; i < 40; ++i)
    EXPECT_EQ(hw.predict(f.image(i), ctx, i),
              scalar_ref[static_cast<std::size_t>(i)])
        << "image " << i;
}

TEST(Checkpoint, ResumeRebuildsPackedStateAndPlan) {
  // load_checkpoint overwrites `eff` wholesale, so the restore must rebuild
  // each stage's packed decomposition and recompile the plan; a restored
  // network that kept its pre-restore packed words would serve the old
  // weights through the packed engines while the scalar path served the
  // new ones.
  Fixture& f = fixture();
  const std::string path = tmp_path("sei_ckpt_plan_rebuild.bin");
  core::SeiNetwork a(f.qnet, core::HardwareConfig{});
  serve::FaultEvent ev;
  ev.stage = -1;
  ev.stuck_fraction = 0.10;
  serve::apply_fault(a, ev, /*seed=*/99, /*event_index=*/0);
  serve::RuntimeSnapshot snap;
  ASSERT_TRUE(serve::save_checkpoint(a, snap, path).ok());

  core::SeiNetwork b(f.qnet, core::HardwareConfig{});  // healthy pre-restore
  const std::uint64_t epoch_before = b.plan().epoch;
  ASSERT_TRUE(serve::load_checkpoint(b, path).ok());
  EXPECT_GT(b.plan().epoch, epoch_before);

  // b's compiled path must match a's, and must match b's own scalar
  // interpreter — any stale packed words or stale plan break one of these.
  core::EvalContext ca, cb;
  std::vector<int> restored;
  for (int i = 0; i < 40; ++i) restored.push_back(b.predict(f.image(i), cb, i));
  for (int i = 0; i < 40; ++i)
    EXPECT_EQ(restored[static_cast<std::size_t>(i)], a.predict(f.image(i), ca, i))
        << "image " << i;
  b.set_plan_mode(false);
  b.set_packed_eval(false);
  for (int i = 0; i < 40; ++i)
    EXPECT_EQ(b.predict(f.image(i), cb, i),
              restored[static_cast<std::size_t>(i)])
        << "image " << i;
  std::filesystem::remove(path);
}

TEST(Fleet, CrashResumeReplaysBitIdentically) {
  Fixture& f = fixture();
  const auto make_nets = [&] {
    std::vector<std::unique_ptr<core::SeiNetwork>> nets;
    for (int k = 0; k < 2; ++k) {
      core::HardwareConfig cfg;
      cfg.spare_row_fraction = 0.2;
      cfg.seed += static_cast<std::uint64_t>(k) * 1000003ULL;
      nets.push_back(std::make_unique<core::SeiNetwork>(
          f.qnet, cfg,
          reliability::make_repair_hook(reliability::RepairConfig{},
                                        nullptr)));
    }
    return nets;
  };
  const auto ptrs_of = [](auto& nets) {
    std::vector<core::SeiNetwork*> p;
    for (auto& n : nets) p.push_back(n.get());
    return p;
  };
  // Storm lands at dispatch 50 and stays overhead past the kill point at
  // 100, so the manifest must carry the active-storm state across resume.
  serve::StormSchedule storm;
  storm.events.push_back({50, 0, {0, -1, 0.10, 1.0}, 10000});
  const int total = 160, cut = 100;

  struct Reply {
    serve::FleetResponseStatus status;
    int label, shard;
    std::uint64_t ticket, sequence;
  };
  const auto collect = [](std::vector<std::future<serve::FleetResponse>>& fs) {
    std::vector<Reply> out;
    for (auto& fu : fs) {
      const serve::FleetResponse r = fu.get();
      out.push_back({r.status, r.label, r.shard, r.ticket, r.sequence});
    }
    return out;
  };

  // Uninterrupted reference run at 1 thread, no checkpoints.
  exec::set_default_threads(1);
  std::vector<Reply> reference;
  {
    auto nets = make_nets();
    serve::FleetRuntime fleet(ptrs_of(nets), f.qnet, f.test, f.train,
                              storm_fleet_config("A:1"));
    fleet.set_storm(storm);
    fleet.start();
    std::vector<std::future<serve::FleetResponse>> futs;
    for (int i = 0; i < total; ++i) futs.push_back(fleet.submit(0, f.image(i)));
    reference = collect(futs);
    fleet.stop();
  }
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(total));

  for (const int threads : {1, 2, 8}) {
    exec::set_default_threads(threads);
    const std::string dir =
        tmp_path("sei_fleet_resume_t" + std::to_string(threads));
    std::filesystem::remove_all(dir);

    // Leg 1: serve the first `cut` requests, then stop mid-storm. stop()
    // drains and commits a final checkpoint set at exactly `cut`.
    {
      auto nets = make_nets();
      serve::FleetConfig fc = storm_fleet_config("A:1");
      fc.checkpoint_every = 20;
      fc.checkpoint_dir = dir;
      serve::FleetRuntime fleet(ptrs_of(nets), f.qnet, f.test, f.train, fc);
      fleet.set_storm(storm);
      fleet.start();
      ASSERT_FALSE(fleet.resumed_from_checkpoint());
      std::vector<std::future<serve::FleetResponse>> futs;
      for (int i = 0; i < cut; ++i) futs.push_back(fleet.submit(0, f.image(i)));
      const std::vector<Reply> first = collect(futs);
      fleet.stop();
      for (int i = 0; i < cut; ++i) {
        EXPECT_EQ(first[i].status, reference[i].status) << "request " << i;
        EXPECT_EQ(first[i].label, reference[i].label) << "request " << i;
        EXPECT_EQ(first[i].shard, reference[i].shard) << "request " << i;
        EXPECT_EQ(first[i].sequence, reference[i].sequence) << "request " << i;
      }
    }

    // Leg 2: fresh process image (fresh networks!) resumes from the
    // checkpoint set and must replay the remaining stream bit-identically.
    {
      auto nets = make_nets();
      serve::FleetConfig fc = storm_fleet_config("A:1");
      fc.checkpoint_every = 20;
      fc.checkpoint_dir = dir;
      serve::FleetRuntime fleet(ptrs_of(nets), f.qnet, f.test, f.train, fc);
      fleet.set_storm(storm);
      fleet.start();
      ASSERT_TRUE(fleet.resumed_from_checkpoint())
          << "threads=" << threads << ": manifest not picked up";
      std::vector<std::future<serve::FleetResponse>> futs;
      for (int i = cut; i < total; ++i)
        futs.push_back(fleet.submit(0, f.image(i)));
      const std::vector<Reply> rest = collect(futs);
      fleet.stop();
      for (int i = 0; i < total - cut; ++i) {
        const Reply& got = rest[static_cast<std::size_t>(i)];
        const Reply& want = reference[static_cast<std::size_t>(cut + i)];
        EXPECT_EQ(got.status, want.status) << "resumed request " << cut + i;
        EXPECT_EQ(got.label, want.label) << "resumed request " << cut + i;
        EXPECT_EQ(got.shard, want.shard) << "resumed request " << cut + i;
        EXPECT_EQ(got.ticket, want.ticket) << "resumed request " << cut + i;
        EXPECT_EQ(got.sequence, want.sequence)
            << "resumed request " << cut + i;
      }
    }
    std::filesystem::remove_all(dir);
  }
  exec::set_default_threads(0);  // restore the suite default
}

// ---------------------------------------------------------------------------
// Tenant-spec CLI validation: malformed input fails fast with a suggestion.

TEST(Admission, TenantSpecParserRejectsMalformedSpecs) {
  EXPECT_THROW(serve::parse_tenant_specs("A:1,A:2"), CliError);  // duplicate
  EXPECT_THROW(serve::parse_tenant_specs("A:0"), CliError);      // zero weight
  EXPECT_THROW(serve::parse_tenant_specs("A:-1"), CliError);     // negative
  EXPECT_THROW(serve::parse_tenant_specs("A:x"), CliError);      // non-numeric
  EXPECT_THROW(serve::parse_tenant_specs(":2"), CliError);       // empty name
  try {
    serve::parse_tenant_specs("A;2");
    FAIL() << "separator typo must not parse as a weight-1 tenant named 'A;2'";
  } catch (const CliError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'A:2'"),
              std::string::npos)
        << e.what();
  }
  const std::vector<serve::TenantConfig> ok = serve::parse_tenant_specs("A:2,B");
  ASSERT_EQ(ok.size(), 2u);
  EXPECT_DOUBLE_EQ(ok[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(ok[1].weight, 1.0);  // bare name defaults to weight 1
}

// ---------------------------------------------------------------------------
// Batcher linger measured against an injected clock: a 5 s window closes the
// moment the fake clock jumps past it, without 5 s of real waiting.

TEST(Batcher, InjectedClockDrivesLingerWithoutRealWaiting) {
  serve::AdmissionController adm(serve::parse_tenant_specs("A:1"));
  serve::BatcherConfig bc;
  bc.linger = std::chrono::seconds(5);
  serve::MicroBatcher batcher(adm, bc);
  std::atomic<std::int64_t> fake_us{0};
  batcher.set_time_source([&fake_us] {
    return serve::MicroBatcher::Clock::time_point(
        std::chrono::microseconds(fake_us.load()));
  });
  std::future<serve::FleetResponse> fut = batcher.submit(make_request(0));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<serve::FleetRequest>> batch;
  std::thread consumer([&] { batch = batcher.next_batch(); });
  // Let the consumer enter the linger wait on the frozen clock, then jump
  // the clock past the window; the poll loop must notice and dispatch.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fake_us.store(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::seconds(6))
          .count());
  consumer.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_LT(elapsed, std::chrono::seconds(2))
      << "the 5 s linger must be paid in fake time, not real time";
  batch[0]->promise.set_value({});
  batcher.close();
  (void)fut;
}

// ---------------------------------------------------------------------------
// Torn fleet-manifest commit: shard slot files land but the manifest write
// dies. The commit must be invisible — the previous manifest's slot files are
// untouched (they live in the other epoch-parity slot), so the next resume
// replays from the older cut bit-identically.

TEST(Fleet, TornManifestCommitResumesFromPriorEpoch) {
  Fixture& f = fixture();
  const auto make_nets = [&] {
    std::vector<std::unique_ptr<core::SeiNetwork>> nets;
    for (int k = 0; k < 2; ++k) {
      core::HardwareConfig cfg;
      cfg.seed += static_cast<std::uint64_t>(k) * 1000003ULL;
      nets.push_back(std::make_unique<core::SeiNetwork>(f.qnet, cfg));
    }
    return nets;
  };
  const auto ptrs_of = [](auto& nets) {
    std::vector<core::SeiNetwork*> p;
    for (auto& n : nets) p.push_back(n.get());
    return p;
  };
  struct Reply {
    serve::FleetResponseStatus status;
    int label, shard;
    std::uint64_t ticket, sequence;
  };
  const auto serve_range = [&](serve::FleetRuntime& fleet, int lo, int hi) {
    std::vector<std::future<serve::FleetResponse>> futs;
    for (int i = lo; i < hi; ++i) futs.push_back(fleet.submit(0, f.image(i)));
    std::vector<Reply> out;
    for (auto& fu : futs) {
      const serve::FleetResponse r = fu.get();
      out.push_back({r.status, r.label, r.shard, r.ticket, r.sequence});
    }
    return out;
  };
  const int cut1 = 30, cut2 = 45, total = 60;
  const std::string dir = tmp_path("sei_fleet_torn_manifest");
  std::filesystem::remove_all(dir);

  // Uninterrupted reference run, no checkpoints.
  std::vector<Reply> reference;
  {
    auto nets = make_nets();
    serve::FleetRuntime fleet(ptrs_of(nets), f.qnet, f.test, f.train,
                              quiet_fleet_config("A:1"));
    fleet.start();
    reference = serve_range(fleet, 0, total);
    fleet.stop();
  }

  serve::FleetConfig fc = quiet_fleet_config("A:1");
  fc.checkpoint_every = 0;  // only stop() commits — one set per leg
  fc.checkpoint_dir = dir;

  // Leg 1: commit a clean set at cut1.
  {
    auto nets = make_nets();
    serve::FleetRuntime fleet(ptrs_of(nets), f.qnet, f.test, f.train, fc);
    fleet.start();
    serve_range(fleet, 0, cut1);
    fleet.stop();
  }

  // Leg 2: resume, serve to cut2, then tear the commit — every write to the
  // manifest fails, after the shard slot files have already been written.
  {
    auto nets = make_nets();
    serve::FleetRuntime fleet(ptrs_of(nets), f.qnet, f.test, f.train, fc);
    fleet.start();
    ASSERT_TRUE(fleet.resumed_from_checkpoint());
    ASSERT_EQ(fleet.stats().total_dispatched,
              static_cast<std::uint64_t>(cut1));
    serve_range(fleet, cut1, cut2);
    set_io_fault_hook([](const IoFaultSite& site) {
      return site.op == IoOp::kWrite &&
                     site.path.find("fleet.manifest") != std::string::npos
                 ? IoFaultAction::kFail
                 : IoFaultAction::kNone;
    });
    fleet.stop();  // commit aborts at the manifest; warning, not an error
    set_io_fault_hook(IoFaultHook{});
  }

  // Leg 3: the torn commit must be invisible — resume lands on cut1 and the
  // replay from there matches the uninterrupted reference field-for-field.
  {
    auto nets = make_nets();
    serve::FleetRuntime fleet(ptrs_of(nets), f.qnet, f.test, f.train, fc);
    fleet.start();
    ASSERT_TRUE(fleet.resumed_from_checkpoint());
    ASSERT_EQ(fleet.stats().total_dispatched, static_cast<std::uint64_t>(cut1))
        << "torn manifest must not advance the committed cut";
    const std::vector<Reply> rest = serve_range(fleet, cut1, total);
    fleet.stop();
    for (int i = 0; i < total - cut1; ++i) {
      const Reply& got = rest[static_cast<std::size_t>(i)];
      const Reply& want = reference[static_cast<std::size_t>(cut1 + i)];
      EXPECT_EQ(got.status, want.status) << "resumed request " << cut1 + i;
      EXPECT_EQ(got.label, want.label) << "resumed request " << cut1 + i;
      EXPECT_EQ(got.shard, want.shard) << "resumed request " << cut1 + i;
      EXPECT_EQ(got.ticket, want.ticket) << "resumed request " << cut1 + i;
      EXPECT_EQ(got.sequence, want.sequence) << "resumed request " << cut1 + i;
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sei
