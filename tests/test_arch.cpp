// Hardware planning and the energy/area cost model: instance counts against
// the paper's examples, Fig. 1 shares, and Table 5 saving bands.
#include <gtest/gtest.h>

#include "arch/cost_model.hpp"
#include "arch/latency_model.hpp"
#include "arch/report.hpp"
#include "workloads/networks.hpp"

namespace sei::arch {
namespace {

using core::HardwareConfig;
using core::StructureKind;

const quant::Topology& net1() {
  static const quant::Topology t = workloads::network1().topo;
  return t;
}

TEST(Plan, BaselineCrossbarCountsMatchPaper) {
  HardwareConfig cfg;
  const auto plan = plan_network(net1(), cfg, StructureKind::kDacAdc8);
  ASSERT_EQ(plan.size(), 3u);
  // Paper §5.1: "the ADC-based method implements the matrix in 300×64
  // crossbar but demands total 4 crossbars" (hi/lo × pos/neg planes).
  EXPECT_EQ(plan[1].crossbars, 4);
  EXPECT_EQ(plan[1].planes, 4);
  // FC 1024 rows > 512 → 2 row blocks × 4 planes.
  EXPECT_EQ(plan[2].crossbars, 8);
}

TEST(Plan, SeiCrossbarCountsMatchPaper) {
  HardwareConfig cfg;
  const auto plan = plan_network(net1(), cfg, StructureKind::kSei);
  // Paper §5.1: "we still need three 400×64 crossbars to implement the
  // huge 1200×64 RRAM array".
  EXPECT_EQ(plan[1].crossbars, 3);
  EXPECT_EQ(plan[1].cells, 300LL * 4 * 64);
  // FC: 1024 × 4 = 4096 physical rows → 8 crossbars.
  EXPECT_EQ(plan[2].crossbars, 8);
  // SEI hidden stages have no ADCs and no per-activation DACs.
  EXPECT_EQ(plan[1].adc_instances, 0);
  EXPECT_EQ(plan[1].dac_instances, 0);
  EXPECT_GT(plan[1].sa_instances, 0);
  // Classifier reads out via WTA.
  EXPECT_EQ(plan[2].wta_instances, 1);
  EXPECT_EQ(plan[2].sa_instances, 0);
}

TEST(Plan, BinInputKeepsAdcsDropsHiddenDacs) {
  HardwareConfig cfg;
  const auto base = plan_network(net1(), cfg, StructureKind::kDacAdc8);
  const auto bin = plan_network(net1(), cfg, StructureKind::kBinInputAdc);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(bin[i].adc_conversions, base[i].adc_conversions) << i;
    EXPECT_EQ(bin[i].adc_instances, base[i].adc_instances) << i;
  }
  EXPECT_GT(bin[0].dac_instances, 0);   // input layer keeps DACs
  EXPECT_EQ(bin[1].dac_instances, 0);   // hidden layers use 1-bit drivers
  EXPECT_GT(bin[1].driver_instances, 0);
  // Input image converted once per pixel, not per activation.
  EXPECT_EQ(bin[0].dac_conversions, 28LL * 28);
  EXPECT_EQ(base[0].dac_conversions,
            static_cast<long long>(24 * 24) * 25);
}

TEST(Plan, ConversionCountsScaleWithActivations) {
  HardwareConfig cfg;
  const auto plan = plan_network(net1(), cfg, StructureKind::kDacAdc8);
  // Conv1: 24×24 positions × 12 cols × 4 planes ADC conversions.
  EXPECT_EQ(plan[0].adc_conversions, 576LL * 12 * 4);
  // Conv2: 8×8 × 64 × 4.
  EXPECT_EQ(plan[1].adc_conversions, 64LL * 64 * 4);
}

TEST(Plan, LogicalOpsCountsMacs) {
  const long long ops = logical_ops_per_picture(net1());
  EXPECT_EQ(ops, 2 * (576LL * 25 * 12 + 64LL * 300 * 64 + 1024LL * 10));
}

TEST(Cost, Fig1SharesConvertersDominate) {
  HardwareConfig cfg;
  const NetworkCost cost = estimate_cost(net1(), cfg, StructureKind::kDacAdc8);
  const Shares power = breakdown_shares(cost.energy_pj);
  const Shares area = breakdown_shares(cost.area_um2);
  // Paper Fig. 1: ADC+DAC > 98% of power and area. Our calibration holds
  // ≥ 93% on both axes (see DESIGN.md §7).
  EXPECT_GT(power.adc_pct + power.dac_pct, 93.0);
  EXPECT_GT(area.adc_pct + area.dac_pct, 93.0);
  EXPECT_GT(power.adc_pct, power.dac_pct);  // ADCs dominate DACs
}

TEST(Cost, Table5SavingBands) {
  HardwareConfig cfg;
  for (const auto& wl :
       {workloads::network1(), workloads::network2(), workloads::network3()}) {
    const auto base = estimate_cost(wl.topo, cfg, StructureKind::kDacAdc8);
    const auto bin = estimate_cost(wl.topo, cfg, StructureKind::kBinInputAdc);
    const auto sei = estimate_cost(wl.topo, cfg, StructureKind::kSei);

    const double e_bin = saving_pct(base.energy_pj.total(), bin.energy_pj.total());
    const double e_sei = saving_pct(base.energy_pj.total(), sei.energy_pj.total());
    const double a_bin = saving_pct(base.area_um2.total(), bin.area_um2.total());
    const double a_sei = saving_pct(base.area_um2.total(), sei.area_um2.total());

    // Paper: 1-bit+ADC saves ~14–33% energy; SEI saves > 94% energy,
    // and 74–87% area; quantization alone saves ~37–56% area.
    EXPECT_GT(e_bin, 5.0) << wl.topo.name;
    EXPECT_LT(e_bin, 45.0) << wl.topo.name;
    EXPECT_GT(e_sei, 90.0) << wl.topo.name;
    EXPECT_GT(a_bin, 25.0) << wl.topo.name;
    EXPECT_LT(a_bin, 65.0) << wl.topo.name;
    EXPECT_GT(a_sei, 70.0) << wl.topo.name;
    EXPECT_LT(a_sei, 95.0) << wl.topo.name;
  }
}

TEST(Cost, SeiEfficiencyAbove2000GopsPerJoule) {
  HardwareConfig cfg;
  const auto sei = estimate_cost(net1(), cfg, StructureKind::kSei);
  EXPECT_GT(sei.gops_per_joule(), 2000.0);  // the paper's headline number
  const auto base = estimate_cost(net1(), cfg, StructureKind::kDacAdc8);
  EXPECT_LT(base.gops_per_joule(), 200.0);
}

TEST(Cost, SmallerCrossbarsCostMoreInBaseline) {
  HardwareConfig big;
  HardwareConfig small;
  small.limits.max_rows = 256;
  small.limits.max_cols = 256;
  const auto e512 = estimate_cost(net1(), big, StructureKind::kDacAdc8);
  const auto e256 = estimate_cost(net1(), small, StructureKind::kDacAdc8);
  // More splits → more merging ADC conversions (Table 5's 74 → 94 µJ trend).
  EXPECT_GT(e256.energy_pj.total(), e512.energy_pj.total());
}

TEST(Cost, BreakdownAccumulates) {
  CostBreakdown a;
  a.dac = 1;
  a.rram = 2;
  CostBreakdown b;
  b.dac = 3;
  b.wta = 4;
  a += b;
  EXPECT_DOUBLE_EQ(a.dac, 4);
  EXPECT_DOUBLE_EQ(a.total(), 10);
  EXPECT_DOUBLE_EQ(a.converters(), 4);
  EXPECT_DOUBLE_EQ(a.other(), 4);
}

TEST(Report, Fig1RowsIncludeTotal) {
  HardwareConfig cfg;
  const auto cost = estimate_cost(net1(), cfg, StructureKind::kDacAdc8);
  const auto rows = fig1_rows(cost, {"Conv 1", "Conv 2", "FC"});
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows.back().label, "Total");
  for (const auto& r : rows) {
    EXPECT_NEAR(r.power.dac_pct + r.power.adc_pct + r.power.rram_pct +
                    r.power.other_pct,
                100.0, 1e-6);
  }
}

TEST(Report, PlatformReferencesArePlausible) {
  const auto refs = platform_references();
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_NEAR(refs[0].gops_per_joule, 3.31, 0.05);  // FPGA [2]
  EXPECT_GT(refs[1].gops_per_joule, 5.0);           // GPU
  EXPECT_LT(refs[1].gops_per_joule, 50.0);
}

TEST(Cost, ProgrammingCostIsOneTimeAndAmortizes) {
  HardwareConfig cfg;
  const auto sei = estimate_cost(net1(), cfg, StructureKind::kSei);
  const ProgrammingCost pc = programming_cost(sei);
  // Network 1 SEI: conv1 planes (25·12·4) + conv2 (300·64·4) + fc (1024·10·4).
  EXPECT_EQ(pc.cells, 25LL * 12 * 4 + 300LL * 64 * 4 + 1024LL * 10 * 4);
  EXPECT_GT(pc.energy_uj, 0.0);
  // Writing the chip costs a bounded number of inference-pictures worth
  // of energy — it amortizes quickly.
  EXPECT_GT(pc.amortized_below_1pct_pictures, 100.0);
  EXPECT_LT(pc.amortized_below_1pct_pictures, 1e7);
}

TEST(Timing, SeiIsFasterAndCoolerThanBaseline) {
  HardwareConfig cfg;
  const auto base = estimate_cost(net1(), cfg, StructureKind::kDacAdc8);
  const auto sei = estimate_cost(net1(), cfg, StructureKind::kSei);
  const NetworkTiming tb = estimate_timing(base);
  const NetworkTiming ts = estimate_timing(sei);
  // Same activation counts, shorter SEI cycle (no DAC settle / ADC
  // conversion) -> lower latency, higher throughput, far lower power.
  EXPECT_LT(ts.latency_us, tb.latency_us);
  EXPECT_GT(ts.throughput_kfps, tb.throughput_kfps);
  EXPECT_LT(ts.average_power_mw, tb.average_power_mw / 10);
  EXPECT_GT(ts.throughput_kfps, 1.0);
}

TEST(Timing, LatencyIsSumThroughputIsBottleneck) {
  HardwareConfig cfg;
  const auto cost = estimate_cost(net1(), cfg, StructureKind::kSei);
  const NetworkTiming t = estimate_timing(cost);
  double sum = 0.0, worst = 0.0;
  for (const auto& st : t.stages) {
    sum += st.stage_latency_us;
    worst = std::max(worst, st.stage_latency_us);
  }
  EXPECT_NEAR(t.latency_us, sum, 1e-9);
  EXPECT_NEAR(t.throughput_kfps, 1e3 / worst, 1e-6);
  // Conv1 dominates: 576 positions vs 64 and 1.
  EXPECT_EQ(t.stages[0].cycles, 576);
}

TEST(Timing, ReplicationTradesPowerForTimeAtConstantEnergy) {
  HardwareConfig cfg;
  const auto cost = estimate_cost(net1(), cfg, StructureKind::kSei);
  const auto points = replication_tradeoff(cost, {1, 2, 4, 8});
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    const auto& a = points[i - 1];
    const auto& b = points[i];
    EXPECT_LT(b.latency_us, a.latency_us);
    EXPECT_GT(b.throughput_kfps, a.throughput_kfps);
    EXPECT_GT(b.average_power_mw, a.average_power_mw);
    EXPECT_GT(b.area_mm2, a.area_mm2);
    // The paper's invariant: per-picture energy does not change.
    EXPECT_DOUBLE_EQ(b.energy_uj_per_picture, a.energy_uj_per_picture);
  }
  // Power × latency stays constant (energy per picture, modulo units).
  EXPECT_NEAR(points[0].average_power_mw * points[0].latency_us,
              points[3].average_power_mw * points[3].latency_us,
              1e-6 * points[0].average_power_mw * points[0].latency_us);
}

TEST(Periphery, ConverterScalingAnchors) {
  const auto& cat = rram::default_periphery();
  EXPECT_DOUBLE_EQ(cat.adc_energy_pj(8), cat.adc8.energy_pj);
  EXPECT_DOUBLE_EQ(cat.adc_energy_pj(9), 2 * cat.adc8.energy_pj);
  EXPECT_DOUBLE_EQ(cat.dac_area_um2(7), cat.dac8.area_um2 / 2);
  EXPECT_THROW(cat.adc_energy_pj(0), CheckError);
}

}  // namespace
}  // namespace sei::arch
