// Row partitioning for crossbar splitting.
#include <gtest/gtest.h>

#include "split/partition.hpp"

namespace sei::split {
namespace {

TEST(Partition, LogicalCapacity) {
  // 8-bit weights on 4-bit devices: 4 cells/weight → 512-row crossbar
  // holds 128 logical rows.
  EXPECT_EQ(logical_capacity(512, 4), 128);
  EXPECT_EQ(logical_capacity(256, 4), 64);
  EXPECT_EQ(logical_capacity(512, 1), 512);
  EXPECT_THROW(logical_capacity(3, 4), CheckError);
}

TEST(Partition, BlocksNeededMatchesPaperExamples) {
  // Paper: 300×64 signed-8-bit → 1200 physical rows → three 400×64
  // crossbars at the 512 limit.
  EXPECT_EQ(blocks_needed(300, 512, 4), 3);
  // FC 1024×10 → 4096 physical rows → 8 crossbars.
  EXPECT_EQ(blocks_needed(1024, 512, 4), 8);
  // At the 256 limit: 300 logical rows → 5 blocks.
  EXPECT_EQ(blocks_needed(300, 256, 4), 5);
  // Small matrices need one.
  EXPECT_EQ(blocks_needed(25, 512, 4), 1);
}

TEST(Partition, FromOrderBalancedChunks) {
  const auto order = natural_order(10);
  Partition p = partition_from_order(order, 3);
  ASSERT_EQ(p.block_count(), 3);
  EXPECT_EQ(p.blocks[0].size(), 4u);  // 10 = 4+3+3
  EXPECT_EQ(p.blocks[1].size(), 3u);
  EXPECT_EQ(p.blocks[2].size(), 3u);
  EXPECT_EQ(p.blocks[0][0], 0);
  EXPECT_EQ(p.blocks[2][2], 9);
  EXPECT_EQ(p.total_rows(), 10);
}

TEST(Partition, PreservesOrderWithinBlocks) {
  std::vector<int> order{5, 3, 1, 0, 2, 4};
  Partition p = partition_from_order(order, 2);
  EXPECT_EQ(p.blocks[0], (std::vector<int>{5, 3, 1}));
  EXPECT_EQ(p.blocks[1], (std::vector<int>{0, 2, 4}));
}

TEST(Partition, ValidationCatchesDuplicates) {
  Partition p;
  p.blocks = {{0, 1}, {1, 2}};
  EXPECT_THROW(p.check_valid(3), CheckError);
  p.blocks = {{0, 1}, {2}};
  EXPECT_NO_THROW(p.check_valid(3));
  EXPECT_THROW(p.check_valid(4), CheckError);  // missing row 3
}

TEST(Partition, ValidationCatchesEmptyBlock) {
  Partition p;
  p.blocks = {{0, 1, 2}, {}};
  EXPECT_THROW(p.check_valid(3), CheckError);
}

TEST(Partition, SingleBlockDegenerate) {
  Partition p = partition_from_order(natural_order(4), 1);
  EXPECT_EQ(p.block_count(), 1);
  EXPECT_EQ(p.blocks[0].size(), 4u);
}

TEST(Partition, NaturalOrderIsIdentity) {
  const auto o = natural_order(5);
  EXPECT_EQ(o, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace sei::split
