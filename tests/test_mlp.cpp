// Hidden fully-connected stages end to end: the MLP extension workload
// (related-work comparison family of Kim et al. [10]).
#include <gtest/gtest.h>

#include "core/sei_network.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "workloads/networks.hpp"

namespace sei::workloads {
namespace {

struct Fixture {
  Workload wl = mlp();
  data::Dataset train = data::generate_synthetic(2500, 101);
  data::Dataset test = data::generate_synthetic(400, 102);
  nn::Network net{build_float_network(mlp().topo, 55)};
  double float_err = 0.0;
  quant::QuantizationResult q;

  Fixture() {
    nn::TrainConfig tc = wl.train;
    tc.epochs = 4;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
    float_err = net.error_rate(test.images, test.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 800;
    sc.step = 0.02;
    q = quant::quantize_network(net, wl.topo, train, sc);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Mlp, GeometryChainsThroughHiddenFcStages) {
  const auto g = quant::resolve_geometry(mlp().topo);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0].rows, 784);
  EXPECT_EQ(g[0].cols, 300);
  EXPECT_EQ(g[1].rows, 300);
  EXPECT_EQ(g[1].cols, 100);
  EXPECT_EQ(g[2].rows, 100);
  EXPECT_EQ(g[2].cols, 10);
  for (const auto& s : g) {
    EXPECT_EQ(s.out_h, 1);
    EXPECT_EQ(s.activations(), 1);
  }
}

TEST(Mlp, FloatTrainingWorks) {
  Fixture& f = fixture();
  EXPECT_LT(f.float_err, 15.0);
}

TEST(Mlp, QuantizationKeepsUsableAccuracy) {
  Fixture& f = fixture();
  ASSERT_EQ(f.q.traces.size(), 2u);  // two hidden FC stages searched
  const double qerr = f.q.qnet.error_rate(f.test);
  EXPECT_LT(qerr, 40.0);
  EXPECT_TRUE(f.q.qnet.layers[0].binarize);
  EXPECT_TRUE(f.q.qnet.layers[1].binarize);
  EXPECT_FALSE(f.q.qnet.layers[2].binarize);
}

TEST(Mlp, SeiMappingSplitsTheWideInputLayer) {
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  core::SeiNetwork hw(f.q.qnet, cfg);
  // 784 logical rows × 4 cells = 3136 physical rows → 7 blocks at 512.
  EXPECT_EQ(hw.layer(0).block_count, 7);
  // Stage 0 is the DAC-driven input stage in hardware, but the SEI engine
  // still evaluates it; accuracy must stay in the software band.
  const double hw_err = hw.error_rate(f.test);
  const double sw_err = f.q.qnet.error_rate(f.test);
  EXPECT_NEAR(hw_err, sw_err, 12.0);
}

TEST(Mlp, LookupByName) {
  EXPECT_EQ(workload_by_name("mlp").topo.stages.size(), 3u);
}

}  // namespace
}  // namespace sei::workloads
