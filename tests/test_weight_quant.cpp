// Fixed-point weight quantization and nibble decomposition.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "quant/weight_quant.hpp"

namespace sei::quant {
namespace {

TEST(WeightQuant, RoundTripErrorBounded) {
  Rng rng(1);
  nn::Tensor w({20, 10});
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-0.5, 0.5));
  QuantizedMatrix q = quantize_weights(w, 8);
  nn::Tensor back = dequantize(q);
  const float half_step = q.scale / 2 + 1e-7f;
  for (std::size_t i = 0; i < w.numel(); ++i)
    EXPECT_LE(std::fabs(w[i] - back[i]), half_step) << "at " << i;
}

TEST(WeightQuant, MaxMagnitudeMapsToQmax) {
  nn::Tensor w({1, 3});
  w.at(0, 0) = -2.0f;
  w.at(0, 1) = 1.0f;
  w.at(0, 2) = 0.0f;
  QuantizedMatrix q = quantize_weights(w, 8);
  EXPECT_EQ(q.at(0, 0), -127);
  EXPECT_EQ(q.at(0, 1), 64);  // round(1.0/2.0 · 127)
  EXPECT_EQ(q.at(0, 2), 0);
}

TEST(WeightQuant, AllZeroMatrixIsSafe) {
  nn::Tensor w({2, 2});
  QuantizedMatrix q = quantize_weights(w, 8);
  for (auto v : q.values) EXPECT_EQ(v, 0);
  EXPECT_GT(q.scale, 0.0f);
}

class BitWidths : public ::testing::TestWithParam<int> {};

TEST_P(BitWidths, ValuesStayInRange) {
  const int bits = GetParam();
  Rng rng(static_cast<std::uint64_t>(bits));
  nn::Tensor w({8, 8});
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-3, 3));
  QuantizedMatrix q = quantize_weights(w, bits);
  const int qmax = (1 << (bits - 1)) - 1;
  for (auto v : q.values) {
    EXPECT_LE(v, qmax);
    EXPECT_GE(v, -qmax);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitWidths, ::testing::Values(2, 4, 6, 8, 12));

TEST(Nibble, SplitsMagnitude) {
  const NibblePair p = split_magnitude(127, 4);
  EXPECT_EQ(p.hi, 7);
  EXPECT_EQ(p.lo, 15);
  EXPECT_EQ(p.hi * 16 + p.lo, 127);
  const NibblePair z = split_magnitude(0, 4);
  EXPECT_EQ(z.hi, 0);
  EXPECT_EQ(z.lo, 0);
}

TEST(Nibble, ReconstructsForAllMagnitudes) {
  for (int m = 0; m <= 255; ++m) {
    const NibblePair p = split_magnitude(m, 4);
    EXPECT_EQ(p.hi * 16 + p.lo, m);
    EXPECT_LT(p.hi, 16);
    EXPECT_LT(p.lo, 16);
  }
}

TEST(Nibble, OverflowThrows) {
  EXPECT_THROW(split_magnitude(256, 4), CheckError);
}

TEST(CellCounts, PaperConfiguration) {
  // 8-bit weights on 4-bit devices: SEI uses 4 cells per weight
  // ("we can use 4 cells to implement a weight in the same crossbar"),
  // the baseline needs 4 crossbars ("demands total 4 crossbars").
  EXPECT_EQ(sei_cells_per_weight(8, 4), 4);
  EXPECT_EQ(baseline_crossbars_per_matrix(8, 4), 4);
}

TEST(CellCounts, HighPrecisionDevices) {
  // 8-bit devices hold a whole 7-bit magnitude in one cell.
  EXPECT_EQ(sei_cells_per_weight(8, 8), 2);
  EXPECT_EQ(baseline_crossbars_per_matrix(8, 8), 2);
}

TEST(CellCounts, LowPrecisionDevices) {
  // 2-bit devices need 4 slices per polarity.
  EXPECT_EQ(sei_cells_per_weight(8, 2), 8);
}

}  // namespace
}  // namespace sei::quant
