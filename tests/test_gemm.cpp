// GEMM kernels vs a naive reference, including the transposed variants used
// by backprop. Parameterized over a grid of sizes.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "nn/gemm.hpp"

namespace sei::nn {
namespace {

std::vector<float> random_matrix(int rows, int cols, Rng& rng,
                                 double sparsity = 0.0) {
  std::vector<float> m(static_cast<std::size_t>(rows) * cols);
  for (auto& v : m)
    v = rng.bernoulli(sparsity) ? 0.0f
                                : static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

void naive(const std::vector<float>& a, const std::vector<float>& b,
           std::vector<float>& c, int m, int k, int n) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p)
        acc += static_cast<double>(a[static_cast<std::size_t>(i) * k + p]) *
               b[static_cast<std::size_t>(p) * n + j];
      c[static_cast<std::size_t>(i) * n + j] = static_cast<float>(acc);
    }
}

class GemmSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(GemmSizes, MatchesNaive) {
  const auto [m, k, n, sparsity] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000003 + k * 1009 + n));
  const auto a = random_matrix(m, k, rng, sparsity);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> expect(static_cast<std::size_t>(m) * n);
  naive(a, b, expect, m, k, n);
  std::vector<float> got(static_cast<std::size_t>(m) * n, -1.0f);
  gemm(a.data(), b.data(), got.data(), m, k, n);
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], expect[i], 1e-4f) << "at " << i;
}

TEST_P(GemmSizes, AccumulateAddsToExisting) {
  const auto [m, k, n, sparsity] = GetParam();
  Rng rng(77);
  const auto a = random_matrix(m, k, rng, sparsity);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> expect(static_cast<std::size_t>(m) * n);
  naive(a, b, expect, m, k, n);
  std::vector<float> got(static_cast<std::size_t>(m) * n, 1.0f);
  gemm_accumulate(a.data(), b.data(), got.data(), m, k, n);
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], expect[i] + 1.0f, 1e-4f);
}

TEST_P(GemmSizes, AtBMatchesNaiveTranspose) {
  const auto [m, k, n, sparsity] = GetParam();
  Rng rng(5);
  const auto a = random_matrix(m, k, rng, sparsity);  // A is m×k
  const auto b = random_matrix(m, n, rng);            // B is m×n
  // expect = Aᵀ · B  (k×n)
  std::vector<float> expect(static_cast<std::size_t>(k) * n, 0.0f);
  for (int i = 0; i < m; ++i)
    for (int p = 0; p < k; ++p)
      for (int j = 0; j < n; ++j)
        expect[static_cast<std::size_t>(p) * n + j] +=
            a[static_cast<std::size_t>(i) * k + p] *
            b[static_cast<std::size_t>(i) * n + j];
  std::vector<float> got(static_cast<std::size_t>(k) * n, 0.0f);
  gemm_at_b_accumulate(a.data(), b.data(), got.data(), m, k, n);
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], expect[i], 1e-3f);
}

TEST_P(GemmSizes, ABtMatchesNaiveTranspose) {
  const auto [m, k, n, sparsity] = GetParam();
  (void)sparsity;
  Rng rng(6);
  const auto a = random_matrix(m, n, rng);  // A is m×n
  const auto b = random_matrix(k, n, rng);  // B is k×n
  // expect = A · Bᵀ (m×k)
  std::vector<float> expect(static_cast<std::size_t>(m) * k, 0.0f);
  for (int i = 0; i < m; ++i)
    for (int p = 0; p < k; ++p) {
      double acc = 0;
      for (int j = 0; j < n; ++j)
        acc += static_cast<double>(a[static_cast<std::size_t>(i) * n + j]) *
               b[static_cast<std::size_t>(p) * n + j];
      expect[static_cast<std::size_t>(i) * k + p] = static_cast<float>(acc);
    }
  std::vector<float> got(static_cast<std::size_t>(m) * k, 0.0f);
  gemm_a_bt(a.data(), b.data(), got.data(), m, n, k);
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], expect[i], 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmSizes,
    ::testing::Values(std::make_tuple(1, 1, 1, 0.0),
                      std::make_tuple(3, 5, 2, 0.0),
                      std::make_tuple(8, 8, 8, 0.0),
                      std::make_tuple(17, 31, 13, 0.0),
                      std::make_tuple(64, 300, 64, 0.5),   // conv2-like, sparse
                      std::make_tuple(10, 1024, 10, 0.85)  // fc-like, sparse
                      ));

}  // namespace
}  // namespace sei::nn
