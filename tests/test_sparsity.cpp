// Sparsity engine contracts (docs/sparsity.md): at bound 0 the skip
// predicate masks only all-zero 9-row input words, so predictions are
// bit-identical to the dense network; at ANY bound every engine pair
// (packed kernels vs scalar oracle, compiled plan vs interpreter) agrees
// bit-for-bit on predictions AND on activation-proportional energy; and
// calibration, being built solely from deterministic batch evaluations,
// derives byte-identical bounds at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "arch/live_energy.hpp"
#include "common/check.hpp"
#include "core/sei_network.hpp"
#include "data/synthetic_digits.hpp"
#include "exec/thread_pool.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "sparsity/activity.hpp"
#include "sparsity/calibrate.hpp"
#include "sparsity/config.hpp"
#include "telemetry/metrics.hpp"
#include "workloads/networks.hpp"

namespace sei {
namespace {

/// Small trained + quantized network2 shared across tests.
struct Fixture {
  workloads::Workload wl = workloads::network2();
  data::Dataset train = data::generate_synthetic(800, 91);
  data::Dataset test = data::generate_synthetic(240, 92);
  quant::QNetwork qnet;

  Fixture() {
    nn::Network net = workloads::build_float_network(wl.topo, 61);
    nn::TrainConfig tc;
    tc.epochs = 2;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 300;
    sc.step = 0.05;
    qnet = quant::quantize_network(net, wl.topo, train, sc).qnet;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

struct ThreadGuard {
  ~ThreadGuard() { exec::set_default_threads(0); }
};

std::span<const float> image_of(const data::Dataset& d, int i) {
  const std::size_t per_image = 28 * 28;
  return {d.images.data() + static_cast<std::size_t>(i) * per_image,
          per_image};
}

std::vector<int> uniform_bounds(const core::SeiNetwork& hw, int bound) {
  return std::vector<int>(static_cast<std::size_t>(hw.stage_count()), bound);
}

/// Engine-pair agreement harness with the sparsity predicate armed: packed
/// vs scalar oracle and plan vs interpreter must produce bit-identical
/// predictions, identical error rates at 1/2/8 threads, and energy equal
/// to 1e-6 pJ — at ANY bound, because all four paths apply the same skip
/// predicate to the same selected-input counts and charge the same
/// activated rows through the same charge_stage_rows arithmetic.
void expect_sparse_engines_agree(const quant::QNetwork& qnet,
                                 core::SeiNetwork& hw,
                                 const data::Dataset& test, int n,
                                 int bound) {
  ThreadGuard guard;
  const telemetry::EnergyMeter meter =
      arch::make_energy_meter(qnet, hw.config(), core::StructureKind::kSei);
  hw.set_skip_bounds(uniform_bounds(hw, bound));
  struct Pass {
    const char* tag;
    bool packed;
    bool plan;
  };
  const Pass passes[] = {{"packed+plan", true, true},
                         {"packed+interp", true, false},
                         {"scalar+plan", false, true},
                         {"scalar+interp", false, false}};
  std::vector<int> pred[4];
  telemetry::EnergyAccum energy[4];
  std::vector<double> err[4];
  for (int p = 0; p < 4; ++p) {
    hw.set_packed_eval(passes[p].packed);
    hw.set_plan_mode(passes[p].plan);
    core::EvalContext ctx;
    ctx.meter = &meter;
    ctx.energy = &energy[p];
    for (int i = 0; i < n; ++i)
      pred[p].push_back(hw.predict(image_of(test, i), ctx, i));
    for (const int threads : {1, 2, 8}) {
      exec::set_default_threads(threads);
      err[p].push_back(hw.error_rate(test, n));
    }
  }
  hw.set_packed_eval(true);
  hw.set_plan_mode(true);
  for (int p = 1; p < 4; ++p) {
    SCOPED_TRACE(passes[p].tag);
    EXPECT_EQ(pred[p], pred[0]);
    EXPECT_EQ(err[p], err[0]);
    EXPECT_NEAR(energy[p].pj.total(), energy[0].pj.total(), 1e-6);
    EXPECT_NEAR(energy[p].pj.interface(), energy[0].pj.interface(), 1e-6);
    EXPECT_EQ(energy[p].events.cell_activations,
              energy[0].events.cell_activations);
    EXPECT_EQ(energy[p].events.driver_ops, energy[0].events.driver_ops);
    EXPECT_EQ(energy[p].stages, energy[0].stages);
  }
}

TEST(Sparsity, BoundZeroPredictionsBitIdenticalToDense) {
  // All three paper networks under every mapping shape: arming the
  // predicate at bound 0 (only all-zero input words mask, which changes no
  // input bit) must not flip a single prediction — even under read noise,
  // because the masked window is bit-identical and so is every RNG draw.
  data::Dataset train = data::generate_synthetic(500, 93);
  data::Dataset test = data::generate_synthetic(120, 94);
  for (const char* name : {"network1", "network2", "network3"}) {
    const workloads::Workload wl = workloads::workload_by_name(name);
    nn::Network net = workloads::build_float_network(wl.topo, 63);
    nn::TrainConfig tc;
    tc.epochs = 1;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 150;
    sc.step = 0.1;
    quant::QNetwork qnet =
        quant::quantize_network(net, wl.topo, train, sc).qnet;

    struct Variant {
      const char* tag;
      int max_rows;
      bool homogenize;
      double noise;
    };
    for (const Variant& v :
         {Variant{"whole", 0, true, 0.0},
          Variant{"whole noisy", 0, true, 0.05},
          Variant{"split homogenized", 64, true, 0.05},
          Variant{"split natural", 64, false, 0.05}}) {
      core::HardwareConfig cfg;
      if (v.max_rows > 0) cfg.limits.max_rows = v.max_rows;
      cfg.homogenize = v.homogenize;
      cfg.device.read_noise_sigma = v.noise;
      core::SeiNetwork hw(qnet, cfg);
      SCOPED_TRACE(std::string(name) + " / " + v.tag);

      std::vector<int> dense;
      for (int i = 0; i < 120; ++i)
        dense.push_back(hw.predict(image_of(test, i)));
      const double dense_err = hw.error_rate(test, 120);

      hw.set_skip_bounds(uniform_bounds(hw, 0));
      std::vector<int> sparse;
      for (int i = 0; i < 120; ++i)
        sparse.push_back(hw.predict(image_of(test, i)));
      EXPECT_EQ(sparse, dense);
      EXPECT_EQ(hw.error_rate(test, 120), dense_err);

      hw.set_skip_bounds({});  // off again: back to the dense fast path
      EXPECT_EQ(hw.error_rate(test, 120), dense_err);
    }
  }
}

TEST(Sparsity, EnginesAgreeAtBoundZeroAndNonzero) {
  Fixture& f = fixture();
  struct Variant {
    const char* tag;
    int max_rows;
    bool homogenize;
    double noise;
  };
  for (const Variant& v : {Variant{"whole", 0, true, 0.0},
                           Variant{"whole noisy", 0, true, 0.05},
                           Variant{"split homogenized", 64, true, 0.0},
                           Variant{"split natural", 64, false, 0.05}}) {
    core::HardwareConfig cfg;
    if (v.max_rows > 0) cfg.limits.max_rows = v.max_rows;
    cfg.homogenize = v.homogenize;
    cfg.device.read_noise_sigma = v.noise;
    core::SeiNetwork hw(f.qnet, cfg);
    for (const int bound : {0, 3}) {
      SCOPED_TRACE(std::string(v.tag) + " / bound=" + std::to_string(bound));
      expect_sparse_engines_agree(f.qnet, hw, f.test, 60, bound);
    }
  }
}

TEST(Sparsity, EnginesAgreeOnNonIntegralFallback) {
  // Programming noise forces every stage onto the scalar oracle — the
  // predicate and per-row charging must behave identically there.
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  cfg.device.program_sigma = 0.03;
  core::SeiNetwork hw(f.qnet, cfg);
  EXPECT_EQ(hw.packed_stage_count(), 0);
  expect_sparse_engines_agree(f.qnet, hw, f.test, 60, 2);
}

TEST(Sparsity, PlanResolvesBoundPolicy) {
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  core::SeiNetwork hw(f.qnet, cfg);
  // Off: every op carries the sentinel.
  for (const core::StageOp& op : hw.plan().ops)
    EXPECT_LT(op.skip_bound, 0) << "stage " << op.stage;
  // On: stage 0 stays exempt (DAC-driven rows have no transmission
  // gates); hidden/classifier stages resolve verbatim, with negative
  // entries and short-vector padding clamped to 0.
  hw.set_skip_bounds({7, -4});
  ASSERT_GE(hw.stage_count(), 2);
  EXPECT_EQ(hw.plan().ops[0].skip_bound, -1);
  EXPECT_EQ(hw.plan().ops[1].skip_bound, 0);  // -4 clamps to 0
  for (int s = 2; s < hw.stage_count(); ++s)
    EXPECT_EQ(hw.plan().ops[static_cast<std::size_t>(s)].skip_bound, 0);
  std::vector<int> big(static_cast<std::size_t>(hw.stage_count()), 1000);
  hw.set_skip_bounds(big);
  for (int s = 1; s < hw.stage_count(); ++s)
    EXPECT_EQ(hw.plan().ops[static_cast<std::size_t>(s)].skip_bound, 1000);
  hw.set_skip_bounds({});
  for (const core::StageOp& op : hw.plan().ops)
    EXPECT_LT(op.skip_bound, 0) << "stage " << op.stage;
}

TEST(Sparsity, EnergyIsActivationProportionalAndMonotone) {
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  core::SeiNetwork hw(f.qnet, cfg);
  const telemetry::EnergyMeter meter =
      arch::make_energy_meter(f.qnet, cfg, core::StructureKind::kSei);
  const int n = 60;

  auto measure = [&] {
    core::EvalContext ctx;
    telemetry::EnergyAccum acc;
    ctx.meter = &meter;
    ctx.energy = &acc;
    for (int i = 0; i < n; ++i) hw.predict(image_of(f.test, i), ctx, i);
    return acc;
  };

  const telemetry::EnergyAccum dense = measure();
  hw.set_skip_bounds(uniform_bounds(hw, 0));
  const telemetry::EnergyAccum sparse0 = measure();
  // Charging only activated rows can never exceed the dense table, and on
  // digit images (idle margins) it is strictly cheaper.
  EXPECT_LT(sparse0.pj.total(), dense.pj.total());
  EXPECT_LT(sparse0.events.cell_activations, dense.events.cell_activations);
  // Fixed-cost components are untouched: DACs convert every input either
  // way.
  EXPECT_EQ(sparse0.events.dac_conversions, dense.events.dac_conversions);
  EXPECT_EQ(sparse0.events.sa_compares, dense.events.sa_compares);

  // Raising the bound masks more words: charged energy is non-increasing.
  double prev = sparse0.pj.total();
  for (const int bound : {2, 4, 8}) {
    hw.set_skip_bounds(uniform_bounds(hw, bound));
    const double cur = measure().pj.total();
    EXPECT_LE(cur, prev) << "bound=" << bound;
    prev = cur;
  }
}

TEST(Sparsity, ActivityEstimateDeterministicAcrossThreadCounts) {
  Fixture& f = fixture();
  ThreadGuard guard;
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.05;
  core::SeiNetwork hw(f.qnet, cfg);
  hw.set_skip_bounds(uniform_bounds(hw, 2));

  exec::set_default_threads(1);
  const sparsity::ActivityEstimator serial =
      sparsity::estimate_activity(hw, f.test, 120);
  for (const int threads : {2, 8}) {
    exec::set_default_threads(threads);
    const sparsity::ActivityEstimator wide =
        sparsity::estimate_activity(hw, f.test, 120);
    ASSERT_EQ(wide.stage_count(), serial.stage_count());
    for (int s = 0; s < serial.stage_count(); ++s) {
      const auto& a = serial.stage(s);
      const auto& b = wide.stage(s);
      EXPECT_EQ(b.positions, a.positions) << "stage " << s;
      EXPECT_EQ(b.words, a.words) << "stage " << s;
      EXPECT_EQ(b.words_skipped, a.words_skipped) << "stage " << s;
      EXPECT_EQ(b.rows_active, a.rows_active) << "stage " << s;
      EXPECT_EQ(b.rows_charged, a.rows_charged) << "stage " << s;
      for (int h = 0; h < 11; ++h)
        EXPECT_EQ(b.hist[h], a.hist[h]) << "stage " << s << " bin " << h;
    }
  }
}

TEST(Sparsity, ActivityCountersAreInternallyConsistent) {
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  core::SeiNetwork hw(f.qnet, cfg);
  hw.set_skip_bounds(uniform_bounds(hw, 0));
  const sparsity::ActivityEstimator est =
      sparsity::estimate_activity(hw, f.test, 120);
  // Stage 0 is exempt: its cell must stay empty.
  EXPECT_EQ(est.stage(0).words, 0);
  bool saw_data = false;
  for (int s = 1; s < est.stage_count(); ++s) {
    const auto& c = est.stage(s);
    if (c.words == 0) continue;
    saw_data = true;
    std::int64_t hist_total = 0;
    for (int h = 0; h < 11; ++h) hist_total += c.hist[h];
    EXPECT_EQ(hist_total, c.words) << "stage " << s;
    EXPECT_LE(c.rows_charged, c.rows_active) << "stage " << s;
    EXPECT_LE(c.rows_active, c.rows_nominal) << "stage " << s;
    // Bound 0: exactly the all-zero words mask, and they carry no active
    // rows — so the skip count IS the zero bin and charging loses nothing.
    EXPECT_EQ(c.words_skipped, c.hist[0]) << "stage " << s;
    EXPECT_EQ(c.rows_charged, c.rows_active) << "stage " << s;
  }
  EXPECT_TRUE(saw_data);
  EXPECT_GT(est.skip_rate(), 0.0);
  EXPECT_LT(est.row_activity(), 1.0);
}

TEST(Sparsity, CalibrationReproducibleAcrossThreadCounts) {
  Fixture& f = fixture();
  ThreadGuard guard;
  sparsity::CalibrationOptions opt;
  opt.max_images = 80;
  opt.accuracy_margin_pct = 1.0;
  opt.ladder = {1, 2, 3, 4};

  auto calibrate_with = [&](int threads) {
    exec::set_default_threads(threads);
    core::HardwareConfig cfg;
    core::SeiNetwork hw(f.qnet, cfg);
    return sparsity::calibrate(hw, f.train, "network2", opt);
  };
  const sparsity::SparsityConfig serial = calibrate_with(1);
  const sparsity::SparsityConfig wide = calibrate_with(8);
  EXPECT_EQ(wide.bounds, serial.bounds);
  EXPECT_EQ(wide.base_error_pct, serial.base_error_pct);
  EXPECT_EQ(wide.calib_error_pct, serial.calib_error_pct);
  EXPECT_EQ(wide.skip_rate, serial.skip_rate);
  // The margin is honored on the calibration set by construction.
  EXPECT_LE(serial.calib_error_pct,
            serial.base_error_pct + opt.accuracy_margin_pct);
}

TEST(Sparsity, ConfigRoundTripsAndDetectsCorruption) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sei_sparsity.cfg").string();
  sparsity::SparsityConfig cfg;
  cfg.bounds = {0, 4, 7, 2};
  cfg.network = "network2";
  cfg.accuracy_margin_pct = 0.5;
  cfg.base_error_pct = 3.25;
  cfg.calib_error_pct = 3.5;
  cfg.skip_rate = 0.42;
  cfg.calib_images = 512;
  sparsity::save_sparsity_config(cfg, path);

  const sparsity::SparsityConfig got = sparsity::load_sparsity_config(path);
  EXPECT_EQ(got.bounds, cfg.bounds);
  EXPECT_EQ(got.network, cfg.network);
  EXPECT_EQ(got.accuracy_margin_pct, cfg.accuracy_margin_pct);
  EXPECT_EQ(got.base_error_pct, cfg.base_error_pct);
  EXPECT_EQ(got.calib_error_pct, cfg.calib_error_pct);
  EXPECT_EQ(got.skip_rate, cfg.skip_rate);
  EXPECT_EQ(got.calib_images, cfg.calib_images);

  // Flip one payload byte: the CRC trailer must reject the file.
  {
    std::fstream fs(path, std::ios::in | std::ios::out | std::ios::binary);
    fs.seekp(10);
    char b;
    fs.seekg(10);
    fs.get(b);
    b = static_cast<char>(b ^ 0x40);
    fs.seekp(10);
    fs.put(b);
  }
  EXPECT_THROW(sparsity::load_sparsity_config(path), CheckError);
  std::filesystem::remove(path);
}

TEST(Sparsity, BatchEnergyAccountsPerImageUnderSparsity) {
  // error_rate with sparsity on publishes per-image metered energy (each
  // image costs its actual activated rows); the fixed-point publish makes
  // the registry totals bit-identical at any thread count.
  Fixture& f = fixture();
  ThreadGuard guard;
  core::HardwareConfig cfg;
  core::SeiNetwork hw(f.qnet, cfg);
  const telemetry::EnergyMeter meter =
      arch::make_energy_meter(f.qnet, cfg, core::StructureKind::kSei);
  hw.set_meter(&meter);
  hw.set_skip_bounds(uniform_bounds(hw, 2));
  const int n = 120;

  // Reference: sum the per-image energies sequentially.
  telemetry::EnergyAccum want;
  {
    core::EvalContext ctx;
    ctx.meter = &meter;
    ctx.energy = &want;
    for (int i = 0; i < n; ++i) hw.predict(image_of(f.test, i), ctx, i);
  }
  auto published_fj = [&] {
    auto& reg = telemetry::MetricsRegistry::global();
    std::uint64_t total = 0;
    for (const char* c : {"dac", "adc", "sense_amp", "driver", "rram",
                          "decoder", "digital", "buffer", "wta"})
      total += reg.counter(std::string("sei_energy_fj_total{path=\"sei_"
                                       "batch\",component=\"") +
                           c + "\"}")
                   .value();
    return total;
  };
  auto batch_fj = [&](int threads) {
    exec::set_default_threads(threads);
    const std::uint64_t before = published_fj();
    hw.error_rate(f.test, n);
    return published_fj() - before;
  };
  const std::uint64_t serial_fj = batch_fj(1);
  // publish_energy rounds each chunk accumulator to femtojoules once.
  EXPECT_NEAR(static_cast<double>(serial_fj) / 1000.0, want.pj.total(), 1.0);
  for (const int threads : {2, 8})
    EXPECT_EQ(batch_fj(threads), serial_fj) << "threads=" << threads;
  hw.set_meter(nullptr);
}

}  // namespace
}  // namespace sei
