// Reliability subsystem: fault detection, retry/remap repair, threshold
// recalibration, and end-to-end degradation→recovery campaigns.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <iterator>

#include "data/synthetic_digits.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "reliability/campaign.hpp"
#include "workloads/networks.hpp"

namespace sei::reliability {
namespace {

rram::DeviceConfig ideal_device() {
  rram::DeviceConfig d;  // defaults are ideal: no sigma/noise/stuck
  return d;
}

/// Crossbar programmed with a deterministic level pattern.
rram::Crossbar patterned_crossbar(const rram::DeviceConfig& dev, int rows,
                                  int cols, int spares, std::uint64_t seed) {
  Rng rng(seed);
  rram::Crossbar xb(rows, cols, dev, rng, spares);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      xb.program(r, c, (r * 7 + c * 3) % dev.levels());
  return xb;
}

TEST(Diagnose, LocalizesForcedStuckCells) {
  rram::Crossbar xb = patterned_crossbar(ideal_device(), 12, 8, 0, 1);
  // Freeze three cells away from their intended levels. Intent of (2,3) is
  // (2·7+3·3)%16 = 7, of (5,0) is 3, of (9,7) is 12.
  xb.force_stuck(2, 3, 0);
  xb.force_stuck(5, 0, 15);
  xb.force_stuck(9, 7, 1);

  Rng rng(2);
  const CrossbarDiagnosis d = diagnose_crossbar(xb, DiagnoseConfig{}, rng);
  ASSERT_EQ(d.faults.size(), 3u);
  EXPECT_EQ(d.faults[0].row, 2);
  EXPECT_EQ(d.faults[0].col, 3);
  EXPECT_EQ(d.faults[1].row, 5);
  EXPECT_EQ(d.faults[1].col, 0);
  EXPECT_EQ(d.faults[2].row, 9);
  EXPECT_EQ(d.faults[2].col, 7);
  EXPECT_EQ(d.row_faults[2], 1);
  EXPECT_EQ(d.col_faults[0], 1);
  EXPECT_NEAR(d.fault_fraction, 3.0 / (12 * 8), 1e-12);
}

TEST(Diagnose, ReadNoiseAveragedBelowTolerance) {
  rram::DeviceConfig dev = ideal_device();
  dev.read_noise_sigma = 0.01;  // 1% per read; averaging suppresses it
  rram::Crossbar xb = patterned_crossbar(dev, 16, 10, 0, 3);
  Rng rng(4);
  DiagnoseConfig cfg;
  cfg.reads = 5;
  EXPECT_TRUE(diagnose_crossbar(xb, cfg, rng).clean());
}

TEST(Repair, SpareRowRemapPreservesIdealMvm) {
  rram::Crossbar xb = patterned_crossbar(ideal_device(), 10, 6, 3, 5);
  std::vector<std::uint8_t> select(10, 1);
  std::vector<double> port(10, 1.0);
  std::vector<double> before(6), after(6);
  Rng read_rng(6);
  xb.mvm_selected(select, port, before, read_rng);

  ASSERT_TRUE(xb.remap_row(4));
  ASSERT_TRUE(xb.remap_row(7));
  EXPECT_EQ(xb.spare_rows_used(), 2);
  EXPECT_GE(xb.physical_row(4), 10);  // steered onto a spare

  xb.mvm_selected(select, port, after, read_rng);
  for (int c = 0; c < 6; ++c) EXPECT_DOUBLE_EQ(after[c], before[c]);
}

TEST(Repair, RemapEvictsStuckCellFromLogicalRow) {
  rram::Crossbar xb = patterned_crossbar(ideal_device(), 8, 5, 2, 7);
  xb.force_stuck(3, 2, 0);  // intent of (3,2) is (3·7+2·3)%16 = 11
  ASSERT_NE(xb.cell(3, 2), 11.0);
  ASSERT_TRUE(xb.remap_row(3));
  // The spare is healthy under the ideal device, so the reprogrammed row
  // now reads its full intent.
  EXPECT_DOUBLE_EQ(xb.cell(3, 2), 11.0);
  EXPECT_EQ(xb.cell_level(3, 2), 11);
}

TEST(Repair, RetryEscalationRecoversMisprogrammedCells) {
  rram::DeviceConfig dev = ideal_device();
  dev.program_sigma = 0.25;        // sloppy single-pulse programming
  dev.max_program_attempts = 1;    // plain open loop at mapping time
  dev.program_tolerance = 0.35;
  rram::Crossbar xb = patterned_crossbar(dev, 24, 12, 0, 11);
  const double before = xb.misprogrammed_fraction();
  ASSERT_GT(before, 0.05);  // open-loop 25% sigma misses often

  Rng rng(12);
  RepairConfig cfg;
  const RepairReport rep = repair_crossbar(xb, cfg, rng);
  EXPECT_GT(rep.faults_found, 0);
  EXPECT_EQ(rep.cells_retried, rep.faults_found);
  // Nothing is stuck, so escalation recovers nearly everything; the odd
  // high-level cell can exhaust even the escalated budget (the tolerance
  // window is relative to one level, the noise is relative to the value).
  EXPECT_GE(rep.cells_recovered, rep.cells_retried * 9 / 10);
  EXPECT_EQ(rep.rows_remapped, 0);  // no spares were provisioned
  EXPECT_LE(rep.rows_unrepairable, 5);
  EXPECT_GT(rep.cell_writes, 0);
  EXPECT_LT(xb.misprogrammed_fraction(), before / 3);
}

TEST(Repair, ReportsUnrepairableRowsWhenSparesRunOut) {
  rram::Crossbar xb = patterned_crossbar(ideal_device(), 10, 4, 1, 13);
  // Three rows with stuck cells but only one spare: two rows must stay bad.
  xb.force_stuck(1, 0, 0);
  xb.force_stuck(4, 1, 0);
  xb.force_stuck(8, 2, 0);
  // Intents of those cells are nonzero, so all three are real faults.
  ASSERT_NE(xb.cell_level(1, 0), 0);
  ASSERT_NE(xb.cell_level(4, 1), 0);
  ASSERT_NE(xb.cell_level(8, 2), 0);

  Rng rng(14);
  const RepairReport rep = repair_crossbar(xb, RepairConfig{}, rng);
  EXPECT_EQ(rep.rows_remapped, 1);
  EXPECT_EQ(rep.rows_unrepairable, 2);
  EXPECT_FALSE(xb.remap_row(0));  // spares exhausted
}

TEST(Repair, HookAccumulatesAcrossCrossbars) {
  RepairReport total;
  core::CrossbarHook hook = make_repair_hook(RepairConfig{}, &total);
  Rng rng(15);
  rram::Crossbar a = patterned_crossbar(ideal_device(), 6, 4, 1, 16);
  rram::Crossbar b = patterned_crossbar(ideal_device(), 6, 4, 1, 17);
  a.force_stuck(2, 1, 0);
  hook(a, rng);
  hook(b, rng);
  EXPECT_EQ(total.crossbars, 2);
  EXPECT_GE(total.faults_found, 1);
}

/// Small trained + quantized network2 shared across the end-to-end tests.
struct Fixture {
  workloads::Workload wl = workloads::network2();
  data::Dataset train = data::generate_synthetic(1000, 61);
  data::Dataset test = data::generate_synthetic(300, 62);
  quant::QNetwork qnet;

  Fixture() {
    nn::Network net = workloads::build_float_network(wl.topo, 51);
    nn::TrainConfig tc;
    tc.epochs = 3;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 400;
    sc.step = 0.02;
    qnet = quant::quantize_network(net, wl.topo, train, sc).qnet;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(RngStreams, ReadNoiseDoesNotPerturbProgrammedState) {
  Fixture& f = fixture();
  core::HardwareConfig quiet;
  core::HardwareConfig noisy = quiet;
  noisy.device.read_noise_sigma = 0.05;
  core::SeiNetwork a(f.qnet, quiet);
  core::SeiNetwork b(f.qnet, noisy);
  // Same seed, different read noise: the programmed (mapped) state must be
  // bit-identical — only the per-read draws differ.
  ASSERT_EQ(a.stage_count(), b.stage_count());
  for (int s = 0; s < a.stage_count(); ++s)
    EXPECT_EQ(a.layer(s).eff, b.layer(s).eff) << "stage " << s;
}

TEST(RngStreams, ReadsDoNotChangeRemapResults) {
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.02;
  const auto flat_order = [](const core::SeiNetwork& net) {
    std::vector<int> order;
    for (const auto& blk : net.layer(1).partition.blocks)
      order.insert(order.end(), blk.begin(), blk.end());
    return order;
  };
  core::SeiNetwork early(f.qnet, cfg);
  early.remap_layer(1, flat_order(early));

  core::SeiNetwork late(f.qnet, cfg);
  late.error_rate(f.test, 20);  // consume read draws first
  late.remap_layer(1, flat_order(late));
  EXPECT_EQ(early.layer(1).eff, late.layer(1).eff);
}

TEST(Calibrate, CompensatesThresholdMiscalibration) {
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  core::SeiNetwork net(f.qnet, cfg);
  // Knock every hidden-stage threshold 30% high — recalibration must claw
  // the error back to (or below) the healthy level.
  const double healthy = net.error_rate(f.test, 150);
  for (int s = 0; s < net.stage_count(); ++s)
    for (float& t : net.layer(s).col_threshold) t *= 1.3f;
  const double broken = net.error_rate(f.test, 150);

  CalibrationConfig ccfg;
  ccfg.max_images = 150;
  const CalibrationReport rep = recalibrate_thresholds(net, f.test, ccfg);
  EXPECT_EQ(rep.error_before_pct, broken);
  EXPECT_LE(rep.error_after_pct, rep.error_before_pct);
  EXPECT_NEAR(net.error_rate(f.test, 150), healthy, 2.0);
}

TEST(Campaign, RepairRecoversTwoPercentStuck) {
  Fixture& f = fixture();
  CampaignConfig cfg;
  cfg.points = {{0.02, 0.0, 0.0, 0.0, "stuck2pct"}};
  cfg.trials = 2;
  cfg.eval_images = 200;
  cfg.calib_cfg.max_images = 100;

  const CampaignResult res = run_campaign(f.qnet, f.test, f.train, cfg);
  ASSERT_EQ(res.points.size(), 1u);
  const PointResult& p = res.points[0];
  // 2% stuck cells without repair wreck the classification; with spares,
  // repair and recalibration the network lands within 2 points of healthy.
  EXPECT_GT(p.faulty.mean, res.healthy_error_pct + 2.0);
  EXPECT_LE(p.repaired.mean, res.healthy_error_pct + 2.0);
  EXPECT_GT(p.repair.faults_found, 0);
  EXPECT_GT(p.repair.rows_remapped, 0);
}

TEST(Campaign, DeterministicFromSeedAndWritesJson) {
  Fixture& f = fixture();
  CampaignConfig cfg;
  cfg.points = {{0.01, 0.1, 0.0, 0.0, "mixed"}};
  cfg.trials = 2;
  cfg.eval_images = 80;
  cfg.calib_cfg.max_images = 50;

  const CampaignResult a = run_campaign(f.qnet, f.test, f.train, cfg);
  const CampaignResult b = run_campaign(f.qnet, f.test, f.train, cfg);
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.healthy_error_pct, b.healthy_error_pct);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].faulty.mean, b.points[i].faulty.mean);
    EXPECT_EQ(a.points[i].repaired.mean, b.points[i].repaired.mean);
    for (std::size_t t = 0; t < a.points[i].trials.size(); ++t) {
      EXPECT_EQ(a.points[i].trials[t].seed, b.points[i].trials[t].seed);
      EXPECT_EQ(a.points[i].trials[t].faulty_error_pct,
                b.points[i].trials[t].faulty_error_pct);
      EXPECT_EQ(a.points[i].trials[t].repaired_error_pct,
                b.points[i].trials[t].repaired_error_pct);
    }
  }

  const std::string path =
      (::testing::TempDir().empty() ? "." : ::testing::TempDir()) +
      "/campaign.json";
  write_campaign_json(a, cfg, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"schema\":\"sei-reliability-campaign-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"healthy_error_pct\""), std::string::npos);
  EXPECT_NE(json.find("\"repaired_error_pct\""), std::string::npos);
  EXPECT_NE(json.find("\"rows_remapped\""), std::string::npos);
}

TEST(Campaign, DriftAgesArraysAndRepairRestores) {
  Fixture& f = fixture();
  CampaignConfig cfg;
  FaultPoint aged;
  aged.drift_t_s = 1.0e7;  // ~4 months of retention loss
  aged.label = "aged";
  cfg.points = {aged};
  cfg.trials = 1;
  cfg.eval_images = 120;
  cfg.calib_cfg.max_images = 60;
  cfg.drift_nu = 0.06;  // aggressive drift so the faulty arm degrades
  cfg.drift_nu_sigma = 0.03;

  const CampaignResult res = run_campaign(f.qnet, f.test, f.train, cfg);
  const PointResult& p = res.points[0];
  EXPECT_GT(p.faulty.mean, res.healthy_error_pct);
  // Repair reprograms drifted cells fresh; recalibration absorbs the rest.
  EXPECT_LT(p.repaired.mean, p.faulty.mean);
  EXPECT_GT(p.repair.faults_found, 0);
}

}  // namespace
}  // namespace sei::reliability
