#include <gtest/gtest.h>

#include "common/check.hpp"
#include "nn/tensor.hpp"

namespace sei::nn {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(2), 4);
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.shape_str(), "[2x3x4]");
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, RejectsNonPositiveDims) {
  EXPECT_THROW(Tensor({2, 0}), CheckError);
  EXPECT_THROW(Tensor({-1}), CheckError);
}

TEST(Tensor, MultiIndexRowMajor) {
  Tensor t({2, 3});
  t.at(0, 0) = 1.0f;
  t.at(0, 2) = 2.0f;
  t.at(1, 0) = 3.0f;
  EXPECT_EQ(t[0], 1.0f);
  EXPECT_EQ(t[2], 2.0f);
  EXPECT_EQ(t[3], 3.0f);

  Tensor u({2, 2, 2, 2});
  u.at(1, 1, 1, 1) = 5.0f;
  EXPECT_EQ(u[15], 5.0f);
  u.at(1, 0, 1, 0) = 7.0f;
  EXPECT_EQ(u[10], 7.0f);
}

TEST(Tensor, ReshapeKeepsData) {
  Tensor t = Tensor::from_vector({1, 2, 3, 4, 5, 6});
  t.reshape({2, 3});
  EXPECT_EQ(t.at(1, 0), 4.0f);
  EXPECT_THROW(t.reshape({4, 2}), CheckError);
}

TEST(Tensor, AxpyAndScale) {
  Tensor a = Tensor::from_vector({1, 2, 3});
  Tensor b = Tensor::from_vector({10, 20, 30});
  a.axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[2], 18.0f);
  a.scale(2.0f);
  EXPECT_FLOAT_EQ(a[1], 24.0f);
}

TEST(Tensor, AxpyShapeMismatchThrows) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a.axpy(1.0f, b), CheckError);
}

TEST(Tensor, MaxAndMaxAbs) {
  Tensor t = Tensor::from_vector({-5, 2, 3});
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_FLOAT_EQ(t.max_abs(), 5.0f);
}

TEST(Tensor, FillAndZero) {
  Tensor t({4});
  t.fill(2.5f);
  for (float v : t.flat()) EXPECT_EQ(v, 2.5f);
  t.zero();
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace sei::nn
