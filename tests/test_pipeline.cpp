// Integration: the full train → quantize → map pipeline on a scratch cache
// directory, exercising the caching layer end to end.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "workloads/pipeline.hpp"
#include "common/io.hpp"

namespace sei::workloads {
namespace {

/// Redirects the cache to a scratch directory for the test's lifetime.
/// The directory is unique per test so ctest can run the cases of this
/// fixture in parallel processes without them deleting each other's cache.
class ScratchCache : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("sei_test_cache_") + info->name())).string();
    std::filesystem::remove_all(dir_);
    setenv("SEI_CACHE_DIR", dir_.c_str(), 1);
  }
  void TearDown() override {
    unsetenv("SEI_CACHE_DIR");
    std::filesystem::remove_all(dir_);
  }
  std::string dir_;
};

TEST_F(ScratchCache, TrainQuantizeMapRoundTrip) {
  // Small data keeps this test fast; network2 is the smallest workload.
  data::DataBundle data = load_small_data(700, 200, 5);
  PipelineOptions opts;
  opts.search.max_search_images = 300;
  opts.search.step = 0.02;

  // Use a reduced-epoch variant to stay quick.
  Workload wl = network2();
  wl.train.epochs = 3;
  nn::Network net = load_or_train(wl, data, false);
  const double float_err =
      net.error_rate(data.test.images, data.test.label_span());
  EXPECT_LT(float_err, 60.0);
  EXPECT_TRUE(sei::file_exists(dir_ + "/network2.model"));

  auto qres = load_or_quantize(wl, net, data, opts.search, false);
  EXPECT_TRUE(sei::file_exists(dir_ + "/network2.qnet"));
  const double qerr1 = qres.qnet.error_rate(data.test);

  // Second call hits the cache and reproduces the same QNetwork.
  nn::Network net2 = load_or_train(wl, data, false);
  auto qres2 = load_or_quantize(wl, net2, data, opts.search, false);
  EXPECT_TRUE(qres2.traces.empty());  // cache hit: no search ran
  EXPECT_NEAR(qres2.qnet.error_rate(data.test), qerr1, 1e-9);
  for (std::size_t l = 0; l < qres.qnet.layers.size(); ++l) {
    EXPECT_FLOAT_EQ(qres2.qnet.layers[l].threshold,
                    qres.qnet.layers[l].threshold);
  }

  // Hardware mapping end to end.
  core::HardwareConfig cfg;
  core::SeiNetwork hw(qres2.qnet, cfg);
  const double hw_err = hw.error_rate(data.test);
  EXPECT_LT(hw_err, 70.0);
}

TEST_F(ScratchCache, QnetSerializationRoundTrip) {
  data::DataBundle data = load_small_data(300, 50, 6);
  Workload wl = network2();
  wl.train.epochs = 1;
  nn::Network net = load_or_train(wl, data, false);
  quant::SearchConfig sc;
  sc.max_search_images = 100;
  sc.step = 0.1;
  auto qres = quant::quantize_network(net, wl.topo, data.train, sc);
  const std::string path = dir_ + "/roundtrip.qnet";
  save_qnetwork(qres.qnet, path);
  quant::QNetwork loaded = load_qnetwork(path, wl.topo);
  ASSERT_EQ(loaded.layers.size(), qres.qnet.layers.size());
  for (std::size_t l = 0; l < loaded.layers.size(); ++l) {
    EXPECT_FLOAT_EQ(loaded.layers[l].threshold,
                    qres.qnet.layers[l].threshold);
    for (std::size_t i = 0; i < loaded.layers[l].weight.numel(); ++i)
      EXPECT_FLOAT_EQ(loaded.layers[l].weight[i],
                      qres.qnet.layers[l].weight[i]);
  }
  // Loading against the wrong topology fails loudly.
  EXPECT_THROW(load_qnetwork(path, network3().topo), CheckError);
}

TEST_F(ScratchCache, SmallDataBundleShape) {
  data::DataBundle b = load_small_data(50, 20, 7);
  EXPECT_EQ(b.train.size(), 50);
  EXPECT_EQ(b.test.size(), 20);
  EXPECT_EQ(b.train.images.dim(1), 28);
}

TEST(Workloads, LookupByName) {
  EXPECT_EQ(workload_by_name("network1").topo.name, "network1");
  EXPECT_EQ(workload_by_name("network3").topo.stages.size(), 3u);
  EXPECT_THROW(workload_by_name("network9"), CheckError);
}

TEST(Workloads, FloatNetworkMatchesTopology) {
  auto wl = network1();
  nn::Network net = build_float_network(wl.topo, 1);
  auto mats = net.matrix_layers();
  ASSERT_EQ(mats.size(), 3u);
  EXPECT_EQ(mats[0]->matrix_rows(), 25);
  EXPECT_EQ(mats[1]->matrix_rows(), 300);
  EXPECT_EQ(mats[2]->matrix_rows(), 1024);
  // Forward pass works on a 28×28 input.
  nn::Tensor img({1, 28, 28, 1});
  nn::Tensor out = net.forward(img);
  EXPECT_EQ(out.numel(), 10u);
}

}  // namespace
}  // namespace sei::workloads
