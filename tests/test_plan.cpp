// Plan compilation and arena-backed scratch (docs/plans.md): lowering
// invariants (resolved engines, explicit converts, exact scratch bounds,
// baked prices), the capacity-based context binding contract, and the
// zero-allocation guarantee a bound context gives the serving hot path.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "arch/live_energy.hpp"
#include "core/arena.hpp"
#include "core/plan.hpp"
#include "core/sei_network.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "telemetry/alloc.hpp"
#include "workloads/networks.hpp"

namespace sei {
namespace {

/// Small trained + quantized network2 shared across tests.
struct Fixture {
  workloads::Workload wl = workloads::network2();
  data::Dataset train = data::generate_synthetic(800, 91);
  data::Dataset test = data::generate_synthetic(240, 92);
  quant::QNetwork qnet;

  Fixture() {
    nn::Network net = workloads::build_float_network(wl.topo, 54);
    nn::TrainConfig tc;
    tc.epochs = 2;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 300;
    sc.step = 0.05;
    qnet = quant::quantize_network(net, wl.topo, train, sc).qnet;
  }

  std::span<const float> image(int i) const {
    const std::size_t per_image =
        test.images.numel() / static_cast<std::size_t>(test.size());
    const int k = i % test.size();
    return {test.images.data() + static_cast<std::size_t>(k) * per_image,
            per_image};
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Arena, CarveIsAlignedAndBounded) {
  core::Arena a;
  a.reset(256);
  EXPECT_GE(a.capacity(), 256u);
  void* p1 = a.carve(10);  // rounds up to one 64B line
  void* p2 = a.carve(64);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % core::Arena::kAlign, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p2) % core::Arena::kAlign, 0u);
  EXPECT_EQ(static_cast<std::byte*>(p2) - static_cast<std::byte*>(p1), 64);
  // 128 of 256 bytes carved; a 256-byte ask exceeds what remains.
  EXPECT_EQ(a.carve(256), nullptr);
}

TEST(Arena, ResetReusesCapacityAndRestartsCarving) {
  core::Arena a;
  a.reset(512);
  void* first = a.carve(100);
  ASSERT_NE(first, nullptr);
  a.reset(256);  // smaller ask: block kept, carving restarts at the front
  EXPECT_GE(a.capacity(), 512u);
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(a.carve(100), first);
}

TEST(Arena, ScratchResizesWithinBindWithoutMovingStorage) {
  core::Arena a;
  a.reset(1024);
  core::Scratch<double> s;
  s.bind(a, 64);
  ASSERT_TRUE(s.is_bound());
  s.resize(10);
  double* p = s.data();
  s.assign(64, 1.5);  // full carved capacity — still the same storage
  EXPECT_EQ(s.data(), p);
  EXPECT_EQ(s.size(), 64u);
  EXPECT_EQ(s[63], 1.5);
}

TEST(Arena, ScratchFallsBackBeyondCarvedCapacity) {
  // Correctness never depends on the plan's bounds: an over-capacity resize
  // silently degrades to the owned vector (the allocation counters are what
  // police the hot path, not a crash).
  core::Arena a;
  a.reset(1024);
  core::Scratch<int> s;
  s.bind(a, 8);
  s.assign(100, 7);  // exceeds the carved 8 elements
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(s[99], 7);
  s.resize(4);  // back within bounds: arena span again
  EXPECT_EQ(s.size(), 4u);
}

TEST(Plan, LowersEveryStageWithResolvedEnginesAndForms) {
  Fixture& f = fixture();
  core::SeiNetwork hw(f.qnet, core::HardwareConfig{});
  const core::CompiledPlan& plan = hw.plan();
  ASSERT_TRUE(plan.valid());
  ASSERT_EQ(static_cast<int>(plan.ops.size()), hw.stage_count());

  core::ActForm live = core::ActForm::kImage;
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    const core::StageOp& op = plan.ops[i];
    EXPECT_EQ(op.stage, static_cast<int>(i));
    EXPECT_EQ(op.engine, core::select_engine(hw.layer(op.stage), op.stage,
                                             hw.config(), hw.packed_eval()));
    // The convert chain must be coherent: after an explicit pack/unpack the
    // op's input form matches what the previous op left live.
    if (op.pack_input) {
      EXPECT_EQ(live, core::ActForm::kBytes);
      EXPECT_EQ(op.in_form, core::ActForm::kPacked);
    } else if (op.unpack_input) {
      EXPECT_EQ(live, core::ActForm::kPacked);
      EXPECT_EQ(op.in_form, core::ActForm::kBytes);
    } else {
      EXPECT_EQ(op.in_form, live);
    }
    live = op.out_form;
    EXPECT_EQ(op.classifier, i + 1 == plan.ops.size());
  }
  EXPECT_EQ(live, core::ActForm::kScores);
}

TEST(Plan, InsertsExplicitConvertsAroundScalarIsland) {
  // Break one hidden stage's integer decomposition: the plan must lower it
  // to the scalar-bits engine and bridge the form mismatch with explicit
  // converts (packed → bytes entering the island, bytes → packed leaving
  // it), and the compiled result must still match the scalar reference.
  Fixture& f = fixture();
  core::SeiNetwork hw(f.qnet, core::HardwareConfig{});
  ASSERT_GE(hw.stage_count(), 3);
  ASSERT_EQ(hw.packed_stage_count(), hw.stage_count());

  core::MappedLayer& m = hw.layer(1);
  ASSERT_FALSE(m.eff.empty());
  m.eff[0] += 0.37f;  // no integer decomposition fits this weight any more
  hw.rebuild_packed(1);
  hw.rebuild_plan();

  const core::CompiledPlan& plan = hw.plan();
  EXPECT_EQ(plan.ops[0].engine, core::StageEngine::kDacDense);
  EXPECT_EQ(plan.ops[1].engine, core::StageEngine::kScalarBits);
  EXPECT_TRUE(plan.ops[1].unpack_input);
  EXPECT_EQ(plan.ops[2].engine, core::StageEngine::kPackedBits);
  EXPECT_TRUE(plan.ops[2].pack_input);

  std::vector<int> compiled;
  core::EvalContext ctx;
  for (int i = 0; i < 40; ++i) compiled.push_back(hw.predict(f.image(i), ctx, i));
  hw.set_plan_mode(false);
  hw.set_packed_eval(false);
  for (int i = 0; i < 40; ++i)
    EXPECT_EQ(hw.predict(f.image(i), ctx, i),
              compiled[static_cast<std::size_t>(i)])
        << "image " << i;
}

TEST(Plan, ScratchCoversIsComponentwise) {
  core::ScratchPlan a;
  a.block_sums = 100;
  a.scores = 10;
  a.finalize();
  core::ScratchPlan b;
  b.block_sums = 50;
  b.scores = 10;
  b.finalize();
  EXPECT_TRUE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
  b.packed_words = 4;  // one axis b exceeds a on — neither covers now
  b.finalize();
  EXPECT_FALSE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
  core::ScratchPlan m = a;
  m.merge(b);
  EXPECT_TRUE(m.covers(a));
  EXPECT_TRUE(m.covers(b));
}

TEST(Plan, EpochBumpsOnEveryRebuildTrigger) {
  Fixture& f = fixture();
  core::SeiNetwork hw(f.qnet, core::HardwareConfig{});
  std::uint64_t last = hw.plan().epoch;
  hw.set_packed_eval(false);
  EXPECT_GT(hw.plan().epoch, last);
  last = hw.plan().epoch;
  hw.set_packed_eval(true);
  EXPECT_GT(hw.plan().epoch, last);
  last = hw.plan().epoch;
  std::vector<int> order;
  for (int r = 0; r < hw.layer(1).geom.rows; ++r) order.push_back(r);
  hw.remap_layer(1, order);
  EXPECT_GT(hw.plan().epoch, last);
}

TEST(Plan, BakesPricesFromTheAttachedMeter) {
  Fixture& f = fixture();
  core::SeiNetwork hw(f.qnet, core::HardwareConfig{});
  EXPECT_EQ(hw.plan().priced_for, nullptr);
  const telemetry::EnergyMeter meter =
      arch::make_energy_meter(f.qnet, hw.config(), core::StructureKind::kSei);
  hw.set_meter(&meter);
  const core::CompiledPlan& plan = hw.plan();
  EXPECT_EQ(plan.priced_for, &meter);
  for (const core::StageOp& op : plan.ops) {
    if constexpr (telemetry::kEnabled) {
      EXPECT_TRUE(op.priced);
      // The baked numbers are the meter's own: charging the stage
      // dynamically must produce the identical breakdown.
      telemetry::EnergyAccum dyn;
      meter.charge_stage(static_cast<std::size_t>(op.stage), dyn);
      EXPECT_DOUBLE_EQ(op.price.pj.total(), dyn.pj.total());
      EXPECT_EQ(op.price.events.sa_compares, dyn.events.sa_compares);
    }
  }
  hw.set_meter(nullptr);
  EXPECT_EQ(hw.plan().priced_for, nullptr);
}

TEST(Plan, BoundContextServesWithoutHeapAllocation) {
  // The zero-alloc contract at its smallest scope: once prepare() has bound
  // a context to the plan, steady-state predicts perform no heap
  // allocation. This is the same property CI gates end-to-end through
  // bench_serving; here it pins the core executor in isolation.
  if (!telemetry::alloc_counting_available())
    GTEST_SKIP() << "allocation counters compiled out";
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.05;  // noise draws must not allocate either
  core::SeiNetwork hw(f.qnet, cfg);
  core::EvalContext ctx;
  hw.prepare(ctx);
  for (int i = 0; i < 4; ++i) hw.predict(f.image(i), ctx, i);  // warm
  telemetry::AllocGuard guard;
  for (int i = 0; i < 64; ++i) hw.predict(f.image(i), ctx, i);
  EXPECT_EQ(guard.count(), 0u);
}

TEST(Plan, ContextHopsBetweenCoveredNetworksWithoutRebinding) {
  // Capacity-based binding: a context bound to the union of two replicas'
  // bounds serves either one allocation-free — the fleet's chunk workers
  // hop shards on every adjacent item.
  if (!telemetry::alloc_counting_available())
    GTEST_SKIP() << "allocation counters compiled out";
  Fixture& f = fixture();
  core::HardwareConfig ca, cb;
  cb.seed += 1000003ULL;
  core::SeiNetwork a(f.qnet, ca), b(f.qnet, cb);
  core::EvalContext ctx;
  a.prepare(ctx);
  b.prepare(ctx);  // same geometry: must already be covered
  for (int i = 0; i < 4; ++i) {
    a.predict(f.image(i), ctx, i);
    b.predict(f.image(i), ctx, i);
  }
  telemetry::AllocGuard guard;
  for (int i = 0; i < 32; ++i) {
    a.predict(f.image(i), ctx, i);
    b.predict(f.image(i), ctx, i);
  }
  EXPECT_EQ(guard.count(), 0u);
}

}  // namespace
}  // namespace sei
