#include <gtest/gtest.h>

#include <cmath>

#include "nn/softmax.hpp"

namespace sei::nn {
namespace {

TEST(Softmax, ProbabilitiesSumToOne) {
  SoftmaxCrossEntropy head;
  Tensor logits({2, 3});
  logits.at(0, 0) = 1.0f;
  logits.at(0, 1) = 2.0f;
  logits.at(1, 2) = -5.0f;
  std::vector<std::uint8_t> labels{1, 0};
  head.forward(logits, labels);
  const Tensor& p = head.probabilities();
  for (int i = 0; i < 2; ++i) {
    double s = 0;
    for (int j = 0; j < 3; ++j) s += p.at(i, j);
    EXPECT_NEAR(s, 1.0, 1e-6);
  }
}

TEST(Softmax, LossOfPerfectPredictionIsSmall) {
  SoftmaxCrossEntropy head;
  Tensor logits({1, 2});
  logits.at(0, 0) = 20.0f;
  std::vector<std::uint8_t> labels{0};
  const LossResult r = head.forward(logits, labels);
  EXPECT_LT(r.loss, 1e-6);
  EXPECT_EQ(r.correct, 1);
}

TEST(Softmax, NumericallyStableForHugeLogits) {
  SoftmaxCrossEntropy head;
  Tensor logits({1, 2});
  logits.at(0, 0) = 10000.0f;
  logits.at(0, 1) = -10000.0f;
  std::vector<std::uint8_t> labels{1};
  const LossResult r = head.forward(logits, labels);
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_GT(r.loss, 20.0);  // confidently wrong (clamped at -log 1e-12)
}

TEST(Softmax, GradientIsProbMinusOnehotOverN) {
  SoftmaxCrossEntropy head;
  Tensor logits({2, 2});  // symmetric logits → p = 0.5 each
  std::vector<std::uint8_t> labels{0, 1};
  head.forward(logits, labels);
  Tensor g = head.backward(labels);
  EXPECT_NEAR(g.at(0, 0), (0.5 - 1.0) / 2, 1e-6);
  EXPECT_NEAR(g.at(0, 1), 0.5 / 2, 1e-6);
  EXPECT_NEAR(g.at(1, 1), (0.5 - 1.0) / 2, 1e-6);
}

TEST(Softmax, ArgmaxRow) {
  Tensor logits({2, 3});
  logits.at(0, 2) = 5.0f;
  logits.at(1, 0) = 1.0f;
  EXPECT_EQ(argmax_row(logits, 0), 2);
  EXPECT_EQ(argmax_row(logits, 1), 0);
}

TEST(Softmax, LabelOutOfRangeThrows) {
  SoftmaxCrossEntropy head;
  Tensor logits({1, 2});
  std::vector<std::uint8_t> labels{3};
  EXPECT_THROW(head.forward(logits, labels), CheckError);
}

}  // namespace
}  // namespace sei::nn
