// Determinism contract of the parallel evaluation engine
// (docs/parallelism.md): every batch result is bit-identical at any thread
// count and independent of the order images are evaluated in, including
// under stochastic device effects (read noise, programming variation).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <future>
#include <span>
#include <vector>

#include "arch/live_energy.hpp"
#include "core/adc_network.hpp"
#include "core/sei_network.hpp"
#include "data/synthetic_digits.hpp"
#include "exec/thread_pool.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "reliability/campaign.hpp"
#include "serve/runtime.hpp"
#include "workloads/networks.hpp"

namespace sei {
namespace {

/// Small trained + quantized network2 shared across tests.
struct Fixture {
  workloads::Workload wl = workloads::network2();
  data::Dataset train = data::generate_synthetic(800, 71);
  data::Dataset test = data::generate_synthetic(240, 72);
  quant::QNetwork qnet;

  Fixture() {
    nn::Network net = workloads::build_float_network(wl.topo, 51);
    nn::TrainConfig tc;
    tc.epochs = 2;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 300;
    sc.step = 0.05;
    qnet = quant::quantize_network(net, wl.topo, train, sc).qnet;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

/// Restores the default pool to auto sizing when a test scope ends.
struct ThreadGuard {
  ~ThreadGuard() { exec::set_default_threads(0); }
};

TEST(Determinism, SeiErrorRateIdenticalAcrossThreadCounts) {
  Fixture& f = fixture();
  ThreadGuard guard;
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.05;  // stochastic readout in the loop
  cfg.device.program_sigma = 0.03;
  core::SeiNetwork hw(f.qnet, cfg);

  exec::set_default_threads(1);
  const double serial = hw.error_rate(f.test);
  for (const int threads : {2, 8}) {
    exec::set_default_threads(threads);
    EXPECT_EQ(hw.error_rate(f.test), serial) << "threads=" << threads;
  }
}

TEST(Determinism, PredictionsIndependentOfEvaluationOrder) {
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.05;
  core::SeiNetwork hw(f.qnet, cfg);
  const std::size_t per_image = 28 * 28;
  const int n = 60;

  auto image = [&](int i) {
    return std::span<const float>{
        f.test.images.data() + static_cast<std::size_t>(i) * per_image,
        per_image};
  };
  std::vector<int> forward(static_cast<std::size_t>(n));
  std::vector<int> reverse(static_cast<std::size_t>(n));
  core::EvalContext ctx;
  for (int i = 0; i < n; ++i)
    forward[static_cast<std::size_t>(i)] = hw.predict(image(i), ctx, i);
  for (int i = n - 1; i >= 0; --i)
    reverse[static_cast<std::size_t>(i)] = hw.predict(image(i), ctx, i);
  EXPECT_EQ(forward, reverse);
}

TEST(Determinism, CachedTailReplaysFullEvaluationUnderNoise) {
  // The per-(image, stage) streams guarantee that re-evaluating only the
  // tail stages from cached activations draws exactly the noise a full
  // predict would — so split experiments remain comparable under noise.
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.05;
  core::SeiNetwork hw(f.qnet, cfg);
  const int n = 120;
  const double full = hw.error_rate(f.test, n);
  for (int stage = 1; stage < hw.stage_count(); ++stage) {
    const auto cached = hw.cache_stage_inputs(f.test, stage, n);
    EXPECT_EQ(hw.error_rate_from(f.test, stage, cached), full)
        << "stage=" << stage;
  }
}

/// Packed-vs-float equivalence harness (docs/kernels.md): runs `n` images
/// through both engines of the same mapped network and requires
/// bit-identical predictions, identical batch error rates, and metered
/// energy equal to 1e-6 pJ. `min_packed` guards against silently testing
/// the fallback against itself.
void expect_engines_match(const quant::QNetwork& qnet, core::SeiNetwork& hw,
                          const data::Dataset& test, int n, int min_packed) {
  EXPECT_GE(hw.packed_stage_count(), min_packed);
  const telemetry::EnergyMeter meter =
      arch::make_energy_meter(qnet, hw.config(), core::StructureKind::kSei);
  const std::size_t per_image = 28 * 28;
  auto image = [&](int i) {
    return std::span<const float>{
        test.images.data() + static_cast<std::size_t>(i) * per_image,
        per_image};
  };
  std::vector<int> pred[2];
  telemetry::EnergyAccum energy[2];
  double err[2];
  for (int pass = 0; pass < 2; ++pass) {
    hw.set_packed_eval(pass == 0);
    core::EvalContext ctx;
    ctx.meter = &meter;
    ctx.energy = &energy[pass];
    for (int i = 0; i < n; ++i)
      pred[pass].push_back(hw.predict(image(i), ctx, i));
    err[pass] = hw.error_rate(test, n);
  }
  EXPECT_EQ(pred[0], pred[1]);
  EXPECT_EQ(err[0], err[1]);
  EXPECT_NEAR(energy[0].pj.total(), energy[1].pj.total(), 1e-6);
  EXPECT_NEAR(energy[0].pj.interface(), energy[1].pj.interface(), 1e-6);
  hw.set_packed_eval(true);
}

TEST(Determinism, PackedEngineMatchesFloatAcrossNetworks) {
  // All three paper networks, noise-free: every stage must take the packed
  // path (integral weights + stage-0 DAC bound) and reproduce the scalar
  // reference bit-for-bit.
  data::Dataset train = data::generate_synthetic(500, 81);
  data::Dataset test = data::generate_synthetic(120, 82);
  for (const char* name : {"network1", "network2", "network3"}) {
    const workloads::Workload wl = workloads::workload_by_name(name);
    nn::Network net = workloads::build_float_network(wl.topo, 53);
    nn::TrainConfig tc;
    tc.epochs = 1;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 150;
    sc.step = 0.1;
    quant::QNetwork qnet = quant::quantize_network(net, wl.topo, train, sc).qnet;
    core::HardwareConfig cfg;
    core::SeiNetwork hw(qnet, cfg);
    SCOPED_TRACE(name);
    expect_engines_match(qnet, hw, test, 120, hw.stage_count());
  }
}

TEST(Determinism, PackedEngineMatchesFloatUnderNoiseAndSplitting) {
  Fixture& f = fixture();
  {  // Stochastic readout: the packed noisy paths share the scalar's draws.
    core::HardwareConfig cfg;
    cfg.device.read_noise_sigma = 0.05;
    core::SeiNetwork hw(f.qnet, cfg);
    SCOPED_TRACE("read noise");
    expect_engines_match(f.qnet, hw, f.test, 120, hw.stage_count());
  }
  {  // Forced row splitting, homogenized round-robin block-local masks.
    core::HardwareConfig cfg;
    cfg.limits.max_rows = 64;
    core::SeiNetwork hw(f.qnet, cfg);
    SCOPED_TRACE("split homogenized");
    expect_engines_match(f.qnet, hw, f.test, 120, hw.stage_count());
  }
  {  // Split with natural (contiguous) row order.
    core::HardwareConfig cfg;
    cfg.limits.max_rows = 64;
    cfg.homogenize = false;
    core::SeiNetwork hw(f.qnet, cfg);
    SCOPED_TRACE("split natural");
    expect_engines_match(f.qnet, hw, f.test, 120, hw.stage_count());
  }
  {  // Programming noise breaks integrality: packed must fall back cleanly.
    core::HardwareConfig cfg;
    cfg.device.program_sigma = 0.03;
    core::SeiNetwork hw(f.qnet, cfg);
    SCOPED_TRACE("non-integral fallback");
    EXPECT_EQ(hw.packed_stage_count(), 0);
    expect_engines_match(f.qnet, hw, f.test, 120, 0);
  }
}

/// Plan-vs-interpreter equivalence harness (docs/plans.md §5): runs `n`
/// images through the compiled plan and through the retained per-stage
/// interpreter on the same mapped network, requiring bit-identical
/// predictions, identical batch error rates at 1/2/8 threads, and metered
/// energy equal to 1e-6 pJ. The meter is attached to the network so the
/// plan pass exercises the baked per-op prices while the interpreter pass
/// prices dynamically — pinning the lowering's price baking too.
void expect_plan_matches_interpreter(const quant::QNetwork& qnet,
                                     core::SeiNetwork& hw,
                                     const data::Dataset& test, int n) {
  ThreadGuard guard;
  const telemetry::EnergyMeter meter =
      arch::make_energy_meter(qnet, hw.config(), core::StructureKind::kSei);
  hw.set_meter(&meter);
  const std::size_t per_image = 28 * 28;
  auto image = [&](int i) {
    return std::span<const float>{
        test.images.data() + static_cast<std::size_t>(i) * per_image,
        per_image};
  };
  std::vector<int> pred[2];
  telemetry::EnergyAccum energy[2];
  std::vector<double> err[2];
  for (int pass = 0; pass < 2; ++pass) {
    hw.set_plan_mode(pass == 0);
    core::EvalContext ctx;
    ctx.meter = &meter;
    ctx.energy = &energy[pass];
    for (int i = 0; i < n; ++i)
      pred[pass].push_back(hw.predict(image(i), ctx, i));
    for (const int threads : {1, 2, 8}) {
      exec::set_default_threads(threads);
      err[pass].push_back(hw.error_rate(test, n));
    }
  }
  hw.set_plan_mode(true);
  hw.set_meter(nullptr);
  EXPECT_EQ(pred[0], pred[1]);
  EXPECT_EQ(err[0], err[1]);
  EXPECT_NEAR(energy[0].pj.total(), energy[1].pj.total(), 1e-6);
  EXPECT_NEAR(energy[0].pj.interface(), energy[1].pj.interface(), 1e-6);
  EXPECT_EQ(energy[0].stages, energy[1].stages);
  EXPECT_EQ(energy[0].events.sa_compares, energy[1].events.sa_compares);
  EXPECT_EQ(energy[0].events.cell_activations,
            energy[1].events.cell_activations);
  EXPECT_EQ(energy[0].events.dac_conversions, energy[1].events.dac_conversions);
}

TEST(Determinism, PlanMatchesInterpreterAcrossNetworksAndMappings) {
  // Every paper network under every mapping shape (whole-matrix, split with
  // homogenized round-robin order, split with natural order), all with
  // stochastic readout in the loop: the compiled plan must reproduce the
  // interpreter bit-for-bit in each combination.
  data::Dataset train = data::generate_synthetic(500, 83);
  data::Dataset test = data::generate_synthetic(120, 84);
  for (const char* name : {"network1", "network2", "network3"}) {
    const workloads::Workload wl = workloads::workload_by_name(name);
    nn::Network net = workloads::build_float_network(wl.topo, 57);
    nn::TrainConfig tc;
    tc.epochs = 1;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 150;
    sc.step = 0.1;
    quant::QNetwork qnet = quant::quantize_network(net, wl.topo, train, sc).qnet;

    struct Variant {
      const char* tag;
      int max_rows;
      bool homogenize;
    };
    for (const Variant& v : {Variant{"whole", 0, true},
                             Variant{"split homogenized", 64, true},
                             Variant{"split natural", 64, false}}) {
      core::HardwareConfig cfg;
      cfg.device.read_noise_sigma = 0.05;
      if (v.max_rows > 0) cfg.limits.max_rows = v.max_rows;
      cfg.homogenize = v.homogenize;
      core::SeiNetwork hw(qnet, cfg);
      SCOPED_TRACE(std::string(name) + " / " + v.tag);
      expect_plan_matches_interpreter(qnet, hw, test, 60);
    }
  }
}

TEST(Determinism, PlanMatchesInterpreterOnNonIntegralFallback) {
  // Programming noise breaks integrality, so the plan lowers every stage to
  // the scalar engines — the compiled dispatch must still match.
  Fixture& f = fixture();
  core::HardwareConfig cfg;
  cfg.device.program_sigma = 0.03;
  core::SeiNetwork hw(f.qnet, cfg);
  EXPECT_EQ(hw.packed_stage_count(), 0);
  expect_plan_matches_interpreter(f.qnet, hw, f.test, 60);
}

TEST(Determinism, PackedErrorRateIdenticalAcrossThreadCounts) {
  Fixture& f = fixture();
  ThreadGuard guard;
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.05;
  core::SeiNetwork hw(f.qnet, cfg);

  exec::set_default_threads(1);
  hw.set_packed_eval(false);
  const double serial_float = hw.error_rate(f.test);
  hw.set_packed_eval(true);
  for (const int threads : {1, 2, 8}) {
    exec::set_default_threads(threads);
    EXPECT_EQ(hw.error_rate(f.test), serial_float) << "threads=" << threads;
  }
}

TEST(Determinism, AdcCalibrationAndErrorRateIdenticalAcrossThreadCounts) {
  Fixture& f = fixture();
  ThreadGuard guard;
  core::AdcConfig cfg;
  cfg.calibration_images = 100;

  exec::set_default_threads(1);
  const core::AdcNetwork serial(f.qnet, cfg, f.train);
  const double serial_err = serial.error_rate(f.test, 150);

  exec::set_default_threads(8);
  const core::AdcNetwork wide(f.qnet, cfg, f.train);
  for (int s = 0; s < serial.stage_count(); ++s)
    EXPECT_EQ(wide.full_scale(s), serial.full_scale(s)) << "stage=" << s;
  EXPECT_EQ(wide.error_rate(f.test, 150), serial_err);
  exec::set_default_threads(1);
  EXPECT_EQ(wide.error_rate(f.test, 150), serial_err);
}

TEST(Determinism, CampaignIdenticalAcrossThreadCounts) {
  Fixture& f = fixture();
  ThreadGuard guard;
  reliability::CampaignConfig cfg;
  cfg.points = {{0.01, 0.05, 0.02, 0.0, "mixed"},
                {0.02, 0.0, 0.0, 0.0, "stuck2pct"}};
  cfg.trials = 2;
  cfg.eval_images = 60;
  cfg.calib_cfg.max_images = 40;

  exec::set_default_threads(1);
  const auto serial = run_campaign(f.qnet, f.test, f.train, cfg);
  for (const int threads : {2, 8}) {
    exec::set_default_threads(threads);
    const auto wide = run_campaign(f.qnet, f.test, f.train, cfg);
    ASSERT_EQ(wide.points.size(), serial.points.size());
    EXPECT_EQ(wide.healthy_error_pct, serial.healthy_error_pct);
    for (std::size_t p = 0; p < serial.points.size(); ++p) {
      EXPECT_EQ(wide.points[p].faulty.mean, serial.points[p].faulty.mean);
      EXPECT_EQ(wide.points[p].repaired.mean, serial.points[p].repaired.mean);
      ASSERT_EQ(wide.points[p].trials.size(), serial.points[p].trials.size());
      for (std::size_t t = 0; t < serial.points[p].trials.size(); ++t) {
        const auto& a = serial.points[p].trials[t];
        const auto& b = wide.points[p].trials[t];
        EXPECT_EQ(b.seed, a.seed);
        EXPECT_EQ(b.faulty_error_pct, a.faulty_error_pct);
        EXPECT_EQ(b.pre_recalib_error_pct, a.pre_recalib_error_pct);
        EXPECT_EQ(b.repaired_error_pct, a.repaired_error_pct);
      }
    }
  }
}

TEST(Determinism, ThresholdSearchIdenticalAcrossThreadCounts) {
  Fixture& f = fixture();
  ThreadGuard guard;
  quant::SearchConfig sc;
  sc.max_search_images = 200;
  sc.step = 0.05;

  auto search_with = [&](int threads) {
    exec::set_default_threads(threads);
    nn::Network net = workloads::build_float_network(f.wl.topo, 51);
    nn::TrainConfig tc;
    tc.epochs = 2;
    nn::Trainer(tc).fit(net, f.train.images, f.train.label_span());
    return quant::quantize_network(net, f.wl.topo, f.train, sc);
  };
  const auto serial = search_with(1);
  const auto wide = search_with(4);
  ASSERT_EQ(wide.qnet.layers.size(), serial.qnet.layers.size());
  for (std::size_t l = 0; l < serial.qnet.layers.size(); ++l)
    EXPECT_EQ(wide.qnet.layers[l].threshold, serial.qnet.layers[l].threshold)
        << "stage=" << l;
  ASSERT_EQ(wide.traces.size(), serial.traces.size());
  for (std::size_t l = 0; l < serial.traces.size(); ++l) {
    EXPECT_EQ(wide.traces[l].best_threshold, serial.traces[l].best_threshold);
    EXPECT_EQ(wide.traces[l].drive_level, serial.traces[l].drive_level);
    EXPECT_EQ(wide.traces[l].curve, serial.traces[l].curve);
  }
}

/// Serving config with sentinel/breaker quiesced: these tests are about the
/// request stream alone, so maintenance must never mutate the network.
serve::RuntimeConfig quiet_serving(const std::string& checkpoint_path) {
  serve::RuntimeConfig rc;
  rc.sentinel.probe_every = 1 << 20;
  rc.breaker.trip_drop_pct = 1000.0;
  rc.queue_capacity = 256;
  rc.checkpoint_path = checkpoint_path;
  return rc;
}

TEST(Determinism, CheckpointResumeReplaysBitIdentically) {
  // The crash-safety contract (docs/serving.md): a process killed after a
  // durable checkpoint resumes the exact request stream a never-killed
  // process would have produced — predictions are pure functions of
  // (network state, image, sequence) and the sequence counter is part of
  // the checkpoint.
  Fixture& f = fixture();
  const std::string path =
      (std::filesystem::temp_directory_path() / "sei_resume.ckpt").string();
  std::filesystem::remove(path);
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.05;  // stochastic readout: RNG keying matters
  const std::size_t per_image = 28 * 28;
  auto image = [&](int i) {
    const int k = i % f.test.size();
    return std::span<const float>{
        f.test.images.data() + static_cast<std::size_t>(k) * per_image,
        per_image};
  };
  const int total = 150, cut = 100;  // "crash" after request `cut`

  // Reference stream from an uninterrupted network.
  core::SeiNetwork ref(f.qnet, cfg);
  core::EvalContext rctx;
  std::vector<int> want(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i)
    want[static_cast<std::size_t>(i)] = ref.predict(image(i), rctx, i);

  {  // First process: serve the head of the stream, checkpoint on stop.
    core::SeiNetwork net(f.qnet, cfg);
    serve::ServingRuntime rt(net, f.qnet, f.test, f.train,
                             quiet_serving(path));
    rt.start();
    EXPECT_FALSE(rt.resumed_from_checkpoint());
    std::vector<std::future<serve::Response>> futs;
    for (int i = 0; i < cut; ++i) futs.push_back(rt.submit(image(i)));
    for (int i = 0; i < cut; ++i) {
      const serve::Response r = futs[static_cast<std::size_t>(i)].get();
      ASSERT_EQ(r.status, serve::ResponseStatus::kOk) << "request " << i;
      EXPECT_EQ(r.label, want[static_cast<std::size_t>(i)]) << "request " << i;
    }
    rt.stop();  // writes the final durable checkpoint (next_sequence == cut)
  }
  {  // kill -9 mid-write simulation: a torn temp file beside the durable one.
    std::ofstream garbage(path + ".tmp", std::ios::binary);
    garbage << "checkpoint write cut off by kill -9";
  }
  {  // Restarted process: resumes at `cut` and replays the tail identically.
    core::SeiNetwork net(f.qnet, cfg);
    serve::ServingRuntime rt(net, f.qnet, f.test, f.train,
                             quiet_serving(path));
    rt.start();
    EXPECT_TRUE(rt.resumed_from_checkpoint());
    std::vector<std::future<serve::Response>> futs;
    for (int i = cut; i < total; ++i) futs.push_back(rt.submit(image(i)));
    for (int i = cut; i < total; ++i) {
      const serve::Response r = futs[static_cast<std::size_t>(i - cut)].get();
      ASSERT_EQ(r.status, serve::ResponseStatus::kOk) << "request " << i;
      EXPECT_EQ(r.sequence, static_cast<std::uint64_t>(i));
      EXPECT_EQ(r.label, want[static_cast<std::size_t>(i)]) << "request " << i;
    }
    rt.stop();
  }
  std::filesystem::remove(path);
}

TEST(Determinism, TruncatedCheckpointFallsBackToColdStart) {
  // A torn checkpoint (no rename barrier reached) must mean "cold start",
  // never a crash or a half-restored network.
  Fixture& f = fixture();
  const std::string path =
      (std::filesystem::temp_directory_path() / "sei_torn.ckpt").string();
  core::HardwareConfig cfg;
  cfg.device.read_noise_sigma = 0.05;
  const std::size_t per_image = 28 * 28;
  auto image = [&](int i) {
    return std::span<const float>{
        f.test.images.data() + static_cast<std::size_t>(i) * per_image,
        per_image};
  };
  {
    core::SeiNetwork net(f.qnet, cfg);
    serve::RuntimeSnapshot snap;
    snap.next_sequence = 40;
    ASSERT_TRUE(serve::save_checkpoint(net, snap, path).ok());
  }
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 3);

  core::SeiNetwork net(f.qnet, cfg);
  core::SeiNetwork twin(f.qnet, cfg);
  serve::ServingRuntime rt(net, f.qnet, f.test, f.train, quiet_serving(path));
  rt.start();
  EXPECT_FALSE(rt.resumed_from_checkpoint());
  const serve::Response r = rt.submit(image(0)).get();
  rt.stop();
  ASSERT_EQ(r.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(r.sequence, 0u);  // sequence counter started fresh
  core::EvalContext ctx;
  EXPECT_EQ(r.label, twin.predict(image(0), ctx, 0));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sei
