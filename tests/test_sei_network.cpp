// SEI hardware network: equivalence with the software QNetwork in the
// ideal unsplit case, splitting semantics, and device-effect behaviour.
#include <gtest/gtest.h>

#include "core/sei_network.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "workloads/networks.hpp"

namespace sei::core {
namespace {

/// Small trained + quantized network2 shared across tests.
struct Fixture {
  workloads::Workload wl = workloads::network2();
  data::Dataset train = data::generate_synthetic(1000, 61);
  data::Dataset test = data::generate_synthetic(300, 62);
  quant::QNetwork qnet;

  Fixture() {
    nn::Network net = workloads::build_float_network(wl.topo, 51);
    nn::TrainConfig tc;
    tc.epochs = 3;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 400;
    sc.step = 0.02;
    qnet = quant::quantize_network(net, wl.topo, train, sc).qnet;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(SeiNetwork, IdealUnsplitMatchesSoftwareQNetwork) {
  Fixture& f = fixture();
  HardwareConfig cfg;
  cfg.weight_bits = 14;  // negligible quantization error
  cfg.device.bits = 7;   // one slice per polarity
  cfg.input_bits = 14;
  cfg.limits.max_rows = 4096;  // keep every stage unsplit for this test
  SeiNetwork hw(f.qnet, cfg);
  for (int s = 0; s < hw.stage_count(); ++s)
    ASSERT_EQ(hw.layer(s).block_count, 1);  // network2 fits unsplit

  const std::size_t per_image = 28 * 28;
  int agree = 0;
  const int n = 150;
  for (int i = 0; i < n; ++i) {
    std::span<const float> img{
        f.test.images.data() + static_cast<std::size_t>(i) * per_image,
        per_image};
    if (hw.predict(img) == f.qnet.predict(img)) ++agree;
  }
  // 14-bit weights + 14-bit inputs: only razor-edge threshold cases differ.
  EXPECT_GE(agree, n - 2);
}

TEST(SeiNetwork, EightBitWeightsStayClose) {
  Fixture& f = fixture();
  HardwareConfig cfg;  // paper defaults: 8-bit weights, 4-bit devices
  SeiNetwork hw(f.qnet, cfg);
  const double sw_err = f.qnet.error_rate(f.test);
  const double hw_err = hw.error_rate(f.test);
  EXPECT_NEAR(hw_err, sw_err, 3.0);
}

TEST(SeiNetwork, UnipolarModeMatchesBipolar) {
  Fixture& f = fixture();
  HardwareConfig bi;
  HardwareConfig uni;
  uni.sign_mode = SignMode::kUnipolarDynThresh;
  SeiNetwork a(f.qnet, bi);
  SeiNetwork b(f.qnet, uni);
  // Ideal devices: identical decisions (both reduce to the same integers).
  const std::size_t per_image = 28 * 28;
  for (int i = 0; i < 80; ++i) {
    std::span<const float> img{
        f.test.images.data() + static_cast<std::size_t>(i) * per_image,
        per_image};
    EXPECT_EQ(a.predict(img), b.predict(img)) << "image " << i;
  }
}

TEST(SeiNetwork, CacheAndTailEvaluationMatchesFullPredict) {
  Fixture& f = fixture();
  HardwareConfig cfg;
  SeiNetwork hw(f.qnet, cfg);
  const double full = hw.error_rate(f.test, 120);
  auto inputs = hw.cache_stage_inputs(f.test, 1, 120);
  const double tail = hw.error_rate_from(f.test, 1, inputs);
  EXPECT_NEAR(full, tail, 1e-9);
}

TEST(SeiNetwork, RemapChangesPartitionNotSemantics) {
  Fixture& f = fixture();
  HardwareConfig cfg;
  SeiNetwork hw(f.qnet, cfg);
  const double before = hw.error_rate(f.test, 100);
  // network2 stage 1 has one block; remapping with a shuffled order is a
  // pure relabeling and must not change any decision.
  auto order = split::natural_order(f.qnet.layers[1].geom.rows);
  Rng rng(5);
  rng.shuffle(order);
  hw.remap_layer(1, order);
  EXPECT_NEAR(hw.error_rate(f.test, 100), before, 1e-9);
}

TEST(SeiNetwork, SplitVoteSemantics) {
  // Force splitting of network2's stage 1 (36 logical rows) with a tiny
  // crossbar limit, then check vote-threshold monotonicity: raising the
  // vote can only turn 1-bits into 0-bits (more conservative outputs).
  Fixture& f = fixture();
  HardwareConfig cfg;
  cfg.limits.max_rows = 48;  // 12 logical rows per crossbar → 3 blocks
  SeiNetwork hw(f.qnet, cfg);
  EXPECT_EQ(hw.layer(1).block_count, 3);

  const std::size_t per_image = 28 * 28;
  std::span<const float> img{f.test.images.data(), per_image};
  auto count_ones = [&](int vote) {
    hw.layer(1).vote_threshold = vote;
    auto bits = hw.cache_stage_inputs(f.test, 2, 1);  // output of stage 1
    int ones = 0;
    for (auto b : bits[0]) ones += b;
    return ones;
  };
  const int or_ones = count_ones(1);
  const int maj_ones = count_ones(2);
  const int and_ones = count_ones(3);
  EXPECT_GE(or_ones, maj_ones);
  EXPECT_GE(maj_ones, and_ones);
}

TEST(SeiNetwork, DeviceVariationDegradesGracefully) {
  Fixture& f = fixture();
  HardwareConfig clean;
  HardwareConfig noisy;
  noisy.device.program_sigma = 0.08;
  SeiNetwork a(f.qnet, clean);
  SeiNetwork b(f.qnet, noisy);
  const double clean_err = a.error_rate(f.test);
  const double noisy_err = b.error_rate(f.test);
  EXPECT_LT(noisy_err, clean_err + 25.0);  // degraded but not destroyed
}

TEST(SeiNetwork, AccountingCountsCrossbarsAndCells) {
  Fixture& f = fixture();
  HardwareConfig cfg;
  SeiNetwork hw(f.qnet, cfg);
  // network2: 9×4, 36×8, 200×10 logical. The FC stage expands to
  // 200 × 4 = 800 physical rows → 2 blocks at the 512 limit, so 4 arrays.
  EXPECT_EQ(hw.total_crossbars(), 4);
  EXPECT_EQ(hw.total_cells(),
            4LL * (9 * 4 + 36 * 8 + 200 * 10));  // 4 cells per weight
}

TEST(SeiNetwork, ReadNoiseReachesTheDecisionPath) {
  // Regression test: read_noise_sigma must perturb the sense-amp compare,
  // not just the (unused-in-inference) Crossbar::mvm path. Read-noise
  // streams are counter-based per (image, stage), so the check is against
  // a noise-free twin: same seed → identical programmed state, and any
  // activation difference can only come from the readout noise.
  Fixture& f = fixture();
  HardwareConfig clean_cfg;
  HardwareConfig noisy_cfg;
  noisy_cfg.device.read_noise_sigma = 0.25;  // aggressive, to force flips
  SeiNetwork clean(f.qnet, clean_cfg);
  SeiNetwork noisy(f.qnet, noisy_cfg);
  const auto a = clean.cache_stage_inputs(f.test, 1, 40);
  const auto b = noisy.cache_stage_inputs(f.test, 1, 40);
  int changed = 0;
  for (int i = 0; i < 40; ++i)
    if (a[static_cast<std::size_t>(i)] != b[static_cast<std::size_t>(i)])
      ++changed;
  EXPECT_GT(changed, 0);
  // And the noisy activations themselves are reproducible: identical calls
  // see identical per-image streams regardless of what ran in between.
  EXPECT_EQ(noisy.cache_stage_inputs(f.test, 1, 40), b);
}

TEST(SeiNetwork, SaOffsetIsStaticPerInstance) {
  // Sense-amp offset mismatch is sampled once at build: predictions stay
  // deterministic, but differ from the offset-free network for some images.
  Fixture& f = fixture();
  HardwareConfig cfg;
  cfg.sa_offset_sigma = 30.0;  // large, in integer-weight LSBs
  SeiNetwork clean(f.qnet, HardwareConfig{});
  SeiNetwork skewed(f.qnet, cfg);
  const std::size_t per_image = 28 * 28;
  int diff = 0;
  for (int i = 0; i < 60; ++i) {
    std::span<const float> img{
        f.test.images.data() + static_cast<std::size_t>(i) * per_image,
        per_image};
    const int p = skewed.predict(img);
    EXPECT_EQ(skewed.predict(img), p);  // deterministic
    if (p != clean.predict(img)) ++diff;
  }
  EXPECT_GT(diff, 0);
  // Moderate offsets barely move accuracy (1-bit decisions are robust).
  HardwareConfig mild;
  mild.sa_offset_sigma = 2.0;
  SeiNetwork m(f.qnet, mild);
  EXPECT_NEAR(m.error_rate(f.test, 200), clean.error_rate(f.test, 200), 4.0);
}

TEST(SeiNetwork, IrDropShiftsDecisionsOnLargeArrays) {
  Fixture& f = fixture();
  HardwareConfig clean;
  HardwareConfig droopy;
  droopy.device.ir_drop_alpha = 0.6;
  SeiNetwork a(f.qnet, clean);
  SeiNetwork b(f.qnet, droopy);
  // The systematic attenuation shifts analog sums below their thresholds;
  // accuracy must not improve and typically degrades.
  const double clean_err = a.error_rate(f.test, 200);
  const double droop_err = b.error_rate(f.test, 200);
  EXPECT_GE(droop_err, clean_err - 0.51);
}

TEST(SeiNetwork, PredictIsDeterministicWithoutReadNoise) {
  Fixture& f = fixture();
  HardwareConfig cfg;
  cfg.device.program_sigma = 0.05;  // variation fixed at programming time
  SeiNetwork hw(f.qnet, cfg);
  const std::size_t per_image = 28 * 28;
  std::span<const float> img{f.test.images.data(), per_image};
  const int p = hw.predict(img);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(hw.predict(img), p);
}

}  // namespace
}  // namespace sei::core
