// Conv2D forward vs a direct (non-im2col) reference, and backward vs
// numerical gradients.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/conv2d.hpp"

namespace sei::nn {
namespace {

/// Direct convolution per Equ. (1) of the paper (valid, stride 1, NHWC).
Tensor direct_conv(const Tensor& in, const Tensor& wmat, const Tensor& bias,
                   int kernel, int out_ch) {
  const int n = in.dim(0), h = in.dim(1), w = in.dim(2), c = in.dim(3);
  const int oh = h - kernel + 1, ow = w - kernel + 1;
  Tensor out({n, oh, ow, out_ch});
  for (int img = 0; img < n; ++img)
    for (int y = 0; y < oh; ++y)
      for (int x = 0; x < ow; ++x)
        for (int z = 0; z < out_ch; ++z) {
          double acc = bias.at(z);
          for (int di = 0; di < kernel; ++di)
            for (int dj = 0; dj < kernel; ++dj)
              for (int ch = 0; ch < c; ++ch) {
                const int row = (di * kernel + dj) * c + ch;
                acc += static_cast<double>(in.at(img, y + di, x + dj, ch)) *
                       wmat.at(row, z);
              }
          out.at(img, y, x, z) = static_cast<float>(acc);
        }
  return out;
}

Tensor random_tensor(std::vector<int> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (float& v : t.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

TEST(Conv2D, MatrixGeometryMatchesTable2) {
  Rng rng(1);
  Conv2D c1(5, 1, 12, rng);
  EXPECT_EQ(c1.matrix_rows(), 25);  // weight matrix 1 of Network 1
  EXPECT_EQ(c1.matrix_cols(), 12);
  Conv2D c2(5, 12, 64, rng);
  EXPECT_EQ(c2.matrix_rows(), 300);  // weight matrix 2 of Network 1
  EXPECT_EQ(c2.matrix_cols(), 64);
}

TEST(Conv2D, ForwardMatchesDirectConvolution) {
  Rng rng(2);
  Conv2D conv(3, 2, 4, rng);
  Tensor in = random_tensor({2, 6, 5, 2}, rng);
  Tensor got = conv.forward(in, false);
  Tensor expect =
      direct_conv(in, conv.weight_matrix(), conv.bias(), 3, 4);
  ASSERT_EQ(got.shape(), expect.shape());
  for (std::size_t i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got[i], expect[i], 1e-4f);
}

TEST(Conv2D, Im2colOrderingIsDiDjChannel) {
  // A 2×2 kernel over a 2-channel 2×2 input: the single output position's
  // patch must read (di=0,dj=0,c=0..1), (di=0,dj=1,c=0..1), (di=1,...).
  Tensor in({1, 2, 2, 2});
  float v = 0.0f;
  for (int y = 0; y < 2; ++y)
    for (int x = 0; x < 2; ++x)
      for (int c = 0; c < 2; ++c) in.at(0, y, x, c) = v++;
  Tensor cols = Conv2D::im2col(in, 2);
  ASSERT_EQ(cols.shape(), (std::vector<int>{1, 8}));
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(cols[static_cast<std::size_t>(i)], static_cast<float>(i));
}

TEST(Conv2D, BackwardMatchesNumericalGradient) {
  Rng rng(3);
  Conv2D conv(3, 1, 2, rng);
  Tensor in = random_tensor({1, 5, 5, 1}, rng);

  // Loss = sum of outputs; dL/dout = ones.
  auto loss = [&](Conv2D& c, const Tensor& x) {
    Tensor out = c.forward(x, false);
    double s = 0.0;
    for (float o : out.flat()) s += o;
    return s;
  };

  Tensor out = conv.forward(in, true);
  Tensor ones(out.shape());
  ones.fill(1.0f);
  Tensor grad_in = conv.backward(ones);

  // Input gradient.
  const double eps = 1e-3;
  for (std::size_t i = 0; i < in.numel(); i += 7) {
    Tensor plus = in, minus = in;
    plus[i] += static_cast<float>(eps);
    minus[i] -= static_cast<float>(eps);
    const double num = (loss(conv, plus) - loss(conv, minus)) / (2 * eps);
    EXPECT_NEAR(grad_in[i], num, 1e-2) << "input grad at " << i;
  }

  // Weight gradient.
  std::vector<ParamRef> params;
  conv.params(params);
  ASSERT_EQ(params.size(), 2u);
  Tensor& w = *params[0].value;
  Tensor& wg = *params[0].grad;
  for (std::size_t i = 0; i < w.numel(); i += 5) {
    const float orig = w[i];
    w[i] = orig + static_cast<float>(eps);
    const double lp = loss(conv, in);
    w[i] = orig - static_cast<float>(eps);
    const double lm = loss(conv, in);
    w[i] = orig;
    EXPECT_NEAR(wg[i], (lp - lm) / (2 * eps), 1e-2) << "weight grad at " << i;
  }

  // Bias gradient: dL/db_c = number of output positions.
  Tensor& bg = *params[1].grad;
  const float positions = static_cast<float>(out.dim(1) * out.dim(2));
  for (std::size_t i = 0; i < bg.numel(); ++i)
    EXPECT_NEAR(bg[i], positions, 1e-3f);
}

TEST(Conv2D, RejectsWrongChannelCount) {
  Rng rng(4);
  Conv2D conv(3, 2, 4, rng);
  Tensor in({1, 6, 6, 3});
  EXPECT_THROW(conv.forward(in, false), CheckError);
}

TEST(Conv2D, RejectsInputSmallerThanKernel) {
  Rng rng(4);
  Conv2D conv(5, 1, 2, rng);
  Tensor in({1, 4, 4, 1});
  EXPECT_THROW(conv.forward(in, false), CheckError);
}

}  // namespace
}  // namespace sei::nn
