// Crossbar array: programming, ideal/selected MVM, fault accounting.
#include <gtest/gtest.h>

#include "rram/crossbar.hpp"

namespace sei::rram {
namespace {

Crossbar make_ideal(int rows, int cols, std::uint64_t seed = 1) {
  Rng rng(seed);
  return Crossbar(rows, cols, DeviceConfig{}, rng);
}

TEST(Crossbar, StartsAllOff) {
  Crossbar xb = make_ideal(4, 3);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(xb.cell(r, c), 0.0);
      EXPECT_EQ(xb.cell_level(r, c), 0);
    }
}

TEST(Crossbar, IdealMvmIsExactIntegerProduct) {
  Crossbar xb = make_ideal(3, 2);
  // Matrix [[1,2],[3,4],[5,6]] in levels.
  xb.program(0, 0, 1);
  xb.program(0, 1, 2);
  xb.program(1, 0, 3);
  xb.program(1, 1, 4);
  xb.program(2, 0, 5);
  xb.program(2, 1, 6);
  Rng rng(2);
  std::vector<double> in{1.0, 0.5, 2.0};
  std::vector<double> out(2);
  xb.mvm(in, out, rng);
  EXPECT_DOUBLE_EQ(out[0], 1.0 + 1.5 + 10.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0 + 2.0 + 12.0);
}

TEST(Crossbar, SelectedMvmAppliesPortCoefficients) {
  // SEI semantics: selected rows contribute port_coeff · cell. Two cells
  // per weight with coefficients {16, 1} reconstruct an 8-bit magnitude.
  Crossbar xb = make_ideal(4, 1);
  xb.program(0, 0, 7);   // hi nibble of +127
  xb.program(1, 0, 15);  // lo nibble
  xb.program(2, 0, 3);   // hi nibble of second weight (unselected)
  xb.program(3, 0, 9);
  Rng rng(3);
  std::vector<std::uint8_t> select{1, 1, 0, 0};
  std::vector<double> coeff{16.0, 1.0, 16.0, 1.0};
  std::vector<double> out(1);
  xb.mvm_selected(select, coeff, out, rng);
  EXPECT_DOUBLE_EQ(out[0], 127.0);
  select = {1, 1, 1, 1};
  xb.mvm_selected(select, coeff, out, rng);
  EXPECT_DOUBLE_EQ(out[0], 127.0 + 57.0);
}

TEST(Crossbar, NegativePortCoefficientSubtracts) {
  Crossbar xb = make_ideal(2, 1);
  xb.program(0, 0, 5);
  xb.program(1, 0, 3);
  Rng rng(4);
  std::vector<std::uint8_t> select{1, 1};
  std::vector<double> coeff{1.0, -1.0};
  std::vector<double> out(1);
  xb.mvm_selected(select, coeff, out, rng);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
}

TEST(Crossbar, ProgramVariationMovesCells) {
  DeviceConfig cfg;
  cfg.program_sigma = 0.2;
  Rng rng(5);
  Crossbar xb(16, 16, cfg, rng);
  int moved = 0;
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 16; ++c) {
      xb.program(r, c, 8);
      if (std::abs(xb.cell(r, c) - 8.0) > 1e-9) ++moved;
    }
  EXPECT_GT(moved, 200);  // essentially every cell deviates a little
  EXPECT_GT(xb.misprogrammed_fraction(), 0.05);
}

TEST(Crossbar, IdealDeviceNeverMisprograms) {
  Crossbar xb = make_ideal(8, 8);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) xb.program(r, c, (r + c) % 16);
  EXPECT_DOUBLE_EQ(xb.misprogrammed_fraction(), 0.0);
}

TEST(Crossbar, StuckCellsIgnoreProgramming) {
  DeviceConfig cfg;
  cfg.stuck_fraction = 0.5;
  Rng rng(6);
  Crossbar xb(20, 20, cfg, rng);
  int stuck_kept = 0;
  for (int r = 0; r < 20; ++r)
    for (int c = 0; c < 20; ++c) {
      const double before = xb.cell(r, c);
      xb.program(r, c, 7);
      if (xb.cell(r, c) == before && before != 7.0) ++stuck_kept;
    }
  EXPECT_GT(stuck_kept, 50);  // ~half the array is frozen
}

TEST(Crossbar, ReadNoisePerturbsOutputs) {
  DeviceConfig cfg;
  cfg.read_noise_sigma = 0.05;
  Rng rng(7);
  Crossbar xb(2, 1, cfg, rng);
  xb.program(0, 0, 10);
  std::vector<double> in{1.0, 0.0};
  std::vector<double> out(1);
  Rng read_rng(8);
  xb.mvm(in, out, read_rng);
  EXPECT_NE(out[0], 10.0);
  EXPECT_NEAR(out[0], 10.0, 3.0);
}

TEST(Crossbar, IrDropAttenuatesWithDistance) {
  DeviceConfig cfg;
  cfg.ir_drop_alpha = 0.2;  // 20% loss at 512 cells of wire
  Rng rng(10);
  Crossbar xb(512, 512, cfg, rng);
  EXPECT_DOUBLE_EQ(xb.ir_factor(0, 0), 1.0);         // at the driver/SA
  EXPECT_NEAR(xb.ir_factor(511, 511), 0.8, 0.001);   // far corner
  EXPECT_GT(xb.ir_factor(100, 0), xb.ir_factor(400, 0));
  xb.program(0, 0, 10);
  xb.program(500, 500, 10);
  EXPECT_DOUBLE_EQ(xb.cell(0, 0), 10.0);
  EXPECT_LT(xb.cell(500, 500), 8.1);
  EXPECT_GT(xb.cell(500, 500), 7.9);
}

TEST(Crossbar, NoIrDropByDefault) {
  Crossbar xb = make_ideal(512, 512);
  EXPECT_DOUBLE_EQ(xb.ir_factor(511, 511), 1.0);
}

TEST(Crossbar, ShapeChecks) {
  Crossbar xb = make_ideal(2, 2);
  Rng rng(9);
  std::vector<double> in(3), out(2);
  EXPECT_THROW(xb.mvm(in, out, rng), CheckError);
}

TEST(Crossbar, ForcedStuckCellSurvivesEscalatedProgramming) {
  Crossbar xb = make_ideal(4, 4);
  xb.force_stuck(1, 2, 5);
  EXPECT_DOUBLE_EQ(xb.cell(1, 2), 5.0);
  xb.program(1, 2, 12);
  xb.program(1, 2, 12, /*max_attempts=*/64);  // escalation cannot move it
  EXPECT_DOUBLE_EQ(xb.cell(1, 2), 5.0);
  EXPECT_EQ(xb.cell_level(1, 2), 12);  // the intent is still recorded
  // A stuck-off-target cell counts as misprogrammed.
  EXPECT_GT(xb.misprogrammed_fraction(), 0.0);
}

TEST(Crossbar, RemapRowNeedsSpares) {
  Crossbar no_spares = make_ideal(4, 4);
  EXPECT_EQ(no_spares.spare_rows_total(), 0);
  EXPECT_FALSE(no_spares.remap_row(2));
  EXPECT_EQ(no_spares.physical_row(2), 2);

  Rng rng(21);
  Crossbar xb(4, 4, DeviceConfig{}, rng, 2);
  EXPECT_EQ(xb.physical_rows(), 6);
  xb.program(2, 0, 9);
  EXPECT_TRUE(xb.remap_row(2));
  EXPECT_EQ(xb.physical_row(2), 4);  // first spare
  EXPECT_EQ(xb.spare_rows_used(), 1);
  EXPECT_DOUBLE_EQ(xb.cell(2, 0), 9.0);  // intent follows the row
  EXPECT_TRUE(xb.remap_row(2));          // second spare
  EXPECT_FALSE(xb.remap_row(2));         // exhausted
}

TEST(Crossbar, IrDropClampsToZeroInOversizedArrays) {
  DeviceConfig cfg;
  cfg.ir_drop_alpha = 2.5;  // pathological wire loss
  Rng rng(22);
  Crossbar xb(512, 512, cfg, rng);
  EXPECT_DOUBLE_EQ(xb.ir_factor(0, 0), 1.0);
  // 1 − 2.5 · 0.5·(511+511)/512 < 0 → clamped, never a sign flip.
  EXPECT_DOUBLE_EQ(xb.ir_factor(511, 511), 0.0);
  xb.program(511, 511, 15);
  EXPECT_DOUBLE_EQ(xb.cell(511, 511), 0.0);
}

TEST(Crossbar, AgeIsMemorylessPerCall) {
  DeviceConfig cfg;
  cfg.drift_nu = 0.05;
  cfg.drift_nu_sigma = 0.02;
  Rng ra(23), rb(23);
  Crossbar one_step(8, 8, cfg, ra), two_steps(8, 8, cfg, rb);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) {
      one_step.program(r, c, 10);
      two_steps.program(r, c, 10);
    }
  one_step.age(1000.0);
  two_steps.age(400.0);
  two_steps.age(600.0);
  EXPECT_DOUBLE_EQ(one_step.age_seconds(), two_steps.age_seconds());
  double total = 0.0;
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) {
      // Incremental decay telescopes: aging in two steps equals one step.
      EXPECT_NEAR(one_step.cell(r, c), two_steps.cell(r, c), 1e-12);
      // Drift only loses signal (a cell whose exponent clamped to 0 keeps
      // its value exactly).
      EXPECT_LE(one_step.cell(r, c), 10.0);
      total += one_step.cell(r, c);
    }
  EXPECT_LT(total, 0.9 * 640.0);  // the array as a whole clearly decayed
}

TEST(Crossbar, CellsReprogrammedAfterAgingStartFresh) {
  DeviceConfig cfg;
  cfg.drift_nu = 0.1;
  Rng rng(24);
  Crossbar xb(2, 2, cfg, rng);
  xb.program(0, 0, 10);
  xb.age(1.0e6);
  EXPECT_LT(xb.cell(0, 0), 10.0);
  xb.reprogram(0, 0, 1);
  EXPECT_DOUBLE_EQ(xb.cell(0, 0), 10.0);  // fresh at the current age
}

}  // namespace
}  // namespace sei::rram
