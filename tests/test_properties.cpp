// Cross-module property tests (parameterized sweeps over configurations).
#include <gtest/gtest.h>

#include <tuple>

#include "arch/cost_model.hpp"
#include "core/mapping.hpp"
#include "split/homogenize.hpp"
#include "workloads/networks.hpp"

namespace sei {
namespace {

// ---------------------------------------------------------------------------
// Mapping exactness: for ideal devices, the SEI mapping must reconstruct the
// quantized integer weights exactly for every (sign mode, device bits,
// weight bits) combination where the slicing is well-formed.
class MappingSweep
    : public ::testing::TestWithParam<std::tuple<core::SignMode, int, int>> {};

TEST_P(MappingSweep, IdealEffectiveEqualsQuantized) {
  const auto [mode, device_bits, weight_bits] = GetParam();
  quant::QLayer l;
  l.geom.kind = quant::StageSpec::Kind::Fc;
  l.geom.in_h = 1;
  l.geom.in_w = 12;
  l.geom.in_ch = 1;
  l.geom.out_h = l.geom.out_w = l.geom.pooled_h = l.geom.pooled_w = 1;
  l.geom.rows = 12;
  l.geom.cols = 5;
  l.weight = nn::Tensor({12, 5});
  l.bias = nn::Tensor({5});
  Rng wr(static_cast<std::uint64_t>(device_bits * 100 + weight_bits));
  for (float& v : l.weight.flat()) v = static_cast<float>(wr.uniform(-1, 1));

  core::HardwareConfig cfg;
  cfg.sign_mode = mode;
  cfg.device.bits = device_bits;
  cfg.weight_bits = weight_bits;
  Rng rng(1);
  const core::MappedLayer m =
      core::map_layer(l, cfg, split::natural_order(12), rng);
  const quant::QuantizedMatrix q =
      quant::quantize_weights(l.weight, weight_bits);
  for (int r = 0; r < 12; ++r)
    for (int c = 0; c < 5; ++c)
      EXPECT_NEAR(m.effective(r, c), static_cast<double>(q.at(r, c)), 1e-6)
          << "mode=" << static_cast<int>(mode) << " db=" << device_bits
          << " wb=" << weight_bits << " at (" << r << "," << c << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Modes, MappingSweep,
    ::testing::Combine(::testing::Values(core::SignMode::kBipolarPort,
                                         core::SignMode::kUnipolarDynThresh),
                       ::testing::Values(2, 3, 4, 6, 8),  // device bits
                       ::testing::Values(4, 6, 8, 10)));  // weight bits

// ---------------------------------------------------------------------------
// Cost-model dominance: for every network and crossbar size, SEI must cost
// less energy and area than 1-bit+ADC, which must cost less than the
// baseline.
class CostSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(CostSweep, StructureDominanceHolds) {
  const auto [name, size] = GetParam();
  core::HardwareConfig cfg;
  cfg.limits.max_rows = size;
  cfg.limits.max_cols = size;
  const auto topo = workloads::workload_by_name(name).topo;
  const auto base =
      arch::estimate_cost(topo, cfg, core::StructureKind::kDacAdc8);
  const auto bin =
      arch::estimate_cost(topo, cfg, core::StructureKind::kBinInputAdc);
  const auto sei = arch::estimate_cost(topo, cfg, core::StructureKind::kSei);
  EXPECT_LT(bin.energy_pj.total(), base.energy_pj.total());
  EXPECT_LT(sei.energy_pj.total(), bin.energy_pj.total());
  EXPECT_LT(bin.area_um2.total(), base.area_um2.total());
  EXPECT_LT(sei.area_um2.total(), bin.area_um2.total());
  // All components non-negative.
  for (const auto* b : {&base, &bin, &sei}) {
    EXPECT_GE(b->energy_pj.other(), 0.0);
    EXPECT_GE(b->area_um2.other(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    NetworksAndSizes, CostSweep,
    ::testing::Combine(::testing::Values("network1", "network2", "network3"),
                       ::testing::Values(128, 256, 512)));

// ---------------------------------------------------------------------------
// Binarization monotonicity: a higher threshold can only clear bits.
TEST(Properties, BinarizeMonotoneInThreshold) {
  quant::QLayer l;
  l.geom.kind = quant::StageSpec::Kind::Conv;
  l.geom.kernel = 1;
  l.geom.in_h = l.geom.in_w = 4;
  l.geom.in_ch = 1;
  l.geom.out_h = l.geom.out_w = 4;
  l.geom.pool_after = true;
  l.geom.pooled_h = l.geom.pooled_w = 2;
  l.geom.rows = 1;
  l.geom.cols = 1;
  Rng rng(3);
  std::vector<float> sums(16);
  for (auto& v : sums) v = static_cast<float>(rng.uniform(0, 1));
  quant::BitMap prev;
  for (float t : {0.0f, 0.2f, 0.4f, 0.6f, 0.8f, 1.0f}) {
    l.threshold = t;
    quant::BitMap bits = quant::binarize_and_pool(l, sums);
    if (!prev.empty()) {
      for (std::size_t i = 0; i < bits.size(); ++i)
        EXPECT_LE(bits[i], prev[i]) << "threshold " << t;
    }
    prev = bits;
  }
}

// ---------------------------------------------------------------------------
// Homogenization dominance: the optimized order never has a larger distance
// than the natural order, across random matrices.
class HomogenizeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HomogenizeSweep, BeatsNaturalOrder) {
  const auto [rows, cols, blocks] = GetParam();
  nn::Tensor w({rows, cols});
  Rng rng(static_cast<std::uint64_t>(rows * 31 + cols * 7 + blocks));
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-1, 1));
  split::HomogenizeConfig cfg;
  cfg.iterations = 4000;
  const auto res = split::homogenize_rows(w, blocks, cfg);
  const double natural = split::partition_distance(
      w, split::partition_from_order(split::natural_order(rows), blocks));
  EXPECT_LE(res.final_distance, natural + 1e-12);
  // And the claimed final distance is honest.
  EXPECT_NEAR(res.final_distance,
              split::partition_distance(
                  w, split::partition_from_order(res.order, blocks)),
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(Shapes, HomogenizeSweep,
                         ::testing::Values(std::make_tuple(30, 4, 2),
                                           std::make_tuple(60, 8, 3),
                                           std::make_tuple(100, 16, 5),
                                           std::make_tuple(300, 64, 3)));

// ---------------------------------------------------------------------------
// Geometry consistency: for every Table 2 network, stage input sizes chain
// (stage i+1 consumes exactly stage i's pooled output).
TEST(Properties, GeometryChains) {
  for (const char* name : {"network1", "network2", "network3"}) {
    const auto topo = workloads::workload_by_name(name).topo;
    const auto g = quant::resolve_geometry(topo);
    for (std::size_t i = 0; i + 1 < g.size(); ++i) {
      const long long produced = static_cast<long long>(g[i].pooled_h) *
                                 g[i].pooled_w * g[i].cols;
      const long long consumed =
          static_cast<long long>(g[i + 1].in_h) * g[i + 1].in_w *
          g[i + 1].in_ch;
      EXPECT_EQ(produced, consumed) << name << " stage " << i;
    }
  }
}

}  // namespace
}  // namespace sei
