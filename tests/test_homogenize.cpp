// Matrix homogenization: the Equ. (10) distance and the stochastic search.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "split/homogenize.hpp"

namespace sei::split {
namespace {

nn::Tensor random_weights(int rows, int cols, std::uint64_t seed) {
  nn::Tensor w({rows, cols});
  Rng rng(seed);
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-1, 1));
  return w;
}

TEST(Distance, ZeroForIdenticalBlocks) {
  nn::Tensor w({4, 2});
  // Rows 0,1 identical to rows 2,3 → any 2-block split by pairs is exact.
  w.at(0, 0) = 1;
  w.at(0, 1) = -1;
  w.at(2, 0) = 1;
  w.at(2, 1) = -1;
  w.at(1, 0) = 0.5f;
  w.at(3, 0) = 0.5f;
  Partition p;
  p.blocks = {{0, 1}, {2, 3}};
  EXPECT_NEAR(partition_distance(w, p), 0.0, 1e-9);
}

TEST(Distance, MatchesHandComputation) {
  nn::Tensor w({2, 1});
  w.at(0, 0) = 1.0f;
  w.at(1, 0) = 3.0f;
  Partition p;
  p.blocks = {{0}, {1}};
  // means: 1 and 3 → distance 2.
  EXPECT_NEAR(partition_distance(w, p), 2.0, 1e-9);
}

TEST(Distance, SumsAllPairs) {
  nn::Tensor w({3, 1});
  w.at(0, 0) = 0.0f;
  w.at(1, 0) = 1.0f;
  w.at(2, 0) = 2.0f;
  Partition p;
  p.blocks = {{0}, {1}, {2}};
  // pairs: |0−1| + |0−2| + |1−2| = 1 + 2 + 1 = 4.
  EXPECT_NEAR(partition_distance(w, p), 4.0, 1e-9);
}

TEST(Homogenize, NeverIncreasesDistance) {
  nn::Tensor w = random_weights(60, 8, 5);
  HomogenizeConfig cfg;
  cfg.iterations = 5000;
  HomogenizeResult res = homogenize_rows(w, 4, cfg);
  EXPECT_LE(res.final_distance, res.initial_distance + 1e-9);
  EXPECT_GT(res.accepted_swaps, 0);
}

TEST(Homogenize, FinalDistanceMatchesRecomputation) {
  // The incrementally maintained distance must equal a from-scratch
  // evaluation of the returned order.
  nn::Tensor w = random_weights(40, 6, 9);
  HomogenizeConfig cfg;
  cfg.iterations = 3000;
  HomogenizeResult res = homogenize_rows(w, 3, cfg);
  Partition p = partition_from_order(res.order, 3);
  EXPECT_NEAR(res.final_distance, partition_distance(w, p), 1e-6);
}

TEST(Homogenize, AchievesLargeReductionOnStructuredMatrix) {
  // Rows sorted by magnitude — the worst case for contiguous splitting,
  // analogous to the channel-ordered conv rows in the paper. The paper
  // reports 80–90% distance reduction on trained CNNs.
  const int rows = 90, cols = 8;
  nn::Tensor w({rows, cols});
  Rng rng(3);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      w.at(r, c) = static_cast<float>(r) / rows +
                   0.05f * static_cast<float>(rng.uniform(-1, 1));
  HomogenizeConfig cfg;
  cfg.iterations = 20000;
  HomogenizeResult res = homogenize_rows(w, 3, cfg);
  EXPECT_GT(res.reduction_pct(), 80.0);
}

TEST(Homogenize, OrderIsPermutation) {
  nn::Tensor w = random_weights(30, 4, 7);
  HomogenizeResult res = homogenize_rows(w, 5, HomogenizeConfig{2000, 1});
  Partition p = partition_from_order(res.order, 5);
  EXPECT_NO_THROW(p.check_valid(30));
}

TEST(Homogenize, SingleBlockIsNoop) {
  nn::Tensor w = random_weights(10, 3, 2);
  HomogenizeResult res = homogenize_rows(w, 1);
  EXPECT_EQ(res.order, natural_order(10));
  EXPECT_EQ(res.accepted_swaps, 0);
}

TEST(Homogenize, ApproachesBruteForceOnTinyMatrix) {
  nn::Tensor w = random_weights(8, 2, 11);
  const std::vector<int> best = brute_force_best_order(w, 2);
  const double best_dist =
      partition_distance(w, partition_from_order(best, 2));
  HomogenizeConfig cfg;
  cfg.iterations = 20000;
  HomogenizeResult res = homogenize_rows(w, 2, cfg);
  // Stochastic pairwise exchange keeps block sizes fixed, which is also
  // true of the brute force here; it should get within 10% or hit it.
  EXPECT_LE(res.final_distance, best_dist * 1.1 + 1e-9);
}

TEST(Homogenize, DeterministicForFixedSeed) {
  nn::Tensor w = random_weights(25, 4, 13);
  HomogenizeConfig cfg;
  cfg.iterations = 1000;
  cfg.seed = 42;
  const auto a = homogenize_rows(w, 3, cfg);
  const auto b = homogenize_rows(w, 3, cfg);
  EXPECT_EQ(a.order, b.order);
  EXPECT_DOUBLE_EQ(a.final_distance, b.final_distance);
}

TEST(RandomOrders, ProducesDistinctPermutations) {
  const auto orders = random_orders(20, 5, 3);
  ASSERT_EQ(orders.size(), 5u);
  for (const auto& o : orders) {
    Partition p = partition_from_order(o, 2);
    EXPECT_NO_THROW(p.check_valid(20));
  }
  EXPECT_NE(orders[0], orders[1]);
}

}  // namespace
}  // namespace sei::split
