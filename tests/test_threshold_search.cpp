// Algorithm 1 on a small trained network.
#include <gtest/gtest.h>

#include "data/synthetic_digits.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "workloads/networks.hpp"

namespace sei::quant {
namespace {

struct Fixture {
  workloads::Workload wl = workloads::network2();
  nn::Network net;
  data::Dataset train = data::generate_synthetic(1200, 31);
  data::Dataset test = data::generate_synthetic(400, 32);

  Fixture() : net(workloads::build_float_network(wl.topo, 21)) {
    nn::TrainConfig tc;
    tc.epochs = 3;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
  }
};

TEST(ThresholdSearch, ProducesThresholdsInGrid) {
  Fixture f;
  SearchConfig cfg;
  cfg.max_search_images = 400;
  cfg.step = 0.02;
  QuantizationResult res = quantize_network(f.net, f.wl.topo, f.train, cfg);
  ASSERT_EQ(res.traces.size(), 2u);  // two hidden stages
  for (const auto& tr : res.traces) {
    EXPECT_GE(tr.best_threshold, cfg.thres_min);
    EXPECT_LE(tr.best_threshold, cfg.thres_max + 1e-6);
    EXPECT_GT(tr.scale, 0.0f);
    EXPECT_FALSE(tr.curve.empty());
    // Best accuracy equals the max of the curve.
    double mx = 0;
    for (auto& [t, a] : tr.curve) mx = std::max(mx, a);
    EXPECT_DOUBLE_EQ(tr.best_accuracy_pct, mx);
  }
  // Thresholds propagate into the QNetwork.
  EXPECT_FLOAT_EQ(res.qnet.layers[0].threshold, res.traces[0].best_threshold);
  EXPECT_FLOAT_EQ(res.qnet.layers[1].threshold, res.traces[1].best_threshold);
  EXPECT_FALSE(res.qnet.layers[2].binarize);
}

TEST(ThresholdSearch, RescaleBoundsStageOutputs) {
  Fixture f;
  SearchConfig cfg;
  cfg.max_search_images = 300;
  cfg.step = 0.05;
  QuantizationResult res = quantize_network(f.net, f.wl.topo, f.train, cfg);
  // After re-scaling, stage-0 outputs over the search set lie in ≤ 1.
  const QLayer& l0 = res.qnet.layers[0];
  const std::size_t per_image = 28 * 28;
  float mx = 0;
  std::vector<float> sums;
  for (int i = 0; i < 100; ++i) {
    eval_stage_float_input(
        l0, {f.train.images.data() + static_cast<std::size_t>(i) * per_image, per_image},
        sums);
    for (float v : sums) mx = std::max(mx, v);
  }
  EXPECT_LE(mx, 1.0f + 1e-4f);
}

TEST(ThresholdSearch, QuantizedAccuracyIsUsable) {
  Fixture f;
  const double float_err =
      f.net.error_rate(f.test.images, f.test.label_span());
  SearchConfig cfg;
  cfg.max_search_images = 800;
  cfg.step = 0.02;
  QuantizationResult res = quantize_network(f.net, f.wl.topo, f.train, cfg);
  const double qerr = res.qnet.error_rate(f.test);
  // Undertrained tiny fixture: just require the binary network stays far
  // from chance and within a sane band of the float baseline.
  EXPECT_LT(qerr, 50.0);
  EXPECT_LT(float_err, qerr + 60.0);
}

TEST(ThresholdSearch, SearchAccuracyMatchesAssembledNetwork) {
  // The accuracy the greedy search reports for the LAST hidden stage must
  // equal the assembled QNetwork's accuracy on the search subset — they
  // evaluate the same function (cached sums + float classifier).
  Fixture f;
  SearchConfig cfg;
  cfg.max_search_images = 300;
  cfg.step = 0.05;
  QuantizationResult res = quantize_network(f.net, f.wl.topo, f.train, cfg);
  data::Dataset head = f.train.head(300);
  const double assembled_err = res.qnet.error_rate(head);
  EXPECT_NEAR(assembled_err, 100.0 - res.traces.back().best_accuracy_pct,
              1e-6);
}

TEST(ThresholdSearch, DriveCalibrationOffKeepsUnitDrive) {
  Fixture f;
  SearchConfig cfg;
  cfg.max_search_images = 200;
  cfg.step = 0.1;
  cfg.calibrate_drive = false;
  QuantizationResult res = quantize_network(f.net, f.wl.topo, f.train, cfg);
  for (const auto& tr : res.traces) EXPECT_FLOAT_EQ(tr.drive_level, 1.0f);
}

TEST(ThresholdSearch, DriveLevelIsSupraThresholdMean) {
  Fixture f;
  SearchConfig cfg;
  cfg.max_search_images = 200;
  cfg.step = 0.1;
  QuantizationResult res = quantize_network(f.net, f.wl.topo, f.train, cfg);
  for (const auto& tr : res.traces) {
    EXPECT_GT(tr.drive_level, tr.best_threshold);  // mean of values > t
    EXPECT_LE(tr.drive_level, 1.0f + 1e-5f);       // outputs rescaled to ≤ 1
  }
}

TEST(ThresholdSearch, RejectsDegenerateConfigs) {
  Fixture f;
  SearchConfig cfg;
  cfg.step = 0.0;
  EXPECT_THROW(quantize_network(f.net, f.wl.topo, f.train, cfg), CheckError);
}

}  // namespace
}  // namespace sei::quant
