// Chaos harness: IO fault hook semantics (fail / short write / simulated
// kill -9), thread-pool stall hook, the cross-cutting invariant checkers,
// the compound scenario runner, and a sampled crash-point matrix. Every
// suite here is named Chaos* so the TSan CI job picks it up.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/live_energy.hpp"
#include "chaos/crash_matrix.hpp"
#include "chaos/invariants.hpp"
#include "chaos/scenario.hpp"
#include "common/check.hpp"
#include "common/io.hpp"
#include "core/adc_network.hpp"
#include "core/sei_network.hpp"
#include "data/synthetic_digits.hpp"
#include "exec/thread_pool.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "reliability/repair.hpp"
#include "serve/checkpoint.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/fleet.hpp"
#include "workloads/networks.hpp"

namespace sei {
namespace {

/// Small trained + quantized network2 shared across tests (mirrors
/// test_serve.cpp's fixture).
struct Fixture {
  workloads::Workload wl = workloads::network2();
  data::Dataset train = data::generate_synthetic(800, 81);
  data::Dataset test = data::generate_synthetic(240, 82);
  quant::QNetwork qnet;

  Fixture() {
    nn::Network net = workloads::build_float_network(wl.topo, 52);
    nn::TrainConfig tc;
    tc.epochs = 2;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 300;
    sc.step = 0.05;
    qnet = quant::quantize_network(net, wl.topo, train, sc).qnet;
  }

  std::span<const float> image(int i) const {
    const std::size_t per_image =
        test.images.numel() / static_cast<std::size_t>(test.size());
    const int k = i % test.size();
    return {test.images.data() + static_cast<std::size_t>(k) * per_image,
            per_image};
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct HookClear {
  ~HookClear() {
    set_io_fault_hook(IoFaultHook{});
    exec::set_chunk_delay_hook({});
  }
};

void print_violations(const std::vector<chaos::InvariantViolation>& vs) {
  for (const chaos::InvariantViolation& v : vs)
    ADD_FAILURE() << "[" << v.invariant << "] " << v.detail;
}

// ---------------------------------------------------------------------------
// IO fault hook semantics on the CRC/fsync-rename writers.

TEST(ChaosIoHook, FailAbortsWriteAndCleansUpTmp) {
  HookClear clear;
  const std::string path = tmp_path("sei_chaos_io_fail.bin");
  std::filesystem::remove(path);
  set_io_fault_hook([](const IoFaultSite& s) {
    return s.op == IoOp::kWrite ? IoFaultAction::kFail : IoFaultAction::kNone;
  });
  EXPECT_THROW(
      {
        BinaryWriter w(path);
        w.write_u64(42);
        w.commit();
      },
      CheckError);
  set_io_fault_hook(IoFaultHook{});
  // A failed (non-crash) write is an error the process survives: the
  // writer's destructor must remove its half-written tmp file.
  EXPECT_FALSE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST(ChaosIoHook, ShortWriteIsDetectedAndTmpRemoved) {
  HookClear clear;
  const std::string path = tmp_path("sei_chaos_io_short.bin");
  std::filesystem::remove(path);
  std::atomic<int> n{0};
  set_io_fault_hook([&](const IoFaultSite& s) {
    if (s.op == IoOp::kWrite && n.fetch_add(1) == 0)
      return IoFaultAction::kShortWrite;
    return IoFaultAction::kNone;
  });
  EXPECT_THROW(
      {
        BinaryWriter w(path);
        w.write_u64(42);
        w.commit();
      },
      CheckError);
  set_io_fault_hook(IoFaultHook{});
  EXPECT_FALSE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST(ChaosIoHook, CrashDuringWriteLeavesTornTmpLikeKillMinus9) {
  HookClear clear;
  const std::string path = tmp_path("sei_chaos_io_crash.bin");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
  set_io_fault_hook([](const IoFaultSite& s) {
    return s.op == IoOp::kWrite ? IoFaultAction::kCrash : IoFaultAction::kNone;
  });
  EXPECT_THROW(
      {
        BinaryWriter w(path);
        w.write_u64(42);
      },
      InjectedCrash);
  set_io_fault_hook(IoFaultHook{});
  // kill -9 leaves wreckage: the torn tmp stays on disk, the destination
  // never appears — exactly what a resuming process must cope with.
  EXPECT_TRUE(file_exists(path + ".tmp"));
  EXPECT_FALSE(file_exists(path));
  std::filesystem::remove(path + ".tmp");
}

TEST(ChaosIoHook, CrashAtRenamePreservesCommittedFile) {
  HookClear clear;
  const std::string path = tmp_path("sei_chaos_io_rename.bin");
  std::filesystem::remove(path);
  {
    BinaryWriter w(path);
    w.write_u64(1);
    w.commit();
  }
  set_io_fault_hook([](const IoFaultSite& s) {
    return s.op == IoOp::kRename ? IoFaultAction::kCrash
                                 : IoFaultAction::kNone;
  });
  EXPECT_THROW(
      {
        BinaryWriter w(path);
        w.write_u64(2);
        w.commit();
      },
      InjectedCrash);
  set_io_fault_hook(IoFaultHook{});
  {
    BinaryReader r(path);
    EXPECT_EQ(r.read_u64(), 1u) << "crash before rename must not touch v1";
  }
  // And the survivor can still commit over the wreckage.
  {
    BinaryWriter w(path);
    w.write_u64(3);
    w.commit();
  }
  BinaryReader r(path);
  EXPECT_EQ(r.read_u64(), 3u);
}

TEST(ChaosIoHook, CheckpointRetryRidesOverInjectedFailure) {
  HookClear clear;
  Fixture& f = fixture();
  core::SeiNetwork net(f.qnet, core::HardwareConfig{});
  const std::string path = tmp_path("sei_chaos_ckpt_retry.bin");
  std::filesystem::remove(path);
  std::atomic<int> n{0};
  // First write of the first attempt fails; the retry goes clean.
  set_io_fault_hook([&](const IoFaultSite& s) {
    if (s.op == IoOp::kWrite && n.fetch_add(1) == 0)
      return IoFaultAction::kFail;
    return IoFaultAction::kNone;
  });
  serve::CheckpointRetryPolicy pol;
  pol.max_attempts = 3;
  pol.backoff_ms = 1;
  const Status st = serve::save_checkpoint_with_retry(
      net, serve::RuntimeSnapshot{}, path, pol);
  set_io_fault_hook(IoFaultHook{});
  ASSERT_TRUE(st.ok()) << st.error().message;
  EXPECT_TRUE(file_exists(path));
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Thread-pool stall hook: stragglers change timing, never results.

TEST(ChaosStallHook, StalledChunksProduceIdenticalResults) {
  HookClear clear;
  exec::set_default_threads(4);
  const int n = 512;
  std::vector<int> plain(static_cast<std::size_t>(n), 0);
  exec::parallel_for(n, [&](int i) {
    plain[static_cast<std::size_t>(i)] = i * i;
  });
  std::atomic<int> stalls{0};
  exec::set_chunk_delay_hook([&](int) {
    stalls.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  });
  EXPECT_TRUE(exec::chunk_delay_hook_installed());
  std::vector<int> stalled(static_cast<std::size_t>(n), 0);
  exec::parallel_for(n, [&](int i) {
    stalled[static_cast<std::size_t>(i)] = i * i;
  });
  exec::set_chunk_delay_hook({});
  exec::set_default_threads(0);
  EXPECT_GT(stalls.load(), 0);
  EXPECT_EQ(plain, stalled);
}

// ---------------------------------------------------------------------------
// Invariant checkers.

TEST(ChaosInvariants, TicketConservationAcceptsExactInterval) {
  std::vector<serve::FleetResponse> rs(4);
  for (int i = 0; i < 3; ++i) rs[static_cast<std::size_t>(i)].ticket = 5 + i;
  rs[3].ticket = serve::kNoTicket;  // never dispatched: excluded
  std::vector<chaos::InvariantViolation> out;
  chaos::check_ticket_conservation(rs, 5, 3, out);
  EXPECT_TRUE(out.empty());
}

TEST(ChaosInvariants, TicketConservationFlagsLostAndDuplicate) {
  std::vector<serve::FleetResponse> rs(3);
  rs[0].ticket = 5;
  rs[1].ticket = 6;
  rs[2].ticket = 7;
  std::vector<chaos::InvariantViolation> lost;
  chaos::check_ticket_conservation(rs, 5, 4, lost);  // ticket 8 never answered
  ASSERT_FALSE(lost.empty());
  EXPECT_EQ(lost[0].invariant, "ticket");

  rs[2].ticket = 6;  // 6 served twice, 7 lost
  std::vector<chaos::InvariantViolation> dup;
  chaos::check_ticket_conservation(rs, 5, 3, dup);
  ASSERT_FALSE(dup.empty());
  EXPECT_NE(dup[0].detail.find("more than once"), std::string::npos);
}

TEST(ChaosInvariants, BillingConservationFlagsDrift) {
  serve::FleetStats st;
  st.tenants.resize(1);
  st.tenants[0].energy_j = 10e-6;
  st.tenant_metered_j = {10e-6};
  std::vector<chaos::InvariantViolation> ok;
  chaos::check_billing_conservation(st, {0.0}, 1e-12, ok);
  EXPECT_TRUE(ok.empty());

  std::vector<chaos::InvariantViolation> bad;
  chaos::check_billing_conservation(st, {1e-6}, 1e-12, bad);
  ASSERT_FALSE(bad.empty());
  EXPECT_EQ(bad[0].invariant, "billing");
}

TEST(ChaosInvariants, PlanAndArenaChecksPassOnDamagedNetwork) {
  Fixture& f = fixture();
  core::SeiNetwork net(f.qnet, core::HardwareConfig{});
  serve::FaultEvent ev;
  ev.stage = -1;
  ev.stuck_fraction = 0.15;
  serve::apply_fault(net, ev, /*seed=*/1234, /*event_index=*/0);
  std::vector<chaos::InvariantViolation> out;
  chaos::check_plan_coherence(net, f.test, 16, "damaged", out);
  chaos::check_arena_rebind_safety(net, f.test, 16, "damaged", out);
  print_violations(out);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// Compound scenario: storms + IO faults + stalls + bursts + deadlines, all
// at once, with the invariant sweep at the end.

TEST(ChaosScenario, CompoundSoakHoldsEveryInvariant) {
  Fixture& f = fixture();
  std::vector<std::unique_ptr<core::SeiNetwork>> nets;
  std::vector<core::SeiNetwork*> ptrs;
  for (int k = 0; k < 2; ++k) {
    core::HardwareConfig cfg;
    cfg.spare_row_fraction = 0.2;
    cfg.seed += static_cast<std::uint64_t>(k) * 1000003ULL;
    nets.push_back(std::make_unique<core::SeiNetwork>(
        f.qnet, cfg,
        reliability::make_repair_hook(reliability::RepairConfig{}, nullptr)));
    ptrs.push_back(nets.back().get());
  }
  core::AdcNetwork fallback(f.qnet, core::AdcConfig{}, f.train);

  serve::FleetConfig fc;
  fc.tenants = serve::parse_tenant_specs("A:2,B:1");
  for (serve::TenantConfig& t : fc.tenants) t.queue_capacity = 1024;
  fc.sentinel.probe_every = 4;
  fc.sentinel.probe_count = 48;
  fc.sentinel.window = 24;
  fc.sentinel.min_probes = 12;
  fc.breaker.max_retries = 1;
  fc.breaker.retry_backoff_ms = 1;
  fc.breaker.reattempt_interval = 64;
  fc.calibration.max_images = 240;
  fc.calibration.gamma_min = 1.0;
  fc.calibration.gamma_max = 1.0;
  fc.calibration.gamma_step = 0.1;
  const std::string dir = tmp_path("sei_chaos_soak_ckpt");
  std::filesystem::remove_all(dir);
  fc.checkpoint_dir = dir;
  fc.checkpoint_every = 25;

  serve::FleetRuntime fleet(ptrs, f.qnet, f.test, f.train, fc, &fallback);
  serve::StormSchedule storm;
  storm.events.push_back({60, 0, {0, -1, 0.10, 1.0}, 10000});
  fleet.set_storm(storm);

  chaos::ChaosScenarioConfig cc;
  cc.seed = 7;
  cc.requests = 240;
  cc.window = 8;
  cc.burst_every = 40;
  cc.burst_size = 12;
  cc.tight_deadline_frac = 0.05;
  cc.tight_deadline = std::chrono::milliseconds(2);
  cc.io_fail_prob = 0.15;
  cc.io_short_write_prob = 0.10;
  cc.stall_every = 5;
  cc.stall = std::chrono::microseconds(100);
  cc.coherence_images = 8;

  const chaos::ChaosScenarioReport rep =
      chaos::run_chaos_scenario(fleet, ptrs, f.test, cc);
  std::filesystem::remove_all(dir);

  print_violations(rep.violations);
  EXPECT_TRUE(rep.violations.empty());
  EXPECT_EQ(rep.submitted, 240u);
  EXPECT_EQ(rep.ok + rep.degraded + rep.shed + rep.deadline_expired +
                rep.quota_rejected + rep.queue_full + rep.other_rejected,
            rep.submitted);
  EXPECT_GT(rep.dispatched, 0u);
  EXPECT_GE(rep.availability, 0.9);
  EXPECT_FALSE(io_fault_hook_installed()) << "scenario must remove its hook";
  EXPECT_FALSE(exec::chunk_delay_hook_installed());
}

// Sparse shards: per-image varying bills (activation-proportional row
// charge) must still conserve exactly AND stay inside the structural
// price envelope [floor, ceiling] per answered request — under the same
// compound adversity (storm, bursts, stalls, deadline pressure).
TEST(ChaosScenario, SparseShardBillsConserveAndFitEnvelope) {
  Fixture& f = fixture();
  std::vector<std::unique_ptr<core::SeiNetwork>> nets;
  std::vector<core::SeiNetwork*> ptrs;
  for (int k = 0; k < 2; ++k) {
    core::HardwareConfig cfg;
    cfg.spare_row_fraction = 0.2;
    cfg.seed += static_cast<std::uint64_t>(k) * 1000003ULL;
    nets.push_back(std::make_unique<core::SeiNetwork>(
        f.qnet, cfg,
        reliability::make_repair_hook(reliability::RepairConfig{}, nullptr)));
    // Word-skip bound 1 on every eligible stage: enough to make per-image
    // bills genuinely vary (synthetic digits carry many near-empty 9-row
    // input words) without tanking accuracy.
    nets.back()->set_skip_bounds(
        std::vector<int>(static_cast<std::size_t>(nets.back()->stage_count()),
                         1));
    ptrs.push_back(nets.back().get());
  }
  core::AdcNetwork fallback(f.qnet, core::AdcConfig{}, f.train);

  serve::FleetConfig fc;
  fc.tenants = serve::parse_tenant_specs("A:2,B:1");
  for (serve::TenantConfig& t : fc.tenants) t.queue_capacity = 1024;
  fc.sentinel.probe_every = 4;
  fc.sentinel.probe_count = 48;
  fc.sentinel.window = 24;
  fc.sentinel.min_probes = 12;
  fc.breaker.max_retries = 1;
  fc.breaker.retry_backoff_ms = 1;
  fc.breaker.reattempt_interval = 64;
  fc.calibration.max_images = 240;
  fc.calibration.gamma_min = 1.0;
  fc.calibration.gamma_max = 1.0;
  fc.calibration.gamma_step = 0.1;
  serve::FleetRuntime fleet(ptrs, f.qnet, f.test, f.train, fc, &fallback);
  serve::StormSchedule storm;
  storm.events.push_back({60, 0, {0, -1, 0.10, 1.0}, 10000});
  fleet.set_storm(storm);

  chaos::ChaosScenarioConfig cc;
  cc.seed = 11;
  cc.requests = 240;
  cc.window = 8;
  cc.burst_every = 40;
  cc.burst_size = 12;
  cc.tight_deadline_frac = 0.05;
  cc.stall_every = 5;
  cc.stall = std::chrono::microseconds(100);
  cc.coherence_images = 8;
  cc.check_envelope = true;
  const core::HardwareConfig& cfg0 = ptrs[0]->config();
  const telemetry::EnergyMeter sei_meter =
      arch::make_energy_meter(f.qnet, cfg0, core::StructureKind::kSei);
  const telemetry::EnergyMeter adc_meter =
      arch::make_energy_meter(f.qnet, cfg0, core::StructureKind::kBinInputAdc);
  cc.envelope.sei_min_image_j = sei_meter.network_floor_pj().total() * 1e-12;
  cc.envelope.sei_max_image_j = sei_meter.network_pj().total() * 1e-12;
  cc.envelope.adc_image_j = adc_meter.network_pj().total() * 1e-12;

  const chaos::ChaosScenarioReport rep =
      chaos::run_chaos_scenario(fleet, ptrs, f.test, cc);

  print_violations(rep.violations);
  EXPECT_TRUE(rep.violations.empty());
  EXPECT_GT(rep.ok, 0u);
  // Sparsity must actually have engaged: the fleet-wide SEI-path bill for
  // the ok answers sits strictly below the dense ceiling.
  const serve::FleetStats st = fleet.stats();
  double metered = 0.0;
  std::uint64_t ok_total = 0;
  for (std::size_t t = 0; t < st.tenants.size(); ++t) ok_total += st.tenants[t].ok;
  for (const double j : st.tenant_metered_j) metered += j;
  double adc_answers_j = 0.0;
  for (const serve::TenantCounters& c : st.tenants)
    adc_answers_j += static_cast<double>(c.degraded) * cc.envelope.adc_image_j;
  EXPECT_LT(metered - adc_answers_j,
            static_cast<double>(ok_total) * cc.envelope.sei_max_image_j)
      << "sparse bills should be below the every-row-active ceiling";
}

// ---------------------------------------------------------------------------
// Crash-point matrix (sampled offsets; the full stride-1 sweep is
// bench_chaos's job).

TEST(ChaosCrashMatrix, SampledOffsetsResumeBitIdentically) {
  Fixture& f = fixture();
  std::vector<std::unique_ptr<core::SeiNetwork>> nets;
  const chaos::FleetFactory factory =
      [&](const std::string& dir) -> std::unique_ptr<serve::FleetRuntime> {
    nets.clear();
    std::vector<core::SeiNetwork*> ptrs;
    for (int k = 0; k < 2; ++k) {
      core::HardwareConfig cfg;
      cfg.spare_row_fraction = 0.2;
      cfg.seed += static_cast<std::uint64_t>(k) * 1000003ULL;
      nets.push_back(std::make_unique<core::SeiNetwork>(
          f.qnet, cfg,
          reliability::make_repair_hook(reliability::RepairConfig{},
                                        nullptr)));
      ptrs.push_back(nets.back().get());
    }
    serve::FleetConfig fc;
    fc.tenants = serve::parse_tenant_specs("A:2,B:1");
    for (serve::TenantConfig& t : fc.tenants) t.queue_capacity = 1024;
    fc.sentinel.probe_every = 4;
    fc.sentinel.probe_count = 48;
    fc.sentinel.window = 24;
    fc.sentinel.min_probes = 12;
    fc.breaker.max_retries = 1;
    fc.breaker.retry_backoff_ms = 1;
    fc.breaker.reattempt_interval = 64;
    fc.calibration.max_images = 240;
    fc.calibration.gamma_min = 1.0;
    fc.calibration.gamma_max = 1.0;
    fc.calibration.gamma_step = 0.1;
    fc.checkpoint_dir = dir;
    fc.checkpoint_every = 0;
    auto fleet = std::make_unique<serve::FleetRuntime>(ptrs, f.qnet, f.test,
                                                       f.train, fc);
    // Storm inside (cut1, cut2): every crash leg dies holding active-storm
    // recovery state, which the resume must reconstruct.
    serve::StormSchedule storm;
    storm.events.push_back({16, 0, {0, -1, 0.10, 1.0}, 10000});
    fleet->set_storm(storm);
    return fleet;
  };

  chaos::CrashMatrixConfig mc;
  mc.dir = tmp_path("sei_chaos_matrix");
  mc.cut1 = 12;
  mc.cut2 = 20;
  mc.total = 28;
  mc.stride = 37;  // sample the offsets; bench_chaos runs stride 1
  mc.threads = {2, 8};
  const chaos::CrashMatrixReport rep =
      chaos::run_crash_matrix(factory, f.test, mc);

  print_violations(rep.violations);
  EXPECT_TRUE(rep.violations.empty());
  EXPECT_GT(rep.commit_steps, 0);
  EXPECT_GT(rep.steps_tested, 0);
  EXPECT_GE(rep.resumed_from_old, 1)
      << "crash step 0 must land on the previous committed set";
  EXPECT_GT(rep.coverage_pct, 0.0);
  EXPECT_FALSE(io_fault_hook_installed());
}

}  // namespace
}  // namespace sei
