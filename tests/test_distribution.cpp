// Activation distribution analysis (Table 1 reproduction machinery).
#include <gtest/gtest.h>

#include "data/synthetic_digits.hpp"
#include "nn/trainer.hpp"
#include "quant/distribution.hpp"
#include "workloads/networks.hpp"

namespace sei::quant {
namespace {

TEST(Distribution, BinsMatchPaperEdges) {
  auto wl = workloads::network2();
  nn::Network net = workloads::build_float_network(wl.topo, 1);
  data::Dataset d = data::generate_synthetic(50, 5);
  DistributionReport rep = analyze_conv_distribution(net, d.images);
  ASSERT_EQ(rep.bin_edges.size(), 5u);
  EXPECT_DOUBLE_EQ(rep.bin_edges[1], 1.0 / 16);
  EXPECT_DOUBLE_EQ(rep.bin_edges[2], 1.0 / 8);
  EXPECT_DOUBLE_EQ(rep.bin_edges[3], 1.0 / 4);
  ASSERT_EQ(rep.layers.size(), 2u);  // two conv stages
  for (const auto& l : rep.layers) {
    ASSERT_EQ(l.fractions.size(), 4u);
    double sum = 0.0;
    for (double f : l.fractions) sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(l.samples, 0u);
  }
}

TEST(Distribution, AllLayersPoolsEverything) {
  auto wl = workloads::network2();
  nn::Network net = workloads::build_float_network(wl.topo, 2);
  data::Dataset d = data::generate_synthetic(20, 6);
  DistributionReport rep = analyze_conv_distribution(net, d.images);
  std::size_t per_layer = 0;
  for (const auto& l : rep.layers) per_layer += l.samples;
  EXPECT_EQ(rep.all.samples, per_layer);
}

TEST(Distribution, TrainedNetworkHasLongTail) {
  // The reproduction of the paper's key observation: after training, the
  // majority of ReLU conv outputs sit in the lowest normalized bin.
  auto wl = workloads::network2();
  nn::Network net = workloads::build_float_network(wl.topo, 3);
  data::Dataset train = data::generate_synthetic(1500, 11);
  nn::TrainConfig tc;
  tc.epochs = 2;
  nn::Trainer(tc).fit(net, train.images, train.label_span());
  data::Dataset test = data::generate_synthetic(200, 12);
  DistributionReport rep = analyze_conv_distribution(net, test.images);
  EXPECT_GT(rep.all.fractions[0], 0.60);
  // And the top bin is a small minority.
  EXPECT_LT(rep.all.fractions[3], 0.25);
}

TEST(Distribution, BatchSizeDoesNotChangeResult) {
  auto wl = workloads::network2();
  nn::Network net = workloads::build_float_network(wl.topo, 4);
  data::Dataset d = data::generate_synthetic(30, 8);
  DistributionReport a = analyze_conv_distribution(net, d.images, 7);
  DistributionReport b = analyze_conv_distribution(net, d.images, 128);
  for (std::size_t l = 0; l < a.layers.size(); ++l)
    for (std::size_t f = 0; f < 4; ++f)
      EXPECT_NEAR(a.layers[l].fractions[f], b.layers[l].fractions[f], 1e-12);
}

}  // namespace
}  // namespace sei::quant
