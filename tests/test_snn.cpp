// Rate-coded SNN conversion (the paper's future-work extension).
#include <gtest/gtest.h>

#include "data/synthetic_digits.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "snn/snn_network.hpp"
#include "workloads/networks.hpp"

namespace sei::snn {
namespace {

struct Fixture {
  workloads::Workload wl = workloads::network3();
  data::Dataset train = data::generate_synthetic(2500, 91);
  data::Dataset test = data::generate_synthetic(300, 92);
  quant::QNetwork qnet;
  double float_err = 0.0;

  Fixture() {
    nn::Network net = workloads::build_float_network(wl.topo, 61);
    nn::TrainConfig tc;
    tc.epochs = 4;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
    float_err = net.error_rate(test.images, test.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 800;
    sc.step = 0.02;
    qnet = quant::quantize_network(net, wl.topo, train, sc).qnet;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Snn, ConfigValidation) {
  Fixture& f = fixture();
  SnnConfig cfg;
  cfg.timesteps = 0;
  EXPECT_THROW(SnnNetwork(f.qnet, cfg), CheckError);
  cfg = SnnConfig{};
  cfg.firing_threshold = 0.0f;
  EXPECT_THROW(SnnNetwork(f.qnet, cfg), CheckError);
}

TEST(Snn, PhasedCodingIsDeterministic) {
  Fixture& f = fixture();
  SnnConfig cfg;
  cfg.coding = InputCoding::kPhased;
  cfg.timesteps = 16;
  SnnNetwork snn(f.qnet, cfg);
  const std::size_t per_image = 28 * 28;
  std::span<const float> img{f.test.images.data(), per_image};
  const int p = snn.predict(img);
  EXPECT_EQ(snn.predict(img), p);
  EXPECT_GE(p, 0);
  EXPECT_LT(p, 10);
}

TEST(Snn, AccuracyImprovesWithTimesteps) {
  Fixture& f = fixture();
  SnnConfig short_cfg;
  short_cfg.timesteps = 2;
  SnnConfig long_cfg;
  long_cfg.timesteps = 48;
  const double err_short =
      SnnNetwork(f.qnet, short_cfg).error_rate(f.test, 150);
  const double err_long = SnnNetwork(f.qnet, long_cfg).error_rate(f.test, 150);
  EXPECT_LT(err_long, err_short + 1.0);
  // With a generous window the rate code approaches the float network.
  EXPECT_LT(err_long, f.float_err + 12.0);
  EXPECT_LT(err_long, 25.0);
}

TEST(Snn, SpikeStatsAreCounted) {
  Fixture& f = fixture();
  SnnConfig cfg;
  cfg.timesteps = 8;
  SnnNetwork snn(f.qnet, cfg);
  const std::size_t per_image = 28 * 28;
  SpikeStats stats;
  snn.predict({f.test.images.data(), per_image}, &stats);
  EXPECT_EQ(stats.timesteps, 8);
  EXPECT_GT(stats.input_spikes, 0);
  EXPECT_GT(stats.hidden_spikes, 0);
  // Spikes are 1-bit events bounded by neurons × timesteps.
  EXPECT_LT(stats.input_spikes, 8LL * 784);
}

TEST(Snn, BernoulliCodingWorksToo) {
  Fixture& f = fixture();
  SnnConfig cfg;
  cfg.coding = InputCoding::kBernoulli;
  cfg.timesteps = 48;
  const double err = SnnNetwork(f.qnet, cfg).error_rate(f.test, 120);
  EXPECT_LT(err, 35.0);  // stochastic coding is noisier but functional
}

}  // namespace
}  // namespace sei::snn
