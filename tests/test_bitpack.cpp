// core/bitpack unit tests: bit-vector primitives, the packed OR-pool, and
// the three integer accumulation kernels (lane-group bit planes, per-column
// batch-of-8 planes, active-row int16 gather) against brute-force scalar
// references. Shapes deliberately avoid multiples of 64 so tail-word
// masking and block-boundary straddles are exercised.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/bitpack.hpp"
#include "quant/bitpack.hpp"

namespace sei {
namespace {

TEST(Bitpack, ExtractBits64HandlesTailAndStraddle) {
  Rng rng(21);
  std::vector<std::uint64_t> words(4);
  for (auto& w : words) w = rng();
  for (int off = 0; off <= 150; ++off) {
    for (const int n : {1, 7, 8, 33, 63, 64}) {
      if (off + n > 256) continue;
      std::uint64_t want = 0;
      for (int i = 0; i < n; ++i) {
        const int bit = off + i;
        want |= ((words[bit >> 6] >> (bit & 63)) & 1u) << i;
      }
      EXPECT_EQ(core::extract_bits64(words.data(),
                                     static_cast<std::size_t>(off), n),
                want)
          << "off=" << off << " n=" << n;
    }
  }
}

TEST(Bitpack, CopyBitsMatchesPerBitReference) {
  Rng rng(22);
  std::vector<std::uint64_t> src(5);
  for (auto& w : src) w = rng();
  for (const int src_off : {0, 3, 63, 64, 100}) {
    for (const int dst_off : {0, 1, 62, 65, 130}) {
      for (const int len : {1, 13, 64, 65, 120, 190}) {
        if (src_off + len > 320) continue;
        std::vector<std::uint64_t> dst(8, 0);
        core::copy_bits(src.data(), static_cast<std::size_t>(src_off),
                        dst.data(), static_cast<std::size_t>(dst_off), len);
        for (int i = 0; i < 8 * 64; ++i) {
          const bool in_range = i >= dst_off && i < dst_off + len;
          const bool want =
              in_range &&
              ((src[(src_off + i - dst_off) >> 6] >>
                ((src_off + i - dst_off) & 63)) &
               1u) != 0;
          const bool got = ((dst[i >> 6] >> (i & 63)) & 1u) != 0;
          ASSERT_EQ(got, want) << "src_off=" << src_off
                               << " dst_off=" << dst_off << " len=" << len
                               << " bit=" << i;
        }
      }
    }
  }
}

TEST(Bitpack, BitWriterRoundTripsVariableRuns) {
  Rng rng(23);
  // Random-width appends, including n=64 runs and a ragged tail.
  std::vector<std::pair<std::uint64_t, int>> runs;
  int total = 0;
  for (int i = 0; i < 200; ++i) {
    const int n = 1 + static_cast<int>(rng.below(64));
    runs.emplace_back(rng(), n);
    total += n;
  }
  quant::PackedBits out;
  core::BitWriter writer(out, static_cast<std::size_t>(total));
  for (const auto& [v, n] : runs) writer.append(v, n);
  writer.finish();
  std::size_t pos = 0;
  for (const auto& [v, n] : runs) {
    for (int i = 0; i < n; ++i, ++pos)
      ASSERT_EQ(out.get(pos), ((v >> i) & 1u) != 0) << "bit " << pos;
  }
  EXPECT_EQ(pos, out.bits);
}

TEST(Bitpack, OrPoolPackedMatchesByteReference) {
  Rng rng(24);
  // Odd extents exercise the floor semantics; c=12 the strided channel walk.
  for (auto [h, w, c] : {std::tuple{24, 24, 12}, std::tuple{7, 9, 3},
                               std::tuple{12, 12, 1}, std::tuple{5, 4, 20}}) {
    quant::BitMap bytes(static_cast<std::size_t>(h) * w * c);
    for (auto& b : bytes) b = rng.bernoulli(0.3) ? 1 : 0;
    quant::BitMap want;
    core::or_pool_bytes(bytes, h, w, c, want);
    quant::PackedBits packed_out;
    core::or_pool_packed(quant::pack_bits(bytes), h, w, c, packed_out);
    EXPECT_EQ(quant::unpack_bits(packed_out), want)
        << "h=" << h << " w=" << w << " c=" << c;
  }
}

TEST(Bitpack, DacQuantizeImageMatchesScalar) {
  Rng rng(25);
  std::vector<float> in(301);  // odd length: vector tail lanes
  for (auto& v : in) v = static_cast<float>(rng.uniform(-0.2, 1.2));
  for (const int bits : {1, 4, 8}) {
    std::vector<float> out;
    core::dac_quantize_image(in, bits, out);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
      EXPECT_EQ(out[i], core::dac_quantize(in[i], bits)) << "i=" << i;
  }
}

TEST(Bitpack, NonIntegralWeightsInvalidateStage) {
  std::vector<float> eff(8 * 4, 1.0f);
  eff[5] = 0.5f;  // programming noise → no integer decomposition
  const std::vector<int> row_to_block(8, 0);
  const auto ps = core::build_packed_stage(eff, 8, 4, row_to_block, 1, 8);
  EXPECT_FALSE(ps.valid);
}

// Brute-force reference: per-(block, col) sum of effective weights over
// the window's set rows, plus per-block active counts.
void reference_sums(const std::vector<float>& eff, int rows, int cols,
                    const std::vector<int>& row_to_block, int k,
                    const std::vector<std::uint64_t>& window,
                    std::vector<double>& sums, std::vector<int>& n_active) {
  sums.assign(static_cast<std::size_t>(k) * cols, 0.0);
  n_active.assign(static_cast<std::size_t>(k), 0);
  for (int r = 0; r < rows; ++r) {
    if (((window[r >> 6] >> (r & 63)) & 1u) == 0) continue;
    const int b = row_to_block[r];
    ++n_active[static_cast<std::size_t>(b)];
    for (int c = 0; c < cols; ++c)
      sums[static_cast<std::size_t>(b) * cols + c] +=
          static_cast<double>(eff[static_cast<std::size_t>(r) * cols + c]);
  }
}

struct StageShape {
  int rows, cols, k;
  bool round_robin;  // homogenized-style row interleave across blocks
  int max_abs;       // weight magnitude; large forces rows_ok == false
};

class BitpackAccumulate : public ::testing::TestWithParam<StageShape> {};

TEST_P(BitpackAccumulate, AllKernelsMatchBruteForce) {
  const StageShape s = GetParam();
  Rng rng(26);
  std::vector<float> eff(static_cast<std::size_t>(s.rows) * s.cols);
  for (auto& v : eff)
    v = static_cast<float>(static_cast<int>(rng.below(2 * s.max_abs + 1)) -
                           s.max_abs);
  std::vector<int> row_to_block(static_cast<std::size_t>(s.rows));
  for (int r = 0; r < s.rows; ++r)
    row_to_block[static_cast<std::size_t>(r)] =
        s.round_robin ? r % s.k : r * s.k / s.rows;

  const auto ps =
      core::build_packed_stage(eff, s.rows, s.cols, row_to_block, s.k, 8);
  ASSERT_TRUE(ps.valid);
  EXPECT_EQ(ps.words, (s.rows + 63) / 64);

  const std::size_t nsums = static_cast<std::size_t>(s.k) * s.cols;
  std::vector<std::uint64_t> window(static_cast<std::size_t>(ps.words));
  std::vector<double> want_sums, got_sums(nsums);
  std::vector<int> want_active, got_active(static_cast<std::size_t>(s.k));

  // Batch-of-8 scratch, filled one position per lane below.
  const int lwords = ps.block_loff[static_cast<std::size_t>(s.k)];
  std::vector<std::uint64_t> lw8(static_cast<std::size_t>(lwords) * 8, 0);
  std::vector<std::int32_t> nact8(static_cast<std::size_t>(s.k) * 8, 0);
  std::vector<double> sums8(nsums * 8);
  std::vector<std::vector<double>> batch_want(8);
  std::vector<std::uint64_t> lw(static_cast<std::size_t>(lwords));

  for (int p = 0; p < 8; ++p) {
    const double density = p == 0 ? 0.0 : (p == 7 ? 1.0 : 0.15 * p);
    std::fill(window.begin(), window.end(), 0);
    for (int r = 0; r < s.rows; ++r)
      if (rng.bernoulli(density))
        window[r >> 6] |= std::uint64_t{1} << (r & 63);

    reference_sums(eff, s.rows, s.cols, row_to_block, s.k, window, want_sums,
                   want_active);

    core::accumulate_position(ps, s.cols, s.k, window.data(), got_sums.data(),
                              got_active.data());
    EXPECT_EQ(got_sums, want_sums) << "accumulate_position, p=" << p;
    EXPECT_EQ(got_active, want_active) << "accumulate_position, p=" << p;

    if (ps.rows_ok) {
      core::accumulate_position_rows(ps, s.cols, s.k, window.data(),
                                     got_sums.data(), got_active.data());
      EXPECT_EQ(got_sums, want_sums) << "accumulate_position_rows, p=" << p;
      EXPECT_EQ(got_active, want_active)
          << "accumulate_position_rows, p=" << p;
    }

    for (int b = 0; b < s.k; ++b) {
      const int cnt = core::compact_block_window(ps, b, window.data(),
                                                 lw.data() + ps.block_loff[b]);
      EXPECT_EQ(cnt, want_active[static_cast<std::size_t>(b)])
          << "compact_block_window block " << b;
      nact8[static_cast<std::size_t>(b) * 8 + p] = cnt;
      for (int w = 0; w < ps.block_span[static_cast<std::size_t>(b)]; ++w)
        lw8[static_cast<std::size_t>(ps.block_loff[b] + w) * 8 + p] =
            lw[static_cast<std::size_t>(ps.block_loff[b] + w)];
    }
    batch_want[static_cast<std::size_t>(p)] = want_sums;
  }

  core::accumulate_positions8(ps, s.cols, s.k, lw8.data(), nact8.data(),
                              sums8.data());
  for (int p = 0; p < 8; ++p)
    for (std::size_t i = 0; i < nsums; ++i)
      ASSERT_EQ(sums8[i * 8 + p], batch_want[static_cast<std::size_t>(p)][i])
          << "accumulate_positions8 p=" << p << " entry " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BitpackAccumulate,
    ::testing::Values(
        StageShape{300, 64, 3, false, 7},   // network1 conv2: word straddles
        StageShape{130, 10, 2, true, 7},    // homogenized round-robin rows
        StageShape{70, 8, 1, false, 7},     // single block, ragged tail word
        StageShape{65, 12, 4, true, 3},     // blocks thinner than a word
        StageShape{300, 16, 3, false, 1000}  // Σ|w| > int16 → rows_ok off
        ));

TEST(Bitpack, LargeWeightsDisableRowGatherOnly) {
  // Σ|w| over a 100-row block at |w| ≤ 1000 overflows int16, so the row
  // table must be rejected while the bit-plane kernels stay available.
  Rng rng(27);
  std::vector<float> eff(300 * 16);
  for (auto& v : eff)
    v = static_cast<float>(static_cast<int>(rng.below(2001)) - 1000);
  std::vector<int> row_to_block(300);
  for (int r = 0; r < 300; ++r) row_to_block[r] = r / 100;
  const auto ps = core::build_packed_stage(eff, 300, 16, row_to_block, 3, 8);
  ASSERT_TRUE(ps.valid);
  EXPECT_FALSE(ps.rows_ok);
}

}  // namespace
}  // namespace sei
