// RRAM device model: levels, programming variation, stuck faults, read noise.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "rram/device.hpp"

namespace sei::rram {
namespace {

TEST(Device, ConfigValidation) {
  DeviceConfig bad;
  bad.bits = 0;
  EXPECT_THROW(DeviceModel{bad}, CheckError);
  bad = DeviceConfig{};
  bad.g_max_s = bad.g_min_s;
  EXPECT_THROW(DeviceModel{bad}, CheckError);
  bad = DeviceConfig{};
  bad.stuck_fraction = 1.5;
  EXPECT_THROW(DeviceModel{bad}, CheckError);
}

TEST(Device, FourBitHasSixteenLevels) {
  DeviceConfig cfg;
  EXPECT_EQ(cfg.levels(), 16);
  EXPECT_EQ(cfg.max_level(), 15);
}

TEST(Device, ConductanceMonotoneInLevel) {
  DeviceModel dev{DeviceConfig{}};
  double prev = -1;
  for (int l = 0; l <= 15; ++l) {
    const double g = dev.conductance(l);
    EXPECT_GT(g, prev);
    prev = g;
  }
  EXPECT_DOUBLE_EQ(dev.conductance(0), DeviceConfig{}.g_min_s);
  EXPECT_DOUBLE_EQ(dev.conductance(15), DeviceConfig{}.g_max_s);
  EXPECT_THROW(dev.conductance(16), CheckError);
  EXPECT_THROW(dev.conductance(-1), CheckError);
}

TEST(Device, IdealProgrammingIsExact) {
  DeviceModel dev{DeviceConfig{}};
  Rng rng(1);
  for (int l = 0; l <= 15; ++l)
    EXPECT_DOUBLE_EQ(dev.program(l, rng), static_cast<double>(l));
}

TEST(Device, ProgramVariationIsUnbiasedMultiplicative) {
  DeviceConfig cfg;
  cfg.program_sigma = 0.1;
  DeviceModel dev{cfg};
  Rng rng(2);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(dev.program(10, rng));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev() / s.mean(), 0.1, 0.02);
}

TEST(Device, LevelZeroAlwaysProgramsExactly) {
  DeviceConfig cfg;
  cfg.program_sigma = 0.5;
  DeviceModel dev{cfg};
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(dev.program(0, rng), 0.0);
}

TEST(Device, StuckFractionRoughlyObeyed) {
  DeviceConfig cfg;
  cfg.stuck_fraction = 0.1;
  DeviceModel dev{cfg};
  Rng rng(4);
  int stuck = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    int level = -1;
    if (dev.roll_stuck(rng, level)) {
      ++stuck;
      EXPECT_TRUE(level == 0 || level == cfg.max_level());
    }
  }
  EXPECT_NEAR(stuck, n / 10, n / 50);
}

TEST(Device, NoStuckWhenFractionZero) {
  DeviceModel dev{DeviceConfig{}};
  Rng rng(5);
  int level = -1;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(dev.roll_stuck(rng, level));
}

TEST(Device, WriteVerifyTightensProgramming) {
  DeviceConfig open_loop;
  open_loop.program_sigma = 0.2;
  DeviceConfig tuned = open_loop;
  tuned.max_program_attempts = 10;
  DeviceModel a{open_loop}, b{tuned};
  Rng ra(7), rb(7);
  RunningStats dev_a, dev_b;
  RunningStats attempts;
  for (int i = 0; i < 5000; ++i) {
    dev_a.add(std::abs(a.program(10, ra) - 10.0));
    int n = 0;
    dev_b.add(std::abs(b.program(10, rb, &n) - 10.0));
    attempts.add(n);
  }
  // The tuning loop cuts the deviation dramatically and most cells land
  // inside the tolerance window.
  EXPECT_LT(dev_b.mean(), dev_a.mean() / 3);
  EXPECT_LT(dev_b.mean(), open_loop.program_tolerance);
  EXPECT_GT(attempts.mean(), 1.5);  // σ=0.2 needs several pulses on average
  EXPECT_LE(attempts.max(), 10.0);
}

TEST(Device, WriteVerifyGivesUpAtMaxAttempts) {
  DeviceConfig cfg;
  cfg.program_sigma = 0.3;
  cfg.program_tolerance = 1e-9;  // unreachable window
  cfg.max_program_attempts = 4;
  DeviceModel dev{cfg};
  Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    int attempts = 0;
    const double v = dev.program(10, rng, &attempts);
    EXPECT_EQ(attempts, 4);  // burns the whole budget, then gives up
    EXPECT_GT(std::abs(v - 10.0), cfg.program_tolerance);
    EXPECT_GT(v, 0.0);  // ...but keeps a plausible attempt
  }
}

TEST(Device, ProgramMaxAttemptsParameterOverridesConfig) {
  DeviceConfig cfg;
  cfg.program_sigma = 0.3;
  cfg.program_tolerance = 1e-9;
  cfg.max_program_attempts = 2;
  DeviceModel dev{cfg};
  Rng rng(32);
  int attempts = 0;
  dev.program(10, rng, &attempts);
  EXPECT_EQ(attempts, 2);  // config cap
  dev.program(10, rng, &attempts, /*max_attempts=*/9);
  EXPECT_EQ(attempts, 9);  // escalation overrides the config cap
}

TEST(Device, DriftMultiplierTelescopesAndDecays) {
  DeviceConfig cfg;
  cfg.drift_nu = 0.1;
  cfg.drift_t0_s = 1.0;
  DeviceModel dev{cfg};
  EXPECT_DOUBLE_EQ(dev.drift_multiplier(0.1, 0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(dev.drift_multiplier(0.0, 0.0, 100.0), 1.0);
  const double m_100 = dev.drift_multiplier(0.1, 0.0, 100.0);
  const double m_1e6 = dev.drift_multiplier(0.1, 0.0, 1e6);
  EXPECT_LT(m_100, 1.0);
  EXPECT_LT(m_1e6, m_100);  // monotone loss over time
  // Aging 0→a then a→b equals aging 0→b directly.
  EXPECT_NEAR(dev.drift_multiplier(0.1, 0.0, 40.0) *
                  dev.drift_multiplier(0.1, 40.0, 100.0),
              m_100, 1e-12);
  EXPECT_THROW(dev.drift_multiplier(0.1, 50.0, 10.0), CheckError);
}

TEST(Device, DriftExponentNeverNegative) {
  DeviceConfig cfg;
  cfg.drift_nu = 0.01;
  cfg.drift_nu_sigma = 0.05;  // spread much wider than the mean
  DeviceModel dev{cfg};
  Rng rng(33);
  for (int i = 0; i < 1000; ++i)
    EXPECT_GE(dev.roll_drift_exponent(rng), 0.0);
}

TEST(Device, WriteVerifySinglePulseWhenIdeal) {
  DeviceConfig cfg;
  cfg.max_program_attempts = 10;
  DeviceModel dev{cfg};
  Rng rng(1);
  int attempts = -1;
  EXPECT_DOUBLE_EQ(dev.program(5, rng, &attempts), 5.0);
  EXPECT_EQ(attempts, 1);
  EXPECT_DOUBLE_EQ(dev.program(0, rng, &attempts), 0.0);
  EXPECT_EQ(attempts, 0);
}

TEST(Device, ReadNoiseScalesWithSignal) {
  DeviceConfig cfg;
  cfg.read_noise_sigma = 0.05;
  DeviceModel dev{cfg};
  Rng rng(6);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(dev.read(100.0, rng));
  EXPECT_NEAR(s.mean(), 100.0, 0.5);
  EXPECT_NEAR(s.stddev(), 5.0, 0.5);
  // Noiseless read passes through.
  DeviceModel clean{DeviceConfig{}};
  EXPECT_DOUBLE_EQ(clean.read(42.0, rng), 42.0);
}

}  // namespace
}  // namespace sei::rram
