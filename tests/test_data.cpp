// Synthetic digit generator and IDX loader.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "data/idx_loader.hpp"
#include "data/stroke_font.hpp"
#include "data/synthetic_digits.hpp"

namespace sei::data {
namespace {

TEST(StrokeFont, AllDigitsDefined) {
  for (int d = 0; d < 10; ++d) {
    const Glyph& g = digit_glyph(d);
    EXPECT_FALSE(g.strokes.empty()) << "digit " << d;
    for (const auto& s : g.strokes) EXPECT_GE(s.size(), 2u);
  }
  EXPECT_THROW(digit_glyph(10), CheckError);
  EXPECT_THROW(digit_glyph(-1), CheckError);
}

TEST(StrokeFont, GlyphsInUnitBox) {
  for (int d = 0; d < 10; ++d)
    for (const auto& s : digit_glyph(d).strokes)
      for (const Point& p : s) {
        EXPECT_GE(p.x, -0.05f);
        EXPECT_LE(p.x, 1.05f);
        EXPECT_GE(p.y, -0.05f);
        EXPECT_LE(p.y, 1.05f);
      }
}

TEST(StrokeFont, EllipseClosesOnItself) {
  Polyline e = ellipse({0.5f, 0.5f}, 0.2f, 0.3f, 16);
  EXPECT_EQ(e.size(), 17u);
  EXPECT_NEAR(e.front().x, e.back().x, 1e-5f);
  EXPECT_NEAR(e.front().y, e.back().y, 1e-5f);
}

TEST(Synthetic, DeterministicFromSeed) {
  Dataset a = generate_synthetic(20, 123);
  Dataset b = generate_synthetic(20, 123);
  EXPECT_EQ(a.labels, b.labels);
  for (std::size_t i = 0; i < a.images.numel(); ++i)
    EXPECT_FLOAT_EQ(a.images[i], b.images[i]);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  Dataset a = generate_synthetic(10, 1);
  Dataset b = generate_synthetic(10, 2);
  double diff = 0;
  for (std::size_t i = 0; i < a.images.numel(); ++i)
    diff += std::fabs(a.images[i] - b.images[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(Synthetic, PixelsInRangeAndInked) {
  Dataset d = generate_synthetic(50, 9);
  for (float v : d.images.flat()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  const std::size_t per_image = 28 * 28;
  for (int i = 0; i < d.size(); ++i) {
    int bright = 0;
    for (std::size_t p = 0; p < per_image; ++p)
      if (d.images[static_cast<std::size_t>(i) * per_image + p] > 0.5f)
        ++bright;
    EXPECT_GT(bright, 15) << "image " << i;
  }
}

TEST(Synthetic, LabelsRoughlyBalanced) {
  Dataset d = generate_synthetic(2000, 77);
  std::array<int, 10> counts{};
  for (auto l : d.labels) ++counts[l];
  for (int c : counts) EXPECT_GT(c, 120);  // expect ~200 each
}

TEST(Synthetic, MostPixelsNearZero) {
  // The paper's Table 1 long-tail property starts with a dark background.
  Dataset d = generate_synthetic(20, 5);
  int near_zero = 0, total = 0;
  for (float v : d.images.flat()) {
    if (v < 1.0f / 16) ++near_zero;
    ++total;
  }
  EXPECT_GT(static_cast<double>(near_zero) / total, 0.75);
}

TEST(DatasetIo, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sei_test_ds.bin").string();
  Dataset d = generate_synthetic(8, 3);
  save_dataset(d, path);
  Dataset e = load_dataset(path);
  EXPECT_EQ(e.labels, d.labels);
  for (std::size_t i = 0; i < d.images.numel(); ++i)
    EXPECT_FLOAT_EQ(e.images[i], d.images[i]);
  std::filesystem::remove(path);
}

TEST(Dataset, HeadTakesPrefix) {
  Dataset d = generate_synthetic(10, 4);
  Dataset h = d.head(3);
  EXPECT_EQ(h.size(), 3);
  EXPECT_EQ(h.labels[2], d.labels[2]);
  EXPECT_FLOAT_EQ(h.images[100], d.images[100]);
}

void write_be32(std::ofstream& out, std::uint32_t v) {
  unsigned char b[4] = {static_cast<unsigned char>(v >> 24),
                        static_cast<unsigned char>(v >> 16),
                        static_cast<unsigned char>(v >> 8),
                        static_cast<unsigned char>(v)};
  out.write(reinterpret_cast<char*>(b), 4);
}

TEST(IdxLoader, ReadsHandwrittenFormat) {
  const auto dir = std::filesystem::temp_directory_path() / "sei_idx_test";
  std::filesystem::create_directories(dir);
  const std::string img_path = (dir / "imgs").string();
  const std::string lab_path = (dir / "labs").string();
  {
    std::ofstream img(img_path, std::ios::binary);
    write_be32(img, 0x00000803);
    write_be32(img, 2);  // 2 images
    write_be32(img, 28);
    write_be32(img, 28);
    std::vector<unsigned char> pixels(2 * 784, 0);
    pixels[0] = 255;
    pixels[784] = 128;
    img.write(reinterpret_cast<char*>(pixels.data()),
              static_cast<std::streamsize>(pixels.size()));
    std::ofstream lab(lab_path, std::ios::binary);
    write_be32(lab, 0x00000801);
    write_be32(lab, 2);
    unsigned char labels[2] = {7, 3};
    lab.write(reinterpret_cast<char*>(labels), 2);
  }
  Dataset d = load_idx_pair(img_path, lab_path);
  EXPECT_EQ(d.size(), 2);
  EXPECT_FLOAT_EQ(d.images[0], 1.0f);
  EXPECT_NEAR(d.images[784], 128.0f / 255.0f, 1e-6f);
  EXPECT_EQ(d.labels[0], 7);
  EXPECT_EQ(d.labels[1], 3);
  std::filesystem::remove_all(dir);
}

TEST(IdxLoader, BadMagicThrows) {
  const auto dir = std::filesystem::temp_directory_path() / "sei_idx_bad";
  std::filesystem::create_directories(dir);
  const std::string img_path = (dir / "imgs").string();
  {
    std::ofstream img(img_path, std::ios::binary);
    write_be32(img, 0x12345678);
  }
  EXPECT_THROW(load_idx_pair(img_path, img_path), CheckError);
  std::filesystem::remove_all(dir);
}

TEST(IdxLoader, MissingDirReturnsNullopt) {
  EXPECT_FALSE(load_mnist_dir("/nonexistent/dir").has_value());
}

}  // namespace
}  // namespace sei::data
