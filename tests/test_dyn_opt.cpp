// Dynamic-threshold optimization for split stages.
#include <gtest/gtest.h>

#include "core/dyn_opt.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "workloads/networks.hpp"

namespace sei::core {
namespace {

struct Fixture {
  workloads::Workload wl = workloads::network2();
  data::DataBundle data;
  quant::QNetwork qnet;

  Fixture() {
    data.train = data::generate_synthetic(900, 71);
    data.test = data::generate_synthetic(300, 72);
    nn::Network net = workloads::build_float_network(wl.topo, 41);
    nn::TrainConfig tc;
    tc.epochs = 3;
    nn::Trainer(tc).fit(net, data.train.images, data.train.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 400;
    sc.step = 0.02;
    qnet = quant::quantize_network(net, wl.topo, data.train, sc).qnet;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(DynOpt, SkipsUnsplitStages) {
  Fixture& f = fixture();
  HardwareConfig cfg;  // network2 fits unsplit everywhere
  SeiNetwork hw(f.qnet, cfg);
  DynThreshResult res = optimize_dynamic_threshold(hw, f.data.train);
  EXPECT_TRUE(res.choices.empty());
}

TEST(DynOpt, NeverWorsensTrainingError) {
  Fixture& f = fixture();
  HardwareConfig cfg;
  cfg.limits.max_rows = 48;  // force stage-1 splitting into 3 blocks
  SeiNetwork hw(f.qnet, cfg);
  DynThreshConfig dcfg;
  dcfg.max_images = 400;
  DynThreshResult res = optimize_dynamic_threshold(hw, f.data.train, dcfg);
  ASSERT_EQ(res.choices.size(), 1u);
  const DynThreshChoice& c = res.choices[0];
  EXPECT_EQ(c.stage, 1);
  EXPECT_EQ(c.block_count, 3);
  EXPECT_LE(c.train_error_after_pct, c.train_error_before_pct + 1e-9);
  // The chosen knobs are applied to the network.
  EXPECT_EQ(hw.layer(1).vote_threshold, c.vote);
  EXPECT_FLOAT_EQ(hw.layer(1).dyn_beta, static_cast<float>(c.beta));
}

TEST(DynOpt, VoteInGridAndBetaFromGrid) {
  Fixture& f = fixture();
  HardwareConfig cfg;
  cfg.limits.max_rows = 48;
  SeiNetwork hw(f.qnet, cfg);
  DynThreshConfig dcfg;
  dcfg.max_images = 300;
  dcfg.beta_grid = {0.0, 0.5};
  DynThreshResult res = optimize_dynamic_threshold(hw, f.data.train, dcfg);
  ASSERT_EQ(res.choices.size(), 1u);
  EXPECT_GE(res.choices[0].vote, 1);
  EXPECT_LE(res.choices[0].vote, 3);
  EXPECT_TRUE(res.choices[0].beta == 0.0 || res.choices[0].beta == 0.5);
}

TEST(DynOpt, FixedVoteWhenDisabled) {
  Fixture& f = fixture();
  HardwareConfig cfg;
  cfg.limits.max_rows = 48;
  SeiNetwork hw(f.qnet, cfg);
  hw.layer(1).vote_threshold = 2;
  DynThreshConfig dcfg;
  dcfg.max_images = 200;
  dcfg.optimize_vote = false;
  DynThreshResult res = optimize_dynamic_threshold(hw, f.data.train, dcfg);
  ASSERT_EQ(res.choices.size(), 1u);
  EXPECT_EQ(res.choices[0].vote, 2);
}

TEST(DynOpt, BetaShiftsPerBlockThresholds) {
  // Functional check of the compensation: with a large positive beta, a
  // block with more active inputs needs a larger partial sum to fire.
  Fixture& f = fixture();
  HardwareConfig cfg;
  cfg.limits.max_rows = 48;
  SeiNetwork hw(f.qnet, cfg);
  hw.layer(1).vote_threshold = 1;
  hw.layer(1).dyn_beta = 0.0f;
  auto bits0 = hw.cache_stage_inputs(f.data.test, 2, 50);
  hw.layer(1).dyn_beta = 50.0f;  // extreme compensation
  auto bits1 = hw.cache_stage_inputs(f.data.test, 2, 50);
  long long ones0 = 0, ones1 = 0;
  for (const auto& bm : bits0)
    for (auto b : bm) ones0 += b;
  for (const auto& bm : bits1)
    for (auto b : bm) ones1 += b;
  EXPECT_NE(ones0, ones1);  // the dynamic part changes decisions
}

}  // namespace
}  // namespace sei::core
