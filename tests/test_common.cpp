// Unit tests for the common utilities: RNG, stats, table, CLI, binary I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/io.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace sei {
namespace {

TEST(Check, ThrowsWithLocation) {
  try {
    SEI_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Rng r(99);
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[r.below(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
}

TEST(Rng, GaussianMoments) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, LognormalMultiplierMeanIsOne) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.lognormal_multiplier(0.2));
  EXPECT_NEAR(s.mean(), 1.0, 0.02);
  EXPECT_GT(s.stddev(), 0.1);
}

TEST(Rng, LognormalZeroSigmaIsExactlyOne) {
  Rng r(13);
  EXPECT_DOUBLE_EQ(r.lognormal_multiplier(0.0), 1.0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(42);
  Rng child = parent.split();
  EXPECT_NE(parent(), child());
}

TEST(RunningStats, Basics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(EdgeHistogram, PaperBins) {
  EdgeHistogram h({0.0, 1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0});
  h.add(0.0);     // bin 0 (left edge)
  h.add(0.05);    // bin 0
  h.add(0.07);    // bin 1
  h.add(0.2);     // bin 2
  h.add(0.9);     // bin 3
  h.add(1.0);     // bin 3 (right edge closed)
  h.add(2.0);     // out of range
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.out_of_range(), 1u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 2.0 / 6.0);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t("Title");
  t.header({"a", "bbbb"});
  t.row({"x", "1"});
  t.separator();
  t.row({"longer", "2"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("| longer |"), std::string::npos);
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::pct(99.5, 1), "99.5%");
}

TEST(TextTable, CsvExport) {
  TextTable t("Title ignored in CSV");
  t.header({"a", "b"});
  t.row({"x", "1,5"});
  t.separator();
  t.row({"quote\"d", "2"});
  EXPECT_EQ(t.csv(), "a,b\nx,\"1,5\"\n\"quote\"\"d\",2\n");
}

TEST(TextTable, WriteCsvIfEmptyPathIsNoop) {
  TextTable t;
  t.header({"a"});
  EXPECT_NO_THROW(t.write_csv_if(""));
  const std::string path =
      (std::filesystem::temp_directory_path() / "sei_table.csv").string();
  t.row({"v"});
  t.write_csv_if(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a");
  std::filesystem::remove(path);
}

TEST(Cli, ParsesFlagsAndDefaults) {
  const char* argv[] = {"prog", "--alpha", "3", "--flag", "--name=xyz"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("alpha", 1), 3);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get("name", "none"), "xyz");
  EXPECT_EQ(cli.get_int("missing", 17), 17);
  EXPECT_TRUE(cli.validate("test"));
}

TEST(Cli, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--typo", "1"};
  Cli cli(3, const_cast<char**>(argv));
  cli.get_int("alpha", 1);
  EXPECT_THROW(cli.validate("test"), CliError);
}

TEST(Cli, SuggestsClosestKnownFlag) {
  // The motivating typo: --treads must not silently run with defaults.
  const char* argv[] = {"prog", "--treads", "8"};
  Cli cli(3, const_cast<char**>(argv));
  cli.get_threads();
  try {
    cli.validate("test");
    FAIL() << "validate() accepted an unknown flag";
  } catch (const CliError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--treads"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean --threads"), std::string::npos) << what;
  }
}

TEST(Cli, RejectsMalformedValues) {
  const char* argv[] = {"prog", "--alpha", "abc"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_THROW(cli.get_int("alpha", 1), CliError);
  const char* argv2[] = {"prog", "--threads", "-2"};
  Cli cli2(3, const_cast<char**>(argv2));
  EXPECT_THROW(cli2.get_threads(), CliError);
}

TEST(BinaryIo, RoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "sei_test_io.bin";
  {
    BinaryWriter w(path);
    w.write_u32(0xdeadbeef);
    w.write_f64(3.25);
    w.write_string("hello");
    w.write_f32_vec({1.0f, -2.0f});
    w.write_i32_vec({-7, 8});
    w.write_u8_vec({9, 10, 11});
    w.commit();
  }
  BinaryReader r(path);
  r.verify_crc();  // trailer checks out and is hidden from the cursor
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.25);
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_f32_vec(), (std::vector<float>{1.0f, -2.0f}));
  EXPECT_EQ(r.read_i32_vec(), (std::vector<std::int32_t>{-7, 8}));
  EXPECT_EQ(r.read_u8_vec(), (std::vector<std::uint8_t>{9, 10, 11}));
  std::filesystem::remove(path);
}

TEST(BinaryIo, UncommittedWriterLeavesNoFile) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "sei_test_io_uncommitted.bin";
  {
    BinaryWriter w(path);
    w.write_u32(1);
    // no commit
  }
  EXPECT_FALSE(file_exists(path));
}

TEST(BinaryIo, TruncatedReadThrows) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "sei_test_io_trunc.bin";
  {
    BinaryWriter w(path);
    w.write_u32(1);
    w.commit();
  }
  BinaryReader r(path);
  r.verify_crc();  // shrinks the logical size to the 4-byte payload
  EXPECT_EQ(r.read_u32(), 1u);
  EXPECT_THROW(r.read_u64(), CheckError);
  std::filesystem::remove(path);
}

TEST(BinaryIo, CrcDetectsBitFlip) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "sei_test_io_flip.bin";
  {
    BinaryWriter w(path);
    w.write_f32_vec({1.0f, 2.0f, 3.0f});
    w.commit();
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(9);  // inside the payload
    char byte = 0x5a;
    f.write(&byte, 1);
  }
  BinaryReader r(path);
  EXPECT_THROW(r.verify_crc(), CheckError);
  std::filesystem::remove(path);
}

TEST(BinaryIo, CrcRejectsLegacyFileWithoutTrailer) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "sei_test_io_legacy.bin";
  {
    std::ofstream f(path, std::ios::binary);
    const std::uint64_t payload = 42;  // pre-CRC format: raw payload only
    f.write(reinterpret_cast<const char*>(&payload), sizeof payload);
  }
  BinaryReader r(path);
  EXPECT_THROW(r.verify_crc(), CheckError);
  std::filesystem::remove(path);
}

TEST(BinaryIo, CommitAtomicallyReplacesExistingFile) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "sei_test_io_replace.bin";
  {
    BinaryWriter w(path);
    w.write_u32(1);
    w.commit();
  }
  {
    BinaryWriter w(path);
    w.write_u32(2);
    w.commit();
  }
  EXPECT_FALSE(file_exists(path + ".tmp"));
  BinaryReader r(path);
  r.verify_crc();
  EXPECT_EQ(r.read_u32(), 2u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sei
