// Telemetry subsystem: histogram bucket semantics, the deterministic
// cross-thread merge contract (bit-identical snapshots at any thread
// count), span nesting/ordering, and the EnergyMeter's exact agreement
// with the static arch::estimate_cost table.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/cost_model.hpp"
#include "arch/live_energy.hpp"
#include "exec/thread_pool.hpp"
#include "telemetry/energy.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "workloads/networks.hpp"

namespace sei::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucket boundaries (Prometheus `le`: inclusive upper bounds).

TEST(Histogram, ExactBoundaryLandsInLeBucket) {
  Histogram h({1.0, 2.0, 4.0}, 1e-6);
  h.observe(1.0);   // == bounds[0] -> bucket 0
  h.observe(2.0);   // == bounds[1] -> bucket 1
  h.observe(2.5);   // (2, 4]       -> bucket 2
  h.observe(4.0);   // == bounds[2] -> bucket 2
  h.observe(4.01);  // > last bound -> overflow
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.01);
  EXPECT_NEAR(h.sum(), 1.0 + 2.0 + 2.5 + 4.0 + 4.01, 1e-5);
}

TEST(Histogram, BelowFirstBoundCountsInFirstBucket) {
  Histogram h({1.0, 10.0}, 1e-6);
  h.observe(0.0);
  h.observe(0.999);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 0u);
}

TEST(Histogram, ExponentialBucketsLadder) {
  const std::vector<double> b = exponential_buckets(0.5, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 0.5);
  EXPECT_DOUBLE_EQ(b[3], 4.0);
}

TEST(Histogram, QuantileInterpolatesAndClamps) {
  Histogram h({1.0, 2.0, 4.0}, 1e-6);
  for (int i = 0; i < 100; ++i) h.observe(1.5);
  MetricsRegistry reg;
  // Build a sample by hand via a registry round-trip.
  Histogram& rh = reg.histogram("q", {1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) rh.observe(1.5);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const double p50 = snap.histograms[0].quantile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 1.5);  // clamped to the observed max
}

// ---------------------------------------------------------------------------
// Deterministic cross-thread merge: the same logical batch must produce a
// bit-identical snapshot no matter how many threads recorded it.

MetricsSnapshot record_batch_with_threads(int threads) {
  exec::set_default_threads(threads);
  MetricsRegistry reg;
  Counter& items = reg.counter("items_total");
  Counter& odd = reg.counter("items_total{kind=\"odd\"}");
  Gauge& last = reg.gauge("config_value");
  Histogram& values = reg.histogram("value_dist", {1.0, 2.0, 4.0, 8.0, 16.0});
  last.set(42.0);
  exec::parallel_for(
      10000,
      [&](int i) {
        items.add();
        if (i % 2) odd.add();
        values.observe(static_cast<double>(i % 37) * 0.5);
      },
      nullptr, /*grain=*/64);
  return reg.snapshot();
}

TEST(Determinism, SnapshotsBitIdenticalAcrossThreadCounts) {
  const MetricsSnapshot s1 = record_batch_with_threads(1);
  const MetricsSnapshot s2 = record_batch_with_threads(2);
  const MetricsSnapshot s8 = record_batch_with_threads(8);
  exec::set_default_threads(0);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s8);
  ASSERT_EQ(s1.counters.size(), 2u);
  // Snapshot order is name order: labels sort after the bare family.
  EXPECT_EQ(s1.counters[0].name, "items_total");
  EXPECT_EQ(s1.counters[0].value, 10000u);
  EXPECT_EQ(s1.counters[1].value, 5000u);
  ASSERT_EQ(s1.histograms.size(), 1u);
  EXPECT_EQ(s1.histograms[0].count, 10000u);
}

TEST(Registry, ResetZeroesWithoutInvalidatingReferences) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c_total");
  c.add(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  EXPECT_EQ(reg.counter("c_total").value(), 1u);
}

// ---------------------------------------------------------------------------
// Spans: nesting, ordering, and the enabled gate.

TEST(Spans, DisabledRecordsNothing) {
  Tracer::set_enabled(false);
  (void)Tracer::drain();
  { Span s("telemetry.test.ignored"); }
  EXPECT_TRUE(Tracer::drain().empty());
}

TEST(Spans, NestedSpansDrainParentFirst) {
  Tracer::set_enabled(true);
  (void)Tracer::drain();  // discard anything earlier tests recorded
  {
    Span outer("telemetry.test.outer");
    { Span inner("telemetry.test.inner"); }
    { Span inner2("telemetry.test.inner2"); }
  }
  const std::vector<TraceEvent> evs = Tracer::drain();
  Tracer::set_enabled(false);
  ASSERT_EQ(evs.size(), 3u);
  // Buffers hold completion order (inner first); drain re-sorts by
  // (tid, start, -dur) so the enclosing span comes back first.
  EXPECT_STREQ(evs[0].name, "telemetry.test.outer");
  EXPECT_STREQ(evs[1].name, "telemetry.test.inner");
  EXPECT_STREQ(evs[2].name, "telemetry.test.inner2");
  EXPECT_LE(evs[0].start_ns, evs[1].start_ns);
  EXPECT_LE(evs[1].start_ns, evs[2].start_ns);
  // Parent encloses both children.
  EXPECT_GE(evs[0].start_ns + evs[0].dur_ns,
            evs[2].start_ns + evs[2].dur_ns);
  EXPECT_EQ(evs[0].tid, evs[1].tid);
}

TEST(Spans, FinishIsIdempotent) {
  Tracer::set_enabled(true);
  (void)Tracer::drain();
  {
    Span s("telemetry.test.finish");
    s.finish();
    s.finish();  // no-op; destructor also records nothing further
  }
  const auto evs = Tracer::drain();
  Tracer::set_enabled(false);
  EXPECT_EQ(evs.size(), 1u);
}

// ---------------------------------------------------------------------------
// EnergyMeter vs the static cost table: charging every stage once must
// reproduce arch::estimate_cost per category, structure by structure.

void expect_meter_matches_static(const core::HardwareConfig& cfg,
                                 core::StructureKind s) {
  const quant::Topology& topo = workloads::network1().topo;
  const arch::NetworkCost nc = arch::estimate_cost(topo, cfg, s);
  const EnergyMeter meter = arch::make_energy_meter(topo, cfg, s);
  ASSERT_EQ(meter.stage_count(), nc.stages.size());

  const int images = 3;
  EnergyAccum acc;
  for (int img = 0; img < images; ++img) {
    for (std::size_t i = 0; i < meter.stage_count(); ++i)
      meter.charge_stage(i, acc);
    ++acc.images;
  }
  EXPECT_EQ(acc.stages, meter.stage_count() * images);

  const double tol = 1e-6;
  EXPECT_NEAR(acc.pj.dac / images, nc.energy_pj.dac, tol);
  EXPECT_NEAR(acc.pj.adc / images, nc.energy_pj.adc, tol);
  EXPECT_NEAR(acc.pj.sense_amp / images, nc.energy_pj.sense_amp, tol);
  EXPECT_NEAR(acc.pj.driver / images, nc.energy_pj.driver, tol);
  EXPECT_NEAR(acc.pj.rram / images, nc.energy_pj.rram, tol);
  EXPECT_NEAR(acc.pj.decoder / images, nc.energy_pj.decoder, tol);
  EXPECT_NEAR(acc.pj.digital / images, nc.energy_pj.digital, tol);
  EXPECT_NEAR(acc.pj.buffer / images, nc.energy_pj.buffer, tol);
  EXPECT_NEAR(acc.pj.wta / images, nc.energy_pj.wta, tol);
  EXPECT_NEAR(acc.pj.total() / images, nc.energy_pj.total(), tol);
  EXPECT_NEAR(acc.joules_per_image(), nc.energy_pj.total() * 1e-12,
              tol * 1e-12);
}

TEST(EnergyMeter, MatchesStaticCostSei) {
  expect_meter_matches_static(core::HardwareConfig{},
                              core::StructureKind::kSei);
}

TEST(EnergyMeter, MatchesStaticCostBinInputAdc) {
  expect_meter_matches_static(core::HardwareConfig{},
                              core::StructureKind::kBinInputAdc);
}

TEST(EnergyMeter, MatchesStaticCostDacAdc8) {
  expect_meter_matches_static(core::HardwareConfig{},
                              core::StructureKind::kDacAdc8);
}

TEST(EnergyMeter, MatchesStaticCostDynamicThresholdExtraColumn) {
  core::HardwareConfig cfg;
  cfg.sign_mode = core::SignMode::kUnipolarDynThresh;
  expect_meter_matches_static(cfg, core::StructureKind::kSei);
}

TEST(EnergyMeter, InterfaceSliceFollowsFig1Direction) {
  const quant::Topology& topo = workloads::network1().topo;
  core::HardwareConfig cfg;
  const EnergyBreakdown sei =
      arch::make_energy_meter(topo, cfg, core::StructureKind::kSei)
          .network_pj();
  const EnergyBreakdown adc =
      arch::make_energy_meter(topo, cfg, core::StructureKind::kBinInputAdc)
          .network_pj();
  // Fig. 1: the conversion interface dominates the conventional structure;
  // SEI shrinks it in both absolute terms and as a share of the total.
  EXPECT_GT(adc.interface(), sei.interface());
  EXPECT_GT(adc.interface() / adc.total(), sei.interface() / sei.total());
}

TEST(EnergyPublish, EmitsFixedPointCountersPerComponent) {
  MetricsRegistry reg;
  EnergyAccum acc;
  acc.pj.dac = 1.5;
  acc.pj.rram = 2.25;
  acc.events.crossbar_reads = 10;
  acc.images = 2;
  acc.stages = 4;
  publish_energy(reg, "test", acc);
  EXPECT_EQ(reg.counter("sei_energy_fj_total{path=\"test\",component=\"dac\"}")
                .value(),
            1500u);
  EXPECT_EQ(
      reg.counter("sei_energy_fj_total{path=\"test\",component=\"rram\"}")
          .value(),
      2250u);
  EXPECT_EQ(reg.counter("sei_images_total{path=\"test\"}").value(), 2u);
  EXPECT_EQ(
      reg.counter("sei_ops_total{path=\"test\",op=\"crossbar_read\"}")
          .value(),
      10u);
}

}  // namespace
}  // namespace sei::telemetry
