// The ADC-merging structure simulator (Fig. 2(b) / "1-bit-Input+ADC").
#include <gtest/gtest.h>

#include "core/adc_network.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "workloads/networks.hpp"

namespace sei::core {
namespace {

struct Fixture {
  workloads::Workload wl = workloads::network2();
  data::Dataset train = data::generate_synthetic(1000, 81);
  data::Dataset test = data::generate_synthetic(300, 82);
  quant::QNetwork qnet;

  Fixture() {
    nn::Network net = workloads::build_float_network(wl.topo, 71);
    nn::TrainConfig tc;
    tc.epochs = 3;
    nn::Trainer(tc).fit(net, train.images, train.label_span());
    quant::SearchConfig sc;
    sc.max_search_images = 400;
    sc.step = 0.02;
    qnet = quant::quantize_network(net, wl.topo, train, sc).qnet;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(AdcNetwork, HighResolutionMatchesSoftwareQNetwork) {
  Fixture& f = fixture();
  AdcConfig cfg;
  cfg.adc_bits = 14;     // effectively lossless conversion
  cfg.weight_bits = 14;  // negligible weight quantization
  cfg.device.bits = 7;
  cfg.input_bits = 14;
  AdcNetwork hw(f.qnet, cfg, f.train);
  const std::size_t per_image = 28 * 28;
  int agree = 0;
  const int n = 120;
  for (int i = 0; i < n; ++i) {
    std::span<const float> img{
        f.test.images.data() + static_cast<std::size_t>(i) * per_image,
        per_image};
    if (hw.predict(img) == f.qnet.predict(img)) ++agree;
  }
  EXPECT_GE(agree, n - 2);
}

TEST(AdcNetwork, FullScaleIsCalibratedPositive) {
  Fixture& f = fixture();
  AdcConfig cfg;
  AdcNetwork hw(f.qnet, cfg, f.train);
  for (int s = 0; s < hw.stage_count(); ++s) EXPECT_GT(hw.full_scale(s), 0.0);
  EXPECT_EQ(hw.planes(), 4);  // hi/lo × pos/neg for 8-bit on 4-bit devices
}

TEST(AdcNetwork, AccuracyDegradesAsAdcBitsShrink) {
  // The central trade-off the SEI structure removes: merging needs a
  // high-resolution ADC. Errors must be non-increasing in ADC bits (up to
  // noise) and collapse at very low resolution.
  Fixture& f = fixture();
  const double sw_err = f.qnet.error_rate(f.test);
  double err8 = 0, err4 = 0, err1 = 0;
  {
    AdcConfig cfg;
    cfg.adc_bits = 8;
    err8 = AdcNetwork(f.qnet, cfg, f.train).error_rate(f.test);
  }
  {
    AdcConfig cfg;
    cfg.adc_bits = 4;
    err4 = AdcNetwork(f.qnet, cfg, f.train).error_rate(f.test);
  }
  {
    AdcConfig cfg;
    cfg.adc_bits = 1;
    err1 = AdcNetwork(f.qnet, cfg, f.train).error_rate(f.test);
  }
  EXPECT_NEAR(err8, sw_err, 3.0);   // 8-bit ADC ≈ exact merging
  EXPECT_GE(err1, err4 - 1.0);      // fewer bits can only hurt
  EXPECT_GT(err1, err8 + 5.0);      // 1-bit merging ADC is catastrophic
}

TEST(AdcNetwork, RowSplittingUsesRawLimit) {
  // One cell per logical row per plane: a 200-row FC fits a 512 crossbar
  // unsplit here (unlike the SEI mapping whose 4× expansion splits it).
  Fixture& f = fixture();
  AdcConfig cfg;
  AdcNetwork hw(f.qnet, cfg, f.train);
  SUCCEED();  // construction validates geometry internally
}

TEST(AdcNetwork, RejectsBadConfig) {
  Fixture& f = fixture();
  AdcConfig cfg;
  cfg.adc_bits = 0;
  EXPECT_THROW(AdcNetwork(f.qnet, cfg, f.train), CheckError);
}

}  // namespace
}  // namespace sei::core
