// Additional edge-case coverage across modules.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/trainer.hpp"
#include "quant/qnet.hpp"
#include "snn/snn_network.hpp"
#include "workloads/networks.hpp"

namespace sei {
namespace {

TEST(RngEdges, BetweenCoversInclusiveBounds) {
  Rng r(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngEdges, BelowOneIsAlwaysZero) {
  Rng r(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(TimerEdges, MonotoneNonNegative) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LE(t.seconds(), b + 1.0);
}

TEST(QnetEdges, FcStageWithFloatInput) {
  // The MLP input stage path: FC geometry fed analog (DAC) values.
  quant::QLayer l;
  l.geom.kind = quant::StageSpec::Kind::Fc;
  l.geom.in_h = 1;
  l.geom.in_w = 3;
  l.geom.in_ch = 1;
  l.geom.out_h = l.geom.out_w = l.geom.pooled_h = l.geom.pooled_w = 1;
  l.geom.rows = 3;
  l.geom.cols = 2;
  l.weight = nn::Tensor({3, 2});
  l.weight.at(0, 0) = 1.0f;
  l.weight.at(1, 0) = 2.0f;
  l.weight.at(2, 1) = -1.0f;
  l.bias = nn::Tensor({2});
  l.bias.at(1) = 0.25f;
  std::vector<float> in{0.5f, 0.0f, 1.0f};
  std::vector<float> out;
  quant::eval_stage_float_input(l, in, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FLOAT_EQ(out[0], 0.5f);           // 0.5·1 + 0·2
  EXPECT_FLOAT_EQ(out[1], -1.0f + 0.25f);  // 1·(−1) + bias
}

TEST(QnetEdges, NoPoolBinarizePassesThrough) {
  quant::QLayer l;
  l.geom.kind = quant::StageSpec::Kind::Fc;
  l.geom.out_h = l.geom.out_w = 1;
  l.geom.pooled_h = l.geom.pooled_w = 1;
  l.geom.pool_after = false;
  l.geom.rows = 1;
  l.geom.cols = 3;
  l.threshold = 0.5f;
  std::vector<float> sums{0.4f, 0.6f, 0.5f};
  const quant::BitMap bits = quant::binarize_and_pool(l, sums);
  EXPECT_EQ(bits, (quant::BitMap{0, 1, 0}));  // strictly greater
}

TEST(SynthEdges, CustomImageSizeRenders) {
  data::SynthConfig cfg;
  cfg.image_size = 20;
  Rng rng(3);
  std::vector<float> img(400, -1.0f);
  data::render_digit(5, cfg, rng, img.data());
  float mx = 0;
  for (float v : img) {
    EXPECT_GE(v, 0.0f);
    mx = std::max(mx, v);
  }
  EXPECT_GT(mx, 0.5f);  // the digit is inked
}

TEST(SnnEdges, MoreInputSpikesForBrighterImages) {
  // Phased coding: total spikes over T timesteps ≈ Σ pixel values · T.
  auto wl = workloads::network2();
  nn::Network net = workloads::build_float_network(wl.topo, 5);
  quant::QNetwork q = quant::build_qnetwork(net, wl.topo);
  snn::SnnConfig cfg;
  cfg.timesteps = 16;
  snn::SnnNetwork snn(q, cfg);

  nn::Tensor dim({1, 28, 28, 1});
  dim.fill(0.1f);
  nn::Tensor bright({1, 28, 28, 1});
  bright.fill(0.9f);
  snn::SpikeStats sd, sb;
  snn.predict({dim.data(), dim.numel()}, &sd);
  snn.predict({bright.data(), bright.numel()}, &sb);
  EXPECT_GT(sb.input_spikes, sd.input_spikes * 5);
  // Phase coding emits ⌊p·T⌋..⌈p·T⌉ spikes per pixel.
  EXPECT_NEAR(static_cast<double>(sb.input_spikes), 0.9 * 16 * 784,
              784.0);
}

TEST(TrainerEdges, SingleEpochSingleBatch) {
  data::Dataset d = data::generate_synthetic(8, 4);
  auto wl = workloads::network2();
  nn::Network net = workloads::build_float_network(wl.topo, 6);
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 16;  // larger than the dataset
  const nn::EpochStats s = nn::Trainer(tc).fit(net, d.images, d.label_span());
  EXPECT_EQ(s.epoch, 1);
  EXPECT_GE(s.train_loss, 0.0);
}

TEST(WorkloadEdges, AllWorkloadsBuildAndForward) {
  for (const char* name : {"network1", "network2", "network3", "mlp"}) {
    auto wl = workloads::workload_by_name(name);
    nn::Network net = workloads::build_float_network(wl.topo, 7);
    nn::Tensor img({1, 28, 28, 1});
    nn::Tensor out = net.forward(img);
    EXPECT_EQ(out.numel(), 10u) << name;
  }
}

}  // namespace
}  // namespace sei
