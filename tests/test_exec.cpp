// Deterministic thread pool: coverage, ordering, nesting, error paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.hpp"

namespace sei::exec {
namespace {

TEST(ThreadPool, ResolvesThreadCounts) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3);
  EXPECT_EQ(ThreadPool::resolve_threads(-5),
            ThreadPool::resolve_threads(0));
  ThreadPool one(1);
  EXPECT_EQ(one.thread_count(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.thread_count(), 4);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const int n : {1, 7, 8, 100, 1000}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    parallel_for(n, [&](int i) { ++hits[static_cast<std::size_t>(i)]; },
                 &pool, /*grain=*/3);
    for (int i = 0; i < n; ++i)
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "n=" << n << " i=" << i;
  }
}

TEST(ThreadPool, ChunkBoundariesDependOnlyOnGrain) {
  // Record (lo, hi) per chunk; every pool size must see the same ranges.
  auto ranges_with = [](int threads, int n, int grain) {
    ThreadPool pool(threads);
    std::vector<std::pair<int, int>> ranges(
        static_cast<std::size_t>((n + grain - 1) / grain));
    parallel_for_chunks(
        n, grain,
        [&](int lo, int hi) {
          ranges[static_cast<std::size_t>(lo / grain)] = {lo, hi};
        },
        &pool);
    return ranges;
  };
  const auto serial = ranges_with(1, 103, 8);
  EXPECT_EQ(ranges_with(2, 103, 8), serial);
  EXPECT_EQ(ranges_with(8, 103, 8), serial);
}

TEST(ThreadPool, ReduceCombinesInChunkOrder) {
  // Floating-point sum of wildly varying magnitudes: associativity does not
  // hold, so bit-identical results across pool sizes prove the partials are
  // combined in a fixed order.
  const int n = 500;
  auto term = [](int i) { return std::exp2(static_cast<double>(i % 60)); };
  auto sum_with = [&](int threads) {
    ThreadPool pool(threads);
    return parallel_reduce<double>(
        n, 7, 0.0,
        [&](int lo, int hi) {
          double s = 0.0;
          for (int i = lo; i < hi; ++i) s += term(i);
          return s;
        },
        std::plus<double>{}, &pool);
  };
  const double serial = sum_with(1);
  EXPECT_EQ(sum_with(2), serial);
  EXPECT_EQ(sum_with(3), serial);
  EXPECT_EQ(sum_with(8), serial);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  std::atomic<int> nested_in_task{0};
  EXPECT_FALSE(ThreadPool::in_task());
  parallel_for(
      8,
      [&](int i) {
        EXPECT_TRUE(ThreadPool::in_task());
        // The inner loop must run inline on this worker — and still cover
        // its whole range.
        parallel_for(
            8,
            [&](int j) {
              if (ThreadPool::in_task()) ++nested_in_task;
              ++hits[static_cast<std::size_t>(i * 8 + j)];
            },
            &pool);
      },
      &pool, /*grain=*/1);
  EXPECT_FALSE(ThreadPool::in_task());
  EXPECT_EQ(nested_in_task.load(), 64);
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(
          100,
          [&](int i) {
            if (i == 41) throw std::runtime_error("chunk failed");
          },
          &pool),
      std::runtime_error);
  // The pool survives a failed job.
  std::atomic<int> count{0};
  parallel_for(100, [&](int) { ++count; }, &pool);
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, HandlesEmptyAndSingleChunkRanges) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for_chunks(0, 8, [&](int, int) { ++calls; }, &pool);
  EXPECT_EQ(calls, 0);
  parallel_for_chunks(5, 8, [&](int lo, int hi) {
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 5);
    ++calls;
  }, &pool);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(parallel_reduce<int>(0, 4, 42, [](int, int) { return 0; },
                                 std::plus<int>{}, &pool),
            42);
}

TEST(ThreadPool, DefaultPoolFollowsSetDefaultThreads) {
  set_default_threads(2);
  EXPECT_EQ(default_threads(), 2);
  EXPECT_EQ(default_pool().thread_count(), 2);
  std::atomic<int> count{0};
  parallel_for(50, [&](int) { ++count; });
  EXPECT_EQ(count.load(), 50);
  set_default_threads(0);  // back to auto for the other tests
  EXPECT_EQ(default_threads(), ThreadPool::resolve_threads(0));
}

}  // namespace
}  // namespace sei::exec
