// ReLU, MaxPool2x2 and Dense: forward semantics and backward gradients.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/dense.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"

namespace sei::nn {
namespace {

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  Tensor in = Tensor::from_vector({-1.0f, 0.0f, 2.5f});
  Tensor out = relu.forward(in, false);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.5f);
}

TEST(ReLU, BackwardMasksGradient) {
  ReLU relu;
  Tensor in = Tensor::from_vector({-1.0f, 3.0f});
  relu.forward(in, true);
  Tensor g = relu.backward(Tensor::from_vector({5.0f, 7.0f}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 7.0f);
}

TEST(ReLU, BackwardBeforeForwardThrows) {
  ReLU relu;
  EXPECT_THROW(relu.backward(Tensor({2})), CheckError);
}

TEST(MaxPool, ForwardTakesWindowMax) {
  MaxPool2x2 pool;
  Tensor in({1, 2, 2, 1});
  in.at(0, 0, 0, 0) = 1;
  in.at(0, 0, 1, 0) = 4;
  in.at(0, 1, 0, 0) = 2;
  in.at(0, 1, 1, 0) = 3;
  Tensor out = pool.forward(in, false);
  ASSERT_EQ(out.shape(), (std::vector<int>{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out[0], 4.0f);
}

TEST(MaxPool, FloorsOddInput) {
  MaxPool2x2 pool;
  Tensor in({1, 5, 5, 2});
  Tensor out = pool.forward(in, false);
  EXPECT_EQ(out.dim(1), 2);
  EXPECT_EQ(out.dim(2), 2);
}

TEST(MaxPool, ChannelsPoolIndependently) {
  MaxPool2x2 pool;
  Tensor in({1, 2, 2, 2});
  // channel 0 max at (0,0); channel 1 max at (1,1)
  in.at(0, 0, 0, 0) = 9;
  in.at(0, 1, 1, 1) = 8;
  Tensor out = pool.forward(in, false);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 9.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 8.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  MaxPool2x2 pool;
  Tensor in({1, 2, 2, 1});
  in.at(0, 0, 1, 0) = 10;  // argmax
  pool.forward(in, true);
  Tensor g({1, 1, 1, 1});
  g[0] = 3.0f;
  Tensor gi = pool.backward(g);
  EXPECT_FLOAT_EQ(gi.at(0, 0, 1, 0), 3.0f);
  EXPECT_FLOAT_EQ(gi.at(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gi.at(0, 1, 0, 0), 0.0f);
}

TEST(Dense, ForwardIsAffine) {
  Rng rng(1);
  Dense d(3, 2, rng);
  d.weight_matrix().fill(0.0f);
  d.weight_matrix().at(0, 0) = 1.0f;
  d.weight_matrix().at(2, 1) = 2.0f;
  d.bias().at(0) = 0.5f;
  Tensor in = Tensor::from_vector({1.0f, 1.0f, 3.0f});
  in.reshape({1, 3});
  Tensor out = d.forward(in, false);
  EXPECT_FLOAT_EQ(out.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 6.0f);
}

TEST(Dense, FlattensHigherRankInput) {
  Rng rng(2);
  Dense d(8, 2, rng);
  Tensor in({2, 2, 2, 2});  // batch 2, 8 features
  EXPECT_NO_THROW(d.forward(in, false));
}

TEST(Dense, BackwardMatchesNumericalGradient) {
  Rng rng(3);
  Dense d(4, 3, rng);
  Tensor in({2, 4});
  for (float& v : in.flat()) v = static_cast<float>(rng.uniform(-1, 1));

  auto loss = [&](const Tensor& x) {
    Tensor out = d.forward(x, false);
    double s = 0;
    for (float o : out.flat()) s += o * o;
    return s;
  };

  Tensor out = d.forward(in, true);
  Tensor g = out;
  g.scale(2.0f);  // d/dout of sum(out²)
  Tensor gi = d.backward(g);

  const double eps = 1e-3;
  for (std::size_t i = 0; i < in.numel(); ++i) {
    Tensor p = in, m = in;
    p[i] += static_cast<float>(eps);
    m[i] -= static_cast<float>(eps);
    EXPECT_NEAR(gi[i], (loss(p) - loss(m)) / (2 * eps), 5e-2);
  }

  std::vector<ParamRef> params;
  d.params(params);
  Tensor& w = *params[0].value;
  Tensor& wg = *params[0].grad;
  for (std::size_t i = 0; i < w.numel(); i += 3) {
    const float orig = w[i];
    w[i] = orig + static_cast<float>(eps);
    const double lp = loss(in);
    w[i] = orig - static_cast<float>(eps);
    const double lm = loss(in);
    w[i] = orig;
    EXPECT_NEAR(wg[i], (lp - lm) / (2 * eps), 5e-2);
  }
}

}  // namespace
}  // namespace sei::nn
