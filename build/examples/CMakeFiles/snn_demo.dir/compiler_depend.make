# Empty compiler generated dependencies file for snn_demo.
# This may be replaced when dependencies are built.
