file(REMOVE_RECURSE
  "CMakeFiles/snn_demo.dir/snn_demo.cpp.o"
  "CMakeFiles/snn_demo.dir/snn_demo.cpp.o.d"
  "snn_demo"
  "snn_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snn_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
