# Empty dependencies file for device_variation.
# This may be replaced when dependencies are built.
