file(REMOVE_RECURSE
  "CMakeFiles/device_variation.dir/device_variation.cpp.o"
  "CMakeFiles/device_variation.dir/device_variation.cpp.o.d"
  "device_variation"
  "device_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
