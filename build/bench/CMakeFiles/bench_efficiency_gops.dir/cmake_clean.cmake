file(REMOVE_RECURSE
  "CMakeFiles/bench_efficiency_gops.dir/bench_efficiency_gops.cpp.o"
  "CMakeFiles/bench_efficiency_gops.dir/bench_efficiency_gops.cpp.o.d"
  "bench_efficiency_gops"
  "bench_efficiency_gops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_efficiency_gops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
