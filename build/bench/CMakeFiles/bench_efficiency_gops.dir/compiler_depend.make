# Empty compiler generated dependencies file for bench_efficiency_gops.
# This may be replaced when dependencies are built.
