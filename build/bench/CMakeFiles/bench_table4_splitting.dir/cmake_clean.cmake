file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_splitting.dir/bench_table4_splitting.cpp.o"
  "CMakeFiles/bench_table4_splitting.dir/bench_table4_splitting.cpp.o.d"
  "bench_table4_splitting"
  "bench_table4_splitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
