file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_homogenize.dir/bench_ablation_homogenize.cpp.o"
  "CMakeFiles/bench_ablation_homogenize.dir/bench_ablation_homogenize.cpp.o.d"
  "bench_ablation_homogenize"
  "bench_ablation_homogenize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_homogenize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
