# Empty dependencies file for bench_ablation_homogenize.
# This may be replaced when dependencies are built.
