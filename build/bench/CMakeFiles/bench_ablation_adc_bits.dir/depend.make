# Empty dependencies file for bench_ablation_adc_bits.
# This may be replaced when dependencies are built.
