file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adc_bits.dir/bench_ablation_adc_bits.cpp.o"
  "CMakeFiles/bench_ablation_adc_bits.dir/bench_ablation_adc_bits.cpp.o.d"
  "bench_ablation_adc_bits"
  "bench_ablation_adc_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adc_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
