# Empty dependencies file for bench_table1_distribution.
# This may be replaced when dependencies are built.
