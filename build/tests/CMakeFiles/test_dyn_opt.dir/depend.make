# Empty dependencies file for test_dyn_opt.
# This may be replaced when dependencies are built.
