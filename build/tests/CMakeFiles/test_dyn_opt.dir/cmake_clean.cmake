file(REMOVE_RECURSE
  "CMakeFiles/test_dyn_opt.dir/test_dyn_opt.cpp.o"
  "CMakeFiles/test_dyn_opt.dir/test_dyn_opt.cpp.o.d"
  "test_dyn_opt"
  "test_dyn_opt.pdb"
  "test_dyn_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dyn_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
