file(REMOVE_RECURSE
  "CMakeFiles/test_sei_network.dir/test_sei_network.cpp.o"
  "CMakeFiles/test_sei_network.dir/test_sei_network.cpp.o.d"
  "test_sei_network"
  "test_sei_network.pdb"
  "test_sei_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sei_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
