# Empty dependencies file for test_threshold_search.
# This may be replaced when dependencies are built.
