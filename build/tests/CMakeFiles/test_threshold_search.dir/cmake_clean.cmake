file(REMOVE_RECURSE
  "CMakeFiles/test_threshold_search.dir/test_threshold_search.cpp.o"
  "CMakeFiles/test_threshold_search.dir/test_threshold_search.cpp.o.d"
  "test_threshold_search"
  "test_threshold_search.pdb"
  "test_threshold_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threshold_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
