# Empty compiler generated dependencies file for test_homogenize.
# This may be replaced when dependencies are built.
