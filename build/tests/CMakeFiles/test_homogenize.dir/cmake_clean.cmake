file(REMOVE_RECURSE
  "CMakeFiles/test_homogenize.dir/test_homogenize.cpp.o"
  "CMakeFiles/test_homogenize.dir/test_homogenize.cpp.o.d"
  "test_homogenize"
  "test_homogenize.pdb"
  "test_homogenize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_homogenize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
