file(REMOVE_RECURSE
  "CMakeFiles/test_adc_network.dir/test_adc_network.cpp.o"
  "CMakeFiles/test_adc_network.dir/test_adc_network.cpp.o.d"
  "test_adc_network"
  "test_adc_network.pdb"
  "test_adc_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adc_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
