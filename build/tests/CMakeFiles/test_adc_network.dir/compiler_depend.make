# Empty compiler generated dependencies file for test_adc_network.
# This may be replaced when dependencies are built.
