file(REMOVE_RECURSE
  "CMakeFiles/test_weight_quant.dir/test_weight_quant.cpp.o"
  "CMakeFiles/test_weight_quant.dir/test_weight_quant.cpp.o.d"
  "test_weight_quant"
  "test_weight_quant.pdb"
  "test_weight_quant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weight_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
