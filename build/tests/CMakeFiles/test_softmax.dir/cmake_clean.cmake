file(REMOVE_RECURSE
  "CMakeFiles/test_softmax.dir/test_softmax.cpp.o"
  "CMakeFiles/test_softmax.dir/test_softmax.cpp.o.d"
  "test_softmax"
  "test_softmax.pdb"
  "test_softmax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
