# Empty compiler generated dependencies file for test_qnet.
# This may be replaced when dependencies are built.
