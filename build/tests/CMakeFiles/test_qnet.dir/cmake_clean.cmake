file(REMOVE_RECURSE
  "CMakeFiles/test_qnet.dir/test_qnet.cpp.o"
  "CMakeFiles/test_qnet.dir/test_qnet.cpp.o.d"
  "test_qnet"
  "test_qnet.pdb"
  "test_qnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
