file(REMOVE_RECURSE
  "CMakeFiles/test_network_train.dir/test_network_train.cpp.o"
  "CMakeFiles/test_network_train.dir/test_network_train.cpp.o.d"
  "test_network_train"
  "test_network_train.pdb"
  "test_network_train[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
