# Empty compiler generated dependencies file for test_network_train.
# This may be replaced when dependencies are built.
