# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_gemm[1]_include.cmake")
include("/root/repo/build/tests/test_conv2d[1]_include.cmake")
include("/root/repo/build/tests/test_layers[1]_include.cmake")
include("/root/repo/build/tests/test_softmax[1]_include.cmake")
include("/root/repo/build/tests/test_network_train[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_qnet[1]_include.cmake")
include("/root/repo/build/tests/test_distribution[1]_include.cmake")
include("/root/repo/build/tests/test_threshold_search[1]_include.cmake")
include("/root/repo/build/tests/test_weight_quant[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_crossbar[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_homogenize[1]_include.cmake")
include("/root/repo/build/tests/test_mapping[1]_include.cmake")
include("/root/repo/build/tests/test_sei_network[1]_include.cmake")
include("/root/repo/build/tests/test_adc_network[1]_include.cmake")
include("/root/repo/build/tests/test_snn[1]_include.cmake")
include("/root/repo/build/tests/test_dyn_opt[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_mlp[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
