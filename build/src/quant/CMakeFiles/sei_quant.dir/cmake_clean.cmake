file(REMOVE_RECURSE
  "CMakeFiles/sei_quant.dir/distribution.cpp.o"
  "CMakeFiles/sei_quant.dir/distribution.cpp.o.d"
  "CMakeFiles/sei_quant.dir/qnet.cpp.o"
  "CMakeFiles/sei_quant.dir/qnet.cpp.o.d"
  "CMakeFiles/sei_quant.dir/threshold_search.cpp.o"
  "CMakeFiles/sei_quant.dir/threshold_search.cpp.o.d"
  "CMakeFiles/sei_quant.dir/weight_quant.cpp.o"
  "CMakeFiles/sei_quant.dir/weight_quant.cpp.o.d"
  "libsei_quant.a"
  "libsei_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sei_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
