
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/distribution.cpp" "src/quant/CMakeFiles/sei_quant.dir/distribution.cpp.o" "gcc" "src/quant/CMakeFiles/sei_quant.dir/distribution.cpp.o.d"
  "/root/repo/src/quant/qnet.cpp" "src/quant/CMakeFiles/sei_quant.dir/qnet.cpp.o" "gcc" "src/quant/CMakeFiles/sei_quant.dir/qnet.cpp.o.d"
  "/root/repo/src/quant/threshold_search.cpp" "src/quant/CMakeFiles/sei_quant.dir/threshold_search.cpp.o" "gcc" "src/quant/CMakeFiles/sei_quant.dir/threshold_search.cpp.o.d"
  "/root/repo/src/quant/weight_quant.cpp" "src/quant/CMakeFiles/sei_quant.dir/weight_quant.cpp.o" "gcc" "src/quant/CMakeFiles/sei_quant.dir/weight_quant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sei_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sei_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sei_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
