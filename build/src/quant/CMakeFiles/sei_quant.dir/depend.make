# Empty dependencies file for sei_quant.
# This may be replaced when dependencies are built.
