file(REMOVE_RECURSE
  "libsei_quant.a"
)
