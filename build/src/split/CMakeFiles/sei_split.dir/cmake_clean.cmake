file(REMOVE_RECURSE
  "CMakeFiles/sei_split.dir/homogenize.cpp.o"
  "CMakeFiles/sei_split.dir/homogenize.cpp.o.d"
  "CMakeFiles/sei_split.dir/partition.cpp.o"
  "CMakeFiles/sei_split.dir/partition.cpp.o.d"
  "libsei_split.a"
  "libsei_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sei_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
