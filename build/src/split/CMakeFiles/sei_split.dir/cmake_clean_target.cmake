file(REMOVE_RECURSE
  "libsei_split.a"
)
