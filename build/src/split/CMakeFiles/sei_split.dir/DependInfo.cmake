
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/split/homogenize.cpp" "src/split/CMakeFiles/sei_split.dir/homogenize.cpp.o" "gcc" "src/split/CMakeFiles/sei_split.dir/homogenize.cpp.o.d"
  "/root/repo/src/split/partition.cpp" "src/split/CMakeFiles/sei_split.dir/partition.cpp.o" "gcc" "src/split/CMakeFiles/sei_split.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sei_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sei_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
