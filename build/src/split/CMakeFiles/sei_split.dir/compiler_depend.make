# Empty compiler generated dependencies file for sei_split.
# This may be replaced when dependencies are built.
