# Empty dependencies file for sei_core.
# This may be replaced when dependencies are built.
