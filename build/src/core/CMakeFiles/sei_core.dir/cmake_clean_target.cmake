file(REMOVE_RECURSE
  "libsei_core.a"
)
