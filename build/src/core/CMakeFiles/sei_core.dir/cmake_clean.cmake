file(REMOVE_RECURSE
  "CMakeFiles/sei_core.dir/adc_network.cpp.o"
  "CMakeFiles/sei_core.dir/adc_network.cpp.o.d"
  "CMakeFiles/sei_core.dir/dyn_opt.cpp.o"
  "CMakeFiles/sei_core.dir/dyn_opt.cpp.o.d"
  "CMakeFiles/sei_core.dir/mapping.cpp.o"
  "CMakeFiles/sei_core.dir/mapping.cpp.o.d"
  "CMakeFiles/sei_core.dir/sei_network.cpp.o"
  "CMakeFiles/sei_core.dir/sei_network.cpp.o.d"
  "libsei_core.a"
  "libsei_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sei_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
