
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adc_network.cpp" "src/core/CMakeFiles/sei_core.dir/adc_network.cpp.o" "gcc" "src/core/CMakeFiles/sei_core.dir/adc_network.cpp.o.d"
  "/root/repo/src/core/dyn_opt.cpp" "src/core/CMakeFiles/sei_core.dir/dyn_opt.cpp.o" "gcc" "src/core/CMakeFiles/sei_core.dir/dyn_opt.cpp.o.d"
  "/root/repo/src/core/mapping.cpp" "src/core/CMakeFiles/sei_core.dir/mapping.cpp.o" "gcc" "src/core/CMakeFiles/sei_core.dir/mapping.cpp.o.d"
  "/root/repo/src/core/sei_network.cpp" "src/core/CMakeFiles/sei_core.dir/sei_network.cpp.o" "gcc" "src/core/CMakeFiles/sei_core.dir/sei_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sei_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sei_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sei_data.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/sei_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/rram/CMakeFiles/sei_rram.dir/DependInfo.cmake"
  "/root/repo/build/src/split/CMakeFiles/sei_split.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
