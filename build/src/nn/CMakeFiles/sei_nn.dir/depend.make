# Empty dependencies file for sei_nn.
# This may be replaced when dependencies are built.
