
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/sei_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/sei_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/sei_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/sei_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/gemm.cpp" "src/nn/CMakeFiles/sei_nn.dir/gemm.cpp.o" "gcc" "src/nn/CMakeFiles/sei_nn.dir/gemm.cpp.o.d"
  "/root/repo/src/nn/maxpool.cpp" "src/nn/CMakeFiles/sei_nn.dir/maxpool.cpp.o" "gcc" "src/nn/CMakeFiles/sei_nn.dir/maxpool.cpp.o.d"
  "/root/repo/src/nn/model_io.cpp" "src/nn/CMakeFiles/sei_nn.dir/model_io.cpp.o" "gcc" "src/nn/CMakeFiles/sei_nn.dir/model_io.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/sei_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/sei_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/relu.cpp" "src/nn/CMakeFiles/sei_nn.dir/relu.cpp.o" "gcc" "src/nn/CMakeFiles/sei_nn.dir/relu.cpp.o.d"
  "/root/repo/src/nn/softmax.cpp" "src/nn/CMakeFiles/sei_nn.dir/softmax.cpp.o" "gcc" "src/nn/CMakeFiles/sei_nn.dir/softmax.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/sei_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/sei_nn.dir/tensor.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/sei_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/sei_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sei_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
