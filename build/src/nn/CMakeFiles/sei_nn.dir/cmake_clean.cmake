file(REMOVE_RECURSE
  "CMakeFiles/sei_nn.dir/conv2d.cpp.o"
  "CMakeFiles/sei_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/sei_nn.dir/dense.cpp.o"
  "CMakeFiles/sei_nn.dir/dense.cpp.o.d"
  "CMakeFiles/sei_nn.dir/gemm.cpp.o"
  "CMakeFiles/sei_nn.dir/gemm.cpp.o.d"
  "CMakeFiles/sei_nn.dir/maxpool.cpp.o"
  "CMakeFiles/sei_nn.dir/maxpool.cpp.o.d"
  "CMakeFiles/sei_nn.dir/model_io.cpp.o"
  "CMakeFiles/sei_nn.dir/model_io.cpp.o.d"
  "CMakeFiles/sei_nn.dir/network.cpp.o"
  "CMakeFiles/sei_nn.dir/network.cpp.o.d"
  "CMakeFiles/sei_nn.dir/relu.cpp.o"
  "CMakeFiles/sei_nn.dir/relu.cpp.o.d"
  "CMakeFiles/sei_nn.dir/softmax.cpp.o"
  "CMakeFiles/sei_nn.dir/softmax.cpp.o.d"
  "CMakeFiles/sei_nn.dir/tensor.cpp.o"
  "CMakeFiles/sei_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/sei_nn.dir/trainer.cpp.o"
  "CMakeFiles/sei_nn.dir/trainer.cpp.o.d"
  "libsei_nn.a"
  "libsei_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sei_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
