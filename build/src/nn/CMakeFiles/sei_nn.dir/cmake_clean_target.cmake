file(REMOVE_RECURSE
  "libsei_nn.a"
)
