file(REMOVE_RECURSE
  "CMakeFiles/sei_snn.dir/snn_network.cpp.o"
  "CMakeFiles/sei_snn.dir/snn_network.cpp.o.d"
  "libsei_snn.a"
  "libsei_snn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sei_snn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
