# Empty dependencies file for sei_snn.
# This may be replaced when dependencies are built.
