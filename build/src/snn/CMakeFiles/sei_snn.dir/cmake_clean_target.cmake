file(REMOVE_RECURSE
  "libsei_snn.a"
)
