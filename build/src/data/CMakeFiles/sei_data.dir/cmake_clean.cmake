file(REMOVE_RECURSE
  "CMakeFiles/sei_data.dir/dataset.cpp.o"
  "CMakeFiles/sei_data.dir/dataset.cpp.o.d"
  "CMakeFiles/sei_data.dir/idx_loader.cpp.o"
  "CMakeFiles/sei_data.dir/idx_loader.cpp.o.d"
  "CMakeFiles/sei_data.dir/stroke_font.cpp.o"
  "CMakeFiles/sei_data.dir/stroke_font.cpp.o.d"
  "CMakeFiles/sei_data.dir/synthetic_digits.cpp.o"
  "CMakeFiles/sei_data.dir/synthetic_digits.cpp.o.d"
  "libsei_data.a"
  "libsei_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sei_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
