file(REMOVE_RECURSE
  "libsei_data.a"
)
