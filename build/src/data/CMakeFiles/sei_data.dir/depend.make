# Empty dependencies file for sei_data.
# This may be replaced when dependencies are built.
