
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/sei_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/sei_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/idx_loader.cpp" "src/data/CMakeFiles/sei_data.dir/idx_loader.cpp.o" "gcc" "src/data/CMakeFiles/sei_data.dir/idx_loader.cpp.o.d"
  "/root/repo/src/data/stroke_font.cpp" "src/data/CMakeFiles/sei_data.dir/stroke_font.cpp.o" "gcc" "src/data/CMakeFiles/sei_data.dir/stroke_font.cpp.o.d"
  "/root/repo/src/data/synthetic_digits.cpp" "src/data/CMakeFiles/sei_data.dir/synthetic_digits.cpp.o" "gcc" "src/data/CMakeFiles/sei_data.dir/synthetic_digits.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sei_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sei_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
