file(REMOVE_RECURSE
  "libsei_common.a"
)
