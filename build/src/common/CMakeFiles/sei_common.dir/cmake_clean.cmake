file(REMOVE_RECURSE
  "CMakeFiles/sei_common.dir/cli.cpp.o"
  "CMakeFiles/sei_common.dir/cli.cpp.o.d"
  "CMakeFiles/sei_common.dir/io.cpp.o"
  "CMakeFiles/sei_common.dir/io.cpp.o.d"
  "CMakeFiles/sei_common.dir/table.cpp.o"
  "CMakeFiles/sei_common.dir/table.cpp.o.d"
  "libsei_common.a"
  "libsei_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sei_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
