# Empty compiler generated dependencies file for sei_common.
# This may be replaced when dependencies are built.
