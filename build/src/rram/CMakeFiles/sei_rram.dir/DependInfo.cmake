
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rram/crossbar.cpp" "src/rram/CMakeFiles/sei_rram.dir/crossbar.cpp.o" "gcc" "src/rram/CMakeFiles/sei_rram.dir/crossbar.cpp.o.d"
  "/root/repo/src/rram/device.cpp" "src/rram/CMakeFiles/sei_rram.dir/device.cpp.o" "gcc" "src/rram/CMakeFiles/sei_rram.dir/device.cpp.o.d"
  "/root/repo/src/rram/periphery.cpp" "src/rram/CMakeFiles/sei_rram.dir/periphery.cpp.o" "gcc" "src/rram/CMakeFiles/sei_rram.dir/periphery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sei_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
