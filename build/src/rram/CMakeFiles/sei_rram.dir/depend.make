# Empty dependencies file for sei_rram.
# This may be replaced when dependencies are built.
