file(REMOVE_RECURSE
  "CMakeFiles/sei_rram.dir/crossbar.cpp.o"
  "CMakeFiles/sei_rram.dir/crossbar.cpp.o.d"
  "CMakeFiles/sei_rram.dir/device.cpp.o"
  "CMakeFiles/sei_rram.dir/device.cpp.o.d"
  "CMakeFiles/sei_rram.dir/periphery.cpp.o"
  "CMakeFiles/sei_rram.dir/periphery.cpp.o.d"
  "libsei_rram.a"
  "libsei_rram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sei_rram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
