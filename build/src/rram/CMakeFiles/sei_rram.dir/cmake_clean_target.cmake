file(REMOVE_RECURSE
  "libsei_rram.a"
)
