
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cost_model.cpp" "src/arch/CMakeFiles/sei_arch.dir/cost_model.cpp.o" "gcc" "src/arch/CMakeFiles/sei_arch.dir/cost_model.cpp.o.d"
  "/root/repo/src/arch/latency_model.cpp" "src/arch/CMakeFiles/sei_arch.dir/latency_model.cpp.o" "gcc" "src/arch/CMakeFiles/sei_arch.dir/latency_model.cpp.o.d"
  "/root/repo/src/arch/plan.cpp" "src/arch/CMakeFiles/sei_arch.dir/plan.cpp.o" "gcc" "src/arch/CMakeFiles/sei_arch.dir/plan.cpp.o.d"
  "/root/repo/src/arch/report.cpp" "src/arch/CMakeFiles/sei_arch.dir/report.cpp.o" "gcc" "src/arch/CMakeFiles/sei_arch.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sei_common.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/sei_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/rram/CMakeFiles/sei_rram.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sei_core.dir/DependInfo.cmake"
  "/root/repo/build/src/split/CMakeFiles/sei_split.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sei_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sei_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
