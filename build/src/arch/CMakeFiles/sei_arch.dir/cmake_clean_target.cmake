file(REMOVE_RECURSE
  "libsei_arch.a"
)
