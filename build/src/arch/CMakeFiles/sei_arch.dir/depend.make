# Empty dependencies file for sei_arch.
# This may be replaced when dependencies are built.
