file(REMOVE_RECURSE
  "CMakeFiles/sei_arch.dir/cost_model.cpp.o"
  "CMakeFiles/sei_arch.dir/cost_model.cpp.o.d"
  "CMakeFiles/sei_arch.dir/latency_model.cpp.o"
  "CMakeFiles/sei_arch.dir/latency_model.cpp.o.d"
  "CMakeFiles/sei_arch.dir/plan.cpp.o"
  "CMakeFiles/sei_arch.dir/plan.cpp.o.d"
  "CMakeFiles/sei_arch.dir/report.cpp.o"
  "CMakeFiles/sei_arch.dir/report.cpp.o.d"
  "libsei_arch.a"
  "libsei_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sei_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
