# Empty dependencies file for sei_workloads.
# This may be replaced when dependencies are built.
