file(REMOVE_RECURSE
  "libsei_workloads.a"
)
