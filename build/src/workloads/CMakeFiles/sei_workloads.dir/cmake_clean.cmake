file(REMOVE_RECURSE
  "CMakeFiles/sei_workloads.dir/cache.cpp.o"
  "CMakeFiles/sei_workloads.dir/cache.cpp.o.d"
  "CMakeFiles/sei_workloads.dir/networks.cpp.o"
  "CMakeFiles/sei_workloads.dir/networks.cpp.o.d"
  "CMakeFiles/sei_workloads.dir/pipeline.cpp.o"
  "CMakeFiles/sei_workloads.dir/pipeline.cpp.o.d"
  "libsei_workloads.a"
  "libsei_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sei_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
