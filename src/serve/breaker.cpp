#include "serve/breaker.hpp"

namespace sei::serve {

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kFallback: return "fallback";
    case BreakerState::kShedding: return "shedding";
  }
  return "unknown";
}

}  // namespace sei::serve
