#include "serve/batcher.hpp"

#include <utility>

namespace sei::serve {

namespace {

using Clock = std::chrono::steady_clock;

void reject(FleetRequest& req, ErrorCode code) {
  FleetResponse r;
  r.status = FleetResponseStatus::kRejected;
  r.error = code;
  r.tenant = req.tenant;
  r.latency_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - req.enqueued)
          .count();
  req.promise.set_value(std::move(r));
}

}  // namespace

MicroBatcher::MicroBatcher(AdmissionController& admission, BatcherConfig cfg)
    : admission_(admission), cfg_(cfg) {
  SEI_CHECK_MSG(cfg_.max_batch > 0, "max_batch must be positive");
}

std::future<FleetResponse> MicroBatcher::submit(
    std::unique_ptr<FleetRequest> req) {
  std::future<FleetResponse> fut = req->promise.get_future();
  std::optional<ErrorCode> rejected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_)
      rejected = ErrorCode::kUnavailable;
    else
      rejected = admission_.try_admit(req);
  }
  if (rejected) {
    reject(*req, *rejected);
  } else {
    cv_.notify_one();
  }
  return fut;
}

std::vector<std::unique_ptr<FleetRequest>> MicroBatcher::next_batch() {
  std::vector<std::unique_ptr<FleetRequest>> batch;
  next_batch(batch);
  return batch;
}

void MicroBatcher::next_batch(
    std::vector<std::unique_ptr<FleetRequest>>& batch) {
  batch.clear();
  batch.reserve(static_cast<std::size_t>(cfg_.max_batch));
  std::unique_lock<std::mutex> lock(mu_);
  // Loop: a pop round can come up empty-handed when every pending request
  // had already expired — that is not the drained-shutdown signal.
  while (batch.empty()) {
    cv_.wait(lock, [this] { return admission_.pending() > 0 || closed_; });
    if (admission_.pending() == 0) return;  // closed and drained

    if (cfg_.linger.count() > 0 && !closed_ &&
        admission_.pending() < static_cast<std::size_t>(cfg_.max_batch)) {
      // Linger briefly for stragglers; a full batch or close() cuts it
      // short. The deadline is fixed once against the (possibly injected)
      // clock; the loop re-reads that clock so injected time controls when
      // the window closes without ever being able to wedge the wait.
      const auto full_or_closed = [this] {
        return admission_.pending() >=
                   static_cast<std::size_t>(cfg_.max_batch) ||
               closed_;
      };
      const Clock::time_point deadline = now_locked() + cfg_.linger;
      while (!full_or_closed() && now_locked() < deadline) {
        if (now_) {
          // Injected clock: slice the wait in short real-time steps and
          // re-poll the fake clock — wait_until against a fake timebase
          // would compare it to the real clock and sleep wrongly.
          cv_.wait_for(lock, std::chrono::microseconds(100));
        } else {
          cv_.wait_until(lock, deadline, full_or_closed);
        }
      }
    }

    while (static_cast<int>(batch.size()) < cfg_.max_batch) {
      std::unique_ptr<FleetRequest> req = admission_.pop_next();
      if (!req) break;
      if (req->token.expired()) {
        // Dropped at assembly: the deadline (or a cancel) already fired, so
        // evaluating it would only burn crossbar energy on a dead answer.
        ++stats_.dropped_expired;
        ++admission_.counters(req->tenant).dropped_expired;
        reject(*req, req->token.to_error().code);
        continue;
      }
      batch.push_back(std::move(req));
    }
  }
  ++stats_.batches;
  stats_.coalesced += batch.size();
}

void MicroBatcher::set_time_source(std::function<Clock::time_point()> now) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    now_ = std::move(now);
  }
  // Wake a linger in progress so it re-reads the new timebase promptly.
  cv_.notify_all();
}

void MicroBatcher::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool MicroBatcher::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

BatcherStats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sei::serve
