// Crash-safe checkpointing of a served SeiNetwork.
//
// A checkpoint captures everything the serving runtime mutates after
// construction: the full per-stage evaluation state (effective analog
// weights, sense-amp thresholds and offsets, splitting/remap layout) plus
// the runtime counters that key the per-request RNG streams. Because a
// prediction is a pure function of (layer state, image, sequence) and the
// read-noise streams derive only from HardwareConfig::seed, restoring a
// checkpoint into a network built from the same (qnet, cfg) resumes the
// exact request stream a never-killed process would have produced.
//
// Durability comes from common/io: BinaryWriter::commit fsyncs a temp file,
// renames it into place and fsyncs the directory, so a kill -9 at any
// instant leaves either the previous checkpoint or the new one; the CRC32
// trailer turns the remaining corruption modes into load-time kCorrupt
// errors instead of silently wrong weights.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.hpp"
#include "core/sei_network.hpp"

namespace sei::serve {

/// Runtime counters that must survive a crash for bit-identical resume.
struct RuntimeSnapshot {
  std::uint64_t next_sequence = 0;    // RNG-stream index of the next request
  std::uint64_t requests_served = 0;  // total requests popped off the queue
  std::uint64_t checkpoint_epoch = 0; // incremented per successful save
  std::uint64_t probe_cursor = 0;     // round-robin position in the probe set
};

/// Serializes the network's evaluation state and `snap` to `path`
/// atomically and durably. Returns kIo on filesystem failure.
Status save_checkpoint(const core::SeiNetwork& net,
                       const RuntimeSnapshot& snap, const std::string& path);

/// Retry policy for transient checkpoint IO failures (full disk cleared by
/// a reaper, NFS blips, fd exhaustion). Checkpoints are the fleet's only
/// durability mechanism, so one transient miss should not silently widen
/// the replay gap to two checkpoint intervals.
struct CheckpointRetryPolicy {
  int max_attempts = 3;     // total tries, including the first
  int backoff_ms = 2;       // sleep before retry n is backoff_ms << (n-1)
  // Test hook: when set, consulted *instead of* touching the filesystem for
  // each attempt (1-based); a non-ok status simulates that attempt failing.
  std::function<Status(int attempt)> inject_failure;
};

/// save_checkpoint with bounded retry + exponential backoff. Only kIo is
/// retried — kCorrupt and friends are deterministic and would fail again.
/// Returns the last error when every attempt fails.
Status save_checkpoint_with_retry(const core::SeiNetwork& net,
                                  const RuntimeSnapshot& snap,
                                  const std::string& path,
                                  const CheckpointRetryPolicy& policy);

/// Restores a checkpoint written by save_checkpoint into `net`, which must
/// have been constructed from the same quantized network and hardware
/// config (stage geometry is validated). Returns the runtime counters, or
/// kIo when no checkpoint exists / kCorrupt when the file fails its
/// integrity checks — both mean "cold start", never a crash.
Result<RuntimeSnapshot> load_checkpoint(core::SeiNetwork& net,
                                        const std::string& path);

}  // namespace sei::serve
