// Crash-safe checkpointing of a served SeiNetwork.
//
// A checkpoint captures everything the serving runtime mutates after
// construction: the full per-stage evaluation state (effective analog
// weights, sense-amp thresholds and offsets, splitting/remap layout) plus
// the runtime counters that key the per-request RNG streams. Because a
// prediction is a pure function of (layer state, image, sequence) and the
// read-noise streams derive only from HardwareConfig::seed, restoring a
// checkpoint into a network built from the same (qnet, cfg) resumes the
// exact request stream a never-killed process would have produced.
//
// Durability comes from common/io: BinaryWriter::commit fsyncs a temp file,
// renames it into place and fsyncs the directory, so a kill -9 at any
// instant leaves either the previous checkpoint or the new one; the CRC32
// trailer turns the remaining corruption modes into load-time kCorrupt
// errors instead of silently wrong weights.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"
#include "core/sei_network.hpp"

namespace sei::serve {

/// Runtime counters that must survive a crash for bit-identical resume.
struct RuntimeSnapshot {
  std::uint64_t next_sequence = 0;    // RNG-stream index of the next request
  std::uint64_t requests_served = 0;  // total requests popped off the queue
  std::uint64_t checkpoint_epoch = 0; // incremented per successful save
  std::uint64_t probe_cursor = 0;     // round-robin position in the probe set
};

/// Serializes the network's evaluation state and `snap` to `path`
/// atomically and durably. Returns kIo on filesystem failure.
Status save_checkpoint(const core::SeiNetwork& net,
                       const RuntimeSnapshot& snap, const std::string& path);

/// Restores a checkpoint written by save_checkpoint into `net`, which must
/// have been constructed from the same quantized network and hardware
/// config (stage geometry is validated). Returns the runtime counters, or
/// kIo when no checkpoint exists / kCorrupt when the file fails its
/// integrity checks — both mean "cold start", never a crash.
Result<RuntimeSnapshot> load_checkpoint(core::SeiNetwork& net,
                                        const std::string& path);

}  // namespace sei::serve
