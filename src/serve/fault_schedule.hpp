// Scripted in-service fault injection for soak tests and demos.
//
// Mapping-time fault models (rram::DeviceConfig) exercise a chip that was
// born faulty; a serving runtime also has to survive faults that appear
// while it is live. A FaultSchedule lists events keyed on the served-request
// counter; the runtime fires each one exactly once when the counter passes
// it, mutating the live MappedLayer effective weights deterministically
// (counter-based RNG — the damage depends only on the schedule seed, the
// event index and the stage, never on timing or thread count).
#pragma once

#include <cstdint>
#include <vector>

#include "core/sei_network.hpp"

namespace sei::serve {

struct FaultEvent {
  std::uint64_t at_served = 0;  // fires when requests_served reaches this
  int stage = -1;               // -1 = every stage
  // Fraction of effective cells slammed to a stuck value (half to zero,
  // half to ± the stage's maximum magnitude).
  double stuck_fraction = 0.0;
  // Multiplicative conductance decay applied to every cell (1 = none).
  double drift_factor = 1.0;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;  // fired in at_served order
  std::uint64_t seed = 20260805;
};

/// Applies one event to the live network. `event_index` keys the RNG stream
/// so replaying a schedule reproduces the identical damage.
void apply_fault(core::SeiNetwork& net, const FaultEvent& ev,
                 std::uint64_t seed, int event_index);

/// One scripted fault-storm strike against a specific fleet shard, keyed on
/// the fleet-wide dispatch counter (FaultEvent::at_served is ignored here —
/// the storm clock is the fleet's, not the shard's, so a parked shard can
/// still be hit again while it sheds).
struct StormEvent {
  std::uint64_t at_dispatched = 0;  // fires when total dispatches reach this
  int shard = 0;                    // target shard index
  FaultEvent fault;
  // How long the hostile condition persists, in fleet dispatches. While a
  // strike is active, any repair re-lands the identical damage right after
  // remapping — a re-flash cannot outrun a storm that is still overhead —
  // so the shard parks and traffic fails over to its replicas. Once the
  // fleet dispatch counter passes at_dispatched + duration, the periodic
  // repair re-attempt heals the shard for good. 0 = one-shot strike
  // (repairable immediately).
  std::uint64_t duration = 0;
};

struct StormSchedule {
  std::vector<StormEvent> events;  // fired in at_dispatched order
  std::uint64_t seed = 20260805;
};

}  // namespace sei::serve
