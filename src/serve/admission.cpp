#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/cli.hpp"

namespace sei::serve {

const char* to_string(FleetResponseStatus s) {
  switch (s) {
    case FleetResponseStatus::kOk: return "ok";
    case FleetResponseStatus::kDegraded: return "degraded";
    case FleetResponseStatus::kRejected: return "rejected";
  }
  return "unknown";
}

std::vector<TenantConfig> parse_tenant_specs(const std::string& spec) {
  std::vector<TenantConfig> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    if (!item.empty()) {
      TenantConfig t;
      const std::size_t colon = item.find(':');
      if (colon == std::string::npos) {
        // "A;2" / "A=2" used to slip through as a weight-1 tenant literally
        // named "A;2" — catch the separator typo with a suggestion.
        const std::size_t sep = item.find_first_of(";=");
        if (sep != std::string::npos)
          throw CliError("malformed tenant spec '" + item +
                         "' — did you mean '" + item.substr(0, sep) + ":" +
                         item.substr(sep + 1) + "'?");
        t.name = item;
      } else {
        t.name = item.substr(0, colon);
        const std::string wtext = item.substr(colon + 1);
        char* end = nullptr;
        t.weight = std::strtod(wtext.c_str(), &end);
        if (wtext.empty() || end != wtext.c_str() + wtext.size() ||
            !std::isfinite(t.weight))
          throw CliError("malformed weight '" + wtext + "' for tenant '" +
                         t.name + "' — did you mean '" + t.name +
                         ":1' (name:weight, weight a finite number)?");
      }
      if (t.name.empty())
        throw CliError("tenant spec has an empty name in '" + spec +
                       "' — did you mean to drop a stray ',' or ':'?");
      if (!(t.weight > 0.0))
        throw CliError("tenant '" + t.name + "' has non-positive weight " +
                       std::to_string(t.weight) +
                       " — weights are fair-share ratios and must be > 0 "
                       "(did you mean '" + t.name + ":1'?)");
      for (const TenantConfig& prev : out)
        if (prev.name == t.name)
          throw CliError("duplicate tenant '" + t.name + "' in '" + spec +
                         "' — each tenant may appear once (did you mean to "
                         "merge the weights into one entry?)");
      out.push_back(std::move(t));
    }
    pos = comma + 1;
  }
  return out;
}

AdmissionController::AdmissionController(std::vector<TenantConfig> tenants)
    : tenants_(std::move(tenants)) {
  SEI_CHECK_MSG(!tenants_.empty(), "at least one tenant required");
  for (const TenantConfig& t : tenants_) {
    SEI_CHECK_MSG(t.weight > 0.0, "tenant weight must be positive");
    SEI_CHECK_MSG(t.queue_capacity > 0, "tenant queue capacity must be > 0");
  }
  queues_.resize(tenants_.size());
  passes_.assign(tenants_.size(), 0.0);
  counters_.resize(tenants_.size());
}

std::optional<ErrorCode> AdmissionController::try_admit(
    std::unique_ptr<FleetRequest>& req) {
  const int t = req->tenant;
  SEI_CHECK_MSG(t >= 0 && t < tenant_count(), "unknown tenant " << t);
  const std::size_t ti = static_cast<std::size_t>(t);
  TenantCounters& c = counters_[ti];
  ++c.submitted;
  const TenantConfig& cfg = tenants_[ti];
  if (cfg.energy_quota_j > 0.0 && c.energy_j >= cfg.energy_quota_j) {
    ++c.quota_rejections;
    return ErrorCode::kQuotaExceeded;
  }
  if (static_cast<int>(queues_[ti].size()) >= cfg.queue_capacity) {
    ++c.queue_rejections;
    return ErrorCode::kQueueFull;
  }
  // A tenant returning from idle resumes at the current virtual time, not
  // at its stale pass — otherwise it would monopolize the scheduler for as
  // long as it had been away.
  if (queues_[ti].empty()) passes_[ti] = std::max(passes_[ti], global_pass_);
  queues_[ti].push_back(std::move(req));
  ++pending_;
  ++c.admitted;
  return std::nullopt;
}

std::unique_ptr<FleetRequest> AdmissionController::pop_next() {
  int best = -1;
  for (int t = 0; t < tenant_count(); ++t) {
    const std::size_t ti = static_cast<std::size_t>(t);
    if (queues_[ti].empty()) continue;
    if (best < 0 || passes_[ti] < passes_[static_cast<std::size_t>(best)])
      best = t;
  }
  if (best < 0) return nullptr;
  const std::size_t bi = static_cast<std::size_t>(best);
  std::unique_ptr<FleetRequest> req = std::move(queues_[bi].front());
  queues_[bi].pop_front();
  --pending_;
  global_pass_ = passes_[bi];
  passes_[bi] += 1.0 / tenants_[bi].weight;
  return req;
}

void AdmissionController::charge_energy(int t, double joules) {
  counters_.at(static_cast<std::size_t>(t)).energy_j += joules;
}

void AdmissionController::restore_scheduler(int t, double pass,
                                            double energy_j) {
  passes_.at(static_cast<std::size_t>(t)) = pass;
  counters_.at(static_cast<std::size_t>(t)).energy_j = energy_j;
}

double jain_fairness(const std::vector<double>& allocations) {
  double sum = 0.0, sum_sq = 0.0;
  for (const double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (allocations.empty() || sum_sq <= 0.0) return 1.0;
  return sum * sum /
         (static_cast<double>(allocations.size()) * sum_sq);
}

}  // namespace sei::serve
