#include "serve/fault_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "core/bitpack.hpp"
#include "core/mapping.hpp"

namespace sei::serve {
namespace {

void damage_stage(core::MappedLayer& m, const FaultEvent& ev, Rng& rng) {
  float max_mag = 0.0f;
  for (const float v : m.eff) max_mag = std::max(max_mag, std::fabs(v));
  for (float& v : m.eff) {
    if (ev.drift_factor != 1.0)
      v = static_cast<float>(v * ev.drift_factor);
    if (ev.stuck_fraction > 0.0 && rng.uniform() < ev.stuck_fraction) {
      // Stuck-open cells read as zero; stuck-short cells as full scale.
      v = rng.uniform() < 0.5
              ? 0.0f
              : (rng.uniform() < 0.5 ? max_mag : -max_mag);
    }
  }
}

}  // namespace

void apply_fault(core::SeiNetwork& net, const FaultEvent& ev,
                 std::uint64_t seed, int event_index) {
  for (int s = 0; s < net.stage_count(); ++s) {
    if (ev.stage >= 0 && ev.stage != s) continue;
    Rng rng = Rng::fork(seed, (static_cast<std::uint64_t>(event_index) << 16) |
                                  static_cast<std::uint64_t>(s));
    core::MappedLayer& m = net.layer(s);
    damage_stage(m, ev, rng);
    // The packed AND+popcount decomposition is derived from `eff` at map
    // time; without a rebuild the packed engine would keep evaluating the
    // pre-fault weights and the damage would be invisible to serving.
    m.packed = core::build_packed_stage(m.eff, m.geom.rows, m.geom.cols,
                                        m.row_to_block, m.block_count,
                                        net.config().input_bits);
  }
}

}  // namespace sei::serve
