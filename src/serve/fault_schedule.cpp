#include "serve/fault_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "core/bitpack.hpp"
#include "core/mapping.hpp"

namespace sei::serve {
namespace {

void damage_stage(core::MappedLayer& m, const FaultEvent& ev, Rng& rng) {
  float max_mag = 0.0f;
  for (const float v : m.eff) max_mag = std::max(max_mag, std::fabs(v));
  for (float& v : m.eff) {
    if (ev.drift_factor != 1.0)
      v = static_cast<float>(v * ev.drift_factor);
    if (ev.stuck_fraction > 0.0 && rng.uniform() < ev.stuck_fraction) {
      // Stuck-open cells read as zero; stuck-short cells as full scale.
      v = rng.uniform() < 0.5
              ? 0.0f
              : (rng.uniform() < 0.5 ? max_mag : -max_mag);
    }
  }
}

}  // namespace

void apply_fault(core::SeiNetwork& net, const FaultEvent& ev,
                 std::uint64_t seed, int event_index) {
  for (int s = 0; s < net.stage_count(); ++s) {
    if (ev.stage >= 0 && ev.stage != s) continue;
    Rng rng = Rng::fork(seed, (static_cast<std::uint64_t>(event_index) << 16) |
                                  static_cast<std::uint64_t>(s));
    core::MappedLayer& m = net.layer(s);
    damage_stage(m, ev, rng);
    // The packed AND+popcount decomposition is derived from `eff` at map
    // time; without a rebuild the packed engine would keep evaluating the
    // pre-fault weights and the damage would be invisible to serving.
    net.rebuild_packed(s);
  }
  // Damage can flip a stage's engine (non-integral weights forfeit the
  // packed path): recompile the plan so dispatch and scratch bounds track
  // the post-fault network, and bound contexts re-bind on next prepare.
  net.rebuild_plan();
}

}  // namespace sei::serve
