#include "serve/fleet.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "arch/live_energy.hpp"
#include "common/io.hpp"
#include "core/mapping.hpp"
#include "exec/thread_pool.hpp"
#include "telemetry/alloc.hpp"
#include "telemetry/span.hpp"

namespace sei::serve {
namespace {

using Clock = std::chrono::steady_clock;

// Maintenance evaluations live in their own RNG index spaces, far away from
// request sequence numbers (same layout as runtime.cpp) — probes and
// recovery measurements can never collide with the request stream's draws.
constexpr long long kProbeIndexBase = 1LL << 40;
constexpr long long kMeasureIndexBase = 1LL << 41;

// Segment-flush chunking: finer than kEvalGrain because a micro-batch tops
// out at max_batch (~32) items and still wants to spread over the pool.
// Chunk boundaries depend only on (n, grain) so any thread count produces
// the same per-item results.
constexpr int kBatchGrain = 4;

constexpr std::uint64_t kFleetMagic = 0x315446454c464553ULL;  // "SEFLET1"+pad
// v2: shard checkpoints moved to two epoch-parity slot files; the manifest's
// per-shard checkpoint_epoch selects the slot. A v1 manifest (single in-place
// shard file) cold-starts via the version check below.
constexpr std::uint32_t kFleetVersion = 2;

/// Slot file for a shard checkpoint at `epoch`. Two slots alternate by epoch
/// parity, so the set an in-progress commit writes never aliases the set the
/// current manifest points at — the crash-point matrix depends on this.
std::string shard_slot_path(const std::string& base, std::uint64_t epoch) {
  return base + (epoch % 2 == 0 ? ".s0.ckpt" : ".s1.ckpt");
}

// Dispatched-request count before the zero-alloc contract is measured
// (context pool fills, stat vectors reach steady capacity).
constexpr std::uint64_t kAllocWarmupDispatches = 64;

// Spare capacity kept on per-tenant latency logs and the failover log so
// steady-state push_backs never reallocate mid-batch.
constexpr std::size_t kLogHeadroom = 1024;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

FleetRuntime::FleetRuntime(std::vector<core::SeiNetwork*> shards,
                           const quant::QNetwork& qnet,
                           const data::Dataset& probes,
                           const data::Dataset& calib, FleetConfig cfg,
                           const core::AdcNetwork* fallback)
    : qnet_(qnet),
      calib_(calib),
      cfg_(std::move(cfg)),
      fallback_(fallback),
      sei_meter_(arch::make_energy_meter(qnet, shards.at(0)->config(),
                                         core::StructureKind::kSei)),
      adc_meter_(arch::make_energy_meter(qnet, shards.at(0)->config(),
                                         core::StructureKind::kBinInputAdc)),
      admission_(cfg_.tenants),
      batcher_(admission_, cfg_.batcher) {
  SEI_CHECK_MSG(!shards.empty(), "at least one shard required");
  SEI_CHECK_MSG(cfg_.checkpoint_every == 0 || !cfg_.checkpoint_dir.empty(),
                "checkpoint_every requires checkpoint_dir");
  shards_.reserve(shards.size());
  for (std::size_t k = 0; k < shards.size(); ++k) {
    core::SeiNetwork* net = shards[k];
    SEI_CHECK_MSG(net != nullptr, "shard " << k << " is null");
    SEI_CHECK_MSG(net->stage_count() == shards[0]->stage_count(),
                  "shard " << k << " stage geometry differs from shard 0");
    Shard sh{net, Sentinel(probes, cfg_.sentinel), CircuitBreaker(cfg_.breaker),
             RuntimeSnapshot{}, 0, 0, 0, -1, 0, {}, {}};
    if (!cfg_.checkpoint_dir.empty())
      sh.ckpt_base = cfg_.checkpoint_dir + "/shard" + std::to_string(k);
    shards_.push_back(std::move(sh));
  }

  const int nt = admission_.tenant_count();
  tenant_latencies_.resize(static_cast<std::size_t>(nt));
  tenant_energy_.resize(static_cast<std::size_t>(nt));
  billed_local_j_.assign(static_cast<std::size_t>(nt), 0.0);
  manifest_passes_.assign(static_cast<std::size_t>(nt), 0.0);

  auto& reg = telemetry::MetricsRegistry::global();
  tenant_metrics_.resize(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    const std::string& name = cfg_.tenants[static_cast<std::size_t>(t)].name;
    TenantMetrics& tm = tenant_metrics_[static_cast<std::size_t>(t)];
    tm.ok = &reg.counter("fleet_requests_total{tenant=\"" + name +
                         "\",status=\"ok\"}");
    tm.degraded = &reg.counter("fleet_requests_total{tenant=\"" + name +
                               "\",status=\"degraded\"}");
    tm.rejected = &reg.counter("fleet_requests_total{tenant=\"" + name +
                               "\",status=\"rejected\"}");
    tm.latency = &reg.histogram(
        "fleet_request_latency_ms{tenant=\"" + name + "\"}",
        telemetry::latency_ms_buckets());
  }
  shard_metrics_.resize(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const std::string label = "{shard=\"" + std::to_string(k) + "\",to=\"";
    ShardMetrics& sm = shard_metrics_[k];
    sm.open = &reg.counter("fleet_shard_transitions_total" + label + "open\"}");
    sm.closed =
        &reg.counter("fleet_shard_transitions_total" + label + "closed\"}");
    sm.fallback =
        &reg.counter("fleet_shard_transitions_total" + label + "fallback\"}");
    sm.shedding =
        &reg.counter("fleet_shard_transitions_total" + label + "shedding\"}");
  }
  failovers_ctr_ = &reg.counter("fleet_failovers_total");
  batches_ctr_ = &reg.counter("fleet_batches_total");
  probes_ctr_ = &reg.counter("fleet_probes_total");
  checkpoints_ctr_ = &reg.counter("fleet_checkpoints_total");
}

FleetRuntime::~FleetRuntime() { stop(); }

std::string FleetRuntime::manifest_path() const {
  return cfg_.checkpoint_dir + "/fleet.manifest";
}

void FleetRuntime::set_storm(StormSchedule storm) {
  SEI_CHECK_MSG(!started_, "set_storm must be called before start()");
  storm_ = std::move(storm);
  std::sort(storm_.events.begin(), storm_.events.end(),
            [](const StormEvent& a, const StormEvent& b) {
              return a.at_dispatched < b.at_dispatched;
            });
  for (const StormEvent& ev : storm_.events)
    SEI_CHECK_MSG(ev.shard >= 0 && ev.shard < shard_count(),
                  "storm event targets unknown shard " << ev.shard);
  storm_cursor_ = 0;
}

void FleetRuntime::start() {
  SEI_CHECK_MSG(!started_ && !stopped_,
                "a FleetRuntime runs one start()/stop() cycle");
  started_ = true;
  if (!cfg_.checkpoint_dir.empty()) {
    ensure_directory(cfg_.checkpoint_dir);
    resumed_ = try_resume();
  }
  if (resumed_) {
    // The manifest's dispatch counter tells us which storm strikes already
    // landed (strictly earlier ones — an event at exactly this counter has
    // not fired yet; it fires before the next dispatch).
    while (storm_cursor_ < storm_.events.size() &&
           storm_.events[storm_cursor_].at_dispatched < total_dispatched_)
      ++storm_cursor_;
  } else {
    // Cold start: per-shard baselines (measure_serial 0 of each shard).
    for (Shard& sh : shards_)
      sh.sentinel.set_baseline_pct(measure_probe_accuracy(sh));
  }
  running_.store(true);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

void FleetRuntime::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  batcher_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
  running_.store(false);
  std::lock_guard<std::mutex> fl(fleet_mu_);
  if (!cfg_.checkpoint_dir.empty()) write_checkpoints();
  publish_energy_once();
}

void FleetRuntime::publish_energy_once() {
  if (energy_published_) return;
  energy_published_ = true;
  auto& reg = telemetry::MetricsRegistry::global();
  for (int t = 0; t < tenant_count(); ++t)
    telemetry::publish_energy(
        reg, "tenant_" + cfg_.tenants[static_cast<std::size_t>(t)].name,
        tenant_energy_[static_cast<std::size_t>(t)]);
  telemetry::publish_energy(reg, "fleet_probe", energy_.probe);
}

std::future<FleetResponse> FleetRuntime::submit(int tenant,
                                                std::span<const float> image) {
  return submit(tenant, image, cfg_.default_deadline);
}

std::future<FleetResponse> FleetRuntime::submit(
    int tenant, std::span<const float> image,
    std::chrono::milliseconds deadline) {
  auto req = std::make_unique<FleetRequest>();
  req->tenant = tenant;
  req->image.assign(image.begin(), image.end());
  req->enqueued = Clock::now();
  if (deadline.count() > 0) {
    req->deadline = req->enqueued + deadline;
    req->token.set_deadline(req->deadline);
  }
  return batcher_.submit(std::move(req));
}

void FleetRuntime::dispatcher_loop() {
  // One batch buffer for the life of the dispatcher: next_batch fills it in
  // place and process_batch takes it by reference, so steady-state dispatch
  // reuses the same capacity instead of allocating a vector per batch.
  std::vector<std::unique_ptr<FleetRequest>> batch;
  while (true) {
    batcher_.next_batch(batch);
    if (batch.empty()) return;  // closed and fully drained
    batches_ctr_->add();
    process_batch(batch);
  }
}

std::unique_ptr<core::EvalContext> FleetRuntime::acquire_context() {
  {
    std::lock_guard<std::mutex> cl(ctx_mu_);
    if (!ctx_pool_.empty()) {
      std::unique_ptr<core::EvalContext> ctx = std::move(ctx_pool_.back());
      ctx_pool_.pop_back();
      return ctx;
    }
  }
  // Pool dry: build a context bound to the union of every path's scratch
  // bounds, so it serves any shard AND the ADC fallback without ever
  // re-binding (binding is capacity-based — see EvalContext::covers).
  auto ctx = std::make_unique<core::EvalContext>();
  core::ScratchPlan merged;
  for (const Shard& sh : shards_) merged.merge(sh.net->plan().scratch);
  if (fallback_ != nullptr) merged.merge(fallback_->scratch_plan());
  ctx->bind(merged);
  return ctx;
}

void FleetRuntime::release_context(std::unique_ptr<core::EvalContext> ctx) {
  std::lock_guard<std::mutex> cl(ctx_mu_);
  ctx_pool_.push_back(std::move(ctx));
}

void FleetRuntime::record_failover(int tenant, int home, int to) {
  failovers_.push_back({total_dispatched_, tenant, home, to});
  failovers_ctr_->add();
}

void FleetRuntime::process_batch(
    std::vector<std::unique_ptr<FleetRequest>>& batch) {
  telemetry::Span span("fleet.batch");
  std::lock_guard<std::mutex> fl(fleet_mu_);
  const int nshards = shard_count();
  // Persistent segment buffer (capacity survives across batches) plus
  // headroom top-ups for the logs the hot path appends to — growth happens
  // here, never inside the measured evaluation.
  std::vector<Pending>& seg = seg_;
  seg.clear();
  seg.reserve(batch.size());
  if (failovers_.capacity() - failovers_.size() < kLogHeadroom)
    failovers_.reserve(failovers_.size() + 4 * kLogHeadroom);
  for (std::vector<double>& lat : tenant_latencies_)
    if (lat.capacity() - lat.size() < kLogHeadroom)
      lat.reserve(lat.size() + 4 * kLogHeadroom);

  for (std::unique_ptr<FleetRequest>& reqp : batch) {
    // 1. Storm strikes that came due land before the next dispatch. The
    // segment must flush first: pending evaluations were assigned against
    // the pre-strike weights.
    while (storm_cursor_ < storm_.events.size() &&
           storm_.events[storm_cursor_].at_dispatched <= total_dispatched_) {
      flush(seg);
      const StormEvent& ev = storm_.events[storm_cursor_];
      Shard& hit = shards_[static_cast<std::size_t>(ev.shard)];
      apply_fault(*hit.net, ev.fault, storm_.seed,
                  static_cast<int>(storm_cursor_));
      if (ev.duration > 0) {
        hit.active_storm = static_cast<std::int64_t>(storm_cursor_);
        hit.storm_until = ev.at_dispatched + ev.duration;
      }
      ++storm_cursor_;
    }

    // 2. Route: home replica by ticket, ring failover to the next closed
    // shard, then the shared ADC fallback, then shed.
    const std::uint64_t ticket = next_ticket_++;
    const int home = static_cast<int>(ticket % static_cast<std::uint64_t>(nshards));
    int target = -1;
    for (int k = 0; k < nshards; ++k) {
      const int cand = (home + k) % nshards;
      if (shards_[static_cast<std::size_t>(cand)].breaker.state() ==
          BreakerState::kClosed) {
        target = cand;
        break;
      }
    }

    Pending p;
    p.req = std::move(reqp);
    p.ticket = ticket;
    const int tenant = p.req->tenant;

    // Dispatch-time mirror of the stride scheduler (see fleet.hpp).
    const std::size_t ti = static_cast<std::size_t>(tenant);
    manifest_gpass_ = manifest_passes_[ti];
    manifest_passes_[ti] += 1.0 / cfg_.tenants[ti].weight;

    ++total_dispatched_;
    if (target >= 0) {
      if (target != home) record_failover(tenant, home, target);
      Shard& sh = shards_[static_cast<std::size_t>(target)];
      p.shard = target;
      p.sequence = sh.snap.next_sequence++;
      ++sh.snap.requests_served;
      seg.push_back(std::move(p));
    } else if (fallback_ != nullptr) {
      record_failover(tenant, home, kFallbackPath);
      p.shard = kFallbackPath;
      ++fallback_served_;
      seg.push_back(std::move(p));
    } else {
      record_failover(tenant, home, kShedPath);
      ++shed_;
      batcher_.with_admission([&](AdmissionController& adm) {
        TenantCounters& c = adm.counters(tenant);
        ++c.served;
        ++c.rejected;
      });
      FleetResponse r;
      r.status = FleetResponseStatus::kRejected;
      r.error = ErrorCode::kShedding;
      r.shard = kShedPath;
      complete(p, std::move(r));
    }

    // 3. Sentinel probe on the serving shard at its own cadence.
    if (target >= 0) {
      Shard& sh = shards_[static_cast<std::size_t>(target)];
      if (sh.breaker.state() == BreakerState::kClosed &&
          sh.snap.requests_served - sh.last_probe_served >=
              static_cast<std::uint64_t>(sh.sentinel.config().probe_every)) {
        sh.last_probe_served = sh.snap.requests_served;
        run_probe(target, seg);
      }
    }

    // 4. Parked shards periodically re-attempt tier-1 repair, clocked on
    // the fleet dispatch counter (their own served counter is frozen).
    for (int k = 0; k < nshards; ++k) {
      Shard& sh = shards_[static_cast<std::size_t>(k)];
      const BreakerState st = sh.breaker.state();
      if ((st == BreakerState::kFallback || st == BreakerState::kShedding) &&
          total_dispatched_ - sh.last_reattempt_dispatched >=
              static_cast<std::uint64_t>(cfg_.breaker.reattempt_interval)) {
        sh.last_reattempt_dispatched = total_dispatched_;
        flush(seg);  // repair mutates the shard's weights
        try_reopen(k);
      }
    }

    // 5. Durable checkpoint set. Flush first so every dispatched request's
    // energy bill is inside the manifest — a resumed run re-dispatches
    // nothing before this counter, so nothing may be half-billed.
    if (cfg_.checkpoint_every > 0 &&
        total_dispatched_ - last_checkpoint_dispatched_ >=
            static_cast<std::uint64_t>(cfg_.checkpoint_every)) {
      last_checkpoint_dispatched_ = total_dispatched_;
      flush(seg);
      write_checkpoints();
    }
  }
  flush(seg);
}

void FleetRuntime::flush(std::vector<Pending>& seg) {
  if (seg.empty()) return;
  const int n = static_cast<int>(seg.size());

  std::vector<Outcome>& out = out_;
  out.assign(static_cast<std::size_t>(n), Outcome{});

  // Sparsity-enabled shards produce per-image varying bills (the
  // activation-proportional row charge, docs/sparsity.md), so their items
  // are metered live into a per-item accumulator during evaluation; dense
  // shards and the ADC fallback keep the flat bulk charge below.
  bool any_sparse = false;
  for (const Shard& sh : shards_)
    if (sh.net->sparsity_enabled()) {
      any_sparse = true;
      break;
    }
  std::vector<telemetry::EnergyAccum>& item_e = item_energy_;
  if (any_sparse)
    item_e.assign(static_cast<std::size_t>(n), telemetry::EnergyAccum{});

  // One deterministic parallel evaluation over the segment: pool-checked-out
  // plan-bound contexts, per-item counter-based RNG streams, no metering on
  // the hot path unless the shard runs sparse (dense energy is bulk-charged
  // below at the price-list rate). Post-warmup chunks run under the
  // allocation guard — the zero-alloc contract's measurement
  // (docs/plans.md §4).
  const bool measure = telemetry::alloc_counting_available() &&
                       total_dispatched_ > kAllocWarmupDispatches;
  exec::parallel_for_chunks(n, kBatchGrain, [&](int lo, int hi) {
    std::unique_ptr<core::EvalContext> ctx = acquire_context();
    const auto eval_items = [&](core::EvalContext& c) {
      for (int i = lo; i < hi; ++i) {
        Pending& p = seg[static_cast<std::size_t>(i)];
        c.cancel = &p.req->token;
        const bool meter_item =
            p.shard >= 0 &&
            shards_[static_cast<std::size_t>(p.shard)].net->sparsity_enabled();
        if (meter_item) {
          c.meter = &sei_meter_;
          c.energy = &item_e[static_cast<std::size_t>(i)];
        }
        Result<int> res =
            p.shard >= 0
                ? shards_[static_cast<std::size_t>(p.shard)].net->try_predict(
                      p.req->image, c, static_cast<long long>(p.sequence))
                : fallback_->try_predict(p.req->image, c);
        c.cancel = nullptr;
        c.meter = nullptr;
        c.energy = nullptr;
        Outcome& o = out[static_cast<std::size_t>(i)];
        if (res.ok()) {
          o.ok = true;
          o.label = res.value();
        } else {
          o.err = res.code();
        }
      }
    };
    if (measure) {
      std::uint64_t allocs;
      {
        telemetry::AllocGuard guard;
        eval_items(*ctx);
        allocs = guard.count();
      }
      hot_allocs_.fetch_add(allocs, std::memory_order_relaxed);
      alloc_measured_.fetch_add(static_cast<std::uint64_t>(hi - lo),
                                std::memory_order_relaxed);
    } else {
      eval_items(*ctx);
    }
    release_context(std::move(ctx));
  });

  // Energy: each completed evaluation is billed once. Dense-shard and
  // ADC-fallback answers cost the flat per-picture price (bulk-charged per
  // tenant); sparse-shard answers carry their live-metered accumulator,
  // merged in segment order so tenant bills are deterministic at any
  // thread count. Abandoned mid-eval work (deadline/cancel) is not billed
  // — the accounting is per delivered answer, and billing partial stage
  // walks would make tenant bills timing-dependent; a cancelled item's
  // partial accumulator is simply dropped.
  const int nt = tenant_count();
  std::vector<std::uint64_t>& sei_n = sei_n_;
  std::vector<std::uint64_t>& adc_n = adc_n_;
  sei_n.assign(static_cast<std::size_t>(nt), 0);
  adc_n.assign(static_cast<std::size_t>(nt), 0);
  for (int i = 0; i < n; ++i) {
    const Pending& p = seg[static_cast<std::size_t>(i)];
    if (!out[static_cast<std::size_t>(i)].ok) continue;
    const std::size_t ti = static_cast<std::size_t>(p.req->tenant);
    if (p.shard >= 0 &&
        shards_[static_cast<std::size_t>(p.shard)].net->sparsity_enabled()) {
      const telemetry::EnergyAccum& e = item_e[static_cast<std::size_t>(i)];
      tenant_energy_[ti].merge(e);
      energy_.sei.merge(e);
    } else if (p.shard >= 0) {
      ++sei_n[ti];
    } else {
      ++adc_n[ti];
    }
  }
  for (int t = 0; t < nt; ++t) {
    const std::size_t ti = static_cast<std::size_t>(t);
    if (sei_n[ti] > 0) {
      sei_meter_.charge_stages(0, sei_meter_.stage_count(), sei_n[ti],
                               tenant_energy_[ti]);
      tenant_energy_[ti].images += sei_n[ti];
      sei_meter_.charge_stages(0, sei_meter_.stage_count(), sei_n[ti],
                               energy_.sei);
      energy_.sei.images += sei_n[ti];
    }
    if (adc_n[ti] > 0) {
      adc_meter_.charge_stages(0, adc_meter_.stage_count(), adc_n[ti],
                               tenant_energy_[ti]);
      tenant_energy_[ti].images += adc_n[ti];
      adc_meter_.charge_stages(0, adc_meter_.stage_count(), adc_n[ti],
                               energy_.adc);
      energy_.adc.images += adc_n[ti];
    }
  }

  // Admission bookkeeping in one lock hold: quota billing deltas plus
  // per-tenant outcome counters for the whole segment.
  std::vector<std::uint64_t>& ok_n = ok_n_;
  std::vector<std::uint64_t>& degraded_n = degraded_n_;
  std::vector<std::uint64_t>& rejected_n = rejected_n_;
  ok_n.assign(static_cast<std::size_t>(nt), 0);
  degraded_n.assign(static_cast<std::size_t>(nt), 0);
  rejected_n.assign(static_cast<std::size_t>(nt), 0);
  for (int i = 0; i < n; ++i) {
    const Pending& p = seg[static_cast<std::size_t>(i)];
    const Outcome& o = out[static_cast<std::size_t>(i)];
    const std::size_t ti = static_cast<std::size_t>(p.req->tenant);
    if (!o.ok)
      ++rejected_n[ti];
    else if (p.shard >= 0)
      ++ok_n[ti];
    else
      ++degraded_n[ti];
  }
  batcher_.with_admission([&](AdmissionController& adm) {
    for (int t = 0; t < nt; ++t) {
      const std::size_t ti = static_cast<std::size_t>(t);
      TenantCounters& c = adm.counters(t);
      c.served += ok_n[ti] + degraded_n[ti] + rejected_n[ti];
      c.ok += ok_n[ti];
      c.degraded += degraded_n[ti];
      c.rejected += rejected_n[ti];
      const double delta = tenant_energy_[ti].joules() - billed_local_j_[ti];
      if (delta > 0.0) {
        adm.charge_energy(t, delta);
        billed_local_j_[ti] = tenant_energy_[ti].joules();
      }
    }
  });

  // Complete promises in segment (dispatch) order.
  for (int i = 0; i < n; ++i) {
    Pending& p = seg[static_cast<std::size_t>(i)];
    const Outcome& o = out[static_cast<std::size_t>(i)];
    FleetResponse r;
    if (o.ok) {
      r.status = p.shard >= 0 ? FleetResponseStatus::kOk
                              : FleetResponseStatus::kDegraded;
      r.label = o.label;
    } else {
      r.status = FleetResponseStatus::kRejected;
      r.error = o.err;
    }
    r.shard = p.shard;
    r.sequence = p.sequence;
    complete(p, std::move(r));
  }
  seg.clear();
}

void FleetRuntime::complete(Pending& p, FleetResponse r) {
  const int tenant = p.req->tenant;
  r.tenant = tenant;
  r.ticket = p.ticket;
  r.latency_ms = ms_between(p.req->enqueued, Clock::now());
  const std::size_t ti = static_cast<std::size_t>(tenant);
  TenantMetrics& tm = tenant_metrics_[ti];
  tm.latency->observe(r.latency_ms);
  switch (r.status) {
    case FleetResponseStatus::kOk: tm.ok->add(); break;
    case FleetResponseStatus::kDegraded: tm.degraded->add(); break;
    case FleetResponseStatus::kRejected: tm.rejected->add(); break;
  }
  tenant_latencies_[ti].push_back(r.latency_ms);
  p.req->promise.set_value(std::move(r));
}

void FleetRuntime::run_probe(int k, std::vector<Pending>& seg) {
  telemetry::Span span("fleet.probe");
  probes_ctr_->add();
  Shard& sh = shards_[static_cast<std::size_t>(k)];
  const std::uint64_t cursor = sh.snap.probe_cursor++;
  const int probe = static_cast<int>(
      cursor % static_cast<std::uint64_t>(sh.sentinel.probe_count()));
  telemetry::EnergyAccum eacc;
  maint_ctx_.meter = &sei_meter_;
  maint_ctx_.energy = &eacc;
  const int predicted =
      sh.net
          ->try_predict(sh.sentinel.image(probe), maint_ctx_,
                        kProbeIndexBase + static_cast<long long>(cursor))
          .value();  // no token attached: cannot fail
  maint_ctx_.meter = nullptr;
  maint_ctx_.energy = nullptr;
  energy_.probe.merge(eacc);
  sh.sentinel.record(predicted == sh.sentinel.label(probe));
  const double window = sh.sentinel.window_accuracy_pct();
  if (sh.breaker.should_trip(window, sh.sentinel.baseline_pct())) {
    flush(seg);  // the recovery ladder mutates this shard's weights
    run_recovery(k, window);
  }
}

double FleetRuntime::measure_probe_accuracy(Shard& sh) {
  const std::uint64_t serial = sh.measure_serial++;
  const int n = sh.sentinel.probe_count();
  int correct = 0;
  telemetry::EnergyAccum eacc;
  maint_ctx_.meter = &sei_meter_;
  maint_ctx_.energy = &eacc;
  for (int i = 0; i < n; ++i) {
    const long long index =
        kMeasureIndexBase + static_cast<long long>(serial) * n + i;
    if (sh.net->try_predict(sh.sentinel.image(i), maint_ctx_, index).value() ==
        sh.sentinel.label(i))
      ++correct;
  }
  maint_ctx_.meter = nullptr;
  maint_ctx_.energy = nullptr;
  energy_.probe.merge(eacc);
  return 100.0 * correct / static_cast<double>(n);
}

void FleetRuntime::run_recovery(int k, double window_acc) {
  telemetry::Span span("fleet.recovery");
  Shard& sh = shards_[static_cast<std::size_t>(k)];
  ShardMetrics& sm = shard_metrics_[static_cast<std::size_t>(k)];
  const Clock::time_point t0 = Clock::now();
  const std::uint64_t served = sh.snap.requests_served;
  sh.breaker.trip(served, "sentinel window dropped to " +
                              std::to_string(window_acc) + "%");
  sm.open->add();
  RecoveryRecord rec;
  rec.tripped_at_served = served;
  rec.acc_before_pct = window_acc;

  const double baseline = sh.sentinel.baseline_pct();
  bool closed = false;
  double acc = window_acc;

  // Tier 0: re-measure with backoff — transient noise clears itself.
  for (int attempt = 0; attempt < cfg_.breaker.max_retries && !closed;
       ++attempt) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(cfg_.breaker.retry_backoff_ms << attempt));
    acc = measure_probe_accuracy(sh);
    if (sh.breaker.recovered(acc, baseline)) {
      rec.tier_reached = 0;
      sh.breaker.close(served, 0, "re-measure recovered (transient)");
      closed = true;
    }
  }

  // Tier 1: remap through the repair hook + recalibrate thresholds.
  if (!closed) {
    rec.tier_reached = 1;
    const bool repaired = attempt_repair(sh);
    acc = measure_probe_accuracy(sh);
    if (repaired && sh.breaker.recovered(acc, baseline)) {
      sh.breaker.close(served, 1, "repair + recalibration restored accuracy");
      closed = true;
    }
  }

  // Tier 2/3: park the shard; traffic fails over to its replicas (and only
  // past them to the shared ADC path / shedding). try_reopen() keeps
  // re-attempting repair every reattempt_interval fleet dispatches.
  if (!closed) {
    if (fallback_ != nullptr) {
      rec.tier_reached = 2;
      sh.breaker.enter_fallback(served, "parked; traffic fails over");
      sm.fallback->add();
    } else {
      rec.tier_reached = 3;
      sh.breaker.enter_shedding(served, "parked; traffic fails over");
      sm.shedding->add();
    }
    sh.last_reattempt_dispatched = total_dispatched_;
  } else {
    sh.sentinel.reset_window();
    sm.closed->add();
  }

  rec.closed = closed;
  rec.resolved_at_served = served;
  rec.acc_after_pct = acc;
  rec.duration_ms = ms_between(t0, Clock::now());
  sh.recoveries.push_back(rec);
}

bool FleetRuntime::attempt_repair(Shard& sh) {
  telemetry::Span span("fleet.repair");
  // Remapping reprograms every stage from the quantized weights (fresh
  // crossbars, repair hook re-applied), clearing in-service damage the way
  // a field re-flash would.
  for (int s = 0; s < sh.net->stage_count(); ++s)
    sh.net->remap_layer(
        s, core::default_row_order(qnet_.layers[static_cast<std::size_t>(s)],
                                   sh.net->config()));
  // A storm that is still overhead re-lands its damage on the fresh map —
  // repair cannot outrun the environment; only the passage of (dispatch)
  // time can. The identical RNG stream reproduces the identical damage, so
  // a resumed run re-repairs to the same state.
  if (sh.active_storm >= 0) {
    if (total_dispatched_ < sh.storm_until) {
      const StormEvent& ev =
          storm_.events[static_cast<std::size_t>(sh.active_storm)];
      apply_fault(*sh.net, ev.fault, storm_.seed,
                  static_cast<int>(sh.active_storm));
    } else {
      sh.active_storm = -1;
    }
  }
  const Result<reliability::CalibrationReport> cal =
      reliability::try_recalibrate_thresholds(*sh.net, calib_,
                                              cfg_.calibration);
  if (!cal.ok())
    std::fprintf(stderr, "warning: shard recalibration failed: %s\n",
                 cal.error().message.c_str());
  return cal.ok();
}

void FleetRuntime::try_reopen(int k) {
  Shard& sh = shards_[static_cast<std::size_t>(k)];
  const Clock::time_point t0 = Clock::now();
  const bool repaired = attempt_repair(sh);
  const double acc = measure_probe_accuracy(sh);
  if (repaired && sh.breaker.recovered(acc, sh.sentinel.baseline_pct())) {
    sh.sentinel.reset_window();
    sh.breaker.close(sh.snap.requests_served, 1,
                     "periodic repair restored accuracy");
    shard_metrics_[static_cast<std::size_t>(k)].closed->add();
    if (!sh.recoveries.empty() && !sh.recoveries.back().closed) {
      RecoveryRecord& rec = sh.recoveries.back();
      rec.closed = true;
      rec.resolved_at_served = sh.snap.requests_served;
      rec.acc_after_pct = acc;
      rec.duration_ms += ms_between(t0, Clock::now());
    }
  }
}

void FleetRuntime::write_checkpoints() {
  telemetry::Span span("fleet.checkpoint");
  // Shard files first, manifest last: the manifest is the commit point of
  // the set, so a crash mid-sequence leaves the previous manifest pointing
  // at a consistent (older) fleet state. Every attempt targets
  // manifest_epoch_ + 1 — NOT a per-shard increment — so shard files land
  // in the slot the committed manifest does *not* point at, and a retry
  // after a failed or torn commit overwrites only that uncommitted slot.
  // The committed set stays byte-for-byte intact until the new manifest
  // rename lands, whatever offset a crash hits (docs/chaos.md).
  const std::uint64_t target_epoch = manifest_epoch_ + 1;
  for (Shard& sh : shards_) {
    RuntimeSnapshot s = sh.snap;
    s.checkpoint_epoch = target_epoch;
    const Status st = save_checkpoint_with_retry(
        *sh.net, s, shard_slot_path(sh.ckpt_base, target_epoch),
        cfg_.checkpoint_retry);
    if (!st.ok()) {
      std::fprintf(stderr, "warning: %s; fleet checkpoint set skipped\n",
                   st.error().message.c_str());
      return;
    }
  }
  const Status ms = save_manifest(target_epoch);
  if (!ms.ok()) {
    std::fprintf(stderr, "warning: %s\n", ms.error().message.c_str());
    return;
  }
  manifest_epoch_ = target_epoch;
  for (Shard& sh : shards_) sh.snap.checkpoint_epoch = target_epoch;
  checkpoints_ctr_->add();
  ++checkpoints_;
}

Status FleetRuntime::save_manifest(std::uint64_t epoch) {
  // Tenant energy bills from the admission side (base + local billing).
  const int nt = tenant_count();
  std::vector<double> energy_j(static_cast<std::size_t>(nt), 0.0);
  batcher_.with_admission([&](AdmissionController& adm) {
    for (int t = 0; t < nt; ++t)
      energy_j[static_cast<std::size_t>(t)] = adm.counters(t).energy_j;
  });
  try {
    BinaryWriter w(manifest_path());
    w.write_u64(kFleetMagic);
    w.write_u32(kFleetVersion);
    w.write_u64(next_ticket_);
    w.write_u64(total_dispatched_);
    w.write_u32(static_cast<std::uint32_t>(nt));
    for (int t = 0; t < nt; ++t) {
      const std::size_t ti = static_cast<std::size_t>(t);
      w.write_string(cfg_.tenants[ti].name);
      w.write_f64(manifest_passes_[ti]);
      w.write_f64(energy_j[ti]);
    }
    w.write_f64(manifest_gpass_);
    w.write_u32(static_cast<std::uint32_t>(shards_.size()));
    for (const Shard& sh : shards_) {
      w.write_u64(sh.snap.next_sequence);
      w.write_u64(sh.snap.requests_served);
      w.write_u64(sh.snap.probe_cursor);
      // The epoch this commit targets — on load it selects the slot file.
      w.write_u64(epoch);
      w.write_u32(static_cast<std::uint32_t>(sh.breaker.state()));
      w.write_i32(sh.breaker.trips());
      w.write_f64(sh.sentinel.baseline_pct());
      w.write_u64(sh.last_probe_served);
      w.write_u64(sh.last_reattempt_dispatched);
      w.write_u64(sh.measure_serial);
      w.write_u64(static_cast<std::uint64_t>(sh.active_storm + 1));  // 0=none
      w.write_u64(sh.storm_until);
      w.write_u8_vec(sh.sentinel.window_outcomes());
    }
    w.commit();
    return ok_status();
  } catch (const std::exception& e) {
    return Error{ErrorCode::kIo,
                 std::string("fleet manifest save failed: ") + e.what()};
  }
}

bool FleetRuntime::try_resume() {
  const std::string path = manifest_path();
  if (!file_exists(path)) return false;
  const auto cold = [](const std::string& why) {
    std::fprintf(stderr, "warning: %s; starting cold\n", why.c_str());
    return false;
  };
  try {
    BinaryReader r(path);
    r.verify_crc();
    if (r.read_u64() != kFleetMagic)
      return cold("bad fleet manifest magic: " + path);
    if (r.read_u32() != kFleetVersion)
      return cold("unsupported fleet manifest version: " + path);
    const std::uint64_t next_ticket = r.read_u64();
    const std::uint64_t total_dispatched = r.read_u64();
    const int nt = tenant_count();
    if (r.read_u32() != static_cast<std::uint32_t>(nt))
      return cold("fleet manifest tenant count mismatch: " + path);
    std::vector<double> passes(static_cast<std::size_t>(nt));
    std::vector<double> energy_j(static_cast<std::size_t>(nt));
    for (int t = 0; t < nt; ++t) {
      const std::size_t ti = static_cast<std::size_t>(t);
      if (r.read_string() != cfg_.tenants[ti].name)
        return cold("fleet manifest tenant name mismatch: " + path);
      passes[ti] = r.read_f64();
      energy_j[ti] = r.read_f64();
    }
    const double gpass = r.read_f64();
    if (r.read_u32() != static_cast<std::uint32_t>(shards_.size()))
      return cold("fleet manifest shard count mismatch: " + path);
    struct ShardRecord {
      RuntimeSnapshot snap;
      std::uint32_t state = 0;
      std::int32_t trips = 0;
      double baseline_pct = 0.0;
      std::uint64_t last_probe_served = 0;
      std::uint64_t last_reattempt_dispatched = 0;
      std::uint64_t measure_serial = 0;
      std::int64_t active_storm = -1;
      std::uint64_t storm_until = 0;
      std::vector<std::uint8_t> window;
    };
    std::vector<ShardRecord> recs(shards_.size());
    for (ShardRecord& rec : recs) {
      rec.snap.next_sequence = r.read_u64();
      rec.snap.requests_served = r.read_u64();
      rec.snap.probe_cursor = r.read_u64();
      rec.snap.checkpoint_epoch = r.read_u64();
      rec.state = r.read_u32();
      rec.trips = r.read_i32();
      rec.baseline_pct = r.read_f64();
      rec.last_probe_served = r.read_u64();
      rec.last_reattempt_dispatched = r.read_u64();
      rec.measure_serial = r.read_u64();
      rec.active_storm = static_cast<std::int64_t>(r.read_u64()) - 1;
      rec.storm_until = r.read_u64();
      rec.window = r.read_u8_vec();
      if (rec.state > static_cast<std::uint32_t>(BreakerState::kShedding))
        return cold("fleet manifest breaker state out of range: " + path);
      if (rec.active_storm >= 0 &&
          static_cast<std::size_t>(rec.active_storm) >= storm_.events.size())
        return cold("fleet manifest names a storm event not in the schedule: " +
                    path);
    }
    if (r.remaining() != 0)
      return cold("trailing bytes after fleet manifest payload: " + path);
    // One commit writes the whole set at one epoch; diverging records mean
    // a manifest this code never produced.
    for (const ShardRecord& rec : recs)
      if (rec.snap.checkpoint_epoch != recs[0].snap.checkpoint_epoch)
        return cold("fleet manifest shard epochs diverge: " + path);

    // Network weights per shard, from the slot the committed manifest
    // points at. A crash mid-commit may have left the *other* slot torn or
    // one epoch ahead — it is never read. The loaded file must echo the
    // manifest's epoch; anything else is a set this manifest didn't commit.
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      Shard& sh = shards_[k];
      const std::uint64_t epoch = recs[k].snap.checkpoint_epoch;
      const Result<RuntimeSnapshot> res =
          load_checkpoint(*sh.net, shard_slot_path(sh.ckpt_base, epoch));
      if (!res.ok()) return cold(res.error().message);
      if (res.value().checkpoint_epoch != epoch)
        return cold("shard " + std::to_string(k) + " slot file epoch " +
                    std::to_string(res.value().checkpoint_epoch) +
                    " != manifest epoch " + std::to_string(epoch));
    }

    manifest_epoch_ = recs[0].snap.checkpoint_epoch;
    next_ticket_ = next_ticket;
    total_dispatched_ = total_dispatched;
    last_checkpoint_dispatched_ = total_dispatched;
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      Shard& sh = shards_[k];
      const ShardRecord& rec = recs[k];
      // Manifest counters are authoritative: the manifest commits the set,
      // and the slot check above proved the loaded file belongs to it.
      sh.snap = rec.snap;
      sh.breaker.restore(static_cast<BreakerState>(rec.state), rec.trips);
      sh.sentinel.set_baseline_pct(rec.baseline_pct);
      sh.sentinel.restore_window(rec.window);
      sh.last_probe_served = rec.last_probe_served;
      sh.last_reattempt_dispatched = rec.last_reattempt_dispatched;
      sh.measure_serial = rec.measure_serial;
      sh.active_storm = rec.active_storm;
      sh.storm_until = rec.storm_until;
    }
    manifest_passes_ = passes;
    manifest_gpass_ = gpass;
    billed_local_j_.assign(static_cast<std::size_t>(nt), 0.0);
    batcher_.with_admission([&](AdmissionController& adm) {
      for (int t = 0; t < nt; ++t) {
        const std::size_t ti = static_cast<std::size_t>(t);
        adm.restore_scheduler(t, passes[ti], energy_j[ti]);
      }
      adm.restore_global_pass(gpass);
    });
    return true;
  } catch (const std::exception& e) {
    return cold(std::string("fleet manifest load failed: ") + e.what());
  }
}

FleetStats FleetRuntime::stats() const {
  FleetStats fs;
  fs.batcher = batcher_.stats();
  const int nt = tenant_count();
  fs.tenants.resize(static_cast<std::size_t>(nt));
  batcher_.with_admission([&](AdmissionController& adm) {
    for (int t = 0; t < nt; ++t)
      fs.tenants[static_cast<std::size_t>(t)] = adm.counters(t);
  });
  fs.alloc_measured_requests = alloc_measured_.load(std::memory_order_relaxed);
  fs.serve_request_allocs = hot_allocs_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> fl(fleet_mu_);
  fs.tenant_metered_j.reserve(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t)
    fs.tenant_metered_j.push_back(
        tenant_energy_[static_cast<std::size_t>(t)].joules());
  fs.total_dispatched = total_dispatched_;
  fs.fallback_served = fallback_served_;
  fs.shed = shed_;
  fs.failovers = failovers_.size();
  fs.checkpoints = checkpoints_;
  fs.shards.reserve(shards_.size());
  for (const Shard& sh : shards_) {
    ShardStats ss;
    ss.served = sh.snap.requests_served;
    ss.state = sh.breaker.state();
    ss.trips = sh.breaker.trips();
    ss.baseline_pct = sh.sentinel.baseline_pct();
    ss.window_pct = sh.sentinel.window_accuracy_pct();
    fs.shards.push_back(ss);
  }
  return fs;
}

EnergySummary FleetRuntime::energy() const {
  std::lock_guard<std::mutex> fl(fleet_mu_);
  return energy_;
}

std::vector<double> FleetRuntime::tenant_latencies_ms(int t) const {
  std::lock_guard<std::mutex> fl(fleet_mu_);
  return tenant_latencies_.at(static_cast<std::size_t>(t));
}

std::vector<BreakerEvent> FleetRuntime::shard_breaker_events(int k) const {
  std::lock_guard<std::mutex> fl(fleet_mu_);
  return shards_.at(static_cast<std::size_t>(k)).breaker.events();
}

std::vector<RecoveryRecord> FleetRuntime::shard_recoveries(int k) const {
  std::lock_guard<std::mutex> fl(fleet_mu_);
  return shards_.at(static_cast<std::size_t>(k)).recoveries;
}

std::vector<FailoverEvent> FleetRuntime::failovers() const {
  std::lock_guard<std::mutex> fl(fleet_mu_);
  return failovers_;
}

BreakerState FleetRuntime::shard_state(int k) const {
  std::lock_guard<std::mutex> fl(fleet_mu_);
  return shards_.at(static_cast<std::size_t>(k)).breaker.state();
}

}  // namespace sei::serve
