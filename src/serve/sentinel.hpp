// Canary sentinel: live accuracy estimation from interleaved probes.
//
// A serving process cannot see ground-truth labels for real traffic, so
// degradation (drift, stuck cells, a bad remap) would be invisible until a
// user complains. The sentinel holds a small set of known-label probe
// images; the runtime interleaves one probe every `probe_every` served
// requests and records whether the chip classified it correctly. A sliding
// window over the outcomes estimates live accuracy; the circuit breaker
// compares that estimate against the baseline measured at startup.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "data/dataset.hpp"

namespace sei::serve {

struct SentinelConfig {
  int probe_count = 64;   // probes drawn from the head of the labeled set
  int probe_every = 16;   // one probe per this many served requests
  int window = 48;        // sliding window of probe outcomes
  int min_probes = 24;    // outcomes required before the estimate is trusted
};

class Sentinel {
 public:
  /// Copies the first cfg.probe_count images of `labeled` (clamped to its
  /// size) as the probe set.
  Sentinel(const data::Dataset& labeled, const SentinelConfig& cfg);

  int probe_count() const { return static_cast<int>(labels_.size()); }
  std::span<const float> image(int probe) const;
  int label(int probe) const { return labels_.at(static_cast<std::size_t>(probe)); }

  /// Records the outcome of one served probe.
  void record(bool correct);

  /// True once the window holds at least cfg.min_probes outcomes.
  bool ready() const {
    return static_cast<int>(outcomes_.size()) >= cfg_.min_probes;
  }

  /// Accuracy over the current window in percent (-1 before ready()).
  double window_accuracy_pct() const;

  /// Forgets recorded outcomes (after a recovery: stale failures from the
  /// degraded period must not immediately re-trip the breaker).
  void reset_window();

  /// Window contents oldest-first (1 = correct) — checkpointed by the fleet
  /// so a resumed process trips its breakers on the same probe as the
  /// original run would have.
  std::vector<std::uint8_t> window_outcomes() const {
    return std::vector<std::uint8_t>(outcomes_.begin(), outcomes_.end());
  }
  void restore_window(const std::vector<std::uint8_t>& outcomes) {
    reset_window();
    for (const std::uint8_t o : outcomes) record(o != 0);
  }

  void set_baseline_pct(double pct) { baseline_pct_ = pct; }
  double baseline_pct() const { return baseline_pct_; }

  const SentinelConfig& config() const { return cfg_; }

 private:
  SentinelConfig cfg_;
  std::size_t per_image_ = 0;
  std::vector<float> images_;       // probe_count × per_image, row-major
  std::vector<int> labels_;
  std::deque<std::uint8_t> outcomes_;  // sliding window, 1 = correct
  int window_correct_ = 0;
  double baseline_pct_ = 0.0;
};

}  // namespace sei::serve
