// Dynamic micro-batching over the weighted-fair admission queues.
//
// MicroBatcher is the concurrency boundary of the fleet: submitters from
// any thread push requests through submit(), and the single dispatcher
// thread blocks in next_batch() until work arrives, then coalesces up to
// max_batch requests (popped in the AdmissionController's weighted-fair
// order) into one batch for a single parallel_for evaluation. A short
// linger window lets closely-spaced arrivals ride the same batch instead of
// paying one dispatch each.
//
// Deadline-expired requests are dropped here, at batch-assembly time —
// their exec::CancelToken (armed at submit) is polled as each request is
// popped, and an expired one completes immediately with kDeadlineExceeded
// instead of wasting a crossbar evaluation on an answer nobody is waiting
// for. Requests that expire *mid-evaluation* are still caught by the same
// token inside try_predict.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/admission.hpp"

namespace sei::serve {

struct BatcherConfig {
  int max_batch = 32;  // requests coalesced into one parallel_for dispatch
  // After the first request is seen, wait up to this long for more arrivals
  // before dispatching a partial batch. 0 = dispatch immediately.
  std::chrono::microseconds linger{0};
};

/// Outcome counters for drops performed during batch assembly.
struct BatcherStats {
  std::uint64_t batches = 0;
  std::uint64_t coalesced = 0;        // requests dispatched through batches
  std::uint64_t dropped_expired = 0;  // completed kDeadlineExceeded at pop
};

class MicroBatcher {
 public:
  /// All linger arithmetic uses the monotonic clock — wall-clock jumps (NTP
  /// steps, suspend/resume) must never stretch or collapse a latency-critical
  /// wait. serve/ holds this property everywhere: deadlines live on
  /// exec::CancelToken::Clock, which is also steady_clock.
  using Clock = std::chrono::steady_clock;

  MicroBatcher(AdmissionController& admission, BatcherConfig cfg);
  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Thread-safe admission: completes the promise immediately on rejection
  /// (queue full, quota exhausted, batcher closed) and wakes the dispatcher
  /// on success. Returns the future either way.
  std::future<FleetResponse> submit(std::unique_ptr<FleetRequest> req);

  /// Blocks until requests are pending or close() was called, then pops up
  /// to max_batch requests in weighted-fair order, dropping expired ones.
  /// An empty vector means "closed and fully drained" — the dispatcher's
  /// exit condition. Must only be called from one thread.
  std::vector<std::unique_ptr<FleetRequest>> next_batch();

  /// Allocation-free variant: fills `out` (cleared first) instead of
  /// returning a fresh vector, so a dispatcher reusing one buffer pays no
  /// heap traffic per batch once the buffer's capacity has grown to
  /// max_batch. Same contract otherwise.
  void next_batch(std::vector<std::unique_ptr<FleetRequest>>& out);

  /// Stops admitting (kUnavailable) and unblocks next_batch; already-queued
  /// requests still come out of next_batch so a graceful stop drains.
  void close();

  bool closed() const;
  BatcherStats stats() const;

  /// Runs `fn` under the admission lock — the only sanctioned way for the
  /// dispatcher to touch AdmissionController state (energy billing,
  /// counters, scheduler checkpoint/restore) while submitters are live.
  template <typename Fn>
  auto with_admission(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    return fn(admission_);
  }

  /// Deterministic-test / chaos seam: replaces the clock the linger window
  /// is measured against (nullptr restores the real steady_clock). With an
  /// injected source the linger wait polls in short real-time slices and
  /// re-reads the fake clock each round, so a frozen clock keeps the window
  /// open indefinitely and a jumped-forward clock closes it on the next
  /// poll — but next_batch() can never wedge on a clock that never
  /// advances, because close() and a filling batch still cut the wait
  /// short. The source is called under the batcher lock; it must not call
  /// back into the batcher.
  void set_time_source(std::function<Clock::time_point()> now);

 private:
  Clock::time_point now_locked() const {
    return now_ ? now_() : Clock::now();
  }

  AdmissionController& admission_;
  BatcherConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  BatcherStats stats_;
  std::function<Clock::time_point()> now_;  // guarded by mu_
  bool closed_ = false;
};

}  // namespace sei::serve
