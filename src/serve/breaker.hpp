// Circuit breaker over the canary sentinel.
//
// State machine only — the heavyweight recovery actions (re-measuring the
// probe set, remap + recalibration, switching to the ADC fallback) live in
// the runtime, which drives the breaker through trip()/close()/the tier
// setters and asks recovery_tier() which rung of the degradation ladder to
// run next:
//
//   tier 0  retry: re-measure the probe set with backoff (transient noise)
//   tier 1  repair: remap every stage through the repair hook, recalibrate
//   tier 2  fallback: serve through the ADC reference path (Degraded)
//   tier 3  shed: reject load explicitly (Rejected/kShedding)
//
// Every transition is recorded with the served-request count so benches can
// report detection latency and recovery spans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sei::serve {

enum class BreakerState {
  kClosed,     // healthy: serving on the SEI path
  kOpen,       // tripped: recovery ladder in progress
  kFallback,   // tier 2: serving Degraded responses via the ADC path
  kShedding,   // tier 3: rejecting load
};

const char* to_string(BreakerState s);

struct BreakerConfig {
  // Trip when the sentinel window drops this many points below baseline.
  double trip_drop_pct = 2.0;
  // Close again once a full probe-set measurement is back within this many
  // points of baseline.
  double close_margin_pct = 2.0;
  int max_retries = 2;          // tier-0 re-measurements before escalating
  int retry_backoff_ms = 5;     // tier-0 backoff base (doubles per retry)
  // While in kFallback/kShedding, re-attempt tier-1 repair every this many
  // served requests.
  int reattempt_interval = 512;
};

struct BreakerEvent {
  std::uint64_t at_served = 0;
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
  int tier = 0;          // ladder rung that drove the transition
  std::string note;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig& cfg) : cfg_(cfg) {}

  BreakerState state() const { return state_; }
  const BreakerConfig& config() const { return cfg_; }

  /// True when a ready sentinel window justifies tripping.
  bool should_trip(double window_acc_pct, double baseline_pct) const {
    return state_ == BreakerState::kClosed && window_acc_pct >= 0.0 &&
           window_acc_pct <= baseline_pct - cfg_.trip_drop_pct;
  }

  /// True when a full-set measurement counts as recovered.
  bool recovered(double acc_pct, double baseline_pct) const {
    return acc_pct >= baseline_pct - cfg_.close_margin_pct;
  }

  void trip(std::uint64_t at_served, const std::string& note) {
    ++trips_;
    transition(BreakerState::kOpen, at_served, 0, note);
  }
  void close(std::uint64_t at_served, int tier, const std::string& note) {
    transition(BreakerState::kClosed, at_served, tier, note);
  }
  void enter_fallback(std::uint64_t at_served, const std::string& note) {
    transition(BreakerState::kFallback, at_served, 2, note);
  }
  void enter_shedding(std::uint64_t at_served, const std::string& note) {
    transition(BreakerState::kShedding, at_served, 3, note);
  }

  int trips() const { return trips_; }
  const std::vector<BreakerEvent>& events() const { return events_; }

  /// Reinstates checkpointed state without logging a transition — resume is
  /// not a state change, and the event log restarts per process.
  void restore(BreakerState state, int trips) {
    state_ = state;
    trips_ = trips;
  }

 private:
  void transition(BreakerState to, std::uint64_t at_served, int tier,
                  const std::string& note) {
    events_.push_back({at_served, state_, to, tier, note});
    state_ = to;
  }

  BreakerConfig cfg_;
  BreakerState state_ = BreakerState::kClosed;
  int trips_ = 0;
  std::vector<BreakerEvent> events_;
};

}  // namespace sei::serve
