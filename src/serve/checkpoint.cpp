#include "serve/checkpoint.hpp"

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/io.hpp"

namespace sei::serve {
namespace {

constexpr std::uint64_t kMagic = 0x314b504943494553ULL;  // "SEICPK1" + pad
constexpr std::uint32_t kVersion = 1;

std::vector<std::int32_t> to_i32(const std::vector<int>& v) {
  return std::vector<std::int32_t>(v.begin(), v.end());
}

}  // namespace

Status save_checkpoint(const core::SeiNetwork& net,
                       const RuntimeSnapshot& snap, const std::string& path) {
  try {
    BinaryWriter w(path);
    w.write_u64(kMagic);
    w.write_u32(kVersion);
    w.write_u64(snap.next_sequence);
    w.write_u64(snap.requests_served);
    w.write_u64(snap.checkpoint_epoch);
    w.write_u64(snap.probe_cursor);
    w.write_i32(net.stage_count());
    for (int s = 0; s < net.stage_count(); ++s) {
      const core::MappedLayer& m = net.layer(s);
      w.write_i32(m.geom.rows);
      w.write_i32(m.geom.cols);
      w.write_u32(m.binarize ? 1 : 0);
      w.write_f32(m.weight_scale);
      w.write_f32(m.dyn_beta);
      w.write_f32(m.mean_abs_eff);
      w.write_i32(m.block_count);
      w.write_i32(m.vote_threshold);
      w.write_f32_vec(m.eff);
      w.write_f32_vec(m.col_threshold);
      w.write_f32_vec(m.sa_offset);
      w.write_f32_vec(m.col_bias);
      w.write_i32_vec(to_i32(m.row_to_block));
    }
    w.commit();
    return ok_status();
  } catch (const std::exception& e) {
    return Error{ErrorCode::kIo,
                 std::string("checkpoint save failed: ") + e.what()};
  }
}

Status save_checkpoint_with_retry(const core::SeiNetwork& net,
                                  const RuntimeSnapshot& snap,
                                  const std::string& path,
                                  const CheckpointRetryPolicy& policy) {
  const int attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  Status last = ok_status();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1 && policy.backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(policy.backoff_ms << (attempt - 2)));
    }
    last = policy.inject_failure ? policy.inject_failure(attempt)
                                 : save_checkpoint(net, snap, path);
    if (last.ok()) return last;
    if (last.error().code != ErrorCode::kIo) return last;  // not transient
  }
  return last;
}

Result<RuntimeSnapshot> load_checkpoint(core::SeiNetwork& net,
                                        const std::string& path) {
  if (!file_exists(path))
    return Error{ErrorCode::kIo, "no checkpoint at " + path};
  try {
    BinaryReader r(path);
    r.verify_crc();  // torn/truncated/bit-flipped files stop here
    if (r.read_u64() != kMagic)
      return Error{ErrorCode::kCorrupt, "bad checkpoint magic: " + path};
    if (r.read_u32() != kVersion)
      return Error{ErrorCode::kCorrupt,
                   "unsupported checkpoint version: " + path};
    RuntimeSnapshot snap;
    snap.next_sequence = r.read_u64();
    snap.requests_served = r.read_u64();
    snap.checkpoint_epoch = r.read_u64();
    snap.probe_cursor = r.read_u64();
    const int stages = r.read_i32();
    if (stages != net.stage_count())
      return Error{ErrorCode::kCorrupt,
                   "checkpoint stage count mismatch: " + path};

    // Decode into staging first: a geometry mismatch must not leave the
    // live network half-overwritten.
    std::vector<core::MappedLayer> staged;
    staged.reserve(static_cast<std::size_t>(stages));
    for (int s = 0; s < stages; ++s) {
      const core::MappedLayer& live = net.layer(s);
      core::MappedLayer m = live;
      const int rows = r.read_i32();
      const int cols = r.read_i32();
      const bool binarize = r.read_u32() != 0;
      if (rows != live.geom.rows || cols != live.geom.cols ||
          binarize != live.binarize)
        return Error{ErrorCode::kCorrupt,
                     "checkpoint stage geometry mismatch: " + path};
      m.weight_scale = r.read_f32();
      m.dyn_beta = r.read_f32();
      m.mean_abs_eff = r.read_f32();
      m.block_count = r.read_i32();
      m.vote_threshold = r.read_i32();
      m.eff = r.read_f32_vec();
      m.col_threshold = r.read_f32_vec();
      m.sa_offset = r.read_f32_vec();
      m.col_bias = r.read_f32_vec();
      const std::vector<std::int32_t> rtb = r.read_i32_vec();
      m.row_to_block.assign(rtb.begin(), rtb.end());
      if (m.eff.size() != live.eff.size() ||
          m.row_to_block.size() != live.row_to_block.size())
        return Error{ErrorCode::kCorrupt,
                     "checkpoint stage payload mismatch: " + path};
      staged.push_back(std::move(m));
    }
    if (r.remaining() != 0)
      return Error{ErrorCode::kCorrupt,
                   "trailing bytes after checkpoint payload: " + path};
    for (int s = 0; s < stages; ++s) {
      net.layer(s) = std::move(staged[static_cast<std::size_t>(s)]);
      // Staging copied the pre-restore layer (for its geometry) and then
      // overwrote `eff` from the checkpoint — the copied packed
      // decomposition still encodes the PRE-restore weights. Without this
      // rebuild the packed engine would silently serve the old network
      // after a resume.
      net.rebuild_packed(s);
    }
    net.rebuild_plan();
    return snap;
  } catch (const CheckError& e) {
    return Error{ErrorCode::kCorrupt,
                 std::string("checkpoint rejected: ") + e.what()};
  } catch (const std::exception& e) {
    return Error{ErrorCode::kIo,
                 std::string("checkpoint load failed: ") + e.what()};
  }
}

}  // namespace sei::serve
