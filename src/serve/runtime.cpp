#include "serve/runtime.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "arch/live_energy.hpp"
#include "common/io.hpp"
#include "core/mapping.hpp"
#include "telemetry/span.hpp"

namespace sei::serve {
namespace {

using Clock = std::chrono::steady_clock;

// Maintenance evaluations live in their own RNG index spaces, far away
// from request sequence numbers, so probing and recovery measurements can
// never perturb (or collide with) the request stream's noise draws.
constexpr long long kProbeIndexBase = 1LL << 40;
constexpr long long kMeasureIndexBase = 1LL << 41;

// Served-request count before the zero-alloc contract is measured: covers
// context binding, lazily grown stat vectors, and allocator warm-up.
constexpr std::uint64_t kAllocWarmupRequests = 64;

// Keep this much spare capacity on the latency log so steady-state
// push_backs never reallocate inside the measured serve path; maintenance
// tops it up outside the guard.
constexpr std::size_t kLatencyHeadroom = 1024;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

const char* to_string(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kDegraded: return "degraded";
    case ResponseStatus::kRejected: return "rejected";
  }
  return "unknown";
}

ServingRuntime::ServingRuntime(core::SeiNetwork& net,
                               const quant::QNetwork& qnet,
                               const data::Dataset& probes,
                               const data::Dataset& calib, RuntimeConfig cfg,
                               const core::AdcNetwork* fallback)
    : net_(net),
      qnet_(qnet),
      calib_(calib),
      cfg_(std::move(cfg)),
      fallback_(fallback),
      sentinel_(probes, cfg_.sentinel),
      breaker_(cfg_.breaker),
      sei_meter_(arch::make_energy_meter(qnet, net.config(),
                                         core::StructureKind::kSei)),
      adc_meter_(arch::make_energy_meter(qnet, net.config(),
                                         core::StructureKind::kBinInputAdc)) {
  SEI_CHECK_MSG(cfg_.workers > 0, "at least one worker required");
  SEI_CHECK_MSG(cfg_.queue_capacity > 0, "queue capacity must be positive");
  SEI_CHECK_MSG(cfg_.checkpoint_every == 0 || !cfg_.checkpoint_path.empty(),
                "checkpoint_every requires checkpoint_path");
  auto& reg = telemetry::MetricsRegistry::global();
  latency_hist_ = &reg.histogram("serve_request_latency_ms",
                                 telemetry::latency_ms_buckets());
  req_ok_ = &reg.counter("serve_requests_total{status=\"ok\"}");
  req_degraded_ = &reg.counter("serve_requests_total{status=\"degraded\"}");
  req_rejected_ = &reg.counter("serve_requests_total{status=\"rejected\"}");
  probes_ctr_ = &reg.counter("serve_probes_total");
  checkpoints_ctr_ = &reg.counter("serve_checkpoints_total");
  breaker_open_ = &reg.counter("serve_breaker_transitions_total{to=\"open\"}");
  breaker_closed_ =
      &reg.counter("serve_breaker_transitions_total{to=\"closed\"}");
  breaker_fallback_ =
      &reg.counter("serve_breaker_transitions_total{to=\"fallback\"}");
  breaker_shedding_ =
      &reg.counter("serve_breaker_transitions_total{to=\"shedding\"}");
}

ServingRuntime::~ServingRuntime() { stop(); }

void ServingRuntime::start() {
  if (running_.load()) return;
  if (!cfg_.checkpoint_path.empty() && file_exists(cfg_.checkpoint_path)) {
    Result<RuntimeSnapshot> res =
        load_checkpoint(net_, cfg_.checkpoint_path);
    if (res.ok()) {
      snap_ = res.value();
      resumed_ = true;
    } else {
      // A bad checkpoint means cold start, never a crash: the on-disk file
      // is either torn (pre-CRC legacy) or corrupted after the fact.
      std::fprintf(stderr, "warning: %s; starting cold\n",
                   res.error().message.c_str());
    }
  }
  const double baseline = measure_probe_accuracy(maint_ctx_);
  sentinel_.set_baseline_pct(baseline);
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    stats_.sentinel_baseline_pct = baseline;
  }
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    energy_published_ = false;
    latencies_ms_.reserve(4 * kLatencyHeadroom);
  }
  {
    std::lock_guard<std::mutex> ql(queue_mu_);
    accepting_ = true;
    stopping_ = false;
  }
  running_.store(true);
  for (int w = 0; w < cfg_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

void ServingRuntime::stop() {
  {
    std::lock_guard<std::mutex> ql(queue_mu_);
    if (!accepting_ && workers_.empty()) return;
    accepting_ = false;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
  if (!cfg_.checkpoint_path.empty()) {
    std::uint64_t served;
    {
      std::lock_guard<std::mutex> ql(queue_mu_);
      served = snap_.requests_served;
    }
    write_checkpoint(served);
  }
  // Push the per-path energy totals into the global registry so a
  // telemetry_flush after shutdown sees them alongside the request counters.
  {
    auto& reg = telemetry::MetricsRegistry::global();
    std::lock_guard<std::mutex> sl(stats_mu_);
    if (!energy_published_) {
      telemetry::publish_energy(reg, "sei", energy_.sei);
      telemetry::publish_energy(reg, "adc", energy_.adc);
      telemetry::publish_energy(reg, "probe", energy_.probe);
      energy_published_ = true;  // exactly once even if stop() reruns
    }
  }
  running_.store(false);
}

std::future<Response> ServingRuntime::submit(std::span<const float> image) {
  return submit(image, cfg_.default_deadline);
}

std::future<Response> ServingRuntime::submit(
    std::span<const float> image, std::chrono::milliseconds deadline) {
  auto req = std::make_unique<Request>();
  req->image.assign(image.begin(), image.end());
  req->enqueued = Clock::now();
  req->deadline = deadline.count() > 0 ? req->enqueued + deadline
                                       : Clock::time_point{};
  std::future<Response> fut = req->promise.get_future();

  ErrorCode reject = ErrorCode::kInternal;
  bool admitted = false;
  {
    std::lock_guard<std::mutex> ql(queue_mu_);
    if (!accepting_) {
      reject = ErrorCode::kUnavailable;
    } else if (static_cast<int>(queue_.size()) >= cfg_.queue_capacity) {
      reject = ErrorCode::kQueueFull;
    } else {
      queue_.push_back(std::move(req));
      admitted = true;
    }
  }
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    ++stats_.submitted;
    if (!admitted && reject == ErrorCode::kQueueFull)
      ++stats_.queue_rejections;
  }
  if (admitted) {
    queue_cv_.notify_one();
  } else {
    Response r;
    r.status = ResponseStatus::kRejected;
    r.error = reject;
    finish(*req, r);
  }
  return fut;
}

void ServingRuntime::set_fault_schedule(FaultSchedule schedule) {
  std::lock_guard<std::mutex> ml(maint_mu_);
  schedule_ = std::move(schedule);
  std::sort(schedule_.events.begin(), schedule_.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at_served < b.at_served;
            });
  next_fault_ = 0;
}

void ServingRuntime::worker_loop() {
  core::EvalContext ctx;
  exec::CancelToken token;
  {
    // Bind the scratch arena to the compiled plan before the first request
    // so even a late-starting worker's first serve is allocation-free.
    std::shared_lock<std::shared_mutex> nl(net_mu_);
    net_.prepare(ctx);
  }
  while (true) {
    std::unique_ptr<Request> req;
    std::uint64_t sequence = 0;
    std::uint64_t served = 0;
    {
      std::unique_lock<std::mutex> ql(queue_mu_);
      queue_cv_.wait(ql, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping_ and fully drained
      req = std::move(queue_.front());
      queue_.pop_front();
      sequence = snap_.next_sequence++;
      served = ++snap_.requests_served;
    }
    if (telemetry::alloc_counting_available() &&
        served > kAllocWarmupRequests) {
      std::uint64_t allocs;
      {
        telemetry::AllocGuard guard;
        serve_one(*req, sequence, ctx, token);
        allocs = guard.count();
      }
      std::lock_guard<std::mutex> sl(stats_mu_);
      ++stats_.alloc_measured_requests;
      stats_.serve_request_allocs += allocs;
    } else {
      serve_one(*req, sequence, ctx, token);
    }
    maintenance(served, ctx);
  }
}

void ServingRuntime::serve_one(Request& req, std::uint64_t sequence,
                               core::EvalContext& ctx,
                               exec::CancelToken& token) {
  telemetry::Span span("serve.request");
  Response r;
  r.sequence = sequence;
  const bool has_deadline = req.deadline.time_since_epoch().count() != 0;
  if (has_deadline && Clock::now() >= req.deadline) {
    r.error = ErrorCode::kDeadlineExceeded;  // expired while queued
    finish(req, r);
    return;
  }
  const BreakerState st = breaker_state_.load();
  if (st == BreakerState::kShedding) {
    r.error = ErrorCode::kShedding;
    finish(req, r);
    return;
  }

  token.reset();
  if (has_deadline) token.set_deadline(req.deadline);
  ctx.cancel = &token;
  const bool via_fallback = st == BreakerState::kFallback && fallback_ != nullptr;
  telemetry::EnergyAccum eacc;
  ctx.meter = via_fallback ? &adc_meter_ : &sei_meter_;
  ctx.energy = &eacc;
  Result<int> res = Error{ErrorCode::kInternal, "not evaluated"};
  {
    std::shared_lock<std::shared_mutex> nl(net_mu_);
    if (via_fallback)
      res = fallback_->try_predict(req.image, ctx);
    else
      res = net_.try_predict(req.image, ctx,
                             static_cast<long long>(sequence));
  }
  ctx.cancel = nullptr;
  ctx.meter = nullptr;
  ctx.energy = nullptr;
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    (via_fallback ? energy_.adc : energy_.sei).merge(eacc);
  }

  if (res.ok()) {
    r.status = st == BreakerState::kFallback ? ResponseStatus::kDegraded
                                             : ResponseStatus::kOk;
    r.label = res.value();
  } else {
    r.error = res.code();
  }
  finish(req, r);
}

void ServingRuntime::finish(Request& req, Response r) {
  r.latency_ms = ms_between(req.enqueued, Clock::now());
  latency_hist_->observe(r.latency_ms);
  switch (r.status) {
    case ResponseStatus::kOk: req_ok_->add(); break;
    case ResponseStatus::kDegraded: req_degraded_->add(); break;
    case ResponseStatus::kRejected: req_rejected_->add(); break;
  }
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    ++stats_.served;
    latencies_ms_.push_back(r.latency_ms);
    switch (r.status) {
      case ResponseStatus::kOk: ++stats_.ok; break;
      case ResponseStatus::kDegraded: ++stats_.degraded; break;
      case ResponseStatus::kRejected:
        ++stats_.rejected;
        if (r.error == ErrorCode::kDeadlineExceeded) ++stats_.deadline_misses;
        if (r.error == ErrorCode::kShedding) ++stats_.shed;
        break;
    }
  }
  req.promise.set_value(std::move(r));
}

void ServingRuntime::maintenance(std::uint64_t served,
                                 core::EvalContext& ctx) {
  std::unique_lock<std::mutex> ml(maint_mu_, std::try_to_lock);
  if (!ml.owns_lock()) return;  // another worker is on maintenance duty

  // 0. Latency-log headroom: grow the vector here, outside the measured
  // serve path, so finish()'s push_back never reallocates mid-request.
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    if (latencies_ms_.capacity() - latencies_ms_.size() < kLatencyHeadroom)
      latencies_ms_.reserve(latencies_ms_.size() + 4 * kLatencyHeadroom);
  }

  // 1. Fire scheduled faults that came due.
  while (next_fault_ < schedule_.events.size() &&
         schedule_.events[next_fault_].at_served <= served) {
    std::unique_lock<std::shared_mutex> nl(net_mu_);
    apply_fault(net_, schedule_.events[next_fault_], schedule_.seed,
                static_cast<int>(next_fault_));
    ++next_fault_;
  }

  // 2. Sentinel probe + breaker (only meaningful while serving SEI).
  if (breaker_state_.load() == BreakerState::kClosed &&
      served - last_probe_served_ >=
          static_cast<std::uint64_t>(sentinel_.config().probe_every)) {
    last_probe_served_ = served;
    run_probe(served, ctx);
  }

  // 3. While parked in fallback/shedding, periodically re-attempt repair.
  const BreakerState st = breaker_state_.load();
  if ((st == BreakerState::kFallback || st == BreakerState::kShedding) &&
      served - last_reattempt_served_ >=
          static_cast<std::uint64_t>(cfg_.breaker.reattempt_interval)) {
    last_reattempt_served_ = served;
    const Clock::time_point t0 = Clock::now();
    const bool repaired = attempt_repair(ctx);
    const double acc = measure_probe_accuracy(ctx);
    if (repaired && breaker_.recovered(acc, sentinel_.baseline_pct())) {
      sentinel_.reset_window();
      breaker_.close(served, 1, "periodic repair restored accuracy");
      breaker_state_.store(BreakerState::kClosed);
      breaker_closed_->add();
      std::lock_guard<std::mutex> sl(stats_mu_);
      if (!recoveries_.empty() && !recoveries_.back().closed) {
        recoveries_.back().closed = true;
        recoveries_.back().resolved_at_served = served;
        recoveries_.back().acc_after_pct = acc;
        recoveries_.back().duration_ms += ms_between(t0, Clock::now());
      }
    }
  }

  // 4. Durable checkpoint.
  if (cfg_.checkpoint_every > 0 &&
      served - last_checkpoint_served_ >=
          static_cast<std::uint64_t>(cfg_.checkpoint_every)) {
    last_checkpoint_served_ = served;
    write_checkpoint(served);
  }
}

void ServingRuntime::run_probe(std::uint64_t served, core::EvalContext& ctx) {
  telemetry::Span span("serve.probe");
  probes_ctr_->add();
  std::uint64_t cursor;
  {
    std::lock_guard<std::mutex> ql(queue_mu_);
    cursor = snap_.probe_cursor++;
  }
  const int probe =
      static_cast<int>(cursor % static_cast<std::uint64_t>(sentinel_.probe_count()));
  telemetry::EnergyAccum eacc;
  ctx.meter = &sei_meter_;
  ctx.energy = &eacc;
  int predicted;
  {
    std::shared_lock<std::shared_mutex> nl(net_mu_);
    predicted = net_
                    .try_predict(sentinel_.image(probe), ctx,
                                 kProbeIndexBase + static_cast<long long>(cursor))
                    .value();  // no token attached: cannot fail
  }
  ctx.meter = nullptr;
  ctx.energy = nullptr;
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    energy_.probe.merge(eacc);
  }
  sentinel_.record(predicted == sentinel_.label(probe));
  const double window = sentinel_.window_accuracy_pct();
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    ++stats_.probes;
    stats_.sentinel_window_pct = window;
  }
  if (breaker_.should_trip(window, sentinel_.baseline_pct()))
    run_recovery(served, window, ctx);
}

double ServingRuntime::measure_probe_accuracy(core::EvalContext& ctx) {
  const std::uint64_t serial = measure_serial_++;
  const int n = sentinel_.probe_count();
  int correct = 0;
  telemetry::EnergyAccum eacc;
  ctx.meter = &sei_meter_;
  ctx.energy = &eacc;
  {
    std::shared_lock<std::shared_mutex> nl(net_mu_);
    for (int i = 0; i < n; ++i) {
      const long long index =
          kMeasureIndexBase +
          static_cast<long long>(serial) * n + i;
      if (net_.try_predict(sentinel_.image(i), ctx, index).value() ==
          sentinel_.label(i))
        ++correct;
    }
  }
  ctx.meter = nullptr;
  ctx.energy = nullptr;
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    energy_.probe.merge(eacc);
  }
  return 100.0 * correct / static_cast<double>(n);
}

void ServingRuntime::run_recovery(std::uint64_t served, double window_acc,
                                  core::EvalContext& ctx) {
  telemetry::Span span("serve.recovery");
  const Clock::time_point t0 = Clock::now();
  breaker_.trip(served, "sentinel window dropped to " +
                            std::to_string(window_acc) + "%");
  breaker_state_.store(BreakerState::kOpen);
  breaker_open_->add();
  RecoveryRecord rec;
  rec.tripped_at_served = served;
  rec.acc_before_pct = window_acc;

  const double baseline = sentinel_.baseline_pct();
  bool closed = false;
  double acc = window_acc;

  // Tier 0: re-measure with backoff — transient noise clears itself.
  for (int attempt = 0; attempt < cfg_.breaker.max_retries && !closed;
       ++attempt) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(cfg_.breaker.retry_backoff_ms << attempt));
    acc = measure_probe_accuracy(ctx);
    if (breaker_.recovered(acc, baseline)) {
      rec.tier_reached = 0;
      breaker_.close(served, 0, "re-measure recovered (transient)");
      closed = true;
    }
  }

  // Tier 1: remap through the repair hook + recalibrate thresholds.
  if (!closed) {
    rec.tier_reached = 1;
    const bool repaired = attempt_repair(ctx);
    acc = measure_probe_accuracy(ctx);
    if (repaired && breaker_.recovered(acc, baseline)) {
      breaker_.close(served, 1, "repair + recalibration restored accuracy");
      closed = true;
    }
  }

  // Tier 2/3: park on the fallback path or shed load; maintenance keeps
  // re-attempting repair every reattempt_interval served requests.
  if (!closed) {
    if (fallback_ != nullptr) {
      rec.tier_reached = 2;
      breaker_.enter_fallback(served, "serving degraded via ADC path");
      breaker_state_.store(BreakerState::kFallback);
      breaker_fallback_->add();
    } else {
      rec.tier_reached = 3;
      breaker_.enter_shedding(served, "no fallback path; shedding load");
      breaker_state_.store(BreakerState::kShedding);
      breaker_shedding_->add();
    }
    last_reattempt_served_ = served;
  } else {
    sentinel_.reset_window();
    breaker_state_.store(BreakerState::kClosed);
    breaker_closed_->add();
  }

  rec.closed = closed;
  rec.resolved_at_served = served;
  rec.acc_after_pct = acc;
  rec.duration_ms = ms_between(t0, Clock::now());
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    recoveries_.push_back(rec);
    stats_.breaker_trips = breaker_.trips();
  }
}

bool ServingRuntime::attempt_repair(core::EvalContext& ctx) {
  (void)ctx;
  telemetry::Span span("serve.repair");
  std::unique_lock<std::shared_mutex> nl(net_mu_);
  // Remapping reprograms every stage from the quantized weights (fresh
  // crossbars, repair hook re-applied), clearing in-service damage the way
  // a field re-flash would.
  for (int s = 0; s < net_.stage_count(); ++s)
    net_.remap_layer(
        s, core::default_row_order(qnet_.layers[static_cast<std::size_t>(s)],
                                   net_.config()));
  const Result<reliability::CalibrationReport> cal =
      reliability::try_recalibrate_thresholds(net_, calib_,
                                              cfg_.calibration);
  if (!cal.ok())
    std::fprintf(stderr, "warning: recalibration failed: %s\n",
                 cal.error().message.c_str());
  return cal.ok();
}

void ServingRuntime::write_checkpoint(std::uint64_t served) {
  (void)served;
  if (cfg_.checkpoint_path.empty()) return;
  telemetry::Span span("serve.checkpoint");
  RuntimeSnapshot s;
  {
    std::lock_guard<std::mutex> ql(queue_mu_);
    s = snap_;
    s.checkpoint_epoch += 1;
  }
  Status st = ok_status();
  {
    std::shared_lock<std::shared_mutex> nl(net_mu_);
    st = save_checkpoint_with_retry(net_, s, cfg_.checkpoint_path,
                                    cfg_.checkpoint_retry);
  }
  if (st.ok()) {
    {
      std::lock_guard<std::mutex> ql(queue_mu_);
      snap_.checkpoint_epoch = s.checkpoint_epoch;
    }
    checkpoints_ctr_->add();
    std::lock_guard<std::mutex> sl(stats_mu_);
    ++stats_.checkpoints;
  } else {
    std::fprintf(stderr, "warning: %s\n", st.error().message.c_str());
  }
}

RuntimeStats ServingRuntime::stats() const {
  std::lock_guard<std::mutex> sl(stats_mu_);
  return stats_;
}

EnergySummary ServingRuntime::energy() const {
  std::lock_guard<std::mutex> sl(stats_mu_);
  return energy_;
}

std::vector<double> ServingRuntime::latencies_ms() const {
  std::lock_guard<std::mutex> sl(stats_mu_);
  return latencies_ms_;
}

std::vector<BreakerEvent> ServingRuntime::breaker_events() const {
  std::lock_guard<std::mutex> ml(maint_mu_);
  return breaker_.events();
}

std::vector<RecoveryRecord> ServingRuntime::recoveries() const {
  std::lock_guard<std::mutex> sl(stats_mu_);
  return recoveries_;
}

RuntimeSnapshot ServingRuntime::snapshot() const {
  std::lock_guard<std::mutex> ql(queue_mu_);
  return snap_;
}

double ServingRuntime::sentinel_baseline_pct() const {
  std::lock_guard<std::mutex> sl(stats_mu_);
  return stats_.sentinel_baseline_pct;
}

}  // namespace sei::serve
