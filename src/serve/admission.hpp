// Weighted-fair admission control for multi-tenant serving.
//
// Each tenant gets its own bounded queue (one greedy tenant can fill only
// its own backlog, never the fleet's), a weighted-fair service share, and an
// optional energy quota billed from the live EnergyMeter accounting. The
// scheduler is stride-based: every pop advances the popped tenant's virtual
// pass by 1/weight, and the next request always comes from the backlogged
// tenant with the smallest pass (ties broken by tenant index). Over any
// saturated interval, tenant service rates therefore converge to the weight
// ratios — the property the Jain-fairness gate in bench_serving measures.
//
// AdmissionController is deliberately lock-free *and* thread-unsafe: it is
// the pure, deterministic policy core. serve::MicroBatcher owns the mutex
// and condition variable and is the only concurrent entry point
// (docs/serving.md §10). Keeping the policy single-threaded is what makes
// pop order — and with it the fleet's replay contract — reproducible.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/result.hpp"
#include "exec/cancel.hpp"

namespace sei::serve {

struct TenantConfig {
  std::string name;
  double weight = 1.0;          // weighted-fair service share (> 0)
  int queue_capacity = 64;      // per-tenant admission bound
  // Total metered energy this tenant may consume, in joules; once the
  // tenant's bill crosses the quota, new requests are rejected with
  // kQuotaExceeded. 0 = unmetered.
  double energy_quota_j = 0.0;
};

/// Parses "name:weight" tenant specs ("A:3,B:1" → two tenants). A missing
/// weight means 1. Capacity/quota keep their defaults. Malformed input —
/// duplicate tenant names, zero/negative/non-numeric weights, wrong
/// separators — raises CliError with a did-you-mean instead of silently
/// producing a tenant set the scheduler can't serve fairly.
std::vector<TenantConfig> parse_tenant_specs(const std::string& spec);

enum class FleetResponseStatus {
  kOk,        // answered by a healthy SEI shard
  kDegraded,  // answered on the shared ADC fallback path
  kRejected,  // no label: see FleetResponse::error
};

const char* to_string(FleetResponseStatus s);

/// FleetResponse::ticket value for a request that never reached dispatch
/// (rejected at admission or dropped at batch assembly): no fleet ticket was
/// consumed. Dispatched responses always carry a real ticket, which is what
/// lets the chaos ticket-conservation checker distinguish "never dispatched"
/// from "dispatched as ticket 0".
inline constexpr std::uint64_t kNoTicket = ~0ULL;

struct FleetResponse {
  FleetResponseStatus status = FleetResponseStatus::kRejected;
  int label = -1;                          // kOk / kDegraded only
  ErrorCode error = ErrorCode::kInternal;  // kRejected only
  int tenant = -1;
  int shard = -1;             // serving shard; -1 = fallback path / none
  std::uint64_t ticket = kNoTicket;  // fleet-wide ticket (if dispatched)
  std::uint64_t sequence = 0; // shard-local RNG stream index (if served)
  double latency_ms = 0.0;    // submit → response
};

/// One queued request. The CancelToken is armed with the deadline at submit
/// time, so both the batch-assembly drop (MicroBatcher) and the mid-eval
/// check inside try_predict observe the same clock edge.
struct FleetRequest {
  int tenant = -1;
  std::vector<float> image;
  std::chrono::steady_clock::time_point enqueued;
  std::chrono::steady_clock::time_point deadline;  // epoch 0 = none
  exec::CancelToken token;
  std::promise<FleetResponse> promise;
};

/// Per-tenant admission/service accounting (all counts since start()).
struct TenantCounters {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t queue_rejections = 0;  // kQueueFull at admission
  std::uint64_t quota_rejections = 0;  // kQuotaExceeded at admission
  std::uint64_t dropped_expired = 0;   // deadline passed at batch assembly
  std::uint64_t served = 0;            // popped and dispatched (any outcome)
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rejected = 0;          // all rejection codes post-admission
  double energy_j = 0.0;               // metered energy billed so far
};

class AdmissionController {
 public:
  explicit AdmissionController(std::vector<TenantConfig> tenants);

  int tenant_count() const { return static_cast<int>(tenants_.size()); }
  const TenantConfig& tenant(int t) const {
    return tenants_.at(static_cast<std::size_t>(t));
  }

  /// Admits `req` into its tenant's queue (returns nullopt and takes
  /// ownership), or rejects with kQueueFull / kQuotaExceeded (ownership
  /// stays with the caller so it can complete the promise).
  std::optional<ErrorCode> try_admit(std::unique_ptr<FleetRequest>& req);

  /// Pops the weighted-fair next request (smallest virtual pass among
  /// backlogged tenants, lowest index on ties); nullptr when idle.
  std::unique_ptr<FleetRequest> pop_next();

  std::size_t pending() const { return pending_; }
  std::size_t pending(int t) const {
    return queues_.at(static_cast<std::size_t>(t)).size();
  }

  /// Bills metered energy against the tenant's quota.
  void charge_energy(int t, double joules);

  TenantCounters& counters(int t) {
    return counters_.at(static_cast<std::size_t>(t));
  }
  const TenantCounters& counters(int t) const {
    return counters_.at(static_cast<std::size_t>(t));
  }

  // Scheduler state, checkpointed by the fleet so a resumed process pops a
  // re-submitted backlog in the same weighted-fair order.
  double pass(int t) const { return passes_.at(static_cast<std::size_t>(t)); }
  double global_pass() const { return global_pass_; }
  void restore_scheduler(int t, double pass, double energy_j);
  void restore_global_pass(double pass) { global_pass_ = pass; }

 private:
  std::vector<TenantConfig> tenants_;
  std::vector<std::deque<std::unique_ptr<FleetRequest>>> queues_;
  std::vector<double> passes_;   // virtual start time per tenant
  std::vector<TenantCounters> counters_;
  double global_pass_ = 0.0;     // pass of the most recent pop
  std::size_t pending_ = 0;
};

/// Jain's fairness index over per-tenant (weight-normalized) allocations:
/// (Σx)² / (n·Σx²) ∈ [1/n, 1]; 1 = perfectly proportional service. Empty
/// or all-zero input yields 1 (nothing was unfair).
double jain_fairness(const std::vector<double>& allocations);

}  // namespace sei::serve
