// Fleet-scale multi-tenant serving: sharded replicas behind weighted-fair
// admission, dynamic micro-batching, and per-shard fault tolerance.
//
// A FleetRuntime wraps N independently-mapped SeiNetwork replicas (shards)
// behind the AdmissionController's per-tenant bounded queues. A single
// dispatcher thread pulls coalesced micro-batches from the MicroBatcher and
// evaluates each batch with one parallel_for over the shared thread pool;
// per-request bookkeeping (routing, shard sequence numbers, storms, probes,
// recovery, checkpoints) runs on the dispatcher in admission-pop order, so
// the whole fleet inherits the library's replay contract: the response
// stream is a pure function of the dispatch order, independent of batch
// coalescing boundaries and thread count (docs/serving.md).
//
// Each shard composes the PR-3 machinery unchanged: its own canary
// Sentinel, its own CircuitBreaker, the same tiered recovery ladder
// (re-measure → remap+recalibrate → park), and its own crash-safe
// checkpoint file. What the fleet adds on top:
//
//  * routing + failover — a request's home shard is ticket % N; when the
//    home breaker is not closed the request fails over to the next closed
//    shard on the ring, then to the shared ADC fallback (Degraded), then
//    to shedding (Rejected/kShedding). Every re-route is logged and
//    counted (fleet_failovers_total).
//  * weighted-fair multi-tenancy — stride scheduling over per-tenant
//    bounded queues plus optional per-tenant energy quotas billed from the
//    live EnergyMeter accounting (admission.hpp).
//  * fleet checkpoints — per-shard network checkpoints plus one manifest
//    holding the fleet counters, scheduler passes, tenant energy bills and
//    per-shard breaker/sentinel state, written atomically (manifest last =
//    commit point). Shard files alternate between two epoch-parity slots so
//    an in-progress commit never overwrites the set the current manifest
//    points at: a crash at *any* write offset of the commit sequence leaves
//    the previous set intact (the chaos crash-point matrix proves this at
//    every offset — docs/chaos.md). start() resumes from the last committed
//    set and replays the remaining request stream bit-identically.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "core/adc_network.hpp"
#include "core/sei_network.hpp"
#include "data/dataset.hpp"
#include "quant/qnet.hpp"
#include "reliability/calibrate.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/breaker.hpp"
#include "serve/checkpoint.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/runtime.hpp"  // RecoveryRecord, EnergySummary
#include "serve/sentinel.hpp"
#include "telemetry/energy.hpp"
#include "telemetry/metrics.hpp"

namespace sei::serve {

struct FleetConfig {
  std::vector<TenantConfig> tenants;
  BatcherConfig batcher{};
  std::chrono::milliseconds default_deadline{0};  // 0 = none
  int checkpoint_every = 0;    // dispatched requests between saves; 0 = off
  std::string checkpoint_dir;  // required when checkpoint_every > 0
  CheckpointRetryPolicy checkpoint_retry{};
  SentinelConfig sentinel{};
  BreakerConfig breaker{};
  reliability::CalibrationConfig calibration{};  // tier-1 recalibration
};

/// Routing targets below 0 name the off-shard paths.
inline constexpr int kFallbackPath = -1;  // shared ADC reference network
inline constexpr int kShedPath = -2;      // rejected with kShedding

/// One request routed away from its home shard (or off the SEI path).
struct FailoverEvent {
  std::uint64_t at_dispatched = 0;
  int tenant = -1;
  int home_shard = -1;
  int to_shard = -1;  // >= 0 replica; kFallbackPath / kShedPath otherwise
};

struct ShardStats {
  std::uint64_t served = 0;  // SEI requests dispatched to this shard
  BreakerState state = BreakerState::kClosed;
  int trips = 0;
  double baseline_pct = 0.0;
  double window_pct = -1.0;
};

struct FleetStats {
  std::uint64_t total_dispatched = 0;  // popped + routed (any outcome)
  std::uint64_t fallback_served = 0;   // dispatched to the ADC path
  std::uint64_t shed = 0;              // no healthy shard, no fallback
  std::uint64_t failovers = 0;
  std::uint64_t checkpoints = 0;       // complete checkpoint sets written
  // Zero-allocation contract (docs/plans.md §4): requests evaluated under
  // the allocation guard after warmup, and the heap allocations observed
  // across them. Pool-bound contexts must keep serve_request_allocs at 0.
  std::uint64_t alloc_measured_requests = 0;
  std::uint64_t serve_request_allocs = 0;
  BatcherStats batcher{};
  std::vector<TenantCounters> tenants;
  // Joules metered per tenant by the live EnergyMeter *in this process*
  // (resets on resume, unlike TenantCounters::energy_j which restores from
  // the manifest). The chaos billing-conservation invariant checks
  // energy_j == restored base + tenant_metered_j.
  std::vector<double> tenant_metered_j;
  std::vector<ShardStats> shards;
};

class FleetRuntime {
 public:
  /// `shards` are caller-owned replicas mapped from the same `qnet` (stage
  /// geometry is checked); give them distinct HardwareConfig seeds for
  /// independent read-noise. All must outlive the fleet and stay externally
  /// untouched while it runs. `probes` feeds every shard's sentinel,
  /// `calib` feeds tier-1 recalibration, `fallback` (optional) enables the
  /// shared ADC path.
  FleetRuntime(std::vector<core::SeiNetwork*> shards,
               const quant::QNetwork& qnet, const data::Dataset& probes,
               const data::Dataset& calib, FleetConfig cfg,
               const core::AdcNetwork* fallback = nullptr);
  ~FleetRuntime();
  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  /// Resumes from the last complete checkpoint set (if configured and
  /// present), measures per-shard sentinel baselines on cold start, and
  /// launches the dispatcher. One start()/stop() cycle per instance.
  void start();

  /// Graceful shutdown: stop admitting, drain every queued request through
  /// the dispatcher, write a final checkpoint set, publish per-tenant
  /// energy. Idempotent; also run by the destructor.
  void stop();

  bool running() const { return running_.load(); }

  /// Enqueues one image for `tenant`. The future always completes — with a
  /// label or a structured rejection; admission overflow, quota exhaustion
  /// and shutdown reject immediately rather than blocking the caller.
  std::future<FleetResponse> submit(int tenant, std::span<const float> image);
  std::future<FleetResponse> submit(int tenant, std::span<const float> image,
                                    std::chrono::milliseconds deadline);

  /// Installs the scripted fault storm (fired on the fleet-wide dispatch
  /// counter). Must be called before start().
  void set_storm(StormSchedule storm);

  int shard_count() const { return static_cast<int>(shards_.size()); }
  int tenant_count() const { return admission_.tenant_count(); }

  FleetStats stats() const;
  /// Fleet-wide metered joules by path; stop() also publishes per-tenant
  /// bills ("tenant_<name>") and the probe total ("fleet_probe").
  EnergySummary energy() const;
  std::vector<double> tenant_latencies_ms(int t) const;
  std::vector<BreakerEvent> shard_breaker_events(int k) const;
  std::vector<RecoveryRecord> shard_recoveries(int k) const;
  std::vector<FailoverEvent> failovers() const;
  BreakerState shard_state(int k) const;
  /// True when start() restored a complete checkpoint set.
  bool resumed_from_checkpoint() const { return resumed_; }

 private:
  struct Shard {
    core::SeiNetwork* net = nullptr;
    Sentinel sentinel;
    CircuitBreaker breaker;
    RuntimeSnapshot snap;  // per-shard sequence/served/probe counters
    std::uint64_t last_probe_served = 0;
    std::uint64_t last_reattempt_dispatched = 0;
    std::uint64_t measure_serial = 0;
    // Storm persistence (StormEvent::duration): index of the active strike
    // in storm_.events (-1 = none) and the fleet dispatch count at which
    // the hostile condition lifts. While active, attempt_repair re-lands
    // the strike's damage after remapping.
    std::int64_t active_storm = -1;
    std::uint64_t storm_until = 0;
    std::vector<RecoveryRecord> recoveries;
    // Checkpoint path prefix; the actual file alternates between two slots
    // (<base>.s0.ckpt / <base>.s1.ckpt, slot = epoch % 2) so a commit never
    // overwrites the set the current manifest points at — see
    // write_checkpoints().
    std::string ckpt_base;
  };

  /// One dispatched-but-not-yet-evaluated request: the unit the segment
  /// flush evaluates in parallel.
  struct Pending {
    std::unique_ptr<FleetRequest> req;
    int shard = kFallbackPath;  // >= 0 SEI shard; kFallbackPath = ADC
    std::uint64_t ticket = 0;
    std::uint64_t sequence = 0;  // shard-local RNG index (SEI only)
  };

  struct TenantMetrics {
    telemetry::Counter* ok = nullptr;
    telemetry::Counter* degraded = nullptr;
    telemetry::Counter* rejected = nullptr;
    telemetry::Histogram* latency = nullptr;
  };
  struct ShardMetrics {
    telemetry::Counter* open = nullptr;
    telemetry::Counter* closed = nullptr;
    telemetry::Counter* fallback = nullptr;
    telemetry::Counter* shedding = nullptr;
  };

  /// Per-flush evaluation outcome of one pending request.
  struct Outcome {
    bool ok = false;
    int label = -1;
    ErrorCode err = ErrorCode::kInternal;
  };

  void dispatcher_loop();
  void process_batch(std::vector<std::unique_ptr<FleetRequest>>& batch);
  /// Checks out a plan-bound EvalContext from the pool (all shards share
  /// one scratch bound — same qnet geometry), creating one only when the
  /// pool is dry. Steady state: pool size == peak chunk concurrency, zero
  /// construction or binding per flush.
  std::unique_ptr<core::EvalContext> acquire_context();
  void release_context(std::unique_ptr<core::EvalContext> ctx);
  /// Evaluates the segment with one parallel_for, bulk-charges energy,
  /// bills tenant quotas and completes every promise. Clears `seg`.
  void flush(std::vector<Pending>& seg);
  void complete(Pending& p, FleetResponse r);
  void record_failover(int tenant, int home, int to);
  /// Runs one sentinel probe on shard `k`; on trip, flushes `seg` (the
  /// recovery ladder mutates the network) and runs recovery.
  void run_probe(int k, std::vector<Pending>& seg);
  double measure_probe_accuracy(Shard& sh);
  void run_recovery(int k, double window_acc);
  bool attempt_repair(Shard& sh);
  /// Parked-shard periodic repair re-attempt (tier-1 while degraded).
  void try_reopen(int k);
  void write_checkpoints();
  Status save_manifest(std::uint64_t epoch);
  bool try_resume();
  void publish_energy_once();
  std::string manifest_path() const;

  const quant::QNetwork& qnet_;
  const data::Dataset& calib_;
  FleetConfig cfg_;
  const core::AdcNetwork* fallback_;

  // Per-stage price lists shared by every shard (same qnet + geometry).
  telemetry::EnergyMeter sei_meter_;
  telemetry::EnergyMeter adc_meter_;

  AdmissionController admission_;
  mutable MicroBatcher batcher_;  // mutable: stats() snapshots via its lock

  // Dispatcher state: owned by the dispatcher thread, guarded by fleet_mu_
  // so stats()/event accessors can snapshot while the fleet runs.
  mutable std::mutex fleet_mu_;
  std::vector<Shard> shards_;
  StormSchedule storm_;
  std::size_t storm_cursor_ = 0;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t total_dispatched_ = 0;
  std::uint64_t last_checkpoint_dispatched_ = 0;
  std::uint64_t checkpoints_ = 0;
  // Epoch of the last *manifest-committed* checkpoint set. Each commit
  // attempt targets manifest_epoch_ + 1 and only advances this once the
  // manifest rename lands, so retries after a failed/torn commit re-target
  // the same (non-committed) slot and the committed set is never touched.
  std::uint64_t manifest_epoch_ = 0;
  std::uint64_t fallback_served_ = 0;
  std::uint64_t shed_ = 0;
  std::vector<FailoverEvent> failovers_;
  std::vector<std::vector<double>> tenant_latencies_;
  std::vector<telemetry::EnergyAccum> tenant_energy_;
  std::vector<double> billed_local_j_;  // joules billed to admission so far
  // Dispatch-time mirror of the scheduler passes: admission advances a pass
  // at *pop* (whole batch at once), but a mid-batch checkpoint must record
  // the pass state at the dispatch boundary, so the dispatcher re-derives
  // it per item (same stride rule) and the manifest stores this mirror.
  std::vector<double> manifest_passes_;
  double manifest_gpass_ = 0.0;
  EnergySummary energy_;
  core::EvalContext maint_ctx_;  // probes + recovery measurements

  // Flush scratch, persistent across batches so steady-state dispatch
  // performs no heap allocation: the segment, the per-item outcomes, the
  // per-item energy accumulators (sparsity-enabled shards only) and the
  // per-tenant tally vectors are assign()ed within retained capacity.
  std::vector<Pending> seg_;
  std::vector<Outcome> out_;
  std::vector<telemetry::EnergyAccum> item_energy_;
  std::vector<std::uint64_t> sei_n_, adc_n_;
  std::vector<std::uint64_t> ok_n_, degraded_n_, rejected_n_;

  // Evaluation-context pool for the parallel segment flush (see
  // acquire_context). Guarded by ctx_mu_ — chunk workers check out/in.
  std::mutex ctx_mu_;
  std::vector<std::unique_ptr<core::EvalContext>> ctx_pool_;

  // Zero-alloc accounting (FleetStats::serve_request_allocs).
  std::atomic<std::uint64_t> alloc_measured_{0};
  std::atomic<std::uint64_t> hot_allocs_{0};

  std::vector<TenantMetrics> tenant_metrics_;
  std::vector<ShardMetrics> shard_metrics_;
  telemetry::Counter* failovers_ctr_ = nullptr;
  telemetry::Counter* batches_ctr_ = nullptr;
  telemetry::Counter* probes_ctr_ = nullptr;
  telemetry::Counter* checkpoints_ctr_ = nullptr;

  std::thread dispatcher_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  bool stopped_ = false;
  bool resumed_ = false;
  bool energy_published_ = false;
};

}  // namespace sei::serve
