// Fault-tolerant serving runtime for the SEI functional simulator.
//
// Wraps a SeiNetwork behind a bounded request queue served by worker
// threads. Each request carries an optional deadline enforced at two
// points: before evaluation (queue wait already blew the budget) and
// cooperatively inside the evaluation via exec::CancelToken, so a slow
// prediction is abandoned between stages instead of blocking the worker.
// Failures travel as sei::Result values — the runtime never throws for an
// expected outcome and never aborts the process.
//
// Health is watched by a canary sentinel (sentinel.hpp): every
// probe_every-th served request the worker also classifies a known-label
// probe, and a circuit breaker (breaker.hpp) trips when the windowed probe
// accuracy drops below the startup baseline. Recovery escalates through
// tiers — re-measure with backoff, remap-repair + threshold recalibration,
// ADC-path fallback (responses marked Degraded), explicit load shedding
// (Rejected) — and the breaker re-attempts repair periodically while
// degraded, so a transient or repairable fault heals without a restart.
//
// Durability: the runtime checkpoints network + counters every
// checkpoint_every served requests via serve/checkpoint (atomic rename +
// CRC), and start() resumes from the last durable checkpoint when one
// exists. With workers == 1 (the default) the resumed process replays the
// remaining request stream bit-identically.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "core/adc_network.hpp"
#include "core/sei_network.hpp"
#include "data/dataset.hpp"
#include "exec/cancel.hpp"
#include "quant/qnet.hpp"
#include "reliability/calibrate.hpp"
#include "serve/breaker.hpp"
#include "serve/checkpoint.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/sentinel.hpp"
#include "telemetry/alloc.hpp"
#include "telemetry/energy.hpp"
#include "telemetry/metrics.hpp"

namespace sei::serve {

enum class ResponseStatus {
  kOk,        // answered on the SEI path
  kDegraded,  // answered on the ADC fallback path (breaker tier 2)
  kRejected,  // no label: see Response::error
};

const char* to_string(ResponseStatus s);

struct Response {
  ResponseStatus status = ResponseStatus::kRejected;
  int label = -1;                          // kOk / kDegraded only
  ErrorCode error = ErrorCode::kInternal;  // kRejected only
  std::uint64_t sequence = 0;              // RNG-stream index used (if served)
  double latency_ms = 0.0;                 // submit → response
};

struct RuntimeConfig {
  int workers = 1;          // >1 keeps per-sequence purity, loses replay order
  int queue_capacity = 64;  // admission bound; overflow rejects kQueueFull
  std::chrono::milliseconds default_deadline{0};  // 0 = no deadline
  int checkpoint_every = 0;     // served requests between saves; 0 = off
  std::string checkpoint_path;  // required when checkpoint_every > 0
  CheckpointRetryPolicy checkpoint_retry{};  // transient-IO retry policy
  SentinelConfig sentinel{};
  BreakerConfig breaker{};
  reliability::CalibrationConfig calibration{};  // tier-1 recalibration
};

/// One breaker trip → recovery episode.
struct RecoveryRecord {
  std::uint64_t tripped_at_served = 0;
  std::uint64_t resolved_at_served = 0;  // closed OR parked in fallback/shed
  int tier_reached = 0;
  bool closed = false;  // true when the SEI path was restored
  double acc_before_pct = 0.0;
  double acc_after_pct = 0.0;
  double duration_ms = 0.0;
};

/// Cumulative metered energy since start(), split by evaluation path. Each
/// accumulator reproduces the static cost model exactly: images × the
/// per-picture arch::estimate_cost breakdown of that path's structure.
struct EnergySummary {
  telemetry::EnergyAccum sei;    // SEI-path requests (status kOk)
  telemetry::EnergyAccum adc;    // ADC-fallback requests (status kDegraded)
  telemetry::EnergyAccum probe;  // sentinel probes + recovery measurements
};

struct RuntimeStats {
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;  // popped off the queue (any outcome)
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rejected = 0;          // all rejection codes
  std::uint64_t queue_rejections = 0;  // kQueueFull at admission
  std::uint64_t deadline_misses = 0;   // kDeadlineExceeded (pre- or mid-eval)
  std::uint64_t shed = 0;              // kShedding
  std::uint64_t probes = 0;
  std::uint64_t checkpoints = 0;
  int breaker_trips = 0;
  double sentinel_baseline_pct = 0.0;
  double sentinel_window_pct = -1.0;
  // Zero-allocation contract (docs/plans.md §4): requests measured after
  // the warmup threshold, and the heap allocations observed across them.
  // Steady-state serving on a plan-bound context must keep
  // serve_request_allocs at 0; bench_serving gates it and CI enforces the
  // gate. Both stay 0 when the build lacks the counting shims
  // (telemetry::alloc_counting_available()).
  std::uint64_t alloc_measured_requests = 0;
  std::uint64_t serve_request_allocs = 0;
};

class ServingRuntime {
 public:
  /// `net` must outlive the runtime and stay externally untouched while it
  /// runs (the runtime owns all mutation: faults, repair, recalibration,
  /// checkpoint restore). `probes` feeds the sentinel; `calib` feeds tier-1
  /// recalibration. `fallback` (optional) enables the tier-2 ADC path.
  ServingRuntime(core::SeiNetwork& net, const quant::QNetwork& qnet,
                 const data::Dataset& probes, const data::Dataset& calib,
                 RuntimeConfig cfg, const core::AdcNetwork* fallback = nullptr);
  ~ServingRuntime();
  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// Resumes from the last durable checkpoint (if configured and present),
  /// measures the sentinel baseline, and launches the workers.
  void start();

  /// Graceful shutdown: stop admitting, drain the queue, write a final
  /// checkpoint, join the workers. Idempotent; also run by the destructor.
  void stop();

  /// True after start() until stop() begins.
  bool running() const { return running_.load(); }

  /// Enqueues one image. The future always completes — with a label or a
  /// structured rejection — and queue overflow / shutdown reject
  /// immediately rather than blocking the caller.
  std::future<Response> submit(std::span<const float> image);
  std::future<Response> submit(std::span<const float> image,
                               std::chrono::milliseconds deadline);

  /// Installs the scripted fault schedule (fired by served-request count).
  void set_fault_schedule(FaultSchedule schedule);

  RuntimeStats stats() const;
  /// Metered joules by path; stop() also publishes these to the global
  /// metrics registry under paths "sei" / "adc" / "probe".
  EnergySummary energy() const;
  std::vector<double> latencies_ms() const;
  std::vector<BreakerEvent> breaker_events() const;
  std::vector<RecoveryRecord> recoveries() const;
  RuntimeSnapshot snapshot() const;
  BreakerState breaker_state() const { return breaker_state_.load(); }
  double sentinel_baseline_pct() const;
  /// True when start() found and restored a durable checkpoint.
  bool resumed_from_checkpoint() const { return resumed_; }

 private:
  struct Request {
    std::vector<float> image;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;  // epoch 0 = none
    std::promise<Response> promise;
  };

  void worker_loop();
  void serve_one(Request& req, std::uint64_t sequence, core::EvalContext& ctx,
                 exec::CancelToken& token);
  void finish(Request& req, Response r);

  /// Post-request maintenance: fire due faults, run the sentinel probe,
  /// drive the breaker, checkpoint. Single-threaded via maint_mu_.
  void maintenance(std::uint64_t served, core::EvalContext& ctx);
  void run_probe(std::uint64_t served, core::EvalContext& ctx);
  /// Full probe-set accuracy in percent (maintenance RNG index space).
  double measure_probe_accuracy(core::EvalContext& ctx);
  /// The tiered recovery ladder; runs with maint_mu_ held.
  void run_recovery(std::uint64_t served, double window_acc,
                    core::EvalContext& ctx);
  /// Tier 1: remap every stage (repair hook re-runs) + recalibrate.
  bool attempt_repair(core::EvalContext& ctx);
  void write_checkpoint(std::uint64_t served);

  core::SeiNetwork& net_;
  const quant::QNetwork& qnet_;
  const data::Dataset& calib_;
  RuntimeConfig cfg_;
  const core::AdcNetwork* fallback_;

  mutable std::shared_mutex net_mu_;  // shared: predict; unique: mutate

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Request>> queue_;
  RuntimeSnapshot snap_;  // counters, guarded by queue_mu_
  bool accepting_ = false;
  bool stopping_ = false;

  mutable std::mutex maint_mu_;
  Sentinel sentinel_;
  CircuitBreaker breaker_;
  std::atomic<BreakerState> breaker_state_{BreakerState::kClosed};
  FaultSchedule schedule_;
  std::size_t next_fault_ = 0;
  std::uint64_t last_probe_served_ = 0;
  std::uint64_t last_checkpoint_served_ = 0;
  std::uint64_t last_reattempt_served_ = 0;
  std::uint64_t measure_serial_ = 0;
  core::EvalContext maint_ctx_;

  mutable std::mutex stats_mu_;
  RuntimeStats stats_;
  std::vector<double> latencies_ms_;
  std::vector<RecoveryRecord> recoveries_;
  EnergySummary energy_;           // guarded by stats_mu_
  bool energy_published_ = false;  // guarded by stats_mu_

  // Per-stage price lists (arch::make_energy_meter) for the two serving
  // paths; immutable after construction.
  telemetry::EnergyMeter sei_meter_;
  telemetry::EnergyMeter adc_meter_;

  // Cached global-registry metrics (stable addresses; registered once).
  telemetry::Histogram* latency_hist_ = nullptr;
  telemetry::Counter* req_ok_ = nullptr;
  telemetry::Counter* req_degraded_ = nullptr;
  telemetry::Counter* req_rejected_ = nullptr;
  telemetry::Counter* probes_ctr_ = nullptr;
  telemetry::Counter* checkpoints_ctr_ = nullptr;
  telemetry::Counter* breaker_open_ = nullptr;
  telemetry::Counter* breaker_closed_ = nullptr;
  telemetry::Counter* breaker_fallback_ = nullptr;
  telemetry::Counter* breaker_shedding_ = nullptr;

  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  bool resumed_ = false;
};

}  // namespace sei::serve
