#include "serve/sentinel.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sei::serve {

Sentinel::Sentinel(const data::Dataset& labeled, const SentinelConfig& cfg)
    : cfg_(cfg) {
  SEI_CHECK_MSG(cfg.probe_every > 0, "probe_every must be positive");
  SEI_CHECK_MSG(cfg.window > 0, "sentinel window must be positive");
  SEI_CHECK_MSG(labeled.size() > 0, "sentinel needs a labeled probe set");
  const int n = std::min(cfg.probe_count, labeled.size());
  SEI_CHECK_MSG(n > 0, "probe_count must be positive");
  per_image_ = labeled.images.numel() / static_cast<std::size_t>(labeled.size());
  images_.assign(labeled.images.data(),
                 labeled.images.data() + static_cast<std::size_t>(n) * per_image_);
  labels_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) labels_.push_back(labeled.labels[static_cast<std::size_t>(i)]);
}

std::span<const float> Sentinel::image(int probe) const {
  SEI_CHECK(probe >= 0 && probe < probe_count());
  return {images_.data() + static_cast<std::size_t>(probe) * per_image_,
          per_image_};
}

void Sentinel::record(bool correct) {
  outcomes_.push_back(correct ? 1 : 0);
  window_correct_ += correct ? 1 : 0;
  if (static_cast<int>(outcomes_.size()) > cfg_.window) {
    window_correct_ -= outcomes_.front();
    outcomes_.pop_front();
  }
}

double Sentinel::window_accuracy_pct() const {
  if (!ready()) return -1.0;
  return 100.0 * window_correct_ / static_cast<double>(outcomes_.size());
}

void Sentinel::reset_window() {
  outcomes_.clear();
  window_correct_ = 0;
}

}  // namespace sei::serve
