#include "sparsity/config.hpp"

#include "common/check.hpp"
#include "common/io.hpp"

namespace sei::sparsity {
namespace {

constexpr std::uint32_t kMagic = 0x53505253;  // "SPRS"
constexpr std::uint32_t kVersion = 1;

}  // namespace

void save_sparsity_config(const SparsityConfig& cfg, const std::string& path) {
  BinaryWriter w(path);
  w.write_u32(kMagic);
  w.write_u32(kVersion);
  w.write_string(cfg.network);
  w.write_i32_vec(cfg.bounds);
  w.write_f64(cfg.accuracy_margin_pct);
  w.write_f64(cfg.base_error_pct);
  w.write_f64(cfg.calib_error_pct);
  w.write_f64(cfg.skip_rate);
  w.write_i32(cfg.calib_images);
  w.commit();
}

SparsityConfig load_sparsity_config(const std::string& path) {
  BinaryReader r(path);
  r.verify_crc();
  SEI_CHECK_MSG(r.read_u32() == kMagic, "not a sparsity config: " + path);
  SEI_CHECK_MSG(r.read_u32() == kVersion,
                "unsupported sparsity config version: " + path);
  SparsityConfig cfg;
  cfg.network = r.read_string();
  cfg.bounds = r.read_i32_vec();
  cfg.accuracy_margin_pct = r.read_f64();
  cfg.base_error_pct = r.read_f64();
  cfg.calib_error_pct = r.read_f64();
  cfg.skip_rate = r.read_f64();
  cfg.calib_images = r.read_i32();
  return cfg;
}

}  // namespace sei::sparsity
