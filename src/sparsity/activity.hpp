// Runtime activation statistics for the sparsity engine (docs/sparsity.md).
//
// The SEI structure switches crossbar rows by their 1-bit inputs, grouped
// into 9-row sub-crossbar words (the paper's Table 1 "input data" unit,
// SeiNetwork::kWordRows): the rows a word actually charges per read is the
// popcount of its selected inputs. ActivityEstimator aggregates those
// counts per stage: how many (position, word) decisions ran, how many the
// skip predicate masked off, how many row-activations were driven versus
// the positions × rows the static accounting assumes, and the per-word
// popcount histogram (bins 0..9 — the runtime twin of Table 1's
// distribution of ones per input word).
//
// Estimation is a passive observation pass: attach the estimator's cells to
// an EvalContext and predictions are untouched — the same guarantee the
// energy meter gives. Aggregation over a dataset is deterministic at any
// thread count: per-chunk cells merge in ascending chunk order
// (docs/parallelism.md), and every count is an integer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "core/eval_context.hpp"
#include "data/dataset.hpp"

namespace sei::core {
class SeiNetwork;
}

namespace sei::sparsity {

/// One stage's activity cell — the exact struct the engines fill.
using StageActivity = core::EvalContext::StageActivity;

/// Per-stage activity accumulator. Cells are plain integer counters, so
/// merging estimators is exact and order-insensitive; the dataset pass
/// below still merges in fixed chunk order to keep the stronger
/// "bit-identical at any thread count" contract uniform across the repo.
class ActivityEstimator {
 public:
  ActivityEstimator() = default;
  explicit ActivityEstimator(int stage_count)
      : cells_(static_cast<std::size_t>(stage_count)) {}

  int stage_count() const { return static_cast<int>(cells_.size()); }
  StageActivity& stage(int i) { return cells_.at(static_cast<std::size_t>(i)); }
  const StageActivity& stage(int i) const {
    return cells_.at(static_cast<std::size_t>(i));
  }

  /// Raw cell array for EvalContext::activity (one cell per stage).
  StageActivity* cells() { return cells_.data(); }

  void reset() {
    for (StageActivity& c : cells_) c = StageActivity{};
  }

  void merge(const ActivityEstimator& o) {
    if (cells_.empty()) cells_.resize(o.cells_.size());
    SEI_CHECK(cells_.size() == o.cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i)
      cells_[i].merge(o.cells_[i]);
  }

  // Aggregates over every stage that recorded data (stage 0 and non-SEI
  // stages never do — their cells stay zero and drop out of the ratios).

  /// Fraction of (position, input word) sub-crossbar decisions the skip
  /// predicate masked off. The headline "skip rate".
  double skip_rate() const;

  /// Sum of selected-input counts over positions × rows: the fraction of
  /// nominal row-activations whose transmission gates actually close.
  double row_activity() const;

  /// Fraction of nominal row-activations charged after skipping (masked
  /// words' active rows are not driven — at bound 0 this equals
  /// row_activity, since only all-zero words mask).
  double charged_fraction() const;

 private:
  std::vector<StageActivity> cells_;
};

/// Runs `net` over the first `max_images` of `d` (< 0: all) and returns the
/// accumulated per-stage activity. Requires net.sparsity_enabled() — the
/// engines only track activity when the skip predicate is armed (bound 0
/// keeps predictions bit-identical, so estimation at bound 0 observes the
/// dense network). Deterministic at any thread count.
ActivityEstimator estimate_activity(const core::SeiNetwork& net,
                                    const data::Dataset& d,
                                    int max_images = -1);

}  // namespace sei::sparsity
