#include "sparsity/calibrate.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/sei_network.hpp"
#include "sparsity/activity.hpp"

namespace sei::sparsity {

SparsityConfig calibrate(core::SeiNetwork& net, const data::Dataset& d,
                         const std::string& network,
                         const CalibrationOptions& opt) {
  const int stages = net.stage_count();
  SEI_CHECK(stages >= 2);
  SEI_CHECK(!opt.ladder.empty());

  // Dense baseline at all-zero bounds: predictions are bit-identical to
  // the pre-sparsity network (only all-zero input words mask), so this IS
  // the dense error — while already exercising the sparsity code path the
  // calibrated bounds will run on.
  std::vector<int> bounds(static_cast<std::size_t>(stages), 0);
  net.set_skip_bounds(bounds);
  const double base_error = net.error_rate(d, opt.max_images);
  const double budget = base_error + opt.accuracy_margin_pct;

  // Greedy per-stage sweep, front to back: earlier stages see the most
  // positions (their skips save the most energy) and their bit flips
  // propagate to everything downstream, so fixing them first lets later
  // stages adapt to the accumulated perturbation instead of overshooting.
  for (int s = 1; s < stages; ++s) {
    int best = 0;
    for (const int cand : opt.ladder) {
      if (cand <= best) continue;
      bounds[static_cast<std::size_t>(s)] = cand;
      net.set_skip_bounds(bounds);
      if (net.error_rate(d, opt.max_images) > budget) break;
      best = cand;
    }
    bounds[static_cast<std::size_t>(s)] = best;
  }

  net.set_skip_bounds(bounds);
  SparsityConfig cfg;
  cfg.bounds = bounds;
  cfg.network = network;
  cfg.accuracy_margin_pct = opt.accuracy_margin_pct;
  cfg.base_error_pct = base_error;
  cfg.calib_error_pct = net.error_rate(d, opt.max_images);
  cfg.skip_rate = estimate_activity(net, d, opt.max_images).skip_rate();
  cfg.calib_images =
      opt.max_images < 0 ? d.size() : std::min(opt.max_images, d.size());
  return cfg;
}

}  // namespace sei::sparsity
