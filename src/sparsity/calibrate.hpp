// Offline calibration of the per-stage skip bounds (docs/sparsity.md §3).
//
// Mirrors the paper's Algorithm-1 recipe of sweeping a per-stage knob and
// keeping the most aggressive setting that preserves accuracy on a held
// calibration set: for each SEI stage in order, the bound walks up a ladder
// of per-word popcount thresholds (an input word has at most
// SeiNetwork::kWordRows = 9 selected rows) and stops just before the
// calibration error exceeds the dense baseline by more than the configured
// margin. Greedy and deterministic — error_rate
// is bit-identical at any thread count, so two calibration runs with
// different pool sizes derive byte-identical bounds (pinned by
// tests/test_sparsity.cpp).
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "sparsity/config.hpp"

namespace sei::core {
class SeiNetwork;
}

namespace sei::sparsity {

struct CalibrationOptions {
  /// Calibration subset: the first `max_images` of the dataset (< 0: all).
  int max_images = 512;
  /// Allowed calibration-error increase over the dense baseline, in
  /// percentage points.
  double accuracy_margin_pct = 0.5;
  /// Candidate per-word popcount bounds per stage, tried in ascending
  /// order (a 9-row word masks when its selected-input count is <= bound,
  /// so 8 masks everything but saturated words). The sweep stops at the
  /// first candidate that breaks the margin (bound stays at the last
  /// passing value; 0 — mask only idle words — is always safe).
  std::vector<int> ladder = {1, 2, 3, 4, 5, 6, 7, 8};
};

/// Derives skip bounds for `net` on calibration data `d` and leaves them
/// applied (net.set_skip_bounds). The returned config carries the bounds
/// plus provenance: baseline error, calibrated error, word skip rate on
/// the calibration subset. `network` is recorded verbatim.
SparsityConfig calibrate(core::SeiNetwork& net, const data::Dataset& d,
                         const std::string& network,
                         const CalibrationOptions& opt = {});

}  // namespace sei::sparsity
