#include "sparsity/activity.hpp"

#include <span>

#include "core/sei_network.hpp"
#include "exec/thread_pool.hpp"

namespace sei::sparsity {

double ActivityEstimator::skip_rate() const {
  std::int64_t words = 0, skipped = 0;
  for (const StageActivity& c : cells_) {
    words += c.words;
    skipped += c.words_skipped;
  }
  return words > 0 ? static_cast<double>(skipped) / words : 0.0;
}

double ActivityEstimator::row_activity() const {
  std::int64_t nominal = 0, active = 0;
  for (const StageActivity& c : cells_) {
    nominal += c.rows_nominal;
    active += c.rows_active;
  }
  return nominal > 0 ? static_cast<double>(active) / nominal : 0.0;
}

double ActivityEstimator::charged_fraction() const {
  std::int64_t nominal = 0, charged = 0;
  for (const StageActivity& c : cells_) {
    nominal += c.rows_nominal;
    charged += c.rows_charged;
  }
  return nominal > 0 ? static_cast<double>(charged) / nominal : 0.0;
}

ActivityEstimator estimate_activity(const core::SeiNetwork& net,
                                    const data::Dataset& d, int max_images) {
  SEI_CHECK_MSG(net.sparsity_enabled(),
                "estimate_activity needs skip bounds set (use all-zero "
                "bounds to observe the dense network)");
  const int n = max_images < 0 ? d.size() : std::min(max_images, d.size());
  SEI_CHECK(n > 0);
  const std::size_t per_image =
      d.images.numel() / static_cast<std::size_t>(d.size());
  const int stages = net.stage_count();
  return exec::parallel_reduce<ActivityEstimator>(
      n, exec::kEvalGrain, ActivityEstimator(stages),
      [&](int lo, int hi) {
        ActivityEstimator part(stages);
        core::EvalContext ctx;
        ctx.activity = part.cells();
        for (int i = lo; i < hi; ++i) {
          const std::span<const float> img{
              d.images.data() + static_cast<std::size_t>(i) * per_image,
              per_image};
          net.predict(img, ctx, i);
        }
        return part;
      },
      [](ActivityEstimator acc, const ActivityEstimator& part) {
        acc.merge(part);
        return acc;
      });
}

}  // namespace sei::sparsity
