// Calibrated sparsity configuration: the per-stage skip bounds plus the
// provenance needed to audit them (margin, calibration subset size, the
// error rates observed). Serialized through common/io's CRC-trailed atomic
// writer, so a torn or bit-flipped file loads as CheckError — callers treat
// that as "re-calibrate", never as usable bounds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sei::sparsity {

struct SparsityConfig {
  /// Per-stage skip bounds for SeiNetwork::set_skip_bounds. Entry 0 is
  /// carried for alignment but ignored by the engine (stage 0 is
  /// DAC-driven — no transmission gates to switch off).
  std::vector<int> bounds;

  // Calibration provenance.
  std::string network;              // workload name the bounds were fit on
  double accuracy_margin_pct = 0.0; // allowed error increase (points)
  double base_error_pct = 0.0;      // calib-set error at all-zero bounds
  double calib_error_pct = 0.0;     // calib-set error at these bounds
  double skip_rate = 0.0;           // input-word skip rate on the calib set
  std::int32_t calib_images = 0;    // calibration subset size
};

/// Writes `cfg` to `path` (CRC trailer, fsync + atomic rename).
void save_sparsity_config(const SparsityConfig& cfg, const std::string& path);

/// Loads a config saved by save_sparsity_config. Throws CheckError on
/// missing file, bad magic/version, or CRC mismatch.
SparsityConfig load_sparsity_config(const std::string& path);

}  // namespace sei::sparsity
