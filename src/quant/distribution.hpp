// Intermediate-data distribution analysis (reproduces Table 1).
//
// Runs the float network over a dataset, captures the post-ReLU output of
// every Conv stage, normalizes by the layer's maximum, and histograms into
// the paper's bins [0, 1/16), [1/16, 1/8), [1/8, 1/4), [1/4, 1].
#pragma once

#include <string>
#include <vector>

#include "nn/network.hpp"

namespace sei::quant {

struct LayerDistribution {
  std::string layer_name;
  double max_value = 0.0;            // normalization constant
  std::size_t samples = 0;           // activations histogrammed
  std::vector<double> fractions;     // one per bin, sums to ~1
};

struct DistributionReport {
  std::vector<double> bin_edges;     // normalized-domain edges
  std::vector<LayerDistribution> layers;
  LayerDistribution all;             // pooled over all conv layers
};

/// Analyzes every ReLU-after-Conv output in `net` over `images`.
/// Two passes: max, then histogram. `batch` bounds peak memory.
DistributionReport analyze_conv_distribution(nn::Network& net,
                                             const nn::Tensor& images,
                                             int batch = 128);

}  // namespace sei::quant
