// Algorithm 1 of the paper: layer-by-layer greedy 1-bit quantization.
//
// For each hidden stage L (front layers already binarized with their chosen
// thresholds):
//   1. compute stage L's pre-threshold outputs over the training images;
//   2. re-scale W_L (and b_L) by the maximum output so outputs lie in [0,1];
//   3. brute-force search the threshold over [thres_min, thres_max] that
//      maximizes training accuracy, evaluating the not-yet-quantized deeper
//      layers in float;
//   4. fix the threshold and move to the next layer.
//
// The search caches stage L's outputs so each candidate threshold only pays
// for binarize + pool + the float tail, and the float tail runs batched.
#pragma once

#include "data/dataset.hpp"
#include "quant/qnet.hpp"

namespace sei::quant {

struct SearchConfig {
  double thres_min = 0.0;
  // The paper searches [0, 0.1]; our synthetic activations are slightly less
  // zero-dominated than MNIST's, so the default grid extends further.
  double thres_max = 0.4;
  double step = 0.005;
  int max_search_images = 5000;  // subset of the training set used to search
  int tail_batch = 256;          // float-tail evaluation batch size

  // Drive-level calibration (extension beyond the paper; see DESIGN.md):
  // the 1-bit input drive voltage of each layer is set to the mean
  // supra-threshold activation instead of the layer maximum, which keeps
  // the weight-vs-bias ratio of the consuming layer at its trained value.
  // Folded into the next layer's weights, so it is free in hardware.
  bool calibrate_drive = true;

  bool verbose = false;
};

/// Record of one layer's search (threshold → training accuracy curve).
struct LayerSearchTrace {
  int stage = 0;
  float scale = 1.0f;              // max output the weights were divided by
  float best_threshold = 0.0f;
  float drive_level = 1.0f;        // calibrated 1-bit drive amplitude
  double best_accuracy_pct = 0.0;  // training accuracy at the best threshold
  std::vector<std::pair<float, double>> curve;
};

struct QuantizationResult {
  QNetwork qnet;  // rescaled weights + searched thresholds
  std::vector<LayerSearchTrace> traces;
};

/// Inclusive brute-force candidate grid [lo, hi] in steps of `step` — the
/// search lattice of Algorithm 1, also reused by the reliability
/// subsystem's post-repair threshold recalibration.
std::vector<float> threshold_grid(double lo, double hi, double step);

/// Runs Algorithm 1. Mutates `float_net`'s hidden weights in place by the
/// re-scaling step (a monotone transformation: its float classification is
/// unchanged), so the same network object can still serve as the "before
/// quantization" baseline.
QuantizationResult quantize_network(nn::Network& float_net,
                                    const Topology& topo,
                                    const data::Dataset& train,
                                    const SearchConfig& cfg = {});

}  // namespace sei::quant
