// Fixed-point weight quantization and the high/low-nibble decomposition used
// by the RRAM mapping (8-bit weights on 4-bit devices, Section 4 of the
// paper).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace sei::quant {

/// Symmetric signed fixed-point matrix: w_float ≈ value · scale,
/// |value| ≤ 2^(bits-1) − 1.
struct QuantizedMatrix {
  int rows = 0;
  int cols = 0;
  int bits = 8;
  float scale = 1.0f;
  std::vector<std::int16_t> values;  // row-major rows×cols

  std::int16_t at(int r, int c) const {
    return values[static_cast<std::size_t>(r) * cols + c];
  }
};

/// Round-to-nearest symmetric quantization of a [rows × cols] matrix.
QuantizedMatrix quantize_weights(const nn::Tensor& w, int bits = 8);

/// Reconstructs the float matrix (for error analysis and tests).
nn::Tensor dequantize(const QuantizedMatrix& q);

/// Splits a non-negative magnitude into high/low fields of `device_bits`
/// each: magnitude = hi · 2^device_bits + lo. For 8-bit weights on 4-bit
/// devices: hi ∈ [0,7], lo ∈ [0,15], port coefficients {2^4, 1}.
struct NibblePair {
  int hi = 0;
  int lo = 0;
};
NibblePair split_magnitude(int magnitude, int device_bits);

/// Number of cells a signed `weight_bits` weight occupies on
/// `device_bits` devices when mapped SEI-style into one crossbar column
/// (sign handled by the extra port, so: ceil((weight_bits-1)/device_bits)
/// cells per polarity × 2 polarities).
int sei_cells_per_weight(int weight_bits, int device_bits);

/// Crossbar count for the ADC-merging baseline: one crossbar per
/// (bit-slice × polarity) combination.
int baseline_crossbars_per_matrix(int weight_bits, int device_bits);

}  // namespace sei::quant
