// Quantized-network representation shared by the software quantization path
// (Table 3) and the hardware SEI simulation (Tables 4/5).
//
// A QNetwork is the paper's Equ. (4) pipeline: each hidden stage computes
//   out_i = [ Σ_{input_j = 1} w_ij + b_i > threshold ]
// with max-pooling degenerated to a logical OR of bits; the final classifier
// stage keeps its analog output and is read out by argmax (winner-take-all).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "nn/network.hpp"
#include "nn/tensor.hpp"

namespace sei::quant {

/// Static description of one crossbar-mapped stage of a Table 2 network.
struct StageSpec {
  enum class Kind { Conv, Fc };
  Kind kind = Kind::Conv;
  int kernel = 0;        // conv: spatial kernel size S
  int out_channels = 0;  // conv kernels or FC outputs
  bool pool_after = false;
};

/// Network topology: stage list plus the input geometry.
struct Topology {
  std::string name;
  std::vector<StageSpec> stages;
  int input_size = 28;
  int input_channels = 1;
};

/// Per-stage geometry resolved against the input size.
struct StageGeometry {
  StageSpec::Kind kind = StageSpec::Kind::Conv;
  int kernel = 0;
  int in_h = 0, in_w = 0, in_ch = 0;
  int out_h = 0, out_w = 0;      // pre-pool spatial size (1×1 for FC)
  int pooled_h = 0, pooled_w = 0;  // post-pool size (== out for no pool)
  int rows = 0, cols = 0;          // crossbar matrix dims
  bool pool_after = false;

  /// Crossbar activations needed per picture (one per output position).
  long long activations() const {
    return static_cast<long long>(out_h) * out_w;
  }
  /// Multiply–accumulate count per picture for this stage.
  long long macs() const {
    return activations() * static_cast<long long>(rows) * cols;
  }
};

/// Resolves all stage geometries; throws if a pool stage has odd input.
std::vector<StageGeometry> resolve_geometry(const Topology& topo);

/// One quantized stage: rescaled float weights + binarization threshold.
struct QLayer {
  StageGeometry geom;
  nn::Tensor weight;     // [rows × cols]
  nn::Tensor bias;       // [cols]
  float threshold = 0.0f;  // ignored when binarize == false
  bool binarize = true;    // false only for the final classifier stage
};

/// Binary activation map for one stage (pooled output), bit per element.
using BitMap = std::vector<std::uint8_t>;

class QNetwork {
 public:
  std::vector<QLayer> layers;
  std::string name;

  /// Classifies one image (row-major in_h×in_w×in_ch floats).
  int predict(std::span<const float> image) const;

  /// Classification error in percent over a dataset.
  double error_rate(const data::Dataset& d) const;

  /// Computes the binary (post-threshold, post-OR-pool) activations of
  /// stage `stage` for one image — input for stage+1. Used by the threshold
  /// search and the split experiments to cache intermediate bits.
  BitMap binary_activations(std::span<const float> image, int stage) const;

  /// Raw pre-threshold column sums of the final stage (classifier scores).
  std::vector<float> final_scores(std::span<const float> image) const;
};

/// Evaluates one stage given its input.
/// For stage 0 the input is the float image; hidden stages take bits.
/// `out` receives the pre-threshold sums, [out_h*out_w × cols] row-major.
void eval_stage_float_input(const QLayer& l, std::span<const float> input,
                            std::vector<float>& out);
void eval_stage_binary_input(const QLayer& l, const BitMap& input,
                             std::vector<float>& out);

/// Binarize pre-threshold sums at l.threshold, then 2×2 OR-pool if requested.
BitMap binarize_and_pool(const QLayer& l, std::span<const float> sums);

/// Same, at an explicit threshold — lets sweeps evaluate candidate
/// thresholds concurrently without mutating the layer.
BitMap binarize_and_pool(const QLayer& l, std::span<const float> sums,
                         float threshold);

/// Builds a QNetwork by copying weights/biases out of a trained float
/// network whose MatrixLayer order matches `topo`'s stage order.
/// Thresholds are zero-initialized (fill via threshold search).
QNetwork build_qnetwork(nn::Network& float_net, const Topology& topo);

}  // namespace sei::quant
