#include "quant/distribution.hpp"

#include <algorithm>

#include "common/stats.hpp"
#include "nn/conv2d.hpp"
#include "nn/relu.hpp"

namespace sei::quant {

namespace {

/// Indices of ReLU layers directly following a Conv2D.
std::vector<std::size_t> conv_relu_indices(nn::Network& net) {
  std::vector<std::size_t> out;
  for (std::size_t i = 1; i < net.size(); ++i) {
    if (dynamic_cast<nn::ReLU*>(&net.layer(i)) &&
        dynamic_cast<nn::Conv2D*>(&net.layer(i - 1)))
      out.push_back(i);
  }
  return out;
}

}  // namespace

DistributionReport analyze_conv_distribution(nn::Network& net,
                                             const nn::Tensor& images,
                                             int batch) {
  const auto relu_idx = conv_relu_indices(net);
  SEI_CHECK_MSG(!relu_idx.empty(), "network has no conv+relu stages");
  const int n = images.dim(0);

  DistributionReport report;
  report.bin_edges = {0.0, 1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0};

  // Pass 1: per-layer maxima.
  std::vector<float> maxima(relu_idx.size(), 0.0f);
  for (int begin = 0; begin < n; begin += batch) {
    const int end = std::min(n, begin + batch);
    nn::Tensor x = nn::Network::slice_batch(images, begin, end);
    std::size_t li = 0;
    std::size_t prev = 0;
    for (std::size_t target : relu_idx) {
      x = net.forward_range(x, prev, target + 1, false);
      maxima[li] = std::max(maxima[li], x.max());
      prev = target + 1;
      ++li;
    }
  }

  // Pass 2: histograms of normalized activations.
  std::vector<EdgeHistogram> hists;
  hists.reserve(relu_idx.size());
  for (std::size_t i = 0; i < relu_idx.size(); ++i)
    hists.emplace_back(report.bin_edges);
  EdgeHistogram all_hist(report.bin_edges);

  for (int begin = 0; begin < n; begin += batch) {
    const int end = std::min(n, begin + batch);
    nn::Tensor x = nn::Network::slice_batch(images, begin, end);
    std::size_t li = 0;
    std::size_t prev = 0;
    for (std::size_t target : relu_idx) {
      x = net.forward_range(x, prev, target + 1, false);
      const double inv =
          maxima[li] > 0.0f ? 1.0 / static_cast<double>(maxima[li]) : 0.0;
      for (float v : x.flat()) {
        const double norm = static_cast<double>(v) * inv;
        hists[li].add(norm);
        all_hist.add(norm);
      }
      prev = target + 1;
      ++li;
    }
  }

  auto to_layer = [&](const EdgeHistogram& h, std::string name,
                      double max_value) {
    LayerDistribution d;
    d.layer_name = std::move(name);
    d.max_value = max_value;
    d.samples = h.total();
    for (std::size_t b = 0; b < h.bins(); ++b)
      d.fractions.push_back(h.fraction(b));
    return d;
  };

  double global_max = 0.0;
  for (std::size_t i = 0; i < relu_idx.size(); ++i) {
    report.layers.push_back(to_layer(
        hists[i], "conv layer " + std::to_string(i + 1), maxima[i]));
    global_max = std::max(global_max, static_cast<double>(maxima[i]));
  }
  report.all = to_layer(all_hist, "all layers", global_max);
  return report;
}

}  // namespace sei::quant
