#include "quant/qnet.hpp"

#include <algorithm>
#include <cstring>

namespace sei::quant {

std::vector<StageGeometry> resolve_geometry(const Topology& topo) {
  SEI_CHECK_MSG(!topo.stages.empty(), "topology has no stages");
  std::vector<StageGeometry> out;
  int h = topo.input_size, w = topo.input_size, c = topo.input_channels;
  for (const StageSpec& s : topo.stages) {
    StageGeometry g;
    g.kind = s.kind;
    g.in_h = h;
    g.in_w = w;
    g.in_ch = c;
    g.pool_after = s.pool_after;
    if (s.kind == StageSpec::Kind::Conv) {
      SEI_CHECK_MSG(s.kernel >= 1 && h >= s.kernel && w >= s.kernel,
                    "conv kernel larger than input");
      g.kernel = s.kernel;
      g.out_h = h - s.kernel + 1;
      g.out_w = w - s.kernel + 1;
      g.rows = s.kernel * s.kernel * c;
      g.cols = s.out_channels;
    } else {
      SEI_CHECK_MSG(!s.pool_after, "pooling after FC is not supported");
      g.kernel = 0;
      g.out_h = 1;
      g.out_w = 1;
      g.rows = h * w * c;
      g.cols = s.out_channels;
    }
    g.pooled_h = s.pool_after ? g.out_h / 2 : g.out_h;
    g.pooled_w = s.pool_after ? g.out_w / 2 : g.out_w;
    SEI_CHECK_MSG(g.pooled_h >= 1 && g.pooled_w >= 1, "stage output vanished");
    out.push_back(g);
    if (s.kind == StageSpec::Kind::Conv) {
      h = g.pooled_h;
      w = g.pooled_w;
      c = g.cols;
    } else {
      h = 1;
      w = g.cols;
      c = 1;
    }
  }
  return out;
}

void eval_stage_float_input(const QLayer& l, std::span<const float> input,
                            std::vector<float>& out) {
  const StageGeometry& g = l.geom;
  SEI_CHECK(input.size() ==
            static_cast<std::size_t>(g.in_h) * g.in_w * g.in_ch);
  const std::size_t positions = static_cast<std::size_t>(g.out_h) * g.out_w;
  out.assign(positions * g.cols, 0.0f);
  const float* wm = l.weight.data();
  const float* bias = l.bias.data();
  const int cols = g.cols;

  if (g.kind == StageSpec::Kind::Fc) {
    float* row = out.data();
    for (int c = 0; c < cols; ++c) row[c] = bias[c];
    for (int r = 0; r < g.rows; ++r) {
      const float v = input[static_cast<std::size_t>(r)];
      if (v == 0.0f) continue;
      const float* wrow = wm + static_cast<std::size_t>(r) * cols;
      for (int c = 0; c < cols; ++c) row[c] += v * wrow[c];
    }
    return;
  }

  const int k = g.kernel, ch = g.in_ch, iw = g.in_w;
  float* orow = out.data();
  for (int y = 0; y < g.out_h; ++y) {
    for (int x = 0; x < g.out_w; ++x, orow += cols) {
      for (int c = 0; c < cols; ++c) orow[c] = bias[c];
      int r = 0;
      for (int di = 0; di < k; ++di) {
        const float* in_px =
            input.data() + (static_cast<std::size_t>(y + di) * iw + x) * ch;
        for (int t = 0; t < k * ch; ++t, ++r) {
          const float v = in_px[t];
          if (v == 0.0f) continue;
          const float* wrow = wm + static_cast<std::size_t>(r) * cols;
          for (int c = 0; c < cols; ++c) orow[c] += v * wrow[c];
        }
      }
    }
  }
}

void eval_stage_binary_input(const QLayer& l, const BitMap& input,
                             std::vector<float>& out) {
  const StageGeometry& g = l.geom;
  SEI_CHECK(input.size() ==
            static_cast<std::size_t>(g.in_h) * g.in_w * g.in_ch);
  const std::size_t positions = static_cast<std::size_t>(g.out_h) * g.out_w;
  out.assign(positions * g.cols, 0.0f);
  const float* wm = l.weight.data();
  const float* bias = l.bias.data();
  const int cols = g.cols;

  if (g.kind == StageSpec::Kind::Fc) {
    float* row = out.data();
    for (int c = 0; c < cols; ++c) row[c] = bias[c];
    for (int r = 0; r < g.rows; ++r) {
      if (!input[static_cast<std::size_t>(r)]) continue;
      const float* wrow = wm + static_cast<std::size_t>(r) * cols;
      for (int c = 0; c < cols; ++c) row[c] += wrow[c];
    }
    return;
  }

  const int k = g.kernel, ch = g.in_ch, iw = g.in_w;
  float* orow = out.data();
  for (int y = 0; y < g.out_h; ++y) {
    for (int x = 0; x < g.out_w; ++x, orow += cols) {
      for (int c = 0; c < cols; ++c) orow[c] = bias[c];
      int r = 0;
      for (int di = 0; di < k; ++di) {
        const std::uint8_t* in_px =
            input.data() + (static_cast<std::size_t>(y + di) * iw + x) * ch;
        for (int t = 0; t < k * ch; ++t, ++r) {
          if (!in_px[t]) continue;
          const float* wrow = wm + static_cast<std::size_t>(r) * cols;
          for (int c = 0; c < cols; ++c) orow[c] += wrow[c];
        }
      }
    }
  }
}

BitMap binarize_and_pool(const QLayer& l, std::span<const float> sums) {
  return binarize_and_pool(l, sums, l.threshold);
}

BitMap binarize_and_pool(const QLayer& l, std::span<const float> sums,
                         float threshold) {
  const StageGeometry& g = l.geom;
  const std::size_t positions = static_cast<std::size_t>(g.out_h) * g.out_w;
  SEI_CHECK(sums.size() == positions * static_cast<std::size_t>(g.cols));
  const float t = threshold;

  if (!g.pool_after) {
    BitMap bits(sums.size());
    for (std::size_t i = 0; i < sums.size(); ++i)
      bits[i] = sums[i] > t ? 1 : 0;
    return bits;
  }

  // Binarize then 2×2 OR-pool in one pass. Equivalent to thresholding the
  // max (the paper's observation that pooling degenerates to OR).
  const int ph = g.pooled_h, pw = g.pooled_w, cols = g.cols, ow = g.out_w;
  BitMap bits(static_cast<std::size_t>(ph) * pw * cols, 0);
  for (int y = 0; y < ph; ++y) {
    for (int x = 0; x < pw; ++x) {
      std::uint8_t* opx =
          bits.data() + (static_cast<std::size_t>(y) * pw + x) * cols;
      for (int dy = 0; dy < 2; ++dy) {
        const float* ipx =
            sums.data() +
            (static_cast<std::size_t>(2 * y + dy) * ow + 2 * x) * cols;
        for (int c = 0; c < cols; ++c) {
          if (ipx[c] > t || ipx[cols + c] > t) opx[c] = 1;
        }
      }
    }
  }
  return bits;
}

int QNetwork::predict(std::span<const float> image) const {
  const std::vector<float> scores = final_scores(image);
  return static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

std::vector<float> QNetwork::final_scores(std::span<const float> image) const {
  SEI_CHECK(!layers.empty());
  std::vector<float> sums;
  BitMap bits;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const QLayer& l = layers[i];
    if (i == 0)
      eval_stage_float_input(l, image, sums);
    else
      eval_stage_binary_input(l, bits, sums);
    if (i + 1 == layers.size()) {
      SEI_CHECK_MSG(!l.binarize, "final stage must not be binarized");
      return sums;
    }
    SEI_CHECK_MSG(l.binarize, "hidden stage must be binarized");
    bits = binarize_and_pool(l, sums);
  }
  return sums;  // unreachable
}

BitMap QNetwork::binary_activations(std::span<const float> image,
                                    int stage) const {
  SEI_CHECK(stage >= 0 && stage < static_cast<int>(layers.size()));
  std::vector<float> sums;
  BitMap bits;
  for (int i = 0; i <= stage; ++i) {
    const QLayer& l = layers[static_cast<std::size_t>(i)];
    if (i == 0)
      eval_stage_float_input(l, image, sums);
    else
      eval_stage_binary_input(l, bits, sums);
    SEI_CHECK_MSG(l.binarize, "binary_activations beyond binarized stages");
    bits = binarize_and_pool(l, sums);
  }
  return bits;
}

double QNetwork::error_rate(const data::Dataset& d) const {
  const int n = d.size();
  SEI_CHECK(n > 0);
  const std::size_t per_image =
      d.images.numel() / static_cast<std::size_t>(n);
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    const std::span<const float> img{
        d.images.data() + static_cast<std::size_t>(i) * per_image, per_image};
    if (predict(img) == d.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return 100.0 * (1.0 - static_cast<double>(correct) / n);
}

QNetwork build_qnetwork(nn::Network& float_net, const Topology& topo) {
  QNetwork q;
  q.name = topo.name;
  const auto geoms = resolve_geometry(topo);
  auto mats = float_net.matrix_layers();
  SEI_CHECK_MSG(mats.size() == geoms.size(),
                "float network has " << mats.size()
                                     << " matrix layers, topology expects "
                                     << geoms.size());
  for (std::size_t i = 0; i < geoms.size(); ++i) {
    SEI_CHECK_MSG(mats[i]->matrix_rows() == geoms[i].rows &&
                      mats[i]->matrix_cols() == geoms[i].cols,
                  "stage " << i << " matrix shape mismatch");
    QLayer l;
    l.geom = geoms[i];
    l.weight = mats[i]->weight_matrix();
    l.bias = mats[i]->bias();
    l.binarize = i + 1 != geoms.size();
    q.layers.push_back(std::move(l));
  }
  return q;
}

}  // namespace sei::quant
