#include "quant/bitpack.hpp"

#include <bit>

namespace sei::quant {

void pack_bits(const BitMap& in, PackedBits& out) {
  out.reset(in.size());
  for (std::size_t i = 0; i < in.size(); ++i)
    if (in[i])
      out.words[i >> 6] |= std::uint64_t{1} << (i & 63);
}

PackedBits pack_bits(const BitMap& in) {
  PackedBits p;
  pack_bits(in, p);
  return p;
}

void unpack_bits(const PackedBits& in, BitMap& out) {
  out.assign(in.bits, 0);
  for (std::size_t w = 0; w < in.words.size(); ++w) {
    std::uint64_t word = in.words[w];
    while (word) {
      const int b = std::countr_zero(word);
      out[w * 64 + static_cast<std::size_t>(b)] = 1;
      word &= word - 1;
    }
  }
}

BitMap unpack_bits(const PackedBits& in) {
  BitMap b;
  unpack_bits(in, b);
  return b;
}

}  // namespace sei::quant
