#include "quant/threshold_search.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "exec/thread_pool.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "nn/softmax.hpp"

namespace sei::quant {

namespace {

/// Index of the first float-net layer *after* the conv/relu/pool group of
/// the matrix layer at `mat_index` — where the float tail evaluation starts.
std::size_t tail_begin_index(nn::Network& net, std::size_t mat_index,
                             bool pool_after) {
  std::size_t j = mat_index + 1;
  if (j < net.size() && dynamic_cast<nn::ReLU*>(&net.layer(j))) ++j;
  if (pool_after) {
    SEI_CHECK_MSG(j < net.size() &&
                      dynamic_cast<nn::MaxPool2x2*>(&net.layer(j)),
                  "topology says pool_after but float net has no pool here");
    ++j;
  }
  return j;
}

void rescale_matrix_layer(nn::MatrixLayer& layer, float inv_scale) {
  layer.weight_matrix().scale(inv_scale);
  layer.bias().scale(inv_scale);
}

}  // namespace

std::vector<float> threshold_grid(double lo, double hi, double step) {
  SEI_CHECK_MSG(step > 0.0, "threshold grid step must be positive");
  SEI_CHECK_MSG(hi >= lo, "threshold grid range is empty");
  std::vector<float> grid;
  grid.reserve(static_cast<std::size_t>((hi - lo) / step) + 2);
  for (double t = lo; t <= hi + 1e-12; t += step)
    grid.push_back(static_cast<float>(t));
  return grid;
}

QuantizationResult quantize_network(nn::Network& float_net,
                                    const Topology& topo,
                                    const data::Dataset& train,
                                    const SearchConfig& cfg) {
  SEI_CHECK(cfg.step > 0 && cfg.thres_max >= cfg.thres_min);
  QuantizationResult result;
  result.qnet = build_qnetwork(float_net, topo);
  QNetwork& qnet = result.qnet;
  const int stages = static_cast<int>(qnet.layers.size());
  SEI_CHECK_MSG(stages >= 2, "need at least one hidden stage + classifier");

  const int n = std::min(train.size(), cfg.max_search_images);
  SEI_CHECK(n > 0);
  const std::size_t per_image =
      train.images.numel() / static_cast<std::size_t>(train.size());

  auto mats = float_net.matrix_layers();
  const auto mat_idx = float_net.matrix_layer_indices();

  // Cached pre-threshold outputs of the current stage, per image.
  std::vector<std::vector<float>> sums(static_cast<std::size_t>(n));
  // Cached binary inputs of the current stage (empty for stage 0).
  std::vector<BitMap> bits(static_cast<std::size_t>(n));

  for (int L = 0; L + 1 < stages; ++L) {
    QLayer& ql = qnet.layers[static_cast<std::size_t>(L)];

    // Step 1: stage outputs with the front layers binarized. Per-image
    // slots, max combined in fixed chunk order → thread-count independent.
    const float max_out = exec::parallel_reduce<float>(
        n, exec::kEvalGrain, 0.0f,
        [&](int lo, int hi) {
          float m = 0.0f;
          for (int i = lo; i < hi; ++i) {
            auto& s = sums[static_cast<std::size_t>(i)];
            if (L == 0) {
              const std::span<const float> img{
                  train.images.data() + static_cast<std::size_t>(i) * per_image,
                  per_image};
              eval_stage_float_input(ql, img, s);
            } else {
              eval_stage_binary_input(ql, bits[static_cast<std::size_t>(i)], s);
            }
            for (float v : s) m = std::max(m, v);
          }
          return m;
        },
        [](float a, float b) { return std::max(a, b); });

    // Step 2: weight re-scaling so the stage output lies in [0, 1].
    const float scale = std::max(max_out, 1e-6f);
    const float inv = 1.0f / scale;
    ql.weight.scale(inv);
    ql.bias.scale(inv);
    rescale_matrix_layer(*mats[static_cast<std::size_t>(L)], inv);
    exec::parallel_for(n, [&](int i) {
      for (float& v : sums[static_cast<std::size_t>(i)]) v *= inv;
    });

    // Step 3: brute-force threshold search, float tail.
    const std::size_t tb = tail_begin_index(
        float_net, mat_idx[static_cast<std::size_t>(L)], ql.geom.pool_after);
    const int ph = ql.geom.pooled_h, pw = ql.geom.pooled_w,
              ch = ql.geom.cols;
    const std::size_t bits_len =
        static_cast<std::size_t>(ph) * pw * ch;

    LayerSearchTrace trace;
    trace.stage = L;
    trace.scale = scale;
    int best_correct = -1;
    float best_t = static_cast<float>(cfg.thres_min);

    // Mean supra-threshold activation — the calibrated drive level fed to
    // the float tail (and later folded into the next layer's weights).
    auto drive_level = [&](float t) -> float {
      if (!cfg.calibrate_drive) return 1.0f;
      double sum = 0.0;
      std::size_t count = 0;
      for (const auto& s : sums)
        for (float v : s)
          if (v > t) {
            sum += v;
            ++count;
          }
      return count ? static_cast<float>(sum / static_cast<double>(count))
                   : 1.0f;
    };

    // Candidate thresholds are independent: sweep the grid in parallel
    // (each worker binarizes at its own explicit threshold — ql is never
    // mutated), then scan the per-candidate counts sequentially so the
    // first-max tie-break matches the serial sweep exactly.
    const std::vector<float> grid =
        threshold_grid(cfg.thres_min, cfg.thres_max, cfg.step);
    std::vector<int> grid_correct(grid.size(), 0);
    exec::parallel_for(
        static_cast<int>(grid.size()),
        [&](int gi) {
          const float t = grid[static_cast<std::size_t>(gi)];
          const float drive = drive_level(t);
          int correct = 0;
          for (int begin = 0; begin < n; begin += cfg.tail_batch) {
            const int end = std::min(n, begin + cfg.tail_batch);
            nn::Tensor batch({end - begin, ph, pw, ch});
            float* dst = batch.data();
            for (int i = begin; i < end; ++i, dst += bits_len) {
              const BitMap bm =
                  binarize_and_pool(ql, sums[static_cast<std::size_t>(i)], t);
              for (std::size_t k = 0; k < bits_len; ++k)
                dst[k] = bm[k] ? drive : 0.0f;
            }
            nn::Tensor logits =
                float_net.forward_range(batch, tb, float_net.size());
            logits.reshape({end - begin,
                            static_cast<int>(logits.numel()) / (end - begin)});
            for (int i = begin; i < end; ++i)
              if (nn::argmax_row(logits, i - begin) ==
                  train.labels[static_cast<std::size_t>(i)])
                ++correct;
          }
          grid_correct[static_cast<std::size_t>(gi)] = correct;
        },
        nullptr, /*grain=*/1);
    for (std::size_t gi = 0; gi < grid.size(); ++gi) {
      const int correct = grid_correct[gi];
      trace.curve.emplace_back(grid[gi], 100.0 * correct / n);
      if (correct > best_correct) {
        best_correct = correct;
        best_t = grid[gi];
      }
    }

    ql.threshold = best_t;
    trace.best_threshold = best_t;
    trace.drive_level = drive_level(best_t);
    trace.best_accuracy_pct = 100.0 * best_correct / n;
    if (cfg.verbose)
      std::printf(
          "  stage %d: scale %.4g, threshold %.4f, drive %.3f, "
          "train-acc %.2f%%\n",
          L, scale, best_t, trace.drive_level, trace.best_accuracy_pct);

    // Fold the drive level into the consuming layer's weights (bias stays):
    // a binary input then contributes drive·w, matching what the tail saw.
    if (cfg.calibrate_drive && trace.drive_level != 1.0f) {
      QLayer& next = qnet.layers[static_cast<std::size_t>(L + 1)];
      next.weight.scale(trace.drive_level);
      mats[static_cast<std::size_t>(L + 1)]->weight_matrix().scale(
          trace.drive_level);
    }
    result.traces.push_back(std::move(trace));

    // Step 4: binary inputs for the next stage from the cached outputs.
    exec::parallel_for(n, [&](int i) {
      bits[static_cast<std::size_t>(i)] =
          binarize_and_pool(ql, sums[static_cast<std::size_t>(i)]);
    });
  }

  return result;
}

}  // namespace sei::quant
