// Bit-packed representation of BitMap activations.
//
// A BitMap spends a byte per activation; post-Algorithm-1 activations are
// 1-bit, so the packed form stores 64 of them per machine word (LSB-first:
// activation i lives in bit i%64 of word i/64). Packing normalizes any
// nonzero byte to 1 — exactly the predicate the SEI evaluation applies to a
// byte activation — and unpacking always produces clean 0/1 bytes, so a
// pack/unpack round trip is the identity on every BitMap the pipeline
// produces. The word layout is the contract the core::bitpack kernels
// (AND+popcount accumulation, packed OR-pool) are written against; see
// docs/kernels.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "quant/qnet.hpp"

namespace sei::quant {

/// A BitMap packed 64 activations per word. Tail bits past `bits` are
/// always zero — kernels rely on that to popcount whole words.
struct PackedBits {
  std::vector<std::uint64_t> words;
  std::size_t bits = 0;

  bool get(std::size_t i) const {
    return (words[i >> 6] >> (i & 63)) & 1u;
  }

  /// Sizes the word vector for `n` bits and clears every word.
  void reset(std::size_t n) {
    bits = n;
    words.assign((n + 63) / 64, 0);
  }
};

/// Packs a byte-per-activation BitMap (any nonzero byte counts as 1).
void pack_bits(const BitMap& in, PackedBits& out);
PackedBits pack_bits(const BitMap& in);

/// Unpacks to a byte-per-activation BitMap of exactly 0/1 values.
void unpack_bits(const PackedBits& in, BitMap& out);
BitMap unpack_bits(const PackedBits& in);

}  // namespace sei::quant
