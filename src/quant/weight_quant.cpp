#include "quant/weight_quant.hpp"

#include <cmath>

namespace sei::quant {

QuantizedMatrix quantize_weights(const nn::Tensor& w, int bits) {
  SEI_CHECK_MSG(bits >= 2 && bits <= 16, "weight bits out of range");
  SEI_CHECK(w.ndim() == 2);
  QuantizedMatrix q;
  q.rows = w.dim(0);
  q.cols = w.dim(1);
  q.bits = bits;
  const int qmax = (1 << (bits - 1)) - 1;
  const float wmax = w.max_abs();
  q.scale = wmax > 0.0f ? wmax / static_cast<float>(qmax) : 1.0f;
  q.values.resize(w.numel());
  const float inv = 1.0f / q.scale;
  const float* src = w.data();
  for (std::size_t i = 0; i < w.numel(); ++i) {
    const long v = std::lround(src[i] * inv);
    q.values[i] = static_cast<std::int16_t>(
        std::max<long>(-qmax, std::min<long>(qmax, v)));
  }
  return q;
}

nn::Tensor dequantize(const QuantizedMatrix& q) {
  nn::Tensor w({q.rows, q.cols});
  float* dst = w.data();
  for (std::size_t i = 0; i < q.values.size(); ++i)
    dst[i] = static_cast<float>(q.values[i]) * q.scale;
  return w;
}

NibblePair split_magnitude(int magnitude, int device_bits) {
  SEI_CHECK(magnitude >= 0);
  SEI_CHECK(device_bits >= 1 && device_bits <= 8);
  NibblePair p;
  p.hi = magnitude >> device_bits;
  p.lo = magnitude & ((1 << device_bits) - 1);
  SEI_CHECK_MSG(p.hi < (1 << device_bits),
                "magnitude " << magnitude << " needs more than two "
                             << device_bits << "-bit cells");
  return p;
}

int sei_cells_per_weight(int weight_bits, int device_bits) {
  SEI_CHECK(weight_bits >= 2 && device_bits >= 1);
  const int magnitude_bits = weight_bits - 1;  // sign via the extra port
  const int slices = (magnitude_bits + device_bits - 1) / device_bits;
  return 2 * slices;  // positive and negative polarity cells
}

int baseline_crossbars_per_matrix(int weight_bits, int device_bits) {
  const int magnitude_bits = weight_bits - 1;
  const int slices = (magnitude_bits + device_bits - 1) / device_bits;
  return 2 * slices;  // pos/neg crossbar per bit-slice, merged by ADCs
}

}  // namespace sei::quant
