#include "data/dataset.hpp"

#include <algorithm>
#include <cstring>

#include "common/io.hpp"

namespace sei::data {

namespace {
constexpr std::uint32_t kMagic = 0xda7a5e75;
}

Dataset Dataset::head(int n) const {
  SEI_CHECK(n >= 1 && n <= size());
  Dataset out;
  std::vector<int> shape = images.shape();
  shape[0] = n;
  out.images = nn::Tensor(shape);
  const std::size_t per_image = images.numel() / static_cast<std::size_t>(size());
  std::memcpy(out.images.data(), images.data(),
              static_cast<std::size_t>(n) * per_image * sizeof(float));
  out.labels.assign(labels.begin(), labels.begin() + n);
  return out;
}

void save_dataset(const Dataset& d, const std::string& path) {
  BinaryWriter w(path);
  w.write_u32(kMagic);
  const auto& shape = d.images.shape();
  w.write_u64(shape.size());
  for (int dim : shape) w.write_i32(dim);
  w.write_f32_vec({d.images.flat().begin(), d.images.flat().end()});
  w.write_u8_vec(d.labels);
  w.commit();
}

Dataset load_dataset(const std::string& path) {
  BinaryReader r(path);
  r.verify_crc();
  SEI_CHECK_MSG(r.read_u32() == kMagic, "not a dataset file: " << path);
  const std::uint64_t ndim = r.read_u64();
  std::vector<int> shape(ndim);
  for (auto& dim : shape) dim = r.read_i32();
  Dataset d;
  std::vector<float> pixels = r.read_f32_vec();
  d.images = nn::Tensor(shape);
  SEI_CHECK(pixels.size() == d.images.numel());
  std::copy(pixels.begin(), pixels.end(), d.images.data());
  d.labels = r.read_u8_vec();
  SEI_CHECK(static_cast<int>(d.labels.size()) == d.size());
  return d;
}

}  // namespace sei::data
