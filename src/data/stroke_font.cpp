#include "data/stroke_font.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace sei::data {

Polyline ellipse(Point center, float rx, float ry, int segments,
                 float start_deg, float sweep_deg) {
  Polyline p;
  p.reserve(static_cast<std::size_t>(segments) + 1);
  const float start = start_deg * std::numbers::pi_v<float> / 180.0f;
  const float sweep = sweep_deg * std::numbers::pi_v<float> / 180.0f;
  for (int i = 0; i <= segments; ++i) {
    const float t = start + sweep * static_cast<float>(i) / segments;
    p.push_back({center.x + rx * std::cos(t), center.y + ry * std::sin(t)});
  }
  return p;
}

namespace {

std::vector<Glyph> build_glyphs() {
  std::vector<Glyph> g(10);

  // 0 — oval.
  g[0].strokes = {ellipse({0.50f, 0.50f}, 0.30f, 0.42f, 20)};

  // 1 — flag + vertical bar.
  g[1].strokes = {{{0.32f, 0.28f}, {0.52f, 0.08f}, {0.52f, 0.92f}}};

  // 2 — top arc, diagonal, base.
  g[2].strokes = {{{0.22f, 0.30f},
                   {0.28f, 0.14f},
                   {0.50f, 0.08f},
                   {0.72f, 0.16f},
                   {0.76f, 0.34f},
                   {0.60f, 0.55f},
                   {0.38f, 0.72f},
                   {0.22f, 0.90f},
                   {0.80f, 0.90f}}};

  // 3 — double bump.
  g[3].strokes = {{{0.24f, 0.14f},
                   {0.48f, 0.06f},
                   {0.72f, 0.16f},
                   {0.72f, 0.34f},
                   {0.50f, 0.46f},
                   {0.74f, 0.58f},
                   {0.76f, 0.78f},
                   {0.52f, 0.94f},
                   {0.24f, 0.86f}}};

  // 4 — diagonal, crossbar, vertical.
  g[4].strokes = {{{0.62f, 0.08f}, {0.22f, 0.60f}, {0.84f, 0.60f}},
                  {{0.62f, 0.08f}, {0.62f, 0.92f}}};

  // 5 — cap, stem, belly.
  g[5].strokes = {{{0.76f, 0.08f},
                   {0.28f, 0.08f},
                   {0.26f, 0.44f},
                   {0.52f, 0.40f},
                   {0.76f, 0.52f},
                   {0.78f, 0.74f},
                   {0.56f, 0.92f},
                   {0.24f, 0.86f}}};

  // 6 — sweep plus lower loop.
  g[6].strokes = {{{0.68f, 0.08f},
                   {0.44f, 0.18f},
                   {0.30f, 0.42f},
                   {0.26f, 0.66f}},
                  ellipse({0.50f, 0.70f}, 0.24f, 0.22f, 14)};

  // 7 — cap and diagonal.
  g[7].strokes = {{{0.20f, 0.10f}, {0.80f, 0.10f}, {0.42f, 0.92f}}};

  // 8 — stacked loops.
  g[8].strokes = {ellipse({0.50f, 0.29f}, 0.21f, 0.20f, 14),
                  ellipse({0.50f, 0.71f}, 0.25f, 0.23f, 14)};

  // 9 — upper loop and tail.
  g[9].strokes = {ellipse({0.48f, 0.32f}, 0.23f, 0.23f, 14),
                  {{0.71f, 0.35f}, {0.68f, 0.65f}, {0.58f, 0.92f}}};

  return g;
}

}  // namespace

const Glyph& digit_glyph(int digit) {
  static const std::vector<Glyph> glyphs = build_glyphs();
  SEI_CHECK_MSG(digit >= 0 && digit < 10, "digit out of range: " << digit);
  return glyphs[static_cast<std::size_t>(digit)];
}

}  // namespace sei::data
