// Labeled image dataset (28×28×1 grayscale in [0,1], NHWC) with binary cache.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace sei::data {

struct Dataset {
  nn::Tensor images;                 // [N, 28, 28, 1]
  std::vector<std::uint8_t> labels;  // N class ids in [0, 10)

  int size() const { return images.empty() ? 0 : images.dim(0); }

  std::span<const std::uint8_t> label_span() const { return labels; }

  /// First `n` samples as a new dataset (for fast searches on subsets).
  Dataset head(int n) const;
};

/// The train/test pair every experiment runs on.
struct DataBundle {
  Dataset train;
  Dataset test;
  std::string source;  // "idx:<dir>" or "synthetic:<seed>"
};

void save_dataset(const Dataset& d, const std::string& path);
Dataset load_dataset(const std::string& path);

}  // namespace sei::data
