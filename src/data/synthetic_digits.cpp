#include "data/synthetic_digits.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "data/stroke_font.hpp"

namespace sei::data {

namespace {

struct Affine {
  // [x'] = [a b][x] + [tx]
  // [y']   [c d][y]   [ty]
  float a = 1, b = 0, c = 0, d = 1, tx = 0, ty = 0;

  Point apply(Point p) const {
    return {a * p.x + b * p.y + tx, c * p.x + d * p.y + ty};
  }
};

/// Distance from point q to segment p0–p1.
float seg_distance(Point q, Point p0, Point p1) {
  const float vx = p1.x - p0.x, vy = p1.y - p0.y;
  const float wx = q.x - p0.x, wy = q.y - p0.y;
  const float vv = vx * vx + vy * vy;
  float t = vv > 0.0f ? (wx * vx + wy * vy) / vv : 0.0f;
  t = std::clamp(t, 0.0f, 1.0f);
  const float dx = wx - t * vx, dy = wy - t * vy;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

void render_digit(int digit, const SynthConfig& cfg, Rng& rng, float* out) {
  const Glyph& glyph = digit_glyph(digit);
  const int size = cfg.image_size;
  const auto fsize = static_cast<float>(size);

  // Random affine that maps the unit glyph box into the image, centered.
  const float angle = static_cast<float>(rng.uniform(-cfg.rotation_deg,
                                                     cfg.rotation_deg)) *
                      std::numbers::pi_v<float> / 180.0f;
  const auto sx = static_cast<float>(rng.uniform(cfg.scale_low, cfg.scale_high));
  const auto sy = static_cast<float>(rng.uniform(cfg.scale_low, cfg.scale_high));
  const auto sh = static_cast<float>(rng.uniform(-cfg.shear, cfg.shear));
  const auto dx = static_cast<float>(
      rng.uniform(-cfg.translate_px, cfg.translate_px));
  const auto dy = static_cast<float>(
      rng.uniform(-cfg.translate_px, cfg.translate_px));

  // Glyph box occupies the central ~20px like MNIST digits do.
  const float body = 0.72f * fsize;
  const float cosr = std::cos(angle), sinr = std::sin(angle);
  // Compose: scale+shear then rotate: M = R(angle) · [[sx, sh],[0, sy]].
  Affine t;
  t.a = body * (cosr * sx);
  t.b = body * (cosr * sh - sinr * sy);
  t.c = body * (sinr * sx);
  t.d = body * (sinr * sh + cosr * sy);
  // Center of glyph (0.5, 0.5) maps to image center + jitter.
  const float cx = fsize / 2.0f + dx, cy = fsize / 2.0f + dy;
  t.tx = cx - (t.a * 0.5f + t.b * 0.5f);
  t.ty = cy - (t.c * 0.5f + t.d * 0.5f);

  // Jitter control points and transform to pixel space.
  std::vector<Polyline> strokes;
  strokes.reserve(glyph.strokes.size());
  for (const auto& s : glyph.strokes) {
    Polyline ps;
    ps.reserve(s.size());
    for (Point p : s) {
      p.x += static_cast<float>(rng.gaussian(0.0, cfg.jitter));
      p.y += static_cast<float>(rng.gaussian(0.0, cfg.jitter));
      ps.push_back(t.apply(p));
    }
    strokes.push_back(std::move(ps));
  }

  const auto brush = static_cast<float>(
      rng.uniform(cfg.brush_low_px, cfg.brush_high_px));
  const auto intensity = static_cast<float>(
      rng.uniform(cfg.intensity_low, cfg.intensity_high));
  const float aa = 0.9f;  // anti-aliasing falloff width in pixels

  // Bounding box of the strokes to skip empty pixels quickly.
  float bx0 = fsize, by0 = fsize, bx1 = 0.0f, by1 = 0.0f;
  for (const auto& s : strokes)
    for (const Point& p : s) {
      bx0 = std::min(bx0, p.x);
      by0 = std::min(by0, p.y);
      bx1 = std::max(bx1, p.x);
      by1 = std::max(by1, p.y);
    }
  const float margin = brush + aa;
  const int x0 = std::max(0, static_cast<int>(bx0 - margin));
  const int y0 = std::max(0, static_cast<int>(by0 - margin));
  const int x1 = std::min(size - 1, static_cast<int>(bx1 + margin) + 1);
  const int y1 = std::min(size - 1, static_cast<int>(by1 + margin) + 1);

  std::fill(out, out + static_cast<std::size_t>(size) * size, 0.0f);
  for (int py = y0; py <= y1; ++py) {
    for (int px = x0; px <= x1; ++px) {
      const Point q{static_cast<float>(px) + 0.5f,
                    static_cast<float>(py) + 0.5f};
      float dmin = 1e9f;
      for (const auto& s : strokes)
        for (std::size_t i = 0; i + 1 < s.size(); ++i)
          dmin = std::min(dmin, seg_distance(q, s[i], s[i + 1]));
      const float v = std::clamp((brush + aa - dmin) / aa, 0.0f, 1.0f);
      if (v > 0.0f) out[py * size + px] = intensity * v;
    }
  }

  if (cfg.pixel_noise > 0.0f) {
    for (int i = 0; i < size * size; ++i) {
      const float noisy =
          out[i] + static_cast<float>(rng.gaussian(0.0, cfg.pixel_noise));
      out[i] = std::clamp(noisy, 0.0f, 1.0f);
    }
  }
}

Dataset generate_synthetic(int n, std::uint64_t seed, const SynthConfig& cfg) {
  SEI_CHECK(n >= 1);
  Dataset d;
  d.images = nn::Tensor({n, cfg.image_size, cfg.image_size, 1});
  d.labels.resize(static_cast<std::size_t>(n));
  Rng rng(seed);
  const std::size_t per_image =
      static_cast<std::size_t>(cfg.image_size) * cfg.image_size;
  for (int i = 0; i < n; ++i) {
    const int digit = static_cast<int>(rng.below(10));
    d.labels[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(digit);
    render_digit(digit, cfg, rng,
                 d.images.data() + static_cast<std::size_t>(i) * per_image);
  }
  return d;
}

DataBundle synthetic_bundle(int train_n, int test_n, std::uint64_t seed) {
  DataBundle b;
  b.train = generate_synthetic(train_n, seed);
  b.test = generate_synthetic(test_n, seed ^ 0xfeedface12345678ULL);
  b.source = "synthetic:" + std::to_string(seed);
  return b;
}

}  // namespace sei::data
