// Stroke skeletons of the digits 0–9.
//
// Each glyph is a list of polylines with control points in a normalized
// [0,1]² box (x right, y down). The synthetic renderer jitters the control
// points, applies a random affine transform, and rasterizes with a round
// brush — producing MNIST-like handwritten digits without network access
// (see DESIGN.md §3 for the substitution rationale).
#pragma once

#include <array>
#include <vector>

namespace sei::data {

struct Point {
  float x = 0.0f;
  float y = 0.0f;
};

using Polyline = std::vector<Point>;

struct Glyph {
  std::vector<Polyline> strokes;
};

/// The canonical glyph for `digit` (0–9).
const Glyph& digit_glyph(int digit);

/// Samples a closed ellipse as a polyline with `segments` points.
Polyline ellipse(Point center, float rx, float ry, int segments,
                 float start_deg = 0.0f, float sweep_deg = 360.0f);

}  // namespace sei::data
