// Synthetic handwritten-digit generator (the environment has no network
// access, so the public MNIST files cannot be fetched; see DESIGN.md §3).
//
// Pipeline per sample: pick a digit uniformly → jitter the glyph's control
// points → random affine (rotation, anisotropic scale, shear, translation)
// → rasterize with a round brush of random radius (anti-aliased distance
// field) → random intensity + additive pixel noise.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace sei::data {

// Defaults are tuned to the hardest setting at which the Table 2 CNNs keep
// MNIST-like 1-bit-quantization behaviour (accuracy loss on the order of
// 1%, Table 3). Harder augmentation makes the float nets land at MNIST-like
// error rates but blows the binarization loss up to tens of percent — the
// synthetic task lacks MNIST's redundancy — so we prioritize the paper's
// *delta* claims over matching absolute error rates (see EXPERIMENTS.md).
struct SynthConfig {
  int image_size = 28;
  float rotation_deg = 10.5f;     // uniform in ±
  float scale_low = 0.80f;
  float scale_high = 1.11f;
  float shear = 0.125f;           // uniform in ±
  float translate_px = 2.2f;      // uniform in ±
  float jitter = 0.020f;          // gaussian stddev on control points
  float brush_low_px = 0.68f;     // brush radius range, pixels
  float brush_high_px = 1.52f;
  float intensity_low = 0.78f;
  float intensity_high = 1.00f;
  // Kept small: MNIST backgrounds are exactly zero, and the paper's 1-bit
  // quantization depends on the resulting "mostly exactly zero" long-tail
  // activation distribution (Table 1).
  float pixel_noise = 0.009f;
};

/// Renders a single digit into a `size`×`size` float image (row-major).
void render_digit(int digit, const SynthConfig& cfg, Rng& rng, float* out);

/// Generates `n` labeled samples deterministically from `seed`.
Dataset generate_synthetic(int n, std::uint64_t seed,
                           const SynthConfig& cfg = {});

/// Standard train/test bundle (disjoint seeds).
DataBundle synthetic_bundle(int train_n, int test_n, std::uint64_t seed);

}  // namespace sei::data
