// Loader for the original MNIST IDX file format (big-endian headers).
//
// Used automatically when the environment variable MNIST_DIR points at a
// directory containing train-images-idx3-ubyte / train-labels-idx1-ubyte /
// t10k-images-idx3-ubyte / t10k-labels-idx1-ubyte (optionally .gz-less).
#pragma once

#include <optional>
#include <string>

#include "data/dataset.hpp"

namespace sei::data {

/// Reads one images + labels IDX pair.
Dataset load_idx_pair(const std::string& images_path,
                      const std::string& labels_path);

/// Loads the standard 4-file MNIST layout from `dir`, or nullopt if the
/// files are not all present.
std::optional<DataBundle> load_mnist_dir(const std::string& dir);

}  // namespace sei::data
