#include "data/idx_loader.hpp"

#include <filesystem>
#include <fstream>

#include "common/io.hpp"

namespace sei::data {

namespace {

std::uint32_t read_be32(std::ifstream& in, const std::string& path) {
  unsigned char b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  SEI_CHECK_MSG(in.gcount() == 4, "truncated IDX header in " << path);
  return (std::uint32_t(b[0]) << 24) | (std::uint32_t(b[1]) << 16) |
         (std::uint32_t(b[2]) << 8) | std::uint32_t(b[3]);
}

/// The header's item count must match the file size exactly — a corrupt
/// count would otherwise turn into either a huge allocation or a silent
/// short read.
void check_payload(const std::string& path, std::uint64_t header_bytes,
                   std::uint64_t payload_bytes) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  SEI_CHECK_MSG(!ec, "cannot stat " << path << ": " << ec.message());
  SEI_CHECK_MSG(static_cast<std::uint64_t>(size) ==
                    header_bytes + payload_bytes,
                path << " is " << size << " bytes; its header promises "
                     << header_bytes + payload_bytes);
}

}  // namespace

Dataset load_idx_pair(const std::string& images_path,
                      const std::string& labels_path) {
  std::ifstream img(images_path, std::ios::binary);
  SEI_CHECK_MSG(img.good(), "cannot open " << images_path);
  SEI_CHECK_MSG(read_be32(img, images_path) == 0x00000803,
                "bad magic in " << images_path);
  const std::uint32_t n = read_be32(img, images_path);
  const std::uint32_t rows = read_be32(img, images_path);
  const std::uint32_t cols = read_be32(img, images_path);
  SEI_CHECK_MSG(rows == 28 && cols == 28, "expected 28x28 images");
  SEI_CHECK_MSG(n >= 1, "empty image set in " << images_path);
  check_payload(images_path, 16, static_cast<std::uint64_t>(n) * 784);

  std::ifstream lab(labels_path, std::ios::binary);
  SEI_CHECK_MSG(lab.good(), "cannot open " << labels_path);
  SEI_CHECK_MSG(read_be32(lab, labels_path) == 0x00000801,
                "bad magic in " << labels_path);
  const std::uint32_t nl = read_be32(lab, labels_path);
  SEI_CHECK_MSG(n == nl, "image/label count mismatch: " << n << " images vs "
                                                        << nl << " labels");
  check_payload(labels_path, 8, nl);

  Dataset d;
  d.images = nn::Tensor({static_cast<int>(n), 28, 28, 1});
  std::vector<unsigned char> buf(static_cast<std::size_t>(n) * 784);
  img.read(reinterpret_cast<char*>(buf.data()),
           static_cast<std::streamsize>(buf.size()));
  SEI_CHECK_MSG(img.gcount() == static_cast<std::streamsize>(buf.size()),
                "truncated pixel data in " << images_path);
  float* dst = d.images.data();
  for (std::size_t i = 0; i < buf.size(); ++i)
    dst[i] = static_cast<float>(buf[i]) / 255.0f;

  d.labels.resize(n);
  lab.read(reinterpret_cast<char*>(d.labels.data()), n);
  SEI_CHECK_MSG(lab.gcount() == static_cast<std::streamsize>(n),
                "truncated label data in " << labels_path);
  for (std::uint8_t l : d.labels) SEI_CHECK_MSG(l < 10, "label out of range");
  return d;
}

std::optional<DataBundle> load_mnist_dir(const std::string& dir) {
  const std::string ti = dir + "/train-images-idx3-ubyte";
  const std::string tl = dir + "/train-labels-idx1-ubyte";
  const std::string vi = dir + "/t10k-images-idx3-ubyte";
  const std::string vl = dir + "/t10k-labels-idx1-ubyte";
  if (!file_exists(ti) || !file_exists(tl) || !file_exists(vi) ||
      !file_exists(vl))
    return std::nullopt;
  DataBundle b;
  b.train = load_idx_pair(ti, tl);
  b.test = load_idx_pair(vi, vl);
  b.source = "idx:" + dir;
  return b;
}

}  // namespace sei::data
