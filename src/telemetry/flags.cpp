#include "telemetry/flags.hpp"

#include "telemetry/export.hpp"
#include "telemetry/span.hpp"

namespace sei::telemetry {

TelemetryOptions telemetry_flags(Cli& cli) {
  TelemetryOptions opts;
  opts.metrics_out = cli.get(
      "metrics-out", "",
      "write a metrics snapshot here (.prom = Prometheus text, else JSON)");
  opts.trace_out =
      cli.get("trace-out", "",
              "write a Chrome trace-event JSON here (enables span tracing)");
  if (!opts.trace_out.empty()) Tracer::set_enabled(true);
  return opts;
}

void telemetry_flush(const TelemetryOptions& opts) {
  if (!opts.metrics_out.empty()) {
    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    const std::string& p = opts.metrics_out;
    if (p.size() >= 5 && p.compare(p.size() - 5, 5, ".prom") == 0)
      write_prometheus(p, snap);
    else
      write_metrics_json(p, snap);
  }
  if (!opts.trace_out.empty()) write_chrome_trace(opts.trace_out, Tracer::drain());
}

}  // namespace sei::telemetry
