#include "telemetry/energy.hpp"

#include <cmath>

namespace sei::telemetry {

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& o) {
  dac += o.dac;
  adc += o.adc;
  sense_amp += o.sense_amp;
  driver += o.driver;
  rram += o.rram;
  decoder += o.decoder;
  digital += o.digital;
  buffer += o.buffer;
  wta += o.wta;
  return *this;
}

EnergyEvents& EnergyEvents::operator+=(const EnergyEvents& o) {
  crossbar_reads += o.crossbar_reads;
  cell_activations += o.cell_activations;
  sa_compares += o.sa_compares;
  adc_conversions += o.adc_conversions;
  dac_conversions += o.dac_conversions;
  driver_ops += o.driver_ops;
  digital_adds += o.digital_adds;
  buffer_bits += o.buffer_bits;
  wta_reads += o.wta_reads;
  return *this;
}

void EnergyAccum::merge(const EnergyAccum& o) {
  pj += o.pj;
  events += o.events;
  images += o.images;
  stages += o.stages;
}

void EnergyMeter::charge_stages(std::size_t first, std::size_t last,
                                std::uint64_t images, EnergyAccum& acc) const {
  if constexpr (!kEnabled) {
    (void)first;
    (void)last;
    (void)images;
    (void)acc;
    return;
  }
  const double k = static_cast<double>(images);
  for (std::size_t i = first; i < last; ++i) {
    const StageEnergy& s = stages_[i];
    acc.pj.dac += s.pj.dac * k;
    acc.pj.adc += s.pj.adc * k;
    acc.pj.sense_amp += s.pj.sense_amp * k;
    acc.pj.driver += s.pj.driver * k;
    acc.pj.rram += s.pj.rram * k;
    acc.pj.decoder += s.pj.decoder * k;
    acc.pj.digital += s.pj.digital * k;
    acc.pj.buffer += s.pj.buffer * k;
    acc.pj.wta += s.pj.wta * k;
    acc.events.crossbar_reads += s.events.crossbar_reads * images;
    acc.events.cell_activations += s.events.cell_activations * images;
    acc.events.sa_compares += s.events.sa_compares * images;
    acc.events.adc_conversions += s.events.adc_conversions * images;
    acc.events.dac_conversions += s.events.dac_conversions * images;
    acc.events.driver_ops += s.events.driver_ops * images;
    acc.events.digital_adds += s.events.digital_adds * images;
    acc.events.buffer_bits += s.events.buffer_bits * images;
    acc.events.wta_reads += s.events.wta_reads * images;
  }
  acc.stages += (last - first) * images;
}

EnergyBreakdown EnergyMeter::network_pj() const {
  EnergyBreakdown total;
  for (const StageEnergy& s : stages_) total += s.pj;
  return total;
}

EnergyBreakdown EnergyMeter::network_floor_pj() const {
  EnergyBreakdown total;
  for (const StageEnergy& s : stages_) {
    total += s.pj;
    if (s.nominal_rows > 0) {
      total.rram -= s.pj.rram;
      total.driver -= s.pj.driver;
    }
  }
  return total;
}

namespace {

/// pJ -> integer femtojoules, the fixed-point unit for energy counters.
std::uint64_t to_fj(double pj) {
  return pj > 0.0 ? static_cast<std::uint64_t>(std::llround(pj * 1e3)) : 0;
}

}  // namespace

void publish_energy(MetricsRegistry& reg, const std::string& path,
                    const EnergyAccum& acc) {
  if constexpr (!kEnabled) {
    (void)reg;
    (void)path;
    (void)acc;
    return;
  }
  const std::string p = "{path=\"" + path + "\"";
  const auto component = [&](const char* c, double pj) {
    reg.counter("sei_energy_fj_total" + p + ",component=\"" + c + "\"}")
        .add(to_fj(pj));
  };
  component("dac", acc.pj.dac);
  component("adc", acc.pj.adc);
  component("sense_amp", acc.pj.sense_amp);
  component("driver", acc.pj.driver);
  component("rram", acc.pj.rram);
  component("decoder", acc.pj.decoder);
  component("digital", acc.pj.digital);
  component("buffer", acc.pj.buffer);
  component("wta", acc.pj.wta);

  reg.counter("sei_images_total" + p + "}").add(acc.images);
  reg.counter("sei_stages_total" + p + "}").add(acc.stages);

  const auto op = [&](const char* kind, std::uint64_t n) {
    reg.counter("sei_ops_total" + p + ",op=\"" + kind + "\"}").add(n);
  };
  op("crossbar_read", acc.events.crossbar_reads);
  op("cell_activation", acc.events.cell_activations);
  op("sa_compare", acc.events.sa_compares);
  op("adc_conversion", acc.events.adc_conversions);
  op("dac_conversion", acc.events.dac_conversions);
  op("driver_op", acc.events.driver_ops);
  op("digital_add", acc.events.digital_adds);
  op("buffer_bit", acc.events.buffer_bits);
  op("wta_read", acc.events.wta_reads);
}

}  // namespace sei::telemetry
