// Process-wide metrics: counters, gauges and fixed-bucket histograms.
//
// Determinism contract (docs/observability.md): every accumulating metric is
// stored in integers — counters and bucket counts as u64, histogram sums in
// fixed-point units of `sum_unit` — so cross-thread accumulation is a chain
// of exact commutative adds. A batch whose per-item observations are
// deterministic (docs/parallelism.md) therefore produces bit-identical
// snapshots at 1, 2 or N threads, no matter which thread recorded which
// item. Snapshots list metrics in name order, so two equal registries
// serialize identically byte for byte.
//
// Metric names follow the Prometheus convention and may carry a label set
// inline: `serve_requests_total{status="ok"}`. The exporters split the
// family name at the first '{'.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "telemetry/config.hpp"

namespace sei::telemetry {

/// Monotonic event count. add() is lock-free and compiles out when telemetry
/// is disabled.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if constexpr (kEnabled) v_.fetch_add(n, std::memory_order_relaxed);
    else (void)n;
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar (configuration values, utilization percentages,
/// summary statistics computed at export time).
class Gauge {
 public:
  void set(double v) {
    if constexpr (kEnabled) v_.store(v, std::memory_order_relaxed);
    else (void)v;
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with inclusive upper bounds (Prometheus `le`
/// semantics: a value equal to a bound lands in that bound's bucket; values
/// above the last bound land in the implicit +Inf overflow bucket). The sum
/// is kept in integer multiples of `sum_unit` so it accumulates exactly in
/// any thread interleaving.
class Histogram {
 public:
  /// `bounds` must be strictly ascending and non-empty.
  Histogram(std::vector<double> bounds, double sum_unit);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  double sum_unit() const { return sum_unit_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double sum() const {
    return static_cast<double>(sum_units_.load(std::memory_order_relaxed)) *
           sum_unit_;
  }
  double min() const;
  double max() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_units_{0};
  std::atomic<std::uint64_t> min_bits_;  // double bit patterns, CAS-updated
  std::atomic<std::uint64_t> max_bits_;
  double sum_unit_;
};

// ----------------------------------------------------------------------------
// Snapshots: plain copyable values, ordered by metric name.

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
  bool operator==(const CounterSample&) const = default;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
  bool operator==(const GaugeSample&) const = default;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;           // upper bounds, +Inf implicit last
  std::vector<std::uint64_t> buckets;   // bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;
  bool operator==(const HistogramSample&) const = default;

  /// Quantile estimate by linear interpolation inside the hit bucket
  /// (clamped to [first bound lower edge, max]). q in [0, 1].
  double quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  bool operator==(const MetricsSnapshot&) const = default;
};

// ----------------------------------------------------------------------------

/// Named metric store. Registration takes a mutex; the returned references
/// are stable for the registry's lifetime (hot paths register once and keep
/// the reference). reset() zeroes values but never invalidates references.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Re-requesting an existing histogram validates that `bounds` match.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       double sum_unit = 1e-6);

  MetricsSnapshot snapshot() const;
  void reset();

  /// The process-wide registry every integration point records into.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// `count` ascending bounds starting at `start`, each `factor` times the
/// previous — the standard latency bucket ladder.
std::vector<double> exponential_buckets(double start, double factor,
                                        int count);

/// Default request-latency bounds in milliseconds (10 µs … ~20 s).
const std::vector<double>& latency_ms_buckets();

}  // namespace sei::telemetry
