// Compile-time gate for the telemetry subsystem.
//
// SEI_TELEMETRY_ENABLED is defined globally by CMake (option SEI_TELEMETRY,
// ON by default). When OFF, every hot-path recording primitive — Counter::add,
// Histogram::observe, Span, EnergyMeter::charge_stage, the thread-pool's
// per-chunk timing — compiles to nothing, while the registry/exporter API
// stays link-compatible so callers need no #ifdefs. The cold paths (snapshot,
// export) keep working and simply report zeros.
#pragma once

#ifndef SEI_TELEMETRY_ENABLED
#define SEI_TELEMETRY_ENABLED 1
#endif

namespace sei::telemetry {

inline constexpr bool kEnabled = SEI_TELEMETRY_ENABLED != 0;

}  // namespace sei::telemetry
