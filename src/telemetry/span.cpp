#include "telemetry/span.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

namespace sei::telemetry {

namespace {

/// Per-thread event buffer. Lives in a global list so drain() can reach the
/// buffers of threads that are still running; when a thread exits, its
/// events are spilled into the orphan list instead of being lost.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct TracerState {
  std::mutex mu;  // guards buffers, orphans, next_tid. Lock order: mu -> buf.mu
  std::vector<ThreadBuffer*> buffers;
  std::vector<TraceEvent> orphans;
  std::uint32_t next_tid = 0;
};

TracerState& state() {
  static TracerState* s = new TracerState();  // leaked: outlives all threads
  return *s;
}

std::chrono::steady_clock::time_point origin() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

struct ThreadBufferHandle {
  ThreadBuffer* buf;

  ThreadBufferHandle() : buf(new ThreadBuffer()) {
    TracerState& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    buf->tid = s.next_tid++;
    s.buffers.push_back(buf);
  }

  ~ThreadBufferHandle() {
    TracerState& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    {
      std::lock_guard<std::mutex> blk(buf->mu);
      s.orphans.insert(s.orphans.end(), buf->events.begin(),
                       buf->events.end());
    }
    s.buffers.erase(std::find(s.buffers.begin(), s.buffers.end(), buf));
    delete buf;
  }
};

ThreadBuffer& local_buffer() {
  thread_local ThreadBufferHandle handle;
  return *handle.buf;
}

}  // namespace

std::atomic<bool>& Tracer::enabled_flag() {
  static std::atomic<bool> on{false};
  return on;
}

void Tracer::set_enabled(bool on) {
  if constexpr (!kEnabled) {
    (void)on;
    return;
  }
  if (on) (void)origin();  // pin the time origin before the first span
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::int64_t Tracer::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - origin())
      .count();
}

void Tracer::record(const char* name, std::int64_t start_ns,
                    std::int64_t dur_ns) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lk(buf.mu);
  buf.events.push_back({name, buf.tid, start_ns, dur_ns});
}

std::vector<TraceEvent> Tracer::drain() {
  TracerState& s = state();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    out = std::move(s.orphans);
    s.orphans.clear();
    for (ThreadBuffer* buf : s.buffers) {
      std::lock_guard<std::mutex> blk(buf->mu);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
      buf->events.clear();
    }
  }
  // Parent spans close after their children, so buffers hold them in
  // completion order; re-sort so a parent precedes the spans it encloses.
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;
            });
  return out;
}

}  // namespace sei::telemetry
