#include "telemetry/export.hpp"

#include <limits>
#include <sstream>

#include "common/io.hpp"

namespace sei::telemetry {

namespace {

/// Splits "family{labels}" into the family name and the inner label list
/// (without braces, "" when the metric carries no labels).
struct NameParts {
  std::string family;
  std::string labels;
};

NameParts split_name(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  std::string labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
  return {name.substr(0, brace), std::move(labels)};
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

/// `family{labels,extra}` with correct comma/brace handling.
std::string series(const NameParts& p, const std::string& suffix,
                   const std::string& extra_label = "") {
  std::string out = p.family + suffix;
  if (p.labels.empty() && extra_label.empty()) return out;
  out += '{';
  out += p.labels;
  if (!p.labels.empty() && !extra_label.empty()) out += ',';
  out += extra_label;
  out += '}';
  return out;
}

void type_line(std::ostringstream& os, std::string& last_family,
               const std::string& family, const char* type) {
  if (family == last_family) return;
  os << "# TYPE " << family << ' ' << type << '\n';
  last_family = family;
}

}  // namespace

void write_metrics_json(const std::string& path, const MetricsSnapshot& snap) {
  JsonWriter w(path);
  w.begin_object();
  w.kv("schema", "sei-metrics-v1");

  w.key("counters");
  w.begin_array();
  for (const CounterSample& c : snap.counters) {
    w.begin_object();
    w.kv("name", c.name);
    w.kv("value", static_cast<long long>(c.value));
    w.end_object();
  }
  w.end_array();

  w.key("gauges");
  w.begin_array();
  for (const GaugeSample& g : snap.gauges) {
    w.begin_object();
    w.kv("name", g.name);
    w.kv("value", g.value);
    w.end_object();
  }
  w.end_array();

  w.key("histograms");
  w.begin_array();
  for (const HistogramSample& h : snap.histograms) {
    w.begin_object();
    w.kv("name", h.name);
    w.kv("count", static_cast<long long>(h.count));
    w.kv("sum", h.sum);
    w.kv("min", h.min);
    w.kv("max", h.max);
    w.kv("p50", h.quantile(0.50));
    w.kv("p99", h.quantile(0.99));
    w.key("bounds");
    w.begin_array();
    for (double b : h.bounds) w.value(b);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (std::uint64_t n : h.buckets) w.value(static_cast<long long>(n));
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  w.commit();
}

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::ostringstream os;
  std::string last_family;

  for (const CounterSample& c : snap.counters) {
    const NameParts p = split_name(c.name);
    type_line(os, last_family, p.family, "counter");
    os << series(p, "") << ' ' << c.value << '\n';
  }
  for (const GaugeSample& g : snap.gauges) {
    const NameParts p = split_name(g.name);
    type_line(os, last_family, p.family, "gauge");
    os << series(p, "") << ' ' << fmt(g.value) << '\n';
  }
  for (const HistogramSample& h : snap.histograms) {
    const NameParts p = split_name(h.name);
    type_line(os, last_family, p.family, "histogram");
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cum += h.buckets[b];
      const std::string le =
          b < h.bounds.size() ? fmt(h.bounds[b]) : std::string("+Inf");
      os << series(p, "_bucket", "le=\"" + le + "\"") << ' ' << cum << '\n';
    }
    os << series(p, "_sum") << ' ' << fmt(h.sum) << '\n';
    os << series(p, "_count") << ' ' << h.count << '\n';
  }
  return os.str();
}

void write_prometheus(const std::string& path, const MetricsSnapshot& snap) {
  const std::string text = prometheus_text(snap);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    SEI_CHECK_MSG(out.good(), "cannot open " << tmp);
    out << text;
    out.flush();
    SEI_CHECK_MSG(out.good(), "write failed: " << tmp);
  }
  atomic_replace_durable(tmp, path);
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  JsonWriter w(path);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("ph", "X");
    w.kv("pid", 1);
    w.kv("tid", static_cast<long long>(e.tid));
    w.kv("ts", static_cast<double>(e.start_ns) * 1e-3);   // µs
    w.kv("dur", static_cast<double>(e.dur_ns) * 1e-3);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.commit();
}

}  // namespace sei::telemetry
