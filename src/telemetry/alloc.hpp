// Thread-local heap-allocation counters (docs/plans.md §4).
//
// The compiled-plan serving contract is *zero heap allocations per request*
// once a worker is warm: EvalContext scratch is arena-carved, activation
// vectors are reserved to plan bounds, and the runtimes recycle every
// per-request object. Contracts that nothing measures rot, so this unit
// replaces global operator new/delete with forwarding shims that bump a
// thread-local counter while a scope is "armed":
//
//   telemetry::AllocGuard guard;          // arm this thread
//   ... serve one request ...
//   std::uint64_t n = guard.count();      // allocations since arming
//
// The serving runtimes arm the guard around the post-warmup hot path and
// publish the count as `serve_request_allocs`; bench_serving gates it at
// zero and CI runs that gate (.github/workflows/ci.yml, zero-alloc job).
//
// Cost when disarmed: one thread-local flag test per new/delete. Builds
// that cannot afford even that — or that must not replace new/delete at
// all (sanitizers install their own interposers; SEI_SANITIZE forces the
// option off) — compile the whole unit out via SEI_ALLOC_COUNTERS_ENABLED=0:
// the shims vanish, arm/disarm become no-ops, and counts read 0. Callers
// distinguish "zero allocations" from "not measuring" with
// alloc_counting_available().
#pragma once

#include <cstdint>

namespace sei::telemetry {

#if defined(SEI_ALLOC_COUNTERS_ENABLED) && SEI_ALLOC_COUNTERS_ENABLED
inline constexpr bool kAllocCountersEnabled = true;
#else
inline constexpr bool kAllocCountersEnabled = false;
#endif

/// True when this build actually counts heap traffic (the new/delete shims
/// are installed). False means every count below is a meaningless 0 and a
/// zero-alloc gate must skip rather than vacuously pass.
constexpr bool alloc_counting_available() { return kAllocCountersEnabled; }

/// Arms allocation counting on the calling thread. Nestable: inner arms
/// keep the thread armed; the count is shared (it tracks the thread, not
/// the scope). Returns the armed count at the time of the call.
std::uint64_t alloc_count_arm();

/// Disarms one level of arming; counting stops when the depth hits zero.
void alloc_count_disarm();

/// Allocations observed on this thread while armed (monotonic; never
/// reset — subtract two readings to scope a region).
std::uint64_t alloc_count();

/// RAII scope: arms on construction, disarms on destruction; count() reads
/// the allocations since construction.
class AllocGuard {
 public:
  AllocGuard() : start_(alloc_count_arm()) {}
  ~AllocGuard() { alloc_count_disarm(); }
  AllocGuard(const AllocGuard&) = delete;
  AllocGuard& operator=(const AllocGuard&) = delete;

  std::uint64_t count() const { return alloc_count() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace sei::telemetry
