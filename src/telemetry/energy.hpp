// Live energy accounting for network evaluation.
//
// An EnergyMeter holds the per-stage energy price list — the exact
// per-picture `arch::cost_model` figures, converted once up front by
// `arch::make_energy_meter` (arch/live_energy.hpp) — and evaluation charges
// each stage as it completes: `charge_stage` adds that stage's full
// breakdown plus its event counts (crossbar reads, SA compares, ADC/DAC
// conversions, OR-pool/WTA reads, ...) into a caller-owned EnergyAccum.
// Because a stage is charged with the same numbers the static table was
// built from, an accumulated run reproduces `arch::estimate_cost` totals
// exactly; the meter's value is attribution — which stages, which requests,
// which paths (SEI vs ADC-fallback vs probe) the joules went to.
//
// telemetry depends only on common, so the breakdown is mirrored here
// rather than including arch; arch owns the conversion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/config.hpp"
#include "telemetry/metrics.hpp"

namespace sei::telemetry {

/// Per-component energy in pJ — mirror of arch::CostBreakdown categories.
struct EnergyBreakdown {
  double dac = 0.0;
  double adc = 0.0;
  double sense_amp = 0.0;
  double driver = 0.0;
  double rram = 0.0;
  double decoder = 0.0;
  double digital = 0.0;
  double buffer = 0.0;
  double wta = 0.0;

  double total() const {
    return dac + adc + sense_amp + driver + rram + decoder + digital +
           buffer + wta;
  }
  double converters() const { return dac + adc; }
  /// The paper's Fig. 1 "interface" slice: everything between the digital
  /// world and the array — converters, sense amps, drivers, WTA readout.
  double interface() const { return dac + adc + sense_amp + driver + wta; }
  double array() const { return rram; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& o);
};

/// Per-picture operation counts charged alongside the energy.
struct EnergyEvents {
  std::uint64_t crossbar_reads = 0;    // crossbar activations (decoder events)
  std::uint64_t cell_activations = 0;  // individual RRAM cell reads
  std::uint64_t sa_compares = 0;
  std::uint64_t adc_conversions = 0;
  std::uint64_t dac_conversions = 0;
  std::uint64_t driver_ops = 0;
  std::uint64_t digital_adds = 0;
  std::uint64_t buffer_bits = 0;
  std::uint64_t wta_reads = 0;

  EnergyEvents& operator+=(const EnergyEvents& o);
};

/// One stage's per-picture price: energy plus the op counts it stands for.
///
/// SEI hidden/classifier stages additionally carry a per-row price split:
/// the transmission gates mean an inactive row draws no array current, so
/// the rram + driver components scale with the number of *activated* rows
/// while everything else (sense amps, decoders, digital votes, buffers,
/// WTA) is charged per picture regardless. `nominal_rows` is the
/// activations × rows product the static table assumed; when it is 0 the
/// stage has no row-proportional model (DAC-driven stage 0, ADC fallback)
/// and charge_stage_rows falls back to the uniform price.
struct StageEnergy {
  EnergyBreakdown pj;
  EnergyEvents events;

  // Activation-proportional split (sparsity accounting, docs/sparsity.md).
  std::int64_t nominal_rows = 0;  // activations(positions) x rows per picture
  double row_rram_pj = 0.0;       // pj.rram / nominal_rows
  double row_driver_pj = 0.0;     // pj.driver / nominal_rows
  std::uint64_t row_cells = 0;    // events.cell_activations / nominal_rows
  std::uint64_t row_drivers = 0;  // events.driver_ops / nominal_rows
};

/// Caller-owned accumulator (one per request, per chunk, per batch — merge
/// partials in deterministic order like any other reduction).
struct EnergyAccum {
  EnergyBreakdown pj;
  EnergyEvents events;
  std::uint64_t images = 0;
  std::uint64_t stages = 0;

  void merge(const EnergyAccum& o);
  void reset() { *this = EnergyAccum{}; }

  double joules() const { return pj.total() * 1e-12; }
  double joules_per_image() const {
    return images > 0 ? joules() / static_cast<double>(images) : 0.0;
  }
};

/// Immutable per-stage price list for one (network, structure) pair.
class EnergyMeter {
 public:
  EnergyMeter() = default;
  explicit EnergyMeter(std::vector<StageEnergy> stages)
      : stages_(std::move(stages)) {}

  std::size_t stage_count() const { return stages_.size(); }
  const StageEnergy& stage(std::size_t i) const { return stages_[i]; }

  void charge_stage(std::size_t i, EnergyAccum& acc) const {
    if constexpr (!kEnabled) {
      (void)i;
      (void)acc;
      return;
    }
    const StageEnergy& s = stages_[i];
    acc.pj += s.pj;
    acc.events += s.events;
    ++acc.stages;
  }

  /// Activation-proportional charge: stage `i`'s fixed components at the
  /// uniform per-picture price, but rram + driver scaled to the `rows`
  /// row-activations this picture actually drove (transmission gates gate
  /// the array current per row — docs/sparsity.md). Stages without a row
  /// model (nominal_rows == 0) fall back to charge_stage, so callers may
  /// use this unconditionally when sparsity accounting is on. Pure
  /// arithmetic on baked prices: calling it with the same `rows` yields
  /// bit-identical accumulators on every path (interpreter, plan, oracle).
  void charge_stage_rows(std::size_t i, std::int64_t rows,
                         EnergyAccum& acc) const {
    if constexpr (!kEnabled) {
      (void)i;
      (void)rows;
      (void)acc;
      return;
    }
    const StageEnergy& s = stages_[i];
    if (s.nominal_rows <= 0) {
      charge_stage(i, acc);
      return;
    }
    const double k = static_cast<double>(rows);
    acc.pj.dac += s.pj.dac;
    acc.pj.adc += s.pj.adc;
    acc.pj.sense_amp += s.pj.sense_amp;
    acc.pj.driver += s.row_driver_pj * k;
    acc.pj.rram += s.row_rram_pj * k;
    acc.pj.decoder += s.pj.decoder;
    acc.pj.digital += s.pj.digital;
    acc.pj.buffer += s.pj.buffer;
    acc.pj.wta += s.pj.wta;
    const std::uint64_t r = static_cast<std::uint64_t>(rows);
    acc.events.crossbar_reads += s.events.crossbar_reads;
    acc.events.cell_activations += s.row_cells * r;
    acc.events.sa_compares += s.events.sa_compares;
    acc.events.adc_conversions += s.events.adc_conversions;
    acc.events.dac_conversions += s.events.dac_conversions;
    acc.events.driver_ops += s.row_drivers * r;
    acc.events.digital_adds += s.events.digital_adds;
    acc.events.buffer_bits += s.events.buffer_bits;
    acc.events.wta_reads += s.events.wta_reads;
    ++acc.stages;
  }

  /// Bulk equivalent of charge_stage for uniform batches: charges stages
  /// [first, last) for `images` pictures in one scaled add per stage. Batch
  /// evaluation charges a whole chunk this way instead of 19 stores per
  /// stage per image — the difference between ~10% and unmeasurable
  /// overhead on the hot path. The caller still owns acc.images.
  void charge_stages(std::size_t first, std::size_t last,
                     std::uint64_t images, EnergyAccum& acc) const;

  /// Whole-network per-picture price (sum over stages).
  EnergyBreakdown network_pj() const;

  /// Per-picture floor under activation-proportional accounting: the sum
  /// over stages with the row-proportional rram + driver components of
  /// row-modeled stages excluded (the price of a picture that activates
  /// zero rows everywhere). network_pj() is the matching ceiling — every
  /// nominal row active. Together they bound any row-charged bill.
  EnergyBreakdown network_floor_pj() const;

 private:
  std::vector<StageEnergy> stages_;
};

/// Publishes an accumulator into `reg` under
/// `sei_energy_fj_total{path="<path>",component="<c>"}` (femtojoule
/// fixed-point so concurrent publishes stay order-independent), plus
/// `sei_images_total{path=...}` and per-op-kind
/// `sei_ops_total{path=...,op=...}` counters.
void publish_energy(MetricsRegistry& reg, const std::string& path,
                    const EnergyAccum& acc);

}  // namespace sei::telemetry
