// Live energy accounting for network evaluation.
//
// An EnergyMeter holds the per-stage energy price list — the exact
// per-picture `arch::cost_model` figures, converted once up front by
// `arch::make_energy_meter` (arch/live_energy.hpp) — and evaluation charges
// each stage as it completes: `charge_stage` adds that stage's full
// breakdown plus its event counts (crossbar reads, SA compares, ADC/DAC
// conversions, OR-pool/WTA reads, ...) into a caller-owned EnergyAccum.
// Because a stage is charged with the same numbers the static table was
// built from, an accumulated run reproduces `arch::estimate_cost` totals
// exactly; the meter's value is attribution — which stages, which requests,
// which paths (SEI vs ADC-fallback vs probe) the joules went to.
//
// telemetry depends only on common, so the breakdown is mirrored here
// rather than including arch; arch owns the conversion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/config.hpp"
#include "telemetry/metrics.hpp"

namespace sei::telemetry {

/// Per-component energy in pJ — mirror of arch::CostBreakdown categories.
struct EnergyBreakdown {
  double dac = 0.0;
  double adc = 0.0;
  double sense_amp = 0.0;
  double driver = 0.0;
  double rram = 0.0;
  double decoder = 0.0;
  double digital = 0.0;
  double buffer = 0.0;
  double wta = 0.0;

  double total() const {
    return dac + adc + sense_amp + driver + rram + decoder + digital +
           buffer + wta;
  }
  double converters() const { return dac + adc; }
  /// The paper's Fig. 1 "interface" slice: everything between the digital
  /// world and the array — converters, sense amps, drivers, WTA readout.
  double interface() const { return dac + adc + sense_amp + driver + wta; }
  double array() const { return rram; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& o);
};

/// Per-picture operation counts charged alongside the energy.
struct EnergyEvents {
  std::uint64_t crossbar_reads = 0;    // crossbar activations (decoder events)
  std::uint64_t cell_activations = 0;  // individual RRAM cell reads
  std::uint64_t sa_compares = 0;
  std::uint64_t adc_conversions = 0;
  std::uint64_t dac_conversions = 0;
  std::uint64_t driver_ops = 0;
  std::uint64_t digital_adds = 0;
  std::uint64_t buffer_bits = 0;
  std::uint64_t wta_reads = 0;

  EnergyEvents& operator+=(const EnergyEvents& o);
};

/// One stage's per-picture price: energy plus the op counts it stands for.
struct StageEnergy {
  EnergyBreakdown pj;
  EnergyEvents events;
};

/// Caller-owned accumulator (one per request, per chunk, per batch — merge
/// partials in deterministic order like any other reduction).
struct EnergyAccum {
  EnergyBreakdown pj;
  EnergyEvents events;
  std::uint64_t images = 0;
  std::uint64_t stages = 0;

  void merge(const EnergyAccum& o);
  void reset() { *this = EnergyAccum{}; }

  double joules() const { return pj.total() * 1e-12; }
  double joules_per_image() const {
    return images > 0 ? joules() / static_cast<double>(images) : 0.0;
  }
};

/// Immutable per-stage price list for one (network, structure) pair.
class EnergyMeter {
 public:
  EnergyMeter() = default;
  explicit EnergyMeter(std::vector<StageEnergy> stages)
      : stages_(std::move(stages)) {}

  std::size_t stage_count() const { return stages_.size(); }
  const StageEnergy& stage(std::size_t i) const { return stages_[i]; }

  void charge_stage(std::size_t i, EnergyAccum& acc) const {
    if constexpr (!kEnabled) {
      (void)i;
      (void)acc;
      return;
    }
    const StageEnergy& s = stages_[i];
    acc.pj += s.pj;
    acc.events += s.events;
    ++acc.stages;
  }

  /// Bulk equivalent of charge_stage for uniform batches: charges stages
  /// [first, last) for `images` pictures in one scaled add per stage. Batch
  /// evaluation charges a whole chunk this way instead of 19 stores per
  /// stage per image — the difference between ~10% and unmeasurable
  /// overhead on the hot path. The caller still owns acc.images.
  void charge_stages(std::size_t first, std::size_t last,
                     std::uint64_t images, EnergyAccum& acc) const;

  /// Whole-network per-picture price (sum over stages).
  EnergyBreakdown network_pj() const;

 private:
  std::vector<StageEnergy> stages_;
};

/// Publishes an accumulator into `reg` under
/// `sei_energy_fj_total{path="<path>",component="<c>"}` (femtojoule
/// fixed-point so concurrent publishes stay order-independent), plus
/// `sei_images_total{path=...}` and per-op-kind
/// `sei_ops_total{path=...,op=...}` counters.
void publish_energy(MetricsRegistry& reg, const std::string& path,
                    const EnergyAccum& acc);

}  // namespace sei::telemetry
