// RAII tracing spans with thread-local buffers.
//
// A Span records (name, thread, start, duration) into its thread's private
// buffer — one uncontended lock per span, no global synchronization on the
// hot path — and Tracer::drain() collects every buffer into a single list
// ordered by (thread, start time), ready for the Chrome trace-event
// exporter (export.hpp). Tracing is off by default even when telemetry is
// compiled in; --trace-out (telemetry/flags.hpp) or Tracer::set_enabled(true)
// arms it, and a disarmed Span costs one relaxed atomic load.
//
// Span names must be string literals (or otherwise outlive the tracer):
// only the pointer is stored.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "telemetry/config.hpp"

namespace sei::telemetry {

struct TraceEvent {
  const char* name = "";
  std::uint32_t tid = 0;      // stable per-thread index, assigned on first use
  std::int64_t start_ns = 0;  // relative to Tracer origin (process start)
  std::int64_t dur_ns = 0;
  bool operator==(const TraceEvent&) const = default;
};

class Tracer {
 public:
  static void set_enabled(bool on);
  static bool enabled() {
    if constexpr (!kEnabled) return false;
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the tracer origin (steady clock).
  static std::int64_t now_ns();

  /// Appends one completed span to the calling thread's buffer.
  static void record(const char* name, std::int64_t start_ns,
                     std::int64_t dur_ns);

  /// Moves every recorded event (live thread buffers + buffers of exited
  /// threads) out of the tracer, sorted by (tid, start_ns, -dur_ns) so a
  /// parent span precedes the children it encloses.
  static std::vector<TraceEvent> drain();

 private:
  static std::atomic<bool>& enabled_flag();
};

/// Scope timer: records a TraceEvent when destroyed (or finished early).
class Span {
 public:
  explicit Span(const char* name) {
    if (Tracer::enabled()) {
      name_ = name;
      start_ = Tracer::now_ns();
    }
  }
  ~Span() { finish(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void finish() {
    if (name_ != nullptr) {
      Tracer::record(name_, start_, Tracer::now_ns() - start_);
      name_ = nullptr;
    }
  }

 private:
  const char* name_ = nullptr;
  std::int64_t start_ = 0;
};

}  // namespace sei::telemetry
