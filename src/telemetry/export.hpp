// Exporters for metrics snapshots and trace events.
//
// Three formats:
//  * JSON snapshot (`sei-metrics-v1`): the machine-readable dump benches and
//    serve_demo write via --metrics-out; histograms carry their buckets plus
//    derived p50/p99.
//  * Prometheus text exposition: same data, scrape-compatible; histogram
//    buckets become cumulative `_bucket{le=...}` series.
//  * Chrome trace-event JSON: Tracer::drain() output as complete ("X")
//    events, loadable in chrome://tracing and Perfetto.
//
// All file writers use JsonWriter / atomic replace, so a crash mid-export
// never leaves a torn file.
#pragma once

#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace sei::telemetry {

/// Writes a snapshot as JSON (schema "sei-metrics-v1") to `path`.
void write_metrics_json(const std::string& path, const MetricsSnapshot& snap);

/// Renders a snapshot in Prometheus text exposition format (version 0.0.4).
std::string prometheus_text(const MetricsSnapshot& snap);

/// Writes prometheus_text() to `path` (atomic tmp + rename).
void write_prometheus(const std::string& path, const MetricsSnapshot& snap);

/// Writes trace events as Chrome trace-event JSON ({"traceEvents": [...]}).
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events);

}  // namespace sei::telemetry
