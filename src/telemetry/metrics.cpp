#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace sei::telemetry {

namespace {

constexpr std::uint64_t kPosInfBits =
    std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity());
constexpr std::uint64_t kNegInfBits =
    std::bit_cast<std::uint64_t>(-std::numeric_limits<double>::infinity());

/// CAS-loop update of an extremum stored as a double bit pattern. The
/// result depends only on the set of observed values, never on the order
/// threads raced in.
template <typename Better>
void update_extremum(std::atomic<std::uint64_t>& slot, double v, Better b) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (b(v, std::bit_cast<double>(cur))) {
    if (slot.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                   std::memory_order_relaxed))
      return;
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds, double sum_unit)
    : bounds_(std::move(bounds)),
      min_bits_(kPosInfBits),
      max_bits_(kNegInfBits),
      sum_unit_(sum_unit) {
  SEI_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  SEI_CHECK_MSG(sum_unit_ > 0.0, "histogram sum_unit must be positive");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    SEI_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                  "histogram bounds must be strictly ascending");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  if constexpr (!kEnabled) {
    (void)v;
    return;
  }
  // First bound >= v; values above every bound go to the overflow bucket.
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_units_.fetch_add(std::llround(v / sum_unit_),
                       std::memory_order_relaxed);
  update_extremum(min_bits_, v, std::less<double>{});
  update_extremum(max_bits_, v, std::greater<double>{});
}

double Histogram::min() const {
  const double v =
      std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::max() const {
  const double v =
      std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  return std::isinf(v) ? 0.0 : v;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_units_.store(0, std::memory_order_relaxed);
  min_bits_.store(kPosInfBits, std::memory_order_relaxed);
  max_bits_.store(kNegInfBits, std::memory_order_relaxed);
}

double HistogramSample::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      // Interpolate inside [lo, hi); the overflow bucket has no upper edge,
      // so report the observed max there (and clamp every estimate to it).
      const double lo = b == 0 ? std::min(min, bounds[0]) : bounds[b - 1];
      const double hi = b < bounds.size() ? bounds[b] : max;
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), min,
                        max);
    }
    seen += in_bucket;
  }
  return max;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      double sum_unit) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds), sum_unit);
  } else {
    SEI_CHECK_MSG(slot->bounds() == bounds,
                  "histogram '" << name << "' re-registered with different "
                                   "bucket bounds");
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    s.counters.push_back({name, c->value()});
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.push_back({name, g->value()});
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.buckets.resize(hs.bounds.size() + 1);
    for (std::size_t i = 0; i < hs.buckets.size(); ++i)
      hs.buckets[i] = h->bucket(i);
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    s.histograms.push_back(std::move(hs));
  }
  return s;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

std::vector<double> exponential_buckets(double start, double factor,
                                        int count) {
  SEI_CHECK(start > 0.0 && factor > 1.0 && count >= 1);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

const std::vector<double>& latency_ms_buckets() {
  static const std::vector<double> b = exponential_buckets(0.01, 2.0, 21);
  return b;
}

}  // namespace sei::telemetry
