// Standard --metrics-out / --trace-out wiring for every CLI binary.
//
// Usage in a bench/example main():
//   sei::Cli cli(argc, argv);
//   ...                                     // binary-specific flags
//   auto tel = sei::telemetry::telemetry_flags(cli);   // before validate()
//   if (!cli.validate(...)) return 0;
//   ...                                     // run the workload
//   sei::telemetry::telemetry_flush(tel);   // write requested exports
//
// telemetry_flags arms the Tracer when --trace-out is given, so spans are
// only recorded when somebody asked for the trace file.
#pragma once

#include <string>

#include "common/cli.hpp"

namespace sei::telemetry {

struct TelemetryOptions {
  std::string metrics_out;  // "" = no metrics export
  std::string trace_out;    // "" = tracing stays disabled
};

/// Declares --metrics-out and --trace-out on `cli` and enables the tracer
/// if a trace path was requested. Call before cli.validate().
TelemetryOptions telemetry_flags(Cli& cli);

/// Writes the global registry snapshot to `metrics_out` (Prometheus text
/// when the path ends in ".prom", JSON otherwise) and the drained trace to
/// `trace_out` as Chrome trace-event JSON. Paths left empty are skipped.
void telemetry_flush(const TelemetryOptions& opts);

}  // namespace sei::telemetry
