#include "telemetry/alloc.hpp"

#include <cstdlib>
#include <new>

namespace sei::telemetry {
namespace {

// POD thread-locals only: these are touched from inside operator new, which
// can run before any constructor and during TLS teardown — a guarded
// (dynamically initialized) thread_local would recurse into the allocator.
thread_local std::uint64_t t_count = 0;
thread_local int t_armed = 0;

}  // namespace

std::uint64_t alloc_count_arm() {
  if constexpr (kAllocCountersEnabled) ++t_armed;
  return t_count;
}

void alloc_count_disarm() {
  if constexpr (kAllocCountersEnabled) {
    if (t_armed > 0) --t_armed;
  }
}

std::uint64_t alloc_count() { return t_count; }

}  // namespace sei::telemetry

#if defined(SEI_ALLOC_COUNTERS_ENABLED) && SEI_ALLOC_COUNTERS_ENABLED

// Global operator new/delete replacement ([new.delete.single]): malloc plus
// one armed-flag test. Alignment overloads forward to aligned_alloc so
// over-aligned types (the 64-byte Arena block) stay correct.
namespace {

void* counted_alloc(std::size_t size) {
  using namespace sei::telemetry;
  if (t_armed > 0) ++t_count;
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* counted_alloc(std::size_t size, std::size_t align) {
  using namespace sei::telemetry;
  if (t_armed > 0) ++t_count;
  if (size == 0) size = align;
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc(size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}

#endif  // SEI_ALLOC_COUNTERS_ENABLED
