#include "arch/latency_model.hpp"

#include <algorithm>

namespace sei::arch {

NetworkTiming estimate_timing(const NetworkCost& cost,
                              const TimingParams& p) {
  using core::StructureKind;
  NetworkTiming t;
  double bottleneck_us = 0.0;
  for (const StageCost& sc : cost.stages) {
    StageTiming st;
    st.cycles = sc.hw.geom.activations();
    switch (cost.structure) {
      case StructureKind::kDacAdc8:
        st.cycle_ns = p.dac_settle_ns + p.crossbar_read_ns +
                      p.adc_conversion_ns + p.digital_merge_ns;
        break;
      case StructureKind::kBinInputAdc:
        st.cycle_ns = p.crossbar_read_ns + p.adc_conversion_ns +
                      p.digital_merge_ns +
                      (sc.hw.first_stage ? p.dac_settle_ns : 0.0);
        break;
      case StructureKind::kSei:
        st.cycle_ns = p.crossbar_read_ns + p.digital_merge_ns +
                      (sc.hw.first_stage ? p.dac_settle_ns : 0.0);
        break;
    }
    st.stage_latency_us = st.cycles * st.cycle_ns * 1e-3;
    t.latency_us += st.stage_latency_us;
    bottleneck_us = std::max(bottleneck_us, st.stage_latency_us);
    t.stages.push_back(st);
  }
  SEI_CHECK(bottleneck_us > 0.0);
  t.throughput_kfps = 1e3 / bottleneck_us;
  // energy [pJ] × pictures/s → W; report mW.
  t.average_power_mw =
      cost.energy_pj.total() * 1e-12 * t.throughput_kfps * 1e3 * 1e3;
  return t;
}

std::vector<ReplicationPoint> replication_tradeoff(
    const NetworkCost& cost, const std::vector<int>& factors,
    const TimingParams& params) {
  std::vector<ReplicationPoint> out;
  out.reserve(factors.size());
  const NetworkTiming base = estimate_timing(cost, params);
  // Replicated share of the area: everything except the inter-layer
  // buffers (which are shared) scales with the factor.
  const double replicated_um2 =
      cost.area_um2.total() - cost.area_um2.buffer;
  for (int f : factors) {
    SEI_CHECK_MSG(f >= 1, "replication factor must be positive");
    ReplicationPoint p;
    p.factor = f;
    p.latency_us = base.latency_us / f;
    p.throughput_kfps = base.throughput_kfps * f;
    p.average_power_mw = base.average_power_mw * f;
    p.energy_uj_per_picture = cost.energy_uj_per_picture();
    p.area_mm2 = (replicated_um2 * f + cost.area_um2.buffer) * 1e-6;
    out.push_back(p);
  }
  return out;
}

}  // namespace sei::arch
