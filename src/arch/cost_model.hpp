// Energy and area estimation from a hardware plan + the periphery catalog.
//
// Energy is per picture (the paper's metric — buffers let power trade
// against time, but per-picture energy is invariant to that trade, §5.3).
// Area is the minimum sum over all analog and digital module instances
// (layout/routing overheads are out of scope, as in the paper).
#pragma once

#include <string>
#include <vector>

#include "arch/plan.hpp"
#include "rram/periphery.hpp"

namespace sei::arch {

/// Cost split by component category. Units: pJ for energy, µm² for area.
struct CostBreakdown {
  double dac = 0.0;
  double adc = 0.0;
  double sense_amp = 0.0;
  double driver = 0.0;
  double rram = 0.0;
  double decoder = 0.0;
  double digital = 0.0;
  double buffer = 0.0;
  double wta = 0.0;

  double total() const {
    return dac + adc + sense_amp + driver + rram + decoder + digital +
           buffer + wta;
  }
  double converters() const { return dac + adc; }
  /// Everything that is neither a converter nor the RRAM array itself.
  double other() const { return total() - converters() - rram; }

  CostBreakdown& operator+=(const CostBreakdown& o);
};

struct StageCost {
  StageHardware hw;
  CostBreakdown energy_pj;
  CostBreakdown area_um2;
};

struct NetworkCost {
  core::StructureKind structure = core::StructureKind::kDacAdc8;
  std::vector<StageCost> stages;
  CostBreakdown energy_pj;   // totals
  CostBreakdown area_um2;
  long long logical_ops = 0;  // 2 × MACs per picture

  double energy_uj_per_picture() const { return energy_pj.total() * 1e-6; }
  double area_mm2() const { return area_um2.total() * 1e-6; }
  /// Giga-operations per joule at this per-picture energy.
  double gops_per_joule() const {
    const double joules = energy_pj.total() * 1e-12;
    return joules > 0 ? static_cast<double>(logical_ops) / joules * 1e-9 : 0;
  }
};

/// Costs one planned stage.
StageCost cost_stage(const StageHardware& hw, const core::HardwareConfig& cfg,
                     const rram::PeripheryCatalog& catalog);

/// Plans and costs a whole network under one structure.
NetworkCost estimate_cost(
    const quant::Topology& topo, const core::HardwareConfig& cfg,
    core::StructureKind structure,
    const rram::PeripheryCatalog& catalog = rram::default_periphery());

/// Percentage saving of `candidate` relative to `baseline` (energy or area
/// totals); positive = candidate is cheaper.
double saving_pct(double baseline, double candidate);

/// One-time chip programming energy (µJ): every cell written with
/// write-verify. Amortizes over the chip's lifetime — reported separately
/// from the per-picture energy, with the number of pictures after which it
/// is amortized below 1% of the inference energy.
struct ProgrammingCost {
  long long cells = 0;
  double energy_uj = 0.0;
  double amortized_below_1pct_pictures = 0.0;
};
ProgrammingCost programming_cost(
    const NetworkCost& cost,
    const rram::PeripheryCatalog& catalog = rram::default_periphery());

/// Hardware price of the reliability subsystem: reserved spare-row array
/// area (provisioned up front by HardwareConfig::spare_row_fraction), the
/// write energy of repair pulses (retry escalation + spare-row remap), and
/// the calibration-batch inference energy of the post-repair threshold
/// recalibration. Like ProgrammingCost these are one-time/maintenance
/// costs, reported separately from per-picture inference energy.
struct ReliabilityCost {
  long long spare_cells = 0;
  double spare_area_um2 = 0.0;
  double repair_energy_uj = 0.0;         // repair write pulses
  double recalibration_energy_uj = 0.0;  // calibration-batch inference
};
/// `repair_cell_writes` counts individual write pulses spent on repair
/// (reliability::RepairReport::cell_writes); `calibration_images` is the
/// recalibration batch size.
ReliabilityCost reliability_cost(
    const NetworkCost& cost, long long repair_cell_writes,
    int calibration_images,
    const rram::PeripheryCatalog& catalog = rram::default_periphery());

}  // namespace sei::arch
