// Bridge from the static cost model to the live telemetry EnergyMeter.
//
// make_energy_meter prices every stage of a network once (plan_stage ×
// periphery catalog — the same arithmetic as estimate_cost) and packages
// the result as a telemetry::EnergyMeter, so evaluation code can charge a
// stage in O(1) as it completes. An EnergyAccum filled by such a meter
// reproduces estimate_cost's per-category totals exactly: images ×
// NetworkCost.energy_pj, category by category.
#pragma once

#include "arch/cost_model.hpp"
#include "telemetry/energy.hpp"

namespace sei::arch {

/// Converts one costed stage into its live-metering price entry.
telemetry::StageEnergy stage_energy(const StageCost& sc);

/// Per-stage price list for `topo` under `structure`.
telemetry::EnergyMeter make_energy_meter(
    const quant::Topology& topo, const core::HardwareConfig& cfg,
    core::StructureKind structure,
    const rram::PeripheryCatalog& catalog = rram::default_periphery());

/// Same, taking the stage geometries straight from a quantized network —
/// what SeiNetwork/AdcNetwork and the serving runtime are built from.
telemetry::EnergyMeter make_energy_meter(
    const quant::QNetwork& qnet, const core::HardwareConfig& cfg,
    core::StructureKind structure,
    const rram::PeripheryCatalog& catalog = rram::default_periphery());

}  // namespace sei::arch
