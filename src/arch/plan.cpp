#include "arch/plan.hpp"

#include "core/mapping.hpp"
#include "split/partition.hpp"

namespace sei::arch {

namespace {

int bit_slices(int value_bits, int device_bits) {
  return (value_bits + device_bits - 1) / device_bits;
}

int ceil_div(int a, int b) { return (a + b - 1) / b; }

}  // namespace

StageHardware plan_stage(const quant::StageGeometry& geom,
                         const core::HardwareConfig& cfg,
                         core::StructureKind structure, bool first_stage,
                         bool final_stage) {
  using core::StructureKind;
  StageHardware hw;
  hw.geom = geom;
  hw.structure = structure;
  hw.first_stage = first_stage;
  hw.final_stage = final_stage;

  const long long r = geom.rows, c = geom.cols, a = geom.activations();
  const long long pixels =
      static_cast<long long>(geom.in_h) * geom.in_w * geom.in_ch;
  const long long out_elems =
      static_cast<long long>(geom.pooled_h) * geom.pooled_w * c;
  const int data_bits = cfg.input_bits;

  // Bit-slice × polarity planes used by the ADC-merging structures (and by
  // the analog-merged DAC-driven first layer of SEI).
  const int planes = 2 * bit_slices(cfg.weight_bits - 1, cfg.device.bits);
  const int k_base = ceil_div(geom.rows, cfg.limits.max_rows);
  // Columns partition freely across crossbars (disjoint outputs, no
  // merging); this factor only multiplies the array/decoder counts.
  const int cb_base = ceil_div(geom.cols, cfg.limits.max_cols);

  const bool merging = structure == StructureKind::kDacAdc8 ||
                       structure == StructureKind::kBinInputAdc;
  const bool quantized_inputs = structure != StructureKind::kDacAdc8;

  if (merging || first_stage) {
    // Plane-based physical layout.
    hw.planes = planes;
    hw.row_blocks = k_base;
    hw.crossbars = planes * k_base * cb_base;
    hw.cells = r * c * planes;
    hw.cell_activations = a * r * c * planes;
  }

  if (merging) {
    hw.adc_instances = static_cast<int>(c) * planes * k_base;
    hw.adc_conversions = a * c * planes * k_base;
    hw.adder_instances = static_cast<int>(c) * planes * k_base;
    hw.digital_adds = a * c * planes * k_base;
  }

  // Input drive.
  if (structure == StructureKind::kDacAdc8) {
    hw.dac_instances = static_cast<int>(r);
    hw.dac_conversions = a * r;  // full vector converted per activation
  } else if (first_stage) {
    // Quantized structures: the image is converted once per pixel and held.
    hw.dac_instances = static_cast<int>(r);
    hw.dac_conversions = pixels;
  } else {
    const int fan =
        structure == StructureKind::kSei ? cfg.cells_per_weight() : 1;
    hw.driver_instances = static_cast<int>(r) * fan;
    hw.driver_ops = a * r * fan;
  }

  if (structure == StructureKind::kSei) {
    if (first_stage) {
      // Plane currents merge through ratioed mirrors into one SA per
      // column per row block — output is 1-bit, so no ADC is needed.
      hw.sa_instances = static_cast<int>(c) * k_base;
      hw.sa_decisions = a * c * k_base;
      if (k_base > 1) {
        hw.adder_instances = static_cast<int>(c) * k_base;
        hw.digital_adds = a * c * k_base;  // vote over row blocks
      }
    } else {
      const int cpw = cfg.cells_per_weight();
      const int k_sei =
          split::blocks_needed(geom.rows, cfg.limits.max_rows, cpw,
                               cfg.spare_row_fraction);
      const int cb_sei = core::column_blocks(geom.cols, cfg);
      hw.row_blocks = k_sei;
      hw.planes = 1;
      hw.crossbars = k_sei * cb_sei;
      const bool unipolar =
          cfg.sign_mode == core::SignMode::kUnipolarDynThresh;
      const long long extra_cols = unipolar ? cb_sei : 0;
      // Spare rows mirror the mapper's per-block reservation (the first
      // rows % k blocks hold one extra logical row).
      long long spare_rows = 0;
      for (int b = 0; b < k_sei; ++b) {
        const int lrows =
            geom.rows / k_sei + (b < geom.rows % k_sei ? 1 : 0);
        spare_rows +=
            split::spare_rows_for(lrows * cpw, cfg.spare_row_fraction);
      }
      hw.spare_cells = spare_rows * (c + extra_cols);
      hw.cells = r * cpw * (c + extra_cols) + hw.spare_cells;
      hw.cell_activations = a * r * cpw * (c + extra_cols);
      if (final_stage) {
        hw.wta_instances = 1;
        hw.wta_reads = a;
      } else {
        hw.sa_instances = static_cast<int>(c) * k_sei;
        hw.sa_decisions = a * c * k_sei;
        hw.adder_instances = static_cast<int>(c) * k_sei;
        hw.digital_adds = a * c * k_sei;  // vote logic
      }
    }
  }

  // Inter-layer buffering. Output of a hidden stage is buffered at the data
  // precision of the *next* stage's inputs; the classifier scores are read
  // out directly.
  const int out_bits = quantized_inputs ? 1 : data_bits;
  const int in_bits = (first_stage || !quantized_inputs) ? data_bits : 1;
  if (!final_stage) hw.buffer_bits = out_elems * out_bits;
  const long long input_reads =
      (first_stage && quantized_inputs) ? pixels * in_bits : a * r * in_bits;
  hw.buffer_accesses_bits =
      input_reads + (final_stage ? 0 : out_elems * out_bits);

  hw.crossbar_activations = a * hw.crossbars;
  return hw;
}

std::vector<StageHardware> plan_network(const quant::Topology& topo,
                                        const core::HardwareConfig& cfg,
                                        core::StructureKind structure) {
  const auto geoms = quant::resolve_geometry(topo);
  std::vector<StageHardware> out;
  out.reserve(geoms.size());
  for (std::size_t i = 0; i < geoms.size(); ++i)
    out.push_back(plan_stage(geoms[i], cfg, structure, i == 0,
                             i + 1 == geoms.size()));
  return out;
}

long long logical_ops_per_picture(const quant::Topology& topo) {
  long long macs = 0;
  for (const auto& g : quant::resolve_geometry(topo)) macs += g.macs();
  return 2 * macs;
}

}  // namespace sei::arch
