// Physical hardware planning: how many crossbars, converters, sense amps,
// drivers and buffer bits each structure needs for each network stage, and
// how many operations of each kind one picture costs.
//
// Modeling assumptions (documented per DESIGN.md §3/§7):
//  * Kernels/crossbars are reused across feature-map positions (the paper's
//    area baseline), so instance counts are per stage, while operation
//    counts are per picture (activations × per-activation work).
//  * Baseline (DAC+ADC, 8-bit data): one DAC per crossbar input row (shared
//    across the bit-slice/polarity planes, which see the same voltages) and
//    one ADC per crossbar column per plane — the Fig. 1 cost structure.
//    Every activation converts its full input vector (8-bit digital
//    pipeline, no analog hold).
//  * Quantized structures: the input image is converted once per pixel and
//    held (sample-and-hold) while the first-layer kernel scans; hidden
//    layers use 1-bit drivers.
//  * 1-bit-Input+ADC keeps the baseline's merging ADCs at every layer.
//  * SEI: no ADCs. The first (DAC-driven) layer merges its plane currents
//    with ratioed analog mirrors directly into the column SAs — possible
//    only because its output is immediately thresholded to 1 bit. Hidden
//    layers are single SEI crossbars; the classifier uses a winner-take-all
//    readout once per picture.
#pragma once

#include <vector>

#include "core/structure.hpp"
#include "quant/qnet.hpp"

namespace sei::arch {

/// Instance counts (area side) and per-picture operation counts (energy
/// side) for one stage under one structure.
struct StageHardware {
  quant::StageGeometry geom;
  core::StructureKind structure = core::StructureKind::kDacAdc8;
  bool first_stage = false;
  bool final_stage = false;

  // Instances.
  int crossbars = 0;
  int planes = 1;       // bit-slice × polarity planes (merging structures)
  int row_blocks = 1;   // splits along the row dimension
  int dac_instances = 0;
  int adc_instances = 0;
  int sa_instances = 0;
  int driver_instances = 0;
  int adder_instances = 0;
  int wta_instances = 0;
  long long cells = 0;          // programmed RRAM cells (includes spares)
  long long spare_cells = 0;    // reserved spare-row cells inside `cells`
  long long buffer_bits = 0;    // output-side inter-layer buffer capacity

  // Per-picture operation counts.
  long long dac_conversions = 0;
  long long adc_conversions = 0;
  long long sa_decisions = 0;
  long long driver_ops = 0;
  long long cell_activations = 0;
  long long digital_adds = 0;
  long long buffer_accesses_bits = 0;
  long long crossbar_activations = 0;  // decoder/control events
  long long wta_reads = 0;
};

/// Plans one stage. `first/final` select the input-layer DAC and classifier
/// readout special cases described above.
StageHardware plan_stage(const quant::StageGeometry& geom,
                         const core::HardwareConfig& cfg,
                         core::StructureKind structure, bool first_stage,
                         bool final_stage);

/// Plans a whole topology.
std::vector<StageHardware> plan_network(const quant::Topology& topo,
                                        const core::HardwareConfig& cfg,
                                        core::StructureKind structure);

/// Logical operations (2 × MACs) per picture for a topology — the paper's
/// GOPs accounting base.
long long logical_ops_per_picture(const quant::Topology& topo);

}  // namespace sei::arch
