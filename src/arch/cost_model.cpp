#include "arch/cost_model.hpp"

namespace sei::arch {

CostBreakdown& CostBreakdown::operator+=(const CostBreakdown& o) {
  dac += o.dac;
  adc += o.adc;
  sense_amp += o.sense_amp;
  driver += o.driver;
  rram += o.rram;
  decoder += o.decoder;
  digital += o.digital;
  buffer += o.buffer;
  wta += o.wta;
  return *this;
}

StageCost cost_stage(const StageHardware& hw, const core::HardwareConfig& cfg,
                     const rram::PeripheryCatalog& cat) {
  StageCost sc;
  sc.hw = hw;
  const int data_bits = cfg.input_bits;

  auto& e = sc.energy_pj;
  e.dac = static_cast<double>(hw.dac_conversions) * cat.dac_energy_pj(data_bits);
  e.adc = static_cast<double>(hw.adc_conversions) * cat.adc_energy_pj(data_bits);
  e.sense_amp = static_cast<double>(hw.sa_decisions) * cat.sense_amp.energy_pj;
  e.driver = static_cast<double>(hw.driver_ops) * cat.driver_1bit.energy_pj;
  e.rram = static_cast<double>(hw.cell_activations) * cat.rram_cell.energy_pj;
  e.decoder =
      static_cast<double>(hw.crossbar_activations) * cat.decoder.energy_pj;
  e.digital = static_cast<double>(hw.digital_adds) * cat.digital_add8.energy_pj;
  e.buffer =
      static_cast<double>(hw.buffer_accesses_bits) * cat.buffer_bit.energy_pj;
  e.wta = static_cast<double>(hw.wta_reads) * cat.wta_readout.energy_pj;

  auto& ar = sc.area_um2;
  ar.dac = static_cast<double>(hw.dac_instances) * cat.dac_area_um2(data_bits);
  ar.adc = static_cast<double>(hw.adc_instances) * cat.adc_area_um2(data_bits);
  ar.sense_amp = static_cast<double>(hw.sa_instances) * cat.sense_amp.area_um2;
  ar.driver =
      static_cast<double>(hw.driver_instances) * cat.driver_1bit.area_um2;
  ar.rram = static_cast<double>(hw.cells) * cat.rram_cell.area_um2;
  ar.decoder = static_cast<double>(hw.crossbars) * cat.decoder.area_um2;
  ar.digital =
      static_cast<double>(hw.adder_instances) * cat.digital_add8.area_um2;
  ar.buffer = static_cast<double>(hw.buffer_bits) * cat.buffer_bit.area_um2;
  ar.wta = static_cast<double>(hw.wta_instances) * cat.wta_readout.area_um2;
  return sc;
}

NetworkCost estimate_cost(const quant::Topology& topo,
                          const core::HardwareConfig& cfg,
                          core::StructureKind structure,
                          const rram::PeripheryCatalog& catalog) {
  NetworkCost nc;
  nc.structure = structure;
  nc.logical_ops = logical_ops_per_picture(topo);
  for (const StageHardware& hw : plan_network(topo, cfg, structure)) {
    StageCost sc = cost_stage(hw, cfg, catalog);
    nc.energy_pj += sc.energy_pj;
    nc.area_um2 += sc.area_um2;
    nc.stages.push_back(std::move(sc));
  }
  return nc;
}

double saving_pct(double baseline, double candidate) {
  SEI_CHECK(baseline > 0);
  return 100.0 * (1.0 - candidate / baseline);
}

ProgrammingCost programming_cost(const NetworkCost& cost,
                                 const rram::PeripheryCatalog& catalog) {
  ProgrammingCost pc;
  for (const StageCost& sc : cost.stages) pc.cells += sc.hw.cells;
  pc.energy_uj = static_cast<double>(pc.cells) *
                 catalog.write_verify_attempts * catalog.cell_write.energy_pj *
                 1e-6;
  const double per_picture_uj = cost.energy_pj.total() * 1e-6;
  pc.amortized_below_1pct_pictures =
      per_picture_uj > 0 ? pc.energy_uj / (0.01 * per_picture_uj) : 0.0;
  return pc;
}

ReliabilityCost reliability_cost(const NetworkCost& cost,
                                 long long repair_cell_writes,
                                 int calibration_images,
                                 const rram::PeripheryCatalog& catalog) {
  SEI_CHECK(repair_cell_writes >= 0 && calibration_images >= 0);
  ReliabilityCost rc;
  for (const StageCost& sc : cost.stages) rc.spare_cells += sc.hw.spare_cells;
  rc.spare_area_um2 =
      static_cast<double>(rc.spare_cells) * catalog.rram_cell.area_um2;
  rc.repair_energy_uj =
      static_cast<double>(repair_cell_writes) * catalog.cell_write.energy_pj *
      1e-6;
  rc.recalibration_energy_uj =
      calibration_images * cost.energy_pj.total() * 1e-6;
  return rc;
}

}  // namespace sei::arch
