// Latency / throughput / average-power estimation.
//
// The paper evaluates per-picture energy (invariant to the buffer-count
// power/time trade it mentions in §5.3); this model adds the time axis.
// Execution model: each stage's crossbars process one output position per
// cycle (kernels are reused across positions — the paper's area baseline),
// stages are pipelined picture-to-picture through the inter-layer buffers,
// so throughput is set by the slowest stage and latency by the sum.
//
// Cycle time per structure:
//   DAC+ADC        : DAC settle + crossbar read + ADC conversion + merge
//   1-bit-Input+ADC: crossbar read + ADC conversion + merge (1-bit drive
//                    is part of the read)
//   SEI            : crossbar read (SA latch included) + vote logic
#pragma once

#include "arch/cost_model.hpp"

namespace sei::arch {

struct TimingParams {
  double dac_settle_ns = 5.0;        // 8-bit DAC + line settle
  double crossbar_read_ns = 10.0;    // analog settle + SA latch
  double adc_conversion_ns = 12.5;   // 8-bit conversion (per-column ADCs)
  double digital_merge_ns = 2.0;     // shifters/adders or vote logic
};

struct StageTiming {
  long long cycles = 0;        // output positions computed serially
  double cycle_ns = 0.0;
  double stage_latency_us = 0.0;
};

struct NetworkTiming {
  std::vector<StageTiming> stages;
  double latency_us = 0.0;         // one picture end to end
  double throughput_kfps = 0.0;    // pipelined, bottleneck stage
  double average_power_mw = 0.0;   // per-picture energy × throughput
};

/// Times a costed network (the cost supplies the per-picture energy).
NetworkTiming estimate_timing(const NetworkCost& cost,
                              const TimingParams& params = {});

/// The paper's §5.3 remark made concrete: "we can use buffer amounts to
/// trade-off the power with time" while the per-picture energy stays
/// invariant. Replicating each stage's crossbars (and their sense
/// amps/converters) by `factor` processes that many feature-map positions
/// per cycle: throughput and average power scale up by the factor, the
/// per-picture energy does not, and the area grows by the replicated
/// share (crossbars + column periphery; the inter-layer buffers shrink
/// per unit throughput).
struct ReplicationPoint {
  int factor = 1;
  double latency_us = 0.0;
  double throughput_kfps = 0.0;
  double average_power_mw = 0.0;
  double energy_uj_per_picture = 0.0;  // invariant across factors
  double area_mm2 = 0.0;
};

/// Sweeps replication factors for one costed network.
std::vector<ReplicationPoint> replication_tradeoff(
    const NetworkCost& cost, const std::vector<int>& factors,
    const TimingParams& params = {});

}  // namespace sei::arch
