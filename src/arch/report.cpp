#include "arch/report.hpp"

namespace sei::arch {

Shares breakdown_shares(const CostBreakdown& b) {
  Shares s;
  const double total = b.total();
  if (total <= 0) return s;
  s.dac_pct = 100.0 * b.dac / total;
  s.adc_pct = 100.0 * b.adc / total;
  s.rram_pct = 100.0 * b.rram / total;
  s.other_pct = 100.0 * b.other() / total;
  return s;
}

std::vector<Fig1Row> fig1_rows(const NetworkCost& cost,
                               const std::vector<std::string>& stage_labels) {
  SEI_CHECK(stage_labels.size() == cost.stages.size());
  std::vector<Fig1Row> rows;
  for (std::size_t i = 0; i < cost.stages.size(); ++i) {
    Fig1Row r;
    r.label = stage_labels[i];
    r.power = breakdown_shares(cost.stages[i].energy_pj);
    r.area = breakdown_shares(cost.stages[i].area_um2);
    rows.push_back(std::move(r));
  }
  Fig1Row total;
  total.label = "Total";
  total.power = breakdown_shares(cost.energy_pj);
  total.area = breakdown_shares(cost.area_um2);
  rows.push_back(std::move(total));
  return rows;
}

std::vector<PlatformPoint> platform_references() {
  return {
      // Zhang et al., FPGA'15 [2]: 61.62 GOPs at 18.61 W board power.
      {"FPGA (Zhang FPGA'15 [2])", 61.62 / 18.61, "paper ref [2]"},
      // Nvidia K40-class GPU running small CNNs: ~3.5 TOPs effective at
      // 235 W TDP (same comparison point the paper uses).
      {"GPU (Nvidia K40)", 3500.0 / 235.0, "vendor + common Caffe measurements"},
  };
}

}  // namespace sei::arch
