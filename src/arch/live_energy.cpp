#include "arch/live_energy.hpp"

namespace sei::arch {

namespace {

std::uint64_t u64(long long v) {
  return v > 0 ? static_cast<std::uint64_t>(v) : 0;
}

telemetry::EnergyMeter meter_from_hardware(
    const std::vector<StageHardware>& plan, const core::HardwareConfig& cfg,
    const rram::PeripheryCatalog& catalog) {
  std::vector<telemetry::StageEnergy> stages;
  stages.reserve(plan.size());
  for (const StageHardware& hw : plan)
    stages.push_back(stage_energy(cost_stage(hw, cfg, catalog)));
  return telemetry::EnergyMeter(std::move(stages));
}

}  // namespace

telemetry::StageEnergy stage_energy(const StageCost& sc) {
  telemetry::StageEnergy s;
  const CostBreakdown& e = sc.energy_pj;
  s.pj.dac = e.dac;
  s.pj.adc = e.adc;
  s.pj.sense_amp = e.sense_amp;
  s.pj.driver = e.driver;
  s.pj.rram = e.rram;
  s.pj.decoder = e.decoder;
  s.pj.digital = e.digital;
  s.pj.buffer = e.buffer;
  s.pj.wta = e.wta;

  const StageHardware& hw = sc.hw;
  s.events.crossbar_reads = u64(hw.crossbar_activations);
  s.events.cell_activations = u64(hw.cell_activations);
  s.events.sa_compares = u64(hw.sa_decisions);
  s.events.adc_conversions = u64(hw.adc_conversions);
  s.events.dac_conversions = u64(hw.dac_conversions);
  s.events.driver_ops = u64(hw.driver_ops);
  s.events.digital_adds = u64(hw.digital_adds);
  s.events.buffer_bits = u64(hw.buffer_accesses_bits);
  s.events.wta_reads = u64(hw.wta_reads);

  // Activation-proportional split for SEI hidden/classifier stages: their
  // rows are gated by per-row transmission gates, so array (rram) current
  // and the 1-bit drivers scale with the rows actually switched on. The
  // static table assumed every input row active at every position —
  // nominal_rows = activations × rows — and plan_stage built both
  // cell_activations and driver_ops as exact multiples of it, so the
  // per-row event counts below divide without remainder. Stage 0 is
  // DAC-driven (no transmission gates) and keeps the uniform price.
  if (hw.structure == core::StructureKind::kSei && !hw.first_stage) {
    const long long nominal =
        hw.geom.activations() * static_cast<long long>(hw.geom.rows);
    if (nominal > 0) {
      s.nominal_rows = nominal;
      const double n = static_cast<double>(nominal);
      s.row_rram_pj = e.rram / n;
      s.row_driver_pj = e.driver / n;
      s.row_cells = s.events.cell_activations / u64(nominal);
      s.row_drivers = s.events.driver_ops / u64(nominal);
    }
  }
  return s;
}

telemetry::EnergyMeter make_energy_meter(const quant::Topology& topo,
                                         const core::HardwareConfig& cfg,
                                         core::StructureKind structure,
                                         const rram::PeripheryCatalog& catalog) {
  return meter_from_hardware(plan_network(topo, cfg, structure), cfg, catalog);
}

telemetry::EnergyMeter make_energy_meter(const quant::QNetwork& qnet,
                                         const core::HardwareConfig& cfg,
                                         core::StructureKind structure,
                                         const rram::PeripheryCatalog& catalog) {
  std::vector<StageHardware> plan;
  plan.reserve(qnet.layers.size());
  for (std::size_t i = 0; i < qnet.layers.size(); ++i)
    plan.push_back(plan_stage(qnet.layers[i].geom, cfg, structure, i == 0,
                              i + 1 == qnet.layers.size()));
  return meter_from_hardware(plan, cfg, catalog);
}

}  // namespace sei::arch
