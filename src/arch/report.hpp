// Report helpers: breakdown shares (Fig. 1) and platform comparison rows
// (the paper's §5.3 FPGA/GPU efficiency comparison).
#pragma once

#include <string>
#include <vector>

#include "arch/cost_model.hpp"

namespace sei::arch {

/// Percentage shares of one breakdown in Fig. 1's categories.
struct Shares {
  double dac_pct = 0.0;
  double adc_pct = 0.0;
  double rram_pct = 0.0;
  double other_pct = 0.0;
};

Shares breakdown_shares(const CostBreakdown& b);

/// A Fig. 1 bar: one stage (or the total) of one cost kind.
struct Fig1Row {
  std::string label;      // "Conv 1", "FC", "Total", ...
  Shares power;
  Shares area;
};

/// Builds the Fig. 1 rows (per stage + total) for a costed network.
std::vector<Fig1Row> fig1_rows(const NetworkCost& cost,
                               const std::vector<std::string>& stage_labels);

/// Published efficiency reference points used by the paper's comparison.
struct PlatformPoint {
  std::string name;
  double gops_per_joule;
  std::string source;
};

/// FPGA [2] (61.62 GOPs @ 18.61 W) and Nvidia K40-class GPU reference.
std::vector<PlatformPoint> platform_references();

}  // namespace sei::arch
