#include "chaos/scenario.hpp"

#include <atomic>
#include <deque>
#include <future>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/io.hpp"
#include "common/rng.hpp"
#include "exec/thread_pool.hpp"

namespace sei::chaos {

namespace {

// Seed salts keeping the scenario's RNG streams disjoint: IO fault draws
// and deadline-pressure draws must not correlate just because their
// ordinals collide.
constexpr std::uint64_t kIoSalt = 0x10AD5EEDULL;
constexpr std::uint64_t kDeadlineSalt = 0xD15EA5EDULL;

std::span<const float> image_at(const data::Dataset& images, int i) {
  const std::size_t per_image =
      images.images.numel() / static_cast<std::size_t>(images.size());
  const int k = i % images.size();
  return {images.images.data() + static_cast<std::size_t>(k) * per_image,
          per_image};
}

struct IoHookGuard {
  explicit IoHookGuard(IoFaultHook hook) { set_io_fault_hook(std::move(hook)); }
  ~IoHookGuard() { set_io_fault_hook(IoFaultHook{}); }
  IoHookGuard(const IoHookGuard&) = delete;
  IoHookGuard& operator=(const IoHookGuard&) = delete;
};

struct StallHookGuard {
  explicit StallHookGuard(std::function<void(int)> hook) {
    exec::set_chunk_delay_hook(std::move(hook));
  }
  ~StallHookGuard() { exec::set_chunk_delay_hook({}); }
  StallHookGuard(const StallHookGuard&) = delete;
  StallHookGuard& operator=(const StallHookGuard&) = delete;
};

void tally(const serve::FleetResponse& r, ChaosScenarioReport& rep) {
  switch (r.status) {
    case serve::FleetResponseStatus::kOk: ++rep.ok; return;
    case serve::FleetResponseStatus::kDegraded: ++rep.degraded; return;
    case serve::FleetResponseStatus::kRejected: break;
  }
  switch (r.error) {
    case ErrorCode::kShedding: ++rep.shed; break;
    case ErrorCode::kDeadlineExceeded: ++rep.deadline_expired; break;
    case ErrorCode::kQuotaExceeded: ++rep.quota_rejected; break;
    case ErrorCode::kQueueFull: ++rep.queue_full; break;
    default: ++rep.other_rejected; break;
  }
}

}  // namespace

ChaosScenarioReport run_chaos_scenario(
    serve::FleetRuntime& fleet, const std::vector<core::SeiNetwork*>& shards,
    const data::Dataset& images, const ChaosScenarioConfig& cfg) {
  ChaosScenarioReport rep;

  // Both hooks draw their injection decision from the ordinal of the call,
  // so the fault sequence is a function of cfg.seed and injection order —
  // not of wall-clock timing.
  std::atomic<std::uint64_t> io_ordinal{0};
  std::atomic<std::uint64_t> io_injected{0};
  IoHookGuard io_guard(
      (cfg.io_fail_prob > 0.0 || cfg.io_short_write_prob > 0.0)
          ? IoFaultHook([&](const IoFaultSite&) {
              const std::uint64_t n =
                  io_ordinal.fetch_add(1, std::memory_order_relaxed);
              Rng r = Rng::fork(cfg.seed ^ kIoSalt, n);
              const double u = r.uniform();
              if (u < cfg.io_fail_prob) {
                io_injected.fetch_add(1, std::memory_order_relaxed);
                return IoFaultAction::kFail;
              }
              if (u < cfg.io_fail_prob + cfg.io_short_write_prob) {
                io_injected.fetch_add(1, std::memory_order_relaxed);
                return IoFaultAction::kShortWrite;
              }
              return IoFaultAction::kNone;
            })
          : IoFaultHook{});

  std::atomic<std::uint64_t> chunk_ordinal{0};
  std::atomic<std::uint64_t> stalls{0};
  StallHookGuard stall_guard(
      cfg.stall_every > 0 ? std::function<void(int)>([&](int) {
        const std::uint64_t n =
            chunk_ordinal.fetch_add(1, std::memory_order_relaxed);
        if (n % static_cast<std::uint64_t>(cfg.stall_every) != 0) return;
        stalls.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(cfg.stall);
      })
                          : std::function<void(int)>{});

  fleet.start();
  const serve::FleetStats base = fleet.stats();
  const std::uint64_t first_ticket = base.total_dispatched;
  std::vector<double> base_bill_j;
  base_bill_j.reserve(base.tenants.size());
  for (const serve::TenantCounters& c : base.tenants)
    base_bill_j.push_back(c.energy_j);

  const int nt = fleet.tenant_count();
  std::vector<serve::FleetResponse> responses;
  responses.reserve(static_cast<std::size_t>(cfg.requests));
  std::deque<std::future<serve::FleetResponse>> inflight;
  const auto drain_to = [&](std::size_t n) {
    while (inflight.size() > n) {
      responses.push_back(inflight.front().get());
      inflight.pop_front();
    }
  };

  int burst_left = 0;
  for (int i = 0; i < cfg.requests; ++i) {
    if (cfg.burst_every > 0 && cfg.burst_size > 0 && i > 0 &&
        i % cfg.burst_every == 0)
      burst_left = cfg.burst_size;
    // A burst submits back-to-back without draining — the in-flight window
    // temporarily overshoots and the admission queues absorb the spike.
    if (burst_left > 0)
      --burst_left;
    else
      drain_to(static_cast<std::size_t>(cfg.window) - 1);

    const int tenant = i % nt;
    const bool tight =
        cfg.tight_deadline_frac > 0.0 &&
        Rng::fork(cfg.seed ^ kDeadlineSalt, static_cast<std::uint64_t>(i))
                .uniform() < cfg.tight_deadline_frac;
    inflight.push_back(tight
                           ? fleet.submit(tenant, image_at(images, i),
                                          cfg.tight_deadline)
                           : fleet.submit(tenant, image_at(images, i)));
    ++rep.submitted;
  }
  drain_to(0);
  fleet.stop();

  for (const serve::FleetResponse& r : responses) tally(r, rep);
  rep.io_faults_injected = io_injected.load();
  rep.stalls_injected = stalls.load();
  rep.availability =
      rep.submitted > 0
          ? static_cast<double>(rep.ok + rep.degraded) /
                static_cast<double>(rep.submitted)
          : 1.0;

  const serve::FleetStats end = fleet.stats();
  rep.dispatched = end.total_dispatched - base.total_dispatched;
  check_ticket_conservation(responses, first_ticket, rep.dispatched,
                            rep.violations);
  check_billing_conservation(end, base_bill_j, cfg.billing_tol_j,
                             rep.violations);
  if (cfg.check_envelope)
    check_billing_envelope(base, end, cfg.envelope, cfg.billing_tol_j,
                           rep.violations);
  if (cfg.coherence_images > 0) {
    for (std::size_t k = 0; k < shards.size(); ++k) {
      const std::string who = "shard" + std::to_string(k);
      check_plan_coherence(*shards[k], images, cfg.coherence_images, who,
                           rep.violations);
      check_arena_rebind_safety(*shards[k], images, cfg.coherence_images, who,
                                rep.violations);
    }
  }
  publish_violations(rep.violations);
  return rep;
}

}  // namespace sei::chaos
