// Crash-point matrix: kill the fleet at EVERY write offset of a checkpoint
// commit and prove each crash resumes bit-identically.
//
// The fleet's commit sequence (serve/fleet.cpp write_checkpoints) is a
// fixed series of durable IO steps — per-shard slot-file writes, fsyncs
// and renames, then the manifest's, with the manifest rename as the commit
// point. Every step is visible to the IO fault hook (common/io.hpp), so
// the matrix can enumerate them: a counting run measures the sequence
// length N, then one leg per offset k < N re-runs the same serve segment,
// injects kCrash (simulated kill -9) at exactly step k of the final
// commit, and verifies the wreckage:
//
//   * the next start() must land on a committed set — the previous one for
//     k before the manifest rename, the new one at the rename's tail — and
//     stats().total_dispatched must equal that set's cut exactly;
//   * replaying the remaining request stream must reproduce the
//     uninterrupted reference run bit-identically (status, label, shard,
//     ticket, sequence per request);
//   * the final per-tenant bills must match the reference to
//     billing_tol_j (default 1e-6 pJ).
//
// The runner owns the checkpoint directory: it stashes the committed set
// before each crash leg and restores it after, so every leg starts from
// the same on-disk state. Fleet composition stays with the caller through
// FleetFactory. docs/chaos.md walks through the whole protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chaos/invariants.hpp"
#include "data/dataset.hpp"
#include "serve/fleet.hpp"

namespace sei::chaos {

/// Builds a fresh, NOT-started fleet whose FleetConfig uses
/// `checkpoint_dir` (empty = no checkpointing) and checkpoint_every = 0 —
/// the only commit then happens in stop(), on the caller's thread, which
/// is what lets the matrix catch InjectedCrash. Every call must configure
/// the fleet identically (same tenant set, same shard seeds, same storm);
/// a call may rebuild the backing networks, so the runner destroys the
/// previous fleet before asking for the next.
using FleetFactory = std::function<std::unique_ptr<serve::FleetRuntime>(
    const std::string& checkpoint_dir)>;

struct CrashMatrixConfig {
  std::string dir;  // working checkpoint dir; created, cleaned, stashed
  // Request-stream cuts: leg 1 commits at cut1, every crash leg serves
  // (cut1, cut2] and crashes committing at cut2, the post-crash leg
  // replays to `total`. Put storm strikes inside (cut1, cut2) to crash
  // mid-recovery state.
  int cut1 = 40;
  int cut2 = 60;
  int total = 80;
  // Crash offsets tested: k = 0, stride, 2*stride, ... — stride 1 is the
  // full matrix (100% coverage), larger strides sample it for quick runs.
  int stride = 1;
  // Thread-pool widths the whole matrix repeats under (replays must be
  // bit-identical at each). The reference run uses threads[0].
  std::vector<int> threads = {1, 2, 8};
  double billing_tol_j = 1e-18;  // 1e-6 pJ
};

struct CrashMatrixReport {
  int commit_steps = 0;       // IO steps in one commit sequence (N)
  int steps_tested = 0;       // crash legs run (all thread widths pooled)
  int resumed_from_old = 0;   // crash left the previous set committed
  int resumed_from_new = 0;   // crash hit after the manifest rename landed
  double coverage_pct = 0.0;  // unique offsets tested / commit_steps
  std::vector<InvariantViolation> violations;  // "crash_matrix" / "replay"
                                               // / "billing"
};

/// Runs the matrix. Submissions go round-robin across the factory fleet's
/// tenants with a closed-loop window of 1, so dispatch order — and with it
/// the replay contract — is independent of thread count. Violations are
/// returned AND published to chaos_invariant_violations_total. Restores
/// the process-default thread count before returning.
CrashMatrixReport run_crash_matrix(const FleetFactory& make_fleet,
                                   const data::Dataset& images,
                                   const CrashMatrixConfig& cfg);

}  // namespace sei::chaos
