// Cross-cutting invariant checkers for the chaos harness (docs/chaos.md).
//
// Fault injection alone only proves the system *survives*; these checkers
// prove it stays *correct* while surviving. Each checker is a pure function
// over observable fleet state — the response stream, the stats snapshot,
// the shard networks — and appends a record per violation. None of them
// consults internal fleet state beyond the public API, so they hold for any
// composition of storms, IO faults, stalls, saturation and crash/resume:
//
//  * ticket conservation — every dispatched request is answered exactly
//    once: the tickets carried by the responses of a run are precisely the
//    interval [first_ticket, first_ticket + dispatched), no gap (lost
//    request), no repeat (double serve), across any failover interleaving.
//  * billing conservation — what tenants are billed equals what the live
//    EnergyMeter metered: admission bill == restored manifest base + this
//    process's metered joules, per tenant, to tolerance.
//  * plan coherence — after any fault/remap/restore interleaving, the
//    compiled plan still agrees bit-for-bit with the scalar interpreter on
//    probe images, and the plan epoch never moves backwards.
//  * arena re-bind safety — a context whose arena binding no longer covers
//    the (rebuilt) plan must fall back to owned buffers and stay
//    bit-identical, never serve through stale scratch.
//
// publish_violations() mirrors every record onto the
// chaos_invariant_violations_total{invariant="..."} telemetry counters so a
// soak's metrics export carries the verdict alongside the JSON report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sei_network.hpp"
#include "data/dataset.hpp"
#include "serve/admission.hpp"
#include "serve/fleet.hpp"

namespace sei::chaos {

/// One invariant breach. `invariant` is the counter label ("ticket",
/// "billing", "plan_epoch", "arena_rebind", "replay", "crash_matrix");
/// `detail` is a human-readable account of the mismatch.
struct InvariantViolation {
  std::string invariant;
  std::string detail;
};

/// RNG stream base for chaos probe evaluations — its own index space, far
/// from request sequences (< 2^40) and the serve-side probe/measure bases
/// (2^40, 2^41), so checker draws never collide with anything replayed.
inline constexpr long long kChaosProbeIndexBase = 1LL << 42;

/// Bumps chaos_invariant_violations_total{invariant="..."} once per record.
void publish_violations(const std::vector<InvariantViolation>& violations);

/// Ticket conservation over one run's complete response stream. Responses
/// with ticket == serve::kNoTicket never reached dispatch (admission
/// rejections, assembly drops) and are excluded; the remaining tickets must
/// be exactly {first_ticket, ..., first_ticket + dispatched - 1}, each
/// once. `first_ticket`/`dispatched` come from FleetStats::total_dispatched
/// read after start() and after the run (tickets and the dispatch counter
/// advance together).
void check_ticket_conservation(
    const std::vector<serve::FleetResponse>& responses,
    std::uint64_t first_ticket, std::uint64_t dispatched,
    std::vector<InvariantViolation>& out);

/// Billing conservation per tenant: stats.tenants[t].energy_j (the
/// admission-side bill, manifest-restored base included) must equal
/// base_bill_j[t] (the bill right after start()) + stats.tenant_metered_j[t]
/// (this process's metered joules) within tol_j. Chaos runs use
/// 1e-12 J == 1e-6 µJ.
void check_billing_conservation(const serve::FleetStats& stats,
                                const std::vector<double>& base_bill_j,
                                double tol_j,
                                std::vector<InvariantViolation>& out);

/// Per-image price bounds for the billing-envelope check. Under sparsity
/// accounting a SEI answer's bill varies per image with the rows it
/// activated (docs/sparsity.md), so exact per-answer prices cannot be
/// asserted from outside — but every bill is bounded: the meter's
/// network_floor_pj (zero rows active anywhere) below and network_pj
/// (every nominal row active) above. A dense fleet collapses the interval
/// (min == max == the flat price), turning the same check into an
/// exactness assertion.
struct BillingEnvelope {
  double sei_min_image_j = 0.0;  // sei network_floor_pj().total() in J
  double sei_max_image_j = 0.0;  // sei network_pj().total() in J
  double adc_image_j = 0.0;      // adc fallback flat per-image price in J
};

/// Billing envelope per tenant, over the [base, end) stats window: the
/// metered joules delta must lie within
///   [ok·sei_min + degraded·adc − tol, ok·sei_max + degraded·adc + tol]
/// where ok/degraded are that tenant's answered-count deltas. Holds for
/// any mix of dense and sparse shards as long as env brackets both (a
/// dense shard's flat price sits inside [floor, ceiling] by construction).
/// Rejected/abandoned work bills nothing and is excluded by using the
/// answered counters.
void check_billing_envelope(const serve::FleetStats& base,
                            const serve::FleetStats& end,
                            const BillingEnvelope& env, double tol_j,
                            std::vector<InvariantViolation>& out);

/// Plan coherence on `net` (quiescent — call after stop()): the compiled
/// plan path and the pure scalar interpreter must agree on `images` probe
/// images drawn from `probes` at chaos RNG indices, and the plan epoch must
/// never decrease across the check. `who` tags the violation (e.g.
/// "shard0"). Restores plan/packed mode before returning.
void check_plan_coherence(core::SeiNetwork& net, const data::Dataset& probes,
                          int images, const std::string& who,
                          std::vector<InvariantViolation>& out);

/// Arena re-bind safety on `net` (quiescent): evaluating through a context
/// bound to bounds that do NOT cover the current plan (the re-bind-miss
/// case) must produce bit-identical labels via the owned-buffer fallback.
void check_arena_rebind_safety(core::SeiNetwork& net,
                               const data::Dataset& probes, int images,
                               const std::string& who,
                               std::vector<InvariantViolation>& out);

}  // namespace sei::chaos
