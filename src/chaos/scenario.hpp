// Compound chaos scenario: every fault class at once, invariants at the end.
//
// run_chaos_scenario() drives a caller-configured FleetRuntime through a
// seeded storm of composed adversity — probabilistic IO faults and short
// writes on every durable writer, periodic thread-pool worker stalls,
// admission bursts that overfill the closed-loop window, and a slice of
// near-impossible deadlines — then stops the fleet and runs the full
// invariant sweep from invariants.hpp over what actually happened. The
// caller owns fleet composition (shards, storm schedule, quotas,
// checkpoint dir); the scenario owns the request stream and the hooks.
//
// Everything injected is a pure function of cfg.seed: IO fault decisions
// draw from counter-based RNG streams indexed by injection ordinal, so two
// runs with one seed inject the same fault sequence. Stalls perturb timing
// only — the determinism contract (docs/serving.md) says timing never
// changes labels, which is exactly what the checkers then verify.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "chaos/invariants.hpp"
#include "core/sei_network.hpp"
#include "data/dataset.hpp"
#include "serve/fleet.hpp"

namespace sei::chaos {

struct ChaosScenarioConfig {
  std::uint64_t seed = 1;
  int requests = 2000;  // closed-loop submissions (bursts included)
  int window = 16;      // max in-flight futures outside a burst
  // Every burst_every-th submission skips the window drain for the next
  // burst_size submissions — a saturation spike against the admission
  // queues. 0 disables.
  int burst_every = 0;
  int burst_size = 0;
  // This fraction of submissions carries tight_deadline instead of the
  // fleet default — deadline pressure through assembly drop + mid-eval
  // cancellation. Selection is seeded per submission index.
  double tight_deadline_frac = 0.0;
  std::chrono::milliseconds tight_deadline{2};
  // Per-IO-operation fault probabilities (checkpoint/manifest writers):
  // kFail aborts the op, kShortWrite truncates the payload mid-buffer.
  // Crashes are the crash matrix's job (crash_matrix.hpp), not the soak's.
  double io_fail_prob = 0.0;
  double io_short_write_prob = 0.0;
  // Every stall_every-th thread-pool chunk sleeps for `stall` before
  // running — straggler workers under the evaluation fan-out. 0 disables.
  int stall_every = 0;
  std::chrono::microseconds stall{200};
  // Probe images per shard for the post-run plan-coherence and
  // arena-rebind checks (0 skips both).
  int coherence_images = 12;
  double billing_tol_j = 1e-12;  // 1e-6 µJ
  // Optional billing envelope (sparsity-aware fleets): when check_envelope
  // is set, every tenant's metered-joules delta must fall inside the
  // per-answer price bounds — see chaos/invariants.hpp. Conservation
  // (bill == base + metered, exact) is always checked regardless.
  bool check_envelope = false;
  BillingEnvelope envelope;
};

/// Outcome tally plus the invariant verdict. availability counts answered
/// requests (ok + degraded) over everything submitted.
struct ChaosScenarioReport {
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t shed = 0;              // kShedding
  std::uint64_t deadline_expired = 0;  // kDeadlineExceeded
  std::uint64_t quota_rejected = 0;    // kQuotaExceeded
  std::uint64_t queue_full = 0;        // kQueueFull
  std::uint64_t other_rejected = 0;    // any other rejection code
  std::uint64_t dispatched = 0;        // fleet dispatch delta over the run
  std::uint64_t io_faults_injected = 0;
  std::uint64_t stalls_injected = 0;
  double availability = 0.0;
  std::vector<InvariantViolation> violations;
};

/// Runs the compound scenario on a fleet that has been configured (storm,
/// quotas, checkpoint dir) but NOT started. Installs the IO-fault and
/// chunk-stall hooks, starts the fleet, drives cfg.requests submissions
/// round-robin across tenants, stops the fleet, removes the hooks, then
/// checks ticket conservation, billing conservation, plan coherence and
/// arena re-bind safety (the latter two on `shards`, quiescent after
/// stop()). Violations are returned AND published to the
/// chaos_invariant_violations_total counters.
ChaosScenarioReport run_chaos_scenario(
    serve::FleetRuntime& fleet, const std::vector<core::SeiNetwork*>& shards,
    const data::Dataset& images, const ChaosScenarioConfig& cfg);

}  // namespace sei::chaos
