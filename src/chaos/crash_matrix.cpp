#include "chaos/crash_matrix.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <future>
#include <set>
#include <span>
#include <utility>

#include "common/io.hpp"
#include "exec/thread_pool.hpp"

namespace sei::chaos {

namespace {

namespace fs = std::filesystem;

std::span<const float> image_at(const data::Dataset& images, int i) {
  const std::size_t per_image =
      images.images.numel() / static_cast<std::size_t>(images.size());
  const int k = i % images.size();
  return {images.images.data() + static_cast<std::size_t>(k) * per_image,
          per_image};
}

struct IoHookGuard {
  explicit IoHookGuard(IoFaultHook hook) { set_io_fault_hook(std::move(hook)); }
  ~IoHookGuard() { set_io_fault_hook(IoFaultHook{}); }
  IoHookGuard(const IoHookGuard&) = delete;
  IoHookGuard& operator=(const IoHookGuard&) = delete;
};

struct Reply {
  serve::FleetResponseStatus status = serve::FleetResponseStatus::kRejected;
  int label = -1;
  int shard = -1;
  std::uint64_t ticket = 0;
  std::uint64_t sequence = 0;
};

/// Serves requests [lo, hi) with a closed-loop window of 1 — each future
/// resolves before the next submit, so dispatch order equals submission
/// order for any tenant mix and any thread count.
std::vector<Reply> serve_range(serve::FleetRuntime& fleet,
                               const data::Dataset& images, int lo, int hi) {
  const int nt = fleet.tenant_count();
  std::vector<Reply> out;
  out.reserve(static_cast<std::size_t>(hi - lo));
  for (int i = lo; i < hi; ++i) {
    const serve::FleetResponse r =
        fleet.submit(i % nt, image_at(images, i)).get();
    out.push_back({r.status, r.label, r.shard, r.ticket, r.sequence});
  }
  return out;
}

/// Checks `got` (requests starting at stream index `lo`) against the
/// reference; one violation per call — offsets past the first mismatch
/// are the same defect replayed.
void compare_replies(const std::vector<Reply>& got,
                     const std::vector<Reply>& reference, int lo,
                     const std::string& tag,
                     std::vector<InvariantViolation>& out) {
  for (std::size_t i = 0; i < got.size(); ++i) {
    const Reply& g = got[i];
    const Reply& w = reference[static_cast<std::size_t>(lo) + i];
    if (g.status == w.status && g.label == w.label && g.shard == w.shard &&
        g.ticket == w.ticket && g.sequence == w.sequence)
      continue;
    out.push_back(
        {"replay",
         tag + ": request " + std::to_string(lo + static_cast<int>(i)) +
             " diverged from the reference (status " +
             std::string(to_string(g.status)) + "/" + to_string(w.status) +
             ", label " + std::to_string(g.label) + "/" +
             std::to_string(w.label) + ", shard " + std::to_string(g.shard) +
             "/" + std::to_string(w.shard) + ", ticket " +
             std::to_string(g.ticket) + "/" + std::to_string(w.ticket) +
             ", sequence " + std::to_string(g.sequence) + "/" +
             std::to_string(w.sequence) + ")"});
    return;
  }
}

void copy_dir(const std::string& src, const std::string& dst) {
  fs::remove_all(dst);
  fs::create_directories(dst);
  fs::copy(src, dst,
           fs::copy_options::recursive | fs::copy_options::overwrite_existing);
}

void check_bills(const serve::FleetStats& st, const std::vector<double>& ref,
                 double tol_j, const std::string& tag,
                 std::vector<InvariantViolation>& out) {
  for (std::size_t t = 0; t < ref.size() && t < st.tenants.size(); ++t) {
    const double err = std::abs(st.tenants[t].energy_j - ref[t]);
    if (err > tol_j)
      out.push_back({"billing",
                     tag + ": tenant " + std::to_string(t) +
                         " final bill off the reference by " +
                         std::to_string(err * 1e12) + " pJ (tolerance " +
                         std::to_string(tol_j * 1e12) + " pJ)"});
  }
}

}  // namespace

CrashMatrixReport run_crash_matrix(const FleetFactory& make_fleet,
                                   const data::Dataset& images,
                                   const CrashMatrixConfig& cfg) {
  CrashMatrixReport rep;
  const int stride = std::max(1, cfg.stride);
  const std::vector<int> threads =
      cfg.threads.empty() ? std::vector<int>{1} : cfg.threads;

  // Uninterrupted reference: the whole stream, no checkpointing.
  exec::set_default_threads(threads.front());
  std::vector<Reply> reference;
  std::vector<double> ref_bill;
  {
    std::unique_ptr<serve::FleetRuntime> fleet = make_fleet("");
    fleet->start();
    reference = serve_range(*fleet, images, 0, cfg.total);
    fleet->stop();
    for (const serve::TenantCounters& c : fleet->stats().tenants)
      ref_bill.push_back(c.energy_j);
  }

  // Leg 1 commits a set at cut1; the counting run resumes from it, serves
  // to cut2 and measures N = IO steps in one commit sequence.
  const std::string stash = cfg.dir + ".stash";
  {
    fs::remove_all(cfg.dir);
    std::unique_ptr<serve::FleetRuntime> fleet = make_fleet(cfg.dir);
    fleet->start();
    compare_replies(serve_range(*fleet, images, 0, cfg.cut1), reference, 0,
                    "leg1", rep.violations);
    fleet->stop();
    fleet.reset();
    copy_dir(cfg.dir, stash);

    fleet = make_fleet(cfg.dir);
    fleet->start();
    if (!fleet->resumed_from_checkpoint() ||
        fleet->stats().total_dispatched !=
            static_cast<std::uint64_t>(cfg.cut1)) {
      rep.violations.push_back(
          {"crash_matrix",
           "counting run did not resume at cut1=" + std::to_string(cfg.cut1) +
               " (dispatched=" +
               std::to_string(fleet->stats().total_dispatched) + ")"});
    }
    compare_replies(serve_range(*fleet, images, cfg.cut1, cfg.cut2), reference,
                    cfg.cut1, "counting run", rep.violations);
    std::atomic<int> steps{0};
    {
      IoHookGuard guard([&](const IoFaultSite&) {
        steps.fetch_add(1, std::memory_order_relaxed);
        return IoFaultAction::kNone;
      });
      fleet->stop();
    }
    rep.commit_steps = steps.load();
  }
  if (rep.commit_steps <= 0) {
    rep.violations.push_back(
        {"crash_matrix", "commit sequence exposed no IO steps to the hook"});
    publish_violations(rep.violations);
    return rep;
  }

  std::set<int> offsets;
  for (const int tc : threads) {
    exec::set_default_threads(tc);
    for (int k = 0; k < rep.commit_steps; k += stride) {
      const std::string tag =
          "threads=" + std::to_string(tc) + " crash-step=" + std::to_string(k);
      copy_dir(stash, cfg.dir);

      std::unique_ptr<serve::FleetRuntime> fleet = make_fleet(cfg.dir);
      fleet->start();
      if (!fleet->resumed_from_checkpoint() ||
          fleet->stats().total_dispatched !=
              static_cast<std::uint64_t>(cfg.cut1)) {
        rep.violations.push_back(
            {"crash_matrix", tag + ": leg did not resume at cut1"});
        fleet->stop();
        continue;
      }
      compare_replies(serve_range(*fleet, images, cfg.cut1, cfg.cut2),
                      reference, cfg.cut1, tag, rep.violations);

      bool crashed = false;
      {
        std::atomic<int> n{0};
        IoHookGuard guard([&](const IoFaultSite&) {
          return n.fetch_add(1, std::memory_order_relaxed) == k
                     ? IoFaultAction::kCrash
                     : IoFaultAction::kNone;
        });
        try {
          fleet->stop();
        } catch (const InjectedCrash&) {
          crashed = true;
        }
      }
      // The commit sequence is deterministic; finishing before step k means
      // the counting run and this leg disagree on its length.
      if (!crashed)
        rep.violations.push_back(
            {"crash_matrix", tag + ": commit completed before the armed step"});
      fleet.reset();  // stop() already ran: the destructor is a no-op
      ++rep.steps_tested;
      offsets.insert(k);

      fleet = make_fleet(cfg.dir);
      fleet->start();
      const std::uint64_t d0 = fleet->stats().total_dispatched;
      const bool old_set = d0 == static_cast<std::uint64_t>(cfg.cut1);
      const bool new_set = d0 == static_cast<std::uint64_t>(cfg.cut2);
      if (!fleet->resumed_from_checkpoint() || (!old_set && !new_set)) {
        rep.violations.push_back(
            {"crash_matrix",
             tag + ": post-crash start landed at dispatched=" +
                 std::to_string(d0) + " (resumed=" +
                 (fleet->resumed_from_checkpoint() ? "yes" : "no") +
                 "), want a committed set at " + std::to_string(cfg.cut1) +
                 " or " + std::to_string(cfg.cut2)});
        fleet->stop();
        continue;
      }
      old_set ? ++rep.resumed_from_old : ++rep.resumed_from_new;
      compare_replies(
          serve_range(*fleet, images, static_cast<int>(d0), cfg.total),
          reference, static_cast<int>(d0), tag, rep.violations);
      fleet->stop();
      check_bills(fleet->stats(), ref_bill, cfg.billing_tol_j, tag,
                  rep.violations);
    }
  }

  rep.coverage_pct = 100.0 * static_cast<double>(offsets.size()) /
                     static_cast<double>(rep.commit_steps);
  fs::remove_all(stash);
  fs::remove_all(cfg.dir);
  exec::set_default_threads(0);
  publish_violations(rep.violations);
  return rep;
}

}  // namespace sei::chaos
