#include "chaos/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "core/eval_context.hpp"
#include "telemetry/metrics.hpp"

namespace sei::chaos {

namespace {

std::span<const float> probe_image(const data::Dataset& probes, int i) {
  const std::size_t per_image =
      probes.images.numel() / static_cast<std::size_t>(probes.size());
  const int k = i % probes.size();
  return {probes.images.data() + static_cast<std::size_t>(k) * per_image,
          per_image};
}

}  // namespace

void publish_violations(const std::vector<InvariantViolation>& violations) {
  auto& reg = telemetry::MetricsRegistry::global();
  for (const InvariantViolation& v : violations)
    reg.counter("chaos_invariant_violations_total{invariant=\"" + v.invariant +
                "\"}")
        .add();
}

void check_ticket_conservation(
    const std::vector<serve::FleetResponse>& responses,
    std::uint64_t first_ticket, std::uint64_t dispatched,
    std::vector<InvariantViolation>& out) {
  std::vector<std::uint64_t> tickets;
  tickets.reserve(responses.size());
  for (const serve::FleetResponse& r : responses)
    if (r.ticket != serve::kNoTicket) tickets.push_back(r.ticket);
  std::sort(tickets.begin(), tickets.end());
  if (tickets.size() != dispatched) {
    out.push_back({"ticket",
                   "response stream carries " + std::to_string(tickets.size()) +
                       " tickets but the fleet dispatched " +
                       std::to_string(dispatched)});
  }
  const std::size_t n =
      std::min(tickets.size(), static_cast<std::size_t>(dispatched));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t want = first_ticket + i;
    if (tickets[i] == want) continue;
    out.push_back(
        {"ticket", tickets[i] < want
                       ? "ticket " + std::to_string(tickets[i]) +
                             " served more than once"
                       : "ticket " + std::to_string(want) +
                             " dispatched but never answered"});
    return;  // one anchor per run; subsequent offsets are the same defect
  }
}

void check_billing_conservation(const serve::FleetStats& stats,
                                const std::vector<double>& base_bill_j,
                                double tol_j,
                                std::vector<InvariantViolation>& out) {
  if (stats.tenant_metered_j.size() != stats.tenants.size() ||
      base_bill_j.size() != stats.tenants.size()) {
    out.push_back({"billing", "stats vectors disagree on tenant count"});
    return;
  }
  for (std::size_t t = 0; t < stats.tenants.size(); ++t) {
    const double billed = stats.tenants[t].energy_j;
    const double expect = base_bill_j[t] + stats.tenant_metered_j[t];
    const double err = std::abs(billed - expect);
    if (err > tol_j)
      out.push_back(
          {"billing", "tenant " + std::to_string(t) + " billed " +
                          std::to_string(billed * 1e6) + " uJ, metered base+" +
                          std::to_string(stats.tenant_metered_j[t] * 1e6) +
                          " uJ => expected " + std::to_string(expect * 1e6) +
                          " uJ (err " + std::to_string(err * 1e12) + " pJ)"});
  }
}

void check_billing_envelope(const serve::FleetStats& base,
                            const serve::FleetStats& end,
                            const BillingEnvelope& env, double tol_j,
                            std::vector<InvariantViolation>& out) {
  if (end.tenants.size() != base.tenants.size() ||
      end.tenant_metered_j.size() != end.tenants.size() ||
      base.tenant_metered_j.size() != base.tenants.size()) {
    out.push_back({"billing", "envelope: stats windows disagree on tenants"});
    return;
  }
  for (std::size_t t = 0; t < end.tenants.size(); ++t) {
    const double metered =
        end.tenant_metered_j[t] - base.tenant_metered_j[t];
    const double ok =
        static_cast<double>(end.tenants[t].ok - base.tenants[t].ok);
    const double degraded = static_cast<double>(end.tenants[t].degraded -
                                                base.tenants[t].degraded);
    const double lo = ok * env.sei_min_image_j + degraded * env.adc_image_j;
    const double hi = ok * env.sei_max_image_j + degraded * env.adc_image_j;
    if (metered < lo - tol_j || metered > hi + tol_j)
      out.push_back(
          {"billing",
           "tenant " + std::to_string(t) + " metered " +
               std::to_string(metered * 1e6) + " uJ outside envelope [" +
               std::to_string(lo * 1e6) + ", " + std::to_string(hi * 1e6) +
               "] uJ for " + std::to_string(end.tenants[t].ok -
                                            base.tenants[t].ok) +
               " sei + " +
               std::to_string(end.tenants[t].degraded -
                              base.tenants[t].degraded) +
               " adc answers"});
  }
}

void check_plan_coherence(core::SeiNetwork& net, const data::Dataset& probes,
                          int images, const std::string& who,
                          std::vector<InvariantViolation>& out) {
  const std::uint64_t epoch_before = net.plan().epoch;
  core::EvalContext ctx;
  std::vector<int> planned(static_cast<std::size_t>(images));
  for (int i = 0; i < images; ++i)
    planned[static_cast<std::size_t>(i)] =
        net.predict(probe_image(probes, i), ctx, kChaosProbeIndexBase + i);
  // The scalar interpreter reads the live effective weights directly —
  // ground truth for whatever fault/remap state the network is in.
  net.set_plan_mode(false);
  net.set_packed_eval(false);
  for (int i = 0; i < images; ++i) {
    const int scalar =
        net.predict(probe_image(probes, i), ctx, kChaosProbeIndexBase + i);
    if (scalar != planned[static_cast<std::size_t>(i)]) {
      out.push_back({"plan_epoch",
                     who + ": plan (epoch " + std::to_string(epoch_before) +
                         ") predicts " +
                         std::to_string(planned[static_cast<std::size_t>(i)]) +
                         " but the scalar interpreter says " +
                         std::to_string(scalar) + " on probe " +
                         std::to_string(i)});
      break;
    }
  }
  net.set_packed_eval(true);
  net.set_plan_mode(true);
  if (net.plan().epoch < epoch_before)
    out.push_back({"plan_epoch", who + ": plan epoch moved backwards (" +
                                     std::to_string(epoch_before) + " -> " +
                                     std::to_string(net.plan().epoch) + ")"});
}

void check_arena_rebind_safety(core::SeiNetwork& net,
                               const data::Dataset& probes, int images,
                               const std::string& who,
                               std::vector<InvariantViolation>& out) {
  // A context bound to empty bounds is the maximal re-bind miss: every
  // Scratch carve failed, so each buffer must take the owned-vector
  // fallback. Results must still match a fresh (never-bound) context.
  core::EvalContext fresh;
  core::EvalContext stale;
  stale.bind(core::ScratchPlan{});
  for (int i = 0; i < images; ++i) {
    const int want =
        net.predict(probe_image(probes, i), fresh, kChaosProbeIndexBase + i);
    const int got =
        net.predict(probe_image(probes, i), stale, kChaosProbeIndexBase + i);
    if (got != want) {
      out.push_back({"arena_rebind",
                     who + ": stale-bound context predicts " +
                         std::to_string(got) + " vs " + std::to_string(want) +
                         " on probe " + std::to_string(i)});
      return;
    }
  }
}

}  // namespace sei::chaos
