#include "common/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/check.hpp"

namespace sei {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    SEI_CHECK_MSG(arg.rfind("--", 0) == 0, "unexpected positional arg: " << arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      args_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args_[arg] = argv[++i];
    } else {
      args_[arg] = "true";
    }
  }
}

std::string Cli::get(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  known_names_.push_back(name);
  declared_.push_back("  --" + name + " (default: " + default_value + ")  " +
                      help);
  const auto it = args_.find(name);
  return it == args_.end() ? default_value : it->second;
}

int Cli::get_int(const std::string& name, int default_value,
                 const std::string& help) {
  const std::string v = get(name, std::to_string(default_value), help);
  char* end = nullptr;
  const long r = std::strtol(v.c_str(), &end, 10);
  SEI_CHECK_MSG(end != v.c_str() && *end == '\0',
                "flag --" << name << " expects an integer, got '" << v << "'");
  return static_cast<int>(r);
}

double Cli::get_double(const std::string& name, double default_value,
                       const std::string& help) {
  const std::string v = get(name, std::to_string(default_value), help);
  char* end = nullptr;
  const double r = std::strtod(v.c_str(), &end);
  SEI_CHECK_MSG(end != v.c_str() && *end == '\0',
                "flag --" << name << " expects a number, got '" << v << "'");
  return r;
}

bool Cli::get_bool(const std::string& name, bool default_value,
                   const std::string& help) {
  const std::string v = get(name, default_value ? "true" : "false", help);
  return v == "true" || v == "1" || v == "yes";
}

int Cli::get_threads(const std::string& help) {
  const int threads = get_int("threads", 0, help);
  SEI_CHECK_MSG(threads >= 0,
                "flag --threads must be >= 0 (0 = auto), got " << threads);
  return threads;
}

bool Cli::validate(const std::string& program_description) const {
  if (args_.count("help")) {
    std::cout << program_ << " — " << program_description << "\nFlags:\n";
    for (const auto& d : declared_) std::cout << d << '\n';
    return false;
  }
  for (const auto& [name, value] : args_) {
    (void)value;
    const bool known =
        std::find(known_names_.begin(), known_names_.end(), name) !=
        known_names_.end();
    SEI_CHECK_MSG(known, "unknown flag --" << name << " (see --help)");
  }
  return true;
}

}  // namespace sei
