#include "common/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/check.hpp"

namespace sei {

namespace {

/// Levenshtein distance, for "did you mean --threads?" suggestions.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t next =
          std::min({row[j] + 1, row[j - 1] + 1,
                    diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

}  // namespace

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw CliError("unexpected positional argument '" + arg +
                     "' (flags look like --name value; see --help)");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      args_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args_[arg] = argv[++i];
    } else {
      args_[arg] = "true";
    }
  }
}

std::string Cli::get(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  known_names_.push_back(name);
  declared_.push_back("  --" + name + " (default: " + default_value + ")  " +
                      help);
  const auto it = args_.find(name);
  return it == args_.end() ? default_value : it->second;
}

int Cli::get_int(const std::string& name, int default_value,
                 const std::string& help) {
  const std::string v = get(name, std::to_string(default_value), help);
  char* end = nullptr;
  const long r = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0')
    throw CliError("flag --" + name + " expects an integer, got '" + v + "'");
  return static_cast<int>(r);
}

double Cli::get_double(const std::string& name, double default_value,
                       const std::string& help) {
  const std::string v = get(name, std::to_string(default_value), help);
  char* end = nullptr;
  const double r = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0')
    throw CliError("flag --" + name + " expects a number, got '" + v + "'");
  return r;
}

bool Cli::get_bool(const std::string& name, bool default_value,
                   const std::string& help) {
  const std::string v = get(name, default_value ? "true" : "false", help);
  return v == "true" || v == "1" || v == "yes";
}

int Cli::get_threads(const std::string& help) {
  const int threads = get_int("threads", 0, help);
  if (threads < 0)
    throw CliError("flag --threads must be >= 0 (0 = auto), got " +
                   std::to_string(threads));
  return threads;
}

bool Cli::validate(const std::string& program_description) const {
  if (args_.count("help")) {
    std::cout << program_ << " — " << program_description << "\nFlags:\n";
    for (const auto& d : declared_) std::cout << d << '\n';
    return false;
  }
  for (const auto& [name, value] : args_) {
    (void)value;
    if (std::find(known_names_.begin(), known_names_.end(), name) !=
        known_names_.end())
      continue;
    // A near-miss on a declared flag is almost always a typo — name it.
    std::string suggestion;
    std::size_t best = name.size() / 2 + 1;  // only plausible typos
    for (const std::string& k : known_names_) {
      const std::size_t d = edit_distance(name, k);
      if (d < best) {
        best = d;
        suggestion = k;
      }
    }
    std::string msg = "unknown flag --" + name;
    if (!suggestion.empty()) msg += " (did you mean --" + suggestion + "?)";
    msg += "; run with --help for the flag list";
    throw CliError(msg);
  }
  return true;
}

}  // namespace sei
