#include "common/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace sei {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string TextTable::pct(double v, int digits) { return num(v, digits) + "%"; }

std::string TextTable::str() const {
  // Column widths over header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> width(ncols, 0);
  auto account = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  account(header_);
  for (const auto& r : rows_)
    if (!r.is_separator) account(r.cells);

  std::size_t total = 1;  // leading '|'
  for (std::size_t w : width) total += w + 3;

  std::ostringstream os;
  auto hline = [&] { os << std::string(total, '-') << '\n'; };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << c << std::string(width[i] - c.size(), ' ') << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  hline();
  if (!header_.empty()) {
    emit(header_);
    hline();
  }
  for (const auto& r : rows_) {
    if (r.is_separator)
      hline();
    else
      emit(r.cells);
  }
  hline();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(cells[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_)
    if (!r.is_separator) emit(r.cells);
  return os.str();
}

void TextTable::write_csv_if(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::trunc);
  out << csv();
}

}  // namespace sei
