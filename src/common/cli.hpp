// Minimal command-line flag parser for the bench/example binaries.
//
// Supported forms: --name value, --name=value, --flag (boolean true).
// Unknown flags raise CliError so typos are caught rather than ignored —
// a mistyped `--treads 8` must abort with "did you mean --threads?", not
// silently run at the default thread count.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace sei {

/// Usage error on the command line (unknown flag, malformed value). Derives
/// from CheckError so existing catch sites keep working, but carries a
/// user-facing message with no file:line prefix.
class CliError : public CheckError {
 public:
  explicit CliError(const std::string& what) : CheckError(what) {}
};

class Cli {
 public:
  Cli(int argc, char** argv);

  /// Declares a flag with a default, returning its value. Declaration doubles
  /// as the "known flags" registry consulted by validate().
  std::string get(const std::string& name, const std::string& default_value,
                  const std::string& help = {});
  int get_int(const std::string& name, int default_value,
              const std::string& help = {});
  double get_double(const std::string& name, double default_value,
                    const std::string& help = {});
  bool get_bool(const std::string& name, bool default_value,
                const std::string& help = {});

  /// Declares the standard --threads flag. 0 (the default) means "size the
  /// worker pool to the hardware concurrency"; positive values pin the
  /// count. Non-numeric and negative values are rejected. Callers pass the
  /// result to exec::set_default_threads.
  int get_threads(const std::string& help =
                      "worker threads for parallel evaluation (0 = auto)");

  /// Presence test; also registers `name` as known for validate().
  bool has(const std::string& name) const {
    known_names_.push_back(name);
    return args_.count(name) > 0;
  }

  /// Throws CliError naming the first flag never declared via get*()/has(),
  /// with a "did you mean" suggestion when a declared flag is close.
  /// Prints usage and returns false if --help was passed.
  bool validate(const std::string& program_description) const;

 private:
  std::string program_;
  std::map<std::string, std::string> args_;
  mutable std::vector<std::string> declared_;  // name + help text for usage
  mutable std::vector<std::string> known_names_;
};

}  // namespace sei
