// Streaming statistics and fixed-bin histograms used by the distribution
// analysis (Table 1) and by test assertions on stochastic components.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace sei {

/// Welford running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over explicit bin edges: bin i covers [edges[i], edges[i+1]),
/// except the last bin which is closed on the right.
class EdgeHistogram {
 public:
  explicit EdgeHistogram(std::vector<double> edges)
      : edges_(std::move(edges)), counts_(edges_.size() - 1, 0) {
    SEI_CHECK(edges_.size() >= 2);
    SEI_CHECK(std::is_sorted(edges_.begin(), edges_.end()));
  }

  void add(double x) {
    if (x < edges_.front() || x > edges_.back()) {
      ++out_of_range_;
      return;
    }
    auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
    std::size_t idx = static_cast<std::size_t>(it - edges_.begin());
    if (idx == 0) idx = 1;                          // x == edges_.front()
    if (idx >= edges_.size()) idx = edges_.size() - 1;  // x == edges_.back()
    ++counts_[idx - 1];
    ++total_;
  }

  void add(std::span<const float> xs) {
    for (float x : xs) add(static_cast<double>(x));
  }

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  std::size_t out_of_range() const { return out_of_range_; }

  /// Fraction of in-range samples falling into `bin`.
  double fraction(std::size_t bin) const {
    return total_ ? static_cast<double>(counts_.at(bin)) /
                        static_cast<double>(total_)
                  : 0.0;
  }

  const std::vector<double>& edges() const { return edges_; }

 private:
  std::vector<double> edges_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t out_of_range_ = 0;
};

/// Mean of a span.
inline double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace sei
