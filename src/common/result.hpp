// Structured error handling for the serving path.
//
// Library internals validate invariants with SEI_CHECK (throwing CheckError:
// a bug or an unusable input is not a condition to recover from). The
// long-running serving runtime, by contrast, must keep answering when a
// request misses its deadline, a checkpoint is torn, or the accelerator is
// degraded — those are expected outcomes, not bugs, so they travel as
// values: `Result<T>` is either a T or an `Error{code, message}` and the
// caller decides the next tier of the degradation ladder.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/check.hpp"

namespace sei {

enum class ErrorCode {
  kCancelled,          // cooperative cancellation (shutdown, superseded work)
  kDeadlineExceeded,   // the request's deadline passed before completion
  kQueueFull,          // bounded admission queue rejected the request
  kQuotaExceeded,      // tenant exhausted its energy quota
  kShedding,           // breaker exhausted its tiers; load is being shed
  kUnavailable,        // runtime is stopped / not accepting work
  kCorrupt,            // integrity check failed (CRC, magic, geometry)
  kIo,                 // filesystem error reading/writing durable state
  kInternal,           // wrapped unexpected exception
};

const char* to_string(ErrorCode code);

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Value-or-Error. Construct from a T or an Error; query ok() before
/// value()/error() (both are checked).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T v) : data_(std::in_place_index<0>, std::move(v)) {}
  Result(Error e) : data_(std::in_place_index<1>, std::move(e)) {}

  bool ok() const { return data_.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    SEI_CHECK_MSG(ok(), "Result::value() on error: " << error().message);
    return std::get<0>(data_);
  }
  T& value() & {
    SEI_CHECK_MSG(ok(), "Result::value() on error: " << error().message);
    return std::get<0>(data_);
  }
  T&& take() && {
    SEI_CHECK_MSG(ok(), "Result::take() on error: " << error().message);
    return std::get<0>(std::move(data_));
  }

  const Error& error() const {
    SEI_CHECK(!ok());
    return std::get<1>(data_);
  }
  ErrorCode code() const { return error().code; }

 private:
  std::variant<T, Error> data_;
};

/// Result<void> stand-in for operations with no payload.
struct Unit {};
using Status = Result<Unit>;

inline Status ok_status() { return Status(Unit{}); }

inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kQuotaExceeded: return "quota_exceeded";
    case ErrorCode::kShedding: return "shedding";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kCorrupt: return "corrupt";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

}  // namespace sei
