// Binary (de)serialization helpers for model and dataset caches.
//
// Format: little-endian PODs, length-prefixed vectors, magic/version headers
// written by the callers. Files are written atomically (tmp + rename) so an
// interrupted run never leaves a truncated cache behind.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace sei {

class BinaryWriter {
 public:
  /// Opens `path + ".tmp"`; commit() renames it onto `path`.
  explicit BinaryWriter(std::string path);
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_vec(const std::vector<float>& v);
  void write_f64_vec(const std::vector<double>& v);
  void write_i32_vec(const std::vector<std::int32_t>& v);
  void write_u8_vec(const std::vector<std::uint8_t>& v);

  /// Flushes and atomically renames the temp file into place.
  void commit();

 private:
  void raw(const void* p, std::size_t n);
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_vec();
  std::vector<double> read_f64_vec();
  std::vector<std::int32_t> read_i32_vec();
  std::vector<std::uint8_t> read_u8_vec();

 private:
  void raw(void* p, std::size_t n);
  std::ifstream in_;
  std::string path_;
};

/// True if a regular file exists at `path`.
bool file_exists(const std::string& path);

/// Creates the directory (and parents) if missing.
void ensure_directory(const std::string& path);

}  // namespace sei
