// Binary (de)serialization helpers for model, dataset and checkpoint files.
//
// Format: little-endian PODs, length-prefixed vectors, magic/version headers
// written by the callers. Every file ends in a CRC32 trailer over the whole
// payload, and commits are durable: the temp file is fsync'd before the
// atomic rename and the directory entry is fsync'd after it, so a process
// killed at any instant leaves either the old file or the new one — never a
// torn mixture — and readers that call verify_crc() detect the remaining
// failure mode (corruption of the bytes themselves).
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace sei {

// ---------------------------------------------------------------------------
// IO fault injection (chaos seam — see docs/chaos.md).
//
// Every durable writer in the system (BinaryWriter, JsonWriter and the
// fsync/rename steps of atomic_replace_durable they share) consults a
// process-wide hook before each IO step. The hook sees which operation is
// about to run and against which destination file, and picks an action:
// proceed, fail cleanly, tear the write short, or simulate a kill -9 at
// exactly this offset. This generalizes the checkpoint-retry failure hook
// (serve::RetryPolicy::inject_failure) from one call site to the whole
// CRC/fsync-rename write path, which is what lets the crash-point matrix
// visit *every* write offset of a commit sequence.
// ---------------------------------------------------------------------------

/// Which IO step is about to execute.
enum class IoOp {
  kWrite,   // a payload (or trailer) write into the temp file
  kFsync,   // fsync of the temp file or of the destination directory
  kRename,  // the atomic rename of tmp onto the destination
};

/// What the hook wants done to the step.
enum class IoFaultAction {
  kNone,        // run the step normally
  kFail,        // throw CheckError; callers surface it as ErrorCode::kIo
  kShortWrite,  // write half the bytes, then throw CheckError (torn tmp)
  kCrash,       // throw InjectedCrash and leave the tmp file torn in place,
                // exactly as a process killed mid-step would
};

/// The step the hook is consulted about. `path` is the *destination* file
/// (never the ".tmp" name), so hooks can target "fleet.manifest" or a shard
/// checkpoint without knowing writer internals. `bytes` is the payload size
/// for kWrite steps and 0 otherwise.
struct IoFaultSite {
  IoOp op;
  const std::string& path;
  std::size_t bytes;
};

using IoFaultHook = std::function<IoFaultAction(const IoFaultSite&)>;

/// Installs (or with nullptr clears) the process-wide IO fault hook. Not a
/// synchronization point: install/clear only while no writer is mid-flight
/// (chaos harnesses arm it around a quiescent fleet). When no hook is set
/// the per-step cost is one relaxed atomic load.
void set_io_fault_hook(IoFaultHook hook);

/// True when a hook is currently installed.
bool io_fault_hook_installed();

/// Thrown for IoFaultAction::kCrash. Deliberately NOT derived from
/// std::exception: every recovery path in the stack catches
/// `const std::exception&` (checkpoint save, retry loops, manifest write),
/// and a simulated kill -9 must sail through all of them to the harness —
/// a real SIGKILL doesn't unwind politely either.
struct InjectedCrash {
  const char* what() const noexcept { return "injected crash (simulated kill -9)"; }
};

/// Incremental CRC-32 (IEEE 802.3, the zlib polynomial). Feed chunks by
/// passing the previous return value as `crc`; start from 0.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc = 0);

/// Durable atomic replace: fsync `tmp_path`, rename it onto `path`, fsync
/// the containing directory. After it returns, a crash cannot resurrect the
/// old content or lose the new.
void atomic_replace_durable(const std::string& tmp_path,
                            const std::string& path);

class BinaryWriter {
 public:
  /// Opens `path + ".tmp"`; commit() renames it onto `path`.
  explicit BinaryWriter(std::string path);
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_vec(const std::vector<float>& v);
  void write_f64_vec(const std::vector<double>& v);
  void write_i32_vec(const std::vector<std::int32_t>& v);
  void write_u8_vec(const std::vector<std::uint8_t>& v);

  /// Appends the CRC32 trailer, fsyncs, and atomically renames the temp
  /// file into place (durable: survives kill -9 at any point).
  void commit();

 private:
  void raw(const void* p, std::size_t n);
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  std::uint32_t crc_ = 0;  // running CRC of every payload byte written
  bool committed_ = false;
  bool crashed_ = false;  // InjectedCrash fired: leave the torn tmp behind
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  /// Validates the CRC32 trailer BinaryWriter::commit appended and hides it
  /// from the read cursor (remaining() excludes the trailer afterwards).
  /// Must be called before any read. Throws CheckError when the trailer is
  /// missing (legacy or truncated file) or the payload CRC mismatches (torn
  /// or bit-flipped write) — callers treat that as a cache miss / corrupt
  /// checkpoint, never as loadable data.
  void verify_crc();

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_vec();
  std::vector<double> read_f64_vec();
  std::vector<std::int32_t> read_i32_vec();
  std::vector<std::uint8_t> read_u8_vec();

  /// Bytes left between the read cursor and the end of the file. Length
  /// prefixes are validated against this before any allocation, so a
  /// corrupt prefix raises CheckError instead of a multi-GB alloc.
  std::uint64_t remaining() const { return size_ - pos_; }

 private:
  void raw(void* p, std::size_t n);
  /// Reads a u64 length prefix for items of `elem_size` bytes and checks
  /// it fits in the rest of the file.
  std::uint64_t read_length(std::size_t elem_size);
  std::ifstream in_;
  std::string path_;
  std::uint64_t size_ = 0;  // file size in bytes
  std::uint64_t pos_ = 0;   // read cursor
};

/// Minimal streaming JSON emitter for machine-readable reports (campaign
/// results, bench output). Tracks nesting and comma placement; begin/end
/// calls must balance (checked at commit). Writes atomically like
/// BinaryWriter (tmp + rename). Non-finite numbers serialize as null.
class JsonWriter {
 public:
  /// Opens `path + ".tmp"`; commit() renames it onto `path`.
  explicit JsonWriter(std::string path);
  ~JsonWriter();
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key of the next member (only inside an object).
  void key(const std::string& k);

  void value(double v);
  void value(long long v);
  void value(int v) { value(static_cast<long long>(v)); }
  void value(bool v);
  void value(const std::string& v);
  void value(const char* v) { value(std::string(v)); }

  /// key + value in one call.
  template <typename T>
  void kv(const std::string& k, T v) {
    key(k);
    value(v);
  }

  /// Requires all containers closed; flushes and renames into place.
  void commit();

 private:
  void pre_value();  // comma/indent bookkeeping before any value/begin
  void raw(const std::string& s);

  struct Frame {
    char type;       // '{' or '['
    int items = 0;
  };
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  std::vector<Frame> stack_;
  bool key_pending_ = false;
  bool committed_ = false;
  bool crashed_ = false;  // InjectedCrash fired: leave the torn tmp behind
};

/// True if a regular file exists at `path`.
bool file_exists(const std::string& path);

/// Creates the directory (and parents) if missing.
void ensure_directory(const std::string& path);

}  // namespace sei
