// ASCII table rendering for the benchmark harnesses, which print the paper's
// tables side by side with the measured values.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sei {

/// Column-aligned text table with optional title and separator rows.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row.
  void header(std::vector<std::string> cells);

  /// Appends a data row. Rows may have fewer cells than the header.
  void row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void separator();

  /// Renders with single-space-padded `|`-separated columns.
  std::string str() const;

  /// Renders as RFC-4180-style CSV (header + data rows; separators are
  /// skipped; cells containing commas/quotes are quoted). For piping bench
  /// tables into plotting scripts.
  std::string csv() const;

  /// Writes csv() to `path` if non-empty (helper for a --csv flag).
  void write_csv_if(const std::string& path) const;

  /// Convenience: render to a stream.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

  /// Formats a double with `digits` decimals.
  static std::string num(double v, int digits = 2);

  /// Formats a percentage (value already in percent) with `digits` decimals.
  static std::string pct(double v, int digits = 2);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace sei
