// Checked preconditions/invariants for the whole library.
//
// SEI_CHECK   — always-on validation of arguments and invariants; throws
//               sei::CheckError with file:line and the failed condition.
// SEI_ASSERT  — debug-only hot-path assertion (compiled out in NDEBUG).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sei {

/// Thrown when a checked precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace sei

#define SEI_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) ::sei::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define SEI_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream sei_check_os_;                              \
      sei_check_os_ << msg;                                          \
      ::sei::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                  sei_check_os_.str());              \
    }                                                                \
  } while (0)

// SEI_ASSERT guards hot paths (e.g. Crossbar::idx, one call per MVM cell
// access), so it must cost nothing in optimized builds. It is active in
// plain debug builds (!NDEBUG) and whenever SEI_ENABLE_ASSERTS is defined —
// the sanitizer configurations force the latter from CMake so that ASan/
// UBSan/TSan runs keep full invariant checking even at RelWithDebInfo.
#if defined(SEI_ENABLE_ASSERTS) || !defined(NDEBUG)
#define SEI_ASSERT(cond) SEI_CHECK(cond)
#else
#define SEI_ASSERT(cond) ((void)0)
#endif
