#include "common/signals.hpp"

#include <csignal>

#include <atomic>

namespace sei {

namespace {

std::atomic<bool> g_shutdown{false};

void on_signal(int sig) {
  g_shutdown.store(true, std::memory_order_relaxed);
  // Second signal: give up on graceful draining — restore the default
  // disposition so the next delivery terminates immediately.
  std::signal(sig, SIG_DFL);
}

}  // namespace

void install_shutdown_handler() {
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
}

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

void request_shutdown() { g_shutdown.store(true, std::memory_order_relaxed); }

void reset_shutdown_flag() {
  g_shutdown.store(false, std::memory_order_relaxed);
}

}  // namespace sei
