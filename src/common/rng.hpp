// Deterministic, fast random number generation.
//
// Every stochastic component in the library (weight init, data augmentation,
// device variation, homogenization search) takes an explicit Rng so that
// experiments are reproducible from a single seed. The generator is a
// splitmix64-seeded xoshiro256** — small state, excellent statistical quality,
// and identical output on every platform (unlike std::mt19937 distributions,
// whose std::normal_distribution is implementation-defined).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/check.hpp"

namespace sei {

/// splitmix64: used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic PRNG with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
    has_cached_gauss_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Raw 64 random bits (xoshiro256**).
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    SEI_ASSERT(n > 0);
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    SEI_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box–Muller with caching.
  double gaussian() {
    if (has_cached_gauss_) {
      has_cached_gauss_ = false;
      return cached_gauss_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
  }

  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Lognormal with the *multiplicative* sigma given in log-domain: a sample
  /// multiplies its nominal value by exp(sigma * N(0,1) - sigma^2/2), so the
  /// expected multiplier is 1 (energy-preserving device variation).
  double lognormal_multiplier(double sigma) {
    if (sigma <= 0.0) return 1.0;
    return std::exp(sigma * gaussian() - 0.5 * sigma * sigma);
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Independent child stream (for per-component reproducibility).
  Rng split() { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

  /// Seed of counter-based stream `stream` of master seed `seed`. Two
  /// chained splitmix64 passes: for a fixed seed the map stream → seed is a
  /// bijection, so distinct streams never collide and neighbouring stream
  /// ids are fully decorrelated.
  static std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t s = seed;
    const std::uint64_t h = splitmix64(s);
    s = h ^ (stream + 0x9e3779b97f4a7c15ULL);
    return splitmix64(s);
  }

  /// Counter-based stream splitting: the returned generator depends only on
  /// (seed, stream), never on how many draws any other stream consumed —
  /// the basis of order-independent, parallel-safe evaluation (see
  /// docs/parallelism.md).
  static Rng fork(std::uint64_t seed, std::uint64_t stream) {
    return Rng(stream_seed(seed, stream));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_gauss_ = 0.0;
  bool has_cached_gauss_ = false;
};

}  // namespace sei
