#include "common/io.hpp"

#include <cstdio>
#include <filesystem>

namespace sei {

BinaryWriter::BinaryWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  SEI_CHECK_MSG(out_.good(), "cannot open for writing: " << tmp_path_);
}

BinaryWriter::~BinaryWriter() {
  if (!committed_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

void BinaryWriter::raw(const void* p, std::size_t n) {
  out_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  SEI_CHECK_MSG(out_.good(), "write failed: " << tmp_path_);
}

void BinaryWriter::write_u32(std::uint32_t v) { raw(&v, sizeof v); }
void BinaryWriter::write_u64(std::uint64_t v) { raw(&v, sizeof v); }
void BinaryWriter::write_i32(std::int32_t v) { raw(&v, sizeof v); }
void BinaryWriter::write_f32(float v) { raw(&v, sizeof v); }
void BinaryWriter::write_f64(double v) { raw(&v, sizeof v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  raw(s.data(), s.size());
}

void BinaryWriter::write_f32_vec(const std::vector<float>& v) {
  write_u64(v.size());
  raw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::write_f64_vec(const std::vector<double>& v) {
  write_u64(v.size());
  raw(v.data(), v.size() * sizeof(double));
}

void BinaryWriter::write_i32_vec(const std::vector<std::int32_t>& v) {
  write_u64(v.size());
  raw(v.data(), v.size() * sizeof(std::int32_t));
}

void BinaryWriter::write_u8_vec(const std::vector<std::uint8_t>& v) {
  write_u64(v.size());
  raw(v.data(), v.size());
}

void BinaryWriter::commit() {
  SEI_CHECK(!committed_);
  out_.flush();
  SEI_CHECK_MSG(out_.good(), "flush failed: " << tmp_path_);
  out_.close();
  std::filesystem::rename(tmp_path_, path_);
  committed_ = true;
}

BinaryReader::BinaryReader(const std::string& path) : path_(path) {
  in_.open(path, std::ios::binary);
  SEI_CHECK_MSG(in_.good(), "cannot open for reading: " << path);
}

void BinaryReader::raw(void* p, std::size_t n) {
  in_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  SEI_CHECK_MSG(in_.gcount() == static_cast<std::streamsize>(n),
                "truncated read from " << path_);
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v;
  raw(&v, sizeof v);
  return v;
}
std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v;
  raw(&v, sizeof v);
  return v;
}
std::int32_t BinaryReader::read_i32() {
  std::int32_t v;
  raw(&v, sizeof v);
  return v;
}
float BinaryReader::read_f32() {
  float v;
  raw(&v, sizeof v);
  return v;
}
double BinaryReader::read_f64() {
  double v;
  raw(&v, sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  std::string s(n, '\0');
  raw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::read_f32_vec() {
  const std::uint64_t n = read_u64();
  std::vector<float> v(n);
  raw(v.data(), n * sizeof(float));
  return v;
}

std::vector<double> BinaryReader::read_f64_vec() {
  const std::uint64_t n = read_u64();
  std::vector<double> v(n);
  raw(v.data(), n * sizeof(double));
  return v;
}

std::vector<std::int32_t> BinaryReader::read_i32_vec() {
  const std::uint64_t n = read_u64();
  std::vector<std::int32_t> v(n);
  raw(v.data(), n * sizeof(std::int32_t));
  return v;
}

std::vector<std::uint8_t> BinaryReader::read_u8_vec() {
  const std::uint64_t n = read_u64();
  std::vector<std::uint8_t> v(n);
  raw(v.data(), n);
  return v;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

void ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  SEI_CHECK_MSG(!ec, "cannot create directory " << path << ": " << ec.message());
}

}  // namespace sei
