#include "common/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

namespace sei {

namespace {

// The chaos hook. The flag is the fast-path gate: when clear (the normal
// case) a writer pays one relaxed load per step and never touches the
// std::function. Install/clear happens only at quiescent points (contract
// in the header), so the function object itself needs no lock.
IoFaultHook g_io_fault_hook;
std::atomic<bool> g_io_fault_hook_set{false};

/// Consults the hook for one step; returns the action (kNone when unset).
IoFaultAction consult_io_hook(IoOp op, const std::string& path,
                              std::size_t bytes) {
  if (!g_io_fault_hook_set.load(std::memory_order_acquire))
    return IoFaultAction::kNone;
  return g_io_fault_hook(IoFaultSite{op, path, bytes});
}

const char* io_op_name(IoOp op) {
  switch (op) {
    case IoOp::kWrite: return "write";
    case IoOp::kFsync: return "fsync";
    case IoOp::kRename: return "rename";
  }
  return "?";
}

/// Applies a non-write fault action (fsync/rename steps have no bytes to
/// tear, so kShortWrite degrades to kFail there).
void apply_meta_fault(IoFaultAction a, IoOp op, const std::string& path) {
  if (a == IoFaultAction::kCrash) throw InjectedCrash{};
  if (a == IoFaultAction::kFail || a == IoFaultAction::kShortWrite)
    SEI_CHECK_MSG(false, "injected IO failure: " << io_op_name(op) << " for "
                                                 << path);
}

// Sentinel preceding the CRC word so a trailer-less (legacy/truncated) file
// is distinguishable from one whose CRC merely mismatches.
constexpr std::uint32_t kCrcTrailerMagic = 0x5e1cc32c;
constexpr std::uint64_t kCrcTrailerBytes = 8;  // magic u32 + crc u32

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

/// fsync the object at `path` (a file or a directory). Directories need it
/// so the rename's new directory entry is on disk, not just in cache.
void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  SEI_CHECK_MSG(fd >= 0,
                "cannot open for fsync: " << path << " (" << std::strerror(errno)
                                          << ")");
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  SEI_CHECK_MSG(rc == 0,
                "fsync failed: " << path << " (" << std::strerror(saved) << ")");
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

void set_io_fault_hook(IoFaultHook hook) {
  g_io_fault_hook = std::move(hook);
  g_io_fault_hook_set.store(static_cast<bool>(g_io_fault_hook),
                            std::memory_order_release);
}

bool io_fault_hook_installed() {
  return g_io_fault_hook_set.load(std::memory_order_acquire);
}

void atomic_replace_durable(const std::string& tmp_path,
                            const std::string& path) {
  // Each durability step is a distinct crash point: before the tmp fsync,
  // before the rename (old file survives), and before the directory fsync
  // (new file already in place). The hook is consulted *before* the real
  // operation so a kCrash at step k means steps >= k never happened.
  apply_meta_fault(consult_io_hook(IoOp::kFsync, path, 0), IoOp::kFsync, path);
  fsync_path(tmp_path);
  apply_meta_fault(consult_io_hook(IoOp::kRename, path, 0), IoOp::kRename,
                   path);
  std::filesystem::rename(tmp_path, path);
  apply_meta_fault(consult_io_hook(IoOp::kFsync, path, 0), IoOp::kFsync, path);
  const std::filesystem::path dir =
      std::filesystem::path(path).parent_path();
  fsync_path(dir.empty() ? "." : dir.string());
}

BinaryWriter::BinaryWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  SEI_CHECK_MSG(out_.good(), "cannot open for writing: " << tmp_path_);
}

BinaryWriter::~BinaryWriter() {
  // A simulated kill -9 (crashed_) leaves the torn tmp file on disk, just
  // like the real signal would; readers already ignore stray tmps.
  if (!committed_ && !crashed_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

void BinaryWriter::raw(const void* p, std::size_t n) {
  switch (consult_io_hook(IoOp::kWrite, path_, n)) {
    case IoFaultAction::kNone:
      break;
    case IoFaultAction::kFail:
      SEI_CHECK_MSG(false, "injected IO failure: write for " << path_);
      break;
    case IoFaultAction::kShortWrite:
      out_.write(static_cast<const char*>(p),
                 static_cast<std::streamsize>(n / 2));
      out_.flush();
      SEI_CHECK_MSG(false, "injected short write for " << path_);
      break;
    case IoFaultAction::kCrash:
      out_.write(static_cast<const char*>(p),
                 static_cast<std::streamsize>(n / 2));
      out_.flush();
      crashed_ = true;
      throw InjectedCrash{};
  }
  out_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  SEI_CHECK_MSG(out_.good(), "write failed: " << tmp_path_);
  crc_ = crc32(p, n, crc_);
}

void BinaryWriter::write_u32(std::uint32_t v) { raw(&v, sizeof v); }
void BinaryWriter::write_u64(std::uint64_t v) { raw(&v, sizeof v); }
void BinaryWriter::write_i32(std::int32_t v) { raw(&v, sizeof v); }
void BinaryWriter::write_f32(float v) { raw(&v, sizeof v); }
void BinaryWriter::write_f64(double v) { raw(&v, sizeof v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  raw(s.data(), s.size());
}

void BinaryWriter::write_f32_vec(const std::vector<float>& v) {
  write_u64(v.size());
  raw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::write_f64_vec(const std::vector<double>& v) {
  write_u64(v.size());
  raw(v.data(), v.size() * sizeof(double));
}

void BinaryWriter::write_i32_vec(const std::vector<std::int32_t>& v) {
  write_u64(v.size());
  raw(v.data(), v.size() * sizeof(std::int32_t));
}

void BinaryWriter::write_u8_vec(const std::vector<std::uint8_t>& v) {
  write_u64(v.size());
  raw(v.data(), v.size());
}

void BinaryWriter::commit() {
  SEI_CHECK(!committed_);
  try {
    // The trailer write is its own crash point — a crash here leaves a tmp
    // with a full payload but no (or half a) trailer, which verify_crc()
    // rejects as truncated.
    const IoFaultAction a =
        consult_io_hook(IoOp::kWrite, path_, kCrcTrailerBytes);
    if (a == IoFaultAction::kCrash) throw InjectedCrash{};
    if (a != IoFaultAction::kNone)
      SEI_CHECK_MSG(false, "injected IO failure: trailer for " << path_);
    // Trailer: magic + CRC of everything before it. Written via the stream
    // directly (not raw()) so the CRC does not fold in its own encoding.
    const std::uint32_t payload_crc = crc_;
    out_.write(reinterpret_cast<const char*>(&kCrcTrailerMagic),
               sizeof kCrcTrailerMagic);
    out_.write(reinterpret_cast<const char*>(&payload_crc),
               sizeof payload_crc);
    out_.flush();
    SEI_CHECK_MSG(out_.good(), "flush failed: " << tmp_path_);
    out_.close();
    atomic_replace_durable(tmp_path_, path_);
  } catch (const InjectedCrash&) {
    crashed_ = true;
    throw;
  }
  committed_ = true;
}

BinaryReader::BinaryReader(const std::string& path) : path_(path) {
  in_.open(path, std::ios::binary);
  SEI_CHECK_MSG(in_.good(), "cannot open for reading: " << path);
  std::error_code ec;
  const auto sz = std::filesystem::file_size(path, ec);
  SEI_CHECK_MSG(!ec, "cannot stat " << path << ": " << ec.message());
  size_ = static_cast<std::uint64_t>(sz);
}

void BinaryReader::verify_crc() {
  SEI_CHECK_MSG(pos_ == 0, "verify_crc() must precede any read");
  SEI_CHECK_MSG(size_ >= kCrcTrailerBytes,
                "no integrity trailer in " << path_ << ": file is only "
                                           << size_ << " bytes");
  const std::uint64_t payload = size_ - kCrcTrailerBytes;
  in_.seekg(static_cast<std::streamoff>(payload));
  std::uint32_t magic = 0, stored = 0;
  in_.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in_.read(reinterpret_cast<char*>(&stored), sizeof stored);
  SEI_CHECK_MSG(in_.good(), "cannot read integrity trailer of " << path_);
  SEI_CHECK_MSG(magic == kCrcTrailerMagic,
                "missing integrity trailer in "
                    << path_ << " (legacy format or truncated write)");
  in_.seekg(0);
  std::uint32_t crc = 0;
  std::vector<char> buf(64 * 1024);
  std::uint64_t left = payload;
  while (left > 0) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(left, buf.size()));
    in_.read(buf.data(), static_cast<std::streamsize>(n));
    SEI_CHECK_MSG(in_.gcount() == static_cast<std::streamsize>(n),
                  "short read verifying " << path_);
    crc = crc32(buf.data(), n, crc);
    left -= n;
  }
  SEI_CHECK_MSG(crc == stored,
                "CRC mismatch in " << path_ << ": stored " << stored
                                   << ", computed " << crc
                                   << " (torn or corrupted write)");
  in_.seekg(0);
  SEI_CHECK_MSG(in_.good(), "cannot rewind " << path_);
  size_ = payload;  // hide the trailer from remaining()/length checks
}

void BinaryReader::raw(void* p, std::size_t n) {
  SEI_CHECK_MSG(n <= remaining(),
                "truncated file " << path_ << ": need " << n << " bytes, "
                                  << remaining() << " left");
  in_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  SEI_CHECK_MSG(in_.gcount() == static_cast<std::streamsize>(n),
                "truncated read from " << path_);
  pos_ += n;
}

std::uint64_t BinaryReader::read_length(std::size_t elem_size) {
  const std::uint64_t n = read_u64();
  SEI_CHECK_MSG(n <= remaining() / elem_size,
                "corrupt length prefix in " << path_ << ": " << n
                                            << " elements of " << elem_size
                                            << " bytes exceed the "
                                            << remaining()
                                            << " bytes left in the file");
  return n;
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v;
  raw(&v, sizeof v);
  return v;
}
std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v;
  raw(&v, sizeof v);
  return v;
}
std::int32_t BinaryReader::read_i32() {
  std::int32_t v;
  raw(&v, sizeof v);
  return v;
}
float BinaryReader::read_f32() {
  float v;
  raw(&v, sizeof v);
  return v;
}
double BinaryReader::read_f64() {
  double v;
  raw(&v, sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_length(1);
  std::string s(n, '\0');
  raw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::read_f32_vec() {
  const std::uint64_t n = read_length(sizeof(float));
  std::vector<float> v(n);
  raw(v.data(), n * sizeof(float));
  return v;
}

std::vector<double> BinaryReader::read_f64_vec() {
  const std::uint64_t n = read_length(sizeof(double));
  std::vector<double> v(n);
  raw(v.data(), n * sizeof(double));
  return v;
}

std::vector<std::int32_t> BinaryReader::read_i32_vec() {
  const std::uint64_t n = read_length(sizeof(std::int32_t));
  std::vector<std::int32_t> v(n);
  raw(v.data(), n * sizeof(std::int32_t));
  return v;
}

std::vector<std::uint8_t> BinaryReader::read_u8_vec() {
  const std::uint64_t n = read_length(1);
  std::vector<std::uint8_t> v(n);
  raw(v.data(), n);
  return v;
}

JsonWriter::JsonWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  out_.open(tmp_path_, std::ios::trunc);
  SEI_CHECK_MSG(out_.good(), "cannot open for writing: " << tmp_path_);
}

JsonWriter::~JsonWriter() {
  if (!committed_ && !crashed_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

void JsonWriter::raw(const std::string& s) {
  switch (consult_io_hook(IoOp::kWrite, path_, s.size())) {
    case IoFaultAction::kNone:
      break;
    case IoFaultAction::kFail:
      SEI_CHECK_MSG(false, "injected IO failure: write for " << path_);
      break;
    case IoFaultAction::kShortWrite:
      out_ << s.substr(0, s.size() / 2);
      out_.flush();
      SEI_CHECK_MSG(false, "injected short write for " << path_);
      break;
    case IoFaultAction::kCrash:
      out_ << s.substr(0, s.size() / 2);
      out_.flush();
      crashed_ = true;
      throw InjectedCrash{};
  }
  out_ << s;
  SEI_CHECK_MSG(out_.good(), "write failed: " << tmp_path_);
}

void JsonWriter::pre_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // the key already placed the comma
  }
  if (!stack_.empty()) {
    SEI_CHECK_MSG(stack_.back().type == '[',
                  "JSON object member needs a key() first");
    if (stack_.back().items++ > 0) raw(",");
  }
}

void JsonWriter::begin_object() {
  pre_value();
  stack_.push_back({'{', 0});
  raw("{");
}

void JsonWriter::end_object() {
  SEI_CHECK_MSG(!stack_.empty() && stack_.back().type == '{' && !key_pending_,
                "unbalanced end_object()");
  stack_.pop_back();
  raw("}");
}

void JsonWriter::begin_array() {
  pre_value();
  stack_.push_back({'[', 0});
  raw("[");
}

void JsonWriter::end_array() {
  SEI_CHECK_MSG(!stack_.empty() && stack_.back().type == '[',
                "unbalanced end_array()");
  stack_.pop_back();
  raw("]");
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void JsonWriter::key(const std::string& k) {
  SEI_CHECK_MSG(!stack_.empty() && stack_.back().type == '{' && !key_pending_,
                "key() is only valid inside an object");
  if (stack_.back().items++ > 0) raw(",");
  raw("\"");
  raw(json_escape(k));
  raw("\":");
  key_pending_ = true;
}

void JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    raw("null");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Shortest round-trip: prefer fewer digits when they reparse exactly.
  for (int prec = 1; prec < 17; ++prec) {
    char trial[32];
    std::snprintf(trial, sizeof trial, "%.*g", prec, v);
    if (std::strtod(trial, nullptr) == v) {
      std::snprintf(buf, sizeof buf, "%s", trial);
      break;
    }
  }
  raw(buf);
}

void JsonWriter::value(long long v) {
  pre_value();
  raw(std::to_string(v));
}

void JsonWriter::value(bool v) {
  pre_value();
  raw(v ? "true" : "false");
}

void JsonWriter::value(const std::string& v) {
  pre_value();
  raw("\"");
  raw(json_escape(v));
  raw("\"");
}

void JsonWriter::commit() {
  SEI_CHECK(!committed_);
  SEI_CHECK_MSG(stack_.empty() && !key_pending_,
                "commit() with unclosed JSON containers");
  try {
    raw("\n");
    out_.flush();
    SEI_CHECK_MSG(out_.good(), "flush failed: " << tmp_path_);
    out_.close();
    atomic_replace_durable(tmp_path_, path_);
  } catch (const InjectedCrash&) {
    crashed_ = true;
    throw;
  }
  committed_ = true;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

void ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  SEI_CHECK_MSG(!ec, "cannot create directory " << path << ": " << ec.message());
}

}  // namespace sei
