// Cooperative SIGINT/SIGTERM shutdown for the long-running binaries.
//
// A signal must not abort a bench mid-write or strand a serving runtime's
// in-flight requests: the handler only sets an async-signal-safe flag, and
// the main loops poll shutdown_requested() at their natural boundaries
// (between measurements, between served requests), then drain, write their
// final checkpoint/JSON report, and exit 0. A second signal while draining
// restores the default disposition, so a third kills the process the
// traditional way if draining itself hangs.
#pragma once

namespace sei {

/// Installs the SIGINT/SIGTERM handler. Idempotent; call once at startup.
void install_shutdown_handler();

/// True once SIGINT or SIGTERM arrived (or request_shutdown() was called).
bool shutdown_requested();

/// Programmatic equivalent of receiving a signal (tests, nested runtimes).
void request_shutdown();

/// Clears the flag — for tests that simulate several shutdown cycles in one
/// process. Production binaries never need it.
void reset_shutdown_flag();

}  // namespace sei
