#include "rram/crossbar.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sei::rram {

Crossbar::Crossbar(int rows, int cols, const DeviceConfig& device, Rng& rng,
                   int spare_rows)
    : rows_(rows),
      cols_(cols),
      spare_rows_(spare_rows),
      device_(device),
      fault_rng_(rng.split()),
      program_rng_(rng.split()),
      row_map_(static_cast<std::size_t>(rows)),
      values_(static_cast<std::size_t>(rows + spare_rows) * cols, 0.0),
      levels_(static_cast<std::size_t>(rows + spare_rows) * cols, 0),
      stuck_(static_cast<std::size_t>(rows + spare_rows) * cols, -1) {
  SEI_CHECK_MSG(rows >= 1 && cols >= 1, "crossbar must be non-empty");
  SEI_CHECK_MSG(spare_rows >= 0, "spare row count cannot be negative");
  for (int r = 0; r < rows_; ++r) row_map_[static_cast<std::size_t>(r)] = r;
  for (std::size_t i = 0; i < stuck_.size(); ++i) {
    int frozen = 0;
    if (device_.roll_stuck(fault_rng_, frozen)) {
      stuck_[i] = static_cast<std::int16_t>(frozen);
      values_[i] = static_cast<double>(frozen) *
                   ir_factor(static_cast<int>(i) / cols_,
                             static_cast<int>(i) % cols_);
    }
  }
  if (device_.config().drift_enabled()) {
    drift_nu_.resize(values_.size());
    for (auto& nu : drift_nu_)
      nu = static_cast<float>(device_.roll_drift_exponent(fault_rng_));
  }
}

int Crossbar::physical_row(int r) const {
  SEI_CHECK(r >= 0 && r < rows_);
  return row_map_[static_cast<std::size_t>(r)];
}

double Crossbar::ir_factor(int r, int c) const {
  const double alpha = device_.config().ir_drop_alpha;
  if (alpha <= 0.0) return 1.0;
  constexpr double kReferenceLength = 512.0;  // cells of wire at full loss
  const double dist = 0.5 * (r + c) / kReferenceLength;
  return std::max(0.0, 1.0 - alpha * dist);
}

void Crossbar::program_physical(int pr, int c, int level, int max_attempts) {
  const std::size_t i = static_cast<std::size_t>(pr) * cols_ + c;
  levels_[i] = static_cast<std::int16_t>(level);  // record the intent
  if (stuck_[i] >= 0) return;  // write-verify cannot move a stuck cell
  int attempts = 0;
  values_[i] =
      device_.program(level, program_rng_, &attempts, max_attempts) *
      ir_factor(pr, c);
  program_attempts_ += attempts;
}

void Crossbar::program(int r, int c, int level, int max_attempts) {
  SEI_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  program_physical(row_map_[static_cast<std::size_t>(r)], c, level,
                   max_attempts);
}

void Crossbar::reprogram(int r, int c, int max_attempts) {
  program(r, c, cell_level(r, c), max_attempts);
}

double Crossbar::cell(int r, int c) const { return values_[idx(r, c)]; }

int Crossbar::cell_level(int r, int c) const { return levels_[idx(r, c)]; }

void Crossbar::mvm(std::span<const double> in, std::span<double> out,
                   Rng& rng) const {
  SEI_CHECK(in.size() == static_cast<std::size_t>(rows_));
  SEI_CHECK(out.size() == static_cast<std::size_t>(cols_));
  for (auto& o : out) o = 0.0;
  for (int r = 0; r < rows_; ++r) {
    const double x = in[static_cast<std::size_t>(r)];
    if (x == 0.0) continue;
    const double* v =
        values_.data() +
        static_cast<std::size_t>(row_map_[static_cast<std::size_t>(r)]) *
            cols_;
    for (int c = 0; c < cols_; ++c) out[static_cast<std::size_t>(c)] += x * v[c];
  }
  for (auto& o : out) o = device_.read(o, rng);
}

void Crossbar::mvm_selected(std::span<const std::uint8_t> select,
                            std::span<const double> port_coeff,
                            std::span<double> out, Rng& rng) const {
  SEI_CHECK(select.size() == static_cast<std::size_t>(rows_));
  SEI_CHECK(port_coeff.size() == static_cast<std::size_t>(rows_));
  SEI_CHECK(out.size() == static_cast<std::size_t>(cols_));
  for (auto& o : out) o = 0.0;
  for (int r = 0; r < rows_; ++r) {
    if (!select[static_cast<std::size_t>(r)]) continue;
    const double k = port_coeff[static_cast<std::size_t>(r)];
    const double* v =
        values_.data() +
        static_cast<std::size_t>(row_map_[static_cast<std::size_t>(r)]) *
            cols_;
    for (int c = 0; c < cols_; ++c) out[static_cast<std::size_t>(c)] += k * v[c];
  }
  for (auto& o : out) o = device_.read(o, rng);
}

double Crossbar::misprogrammed_fraction() const {
  std::size_t bad = 0;
  const std::size_t n = static_cast<std::size_t>(rows_) * cols_;
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) {
      const std::size_t i = idx(r, c);
      if (std::fabs(values_[i] - static_cast<double>(levels_[i])) > 0.5)
        ++bad;
    }
  return static_cast<double>(bad) / static_cast<double>(n);
}

void Crossbar::age(double dt_s) {
  SEI_CHECK_MSG(dt_s >= 0, "cannot age backwards");
  if (dt_s == 0.0) return;
  const double from = age_s_;
  age_s_ += dt_s;
  if (!device_.config().drift_enabled()) return;
  // Incremental decay telescopes to the full power law for cells programmed
  // at age 0; cells re-programmed later decay on the array-age clock (an old
  // array drifts slowly), which keeps aging memoryless per call.
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (stuck_[i] >= 0 || values_[i] == 0.0) continue;
    values_[i] *= device_.drift_multiplier(drift_nu_[i], from, age_s_);
  }
}

bool Crossbar::remap_row(int r) {
  SEI_CHECK(r >= 0 && r < rows_);
  if (spare_used_ >= spare_rows_) return false;
  const std::size_t old_base =
      static_cast<std::size_t>(row_map_[static_cast<std::size_t>(r)]) * cols_;
  const int new_pr = rows_ + spare_used_++;
  row_map_[static_cast<std::size_t>(r)] = new_pr;
  for (int c = 0; c < cols_; ++c)
    program_physical(new_pr, c, levels_[old_base + c], 0);
  return true;
}

void Crossbar::force_stuck(int r, int c, int level) {
  SEI_CHECK_MSG(level >= 0 && level <= device_.config().max_level(),
                "stuck level out of range");
  const std::size_t i = idx(r, c);
  stuck_[i] = static_cast<std::int16_t>(level);
  values_[i] =
      static_cast<double>(level) *
      ir_factor(row_map_[static_cast<std::size_t>(r)], c);
}

}  // namespace sei::rram
