#include "rram/crossbar.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sei::rram {

Crossbar::Crossbar(int rows, int cols, const DeviceConfig& device, Rng& rng)
    : rows_(rows),
      cols_(cols),
      device_(device),
      rng_(rng.split()),
      values_(static_cast<std::size_t>(rows) * cols, 0.0),
      levels_(static_cast<std::size_t>(rows) * cols, 0),
      stuck_(static_cast<std::size_t>(rows) * cols, -1) {
  SEI_CHECK_MSG(rows >= 1 && cols >= 1, "crossbar must be non-empty");
  for (auto& s : stuck_) {
    int frozen = 0;
    if (device_.roll_stuck(rng_, frozen)) {
      s = static_cast<std::int16_t>(frozen);
    }
  }
  for (std::size_t i = 0; i < stuck_.size(); ++i) {
    if (stuck_[i] >= 0) {
      levels_[i] = stuck_[i];
      values_[i] = static_cast<double>(stuck_[i]) *
                   ir_factor(static_cast<int>(i) / cols_,
                             static_cast<int>(i) % cols_);
    }
  }
}

double Crossbar::ir_factor(int r, int c) const {
  const double alpha = device_.config().ir_drop_alpha;
  if (alpha <= 0.0) return 1.0;
  constexpr double kReferenceLength = 512.0;  // cells of wire at full loss
  const double dist = 0.5 * (r + c) / kReferenceLength;
  return std::max(0.0, 1.0 - alpha * dist);
}

void Crossbar::program(int r, int c, int level) {
  const std::size_t i = idx(r, c);
  if (stuck_[i] >= 0) return;  // write-verify cannot move a stuck cell
  levels_[i] = static_cast<std::int16_t>(level);
  int attempts = 0;
  values_[i] = device_.program(level, rng_, &attempts) * ir_factor(r, c);
  program_attempts_ += attempts;
}

double Crossbar::cell(int r, int c) const { return values_[idx(r, c)]; }

int Crossbar::cell_level(int r, int c) const { return levels_[idx(r, c)]; }

void Crossbar::mvm(std::span<const double> in, std::span<double> out,
                   Rng& rng) const {
  SEI_CHECK(in.size() == static_cast<std::size_t>(rows_));
  SEI_CHECK(out.size() == static_cast<std::size_t>(cols_));
  for (auto& o : out) o = 0.0;
  const double* v = values_.data();
  for (int r = 0; r < rows_; ++r, v += cols_) {
    const double x = in[static_cast<std::size_t>(r)];
    if (x == 0.0) continue;
    for (int c = 0; c < cols_; ++c) out[static_cast<std::size_t>(c)] += x * v[c];
  }
  for (auto& o : out) o = device_.read(o, rng);
}

void Crossbar::mvm_selected(std::span<const std::uint8_t> select,
                            std::span<const double> port_coeff,
                            std::span<double> out, Rng& rng) const {
  SEI_CHECK(select.size() == static_cast<std::size_t>(rows_));
  SEI_CHECK(port_coeff.size() == static_cast<std::size_t>(rows_));
  SEI_CHECK(out.size() == static_cast<std::size_t>(cols_));
  for (auto& o : out) o = 0.0;
  const double* v = values_.data();
  for (int r = 0; r < rows_; ++r, v += cols_) {
    if (!select[static_cast<std::size_t>(r)]) continue;
    const double k = port_coeff[static_cast<std::size_t>(r)];
    for (int c = 0; c < cols_; ++c) out[static_cast<std::size_t>(c)] += k * v[c];
  }
  for (auto& o : out) o = device_.read(o, rng);
}

double Crossbar::misprogrammed_fraction() const {
  std::size_t bad = 0;
  for (std::size_t i = 0; i < values_.size(); ++i)
    if (std::fabs(values_[i] - static_cast<double>(levels_[i])) > 0.5) ++bad;
  return static_cast<double>(bad) / static_cast<double>(values_.size());
}

}  // namespace sei::rram
