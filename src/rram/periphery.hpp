// Peripheral-circuit component catalog: per-instance area and per-operation
// energy for everything around the crossbars.
//
// The authors took these numbers from [17] (limited-precision analog blocks),
// [18] (high-speed DAC), [19] (interface co-optimization) and [20] (memory /
// digital energy), none of which publish a complete machine-readable
// spreadsheet. The values below are the same order of magnitude as those
// sources and are *calibrated* so that the baseline design reproduces the
// paper's headline shares (ADC+DAC > 98% of area and power, Network 1 total
// ≈ 74 µJ/picture) — see DESIGN.md §3/§7. Every experiment varies only
// *structures*, never these constants, so all relative results are
// insensitive to the exact calibration.
#pragma once

namespace sei::rram {

/// One catalog entry: silicon area per instance and energy per operation.
struct Component {
  const char* name = "";
  double area_um2 = 0.0;
  double energy_pj = 0.0;
};

struct PeripheryCatalog {
  // 8-bit successive-approximation/pipeline ADC running at crossbar read
  // rate. Dominant cost of the baseline design (Fig. 1).
  Component adc8{"adc-8b", 3500.0, 1400.0};

  // 8-bit current-steering DAC + input line driver.
  Component dac8{"dac-8b", 1000.0, 350.0};

  // Latched sense amplifier: the 1-bit "ADC" of the SEI structure. The area
  // includes the programmable threshold-reference generation (which also
  // realizes the neuron non-linearity and the dynamic-threshold compare).
  Component sense_amp{"sense-amp", 900.0, 2.0};

  // 1-bit input driver: transmission gate pair + line charge (SEI inputs).
  Component driver_1bit{"driver-1b", 1.5, 4.0};

  // Row/column decoder, write-verify and control logic, per crossbar
  // instance; energy charged per crossbar activation.
  Component decoder{"decoder+ctrl", 6000.0, 20.0};

  // 8-bit digital adder/subtractor/shifter slice used by the ADC-based
  // merging path; energy per add.
  Component digital_add8{"digital-add-8b", 50.0, 0.4};

  // Inter-layer register buffer, per bit (area) / per access (energy).
  Component buffer_bit{"buffer-bit", 0.2, 0.05};

  // RRAM cell: 4F² at F = 45 nm; energy per cell-activation during an
  // analog MVM (charging + static current through the cell).
  Component rram_cell{"rram-cell", 0.0081, 0.12};

  // Winner-take-all readout of the final 10-way classifier column currents
  // (used once per picture in SEI mode instead of a full ADC bank).
  Component wta_readout{"wta-readout", 400.0, 10.0};

  // One write-verify programming attempt on one cell (SET/RESET pulse +
  // verify read). Multilevel tuning needs several attempts per cell [13];
  // see write_verify_attempts. One-time cost per chip, not per picture.
  Component cell_write{"cell-write-verify", 0.0, 150.0};
  double write_verify_attempts = 4.0;

  /// ADC energy/area scale steeply with resolution; anchor at 8 bits and
  /// halve per bit removed (conservative for SAR-class converters).
  double adc_energy_pj(int bits) const;
  double adc_area_um2(int bits) const;

  /// DACs scale similarly.
  double dac_energy_pj(int bits) const;
  double dac_area_um2(int bits) const;
};

/// The calibrated default catalog shared by all experiments.
const PeripheryCatalog& default_periphery();

}  // namespace sei::rram
