// Behavioural RRAM device model.
//
// Substitutes for the paper's Verilog-A 4-bit device [21] + SPICE crossbar:
// what the accuracy experiments need is the *functional* analog behaviour —
// discrete programmable conductance levels, programming inaccuracy, read
// noise, and stuck cells — not transistor-level waveforms (DESIGN.md §3).
//
// A device stores an integer level v ∈ [0, 2^bits − 1]. Its conductance is
//   g(v) = g_min + v/(2^bits − 1) · (g_max − g_min).
// Computation uses the *differential* value (g − g_min), expressed in level
// units, because the common g_min pedestal of all active rows is cancelled
// by the reference column of the sense amplifier.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace sei::rram {

struct DeviceConfig {
  int bits = 4;                    // 4–6 bits is the state of the art [13]
  double g_min_s = 1.0e-6;         // off conductance, siemens
  double g_max_s = 1.0e-4;         // on conductance, siemens
  double program_sigma = 0.0;      // lognormal sigma of one programming pulse
  double read_noise_sigma = 0.0;   // relative gaussian noise per read
  double stuck_fraction = 0.0;     // fraction of cells stuck at a random level

  // Write-verify tuning loop (Alibart et al. [13]: "high precision tuning
  // of state ... by adaptable variation-tolerant algorithm"): re-program
  // until the read-back value is within program_tolerance levels of the
  // target, up to max_program_attempts pulses. The default of 1 attempt
  // models plain open-loop programming (a single lognormal sample).
  int max_program_attempts = 1;
  double program_tolerance = 0.35;  // accept window, in level units

  // First-order IR-drop: the wire resistance that limits real arrays to
  // ~512×512 [15]. A cell's contribution is attenuated by
  //   1 − ir_drop_alpha · (r + c) / (2 · 512)
  // i.e. ir_drop_alpha is the fractional signal loss at 512 cells of wire
  // (the far corner of a maximum-size array), so larger arrays suffer
  // proportionally more. This static approximation ignores the
  // input-pattern dependence of the true drop but captures the systematic
  // far-corner signal loss.
  double ir_drop_alpha = 0.0;

  // Time-dependent conductance drift (retention loss). A cell programmed at
  // time 0 retains, after t seconds, the fraction
  //   m(t) = ((t + t0) / t0)^(−ν_cell),   ν_cell = max(0, N(ν, σ_ν))
  // of its differential value — the standard power-law retention model for
  // filamentary RRAM, with a per-cell exponent spread. drift_t_s is the
  // array age the mapping applies after programming (Crossbar::age allows
  // further in-place aging); cells re-programmed by a repair start fresh.
  double drift_nu = 0.0;        // mean drift exponent (0 = no drift)
  double drift_nu_sigma = 0.0;  // per-cell exponent spread
  double drift_t0_s = 1.0;      // reference time of the power law
  double drift_t_s = 0.0;       // array age applied at mapping time

  bool drift_enabled() const { return drift_nu > 0.0 || drift_nu_sigma > 0.0; }

  int levels() const { return 1 << bits; }
  int max_level() const { return levels() - 1; }
};

class DeviceModel {
 public:
  explicit DeviceModel(const DeviceConfig& cfg);

  const DeviceConfig& config() const { return cfg_; }

  /// Ideal conductance of a level, in siemens.
  double conductance(int level) const;

  /// Differential analog value actually stored after programming to
  /// `level`: each pulse samples level × lognormal(σ_program); with
  /// max_program_attempts > 1 the write-verify loop keeps pulsing until
  /// the value lands within program_tolerance of the target (or gives up
  /// and keeps the closest attempt). Level 0 programs exactly.
  /// `attempts_out` (optional) receives the pulse count; `max_attempts`
  /// overrides config().max_program_attempts when > 0 (repair-engine
  /// retry escalation).
  double program(int level, Rng& rng, int* attempts_out = nullptr,
                 int max_attempts = 0) const;

  /// Whether a freshly considered cell is stuck (fault injection); if so,
  /// `stuck_level` receives the level it is frozen at.
  bool roll_stuck(Rng& rng, int& stuck_level) const;

  /// Per-cell drift exponent ν_cell = max(0, N(drift_nu, drift_nu_sigma)).
  double roll_drift_exponent(Rng& rng) const;

  /// Retention factor for aging a cell from `from_s` to `to_s` seconds
  /// after its last programming: ((to + t0) / (from + t0))^(−nu).
  double drift_multiplier(double nu, double from_s, double to_s) const;

  /// Applies per-read noise to an analog column current.
  double read(double current, Rng& rng) const;

 private:
  DeviceConfig cfg_;
};

}  // namespace sei::rram
