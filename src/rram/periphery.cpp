#include "rram/periphery.hpp"

#include <cmath>

#include "common/check.hpp"

namespace sei::rram {

namespace {
double pow2_scale(double anchor, int bits, int anchor_bits) {
  SEI_CHECK_MSG(bits >= 1 && bits <= 16, "converter bits out of range");
  return anchor * std::exp2(static_cast<double>(bits - anchor_bits));
}
}  // namespace

double PeripheryCatalog::adc_energy_pj(int bits) const {
  return pow2_scale(adc8.energy_pj, bits, 8);
}

double PeripheryCatalog::adc_area_um2(int bits) const {
  return pow2_scale(adc8.area_um2, bits, 8);
}

double PeripheryCatalog::dac_energy_pj(int bits) const {
  return pow2_scale(dac8.energy_pj, bits, 8);
}

double PeripheryCatalog::dac_area_um2(int bits) const {
  return pow2_scale(dac8.area_um2, bits, 8);
}

const PeripheryCatalog& default_periphery() {
  static const PeripheryCatalog catalog{};
  return catalog;
}

}  // namespace sei::rram
