// RRAM crossbar: a rows×cols array of devices evaluated in the analog
// domain. Values are kept in "level units" (the differential conductance of
// a cell divided by one level step) so that an ideal crossbar computes the
// exact integer matrix–vector product.
//
// Two evaluation modes mirror Fig. 2/3 of the paper:
//  * mvm()          — voltages on the input lines (traditional DAC driving);
//  * mvm_selected() — 1-bit activations open the row transmission gates and
//                     the freed input line carries a per-row port
//                     coefficient (the SEI structure: ±1, ±2^4, or the
//                     dynamic-threshold slope k).
#pragma once

#include <span>
#include <vector>

#include "rram/device.hpp"

namespace sei::rram {

struct CrossbarLimits {
  int max_rows = 512;  // state-of-the-art array size [15]
  int max_cols = 512;
};

class Crossbar {
 public:
  /// Creates an array of off cells; devices with stuck faults are rolled
  /// per-cell at construction time.
  Crossbar(int rows, int cols, const DeviceConfig& device, Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  const DeviceModel& device() const { return device_; }

  /// Write-verify programming of one cell to an integer level.
  /// Stuck cells silently keep their frozen value (as real arrays do —
  /// write-verify gives up after max attempts).
  void program(int r, int c, int level);

  /// Effective analog value of a cell in level units (post-variation).
  double cell(int r, int c) const;

  /// Ideal target level the cell was last programmed to.
  int cell_level(int r, int c) const;

  /// Analog MVM: out[c] = Σ_r in[r] · cell(r, c), plus read noise.
  void mvm(std::span<const double> in, std::span<double> out, Rng& rng) const;

  /// SEI evaluation: rows with select[r] == 1 contribute
  /// port_coeff[r] · cell(r, c).
  void mvm_selected(std::span<const std::uint8_t> select,
                    std::span<const double> port_coeff,
                    std::span<double> out, Rng& rng) const;

  /// Fraction of cells whose effective value deviates from their target
  /// level by more than half a level (programming-quality metric;
  /// IR-drop attenuation counts as deviation).
  double misprogrammed_fraction() const;

  /// IR-drop attenuation factor applied to a cell's contribution.
  double ir_factor(int r, int c) const;

  /// Total programming pulses issued (write-verify accounting).
  long long total_program_attempts() const { return program_attempts_; }

 private:
  std::size_t idx(int r, int c) const {
    SEI_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return static_cast<std::size_t>(r) * cols_ + c;
  }

  int rows_;
  int cols_;
  DeviceModel device_;
  mutable Rng rng_;                 // programming + read noise stream
  std::vector<double> values_;      // effective analog values (level units)
  std::vector<std::int16_t> levels_;  // last programmed target levels
  std::vector<std::int16_t> stuck_;   // -1 = healthy, else frozen level
  long long program_attempts_ = 0;
};

}  // namespace sei::rram
