// RRAM crossbar: a rows×cols array of devices evaluated in the analog
// domain. Values are kept in "level units" (the differential conductance of
// a cell divided by one level step) so that an ideal crossbar computes the
// exact integer matrix–vector product.
//
// Two evaluation modes mirror Fig. 2/3 of the paper:
//  * mvm()          — voltages on the input lines (traditional DAC driving);
//  * mvm_selected() — 1-bit activations open the row transmission gates and
//                     the freed input line carries a per-row port
//                     coefficient (the SEI structure: ±1, ±2^4, or the
//                     dynamic-threshold slope k).
//
// Reliability support (docs/reliability.md): the array may reserve spare
// physical rows at the bottom. Logical rows address physical rows through a
// remap table, so a row whose cells are stuck can be steered onto a spare
// (Crossbar::remap_row) by the repair engine. age() applies the power-law
// conductance-drift model in place, and force_stuck() injects deterministic
// faults for campaigns and tests.
#pragma once

#include <span>
#include <vector>

#include "rram/device.hpp"

namespace sei::rram {

struct CrossbarLimits {
  int max_rows = 512;  // state-of-the-art array size [15]
  int max_cols = 512;
};

class Crossbar {
 public:
  /// Creates an array of off cells; devices with stuck faults are rolled
  /// per-cell at construction time. `spare_rows` extra physical rows are
  /// reserved below the `rows` data rows for fault repair; they are not
  /// addressable until remap_row() steers a logical row onto one.
  Crossbar(int rows, int cols, const DeviceConfig& device, Rng& rng,
           int spare_rows = 0);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int physical_rows() const { return rows_ + spare_rows_; }
  int spare_rows_total() const { return spare_rows_; }
  int spare_rows_used() const { return spare_used_; }
  /// Physical row a logical row currently maps to.
  int physical_row(int r) const;
  const DeviceModel& device() const { return device_; }

  /// Write-verify programming of one cell to an integer level. The intended
  /// level is always recorded (the programming controller knows what it
  /// asked for), but stuck cells silently keep their frozen value — as real
  /// arrays do when write-verify gives up after max attempts.
  /// `max_attempts` > 0 overrides the device's write-verify cap (repair
  /// retry escalation).
  void program(int r, int c, int level, int max_attempts = 0);

  /// Re-issues programming of a cell to its recorded intended level with an
  /// escalated write-verify cap. No-op on the stored intent.
  void reprogram(int r, int c, int max_attempts);

  /// Effective analog value of a cell in level units (post-variation).
  double cell(int r, int c) const;

  /// Ideal target level the cell was last programmed to (the intent, even
  /// if the cell is stuck elsewhere).
  int cell_level(int r, int c) const;

  /// Analog MVM: out[c] = Σ_r in[r] · cell(r, c), plus read noise.
  void mvm(std::span<const double> in, std::span<double> out, Rng& rng) const;

  /// SEI evaluation: rows with select[r] == 1 contribute
  /// port_coeff[r] · cell(r, c).
  void mvm_selected(std::span<const std::uint8_t> select,
                    std::span<const double> port_coeff,
                    std::span<double> out, Rng& rng) const;

  /// Fraction of data cells whose effective value deviates from their
  /// intended level by more than half a level (programming-quality metric;
  /// stuck-off-target cells and IR-drop attenuation count as deviation).
  double misprogrammed_fraction() const;

  /// IR-drop attenuation factor applied to a *physical* cell's contribution.
  double ir_factor(int r, int c) const;

  /// Advances the array age by `dt_s` seconds: every healthy programmed
  /// cell decays by its per-cell power-law drift factor. Stuck cells stay
  /// frozen. Cells programmed afterwards start fresh at the new age.
  void age(double dt_s);

  /// Current array age in seconds (sum of age() calls).
  double age_seconds() const { return age_s_; }

  /// Steers logical row `r` onto the next unused spare physical row and
  /// re-programs the row's intended levels there. Returns false (and leaves
  /// the mapping unchanged) when no spares remain. May be called again for
  /// the same row if the spare itself turns out faulty.
  bool remap_row(int r);

  /// Fault injection for campaigns/tests: freezes the cell at `level`
  /// regardless of past or future programming.
  void force_stuck(int r, int c, int level);

  /// Total programming pulses issued (write-verify accounting).
  long long total_program_attempts() const { return program_attempts_; }

 private:
  std::size_t idx(int r, int c) const {
    SEI_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return static_cast<std::size_t>(row_map_[static_cast<std::size_t>(r)]) *
               cols_ +
           c;
  }
  void program_physical(int pr, int c, int level, int max_attempts);

  int rows_;        // data rows (the logical address space)
  int cols_;
  int spare_rows_;  // reserved repair rows below the data rows
  int spare_used_ = 0;
  DeviceModel device_;
  // Separate deterministic streams so fault injection (stuck rolls, drift
  // exponents) and programming pulses never perturb each other across
  // sweep points — read noise always comes from the caller's stream.
  Rng fault_rng_;
  Rng program_rng_;
  std::vector<int> row_map_;          // logical row → physical row
  std::vector<double> values_;        // effective analog values (level units)
  std::vector<std::int16_t> levels_;  // intended (last-programmed) levels
  std::vector<std::int16_t> stuck_;   // -1 = healthy, else frozen level
  std::vector<float> drift_nu_;       // per-cell drift exponent (if enabled)
  double age_s_ = 0.0;
  long long program_attempts_ = 0;
};

}  // namespace sei::rram
