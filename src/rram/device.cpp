#include "rram/device.hpp"

#include <cmath>

#include "common/check.hpp"

namespace sei::rram {

DeviceModel::DeviceModel(const DeviceConfig& cfg) : cfg_(cfg) {
  SEI_CHECK_MSG(cfg.bits >= 1 && cfg.bits <= 8, "device bits out of range");
  SEI_CHECK_MSG(cfg.g_max_s > cfg.g_min_s && cfg.g_min_s > 0,
                "conductance window must be positive");
  SEI_CHECK(cfg.program_sigma >= 0 && cfg.read_noise_sigma >= 0);
  SEI_CHECK(cfg.stuck_fraction >= 0 && cfg.stuck_fraction <= 1);
}

double DeviceModel::conductance(int level) const {
  SEI_CHECK_MSG(level >= 0 && level <= cfg_.max_level(),
                "level " << level << " out of range");
  return cfg_.g_min_s + (cfg_.g_max_s - cfg_.g_min_s) *
                            static_cast<double>(level) / cfg_.max_level();
}

double DeviceModel::program(int level, Rng& rng, int* attempts_out) const {
  SEI_CHECK_MSG(level >= 0 && level <= cfg_.max_level(),
                "level " << level << " out of range");
  if (attempts_out) *attempts_out = level == 0 ? 0 : 1;
  if (level == 0) return 0.0;
  const double target = static_cast<double>(level);
  double best = target * rng.lognormal_multiplier(cfg_.program_sigma);
  int attempts = 1;
  while (std::fabs(best - target) > cfg_.program_tolerance &&
         attempts < cfg_.max_program_attempts) {
    const double v = target * rng.lognormal_multiplier(cfg_.program_sigma);
    if (std::fabs(v - target) < std::fabs(best - target)) best = v;
    ++attempts;
  }
  if (attempts_out) *attempts_out = attempts;
  return best;
}

bool DeviceModel::roll_stuck(Rng& rng, int& stuck_level) const {
  if (cfg_.stuck_fraction <= 0.0 || !rng.bernoulli(cfg_.stuck_fraction))
    return false;
  // Stuck-at-off is the dominant RRAM failure mode; stuck-on happens too.
  stuck_level = rng.bernoulli(0.8) ? 0 : cfg_.max_level();
  return true;
}

double DeviceModel::read(double current, Rng& rng) const {
  if (cfg_.read_noise_sigma <= 0.0) return current;
  return current * (1.0 + cfg_.read_noise_sigma * rng.gaussian());
}

}  // namespace sei::rram
