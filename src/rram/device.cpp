#include "rram/device.hpp"

#include <cmath>

#include "common/check.hpp"

namespace sei::rram {

DeviceModel::DeviceModel(const DeviceConfig& cfg) : cfg_(cfg) {
  SEI_CHECK_MSG(cfg.bits >= 1 && cfg.bits <= 8, "device bits out of range");
  SEI_CHECK_MSG(cfg.g_max_s > cfg.g_min_s && cfg.g_min_s > 0,
                "conductance window must be positive");
  SEI_CHECK(cfg.program_sigma >= 0 && cfg.read_noise_sigma >= 0);
  SEI_CHECK(cfg.stuck_fraction >= 0 && cfg.stuck_fraction <= 1);
  SEI_CHECK_MSG(cfg.drift_nu >= 0 && cfg.drift_nu_sigma >= 0,
                "drift exponent parameters must be non-negative");
  SEI_CHECK_MSG(cfg.drift_t0_s > 0, "drift reference time must be positive");
  SEI_CHECK_MSG(cfg.drift_t_s >= 0, "array age cannot be negative");
}

double DeviceModel::conductance(int level) const {
  SEI_CHECK_MSG(level >= 0 && level <= cfg_.max_level(),
                "level " << level << " out of range");
  return cfg_.g_min_s + (cfg_.g_max_s - cfg_.g_min_s) *
                            static_cast<double>(level) / cfg_.max_level();
}

double DeviceModel::program(int level, Rng& rng, int* attempts_out,
                            int max_attempts) const {
  SEI_CHECK_MSG(level >= 0 && level <= cfg_.max_level(),
                "level " << level << " out of range");
  const int attempt_cap =
      max_attempts > 0 ? max_attempts : cfg_.max_program_attempts;
  if (attempts_out) *attempts_out = level == 0 ? 0 : 1;
  if (level == 0) return 0.0;
  const double target = static_cast<double>(level);
  double best = target * rng.lognormal_multiplier(cfg_.program_sigma);
  int attempts = 1;
  while (std::fabs(best - target) > cfg_.program_tolerance &&
         attempts < attempt_cap) {
    const double v = target * rng.lognormal_multiplier(cfg_.program_sigma);
    if (std::fabs(v - target) < std::fabs(best - target)) best = v;
    ++attempts;
  }
  if (attempts_out) *attempts_out = attempts;
  return best;
}

bool DeviceModel::roll_stuck(Rng& rng, int& stuck_level) const {
  if (cfg_.stuck_fraction <= 0.0 || !rng.bernoulli(cfg_.stuck_fraction))
    return false;
  // Stuck-at-off is the dominant RRAM failure mode; stuck-on happens too.
  stuck_level = rng.bernoulli(0.8) ? 0 : cfg_.max_level();
  return true;
}

double DeviceModel::roll_drift_exponent(Rng& rng) const {
  if (!cfg_.drift_enabled()) return 0.0;
  return std::max(0.0, rng.gaussian(cfg_.drift_nu, cfg_.drift_nu_sigma));
}

double DeviceModel::drift_multiplier(double nu, double from_s,
                                     double to_s) const {
  SEI_CHECK_MSG(to_s >= from_s && from_s >= 0, "drift time must advance");
  if (nu <= 0.0 || to_s == from_s) return 1.0;
  return std::pow((to_s + cfg_.drift_t0_s) / (from_s + cfg_.drift_t0_s), -nu);
}

double DeviceModel::read(double current, Rng& rng) const {
  if (cfg_.read_noise_sigma <= 0.0) return current;
  return current * (1.0 + cfg_.read_noise_sigma * rng.gaussian());
}

}  // namespace sei::rram
