// Rate-coded spiking neural network on the SEI structure — the extension
// the paper's conclusion proposes ("use the proposed structure to support
// other applications using 1-bit data like RRAM-based Spiking Neural
// Networks [22]").
//
// Standard ANN→SNN conversion over the Algorithm-1 re-scaled float network
// (whose stage outputs are normalized to ≤ 1, exactly the property rate
// coding needs):
//  * input pixels become Bernoulli spike trains with rate = pixel value
//    (or deterministic phase coding), i.e. 1-bit inputs per timestep —
//    directly drivable through the SEI selection gates, no DACs at all
//    (this removes even the input-layer DACs the CNN design keeps);
//  * each hidden neuron is integrate-and-fire: its membrane accumulates
//    the crossbar column current every timestep and emits a spike
//    (reset-by-subtraction) when it crosses the firing threshold;
//  * max-pooling degenerates to a per-timestep OR of spikes, the same
//    circuit as the CNN path;
//  * the classifier integrates its currents over the window and the class
//    with the largest accumulated current wins.
//
// As the time window T grows, spike rates approach the float activations
// and accuracy approaches the float network's — traded against latency and
// (linearly) spike-driven energy.
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "quant/qnet.hpp"

namespace sei::snn {

enum class InputCoding {
  kBernoulli,  // stochastic rate coding (fresh randomness per timestep)
  kPhased,     // deterministic: spike when accumulated value crosses 1
};

struct SnnConfig {
  int timesteps = 32;
  float firing_threshold = 1.0f;  // membrane threshold of hidden IF neurons
  InputCoding coding = InputCoding::kPhased;
  std::uint64_t seed = 7;
};

/// Per-image spiking statistics (for the energy discussion).
struct SpikeStats {
  long long input_spikes = 0;
  long long hidden_spikes = 0;
  long long timesteps = 0;
};

class SnnNetwork {
 public:
  /// Builds from the Algorithm-1 quantized network: uses its re-scaled
  /// float weights; the per-stage 1-bit thresholds are replaced by the IF
  /// dynamics. The QNetwork must outlive the SnnNetwork.
  SnnNetwork(const quant::QNetwork& qnet, const SnnConfig& cfg);

  /// Classifies one image over cfg.timesteps; optionally returns stats.
  int predict(std::span<const float> image, SpikeStats* stats = nullptr) const;

  double error_rate(const data::Dataset& d, int max_images = -1) const;

  const SnnConfig& config() const { return cfg_; }

 private:
  const quant::QNetwork* qnet_;
  SnnConfig cfg_;
  mutable Rng rng_;
};

}  // namespace sei::snn
