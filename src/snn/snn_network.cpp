#include "snn/snn_network.hpp"

#include <algorithm>

namespace sei::snn {

namespace {

/// Per-timestep 2×2 OR-pool of a spike map.
void or_pool_spikes(const quant::BitMap& in, int h, int w, int c,
                    quant::BitMap& out) {
  const int ph = h / 2, pw = w / 2;
  out.assign(static_cast<std::size_t>(ph) * pw * c, 0);
  for (int y = 0; y < ph; ++y)
    for (int x = 0; x < pw; ++x) {
      std::uint8_t* opx =
          out.data() + (static_cast<std::size_t>(y) * pw + x) * c;
      for (int dy = 0; dy < 2; ++dy) {
        const std::uint8_t* ipx =
            in.data() +
            (static_cast<std::size_t>(2 * y + dy) * w + 2 * x) * c;
        for (int ch = 0; ch < c; ++ch)
          opx[ch] |= static_cast<std::uint8_t>(ipx[ch] | ipx[c + ch]);
      }
    }
}

}  // namespace

SnnNetwork::SnnNetwork(const quant::QNetwork& qnet, const SnnConfig& cfg)
    : qnet_(&qnet), cfg_(cfg), rng_(cfg.seed) {
  SEI_CHECK_MSG(cfg.timesteps >= 1, "need at least one timestep");
  SEI_CHECK_MSG(cfg.firing_threshold > 0, "firing threshold must be positive");
  SEI_CHECK(!qnet.layers.empty());
}

int SnnNetwork::predict(std::span<const float> image,
                        SpikeStats* stats) const {
  const auto& layers = qnet_->layers;
  const int stages = static_cast<int>(layers.size());
  const float thresh = cfg_.firing_threshold;

  // Membranes of the hidden stages (pre-pool positions × channels) and the
  // classifier's integrating accumulator.
  std::vector<std::vector<float>> membrane(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    const auto& g = layers[static_cast<std::size_t>(s)].geom;
    membrane[static_cast<std::size_t>(s)].assign(
        static_cast<std::size_t>(g.out_h) * g.out_w * g.cols, 0.0f);
  }

  // Phase accumulators for deterministic input coding.
  std::vector<float> phase(image.size(), 0.0f);

  SpikeStats local;
  quant::BitMap in_spikes(image.size());
  quant::BitMap spikes, pooled;
  std::vector<float> sums;

  for (int t = 0; t < cfg_.timesteps; ++t) {
    // Input spike generation (1-bit data: the SEI selection signals).
    for (std::size_t i = 0; i < image.size(); ++i) {
      const float p = std::clamp(image[i], 0.0f, 1.0f);
      bool spike = false;
      if (cfg_.coding == InputCoding::kBernoulli) {
        spike = rng_.bernoulli(p);
      } else {
        phase[i] += p;
        if (phase[i] >= 1.0f) {
          phase[i] -= 1.0f;
          spike = true;
        }
      }
      in_spikes[i] = spike ? 1 : 0;
      local.input_spikes += spike;
    }

    const quant::BitMap* input = &in_spikes;
    for (int s = 0; s < stages; ++s) {
      const quant::QLayer& l = layers[static_cast<std::size_t>(s)];
      quant::eval_stage_binary_input(l, *input, sums);
      auto& mem = membrane[static_cast<std::size_t>(s)];
      SEI_CHECK(mem.size() == sums.size());

      if (!l.binarize) {
        // Classifier: pure integration; decision at the end of the window.
        for (std::size_t i = 0; i < mem.size(); ++i) mem[i] += sums[i];
        break;
      }

      // Integrate-and-fire with reset-by-subtraction.
      spikes.assign(mem.size(), 0);
      for (std::size_t i = 0; i < mem.size(); ++i) {
        mem[i] += sums[i];
        if (mem[i] > thresh) {
          mem[i] -= thresh;
          spikes[i] = 1;
          ++local.hidden_spikes;
        } else if (mem[i] < -thresh) {
          mem[i] = -thresh;  // bounded inhibition (no negative spikes)
        }
      }

      // Output spikes (pooled if the stage pools) feed the next stage via
      // the stable `pooled` buffer.
      const auto& g = l.geom;
      if (g.pool_after)
        or_pool_spikes(spikes, g.out_h, g.out_w, g.cols, pooled);
      else
        pooled = spikes;
      input = &pooled;
    }
  }

  local.timesteps = cfg_.timesteps;
  if (stats) *stats = local;

  const auto& out = membrane.back();
  return static_cast<int>(
      std::max_element(out.begin(), out.end()) - out.begin());
}

double SnnNetwork::error_rate(const data::Dataset& d, int max_images) const {
  const int n = max_images < 0 ? d.size() : std::min(max_images, d.size());
  SEI_CHECK(n > 0);
  const std::size_t per_image =
      d.images.numel() / static_cast<std::size_t>(d.size());
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    const std::span<const float> img{
        d.images.data() + static_cast<std::size_t>(i) * per_image, per_image};
    if (predict(img) == d.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return 100.0 * (1.0 - static_cast<double>(correct) / n);
}

}  // namespace sei::snn
