// Row partitioning for matrices too large for one crossbar (Section 4.3).
//
// Splitting happens at *logical* row granularity: one logical row is one
// input signal whose weight occupies `cells_per_weight` physical crossbar
// rows under the SEI mapping, so a crossbar with `max_physical_rows` rows
// holds ⌊max_physical_rows / cells_per_weight⌋ logical rows. (Example from
// the paper: a 300×64 signed-8-bit matrix on 4-bit devices expands ×4 to
// 1200 physical rows and splits into three 400×64 crossbars at the 512
// limit.)
#pragma once

#include <vector>

#include "common/check.hpp"

namespace sei::split {

/// A partition assigns every logical row index to exactly one block.
struct Partition {
  std::vector<std::vector<int>> blocks;  // logical row indices per block

  int block_count() const { return static_cast<int>(blocks.size()); }
  int total_rows() const;

  /// Validates that blocks form a permutation of 0..n-1.
  void check_valid(int n_rows) const;
};

/// Number of blocks needed for `n_rows` logical rows given the physical
/// crossbar limit. `spare_row_fraction` > 0 reserves that fraction of each
/// block's data rows as spare physical rows (fault repair, see
/// docs/reliability.md), shrinking the per-crossbar data capacity so data
/// plus spares still fit in the physical limit.
int blocks_needed(int n_rows, int max_physical_rows, int cells_per_weight,
                  double spare_row_fraction = 0.0);

/// Maximum logical rows per crossbar (after spare reservation).
int logical_capacity(int max_physical_rows, int cells_per_weight,
                     double spare_row_fraction = 0.0);

/// Spare physical rows reserved next to `data_physical_rows` data rows at
/// the given fraction (ceiling; 0 when the fraction is 0).
int spare_rows_for(int data_physical_rows, double spare_row_fraction);

/// Splits `order` (a permutation of 0..n-1) into `k` nearly equal
/// contiguous chunks — block sizes differ by at most one.
Partition partition_from_order(const std::vector<int>& order, int k);

/// Identity order 0..n-1.
std::vector<int> natural_order(int n);

}  // namespace sei::split
