#include "split/homogenize.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace sei::split {

namespace {

/// Column sums of one block.
std::vector<double> block_sum(const nn::Tensor& w,
                              const std::vector<int>& rows) {
  const int cols = w.dim(1);
  std::vector<double> sum(static_cast<std::size_t>(cols), 0.0);
  for (int r : rows) {
    const float* row = w.data() + static_cast<std::size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) sum[static_cast<std::size_t>(c)] += row[c];
  }
  return sum;
}

double mean_vec_distance(const std::vector<double>& sum_a, std::size_t na,
                         const std::vector<double>& sum_b, std::size_t nb) {
  double d2 = 0.0;
  for (std::size_t c = 0; c < sum_a.size(); ++c) {
    const double diff = sum_a[c] / static_cast<double>(na) -
                        sum_b[c] / static_cast<double>(nb);
    d2 += diff * diff;
  }
  return std::sqrt(d2);
}

}  // namespace

double partition_distance(const nn::Tensor& weight, const Partition& p) {
  SEI_CHECK(weight.ndim() == 2);
  const int k = p.block_count();
  std::vector<std::vector<double>> sums;
  sums.reserve(static_cast<std::size_t>(k));
  for (const auto& b : p.blocks) sums.push_back(block_sum(weight, b));
  double dist = 0.0;
  for (int i = 0; i < k; ++i)
    for (int j = i + 1; j < k; ++j)
      dist += mean_vec_distance(sums[static_cast<std::size_t>(i)],
                                p.blocks[static_cast<std::size_t>(i)].size(),
                                sums[static_cast<std::size_t>(j)],
                                p.blocks[static_cast<std::size_t>(j)].size());
  return dist;
}

HomogenizeResult homogenize_rows(const nn::Tensor& weight, int k_blocks,
                                 const HomogenizeConfig& cfg) {
  SEI_CHECK(weight.ndim() == 2);
  const int n = weight.dim(0);
  const int cols = weight.dim(1);
  SEI_CHECK(k_blocks >= 1 && k_blocks <= n);

  HomogenizeResult res;
  res.order = natural_order(n);
  if (k_blocks == 1) return res;  // nothing to balance

  Partition p = partition_from_order(res.order, k_blocks);

  // State: per-block column sums and the pairwise distance matrix.
  std::vector<std::vector<double>> sums;
  for (const auto& b : p.blocks) sums.push_back(block_sum(weight, b));
  const auto bsize = [&](int b) {
    return p.blocks[static_cast<std::size_t>(b)].size();
  };
  std::vector<std::vector<double>> pair_dist(
      static_cast<std::size_t>(k_blocks),
      std::vector<double>(static_cast<std::size_t>(k_blocks), 0.0));
  double total = 0.0;
  for (int i = 0; i < k_blocks; ++i)
    for (int j = i + 1; j < k_blocks; ++j) {
      const double d =
          mean_vec_distance(sums[static_cast<std::size_t>(i)], bsize(i),
                            sums[static_cast<std::size_t>(j)], bsize(j));
      pair_dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = d;
      pair_dist[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = d;
      total += d;
    }
  res.initial_distance = total;

  Rng rng(cfg.seed);
  std::vector<double> new_sum_a(static_cast<std::size_t>(cols));
  std::vector<double> new_sum_b(static_cast<std::size_t>(cols));

  for (int it = 0; it < cfg.iterations; ++it) {
    // Pick two distinct blocks and one row position in each.
    const int bi = static_cast<int>(rng.below(static_cast<std::uint64_t>(k_blocks)));
    int bj = static_cast<int>(rng.below(static_cast<std::uint64_t>(k_blocks - 1)));
    if (bj >= bi) ++bj;
    auto& rows_i = p.blocks[static_cast<std::size_t>(bi)];
    auto& rows_j = p.blocks[static_cast<std::size_t>(bj)];
    const std::size_t pi = rng.below(rows_i.size());
    const std::size_t pj = rng.below(rows_j.size());
    const int ri = rows_i[pi], rj = rows_j[pj];

    // Candidate sums after swapping rows ri <-> rj.
    const float* wri = weight.data() + static_cast<std::size_t>(ri) * cols;
    const float* wrj = weight.data() + static_cast<std::size_t>(rj) * cols;
    const auto& sa = sums[static_cast<std::size_t>(bi)];
    const auto& sb = sums[static_cast<std::size_t>(bj)];
    for (int c = 0; c < cols; ++c) {
      const double delta = static_cast<double>(wrj[c]) - wri[c];
      new_sum_a[static_cast<std::size_t>(c)] = sa[static_cast<std::size_t>(c)] + delta;
      new_sum_b[static_cast<std::size_t>(c)] = sb[static_cast<std::size_t>(c)] - delta;
    }

    // Distance delta: only pairs touching bi or bj change.
    double delta_dist = 0.0;
    std::vector<double> new_di(static_cast<std::size_t>(k_blocks), 0.0);
    std::vector<double> new_dj(static_cast<std::size_t>(k_blocks), 0.0);
    for (int b = 0; b < k_blocks; ++b) {
      if (b != bi && b != bj) {
        const auto& sb_other = sums[static_cast<std::size_t>(b)];
        new_di[static_cast<std::size_t>(b)] =
            mean_vec_distance(new_sum_a, bsize(bi), sb_other, bsize(b));
        new_dj[static_cast<std::size_t>(b)] =
            mean_vec_distance(new_sum_b, bsize(bj), sb_other, bsize(b));
        delta_dist +=
            new_di[static_cast<std::size_t>(b)] -
            pair_dist[static_cast<std::size_t>(bi)][static_cast<std::size_t>(b)];
        delta_dist +=
            new_dj[static_cast<std::size_t>(b)] -
            pair_dist[static_cast<std::size_t>(bj)][static_cast<std::size_t>(b)];
      }
    }
    const double d_ij = mean_vec_distance(new_sum_a, bsize(bi), new_sum_b, bsize(bj));
    delta_dist +=
        d_ij -
        pair_dist[static_cast<std::size_t>(bi)][static_cast<std::size_t>(bj)];

    if (delta_dist < -1e-15) {
      // Commit the swap.
      std::swap(rows_i[pi], rows_j[pj]);
      sums[static_cast<std::size_t>(bi)] = new_sum_a;
      sums[static_cast<std::size_t>(bj)] = new_sum_b;
      for (int b = 0; b < k_blocks; ++b) {
        if (b == bi || b == bj) continue;
        pair_dist[static_cast<std::size_t>(bi)][static_cast<std::size_t>(b)] =
            new_di[static_cast<std::size_t>(b)];
        pair_dist[static_cast<std::size_t>(b)][static_cast<std::size_t>(bi)] =
            new_di[static_cast<std::size_t>(b)];
        pair_dist[static_cast<std::size_t>(bj)][static_cast<std::size_t>(b)] =
            new_dj[static_cast<std::size_t>(b)];
        pair_dist[static_cast<std::size_t>(b)][static_cast<std::size_t>(bj)] =
            new_dj[static_cast<std::size_t>(b)];
      }
      pair_dist[static_cast<std::size_t>(bi)][static_cast<std::size_t>(bj)] = d_ij;
      pair_dist[static_cast<std::size_t>(bj)][static_cast<std::size_t>(bi)] = d_ij;
      total += delta_dist;
      ++res.accepted_swaps;
    }
  }

  res.final_distance = total;
  res.order.clear();
  for (const auto& b : p.blocks) res.order.insert(res.order.end(), b.begin(), b.end());
  return res;
}

std::vector<int> brute_force_best_order(const nn::Tensor& weight,
                                        int k_blocks) {
  const int n = weight.dim(0);
  SEI_CHECK_MSG(n <= 12, "brute force is exponential; use homogenize_rows");
  SEI_CHECK(k_blocks >= 1 && k_blocks <= n);

  // Enumerate multiset permutations of block labels (balanced sizes).
  std::vector<int> labels;
  const int base = n / k_blocks, extra = n % k_blocks;
  for (int b = 0; b < k_blocks; ++b)
    for (int i = 0; i < base + (b < extra ? 1 : 0); ++i) labels.push_back(b);
  std::sort(labels.begin(), labels.end());

  double best = 1e300;
  std::vector<int> best_order = natural_order(n);
  do {
    Partition p;
    p.blocks.assign(static_cast<std::size_t>(k_blocks), {});
    for (int r = 0; r < n; ++r)
      p.blocks[static_cast<std::size_t>(labels[static_cast<std::size_t>(r)])]
          .push_back(r);
    const double d = partition_distance(weight, p);
    if (d < best) {
      best = d;
      best_order.clear();
      for (const auto& b : p.blocks)
        best_order.insert(best_order.end(), b.begin(), b.end());
    }
  } while (std::next_permutation(labels.begin(), labels.end()));
  return best_order;
}

std::vector<std::vector<int>> random_orders(int n_rows, int count,
                                            std::uint64_t seed) {
  SEI_CHECK(n_rows >= 1 && count >= 1);
  Rng rng(seed);
  std::vector<std::vector<int>> orders;
  orders.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    std::vector<int> o = natural_order(n_rows);
    rng.shuffle(o);
    orders.push_back(std::move(o));
  }
  return orders;
}

}  // namespace sei::split
