// Matrix homogenization (Section 4.3, Equ. 10).
//
// Goal: distribute the logical rows of a weight matrix over K blocks so the
// blocks' column-mean vectors are as close as possible — each sub-crossbar
// then contributes a comparable share of every output column sum, making
// the per-block threshold Thres/K meaningful. The paper optimizes by
// iteratively exchanging random row pairs between blocks ("genetic"
// stochastic search); the problem is a multiple-knapsack-style NP-complete
// assignment, so the exact method is only feasible for tiny matrices (we
// keep one for tests).
#pragma once

#include <cstdint>

#include "nn/tensor.hpp"
#include "split/partition.hpp"

namespace sei::split {

/// Equ. (10): Σ_{i<j} ‖a_i − a_j‖₂ over the blocks' column-mean vectors.
double partition_distance(const nn::Tensor& weight, const Partition& p);

struct HomogenizeConfig {
  int iterations = 30000;      // random exchange attempts
  std::uint64_t seed = 1234;
};

struct HomogenizeResult {
  std::vector<int> order;      // row order whose contiguous chunks are blocks
  double initial_distance = 0.0;
  double final_distance = 0.0;
  int accepted_swaps = 0;

  double reduction_pct() const {
    return initial_distance > 0.0
               ? 100.0 * (1.0 - final_distance / initial_distance)
               : 0.0;
  }
};

/// Stochastic row-exchange search starting from the natural order.
/// Incremental distance maintenance makes each attempt O(K · cols).
HomogenizeResult homogenize_rows(const nn::Tensor& weight, int k_blocks,
                                 const HomogenizeConfig& cfg = {});

/// Exact minimizer by exhaustive enumeration of block assignments.
/// Only feasible for tiny inputs (≲ 12 rows); used to validate the
/// stochastic search in tests.
std::vector<int> brute_force_best_order(const nn::Tensor& weight,
                                        int k_blocks);

/// `count` random row orders for the Table 4 random-splitting experiment.
std::vector<std::vector<int>> random_orders(int n_rows, int count,
                                            std::uint64_t seed);

}  // namespace sei::split
