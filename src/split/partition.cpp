#include "split/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sei::split {

int Partition::total_rows() const {
  int n = 0;
  for (const auto& b : blocks) n += static_cast<int>(b.size());
  return n;
}

void Partition::check_valid(int n_rows) const {
  SEI_CHECK_MSG(total_rows() == n_rows, "partition covers " << total_rows()
                                                            << " of " << n_rows
                                                            << " rows");
  std::vector<char> seen(static_cast<std::size_t>(n_rows), 0);
  for (const auto& b : blocks) {
    SEI_CHECK_MSG(!b.empty(), "partition has an empty block");
    for (int r : b) {
      SEI_CHECK_MSG(r >= 0 && r < n_rows, "row index out of range");
      SEI_CHECK_MSG(!seen[static_cast<std::size_t>(r)],
                    "row " << r << " appears in two blocks");
      seen[static_cast<std::size_t>(r)] = 1;
    }
  }
}

int spare_rows_for(int data_physical_rows, double spare_row_fraction) {
  SEI_CHECK(data_physical_rows >= 0);
  SEI_CHECK_MSG(spare_row_fraction >= 0 && spare_row_fraction < 1,
                "spare row fraction must be in [0, 1)");
  if (spare_row_fraction <= 0.0) return 0;
  return static_cast<int>(
      std::ceil(spare_row_fraction * static_cast<double>(data_physical_rows)));
}

int logical_capacity(int max_physical_rows, int cells_per_weight,
                     double spare_row_fraction) {
  SEI_CHECK(max_physical_rows >= 1 && cells_per_weight >= 1);
  int cap = max_physical_rows / cells_per_weight;
  // Largest logical count whose data rows plus reserved spares still fit.
  while (cap > 1 && cap * cells_per_weight +
                            spare_rows_for(cap * cells_per_weight,
                                           spare_row_fraction) >
                        max_physical_rows)
    --cap;
  SEI_CHECK_MSG(cap >= 1, "crossbar cannot hold even one logical row");
  return cap;
}

int blocks_needed(int n_rows, int max_physical_rows, int cells_per_weight,
                  double spare_row_fraction) {
  SEI_CHECK(n_rows >= 1);
  const int cap =
      logical_capacity(max_physical_rows, cells_per_weight, spare_row_fraction);
  return (n_rows + cap - 1) / cap;
}

Partition partition_from_order(const std::vector<int>& order, int k) {
  const int n = static_cast<int>(order.size());
  SEI_CHECK(k >= 1 && k <= n);
  Partition p;
  p.blocks.resize(static_cast<std::size_t>(k));
  // Nearly equal chunk sizes: the first (n % k) blocks get one extra row.
  const int base = n / k, extra = n % k;
  int pos = 0;
  for (int b = 0; b < k; ++b) {
    const int size = base + (b < extra ? 1 : 0);
    auto& blk = p.blocks[static_cast<std::size_t>(b)];
    blk.assign(order.begin() + pos, order.begin() + pos + size);
    pos += size;
  }
  p.check_valid(n);
  return p;
}

std::vector<int> natural_order(int n) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

}  // namespace sei::split
