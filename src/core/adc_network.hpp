// Functional simulation of the ADC-merging structure (Fig. 2(b)):
// the "1-bit-Input + ADC" design of Table 5.
//
// Each signed weight is spread over P = 2 × slices plane crossbars (one per
// bit-slice × polarity); one cell per logical row per plane. For every
// output, each plane (and each row block, if the matrix splits) produces an
// analog column current that an ADC digitizes; digital shifters/adders then
// merge the quantized partial sums with the plane weights ±2^(d·s) and the
// threshold compare happens in the digital domain (Equ. 5).
//
// The ADC's full scale is calibrated per (stage, plane) over a calibration
// set — the standard auto-ranging assumption. With enough ADC bits this
// structure converges to the software QNetwork; the interesting question
// (answered by bench_ablation_adc_bits) is how many bits it needs, i.e.
// what SEI's sense amplifiers are replacing.
#pragma once

#include <span>
#include <vector>

#include "common/result.hpp"
#include "core/eval_context.hpp"
#include "core/plan.hpp"
#include "core/structure.hpp"
#include "data/dataset.hpp"
#include "quant/qnet.hpp"
#include "split/partition.hpp"

namespace sei::core {

struct AdcConfig {
  int adc_bits = 8;
  int weight_bits = 8;
  int input_bits = 8;              // input-layer DAC resolution
  rram::DeviceConfig device{};     // 4-bit devices by default
  rram::CrossbarLimits limits{};
  int calibration_images = 200;    // ADC full-scale auto-ranging set
  std::uint64_t seed = 20160605;
};

class AdcNetwork {
 public:
  /// Builds the plane crossbars for every stage and calibrates the ADC
  /// ranges on the head of `calibration`.
  AdcNetwork(const quant::QNetwork& qnet, const AdcConfig& cfg,
             const data::Dataset& calibration);

  int stage_count() const { return static_cast<int>(stages_.size()); }
  int planes() const { return planes_; }

  /// Classifies one image (convenience wrapper: fresh context).
  int predict(std::span<const float> image) const;

  /// Classifies one image using the caller's scratch context. The ADC
  /// pipeline draws no per-read randomness, so the result depends only on
  /// (network state, image) — trivially thread-safe with one context per
  /// worker.
  int predict(std::span<const float> image, EvalContext& ctx) const;

  /// Structured-error variant for the serving path (the breaker's ADC
  /// fallback tier): honors ctx.cancel between stages like
  /// SeiNetwork::try_predict.
  Result<int> try_predict(std::span<const float> image,
                          EvalContext& ctx) const;

  /// Exact scratch bounds of this network (core/plan.hpp). The stages are
  /// immutable after construction, so the bounds are computed once; serving
  /// contexts that may take the ADC fallback tier merge these into their
  /// bind so the degraded path allocates nothing per request either.
  const ScratchPlan& scratch_plan() const { return scratch_plan_; }

  /// Ensures `ctx`'s bound capacity covers this network's scratch bounds
  /// (no-op when it already does). try_predict calls it; exposed for
  /// serving warmup.
  void prepare(EvalContext& ctx) const {
    if (!ctx.covers(scratch_plan_)) ctx.bind(scratch_plan_);
  }

  /// Classification error in percent; images evaluated in parallel on the
  /// default exec pool, bit-identical at any thread count.
  double error_rate(const data::Dataset& d, int max_images = -1) const;

  /// Full-scale current (level units) chosen for a stage's planes.
  double full_scale(int stage) const {
    return stages_.at(static_cast<std::size_t>(stage)).full_scale;
  }

  /// Attaches a per-stage energy price list (arch::make_energy_meter with
  /// kBinInputAdc or kDacAdc8); error_rate then publishes chunk totals
  /// under path "adc_batch". The meter must outlive the network.
  void set_meter(const telemetry::EnergyMeter* meter) { meter_ = meter; }
  const telemetry::EnergyMeter* meter() const { return meter_; }

 private:
  struct Stage {
    quant::StageGeometry geom;
    // Per-plane effective cell values, [plane][row × cols], level units.
    std::vector<std::vector<float>> plane_eff;
    std::vector<double> plane_coeff;  // ±2^(d·s) merge weight per plane
    std::vector<int> row_to_block;
    int block_count = 1;
    float weight_scale = 1.0f;
    std::vector<float> col_threshold;  // hidden stages
    std::vector<float> col_bias;       // classifier
    bool binarize = true;
    double full_scale = 1.0;  // ADC range (shared by the planes)
  };

  /// ADC transfer function: clamps to [0, full_scale] and rounds to the
  /// nearest of 2^adc_bits codes. `ideal_` (calibration mode) bypasses it.
  double adc_quantize(double current, double full_scale) const;

  /// Evaluates one stage. Exactly one of bits_in / float_in is used
  /// (float for the DAC-driven input stage). Produces post-threshold,
  /// post-OR-pool bits for hidden stages or classifier scores. Scratch
  /// lives in `ctx`; in calibration mode the per-stage maximum current is
  /// tracked in `ctx.observed_max[stage_index]`.
  void run_stage(const Stage& st, int stage_index,
                 const quant::BitMap* bits_in, std::span<const float> float_in,
                 quant::BitMap& bits_out, std::vector<float>& scores,
                 EvalContext& ctx) const;

  AdcConfig cfg_;
  int planes_ = 0;
  bool ideal_ = false;  // calibration mode: no ADC quantization, track max
  std::vector<Stage> stages_;
  ScratchPlan scratch_plan_;
  const telemetry::EnergyMeter* meter_ = nullptr;
};

}  // namespace sei::core
