// Bit-packed AND+popcount evaluation core for the SEI hot path.
//
// Post-Algorithm-1 activations are 1-bit (quant/qnet.hpp), so a crossbar
// block's column current is a sum of effective weights over *selected*
// rows. For an ideal device those effective values are exact integers
// (mapping.cpp reduces programmed cells to level units), which makes the
// sum computable entirely in integer arithmetic: decompose each
// (block, column)'s weights into a small set of (level, row-mask) terms and
// the block sum becomes
//
//   sum(b, c) = Σ_p level_p · popcount(window ∧ mask_p)  −  bias · n_active[b]
//
// with n_active[b] itself a popcount of the input window against the
// block's row mask, and the dynamic-threshold bias term folded into the
// per-column `bias`. Integer accumulation has no floating-point ordering
// hazards, so the packed path reproduces the scalar double accumulation
// bit-for-bit (all partial sums are exact — see docs/kernels.md for the
// equivalence argument, including the stage-0 DAC case).
//
// The decomposition is a biased bit-plane expansion: shift each column's
// weights by `bias = −min(w)` (min over the block, zero rows included) so
// all values are non-negative, then emit one row-mask per significance bit
// actually used — at most ⌈log2(range)⌉ terms regardless of how many
// distinct values exist. The layout is column-lane, plane-major: eight
// adjacent columns share a lane group, and because every lane of plane p
// carries the same weight 2^p, the kernel is a fixed-shape
// AND+popcount+shift with no horizontal reduction — eight column sums
// leave as one vector of doubles (AVX-512 VPOPCNTDQ where available;
// std::popcount lane loops are the portable fallback — CI builds with
// SEI_NATIVE=OFF keep that path green).
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "quant/bitpack.hpp"

namespace sei::core {

// ---------------------------------------------------------------------------
// Bit-vector primitives.
// ---------------------------------------------------------------------------

/// OR-copies `len` bits from `src` starting at bit `src_off` into `dst`
/// starting at bit `dst_off`. Destination bits in the target range must be
/// zero (the window buffers are cleared per position).
void copy_bits(const std::uint64_t* src, std::size_t src_off,
               std::uint64_t* dst, std::size_t dst_off, std::size_t len);

/// The `n` bits (1 ≤ n ≤ 64) starting at bit `off`. The containing words
/// must exist; a two-word straddle is handled.
inline std::uint64_t extract_bits64(const std::uint64_t* words,
                                    std::size_t off, int n) {
  const std::size_t i = off >> 6;
  const int s = static_cast<int>(off & 63);
  std::uint64_t v = words[i] >> s;
  if (s != 0 && s + n > 64) v |= words[i + 1] << (64 - s);
  if (n < 64) v &= (std::uint64_t{1} << n) - 1;
  return v;
}

/// Sequential LSB-first bit appender into a PackedBits.
class BitWriter {
 public:
  /// Resets `out` to `total_bits` zeroed bits and positions at bit 0.
  BitWriter(quant::PackedBits& out, std::size_t total_bits) : out_(&out) {
    out.reset(total_bits);
  }

  /// Appends the low `n` bits of `v` (0 ≤ n ≤ 64).
  void append(std::uint64_t v, int n) {
    if (n <= 0) return;
    if (n < 64) v &= (std::uint64_t{1} << n) - 1;
    buf_ |= v << fill_;
    if (fill_ + n >= 64) {
      out_->words[word_++] = buf_;
      const int taken = 64 - fill_;
      buf_ = taken < 64 ? v >> taken : 0;
      fill_ += n - 64;
    } else {
      fill_ += n;
    }
  }

  /// Flushes the partially filled tail word (call exactly once, at the end).
  void finish() {
    if (fill_ > 0) out_->words[word_] = buf_;
    buf_ = 0;
    fill_ = 0;
  }

 private:
  quant::PackedBits* out_;
  std::uint64_t buf_ = 0;
  int fill_ = 0;
  std::size_t word_ = 0;
};

// ---------------------------------------------------------------------------
// 2×2 OR-pool (the degenerate max-pool of binary activations).
// ---------------------------------------------------------------------------

/// Byte-map OR-pool of a [h×w×c] BitMap (floor semantics, like MaxPool2x2).
/// The scalar reference path and the micro benches share this.
void or_pool_bytes(const quant::BitMap& in, int h, int w, int c,
                   quant::BitMap& out);

/// Same reduction on packed words: channel groups of the four source
/// pixels are extracted and OR-merged without ever widening to bytes.
void or_pool_packed(const quant::PackedBits& in, int h, int w, int c,
                    quant::PackedBits& out);

// ---------------------------------------------------------------------------
// Stage-0 DAC cache.
// ---------------------------------------------------------------------------

/// Input-layer DAC: quantizes a pixel to `bits` resolution.
inline float dac_quantize(float x, int bits) {
  const float steps = static_cast<float>((1 << bits) - 1);
  const float clamped = x < 0.0f ? 0.0f : (x > 1.0f ? 1.0f : x);
  return std::round(clamped * steps) / steps;
}

/// Runs every input element through the stage-0 DAC exactly once. The
/// scalar path re-quantizes each pixel in every overlapping conv window
/// (kernel² times); caching the DAC output per image is the packed core's
/// first win and changes no value — the same dac_quantize call produces
/// the same float either way.
void dac_quantize_image(std::span<const float> in, int bits,
                        std::vector<float>& out);
/// Variant writing into caller-owned storage of at least in.size() floats
/// (the plan executor's arena-carved scratch).
void dac_quantize_image(std::span<const float> in, int bits, float* out);

// ---------------------------------------------------------------------------
// Per-stage packed weight planes.
// ---------------------------------------------------------------------------

/// Integer bit-plane decomposition of one mapped stage. Columns are tiled
/// into lane groups of 8 (group cg covers columns 8·cg .. 8·cg+7); each
/// (block, lane group) owns a CSR run of plane entries. Plane entry e
/// holds significance bit plane_shift[e] and masks[e·words·kLanes ..)
/// word-major: the 8 lane-column masks of row-word w are adjacent, so one
/// 512-bit vector ANDs a broadcast window word against all eight columns.
/// Every lane of a plane shares the weight 2^plane_shift[e], which is what
/// lets eight column sums accumulate side by side with no reduction.
struct PackedStage {
  static constexpr int kLanes = 8;  // columns per vector group
  static constexpr int kMaxBlockSpan = 64;  // kernel local-window capacity

  bool valid = false;      // hidden-stage AND+popcount path available
  bool dac_exact = false;  // stage-0 dense double path is bit-exact
  int words = 0;           // u64 words per row mask: ceil(rows / 64)
  int cgroups = 0;         // column lane groups: ceil(cols / kLanes)

  std::vector<std::uint32_t> plane_begin;  // CSR per (b·cgroups + cg)
  std::vector<std::uint32_t> plane_shift;  // per plane entry: bit p
  std::vector<std::uint32_t> mask_off;     // per plane entry: index into masks
  std::vector<std::uint64_t> masks;        // block_span·kLanes per plane entry
  std::vector<std::int64_t> bias;          // kLanes per (b·cgroups + cg)
  std::vector<std::uint64_t> block_masks;  // k × words: rows of block b
  // Masks are block-LOCAL: row r maps to bit rank(r within its block), so
  // a 100-row block needs 2 words no matter how its rows interleave with
  // other blocks' (homogenized stages round-robin rows across blocks).
  // The kernel compacts each block's rows out of the full window with
  // PEXT before the plane loop — a few cycles that shrink both the mask
  // footprint and the per-plane word count by ~words/span.
  std::vector<std::int32_t> block_span;  // k: local words ceil(rows_b / 64)
  std::vector<std::int32_t> block_loff;  // k+1: prefix sums of block_span

  // Position-vectorized per-column layout for the batch-of-8 kernel: CSR
  // runs per (b·cols + c), each entry one significance bit with
  // block_span[b] local mask words at cmask_off[e]. Tighter than the
  // lane-group planes above — a column only lists bits it actually uses —
  // and laid out so one mask word broadcasts against eight positions.
  std::vector<std::uint32_t> cplane_begin;
  std::vector<std::uint32_t> cplane_shift;
  std::vector<std::uint32_t> cmask_off;
  std::vector<std::uint64_t> cmasks;

  // Active-row gather path: the same integer weights stored as one padded
  // int16 vector per row (stride `cstride`, a multiple of 32, zero tail).
  // When every block column's Σ|w| fits int16 (`rows_ok`), a position's
  // block sums reduce to int16 vector adds over just the *active* rows —
  // the cheapest kernel by far when activations are sparse-to-moderate,
  // and still exact: all partial sums are small integers. The bit-plane
  // layouts above remain for the !rows_ok fallback and as a second
  // independent packed implementation for the equivalence tests.
  bool rows_ok = false;
  int cstride = 0;
  std::vector<std::int16_t> row_w;

  std::size_t plane_count() const { return plane_shift.size(); }
};

/// Builds the packed decomposition of one stage's effective weights.
/// `valid` stays false when any value is non-integral (programming noise,
/// drift, IR drop) — the caller then keeps using the scalar oracle.
/// `input_bits` only affects the stage-0 exactness bound (dac_exact).
PackedStage build_packed_stage(const std::vector<float>& eff, int rows,
                               int cols, const std::vector<int>& row_to_block,
                               int block_count, int input_bits);

/// Accumulates one output position: n_active[b] and block_sums[b·cols+c]
/// for every block and column, from the packed input window (`ps.words`
/// words). block_sums receives exact integer values as doubles. Sparsity
/// (docs/sparsity.md) needs no kernel hook: the caller masks skipped
/// sub-crossbar words out of the window before accumulation, so inert
/// rows simply read as inactive here.
void accumulate_position(const PackedStage& ps, int cols, int block_count,
                         const std::uint64_t* window, double* block_sums,
                         int* n_active);

/// PEXT-compacts block `b`'s rows out of the full window into its dense
/// local window (`ps.block_span[b]` words, bit i = i-th block row in
/// ascending row order) and returns the block's active-input count.
int compact_block_window(const PackedStage& ps, int b,
                         const std::uint64_t* window, std::uint64_t* lw);

/// Active-row variant of accumulate_position (requires `ps.rows_ok`):
/// identical outputs, but walks the set bits of the window and adds each
/// active row's int16 weight vector instead of streaming bit-plane masks.
void accumulate_position_rows(const PackedStage& ps, int cols,
                              int block_count, const std::uint64_t* window,
                              double* block_sums, int* n_active);

/// Batched variant of accumulate_position: up to 8 positions at once from
/// pre-compacted block-local windows. `lw8[(ps.block_loff[b] + w)*8 + p]`
/// is word w of position p's local window for block b; `n_active8[b*8+p]`
/// the matching active counts. Writes `sums8[(b*cols + c)*8 + p]` — the
/// same exact integers-as-doubles accumulate_position produces, with the
/// per-plane mask loaded once per batch instead of once per position.
void accumulate_positions8(const PackedStage& ps, int cols, int block_count,
                           const std::uint64_t* lw8,
                           const std::int32_t* n_active8, double* sums8);

}  // namespace sei::core
