// Compiled execution plans (docs/plans.md).
//
// `SeiNetwork::predict` used to interpret the layer list per request: every
// stage re-branched on engine selection (scalar float / bit-packed / DAC /
// scalar-bits fallback), re-derived its kernel conditions from MappedLayer,
// and grew EvalContext scratch on demand — costs paid millions of times on
// the serving path. compile_plan lowers (mapped layers, HardwareConfig,
// engine switch) once — at construction, remap, fault repair, or checkpoint
// restore — into a CompiledPlan:
//
//  * a flat array of StageOps with the engine AND the packed/DAC sub-kernel
//    resolved per layer geometry (bit-plane batch-of-8 vs int16 row-gather
//    compare vs generic; dense-transpose vs scatter vs generic DAC),
//  * explicit activation-form converts (bytes ↔ packed words) inserted at
//    the stage boundaries that need them — the runtime `packed_live`
//    guessing is gone,
//  * per-stage energy prices baked in from the attached meter,
//  * and an exact ScratchPlan: the high-water size of every EvalContext
//    buffer plus the total arena footprint, so a context binds to the plan
//    with ONE arena allocation and serves requests with zero heap traffic.
//
// The legacy per-stage dispatch survives as the *interpreter*
// (`SeiNetwork::set_plan_mode(false)`): the reference the equivalence suite
// in tests/test_determinism.cpp pins the plan executor against,
// bit-for-bit, and the baseline of the plan-dispatch micro bench.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mapping.hpp"
#include "core/structure.hpp"
#include "telemetry/energy.hpp"

namespace sei::core {

/// Which evaluation engine a stage op runs.
enum class StageEngine : std::uint8_t {
  kScalarFloat,  // stage-0 scalar reference (DAC per window)
  kScalarBits,   // hidden/classifier scalar reference on byte maps
  kDacDense,     // stage-0 packed core: cached DAC + dense/scatter sums
  kPackedBits,   // hidden/classifier AND+popcount core on packed words
};

/// Representation of the live activations at a stage boundary.
enum class ActForm : std::uint8_t {
  kImage,   // float span (network input)
  kBytes,   // quant::BitMap, one byte per activation
  kPacked,  // quant::PackedBits, 64 activations per word
  kScores,  // classifier scores (terminal)
};

/// Hidden-stage packed sub-kernel, resolved at compile time from geometry,
/// noise config, and the SIMD capabilities of this build (simd_caps.hpp).
enum class PackedKernel : std::uint8_t {
  kNone,      // op does not run the packed engine
  kBatch8,    // batch-of-8 positions over per-column planes (AVX-512)
  kRow16Cmp,  // int16 row-gather + in-register compare (AVX-512)
  kGeneric,   // per-position bit-plane / row-gather accumulate
};

/// Stage-0 DAC sub-kernel.
enum class DacKernel : std::uint8_t {
  kNone,            // op is not the DAC engine
  kDenseTranspose,  // [col][position] dense sums, fused compare/pool emit
  kScatter,         // sparse input scatter into per-position sums
  kGeneric,         // per-window accumulate (FC / classifier stage 0)
};

/// One lowered stage: everything the executor needs, resolved up front.
struct StageOp {
  int stage = 0;
  StageEngine engine = StageEngine::kScalarFloat;
  ActForm in_form = ActForm::kImage;
  ActForm out_form = ActForm::kBytes;
  bool pack_input = false;    // convert bytes → packed words before running
  bool unpack_input = false;  // convert packed words → bytes before running
  bool classifier = false;    // scores out; terminates the plan
  bool pool_after = false;    // OR-pool fused into the stage's emit
  PackedKernel packed_kernel = PackedKernel::kNone;
  DacKernel dac_kernel = DacKernel::kNone;

  // Geometry snapshot (diagnostics, benches, docs).
  int rows = 0;
  int cols = 0;
  int blocks = 1;
  long long positions = 0;

  // Sparsity skip bound (docs/sparsity.md): resolved at compile time from
  // the network's per-stage bounds. < 0 means sparsity is off for this op
  // (the pre-sparsity fast path, no activity tracking); >= 0 means a 9-row
  // sub-crossbar input word (SeiNetwork::kWordRows) whose selected-input
  // count is <= skip_bound is masked out of the input window before
  // accumulation — its rows are never driven — and the stage is charged
  // per activated row. Always < 0 for stage 0 (DAC-driven, no transmission
  // gates) and for non-SEI engines.
  int skip_bound = -1;

  // Baked per-stage energy price (valid when `priced`): the executor
  // charges these numbers directly instead of chasing the meter's stage
  // table per request. CompiledPlan::priced_for records which meter the
  // prices came from — a context metering against a different meter falls
  // back to EnergyMeter::charge_stage.
  telemetry::StageEnergy price;
  bool priced = false;
};

/// Exact high-water element counts of every EvalContext scratch buffer for
/// one compiled network, plus the arena footprint that covers the carved
/// spans. Bounds cover BOTH engines of every stage, so flipping
/// set_packed_eval or running the interpreter never overflows a bound
/// context.
struct ScratchPlan {
  std::size_t block_sums = 0;
  std::size_t n_active = 0;
  std::size_t plane_sums = 0;  // ADC networks only
  std::size_t merged = 0;      // ADC networks only
  std::size_t window = 0;
  std::size_t dac_vals = 0;
  std::size_t dac_d = 0;
  std::size_t pos_bits = 0;
  std::size_t pos_sums = 0;
  std::size_t pos_active = 0;
  std::size_t col_cmp = 0;
  std::size_t col_pool = 0;
  std::size_t lw8 = 0;
  std::size_t nact8 = 0;
  std::size_t sums8 = 0;

  std::size_t scores = 0;        // reserve on ctx.scores (floats)
  std::size_t bitmap_bytes = 0;  // reserve on stage_bits/pooled_bits/bits
  std::size_t packed_words = 0;  // reserve on packed_{bits,stage,pooled}

  std::size_t arena_bytes = 0;  // total for the carved spans, 64B-aligned

  /// Folds another plan's bounds in (max per buffer) — used by contexts
  /// shared across engines (e.g. the serve path's SEI + ADC fallback).
  void merge(const ScratchPlan& o);
  /// Recomputes arena_bytes from the current counts.
  void finalize();
  /// True when every bound of `o` fits inside this plan's bounds — i.e. a
  /// context bound with *this* serves *o*'s network without allocating.
  bool covers(const ScratchPlan& o) const;
};

/// The lowered program: flat ops + scratch bounds + a rebuild epoch.
struct CompiledPlan {
  std::vector<StageOp> ops;
  ScratchPlan scratch;
  /// Bumped by SeiNetwork on every rebuild (remap, fault, restore, engine
  /// switch) so bound contexts detect staleness and re-bind.
  std::uint64_t epoch = 0;
  /// Meter the baked prices were taken from (nullptr: unpriced plan).
  const telemetry::EnergyMeter* priced_for = nullptr;

  bool valid() const { return !ops.empty(); }
};

/// Kernel selection, shared verbatim by compile_plan and the interpreter —
/// one source of truth for the dispatch conditions.
StageEngine select_engine(const MappedLayer& m, int stage,
                          const HardwareConfig& cfg, bool packed_eval);
PackedKernel select_packed_kernel(const MappedLayer& m,
                                  const HardwareConfig& cfg);
DacKernel select_dac_kernel(const MappedLayer& m);

/// Lowers the mapped network into a CompiledPlan. `meter` (optional) bakes
/// per-stage prices; epoch is left at 0 — the owner stamps it.
/// `skip_bounds` (optional) resolves each op's sparsity skip bound: empty /
/// nullptr leaves every op at -1 (sparsity off); otherwise op `i` of a
/// hidden/classifier SEI stage gets `max(skip_bounds[i], 0)` and stage 0
/// stays -1 — compile_plan owns this policy so the interpreter and the
/// executor cannot disagree on where the predicate applies.
CompiledPlan compile_plan(const std::vector<MappedLayer>& layers,
                          const HardwareConfig& cfg, bool packed_eval,
                          const telemetry::EnergyMeter* meter = nullptr,
                          const std::vector<int>* skip_bounds = nullptr);

}  // namespace sei::core
