#include "core/bitpack.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"

// The 8-lane group layout is sized for one 512-bit vector per window word:
// broadcast the word, AND with the eight lane masks, VPOPCNTQ, accumulate.
// GCC only partially auto-vectorizes that shape, so the hot loop is written
// with intrinsics where the ISA is available (SEI_NATIVE=ON on this class
// of host); everything else — and the SEI_NATIVE=OFF CI builds — takes the
// portable std::popcount path below, which computes the same integers.
#if defined(__AVX512F__) && defined(__AVX512DQ__) && \
    defined(__AVX512VPOPCNTDQ__)
#define SEI_BITPACK_AVX512 1
#endif
#if defined(SEI_BITPACK_AVX512) || defined(__BMI2__)
#include <immintrin.h>
#endif

namespace {

/// Compacts the bits of `x` selected by `m` into the low bits of the
/// result (PEXT). The software fallback iterates only the set bits of `m`.
inline std::uint64_t pext64(std::uint64_t x, std::uint64_t m) {
#if defined(__BMI2__)
  return _pext_u64(x, m);
#else
  std::uint64_t out = 0;
  int i = 0;
  for (; m != 0; m &= m - 1, ++i)
    if (x & (m & (~m + 1))) out |= std::uint64_t{1} << i;
  return out;
#endif
}

}  // namespace

namespace sei::core {

void copy_bits(const std::uint64_t* src, std::size_t src_off,
               std::uint64_t* dst, std::size_t dst_off, std::size_t len) {
  while (len > 0) {
    const int n = static_cast<int>(std::min<std::size_t>(64, len));
    const std::uint64_t v = extract_bits64(src, src_off, n);
    const std::size_t i = dst_off >> 6;
    const int s = static_cast<int>(dst_off & 63);
    dst[i] |= v << s;
    if (s + n > 64) dst[i + 1] |= v >> (64 - s);
    src_off += static_cast<std::size_t>(n);
    dst_off += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
}

void or_pool_bytes(const quant::BitMap& in, int h, int w, int c,
                   quant::BitMap& out) {
  const int ph = h / 2, pw = w / 2;
  out.assign(static_cast<std::size_t>(ph) * pw * c, 0);
  for (int y = 0; y < ph; ++y) {
    for (int x = 0; x < pw; ++x) {
      std::uint8_t* opx =
          out.data() + (static_cast<std::size_t>(y) * pw + x) * c;
      for (int dy = 0; dy < 2; ++dy) {
        const std::uint8_t* ipx =
            in.data() + (static_cast<std::size_t>(2 * y + dy) * w + 2 * x) * c;
        for (int ch = 0; ch < c; ++ch)
          opx[ch] |= static_cast<std::uint8_t>(ipx[ch] | ipx[c + ch]);
      }
    }
  }
}

void or_pool_packed(const quant::PackedBits& in, int h, int w, int c,
                    quant::PackedBits& out) {
  SEI_CHECK(in.bits == static_cast<std::size_t>(h) * w * c);
  const int ph = h / 2, pw = w / 2;
  const std::size_t row_bits = static_cast<std::size_t>(w) * c;
  const std::uint64_t* words = in.words.data();
  BitWriter writer(out, static_cast<std::size_t>(ph) * pw * c);
  for (int y = 0; y < ph; ++y) {
    for (int x = 0; x < pw; ++x) {
      const std::size_t base0 =
          (static_cast<std::size_t>(2 * y) * w + 2 * x) * c;
      const std::size_t base1 = base0 + row_bits;
      for (int off = 0; off < c; off += 64) {
        const int n = std::min(64, c - off);
        const std::uint64_t merged =
            extract_bits64(words, base0 + off, n) |
            extract_bits64(words, base0 + c + off, n) |
            extract_bits64(words, base1 + off, n) |
            extract_bits64(words, base1 + c + off, n);
        writer.append(merged, n);
      }
    }
  }
  writer.finish();
}

void dac_quantize_image(std::span<const float> in, int bits, float* out) {
  const float steps = static_cast<float>((1 << bits) - 1);
  std::size_t i = 0;
#ifdef SEI_BITPACK_AVX512
  // round() for a non-negative v below 2^23 is trunc(v) + (v − trunc(v) ≥
  // 0.5): the subtraction is exact (Sterbenz), so the compare reproduces
  // round-half-away-from-zero bit-for-bit without the libm call.
  const __m512 zero = _mm512_setzero_ps();
  const __m512 one = _mm512_set1_ps(1.0f);
  const __m512 half = _mm512_set1_ps(0.5f);
  const __m512 stepv = _mm512_set1_ps(steps);
  for (; i + 16 <= in.size(); i += 16) {
    const __m512 x = _mm512_loadu_ps(in.data() + i);
    const __m512 v =
        _mm512_mul_ps(_mm512_min_ps(_mm512_max_ps(x, zero), one), stepv);
    const __m512 t = _mm512_roundscale_ps(v, _MM_FROUND_TO_ZERO);
    const __mmask16 up =
        _mm512_cmp_ps_mask(_mm512_sub_ps(v, t), half, _CMP_GE_OQ);
    const __m512 r = _mm512_mask_add_ps(t, up, t, one);
    _mm512_storeu_ps(out + i, _mm512_div_ps(r, stepv));
  }
#endif
  for (; i < in.size(); ++i) {
    const float x = in[i];
    const float clamped = x < 0.0f ? 0.0f : (x > 1.0f ? 1.0f : x);
    // Same value chain as dac_quantize: round(clamped·steps), then a float
    // divide by steps. Multiplying by a reciprocal would round differently.
    out[i] = std::round(clamped * steps) / steps;
  }
}

void dac_quantize_image(std::span<const float> in, int bits,
                        std::vector<float>& out) {
  out.resize(in.size());
  dac_quantize_image(in, bits, out.data());
}

PackedStage build_packed_stage(const std::vector<float>& eff, int rows,
                               int cols, const std::vector<int>& row_to_block,
                               int block_count, int input_bits) {
  PackedStage ps;
  SEI_CHECK(eff.size() == static_cast<std::size_t>(rows) * cols);
  SEI_CHECK(row_to_block.size() == static_cast<std::size_t>(rows));
  ps.words = (rows + 63) / 64;
  ps.cgroups = (cols + PackedStage::kLanes - 1) / PackedStage::kLanes;

  // Integer copy of the effective weights; any non-integral value (device
  // programming noise, drift, IR drop) forfeits the packed path entirely.
  std::vector<std::int64_t> iw(eff.size());
  double max_abs = 0.0;
  for (std::size_t i = 0; i < eff.size(); ++i) {
    const double v = eff[i];
    if (std::abs(v) > 1e15 || v != std::nearbyint(v)) return ps;
    iw[i] = static_cast<std::int64_t>(v);
    max_abs = std::max(max_abs, std::abs(v));
  }
  ps.valid = true;

  // Stage-0 dense-DAC exactness bound: every fl(n/steps) is a multiple of
  // 2^-(⌈log2 steps⌉+23), so double partial sums bounded by rows·max|eff|
  // below 2^(53−that) never round (docs/kernels.md).
  const int steps = (1 << input_bits) - 1;
  int log2_steps = 0;
  while ((1 << log2_steps) < steps) ++log2_steps;
  ps.dac_exact =
      static_cast<double>(rows) * max_abs <=
      std::ldexp(1.0, 53 - (log2_steps + 23));

  ps.block_masks.assign(static_cast<std::size_t>(block_count) * ps.words, 0);
  std::vector<std::vector<int>> block_rows(
      static_cast<std::size_t>(block_count));
  for (int r = 0; r < rows; ++r) {
    const int b = row_to_block[static_cast<std::size_t>(r)];
    block_rows[static_cast<std::size_t>(b)].push_back(r);
    ps.block_masks[static_cast<std::size_t>(b) * ps.words + (r >> 6)] |=
        std::uint64_t{1} << (r & 63);
  }
  ps.block_span.assign(static_cast<std::size_t>(block_count), 0);
  ps.block_loff.assign(static_cast<std::size_t>(block_count) + 1, 0);
  for (int b = 0; b < block_count; ++b) {
    const std::size_t nb = block_rows[static_cast<std::size_t>(b)].size();
    const int span = static_cast<int>((nb + 63) / 64);
    if (span > PackedStage::kMaxBlockSpan) {
      ps.valid = false;  // would overflow the kernel's local-window buffer
      return ps;
    }
    ps.block_span[static_cast<std::size_t>(b)] = span;
    ps.block_loff[static_cast<std::size_t>(b) + 1] =
        ps.block_loff[static_cast<std::size_t>(b)] + span;
  }

  constexpr int kL = PackedStage::kLanes;
  ps.plane_begin.assign(
      static_cast<std::size_t>(block_count) * ps.cgroups + 1, 0);
  ps.bias.assign(static_cast<std::size_t>(block_count) * ps.cgroups * kL, 0);

  for (int b = 0; b < block_count; ++b) {
    const std::vector<int>& rlist = block_rows[static_cast<std::size_t>(b)];
    const int span = ps.block_span[static_cast<std::size_t>(b)];
    for (int cg = 0; cg < ps.cgroups; ++cg) {
      const std::size_t idx =
          static_cast<std::size_t>(b) * ps.cgroups + cg;
      const int lanes_here = std::min(kL, cols - cg * kL);

      // Per-column shift B = −min over the block (zero rows included) so
      // biased values are non-negative; undone later as B·n_active[b].
      std::int64_t shift[kL] = {};
      for (int lane = 0; lane < lanes_here; ++lane) {
        const int c = cg * kL + lane;
        std::int64_t min_v = 0;
        for (const int r : rlist)
          min_v = std::min(min_v, iw[static_cast<std::size_t>(r) * cols + c]);
        shift[lane] = -min_v;
        ps.bias[idx * kL + lane] = shift[lane];
      }

      // One plane entry per significance bit used anywhere in the group;
      // a lane that skips a plane simply gets an all-zero mask there.
      std::uint64_t used_bits = 0;
      for (int lane = 0; lane < lanes_here; ++lane) {
        const int c = cg * kL + lane;
        for (const int r : rlist)
          used_bits |= static_cast<std::uint64_t>(
              iw[static_cast<std::size_t>(r) * cols + c] + shift[lane]);
      }
      for (std::uint64_t sel = used_bits; sel != 0; sel &= sel - 1) {
        const int bit = std::countr_zero(sel);
        ps.plane_shift.push_back(static_cast<std::uint32_t>(bit));
        const std::size_t base = ps.masks.size();
        ps.mask_off.push_back(static_cast<std::uint32_t>(base));
        ps.masks.resize(base + static_cast<std::size_t>(span) * kL, 0);
        for (int lane = 0; lane < lanes_here; ++lane) {
          const int c = cg * kL + lane;
          // Block-local bit = the row's rank within the block, matching
          // the kernel's PEXT compaction order (ascending row index).
          for (std::size_t local = 0; local < rlist.size(); ++local) {
            const int r = rlist[local];
            if ((static_cast<std::uint64_t>(
                     iw[static_cast<std::size_t>(r) * cols + c] +
                     shift[lane]) >>
                 bit) &
                1u)
              ps.masks[base + (local >> 6) * kL + lane] |=
                  std::uint64_t{1} << (local & 63);
          }
        }
      }
      ps.plane_begin[idx + 1] =
          static_cast<std::uint32_t>(ps.plane_shift.size());
    }
  }

  // Per-column CSR for the batch-of-8 kernel. Same biased decomposition,
  // but each column lists only its own significance bits, and each entry's
  // span words sit contiguously for broadcast against 8 positions.
  ps.cplane_begin.assign(static_cast<std::size_t>(block_count) * cols + 1, 0);
  for (int b = 0; b < block_count; ++b) {
    const std::vector<int>& rlist = block_rows[static_cast<std::size_t>(b)];
    const int span = ps.block_span[static_cast<std::size_t>(b)];
    for (int c = 0; c < cols; ++c) {
      const std::int64_t shift =
          ps.bias[(static_cast<std::size_t>(b) * ps.cgroups + c / kL) * kL +
                  c % kL];
      std::uint64_t used_bits = 0;
      for (const int r : rlist)
        used_bits |= static_cast<std::uint64_t>(
            iw[static_cast<std::size_t>(r) * cols + c] + shift);
      for (std::uint64_t sel = used_bits; sel != 0; sel &= sel - 1) {
        const int bit = std::countr_zero(sel);
        ps.cplane_shift.push_back(static_cast<std::uint32_t>(bit));
        const std::size_t base = ps.cmasks.size();
        ps.cmask_off.push_back(static_cast<std::uint32_t>(base));
        ps.cmasks.resize(base + static_cast<std::size_t>(span), 0);
        for (std::size_t local = 0; local < rlist.size(); ++local) {
          const int r = rlist[local];
          if ((static_cast<std::uint64_t>(
                   iw[static_cast<std::size_t>(r) * cols + c] + shift) >>
               bit) &
              1u)
            ps.cmasks[base + (local >> 6)] |= std::uint64_t{1} << (local & 63);
        }
      }
      ps.cplane_begin[static_cast<std::size_t>(b) * cols + c + 1] =
          static_cast<std::uint32_t>(ps.cplane_shift.size());
    }
  }

  // Active-row gather table: one padded int16 vector per row. Usable only
  // when every block column's absolute-value sum fits int16 — then any
  // subset of rows accumulates without overflow.
  ps.cstride = ((cols + 31) / 32) * 32;
  constexpr int kMaxRowVecs = 16;  // cstride/32 cap (cols ≤ 512)
  ps.rows_ok = ps.cstride / 32 <= kMaxRowVecs;
  for (int b = 0; b < block_count && ps.rows_ok; ++b) {
    const std::vector<int>& rlist = block_rows[static_cast<std::size_t>(b)];
    for (int c = 0; c < cols && ps.rows_ok; ++c) {
      std::int64_t abs_sum = 0;
      for (const int r : rlist)
        abs_sum += std::abs(iw[static_cast<std::size_t>(r) * cols + c]);
      if (abs_sum > 32767) ps.rows_ok = false;
    }
  }
  if (ps.rows_ok) {
    ps.row_w.assign(static_cast<std::size_t>(rows) * ps.cstride, 0);
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c)
        ps.row_w[static_cast<std::size_t>(r) * ps.cstride + c] =
            static_cast<std::int16_t>(iw[static_cast<std::size_t>(r) * cols +
                                         c]);
  }
  return ps;
}

int compact_block_window(const PackedStage& ps, int b,
                         const std::uint64_t* window, std::uint64_t* lw) {
  // Compact this block's rows out of the full window into a dense local
  // window (bit i = i-th block row, ascending) — the layout the masks
  // were built against. A handful of PEXTs here shrinks the plane loop
  // from `words` to `block_span` iterations.
  const int words = ps.words;
  const std::uint64_t* bm = ps.block_masks.data();
  const int span = ps.block_span[b];
  std::uint64_t buf = 0;
  int fill = 0;
  std::size_t wi = 0;
  for (int w = 0; w < words; ++w) {
    const std::uint64_t mask = bm[static_cast<std::size_t>(b) * words + w];
    if (mask == 0) continue;
    const std::uint64_t x = pext64(window[w], mask);
    const int n = std::popcount(mask);
    buf |= x << fill;
    if (fill + n >= 64) {
      lw[wi++] = buf;
      const int taken = 64 - fill;
      buf = taken < 64 ? x >> taken : 0;
      fill += n - 64;
    } else {
      fill += n;
    }
  }
  if (fill > 0) lw[wi] = buf;
  int na = 0;
  for (int w = 0; w < span; ++w) na += std::popcount(lw[w]);
  return na;
}

void accumulate_position(const PackedStage& ps, int cols, int block_count,
                         const std::uint64_t* window, double* block_sums,
                         int* n_active) {
  constexpr int kL = PackedStage::kLanes;
  const std::uint32_t* pb = ps.plane_begin.data();
  std::uint64_t lw[PackedStage::kMaxBlockSpan];
  for (int b = 0; b < block_count; ++b) {
    const int span = ps.block_span[b];
    const int na = compact_block_window(ps, b, window, lw);
    n_active[b] = na;

#ifdef SEI_BITPACK_AVX512
    const __m512d nav_pd = _mm512_set1_pd(static_cast<double>(na));
    const __m512i bw0 = _mm512_set1_epi64(static_cast<long long>(lw[0]));
    const __m512i bw1 = span > 1
                            ? _mm512_set1_epi64(static_cast<long long>(lw[1]))
                            : _mm512_setzero_si512();
    for (int cg = 0; cg < ps.cgroups; ++cg) {
      const std::size_t idx = static_cast<std::size_t>(b) * ps.cgroups + cg;
      // Eight column sums accumulate side by side: per plane, AND the
      // broadcast local-window words with the lane masks, VPOPCNTQ, then
      // weight the plane's count by 2^p with a shift. No horizontal
      // reduction — the vector converts to doubles and stores.
      const std::uint32_t e_end = pb[idx + 1];
      std::uint32_t e = pb[idx];
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      if (span <= 2) {
        // Hot shape: every ≤128-row block spans at most two local words,
        // so the window broadcasts are hoisted out of the plane loop and
        // entries alternate between two accumulators to break the
        // popcount→add latency chain.
        const auto cnt = [&](std::uint32_t ei) {
          const std::uint64_t* em = ps.masks.data() + ps.mask_off[ei];
          __m512i c = _mm512_popcnt_epi64(_mm512_and_si512(
              bw0, _mm512_loadu_si512(reinterpret_cast<const void*>(em))));
          if (span == 2)
            c = _mm512_add_epi64(
                c, _mm512_popcnt_epi64(_mm512_and_si512(
                       bw1, _mm512_loadu_si512(
                                reinterpret_cast<const void*>(em + kL)))));
          return c;
        };
        for (; e + 1 < e_end; e += 2) {
          acc0 = _mm512_add_epi64(
              acc0,
              _mm512_sllv_epi64(cnt(e), _mm512_set1_epi64(ps.plane_shift[e])));
          acc1 = _mm512_add_epi64(
              acc1, _mm512_sllv_epi64(
                        cnt(e + 1), _mm512_set1_epi64(ps.plane_shift[e + 1])));
        }
        if (e < e_end)
          acc0 = _mm512_add_epi64(
              acc0,
              _mm512_sllv_epi64(cnt(e), _mm512_set1_epi64(ps.plane_shift[e])));
      } else {
        for (; e < e_end; ++e) {
          const std::uint64_t* em = ps.masks.data() + ps.mask_off[e];
          __m512i cnt = _mm512_setzero_si512();
          for (int w = 0; w < span; ++w) {
            const __m512i lanes =
                _mm512_loadu_si512(reinterpret_cast<const void*>(
                    em + static_cast<std::size_t>(w) * kL));
            const __m512i hit = _mm512_and_si512(
                _mm512_set1_epi64(static_cast<long long>(lw[w])), lanes);
            cnt = _mm512_add_epi64(cnt, _mm512_popcnt_epi64(hit));
          }
          acc0 = _mm512_add_epi64(
              acc0,
              _mm512_sllv_epi64(cnt, _mm512_set1_epi64(ps.plane_shift[e])));
        }
      }
      const __m512i acc = _mm512_add_epi64(acc0, acc1);
      const __m512d biasv = _mm512_cvtepi64_pd(_mm512_loadu_si512(
          reinterpret_cast<const void*>(ps.bias.data() + idx * kL)));
      // acc, bias and bias·n_active are integers far below 2^53, so the
      // conversion and the fused multiply-subtract are both exact — this
      // produces the same double the all-integer subtraction would.
      const __m512d sums =
          _mm512_fnmadd_pd(biasv, nav_pd, _mm512_cvtepi64_pd(acc));
      const int lanes_here = std::min(kL, cols - cg * kL);
      const __mmask8 k =
          static_cast<__mmask8>((1u << lanes_here) - 1u);
      _mm512_mask_storeu_pd(block_sums + static_cast<std::size_t>(b) * cols +
                                static_cast<std::size_t>(cg) * kL,
                            k, sums);
    }
#else
    for (int cg = 0; cg < ps.cgroups; ++cg) {
      const std::size_t idx = static_cast<std::size_t>(b) * ps.cgroups + cg;
      std::int64_t acc[kL] = {};
      for (std::uint32_t e = pb[idx]; e < pb[idx + 1]; ++e) {
        const std::uint64_t* em = ps.masks.data() + ps.mask_off[e];
        const int p = static_cast<int>(ps.plane_shift[e]);
        std::int64_t cnt[kL] = {};
        for (int w = 0; w < span; ++w) {
          const std::uint64_t ww = lw[w];
          const std::uint64_t* mw = em + static_cast<std::size_t>(w) * kL;
          for (int lane = 0; lane < kL; ++lane)
            cnt[lane] += std::popcount(ww & mw[lane]);
        }
        for (int lane = 0; lane < kL; ++lane) acc[lane] += cnt[lane] << p;
      }
      const std::int64_t* biasv = ps.bias.data() + idx * kL;
      const int lanes_here = std::min(kL, cols - cg * kL);
      double* dst =
          block_sums + static_cast<std::size_t>(b) * cols + cg * kL;
      for (int lane = 0; lane < lanes_here; ++lane)
        dst[lane] = static_cast<double>(acc[lane] - biasv[lane] * na);
    }
#endif
  }
}

#ifdef SEI_BITPACK_AVX512
namespace {

/// Widens 32 int16 sums to doubles at `dst` (masked tail past cols_left).
inline void store_acc16(__m512i acc, double* dst, int cols_left) {
  const __m512i lo = _mm512_cvtepi16_epi32(_mm512_castsi512_si256(acc));
  const __m512i hi =
      _mm512_cvtepi16_epi32(_mm512_extracti64x4_epi64(acc, 1));
  const __m256i q[4] = {_mm512_castsi512_si256(lo),
                        _mm512_extracti32x8_epi32(lo, 1),
                        _mm512_castsi512_si256(hi),
                        _mm512_extracti32x8_epi32(hi, 1)};
  for (int g = 0; g < 4 && cols_left > 0; ++g, cols_left -= 8, dst += 8) {
    const __mmask8 m = cols_left >= 8
                           ? static_cast<__mmask8>(0xFF)
                           : static_cast<__mmask8>((1u << cols_left) - 1u);
    _mm512_mask_storeu_pd(dst, m, _mm512_cvtepi32_pd(q[g]));
  }
}

/// Row-gather block accumulation with NV compile-time weight vectors per
/// row. Dual accumulator pairs break the add_epi16 latency chain when the
/// active-row stream is long.
template <int NV>
void accumulate_rows_block(const PackedStage& ps, int b, int cols,
                           const std::uint64_t* window, double* dst,
                           int* n_active) {
  const int words = ps.words;
  const std::uint64_t* bm = ps.block_masks.data() +
                            static_cast<std::size_t>(b) * words;
  const std::int16_t* rw = ps.row_w.data();
  const int cstride = ps.cstride;
  __m512i acc[NV], acc2[NV];
  for (int v = 0; v < NV; ++v) acc[v] = acc2[v] = _mm512_setzero_si512();
  int na = 0;
  bool flip = false;
  for (int w = 0; w < words; ++w) {
    std::uint64_t bits = window[w] & bm[w];
    na += std::popcount(bits);
    for (; bits != 0; bits &= bits - 1) {
      const int r = (w << 6) + std::countr_zero(bits);
      const std::int16_t* p = rw + static_cast<std::size_t>(r) * cstride;
      __m512i* a = flip ? acc2 : acc;
      flip = !flip;
      for (int v = 0; v < NV; ++v)
        a[v] = _mm512_add_epi16(
            a[v], _mm512_loadu_si512(
                      reinterpret_cast<const void*>(p + v * 32)));
    }
  }
  n_active[b] = na;
  for (int v = 0; v < NV; ++v)
    store_acc16(_mm512_add_epi16(acc[v], acc2[v]), dst + v * 32,
                cols - v * 32);
}

}  // namespace
#endif  // SEI_BITPACK_AVX512

void accumulate_position_rows(const PackedStage& ps, int cols,
                              int block_count, const std::uint64_t* window,
                              double* block_sums, int* n_active) {
#ifdef SEI_BITPACK_AVX512
  const int nv = ps.cstride / 32;
  for (int b = 0; b < block_count; ++b) {
    double* dst = block_sums + static_cast<std::size_t>(b) * cols;
    switch (nv) {
      case 1: accumulate_rows_block<1>(ps, b, cols, window, dst, n_active);
              break;
      case 2: accumulate_rows_block<2>(ps, b, cols, window, dst, n_active);
              break;
      default: {
        // Wide FC stages (cols > 64): generic vector count, bounded by the
        // build-time kMaxRowVecs cap.
        const int words = ps.words;
        const std::uint64_t* bm = ps.block_masks.data() +
                                  static_cast<std::size_t>(b) * words;
        __m512i acc[16];
        for (int v = 0; v < nv; ++v) acc[v] = _mm512_setzero_si512();
        int na = 0;
        for (int w = 0; w < words; ++w) {
          std::uint64_t bits = window[w] & bm[w];
          na += std::popcount(bits);
          for (; bits != 0; bits &= bits - 1) {
            const int r = (w << 6) + std::countr_zero(bits);
            const std::int16_t* p =
                ps.row_w.data() + static_cast<std::size_t>(r) * ps.cstride;
            for (int v = 0; v < nv; ++v)
              acc[v] = _mm512_add_epi16(
                  acc[v], _mm512_loadu_si512(
                              reinterpret_cast<const void*>(p + v * 32)));
          }
        }
        n_active[b] = na;
        for (int v = 0; v < nv; ++v)
          store_acc16(acc[v], dst + v * 32, cols - v * 32);
      }
    }
  }
#else
  // Portable path: direct double accumulation. Every partial sum is an
  // integer far below 2^53, so addition never rounds and any order gives
  // the same result as the int16 kernel.
  for (int b = 0; b < block_count; ++b) {
    double* dst = block_sums + static_cast<std::size_t>(b) * cols;
    for (int c = 0; c < cols; ++c) dst[c] = 0.0;
    const std::uint64_t* bm = ps.block_masks.data() +
                              static_cast<std::size_t>(b) * ps.words;
    int na = 0;
    for (int w = 0; w < ps.words; ++w) {
      std::uint64_t bits = window[w] & bm[w];
      na += std::popcount(bits);
      for (; bits != 0; bits &= bits - 1) {
        const int r = (w << 6) + std::countr_zero(bits);
        const std::int16_t* p =
            ps.row_w.data() + static_cast<std::size_t>(r) * ps.cstride;
        for (int c = 0; c < cols; ++c) dst[c] += p[c];
      }
    }
    n_active[b] = na;
  }
#endif
}

void accumulate_positions8(const PackedStage& ps, int cols, int block_count,
                           const std::uint64_t* lw8,
                           const std::int32_t* n_active8, double* sums8) {
  const std::uint32_t* cpb = ps.cplane_begin.data();
  for (int b = 0; b < block_count; ++b) {
    const int span = ps.block_span[b];
    const std::uint64_t* wbase =
        lw8 + static_cast<std::size_t>(ps.block_loff[b]) * 8;
#ifdef SEI_BITPACK_AVX512
    const __m512d navd = _mm512_cvtepi32_pd(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(n_active8 + b * 8)));
    // One vector holds the same local-window word of eight positions; each
    // plane mask broadcasts against it, so the mask streams through the
    // cache once per batch instead of once per position.
    const __m512i z0 = _mm512_loadu_si512(
        reinterpret_cast<const void*>(wbase));
    const __m512i z1 = span > 1 ? _mm512_loadu_si512(reinterpret_cast<
                                      const void*>(wbase + 8))
                                : _mm512_setzero_si512();
    for (int c = 0; c < cols; ++c) {
      const std::size_t idx = static_cast<std::size_t>(b) * cols + c;
      const std::uint32_t e_end = cpb[idx + 1];
      std::uint32_t e = cpb[idx];
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      if (span <= 2) {
        const auto cnt = [&](std::uint32_t ei) {
          const std::uint64_t* em = ps.cmasks.data() + ps.cmask_off[ei];
          __m512i ct = _mm512_popcnt_epi64(
              _mm512_and_si512(_mm512_set1_epi64(em[0]), z0));
          if (span == 2)
            ct = _mm512_add_epi64(
                ct, _mm512_popcnt_epi64(
                        _mm512_and_si512(_mm512_set1_epi64(em[1]), z1)));
          return ct;
        };
        for (; e + 1 < e_end; e += 2) {
          acc0 = _mm512_add_epi64(
              acc0, _mm512_sllv_epi64(
                        cnt(e), _mm512_set1_epi64(ps.cplane_shift[e])));
          acc1 = _mm512_add_epi64(
              acc1, _mm512_sllv_epi64(
                        cnt(e + 1), _mm512_set1_epi64(ps.cplane_shift[e + 1])));
        }
        if (e < e_end)
          acc0 = _mm512_add_epi64(
              acc0, _mm512_sllv_epi64(
                        cnt(e), _mm512_set1_epi64(ps.cplane_shift[e])));
      } else {
        for (; e < e_end; ++e) {
          const std::uint64_t* em = ps.cmasks.data() + ps.cmask_off[e];
          __m512i ct = _mm512_setzero_si512();
          for (int w = 0; w < span; ++w)
            ct = _mm512_add_epi64(
                ct, _mm512_popcnt_epi64(_mm512_and_si512(
                        _mm512_set1_epi64(em[w]),
                        _mm512_loadu_si512(reinterpret_cast<const void*>(
                            wbase + static_cast<std::size_t>(w) * 8)))));
          acc0 = _mm512_add_epi64(
              acc0,
              _mm512_sllv_epi64(ct, _mm512_set1_epi64(ps.cplane_shift[e])));
        }
      }
      const __m512i acc = _mm512_add_epi64(acc0, acc1);
      const double bias = static_cast<double>(
          ps.bias[(static_cast<std::size_t>(b) * ps.cgroups +
                   c / PackedStage::kLanes) *
                      PackedStage::kLanes +
                  c % PackedStage::kLanes]);
      // Integers below 2^53 throughout, so cvt + fused multiply-subtract
      // are exact — same doubles as the all-integer subtraction.
      _mm512_storeu_pd(sums8 + idx * 8,
                       _mm512_fnmadd_pd(_mm512_set1_pd(bias), navd,
                                        _mm512_cvtepi64_pd(acc)));
    }
#else
    for (int c = 0; c < cols; ++c) {
      const std::size_t idx = static_cast<std::size_t>(b) * cols + c;
      const std::int64_t bias =
          ps.bias[(static_cast<std::size_t>(b) * ps.cgroups +
                   c / PackedStage::kLanes) *
                      PackedStage::kLanes +
                  c % PackedStage::kLanes];
      for (int p = 0; p < 8; ++p) {
        std::int64_t acc = 0;
        for (std::uint32_t e = cpb[idx]; e < cpb[idx + 1]; ++e) {
          const std::uint64_t* em = ps.cmasks.data() + ps.cmask_off[e];
          std::int64_t ct = 0;
          for (int w = 0; w < span; ++w)
            ct += std::popcount(em[w] &
                                wbase[static_cast<std::size_t>(w) * 8 + p]);
          acc += ct << ps.cplane_shift[e];
        }
        sums8[idx * 8 + p] = static_cast<double>(
            acc - bias * static_cast<std::int64_t>(n_active8[b * 8 + p]));
      }
    }
#endif
  }
}

}  // namespace sei::core
