// Hardware structure configurations compared throughout the paper.
#pragma once

#include <cstdint>
#include <string>

#include "rram/crossbar.hpp"
#include "rram/device.hpp"

namespace sei::core {

/// The three designs of Table 5.
enum class StructureKind {
  kDacAdc8,     // 8-bit data, DAC inputs, ADC merging (the baseline)
  kBinInputAdc, // 1-bit quantized inputs (no DACs), ADC merging kept
  kSei,         // 1-bit inputs as selection signals, no merging ADCs
};

std::string to_string(StructureKind k);

/// How signed weights are realized on positive-conductance devices in the
/// SEI structure.
enum class SignMode {
  kBipolarPort,        // ± input voltages on the extra port (Section 4.1)
  kUnipolarDynThresh,  // linear map w* = w + w0 with the dynamic-threshold
                       // column (Section 4.2) — for unipolar devices
};

struct HardwareConfig {
  StructureKind structure = StructureKind::kSei;
  int weight_bits = 8;                 // CNN weight precision [7]
  int input_bits = 8;                  // input-layer DAC resolution
  rram::DeviceConfig device{};         // 4-bit devices by default
  rram::CrossbarLimits limits{};       // 512×512 by default

  // Static sense-amp offset mismatch: each SA instance's reference is off
  // by a gaussian with this sigma (in integer-weight units, i.e. LSBs of
  // the quantized weights), sampled once at programming/trim time.
  double sa_offset_sigma = 0.0;
  SignMode sign_mode = SignMode::kBipolarPort;

  // Splitting compensation defaults (Section 4.3).
  bool homogenize = true;              // matrix homogenization before mapping
  int homogenize_iterations = 30000;
  bool split_dynamic_threshold = true; // posterior input compensation
  std::uint64_t seed = 20160605;       // mapping / programming randomness

  // Evaluation engine selection (docs/kernels.md): when true, stages whose
  // effective weights are exactly integral run on the bit-packed
  // AND+popcount core; stages with analog perturbations (or when false)
  // fall back to the scalar float reference path. Both paths are
  // bit-identical, so this is purely a speed switch.
  bool packed_eval = true;

  // Reliability provisioning (docs/reliability.md): fraction of each
  // crossbar's data rows reserved as spare physical rows for fault repair.
  // Spares live inside the same array — the per-crossbar row-budget check
  // accounts for them — and stay off until a repair remaps a row onto one.
  double spare_row_fraction = 0.0;

  /// Physical cells one signed weight occupies under this config's SEI
  /// mapping (bipolar: 2 polarities × bit-slices; unipolar: bit-slices).
  int cells_per_weight() const;
};

}  // namespace sei::core
