// Functional simulation of a full CNN on the SEI structure.
//
// Every hidden stage runs on mapped crossbars: per output, each row-block
// crossbar accumulates its analog partial sum, its sense amp compares
// against the block threshold (static share Thres/K plus the dynamic
// input-count compensation), and a digital vote merges the K bits. The
// final classifier stage sums its block currents and is read out by
// winner-take-all. The input layer is driven through `input_bits` DACs.
//
// Evaluation dispatch is compiled, not interpreted: construction (and
// every remap / fault / restore / engine switch) lowers the mapped layers
// into a CompiledPlan (core/plan.hpp) — engines and sub-kernels resolved
// per stage, explicit byte↔word converts, per-stage energy prices baked
// in, exact scratch bounds. try_predict runs the plan; the legacy
// per-stage dispatch remains available as the interpreter
// (set_plan_mode(false)) and is pinned bit-identical to the plan by
// tests/test_determinism.cpp.
#pragma once

#include <span>

#include "common/result.hpp"
#include "core/eval_context.hpp"
#include "core/mapping.hpp"
#include "core/plan.hpp"
#include "data/dataset.hpp"

namespace sei::core {

class SeiNetwork {
 public:
  /// Rows per switched sub-crossbar input word. The paper's Table 1 groups
  /// a 3x3 binary kernel window's 9 inputs into one "input data" word and
  /// gates the matching 9 crossbar rows together; the sparsity predicate
  /// (set_skip_bounds) decides per word, never per row.
  static constexpr int kWordRows = 9;

  /// Maps every stage of `qnet` with default row orders (homogenized where
  /// the stage splits, per cfg). Keeps a reference to `qnet` for remapping —
  /// the QNetwork must outlive the SeiNetwork. `hook` (optional) is the
  /// post-programming maintenance pass applied to every crossbar — the
  /// reliability subsystem's diagnose/repair loop — and is reused whenever
  /// a stage is remapped.
  SeiNetwork(const quant::QNetwork& qnet, const HardwareConfig& cfg,
             CrossbarHook hook = {});

  int stage_count() const { return static_cast<int>(layers_.size()); }
  MappedLayer& layer(int stage) { return layers_.at(static_cast<std::size_t>(stage)); }
  const MappedLayer& layer(int stage) const {
    return layers_.at(static_cast<std::size_t>(stage));
  }
  const HardwareConfig& config() const { return cfg_; }

  /// Re-maps one stage with an explicit logical row order (fresh crossbars,
  /// fresh programming randomness) — the Table 4 random-order experiment.
  /// Recompiles the plan.
  void remap_layer(int stage, const std::vector<int>& order);

  /// Rebuilds stage `stage`'s packed decomposition from its current `eff`
  /// — required after any external mutation of the effective weights
  /// (fault injection, checkpoint restore), exactly like remap does
  /// internally. Call rebuild_plan() after the last touched stage.
  void rebuild_packed(int stage);

  /// Recompiles the execution plan from the current layers, config, engine
  /// switch, and meter, and bumps the plan epoch. Callers that mutate
  /// mapped state directly (apply_fault, load_checkpoint) must call this
  /// once they are done. Bound contexts re-bind lazily on their next
  /// prepare() if (and only if) the new scratch bounds outgrew them.
  void rebuild_plan();

  /// The compiled program driving try_predict (diagnostics, benches, docs).
  const CompiledPlan& plan() const { return plan_; }

  /// Plan executor on/off (default on). Off runs the retained per-stage
  /// interpreter — the reference the equivalence suite compares against.
  /// Both produce bit-identical results; this only trades dispatch cost.
  void set_plan_mode(bool on) { plan_mode_ = on; }
  bool plan_mode() const { return plan_mode_; }

  /// Ensures `ctx`'s bound capacity covers the current plan (one arena
  /// allocation on first use; free afterwards — binding is capacity-based,
  /// so a context hops between same-geometry fleet replicas without ever
  /// re-binding). Called by try_predict — exposed so serving warmup can
  /// pre-bind contexts.
  void prepare(EvalContext& ctx) const;

  /// Attaches a per-stage energy price list (arch::make_energy_meter). The
  /// batch entry points below then charge every evaluated stage and publish
  /// the chunk totals to the global metrics registry under path
  /// "sei_batch"; single-image callers attach the meter to their own
  /// EvalContext instead. The meter must outlive the network. nullptr
  /// detaches. Rebuilds the plan (prices are baked into the ops).
  void set_meter(const telemetry::EnergyMeter* meter) {
    meter_ = meter;
    rebuild_plan();
  }
  const telemetry::EnergyMeter* meter() const { return meter_; }

  /// Per-stage sparsity skip bounds (docs/sparsity.md). Empty (the
  /// default) turns the sparsity engine off — the exact pre-sparsity
  /// behavior, zero new work on the hot path. Non-empty enables the skip
  /// predicate at the paper's sub-crossbar granularity: a stage's input
  /// rows group into 9-row words (kWordRows, Table 1), and a word whose
  /// selected-input count is <= bounds[stage] is switched off — masked out
  /// of the input window before accumulation, so its rows are never driven
  /// and every engine (scalar oracle included) sees the identical reduced
  /// input. Every SEI stage then switches to activation-proportional
  /// per-row energy charging. Missing entries read as bound 0; stage 0 is
  /// always exempt (DAC-driven rows have no transmission gates to switch
  /// off). At bound 0 only all-zero words mask, which changes no input
  /// bit, so predictions, noise draws and votes stay bit-identical to the
  /// dense path. Recompiles the plan.
  void set_skip_bounds(std::vector<int> bounds) {
    skip_bounds_ = std::move(bounds);
    rebuild_plan();
  }
  const std::vector<int>& skip_bounds() const { return skip_bounds_; }
  bool sparsity_enabled() const { return !skip_bounds_.empty(); }

  /// Engine switch (initialized from cfg.packed_eval): when on, stages with
  /// a valid integer decomposition run the bit-packed AND+popcount core;
  /// when off, everything runs the scalar reference path. Both produce
  /// bit-identical results (docs/kernels.md) — this only trades speed.
  /// Recompiles the plan.
  void set_packed_eval(bool on) {
    packed_eval_ = on;
    rebuild_plan();
  }
  bool packed_eval() const { return packed_eval_; }

  /// Number of stages whose packed decomposition is usable (stage 0 also
  /// needs the dense-DAC exactness bound). Diagnostics/benchmarks only.
  int packed_stage_count() const;

  /// Classifies one image (convenience wrapper: fresh context, stream 0).
  int predict(std::span<const float> image) const;

  /// Classifies one image using the caller's context. `image_index` keys
  /// the counter-based read-noise streams: the result is a pure function of
  /// (network, image, image_index) — two calls with the same index see the
  /// same noise draws no matter what ran in between or on which thread.
  int predict(std::span<const float> image, EvalContext& ctx,
              long long image_index = 0) const;

  /// Structured-error variant for the serving path: when ctx.cancel is set,
  /// the token is checked between stages and an expired one yields
  /// Error{kCancelled/kDeadlineExceeded} instead of a label. A completed
  /// prediction is bit-identical to predict() with the same index.
  Result<int> try_predict(std::span<const float> image, EvalContext& ctx,
                          long long image_index = 0) const;

  /// Classification error in percent. `max_images` < 0 means all. Images
  /// are evaluated in parallel on the default exec pool; per-image RNG
  /// streams keep the result bit-identical at any thread count.
  double error_rate(const data::Dataset& d, int max_images = -1) const;

  /// Binary activations entering `stage` (i.e. output of stage-1) for every
  /// image of `d` — lets split experiments re-evaluate only the tail.
  std::vector<quant::BitMap> cache_stage_inputs(const data::Dataset& d,
                                                int stage,
                                                int max_images = -1) const;

  /// Error rate evaluating only stages `stage`..end from cached inputs.
  double error_rate_from(const data::Dataset& d, int stage,
                         const std::vector<quant::BitMap>& inputs) const;

  /// Total crossbars / cells across all stages (physical accounting).
  int total_crossbars() const;
  long long total_cells() const;

 private:
  /// Pre-threshold block evaluation of one stage at every output position.
  /// `bits_out` receives the post-vote (post-pool) activations for hidden
  /// stages; `scores` the classifier sums for the final stage. Scratch and
  /// read noise come from `ctx`.
  /// `skip_bound` is the op's resolved sparsity bound (core/plan.hpp):
  /// < 0 runs the pre-sparsity fast path; >= 0 applies the skip predicate
  /// and maintains ctx's per-stage sparsity counters.
  void eval_stage_bits(const MappedLayer& m, const quant::BitMap& in,
                       quant::BitMap& bits_out, std::vector<float>& scores,
                       EvalContext& ctx, int skip_bound) const;
  void eval_stage_float(const MappedLayer& m, std::span<const float> in,
                        quant::BitMap& bits_out, std::vector<float>& scores,
                        EvalContext& ctx) const;

  /// Bit-packed engines (core/bitpack): `eval_stage_packed` is the hidden/
  /// classifier stage on packed words; `eval_stage_dac` the stage-0 variant
  /// that caches the DAC output once per image and accumulates densely.
  /// The sub-kernel is resolved at plan-compile time (core/plan.cpp); the
  /// interpreter re-derives it per call via select_*_kernel.
  void eval_stage_packed(const MappedLayer& m, PackedKernel kern,
                         const quant::PackedBits& in,
                         quant::PackedBits& bits_out,
                         std::vector<float>& scores, EvalContext& ctx,
                         int skip_bound) const;
  void eval_stage_dac(const MappedLayer& m, DacKernel kern,
                      std::span<const float> in, quant::PackedBits& bits_out,
                      std::vector<float>& scores, EvalContext& ctx) const;

  /// Interpreter step: runs stage `i` on ctx's live activations (`image`
  /// feeds stage 0 only), re-deriving the engine per call. `packed_live`
  /// is the caller-tracked live activation form (word vs byte).
  void eval_stage(std::size_t i, std::span<const float> image,
                  EvalContext& ctx, bool& packed_live) const;

  /// Plan executor: flat op walk, engines and converts pre-resolved.
  Result<int> run_plan(std::span<const float> image, EvalContext& ctx,
                       long long image_index) const;

  /// Charges one completed stage: per activated row when the op ran with
  /// the sparsity predicate (charge_stage_rows — one implementation, so
  /// interpreter and plan energies are bit-equal), else the baked plan
  /// price when the context meters against the plan's meter, dynamic
  /// charge_stage otherwise.
  void charge(const StageOp& op, EvalContext& ctx) const;

  /// Stage `i`'s resolved skip bound, read from the always-compiled plan —
  /// compile_plan owns the policy, so the interpreter cannot disagree with
  /// the executor on where the predicate applies.
  int op_skip_bound(std::size_t i) const {
    return i < plan_.ops.size() ? plan_.ops[i].skip_bound : -1;
  }

  /// Applies the skip predicate to one position's packed input window in
  /// place: walks the 9-row input words (kWordRows), clears words whose
  /// popcount is <= skip_bound, and updates ctx's sparsity counters and
  /// the optional activity histogram cell. Shared by every packed kernel;
  /// the scalar oracle applies the identical predicate via its per-word
  /// selected-input counts (mask_window_counts).
  void mask_window_words(int rows, int skip_bound, std::uint64_t* window,
                         EvalContext& ctx) const;

  /// Scalar twin of mask_window_words: the same predicate and counter
  /// updates driven by per-word selected-input counts (ctx.word_active)
  /// instead of a packed window. Returns via `counts` which words
  /// survive: a masked word's count is set to -1.
  void mask_window_counts(int rows, int skip_bound, int* counts,
                          EvalContext& ctx) const;

  /// Classifier readout: merges one position's block currents into scores.
  void merge_classifier(const MappedLayer& m, std::vector<float>& scores,
                        EvalContext& ctx) const;

  /// Threshold decision + OR-pool over the accumulated block sums of one
  /// position row; shared by both eval paths.
  void decide_position(const MappedLayer& m, const double* block_sums,
                       const int* n_active, std::uint8_t* out_bits,
                       Rng& rng) const;

  /// Per-read analog noise on a block's column current (the crossbar's
  /// read_noise_sigma applies at every sense-amp / readout event).
  double readout(double current, Rng& rng) const;

  /// Read-noise stream for one stage of one image: counter-based, derived
  /// only from (cfg.seed, image_index, stage). Evaluating stages `s..end`
  /// from cached inputs therefore replays exactly the draws a full predict
  /// would make — error_rate_from matches error_rate even under noise.
  Rng stage_stream(long long image_index, int stage) const;

  const quant::QNetwork* qnet_;
  HardwareConfig cfg_;
  // The mapping/programming stream is separate from the read-noise streams:
  // the programmed state of a (re)mapped stage is reproducible from
  // cfg.seed regardless of how many noisy reads happened before — and
  // sweeping read_noise_sigma cannot perturb the programmed weights across
  // campaign trials. Read noise is not a member at all: per-(image, stage)
  // streams are forked on demand (see stage_stream), so evaluation order
  // and thread count cannot leak into any result.
  Rng map_rng_;
  std::uint64_t read_seed_;
  CrossbarHook hook_;
  std::vector<MappedLayer> layers_;
  const telemetry::EnergyMeter* meter_ = nullptr;
  std::vector<int> skip_bounds_;  // empty: sparsity off (docs/sparsity.md)
  bool packed_eval_ = true;
  bool plan_mode_ = true;
  CompiledPlan plan_;
  std::uint64_t plan_epoch_ = 0;
};

}  // namespace sei::core
