// Single source of truth for the SIMD capability gates of the packed
// engines. Kernel *selection* now happens at plan-compile time
// (core/plan.cpp) while the kernels themselves live in core/sei_network.cpp
// and core/bitpack.cpp — both must agree, at compile time, on which kernels
// exist in this build, so the gate lives here instead of being re-declared
// per translation unit.
#pragma once

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__) && \
    defined(__AVX512VPOPCNTDQ__)
#include <immintrin.h>
#define SEI_CORE_AVX512 1
#endif
#if !defined(SEI_CORE_AVX512) && defined(__BMI2__)
#include <immintrin.h>
#endif

namespace sei::core {

/// True when the AVX-512 packed kernels (batch-of-8, int16 compare,
/// conv0_tile, decide_append_fast) are compiled into this binary.
/// SEI_NATIVE=OFF builds are false and take the portable fallbacks.
#ifdef SEI_CORE_AVX512
inline constexpr bool kHaveAvx512 = true;
#else
inline constexpr bool kHaveAvx512 = false;
#endif

}  // namespace sei::core
