// Logical-to-physical weight mapping for the SEI structure (Sections 4.1/4.2).
//
// A signed `weight_bits` weight w is quantized to an integer and mapped onto
// `cells_per_weight` cells in ONE crossbar column:
//
//  * kBipolarPort: physical input lines per logical input carry the port
//    coefficients {+2^d, +1, −2^d, −1} (d = device bits). The cells on the
//    positive lines hold the high/low nibbles of |w| when w ≥ 0 (else 0),
//    and symmetrically for the negative lines. The analog column current is
//    then Σ_selected (16·hi + lo)·sign = Σ_selected w — the "shift and add"
//    and the sign merge happen inside the crossbar, with no ADC (Equ. 5→6).
//
//  * kUnipolarDynThresh: w* = w + w0 (w0 = 2^(weight_bits−1) − 1) makes all
//    stored values positive; lines carry {+2^d, +1} only. An extra RRAM
//    column stores w0 per logical row and is selected by the same inputs, so
//    its current is exactly the dynamic part of the threshold,
//    Σ_selected w0 (Equ. 7–9 and Fig. 4).
//
// Large matrices are split into row blocks (Section 4.3); each block is its
// own crossbar thresholded at Thres/K (plus the dynamic compensation), and a
// digital vote combines the K bits.
#pragma once

#include <functional>
#include <vector>

#include "core/bitpack.hpp"
#include "core/structure.hpp"
#include "quant/qnet.hpp"
#include "quant/weight_quant.hpp"
#include "split/partition.hpp"

namespace sei::core {

/// One stage of the network mapped onto physical crossbars, reduced to the
/// effective analog values needed for fast functional simulation.
struct MappedLayer {
  quant::StageGeometry geom;

  // Effective signed analog weight per (logical row, col), in integer-weight
  // units, after device quantization, programming variation and stuck
  // faults. For an ideal device this equals the quantized integer weight.
  std::vector<float> eff;  // [rows × cols]

  float weight_scale = 1.0f;  // float weight ≈ eff · weight_scale

  // Per-column sense-amp reference in integer-weight units:
  // T_c = (threshold − bias_c) / weight_scale (bias folded in, Equ. 6).
  std::vector<float> col_threshold;

  // Static SA offset mismatch per (block, column) instance, added to that
  // SA's share of the reference; empty when sa_offset_sigma == 0.
  std::vector<float> sa_offset;  // [block × cols]

  // Final (classifier) stage only: float bias for score reconstruction.
  std::vector<float> col_bias;
  bool binarize = true;

  // Splitting state.
  split::Partition partition;
  std::vector<int> row_to_block;  // logical row → block id
  int block_count = 1;
  int vote_threshold = 1;    // digital vote: output = (Σ block bits ≥ vote)
  float dyn_beta = 0.0f;     // threshold slope vs. block active-input count
  float mean_abs_eff = 0.0f; // scale for dyn_beta (dimensionless β)

  // Bit-packed AND+popcount decomposition of `eff` (docs/kernels.md);
  // packed.valid is false when analog perturbations made any value
  // non-integral, in which case evaluation uses the scalar path.
  PackedStage packed;

  // Physical accounting (for reports/tests).
  int physical_rows_per_weight = 1;
  long long cells_used = 0;        // includes reserved spare-row cells
  long long spare_cells = 0;       // spare-row cells inside cells_used
  int crossbars = 0;
  double misprogrammed_fraction = 0.0;

  float effective(int r, int c) const {
    return eff[static_cast<std::size_t>(r) * geom.cols + c];
  }
};

/// Maintenance pass applied to every freshly programmed (and aged) crossbar
/// before its cells are reduced to effective values — the reliability
/// subsystem's diagnose/repair loop plugs in here without core depending on
/// it. The Rng is the mapping stream, so hook randomness is reproducible
/// from HardwareConfig::seed.
using CrossbarHook = std::function<void(rram::Crossbar&, Rng&)>;

/// Maps one quantized stage given a logical row order (the order's
/// contiguous chunks become the crossbar blocks). Builds real
/// rram::Crossbar instances, programs them cell by cell, ages them by
/// cfg.device.drift_t_s, applies `hook` (if any), and extracts the
/// effective analog values.
MappedLayer map_layer(const quant::QLayer& layer, const HardwareConfig& cfg,
                      const std::vector<int>& row_order, Rng& rng,
                      const CrossbarHook& hook = {});

/// Builds the physical crossbars for one block without reducing them —
/// exposed for unit tests and the micro benches.
std::vector<rram::Crossbar> build_block_crossbars(
    const quant::QuantizedMatrix& q, const HardwareConfig& cfg,
    const split::Partition& partition, Rng& rng);

/// Port coefficients for the physical lines of one logical input.
std::vector<double> port_coefficients(const HardwareConfig& cfg);

/// Column groups a matrix with `cols` outputs needs under cfg's crossbar
/// width (columns partition freely — each group owns disjoint outputs, so
/// the column direction never needs merging).
int column_blocks(int cols, const HardwareConfig& cfg);

/// Row order used by default for a stage: homogenized if the stage splits
/// and cfg.homogenize is set, natural otherwise.
std::vector<int> default_row_order(const quant::QLayer& layer,
                                   const HardwareConfig& cfg);

}  // namespace sei::core
