// Per-image evaluation state for the functional simulators.
//
// A context bundles the read-noise RNG stream with every scratch buffer one
// image evaluation needs, so that batch loops can hand each worker its own
// context and share nothing mutable. Combined with the counter-based
// per-(image, stage) RNG streams (docs/parallelism.md), this makes every
// prediction a pure function of (network state, image, image_index) —
// independent of thread count and of the order images are evaluated in.
//
// Scratch lives behind Scratch<T> spans carved from one arena: bind() sizes
// the arena to a compiled plan's exact high-water marks (core/plan.hpp), so
// a bound context performs no heap allocation per request — the serving
// runtimes' zero-alloc contract (docs/plans.md §4). An unbound context
// falls back to owned vectors and simply allocates on first use, which is
// fine everywhere off the serving hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/arena.hpp"
#include "core/plan.hpp"
#include "exec/cancel.hpp"
#include "quant/bitpack.hpp"
#include "quant/qnet.hpp"
#include "telemetry/energy.hpp"

namespace sei::core {

struct EvalContext {
  /// Read-noise stream of the stage currently being evaluated; the engines
  /// re-derive it per (image_index, stage) via Rng::fork.
  Rng rng{0};

  /// Optional cooperative cancel/deadline token. try_predict checks it
  /// between stages and returns Error instead of finishing; the throwing
  /// predict() entry points require it to be unset. Does not influence the
  /// computed result — a completed prediction is bit-identical with or
  /// without a token attached.
  const exec::CancelToken* cancel = nullptr;

  /// Optional live energy metering: when both are set, the engines charge
  /// each completed stage's cost-model price (arch::make_energy_meter) into
  /// `energy`. Passive observation only — never influences the prediction.
  const telemetry::EnergyMeter* meter = nullptr;
  telemetry::EnergyAccum* energy = nullptr;

  /// Per-stage sparsity counters (docs/sparsity.md), reset by each engine
  /// at stage entry and valid after it returns. Only populated when the
  /// stage op runs with skip_bound >= 0; the pre-sparsity fast path leaves
  /// them at the previous stage's values. All deterministic functions of
  /// (network, image) — never of thread count or evaluation order.
  std::int64_t sp_rows = 0;     // row-activations actually driven (charged)
  std::int64_t sp_nominal = 0;  // positions x rows the static table assumed
  std::int64_t sp_words = 0;    // (position, 9-row input word) decisions
  std::int64_t sp_skipped = 0;  // of those, masked off by the bound

  /// Optional activity histogram sink: when set and a stage runs with
  /// skip_bound >= 0, the engine also records each (position, input word)
  /// selected-input count into this estimator cell (sparsity subsystem).
  /// Indexed by stage by the caller; passive observation only.
  struct StageActivity {
    std::int64_t positions = 0;      // crossbar activations observed
    std::int64_t words = 0;          // (position, input word) decisions
    std::int64_t words_skipped = 0;  // masked off by the bound
    std::int64_t rows_nominal = 0;   // positions x rows
    std::int64_t rows_active = 0;    // sum of selected-input counts
    std::int64_t rows_charged = 0;   // active rows in non-masked words
    // Histogram of per-word selected-input counts: bin p counts 9-row
    // input words carrying exactly p ones (0..9) — the runtime twin of
    // the paper's Table 1 distribution. Bin 10 is unused (kept so the
    // array also fits decile-style consumers).
    std::int64_t hist[11] = {0};

    void merge(const StageActivity& o) {
      positions += o.positions;
      words += o.words;
      words_skipped += o.words_skipped;
      rows_nominal += o.rows_nominal;
      rows_active += o.rows_active;
      rows_charged += o.rows_charged;
      for (int i = 0; i < 11; ++i) hist[i] += o.hist[i];
    }
  };
  StageActivity* activity = nullptr;      // caller array, one cell per stage
  StageActivity* cur_activity = nullptr;  // set by dispatch: activity + stage

  // SEI scratch.
  Scratch<double> block_sums;  // per-(block, col) partial sums
  Scratch<int> n_active;       // active inputs per block

  // Scalar-path sparsity scratch: per-position selected-input count of each
  // 9-row input word, used to apply the word-masking predicate without
  // packing the window (sei_network.cpp eval_stage_bits).
  std::vector<int> word_active;

  // ADC scratch.
  Scratch<double> plane_sums;        // per-(plane, block, col) partial sums
  Scratch<double> merged;            // digital shifter/adder merge
  std::vector<double> observed_max;  // calibration only — cold path

  // Shared inter/intra-stage activation buffers. These stay std::vector /
  // quant types (they swap between stages and copy out of the engines);
  // bind() reserves them to the plan's bounds so steady-state resizes and
  // copies never reallocate.
  quant::BitMap stage_bits;   // pre-pool bits of the current stage
  quant::BitMap pooled_bits;  // post-pool output of the current stage
  quant::BitMap bits;         // activations entering the current stage
  std::vector<float> scores;  // classifier scores

  // Bit-packed engine scratch (core/bitpack). The live activation form
  // (bytes vs packed words) is static per stage in a compiled plan — the
  // plan inserts explicit convert ops, and the interpreter tracks the form
  // in a local, so the context carries no `packed_live` flag.
  quant::PackedBits packed_bits;    // packed activations entering a stage
  quant::PackedBits packed_stage;   // pre-pool packed bits
  quant::PackedBits packed_pooled;  // post-pool packed output
  Scratch<std::uint64_t> window;    // packed conv window gather
  Scratch<float> dac_vals;    // stage-0 DAC output, cached per image
  Scratch<double> dac_d;      // dac_vals widened once per image
  Scratch<std::uint8_t> pos_bits;  // one position's column bits
  Scratch<double> pos_sums;   // stage-0 transpose/scatter: sums per position
  Scratch<int> pos_active;    // stage-0 scatter: n_active per position
  Scratch<std::uint64_t> col_cmp;   // stage-0 bulk compare bits per column
  Scratch<std::uint64_t> col_pool;  // stage-0 pooled per-column bits
  Scratch<std::uint64_t> lw8;       // batch-of-8 block-local windows
  Scratch<std::int32_t> nact8;      // batch-of-8 active counts
  Scratch<double> sums8;            // batch-of-8 block sums

  /// Binds every scratch buffer to `plan`'s exact bounds: one arena
  /// allocation, spans carved out, vectors reserved. Defined in
  /// core/plan.cpp.
  void bind(const ScratchPlan& plan);

  /// True when the bounds this context was last bound with cover `plan` —
  /// i.e. every buffer's capacity suffices, so evaluation will not allocate.
  /// Binding is capacity-based, not identity-based: one context serves any
  /// number of networks (fleet shards route adjacent requests to different
  /// replicas) as long as their bounds fit, and a plan rebuild with
  /// unchanged geometry triggers no re-bind at all.
  bool covers(const ScratchPlan& plan) const {
    return bound_has_value_ && bound_.covers(plan);
  }

 private:
  Arena arena_;
  ScratchPlan bound_;  // bounds of the last bind()
  bool bound_has_value_ = false;
};

}  // namespace sei::core
