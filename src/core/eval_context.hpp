// Per-image evaluation state for the functional simulators.
//
// A context bundles the read-noise RNG stream with every scratch buffer one
// image evaluation needs, so that batch loops can hand each worker its own
// context and share nothing mutable. Combined with the counter-based
// per-(image, stage) RNG streams (docs/parallelism.md), this makes every
// prediction a pure function of (network state, image, image_index) —
// independent of thread count and of the order images are evaluated in.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "exec/cancel.hpp"
#include "quant/bitpack.hpp"
#include "quant/qnet.hpp"
#include "telemetry/energy.hpp"

namespace sei::core {

struct EvalContext {
  /// Read-noise stream of the stage currently being evaluated; the engines
  /// re-derive it per (image_index, stage) via Rng::fork.
  Rng rng{0};

  /// Optional cooperative cancel/deadline token. try_predict checks it
  /// between stages and returns Error instead of finishing; the throwing
  /// predict() entry points require it to be unset. Does not influence the
  /// computed result — a completed prediction is bit-identical with or
  /// without a token attached.
  const exec::CancelToken* cancel = nullptr;

  /// Optional live energy metering: when both are set, the engines charge
  /// each completed stage's cost-model price (arch::make_energy_meter) into
  /// `energy`. Passive observation only — never influences the prediction.
  const telemetry::EnergyMeter* meter = nullptr;
  telemetry::EnergyAccum* energy = nullptr;

  // SEI scratch.
  std::vector<double> block_sums;  // per-(block, col) partial sums
  std::vector<int> n_active;       // active inputs per block

  // ADC scratch.
  std::vector<double> plane_sums;    // per-(plane, block, col) partial sums
  std::vector<double> merged;        // digital shifter/adder merge
  std::vector<double> observed_max;  // calibration: per-stage max current

  // Shared inter/intra-stage activation buffers.
  quant::BitMap stage_bits;   // pre-pool bits of the current stage
  quant::BitMap pooled_bits;  // post-pool output of the current stage
  quant::BitMap bits;         // activations entering the current stage
  std::vector<float> scores;  // classifier scores

  // Bit-packed engine scratch (core/bitpack). `packed_live` says whether
  // the live inter-stage activations sit in `packed_bits` (word form) or
  // `bits` (byte form) — stages convert lazily at engine boundaries.
  quant::PackedBits packed_bits;       // packed activations entering a stage
  quant::PackedBits packed_stage;      // pre-pool packed bits
  quant::PackedBits packed_pooled;     // post-pool packed output
  bool packed_live = false;
  std::vector<std::uint64_t> window;   // packed conv window gather
  std::vector<float> dac_vals;         // stage-0 DAC output, cached per image
  std::vector<double> dac_d;           // dac_vals widened once per image
  std::vector<std::uint8_t> pos_bits;  // one position's column bits
  std::vector<double> pos_sums;        // stage-0 scatter: sums per position
  std::vector<int> pos_active;         // stage-0 scatter: n_active per position
  std::vector<std::uint64_t> col_cmp;  // stage-0 bulk compare bits per column
  std::vector<std::uint64_t> col_pool; // stage-0 pooled per-column bits
  std::vector<std::uint64_t> lw8;      // batch-of-8 block-local windows
  std::vector<std::int32_t> nact8;     // batch-of-8 active counts
  std::vector<double> sums8;           // batch-of-8 block sums
};

}  // namespace sei::core
