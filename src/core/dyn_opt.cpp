#include "core/dyn_opt.hpp"

namespace sei::core {

DynThreshResult optimize_dynamic_threshold(SeiNetwork& net,
                                           const data::Dataset& train,
                                           const DynThreshConfig& cfg) {
  DynThreshResult result;
  for (int stage = 0; stage + 1 < net.stage_count(); ++stage) {
    MappedLayer& m = net.layer(stage);
    if (m.block_count < 2) continue;

    DynThreshChoice choice;
    choice.stage = stage;
    choice.block_count = m.block_count;

    // Inputs to this stage are fixed by earlier (already optimized) stages.
    // Stage 0 has no cached-bits form; fall back to full evaluation there.
    std::vector<quant::BitMap> inputs;
    const bool cached = stage >= 1;
    if (cached)
      inputs = net.cache_stage_inputs(train, stage, cfg.max_images);
    auto evaluate = [&]() {
      return cached ? net.error_rate_from(train, stage, inputs)
                    : net.error_rate(train, cfg.max_images);
    };

    choice.train_error_before_pct = evaluate();

    double best_err = 1e9;
    int best_vote = m.vote_threshold;
    double best_beta = 0.0;
    std::vector<int> votes;
    if (cfg.optimize_vote) {
      for (int v = 1; v <= m.block_count; ++v) votes.push_back(v);
    } else {
      votes.push_back(m.vote_threshold);
    }
    for (int v : votes) {
      for (double beta : cfg.beta_grid) {
        m.vote_threshold = v;
        m.dyn_beta = static_cast<float>(beta);
        const double err = evaluate();
        if (err < best_err) {
          best_err = err;
          best_vote = v;
          best_beta = beta;
        }
      }
    }
    m.vote_threshold = best_vote;
    m.dyn_beta = static_cast<float>(best_beta);
    choice.vote = best_vote;
    choice.beta = best_beta;
    choice.train_error_after_pct = best_err;
    result.choices.push_back(choice);
  }
  return result;
}

}  // namespace sei::core
