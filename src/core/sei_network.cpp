#include "core/sei_network.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/bitpack.hpp"
#include "exec/thread_pool.hpp"

// Vectorized noise-free threshold/vote decisions for the packed engine.
// Same doubles, same compares, same bits as decide_position — just eight
// columns per instruction. The scalar decide_position stays the reference
// (and the only path whenever read noise draws from the RNG). The AVX-512
// gate (SEI_CORE_AVX512) lives in simd_caps.hpp, shared with the plan
// compiler so kernel selection and kernel availability always agree.
#include "core/simd_caps.hpp"

namespace sei::core {

SeiNetwork::SeiNetwork(const quant::QNetwork& qnet, const HardwareConfig& cfg,
                       CrossbarHook hook)
    : qnet_(&qnet),
      cfg_(cfg),
      map_rng_(cfg.seed),
      read_seed_(cfg.seed ^ 0x9e3779b97f4a7c15ULL),
      hook_(std::move(hook)),
      packed_eval_(cfg.packed_eval) {
  SEI_CHECK(!qnet.layers.empty());
  layers_.reserve(qnet.layers.size());
  for (const quant::QLayer& l : qnet.layers) {
    const std::vector<int> order = default_row_order(l, cfg_);
    layers_.push_back(map_layer(l, cfg_, order, map_rng_, hook_));
  }
  rebuild_plan();
}

void SeiNetwork::remap_layer(int stage, const std::vector<int>& order) {
  SEI_CHECK(stage >= 0 && stage < stage_count());
  layers_[static_cast<std::size_t>(stage)] =
      map_layer(qnet_->layers[static_cast<std::size_t>(stage)], cfg_, order,
                map_rng_, hook_);
  rebuild_plan();
}

void SeiNetwork::rebuild_packed(int stage) {
  SEI_CHECK(stage >= 0 && stage < stage_count());
  MappedLayer& m = layers_[static_cast<std::size_t>(stage)];
  m.packed = build_packed_stage(m.eff, m.geom.rows, m.geom.cols,
                                m.row_to_block, m.block_count,
                                cfg_.input_bits);
}

void SeiNetwork::rebuild_plan() {
  plan_ = compile_plan(layers_, cfg_, packed_eval_, meter_,
                       skip_bounds_.empty() ? nullptr : &skip_bounds_);
  plan_.epoch = ++plan_epoch_;
}

void SeiNetwork::prepare(EvalContext& ctx) const {
  if (!ctx.covers(plan_.scratch)) ctx.bind(plan_.scratch);
}

Rng SeiNetwork::stage_stream(long long image_index, int stage) const {
  // Two-level fork: an image stream off read_seed_, then a per-stage
  // substream — both counter-based, so no draw count anywhere matters.
  return Rng::fork(
      Rng::stream_seed(read_seed_, static_cast<std::uint64_t>(image_index)),
      static_cast<std::uint64_t>(stage));
}

double SeiNetwork::readout(double current, Rng& rng) const {
  const double sigma = cfg_.device.read_noise_sigma;
  if (sigma <= 0.0) return current;
  return current * (1.0 + sigma * rng.gaussian());
}

void SeiNetwork::decide_position(const MappedLayer& m,
                                 const double* block_sums,
                                 const int* n_active,
                                 std::uint8_t* out_bits, Rng& rng) const {
  const int cols = m.geom.cols;
  const int k = m.block_count;
  const bool noisy = cfg_.device.read_noise_sigma > 0.0;
  const float* offsets = m.sa_offset.empty() ? nullptr : m.sa_offset.data();
  if (k == 1) {
    for (int c = 0; c < cols; ++c) {
      const double sum = noisy ? readout(block_sums[c], rng) : block_sums[c];
      const double ref =
          static_cast<double>(m.col_threshold[static_cast<std::size_t>(c)]) +
          (offsets ? offsets[c] : 0.0);
      out_bits[c] = sum > ref ? 1 : 0;
    }
    return;
  }
  int total_active = 0;
  for (int b = 0; b < k; ++b) total_active += n_active[b];
  const double mean_active = static_cast<double>(total_active) / k;
  const double beta_scale =
      static_cast<double>(m.dyn_beta) * m.mean_abs_eff;
  for (int c = 0; c < cols; ++c) {
    const double share =
        static_cast<double>(m.col_threshold[static_cast<std::size_t>(c)]) / k;
    int votes = 0;
    for (int b = 0; b < k; ++b) {
      const double t_b =
          share +
          beta_scale * (static_cast<double>(n_active[b]) - mean_active) +
          (offsets ? offsets[static_cast<std::size_t>(b) * cols + c] : 0.0);
      const double raw = block_sums[static_cast<std::size_t>(b) * cols + c];
      const double sum = noisy ? readout(raw, rng) : raw;
      if (sum > t_b) ++votes;
    }
    out_bits[c] = votes >= m.vote_threshold ? 1 : 0;
  }
}

void SeiNetwork::mask_window_words(int rows, int skip_bound,
                                   std::uint64_t* window,
                                   EvalContext& ctx) const {
  ctx.sp_nominal += rows;
  EvalContext::StageActivity* act = ctx.cur_activity;
  if (act) {
    ++act->positions;
    act->rows_nominal += rows;
  }
  // Walk the 9-row input words (the last one ragged when rows % 9 != 0).
  // A word straddles at most two u64s of the packed window.
  for (int r0 = 0; r0 < rows; r0 += kWordRows) {
    const int wr = std::min(kWordRows, rows - r0);
    const std::size_t wi = static_cast<std::size_t>(r0) >> 6;
    const int off = r0 & 63;
    std::uint64_t bits = window[wi] >> off;
    if (off + wr > 64) bits |= window[wi + 1] << (64 - off);
    bits &= (std::uint64_t{1} << wr) - 1;
    const int pc = std::popcount(bits);
    ++ctx.sp_words;
    if (act) {
      ++act->words;
      ++act->hist[pc];
      act->rows_active += pc;
    }
    if (pc <= skip_bound) {
      ++ctx.sp_skipped;
      if (act) ++act->words_skipped;
      if (pc > 0) {
        const int lo = std::min(wr, 64 - off);
        window[wi] &= ~(((std::uint64_t{1} << lo) - 1) << off);
        if (off + wr > 64)
          window[wi + 1] &= ~((std::uint64_t{1} << (off + wr - 64)) - 1);
      }
    } else {
      ctx.sp_rows += pc;
      if (act) act->rows_charged += pc;
    }
  }
}

void SeiNetwork::mask_window_counts(int rows, int skip_bound, int* counts,
                                    EvalContext& ctx) const {
  ctx.sp_nominal += rows;
  EvalContext::StageActivity* act = ctx.cur_activity;
  if (act) {
    ++act->positions;
    act->rows_nominal += rows;
  }
  const int nwords = (rows + kWordRows - 1) / kWordRows;
  for (int w = 0; w < nwords; ++w) {
    const int pc = counts[w];
    ++ctx.sp_words;
    if (act) {
      ++act->words;
      ++act->hist[pc];
      act->rows_active += pc;
    }
    if (pc <= skip_bound) {
      ++ctx.sp_skipped;
      if (act) ++act->words_skipped;
      counts[w] = -1;
    } else {
      ctx.sp_rows += pc;
      if (act) act->rows_charged += pc;
    }
  }
}

void SeiNetwork::eval_stage_bits(const MappedLayer& m, const quant::BitMap& in,
                                 quant::BitMap& bits_out,
                                 std::vector<float>& scores,
                                 EvalContext& ctx, int skip_bound) const {
  const quant::StageGeometry& g = m.geom;
  SEI_CHECK(in.size() == static_cast<std::size_t>(g.in_h) * g.in_w * g.in_ch);
  const int cols = g.cols, k = m.block_count;
  if (skip_bound >= 0)
    ctx.sp_rows = ctx.sp_nominal = ctx.sp_words = ctx.sp_skipped = 0;
  // Sized once here, zeroed per position below (they start each position
  // dirty with the previous position's sums).
  ctx.block_sums.resize(static_cast<std::size_t>(k) * cols);
  ctx.n_active.resize(static_cast<std::size_t>(k));

  const std::size_t positions = static_cast<std::size_t>(g.out_h) * g.out_w;
  if (m.binarize) ctx.stage_bits.assign(positions * cols, 0);
  else scores.assign(static_cast<std::size_t>(cols), 0.0f);

  const bool is_conv = g.kind == quant::StageSpec::Kind::Conv;
  const int span = is_conv ? g.kernel * g.in_ch : g.rows;

  for (int y = 0; y < g.out_h; ++y) {
    for (int x = 0; x < g.out_w; ++x) {
      std::fill(ctx.block_sums.begin(), ctx.block_sums.end(), 0.0);
      std::fill(ctx.n_active.begin(), ctx.n_active.end(), 0);
      const int window_rows = is_conv ? g.kernel : 1;
      // Sparsity pre-pass: count each 9-row input word's selected inputs,
      // apply the skip predicate, and drop masked words from the walk
      // below. The masked rows are never driven, so n_active, sums, votes
      // and the RNG draw sequence all see the identical reduced input the
      // packed engines see (they clear the same window bits).
      const int* wa = nullptr;
      if (skip_bound >= 0) {
        const int nwords = (g.rows + kWordRows - 1) / kWordRows;
        ctx.word_active.assign(static_cast<std::size_t>(nwords), 0);
        for (int di = 0; di < window_rows; ++di) {
          const std::uint8_t* in_px =
              is_conv ? in.data() + (static_cast<std::size_t>(y + di) *
                                         g.in_w + x) * g.in_ch
                      : in.data();
          const int r0 = di * span;
          for (int t = 0; t < span; ++t)
            if (in_px[t])
              ++ctx.word_active[static_cast<std::size_t>(r0 + t) / kWordRows];
        }
        mask_window_counts(g.rows, skip_bound, ctx.word_active.data(), ctx);
        wa = ctx.word_active.data();
      }
      for (int di = 0; di < window_rows; ++di) {
        const std::uint8_t* in_px =
            is_conv ? in.data() + (static_cast<std::size_t>(y + di) * g.in_w +
                                   x) * g.in_ch
                    : in.data();
        const int r0 = di * span;
        for (int t = 0; t < span; ++t) {
          if (!in_px[t]) continue;
          const int r = r0 + t;
          if (wa && wa[r / kWordRows] < 0) continue;
          const int b = m.row_to_block[static_cast<std::size_t>(r)];
          ++ctx.n_active[static_cast<std::size_t>(b)];
          const float* wrow =
              m.eff.data() + static_cast<std::size_t>(r) * cols;
          double* sums = ctx.block_sums.data() +
                         static_cast<std::size_t>(b) * cols;
          for (int c = 0; c < cols; ++c) sums[c] += wrow[c];
        }
      }
      if (m.binarize) {
        decide_position(
            m, ctx.block_sums.data(), ctx.n_active.data(),
            ctx.stage_bits.data() +
                (static_cast<std::size_t>(y) * g.out_w + x) * cols,
            ctx.rng);
      } else {
        merge_classifier(m, scores, ctx);
      }
    }
  }

  if (m.binarize) {
    if (g.pool_after)
      or_pool_bytes(ctx.stage_bits, g.out_h, g.out_w, cols, bits_out);
    else
      bits_out = ctx.stage_bits;
  }
}

void SeiNetwork::eval_stage_float(const MappedLayer& m,
                                  std::span<const float> in,
                                  quant::BitMap& bits_out,
                                  std::vector<float>& scores,
                                  EvalContext& ctx) const {
  const quant::StageGeometry& g = m.geom;
  SEI_CHECK(in.size() == static_cast<std::size_t>(g.in_h) * g.in_w * g.in_ch);
  const int cols = g.cols, k = m.block_count;
  ctx.block_sums.resize(static_cast<std::size_t>(k) * cols);
  ctx.n_active.resize(static_cast<std::size_t>(k));

  const std::size_t positions = static_cast<std::size_t>(g.out_h) * g.out_w;
  if (m.binarize) ctx.stage_bits.assign(positions * cols, 0);
  else scores.assign(static_cast<std::size_t>(cols), 0.0f);

  const bool is_conv = g.kind == quant::StageSpec::Kind::Conv;
  const int span = is_conv ? g.kernel * g.in_ch : g.rows;

  for (int y = 0; y < g.out_h; ++y) {
    for (int x = 0; x < g.out_w; ++x) {
      std::fill(ctx.block_sums.begin(), ctx.block_sums.end(), 0.0);
      std::fill(ctx.n_active.begin(), ctx.n_active.end(), 0);
      const int window_rows = is_conv ? g.kernel : 1;
      for (int di = 0; di < window_rows; ++di) {
        const float* in_px =
            is_conv ? in.data() + (static_cast<std::size_t>(y + di) * g.in_w +
                                   x) * g.in_ch
                    : in.data();
        const int r0 = di * span;
        for (int t = 0; t < span; ++t) {
          const float xq = dac_quantize(in_px[t], cfg_.input_bits);
          if (xq == 0.0f) continue;
          const int r = r0 + t;
          const int b = m.row_to_block[static_cast<std::size_t>(r)];
          ++ctx.n_active[static_cast<std::size_t>(b)];
          const float* wrow =
              m.eff.data() + static_cast<std::size_t>(r) * cols;
          double* sums = ctx.block_sums.data() +
                         static_cast<std::size_t>(b) * cols;
          for (int c = 0; c < cols; ++c)
            sums[c] += static_cast<double>(xq) * wrow[c];
        }
      }
      if (m.binarize) {
        decide_position(
            m, ctx.block_sums.data(), ctx.n_active.data(),
            ctx.stage_bits.data() +
                (static_cast<std::size_t>(y) * g.out_w + x) * cols,
            ctx.rng);
      } else {
        merge_classifier(m, scores, ctx);
      }
    }
  }

  if (m.binarize) {
    if (g.pool_after)
      or_pool_bytes(ctx.stage_bits, g.out_h, g.out_w, cols, bits_out);
    else
      bits_out = ctx.stage_bits;
  }
}

void SeiNetwork::merge_classifier(const MappedLayer& m,
                                  std::vector<float>& scores,
                                  EvalContext& ctx) const {
  // Classifier: block currents merge exactly (WTA readout).
  const int cols = m.geom.cols;
  const int k = m.block_count;
  for (int c = 0; c < cols; ++c) {
    double s = 0.0;
    for (int b = 0; b < k; ++b)
      s += readout(ctx.block_sums[static_cast<std::size_t>(b) * cols + c],
                   ctx.rng);
    scores[static_cast<std::size_t>(c)] +=
        static_cast<float>(s * m.weight_scale) +
        m.col_bias[static_cast<std::size_t>(c)];
  }
}

namespace {

/// Transposes an 8×8 bit matrix (byte i, bit j) → (byte j, bit i).
inline std::uint64_t transpose8x8(std::uint64_t x) {
  std::uint64_t t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
  x ^= t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
  x ^= t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
  x ^= t ^ (t << 28);
  return x;
}

/// Keeps the even-index bits of `t` (low 2n bits), compacted to n bits:
/// the horizontal half of a 2×2 OR-pool on a row of position bits.
inline std::uint64_t compact_even_bits(std::uint64_t t, int n) {
#if defined(__BMI2__)
  return _pext_u64(t, 0x5555555555555555ull) &
         ((std::uint64_t{1} << n) - 1u);
#else
  std::uint64_t w = 0;
  for (int x = 0; x < n; ++x) w |= ((t >> (2 * x)) & 1u) << x;
  return w;
#endif
}

/// Packs byte p's low `cols` bits (cols ≤ 8) of a transposed word into
/// contiguous cols-bit groups — eight positions' output bits as one word.
inline std::uint64_t pack_pos_bytes(std::uint64_t t, int cols) {
#if defined(__BMI2__)
  const std::uint64_t m =
      0x0101010101010101ull * ((std::uint64_t{1} << cols) - 1u);
  return _pext_u64(t, m);
#else
  const std::uint64_t m = (std::uint64_t{1} << cols) - 1u;
  std::uint64_t w = 0;
  for (int p = 0; p < 8; ++p) w |= ((t >> (8 * p)) & m) << (p * cols);
  return w;
#endif
}

/// Packs one position's 0/1 column bytes onto the end of `writer`.
void append_position_bits(BitWriter& writer, const std::uint8_t* bits,
                          int cols) {
  for (int off = 0; off < cols; off += 64) {
    const int n = std::min(64, cols - off);
    std::uint64_t word = 0;
    for (int j = 0; j < n; ++j)
      word |= static_cast<std::uint64_t>(bits[off + j]) << j;
    writer.append(word, n);
  }
}

#ifdef SEI_CORE_AVX512

/// Stage-0 register-tiled direct convolution into [col][position] sums.
/// K is a compile-time constant so the tap nest fully unrolls; dual
/// accumulators break the FMA latency chain. Any accumulation order is
/// bit-identical under the dac_exact bound (every partial sum is exact).
template <int K>
void conv0_tile(const double* img, int in_w, int out_h, int out_w,
                const float* eff, int cols, double* pos_sums,
                std::size_t positions) {
  __m512d wv[K * K];
  for (int c = 0; c < cols; ++c) {
    // Broadcast the K² taps once per column — for K=3 they stay resident
    // in registers across every position strip.
    for (int t = 0; t < K * K; ++t)
      wv[t] = _mm512_set1_pd(static_cast<double>(
          eff[static_cast<std::size_t>(t) * cols + c]));
    double* dst = pos_sums + static_cast<std::size_t>(c) * positions;
    for (int y = 0; y < out_h; ++y) {
      double* dr = dst + static_cast<std::size_t>(y) * out_w;
      const double* srow = img + static_cast<std::size_t>(y) * in_w;
      for (int x = 0; x < out_w; x += 8) {
        const int n = std::min(8, out_w - x);
        const __mmask8 mk = static_cast<__mmask8>((1u << n) - 1u);
        __m512d acc0 = _mm512_setzero_pd();
        __m512d acc1 = _mm512_setzero_pd();
        for (int di = 0; di < K; ++di) {
          const double* sr = srow + static_cast<std::size_t>(di) * in_w + x;
          const __m512d* wr = wv + di * K;
          int dj = 0;
          for (; dj + 1 < K; dj += 2) {
            acc0 = _mm512_fmadd_pd(wr[dj],
                                   _mm512_maskz_loadu_pd(mk, sr + dj), acc0);
            acc1 = _mm512_fmadd_pd(wr[dj + 1],
                                   _mm512_maskz_loadu_pd(mk, sr + dj + 1),
                                   acc1);
          }
          if (dj < K)
            acc0 = _mm512_fmadd_pd(wr[dj],
                                   _mm512_maskz_loadu_pd(mk, sr + dj), acc0);
        }
        _mm512_mask_storeu_pd(dr + x, mk, _mm512_add_pd(acc0, acc1));
      }
    }
  }
}

/// decide_position + append_position_bits fused, for the noise-free packed
/// path: the compare masks ARE the output bits. Threshold expressions
/// mirror decide_position's operation order exactly, so every compare sees
/// the same double on both sides.
void decide_append_fast(const MappedLayer& m, const double* block_sums,
                        const int* n_active, BitWriter& writer) {
  const int cols = m.geom.cols, k = m.block_count;
  const float* ct = m.col_threshold.data();
  const float* offsets = m.sa_offset.empty() ? nullptr : m.sa_offset.data();
  if (k == 1) {
    for (int cg = 0; cg < cols; cg += 8) {
      const int n = std::min(8, cols - cg);
      const __mmask8 lm = static_cast<__mmask8>((1u << n) - 1u);
      __m512d ref = _mm512_cvtps_pd(_mm256_maskz_loadu_ps(lm, ct + cg));
      if (offsets)
        ref = _mm512_add_pd(
            ref, _mm512_cvtps_pd(_mm256_maskz_loadu_ps(lm, offsets + cg)));
      const __m512d sums = _mm512_maskz_loadu_pd(lm, block_sums + cg);
      writer.append(_mm512_mask_cmp_pd_mask(lm, sums, ref, _CMP_GT_OQ), n);
    }
    return;
  }
  int total_active = 0;
  for (int b = 0; b < k; ++b) total_active += n_active[b];
  const double mean_active = static_cast<double>(total_active) / k;
  const double beta_scale = static_cast<double>(m.dyn_beta) * m.mean_abs_eff;
  const __m512i vote_req = _mm512_set1_epi64(m.vote_threshold);
  for (int cg = 0; cg < cols; cg += 8) {
    const int n = std::min(8, cols - cg);
    const __mmask8 lm = static_cast<__mmask8>((1u << n) - 1u);
    const __m512d share = _mm512_div_pd(
        _mm512_cvtps_pd(_mm256_maskz_loadu_ps(lm, ct + cg)),
        _mm512_set1_pd(static_cast<double>(k)));
    __m512i votes = _mm512_setzero_si512();
    for (int b = 0; b < k; ++b) {
      const double dyn =
          beta_scale * (static_cast<double>(n_active[b]) - mean_active);
      __m512d t = _mm512_add_pd(share, _mm512_set1_pd(dyn));
      if (offsets)
        t = _mm512_add_pd(t, _mm512_cvtps_pd(_mm256_maskz_loadu_ps(
                                 lm, offsets + static_cast<std::size_t>(b) *
                                                   cols + cg)));
      const __m512d sums = _mm512_maskz_loadu_pd(
          lm, block_sums + static_cast<std::size_t>(b) * cols + cg);
      // movm turns the compare mask into -1 lanes; subtracting counts votes.
      votes = _mm512_sub_epi64(
          votes,
          _mm512_movm_epi64(_mm512_mask_cmp_pd_mask(lm, sums, t, _CMP_GT_OQ)));
    }
    writer.append(_mm512_cmp_epi64_mask(votes, vote_req, _MM_CMPINT_NLT), n);
  }
}

/// Batch-of-8 decide+append over the transposed sums accumulate_positions8
/// produces: each compare handles one column across eight positions, and
/// the per-column masks transpose back into position-major words. Scalar
/// coefficients broadcast, so every lane runs decide_position's exact
/// operation sequence. Requires cols ≤ 64 and noise-free readout.
void decide_append_fast8(const MappedLayer& m, const double* sums8,
                         const std::int32_t* n_active8, int np,
                         BitWriter& writer) {
  const int cols = m.geom.cols, k = m.block_count;
  const float* ct = m.col_threshold.data();
  const float* offsets = m.sa_offset.empty() ? nullptr : m.sa_offset.data();
  const __mmask8 pm = static_cast<__mmask8>((1u << np) - 1u);
  std::uint64_t posw[8] = {};
  __m512d mean{};
  double beta_scale = 0.0;
  if (k > 1) {
    __m512i total = _mm512_setzero_si512();
    for (int b = 0; b < k; ++b)
      total = _mm512_add_epi64(
          total, _mm512_cvtepi32_epi64(_mm256_loadu_si256(
                     reinterpret_cast<const __m256i*>(n_active8 + b * 8))));
    mean = _mm512_div_pd(_mm512_cvtepi64_pd(total),
                         _mm512_set1_pd(static_cast<double>(k)));
    beta_scale = static_cast<double>(m.dyn_beta) * m.mean_abs_eff;
  }
  const __m512i vote_req = _mm512_set1_epi64(m.vote_threshold);
  for (int base_c = 0; base_c < cols; base_c += 8) {
    const int nc = std::min(8, cols - base_c);
    std::uint64_t t = 0;
    for (int lc = 0; lc < nc; ++lc) {
      const int c = base_c + lc;
      __mmask8 bits;
      if (k == 1) {
        const double ref =
            static_cast<double>(ct[c]) +
            (offsets ? static_cast<double>(offsets[c]) : 0.0);
        bits = _mm512_mask_cmp_pd_mask(
            pm, _mm512_loadu_pd(sums8 + static_cast<std::size_t>(c) * 8),
            _mm512_set1_pd(ref), _CMP_GT_OQ);
      } else {
        const double share = static_cast<double>(ct[c]) / k;
        __m512i votes = _mm512_setzero_si512();
        for (int b = 0; b < k; ++b) {
          const __m512d nav = _mm512_cvtepi32_pd(_mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(n_active8 + b * 8)));
          __m512d tb = _mm512_add_pd(
              _mm512_set1_pd(share),
              _mm512_mul_pd(_mm512_set1_pd(beta_scale),
                            _mm512_sub_pd(nav, mean)));
          if (offsets)
            tb = _mm512_add_pd(
                tb, _mm512_set1_pd(static_cast<double>(
                        offsets[static_cast<std::size_t>(b) * cols + c])));
          const __m512d sums = _mm512_loadu_pd(
              sums8 + (static_cast<std::size_t>(b) * cols + c) * 8);
          votes = _mm512_sub_epi64(
              votes, _mm512_movm_epi64(
                         _mm512_mask_cmp_pd_mask(pm, sums, tb, _CMP_GT_OQ)));
        }
        bits = _mm512_mask_cmp_epi64_mask(pm, votes, vote_req,
                                          _MM_CMPINT_NLT);
      }
      t |= static_cast<std::uint64_t>(bits) << (8 * lc);
    }
    t = transpose8x8(t);
    for (int p = 0; p < np; ++p)
      posw[p] |= ((t >> (8 * p)) & 0xFFu) << base_c;
  }
  for (int p = 0; p < np; ++p) {
    writer.append(posw[p], cols);
    posw[p] = 0;
  }
}

#endif  // SEI_CORE_AVX512

}  // namespace

void SeiNetwork::eval_stage_packed(const MappedLayer& m,
                                   [[maybe_unused]] PackedKernel kern,
                                   const quant::PackedBits& in,
                                   quant::PackedBits& bits_out,
                                   std::vector<float>& scores,
                                   EvalContext& ctx, int skip_bound) const {
  const quant::StageGeometry& g = m.geom;
  const PackedStage& ps = m.packed;
  SEI_CHECK(ps.valid);
  SEI_CHECK(in.bits == static_cast<std::size_t>(g.in_h) * g.in_w * g.in_ch);
  const int cols = g.cols, k = m.block_count;
  if (skip_bound >= 0)
    ctx.sp_rows = ctx.sp_nominal = ctx.sp_words = ctx.sp_skipped = 0;
  ctx.block_sums.resize(static_cast<std::size_t>(k) * cols);
  ctx.n_active.resize(static_cast<std::size_t>(k));

  const std::size_t positions = static_cast<std::size_t>(g.out_h) * g.out_w;
  BitWriter writer(ctx.packed_stage, m.binarize ? positions * cols : 0);
  if (m.binarize) ctx.pos_bits.resize(static_cast<std::size_t>(cols));
  else scores.assign(static_cast<std::size_t>(cols), 0.0f);

  const bool is_conv = g.kind == quant::StageSpec::Kind::Conv;
  const int span = is_conv ? g.kernel * g.in_ch : g.rows;
  // FC input is already the full row window (rows == in.bits, zero tail).
  // Under sparsity the FC window is copied into scratch first — the mask
  // pass mutates it, and the caller's packed activations must survive.
  const std::uint64_t* window = in.words.data();
  if (is_conv || skip_bound >= 0)
    ctx.window.resize(static_cast<std::size_t>(ps.words));

#ifdef SEI_CORE_AVX512
  // Batch-of-8 position pipeline: compact eight conv windows, then run the
  // per-column mask stream once against all eight. The masks (the dominant
  // memory traffic of wide hidden stages) are loaded once per batch instead
  // of once per position, and decide+append vectorize across positions.
  // Bit-identical to the per-position path: the block sums are the same
  // exact integers and the noise-free decide makes no RNG draws. Only the
  // !rows_ok fallback — when the int16 row-gather table is available it
  // beats streaming the plane masks even once per batch. The selection
  // conditions live in select_packed_kernel (core/plan.cpp), resolved at
  // plan-compile time.
  if (kern == PackedKernel::kBatch8) {
    const int lw_words = ps.block_loff[k];
    ctx.lw8.resize(static_cast<std::size_t>(lw_words) * 8);
    ctx.nact8.resize(static_cast<std::size_t>(k) * 8);
    ctx.sums8.resize(static_cast<std::size_t>(k) * cols * 8);
    std::uint64_t lw_tmp[PackedStage::kMaxBlockSpan];
    for (std::size_t pos = 0; pos < positions; pos += 8) {
      const int np = static_cast<int>(std::min<std::size_t>(8, positions - pos));
      if (np < 8) {  // zeroed tail lanes produce harmless zero sums
        std::fill(ctx.lw8.begin(), ctx.lw8.end(), 0);
        std::fill(ctx.nact8.begin(), ctx.nact8.end(), 0);
      }
      for (int p = 0; p < np; ++p) {
        const int y = static_cast<int>((pos + p) / g.out_w);
        const int x = static_cast<int>((pos + p) % g.out_w);
        if (ps.words == 1) {
          // rows ≤ 64: the whole window fits one word — assemble it from
          // per-kernel-row bit extracts without touching the scratch buffer.
          std::uint64_t w0 = 0;
          for (int di = 0; di < g.kernel; ++di)
            w0 |= extract_bits64(
                      in.words.data(),
                      (static_cast<std::size_t>(y + di) * g.in_w + x) *
                          g.in_ch,
                      span)
                  << (di * span);
          ctx.window[0] = w0;
        } else {
          std::fill(ctx.window.begin(), ctx.window.end(), 0);
          for (int di = 0; di < g.kernel; ++di)
            copy_bits(
                in.words.data(),
                (static_cast<std::size_t>(y + di) * g.in_w + x) * g.in_ch,
                ctx.window.data(), static_cast<std::size_t>(di) * span,
                static_cast<std::size_t>(span));
        }
        // Masking the lane's window before compaction makes the skipped
        // words' rows invisible to everything downstream — nact8, sums,
        // votes — exactly as if their transmission gates never opened.
        if (skip_bound >= 0)
          mask_window_words(g.rows, skip_bound, ctx.window.data(), ctx);
        for (int b = 0; b < k; ++b) {
          const int bspan = ps.block_span[b];
          ctx.nact8[static_cast<std::size_t>(b) * 8 + p] =
              compact_block_window(ps, b, ctx.window.data(), lw_tmp);
          std::uint64_t* dst =
              ctx.lw8.data() + static_cast<std::size_t>(ps.block_loff[b]) * 8;
          for (int w = 0; w < bspan; ++w)
            dst[static_cast<std::size_t>(w) * 8 + p] = lw_tmp[w];
        }
      }
      accumulate_positions8(ps, cols, k, ctx.lw8.data(), ctx.nact8.data(),
                            ctx.sums8.data());
      decide_append_fast8(m, ctx.sums8.data(), ctx.nact8.data(), np, writer);
    }
    writer.finish();
    if (g.pool_after)
      or_pool_packed(ctx.packed_stage, g.out_h, g.out_w, cols, bits_out);
    else
      bits_out = ctx.packed_stage;
    return;
  }

  // Single-block noise-free stages decide with `sum > ref` alone, and the
  // int16 row-gather accumulator already holds every sum exactly — so
  // compare in int16 against pre-floored references and never widen to
  // doubles: for an integer sum, sum > ref ⟺ sum > floor(ref). References
  // outside int16 range clamp exactly too (|sum| ≤ Σ|w| ≤ 32767 means the
  // compare is all-false / all-true either way).
  if (kern == PackedKernel::kRow16Cmp) {
    const float* ct = m.col_threshold.data();
    const float* offsets = m.sa_offset.empty() ? nullptr : m.sa_offset.data();
    alignas(64) std::int16_t iref[32];
    for (int c = 0; c < 32; ++c) iref[c] = 32767;  // tail lanes never fire
    for (int c = 0; c < cols; ++c) {
      const double ref = static_cast<double>(ct[c]) +
                         (offsets ? static_cast<double>(offsets[c]) : 0.0);
      iref[c] = static_cast<std::int16_t>(
          std::clamp(std::floor(ref), -32768.0, 32767.0));
    }
    const __m512i refv =
        _mm512_load_si512(reinterpret_cast<const void*>(iref));
    const std::uint64_t* bm = ps.block_masks.data();
    const std::uint64_t colmask = (std::uint64_t{1} << cols) - 1u;
    const std::int16_t* rw = ps.row_w.data();
    for (int y = 0; y < g.out_h; ++y) {
      for (int x = 0; x < g.out_w; ++x) {
        const std::uint64_t* wptr = in.words.data();
        if (is_conv) {
          if (ps.words == 1) {
            std::uint64_t w0 = 0;
            for (int di = 0; di < g.kernel; ++di)
              w0 |= extract_bits64(
                        in.words.data(),
                        (static_cast<std::size_t>(y + di) * g.in_w + x) *
                            g.in_ch,
                        span)
                    << (di * span);
            ctx.window[0] = w0;
          } else {
            std::fill(ctx.window.begin(), ctx.window.end(), 0);
            for (int di = 0; di < g.kernel; ++di)
              copy_bits(
                  in.words.data(),
                  (static_cast<std::size_t>(y + di) * g.in_w + x) * g.in_ch,
                  ctx.window.data(), static_cast<std::size_t>(di) * span,
                  static_cast<std::size_t>(span));
          }
          wptr = ctx.window.data();
        }
        if (skip_bound >= 0) {
          // Mask in place (FC copies the caller's words into scratch
          // first); the row walk below then only ever sees surviving
          // rows, and an all-masked window naturally compares zero sums.
          if (!is_conv) {
            std::copy_n(in.words.data(), static_cast<std::size_t>(ps.words),
                        ctx.window.data());
            wptr = ctx.window.data();
          }
          mask_window_words(g.rows, skip_bound, ctx.window.data(), ctx);
        }
        __m512i acc0 = _mm512_setzero_si512();
        __m512i acc1 = _mm512_setzero_si512();
        bool flip = false;
        for (int w = 0; w < ps.words; ++w) {
          std::uint64_t bits = wptr[w] & bm[w];
          for (; bits != 0; bits &= bits - 1) {
            const int r = (w << 6) + std::countr_zero(bits);
            const __m512i row = _mm512_loadu_si512(reinterpret_cast<
                const void*>(rw + (static_cast<std::size_t>(r) << 5)));
            if (flip) acc1 = _mm512_add_epi16(acc1, row);
            else      acc0 = _mm512_add_epi16(acc0, row);
            flip = !flip;
          }
        }
        const __mmask32 gt =
            _mm512_cmpgt_epi16_mask(_mm512_add_epi16(acc0, acc1), refv);
        writer.append(static_cast<std::uint64_t>(gt) & colmask, cols);
      }
    }
    writer.finish();
    if (g.pool_after)
      or_pool_packed(ctx.packed_stage, g.out_h, g.out_w, cols, bits_out);
    else
      bits_out = ctx.packed_stage;
    return;
  }
#endif

  for (int y = 0; y < g.out_h; ++y) {
    for (int x = 0; x < g.out_w; ++x) {
      if (is_conv) {
        if (ps.words == 1) {
          // rows ≤ 64: assemble the single-word window from per-kernel-row
          // bit extracts without touching the scratch buffer.
          std::uint64_t w0 = 0;
          for (int di = 0; di < g.kernel; ++di)
            w0 |= extract_bits64(
                      in.words.data(),
                      (static_cast<std::size_t>(y + di) * g.in_w + x) *
                          g.in_ch,
                      span)
                  << (di * span);
          ctx.window[0] = w0;
        } else {
          std::fill(ctx.window.begin(), ctx.window.end(), 0);
          for (int di = 0; di < g.kernel; ++di)
            copy_bits(
                in.words.data(),
                (static_cast<std::size_t>(y + di) * g.in_w + x) * g.in_ch,
                ctx.window.data(), static_cast<std::size_t>(di) * span,
                static_cast<std::size_t>(span));
        }
        window = ctx.window.data();
      }
      if (skip_bound >= 0) {
        // Mask in place (FC copies the caller's words into scratch first):
        // the accumulators then see the reduced window directly — skipped
        // words cost nothing and need no kernel hook.
        if (!is_conv) {
          std::copy_n(in.words.data(), static_cast<std::size_t>(ps.words),
                      ctx.window.data());
          window = ctx.window.data();
        }
        mask_window_words(g.rows, skip_bound, ctx.window.data(), ctx);
      }
      if (ps.rows_ok)
        accumulate_position_rows(ps, cols, k, window, ctx.block_sums.data(),
                                 ctx.n_active.data());
      else
        accumulate_position(ps, cols, k, window, ctx.block_sums.data(),
                            ctx.n_active.data());
      if (m.binarize) {
#ifdef SEI_CORE_AVX512
        if (cfg_.device.read_noise_sigma <= 0.0) {
          decide_append_fast(m, ctx.block_sums.data(), ctx.n_active.data(),
                             writer);
          continue;
        }
#endif
        decide_position(m, ctx.block_sums.data(), ctx.n_active.data(),
                        ctx.pos_bits.data(), ctx.rng);
        append_position_bits(writer, ctx.pos_bits.data(), cols);
      } else {
        merge_classifier(m, scores, ctx);
      }
    }
  }

  if (m.binarize) {
    writer.finish();
    if (g.pool_after)
      or_pool_packed(ctx.packed_stage, g.out_h, g.out_w, cols, bits_out);
    else
      bits_out = ctx.packed_stage;
  }
}

void SeiNetwork::eval_stage_dac(const MappedLayer& m, DacKernel kern,
                                std::span<const float> in,
                                quant::PackedBits& bits_out,
                                std::vector<float>& scores,
                                EvalContext& ctx) const {
  const quant::StageGeometry& g = m.geom;
  SEI_CHECK(in.size() == static_cast<std::size_t>(g.in_h) * g.in_w * g.in_ch);
  const int cols = g.cols, k = m.block_count;
  ctx.block_sums.resize(static_cast<std::size_t>(k) * cols);
  ctx.n_active.resize(static_cast<std::size_t>(k));

  // The scalar path re-runs the DAC for every overlapping window; quantize
  // the image once instead. Accumulation below keeps the scalar loop's
  // exact term order, so the sums are the same doubles.
  ctx.dac_vals.resize(in.size());
  dac_quantize_image(in, cfg_.input_bits, ctx.dac_vals.data());

  const std::size_t positions = static_cast<std::size_t>(g.out_h) * g.out_w;
  BitWriter writer(ctx.packed_stage, m.binarize ? positions * cols : 0);
  if (m.binarize) ctx.pos_bits.resize(static_cast<std::size_t>(cols));
  else scores.assign(static_cast<std::size_t>(cols), 0.0f);

  const bool is_conv = g.kind == quant::StageSpec::Kind::Conv;
  const int span = is_conv ? g.kernel * g.in_ch : g.rows;

  if (kern == DacKernel::kDenseTranspose) {
    // Transposed dense accumulation: pos_sums is laid out [col][position],
    // so for each weight w[r][c] one contiguous FMA sweep adds
    // w·shifted_image into all positions at once. Zero DAC outputs add an
    // exact ±0.0 and the dac_exact bound keeps every partial sum exact, so
    // this reordering produces the same doubles as the per-window loop
    // (zero signs can differ, which no compare can observe).
    ctx.pos_sums.resize(static_cast<std::size_t>(cols) * positions);
    const int in_stride = g.in_w * g.in_ch;
#ifdef SEI_CORE_AVX512
    if (g.in_ch == 1 &&
        (g.kernel == 3 || g.kernel == 5 || g.kernel == 7)) {
      // Register-tiled direct convolution: the whole tap loop runs with
      // eight output positions held in registers, so each partial sum is
      // written exactly once instead of read-modify-written per tap. The
      // tap order differs from the sweep below (dual accumulators, dj
      // interleaving) — dac_exact makes any order bit-identical.
      ctx.dac_d.resize(ctx.dac_vals.size());
      for (std::size_t i = 0; i < ctx.dac_vals.size(); ++i)
        ctx.dac_d[i] = static_cast<double>(ctx.dac_vals[i]);
      switch (g.kernel) {
        case 3:
          conv0_tile<3>(ctx.dac_d.data(), g.in_w, g.out_h, g.out_w,
                        m.eff.data(), cols, ctx.pos_sums.data(), positions);
          break;
        case 5:
          conv0_tile<5>(ctx.dac_d.data(), g.in_w, g.out_h, g.out_w,
                        m.eff.data(), cols, ctx.pos_sums.data(), positions);
          break;
        default:
          conv0_tile<7>(ctx.dac_d.data(), g.in_w, g.out_h, g.out_w,
                        m.eff.data(), cols, ctx.pos_sums.data(), positions);
          break;
      }
    } else
#endif
    for (int di = 0; di < g.kernel; ++di) {
      for (int dj = 0; dj < g.kernel; ++dj) {
        for (int ch = 0; ch < g.in_ch; ++ch) {
          const int r = (di * g.kernel + dj) * g.in_ch + ch;
          const bool first = r == 0;  // overwrites last image's sums
          const float* wrow = m.eff.data() + static_cast<std::size_t>(r) * cols;
          const float* src = ctx.dac_vals.data() +
                             (static_cast<std::size_t>(di) * g.in_w + dj) *
                                 g.in_ch +
                             ch;
          for (int c = 0; c < cols; ++c) {
            const double wv = wrow[c];
            double* dst =
                ctx.pos_sums.data() + static_cast<std::size_t>(c) * positions;
            for (int y = 0; y < g.out_h; ++y) {
              const float* sr = src + static_cast<std::size_t>(y) * in_stride;
              double* dr = dst + static_cast<std::size_t>(y) * g.out_w;
              // Unit-stride loops are split out so the compiler vectorizes
              // them (the runtime in_ch stride otherwise blocks it); the
              // input layer is single-channel, so this is the path taken.
              if (g.in_ch == 1) {
                if (first) {
                  for (int x = 0; x < g.out_w; ++x)
                    dr[x] = wv * static_cast<double>(sr[x]);
                } else {
                  for (int x = 0; x < g.out_w; ++x)
                    dr[x] += wv * static_cast<double>(sr[x]);
                }
              } else if (first) {
                for (int x = 0; x < g.out_w; ++x)
                  dr[x] = wv * static_cast<double>(
                                   sr[static_cast<std::size_t>(x) * g.in_ch]);
              } else {
                for (int x = 0; x < g.out_w; ++x)
                  dr[x] += wv * static_cast<double>(
                                    sr[static_cast<std::size_t>(x) * g.in_ch]);
              }
            }
          }
        }
      }
    }
    if (cfg_.device.read_noise_sigma <= 0.0) {
      // Bulk emit: per column, compare every position against the fixed
      // reference at once; then interleave the per-column bit rows into
      // position-major packed output.
      const float* offsets = m.sa_offset.empty() ? nullptr : m.sa_offset.data();
      const std::size_t pwords = (positions + 63) / 64;
      ctx.col_cmp.assign(static_cast<std::size_t>(cols) * pwords, 0);
      for (int c = 0; c < cols; ++c) {
        const double ref =
            static_cast<double>(m.col_threshold[static_cast<std::size_t>(c)]) +
            (offsets ? offsets[c] : 0.0);
        const double* a =
            ctx.pos_sums.data() + static_cast<std::size_t>(c) * positions;
        std::uint64_t* mw = ctx.col_cmp.data() + c * pwords;
        std::size_t pos = 0;
#ifdef SEI_CORE_AVX512
        const __m512d refv = _mm512_set1_pd(ref);
        for (; pos + 8 <= positions; pos += 8) {
          const __mmask8 gt = _mm512_cmp_pd_mask(_mm512_loadu_pd(a + pos),
                                                 refv, _CMP_GT_OQ);
          mw[pos >> 6] |= static_cast<std::uint64_t>(gt) << (pos & 63);
        }
#endif
        for (; pos < positions; ++pos)
          mw[pos >> 6] |= static_cast<std::uint64_t>(a[pos] > ref)
                          << (pos & 63);
      }
      // Fused OR-pool: pooling commutes with the transpose, and in
      // column-major bit rows it is three word ops per output row — so
      // pool here and interleave only a quarter of the positions,
      // replacing the or_pool_packed pass entirely.
      const bool fuse_pool = g.pool_after && g.out_w <= 64;
      const std::uint64_t* colbits = ctx.col_cmp.data();
      std::size_t nw = pwords, npos = positions;
      if (fuse_pool) {
        const int oh = g.out_h / 2, ow = g.out_w / 2;
        npos = static_cast<std::size_t>(oh) * ow;
        nw = (npos + 63) / 64;
        ctx.col_pool.assign(static_cast<std::size_t>(cols) * nw, 0);
        for (int c = 0; c < cols; ++c) {
          const std::uint64_t* src =
              ctx.col_cmp.data() + static_cast<std::size_t>(c) * pwords;
          std::uint64_t* dst =
              ctx.col_pool.data() + static_cast<std::size_t>(c) * nw;
          std::size_t opos = 0;
          for (int y = 0; y < oh; ++y, opos += ow) {
            const std::uint64_t a = extract_bits64(
                src, static_cast<std::size_t>(2 * y) * g.out_w, g.out_w);
            const std::uint64_t b2 = extract_bits64(
                src, static_cast<std::size_t>(2 * y + 1) * g.out_w, g.out_w);
            const std::uint64_t t = a | b2;
            const std::uint64_t w = compact_even_bits(t | (t >> 1), ow);
            dst[opos >> 6] |= w << (opos & 63);
            if (static_cast<int>(opos & 63) + ow > 64)
              dst[(opos >> 6) + 1] |= w >> (64 - (opos & 63));
          }
        }
        colbits = ctx.col_pool.data();
      }
      std::optional<BitWriter> pool_writer;
      if (fuse_pool) pool_writer.emplace(bits_out, npos * cols);
      BitWriter& wr = fuse_pool ? *pool_writer : writer;
      // Interleave the column-major bit rows into position-major output,
      // 8 positions × 8 columns at a time via bit-matrix transposes.
      const int cg8 = cols / 8;
      std::size_t pos = 0;
      for (; pos + 8 <= npos; pos += 8) {
        std::uint64_t tw[8] = {};  // transposed: byte p = cols of position p
        for (int g8 = 0; g8 <= cg8; ++g8) {
          const int base_c = g8 * 8;
          const int nc = std::min(8, cols - base_c);
          if (nc <= 0) break;
          std::uint64_t t = 0;
          for (int c = 0; c < nc; ++c)
            t |= ((colbits[static_cast<std::size_t>(base_c + c) * nw +
                           (pos >> 6)] >>
                   (pos & 63)) &
                  0xFFu)
                 << (8 * c);
          t = transpose8x8(t);
          if (cols <= 8) {
            // Narrow stages: all eight positions' bits land in one append.
            wr.append(pack_pos_bytes(t, cols), 8 * cols);
            break;
          }
          for (int p = 0; p < 8; ++p)
            tw[p] |= ((t >> (8 * p)) & 0xFFu) << base_c;
        }
        if (cols > 8)
          for (int p = 0; p < 8; ++p) wr.append(tw[p], cols);
      }
      for (; pos < npos; ++pos) {
        std::uint64_t word = 0;
        for (int c = 0; c < cols; ++c)
          word |= ((colbits[static_cast<std::size_t>(c) * nw + (pos >> 6)] >>
                    (pos & 63)) &
                   1u)
                  << c;
        wr.append(word, cols);
      }
      if (fuse_pool) {
        wr.finish();
        return;
      }
    } else {
      // Noisy readout draws per (position, column) in decide_position's
      // order, so gather each position's sums and run the scalar decide.
      for (std::size_t pos = 0; pos < positions; ++pos) {
        for (int c = 0; c < cols; ++c)
          ctx.block_sums[static_cast<std::size_t>(c)] =
              ctx.pos_sums[static_cast<std::size_t>(c) * positions + pos];
        decide_position(m, ctx.block_sums.data(), ctx.n_active.data(),
                        ctx.pos_bits.data(), ctx.rng);
        append_position_bits(writer, ctx.pos_bits.data(), cols);
      }
    }
  } else if (kern == DacKernel::kScatter) {
    // Scatter instead of gather: most DAC outputs are exactly zero (blank
    // MNIST margins), and each nonzero input pixel feeds a predictable set
    // of output windows. Walk the image once, skip zeros, and accumulate
    // each survivor into every position whose window contains it. The
    // dac_exact bound makes every partial sum exact, so this reordering
    // produces the same doubles the per-window loop would.
    const std::size_t stride = static_cast<std::size_t>(k) * cols;
    ctx.pos_sums.assign(positions * stride, 0.0);
    ctx.pos_active.assign(positions * static_cast<std::size_t>(k), 0);
    for (int py = 0; py < g.in_h; ++py) {
      const int di_lo = std::max(0, py - (g.out_h - 1));
      const int di_hi = std::min(g.kernel - 1, py);
      if (di_lo > di_hi) continue;
      for (int px = 0; px < g.in_w; ++px) {
        const int dj_lo = std::max(0, px - (g.out_w - 1));
        const int dj_hi = std::min(g.kernel - 1, px);
        if (dj_lo > dj_hi) continue;
        const float* pvals =
            ctx.dac_vals.data() +
            (static_cast<std::size_t>(py) * g.in_w + px) * g.in_ch;
        for (int ch = 0; ch < g.in_ch; ++ch) {
          const float xq = pvals[ch];
          if (xq == 0.0f) continue;
          const double xd = static_cast<double>(xq);
          for (int di = di_lo; di <= di_hi; ++di) {
            const std::size_t pos_row =
                static_cast<std::size_t>(py - di) * g.out_w;
            for (int dj = dj_lo; dj <= dj_hi; ++dj) {
              const int r = (di * g.kernel + dj) * g.in_ch + ch;
              const int b = m.row_to_block[static_cast<std::size_t>(r)];
              const std::size_t pos = pos_row + (px - dj);
              ++ctx.pos_active[pos * k + b];
              const float* wrow =
                  m.eff.data() + static_cast<std::size_t>(r) * cols;
              double* sums = ctx.pos_sums.data() + pos * stride +
                             static_cast<std::size_t>(b) * cols;
              for (int c = 0; c < cols; ++c) sums[c] += xd * wrow[c];
            }
          }
        }
      }
    }
    // Decisions stay in position order, so the noisy path's RNG draws are
    // the same ones the dense loop would make.
    for (std::size_t pos = 0; pos < positions; ++pos) {
      decide_position(m, ctx.pos_sums.data() + pos * stride,
                      ctx.pos_active.data() + pos * k, ctx.pos_bits.data(),
                      ctx.rng);
      append_position_bits(writer, ctx.pos_bits.data(), cols);
    }
  } else {
    for (int y = 0; y < g.out_h; ++y) {
      for (int x = 0; x < g.out_w; ++x) {
        std::fill(ctx.block_sums.begin(), ctx.block_sums.end(), 0.0);
        std::fill(ctx.n_active.begin(), ctx.n_active.end(), 0);
        const int window_rows = is_conv ? g.kernel : 1;
        for (int di = 0; di < window_rows; ++di) {
          const float* in_px =
              is_conv ? ctx.dac_vals.data() +
                            (static_cast<std::size_t>(y + di) * g.in_w + x) *
                                g.in_ch
                      : ctx.dac_vals.data();
          const int r0 = di * span;
          for (int t = 0; t < span; ++t) {
            const float xq = in_px[t];
            if (xq == 0.0f) continue;
            const int r = r0 + t;
            const int b = m.row_to_block[static_cast<std::size_t>(r)];
            ++ctx.n_active[static_cast<std::size_t>(b)];
            const float* wrow =
                m.eff.data() + static_cast<std::size_t>(r) * cols;
            double* sums = ctx.block_sums.data() +
                           static_cast<std::size_t>(b) * cols;
            for (int c = 0; c < cols; ++c)
              sums[c] += static_cast<double>(xq) * wrow[c];
          }
        }
        if (m.binarize) {
          decide_position(m, ctx.block_sums.data(), ctx.n_active.data(),
                          ctx.pos_bits.data(), ctx.rng);
          append_position_bits(writer, ctx.pos_bits.data(), cols);
        } else {
          merge_classifier(m, scores, ctx);
        }
      }
    }
  }

  if (m.binarize) {
    writer.finish();
    if (g.pool_after)
      or_pool_packed(ctx.packed_stage, g.out_h, g.out_w, cols, bits_out);
    else
      bits_out = ctx.packed_stage;
  }
}

void SeiNetwork::eval_stage(std::size_t i, std::span<const float> image,
                            EvalContext& ctx, bool& packed_live) const {
  const MappedLayer& m = layers_[i];
  // Same selection logic the plan compiler runs once — one source of truth
  // for dispatch; here it is re-derived per call (that is the cost the plan
  // executor removes). The skip bound comes from the always-compiled plan
  // for the same reason.
  const StageEngine engine =
      select_engine(m, static_cast<int>(i), cfg_, packed_eval_);
  const int sb = op_skip_bound(i);
  ctx.cur_activity = ctx.activity ? ctx.activity + i : nullptr;
  switch (engine) {
    case StageEngine::kDacDense:
      eval_stage_dac(m, select_dac_kernel(m), image, ctx.packed_pooled,
                     ctx.scores, ctx);
      if (m.binarize) {
        std::swap(ctx.packed_bits, ctx.packed_pooled);
        packed_live = true;
      }
      return;
    case StageEngine::kScalarFloat:
      eval_stage_float(m, image, ctx.pooled_bits, ctx.scores, ctx);
      if (m.binarize) {
        std::swap(ctx.bits, ctx.pooled_bits);
        packed_live = false;
      }
      return;
    case StageEngine::kPackedBits:
      if (!packed_live) quant::pack_bits(ctx.bits, ctx.packed_bits);
      eval_stage_packed(m, select_packed_kernel(m, cfg_), ctx.packed_bits,
                        ctx.packed_pooled, ctx.scores, ctx, sb);
      if (m.binarize) {
        std::swap(ctx.packed_bits, ctx.packed_pooled);
        packed_live = true;
      }
      return;
    case StageEngine::kScalarBits:
      if (packed_live) quant::unpack_bits(ctx.packed_bits, ctx.bits);
      eval_stage_bits(m, ctx.bits, ctx.pooled_bits, ctx.scores, ctx, sb);
      if (m.binarize) {
        std::swap(ctx.bits, ctx.pooled_bits);
        packed_live = false;
      }
      return;
  }
}

int SeiNetwork::packed_stage_count() const {
  int n = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const PackedStage& ps = layers_[i].packed;
    if (ps.valid && (i != 0 || ps.dac_exact)) ++n;
  }
  return n;
}

int SeiNetwork::predict(std::span<const float> image) const {
  EvalContext ctx;
  return predict(image, ctx, 0);
}

int SeiNetwork::predict(std::span<const float> image, EvalContext& ctx,
                        long long image_index) const {
  SEI_CHECK_MSG(ctx.cancel == nullptr,
                "predict() cannot take a cancel token — use try_predict()");
  return try_predict(image, ctx, image_index).value();
}

Result<int> SeiNetwork::try_predict(std::span<const float> image,
                                    EvalContext& ctx,
                                    long long image_index) const {
  prepare(ctx);
  if (plan_mode_ && plan_.valid()) return run_plan(image, ctx, image_index);
  // Interpreter: per-stage dispatch re-derived each call. Retained as the
  // reference path the equivalence suite pins the plan against.
  bool packed_live = false;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    // The stage boundary is the cancellation point: coarse enough to stay
    // free when no token is armed, fine enough that a request misses its
    // deadline by at most one stage of work.
    if (ctx.cancel && ctx.cancel->expired()) return ctx.cancel->to_error();
    const MappedLayer& m = layers_[i];
    ctx.rng = stage_stream(image_index, static_cast<int>(i));
    eval_stage(i, image, ctx, packed_live);
    if (ctx.meter && ctx.energy) {
      // Identical call to the plan executor's charge() — one arithmetic
      // path, so interpreter and plan energies are bit-equal.
      if (op_skip_bound(i) >= 0)
        ctx.meter->charge_stage_rows(i, ctx.sp_rows, *ctx.energy);
      else
        ctx.meter->charge_stage(i, *ctx.energy);
    }
    if (!m.binarize) {
      if (ctx.energy) ++ctx.energy->images;
      return static_cast<int>(
          std::max_element(ctx.scores.begin(), ctx.scores.end()) -
          ctx.scores.begin());
    }
  }
  SEI_CHECK_MSG(false, "network has no classifier stage");
  return -1;
}

void SeiNetwork::charge(const StageOp& op, EvalContext& ctx) const {
  if (!ctx.meter || !ctx.energy) return;
  if (op.skip_bound >= 0) {
    // Activation-proportional charging: the baked uniform price cannot
    // apply (energy varies per image), so both executors route through
    // charge_stage_rows — the single implementation keeps their energies
    // bit-equal.
    ctx.meter->charge_stage_rows(static_cast<std::size_t>(op.stage),
                                 ctx.sp_rows, *ctx.energy);
    return;
  }
  if constexpr (telemetry::kEnabled) {
    if (op.priced && ctx.meter == plan_.priced_for) {
      // Baked price: two struct adds instead of chasing the meter's stage
      // table. Same numbers — the price was copied from this meter at
      // compile time.
      ctx.energy->pj += op.price.pj;
      ctx.energy->events += op.price.events;
      ++ctx.energy->stages;
      return;
    }
  }
  ctx.meter->charge_stage(static_cast<std::size_t>(op.stage), *ctx.energy);
}

Result<int> SeiNetwork::run_plan(std::span<const float> image,
                                 EvalContext& ctx,
                                 long long image_index) const {
  for (const StageOp& op : plan_.ops) {
    if (ctx.cancel && ctx.cancel->expired()) return ctx.cancel->to_error();
    const MappedLayer& m = layers_[static_cast<std::size_t>(op.stage)];
    ctx.rng = stage_stream(image_index, op.stage);
    ctx.cur_activity = ctx.activity ? ctx.activity + op.stage : nullptr;
    // Form converts were resolved at compile time; the ops below are no-ops
    // for almost every stage boundary (engines of adjacent stages agree).
    if (op.pack_input) quant::pack_bits(ctx.bits, ctx.packed_bits);
    else if (op.unpack_input) quant::unpack_bits(ctx.packed_bits, ctx.bits);
    switch (op.engine) {
      case StageEngine::kDacDense:
        eval_stage_dac(m, op.dac_kernel, image, ctx.packed_pooled, ctx.scores,
                       ctx);
        if (!op.classifier) std::swap(ctx.packed_bits, ctx.packed_pooled);
        break;
      case StageEngine::kScalarFloat:
        eval_stage_float(m, image, ctx.pooled_bits, ctx.scores, ctx);
        if (!op.classifier) std::swap(ctx.bits, ctx.pooled_bits);
        break;
      case StageEngine::kPackedBits:
        eval_stage_packed(m, op.packed_kernel, ctx.packed_bits,
                          ctx.packed_pooled, ctx.scores, ctx, op.skip_bound);
        if (!op.classifier) std::swap(ctx.packed_bits, ctx.packed_pooled);
        break;
      case StageEngine::kScalarBits:
        eval_stage_bits(m, ctx.bits, ctx.pooled_bits, ctx.scores, ctx,
                        op.skip_bound);
        if (!op.classifier) std::swap(ctx.bits, ctx.pooled_bits);
        break;
    }
    charge(op, ctx);
    if (op.classifier) {
      if (ctx.energy) ++ctx.energy->images;
      return static_cast<int>(
          std::max_element(ctx.scores.begin(), ctx.scores.end()) -
          ctx.scores.begin());
    }
  }
  SEI_CHECK_MSG(false, "plan has no classifier op");
  return -1;
}

double SeiNetwork::error_rate(const data::Dataset& d, int max_images) const {
  const int n = max_images < 0 ? d.size() : std::min(max_images, d.size());
  SEI_CHECK(n > 0);
  const std::size_t per_image =
      d.images.numel() / static_cast<std::size_t>(d.size());
  // With sparsity on, energy varies per image — meter through the context
  // so every stage charges its actual activated rows. Each image's energy
  // is a pure function of (network, image, index) and publish_energy sums
  // in femtojoule fixed point, so the chunk totals stay bit-identical at
  // any thread count.
  const bool meter_each = sparsity_enabled() && meter_ != nullptr;
  const long long correct = exec::parallel_reduce<long long>(
      n, exec::kEvalGrain, 0LL, [&](int lo, int hi) {
        EvalContext ctx;
        telemetry::EnergyAccum acc;
        if (meter_each) {
          ctx.meter = meter_;
          ctx.energy = &acc;
        }
        long long c = 0;
        for (int i = lo; i < hi; ++i) {
          const std::span<const float> img{
              d.images.data() + static_cast<std::size_t>(i) * per_image,
              per_image};
          if (predict(img, ctx, i) == d.labels[static_cast<std::size_t>(i)])
            ++c;
        }
        if (meter_each) {
          telemetry::publish_energy(telemetry::MetricsRegistry::global(),
                                    "sei_batch", acc);
        } else if (meter_) {
          // Dense batch chunks charge in bulk — every completed image
          // costs the same whole-network price, so per-stage metering in
          // the hot loop would only add stores.
          const auto images = static_cast<std::uint64_t>(hi - lo);
          meter_->charge_stages(0, meter_->stage_count(), images, acc);
          acc.images = images;
          telemetry::publish_energy(telemetry::MetricsRegistry::global(),
                                    "sei_batch", acc);
        }
        return c;
      });
  return 100.0 * (1.0 - static_cast<double>(correct) / n);
}

std::vector<quant::BitMap> SeiNetwork::cache_stage_inputs(
    const data::Dataset& d, int stage, int max_images) const {
  SEI_CHECK(stage >= 1 && stage < stage_count());
  const int n = max_images < 0 ? d.size() : std::min(max_images, d.size());
  const std::size_t per_image =
      d.images.numel() / static_cast<std::size_t>(d.size());
  std::vector<quant::BitMap> out(static_cast<std::size_t>(n));
  const bool meter_each = sparsity_enabled() && meter_ != nullptr;
  exec::parallel_for_chunks(n, exec::kEvalGrain, [&](int lo, int hi) {
    EvalContext ctx;
    telemetry::EnergyAccum acc;
    for (int i = lo; i < hi; ++i) {
      const std::span<const float> img{
          d.images.data() + static_cast<std::size_t>(i) * per_image,
          per_image};
      bool packed_live = false;
      for (int s = 0; s < stage; ++s) {
        const MappedLayer& m = layers_[static_cast<std::size_t>(s)];
        SEI_CHECK_MSG(m.binarize, "cannot cache past the classifier");
        ctx.rng = stage_stream(i, s);
        eval_stage(static_cast<std::size_t>(s), img, ctx, packed_live);
        // Sparsity on: each stage costs its actual activated rows.
        if (meter_each) {
          const std::size_t si = static_cast<std::size_t>(s);
          if (op_skip_bound(si) >= 0)
            meter_->charge_stage_rows(si, ctx.sp_rows, acc);
          else
            meter_->charge_stage(si, acc);
        }
      }
      // The cache contract is byte maps; unpack clean 0/1 bytes if the
      // last stage ran packed.
      if (packed_live) quant::unpack_bits(ctx.packed_bits, ctx.bits);
      out[static_cast<std::size_t>(i)] = ctx.bits;
    }
    // Partial evaluations (stages [0, stage) only): no image count —
    // these are not full inferences. Dense networks charge in bulk.
    if (!meter_each && meter_) {
      meter_->charge_stages(0, static_cast<std::size_t>(stage),
                            static_cast<std::uint64_t>(hi - lo), acc);
    }
    if (meter_) {
      telemetry::publish_energy(telemetry::MetricsRegistry::global(),
                                "sei_batch", acc);
    }
  });
  return out;
}

double SeiNetwork::error_rate_from(
    const data::Dataset& d, int stage,
    const std::vector<quant::BitMap>& inputs) const {
  SEI_CHECK(stage >= 1 && stage < stage_count());
  const int n = static_cast<int>(inputs.size());
  SEI_CHECK(n > 0 && n <= d.size());
  const bool meter_each = sparsity_enabled() && meter_ != nullptr;
  const long long correct = exec::parallel_reduce<long long>(
      n, exec::kEvalGrain, 0LL, [&](int lo, int hi) {
        EvalContext ctx;
        telemetry::EnergyAccum acc;
        long long c = 0;
        for (int i = lo; i < hi; ++i) {
          ctx.bits = inputs[static_cast<std::size_t>(i)];
          bool packed_live = false;
          int pred = -1;
          for (int s = stage; s < stage_count(); ++s) {
            const MappedLayer& m = layers_[static_cast<std::size_t>(s)];
            // Same per-(image, stage) stream a full predict would use, so
            // tail evaluation replays the identical noise draws.
            ctx.rng = stage_stream(i, s);
            eval_stage(static_cast<std::size_t>(s), {}, ctx, packed_live);
            if (meter_each) {
              const std::size_t si = static_cast<std::size_t>(s);
              if (op_skip_bound(si) >= 0)
                meter_->charge_stage_rows(si, ctx.sp_rows, acc);
              else
                meter_->charge_stage(si, acc);
            }
            if (!m.binarize) {
              pred = static_cast<int>(
                  std::max_element(ctx.scores.begin(), ctx.scores.end()) -
                  ctx.scores.begin());
              break;
            }
          }
          if (meter_each) ++acc.images;
          if (pred == d.labels[static_cast<std::size_t>(i)]) ++c;
        }
        // Tail evaluations run stages [stage, end) per image; dense
        // networks bulk-charge the uniform price.
        if (!meter_each && meter_) {
          const auto images = static_cast<std::uint64_t>(hi - lo);
          meter_->charge_stages(static_cast<std::size_t>(stage),
                                meter_->stage_count(), images, acc);
          acc.images = images;
        }
        if (meter_) {
          telemetry::publish_energy(telemetry::MetricsRegistry::global(),
                                    "sei_batch", acc);
        }
        return c;
      });
  return 100.0 * (1.0 - static_cast<double>(correct) / n);
}

int SeiNetwork::total_crossbars() const {
  int n = 0;
  for (const auto& l : layers_) n += l.crossbars;
  return n;
}

long long SeiNetwork::total_cells() const {
  long long n = 0;
  for (const auto& l : layers_) n += l.cells_used;
  return n;
}

}  // namespace sei::core
