#include "core/sei_network.hpp"

#include <algorithm>
#include <cmath>

#include "exec/thread_pool.hpp"

namespace sei::core {

namespace {

/// 2×2 OR-pool of a [h×w×c] bitmap (floor semantics, like MaxPool2x2).
void or_pool(const quant::BitMap& in, int h, int w, int c,
             quant::BitMap& out) {
  const int ph = h / 2, pw = w / 2;
  out.assign(static_cast<std::size_t>(ph) * pw * c, 0);
  for (int y = 0; y < ph; ++y) {
    for (int x = 0; x < pw; ++x) {
      std::uint8_t* opx =
          out.data() + (static_cast<std::size_t>(y) * pw + x) * c;
      for (int dy = 0; dy < 2; ++dy) {
        const std::uint8_t* ipx =
            in.data() +
            (static_cast<std::size_t>(2 * y + dy) * w + 2 * x) * c;
        for (int ch = 0; ch < c; ++ch)
          opx[ch] |= static_cast<std::uint8_t>(ipx[ch] | ipx[c + ch]);
      }
    }
  }
}

/// Input-layer DAC: quantizes a pixel to `bits` resolution.
float dac_quantize(float x, int bits) {
  const float steps = static_cast<float>((1 << bits) - 1);
  const float clamped = std::clamp(x, 0.0f, 1.0f);
  return std::round(clamped * steps) / steps;
}

}  // namespace

SeiNetwork::SeiNetwork(const quant::QNetwork& qnet, const HardwareConfig& cfg,
                       CrossbarHook hook)
    : qnet_(&qnet),
      cfg_(cfg),
      map_rng_(cfg.seed),
      read_seed_(cfg.seed ^ 0x9e3779b97f4a7c15ULL),
      hook_(std::move(hook)) {
  SEI_CHECK(!qnet.layers.empty());
  layers_.reserve(qnet.layers.size());
  for (const quant::QLayer& l : qnet.layers) {
    const std::vector<int> order = default_row_order(l, cfg_);
    layers_.push_back(map_layer(l, cfg_, order, map_rng_, hook_));
  }
}

void SeiNetwork::remap_layer(int stage, const std::vector<int>& order) {
  SEI_CHECK(stage >= 0 && stage < stage_count());
  layers_[static_cast<std::size_t>(stage)] =
      map_layer(qnet_->layers[static_cast<std::size_t>(stage)], cfg_, order,
                map_rng_, hook_);
}

Rng SeiNetwork::stage_stream(long long image_index, int stage) const {
  // Two-level fork: an image stream off read_seed_, then a per-stage
  // substream — both counter-based, so no draw count anywhere matters.
  return Rng::fork(
      Rng::stream_seed(read_seed_, static_cast<std::uint64_t>(image_index)),
      static_cast<std::uint64_t>(stage));
}

double SeiNetwork::readout(double current, Rng& rng) const {
  const double sigma = cfg_.device.read_noise_sigma;
  if (sigma <= 0.0) return current;
  return current * (1.0 + sigma * rng.gaussian());
}

void SeiNetwork::decide_position(const MappedLayer& m,
                                 const double* block_sums,
                                 const int* n_active,
                                 std::uint8_t* out_bits, Rng& rng) const {
  const int cols = m.geom.cols;
  const int k = m.block_count;
  const bool noisy = cfg_.device.read_noise_sigma > 0.0;
  const float* offsets = m.sa_offset.empty() ? nullptr : m.sa_offset.data();
  if (k == 1) {
    for (int c = 0; c < cols; ++c) {
      const double sum = noisy ? readout(block_sums[c], rng) : block_sums[c];
      const double ref =
          static_cast<double>(m.col_threshold[static_cast<std::size_t>(c)]) +
          (offsets ? offsets[c] : 0.0);
      out_bits[c] = sum > ref ? 1 : 0;
    }
    return;
  }
  int total_active = 0;
  for (int b = 0; b < k; ++b) total_active += n_active[b];
  const double mean_active = static_cast<double>(total_active) / k;
  const double beta_scale =
      static_cast<double>(m.dyn_beta) * m.mean_abs_eff;
  for (int c = 0; c < cols; ++c) {
    const double share =
        static_cast<double>(m.col_threshold[static_cast<std::size_t>(c)]) / k;
    int votes = 0;
    for (int b = 0; b < k; ++b) {
      const double t_b =
          share +
          beta_scale * (static_cast<double>(n_active[b]) - mean_active) +
          (offsets ? offsets[static_cast<std::size_t>(b) * cols + c] : 0.0);
      const double raw = block_sums[static_cast<std::size_t>(b) * cols + c];
      const double sum = noisy ? readout(raw, rng) : raw;
      if (sum > t_b) ++votes;
    }
    out_bits[c] = votes >= m.vote_threshold ? 1 : 0;
  }
}

void SeiNetwork::eval_stage_bits(const MappedLayer& m, const quant::BitMap& in,
                                 quant::BitMap& bits_out,
                                 std::vector<float>& scores,
                                 EvalContext& ctx) const {
  const quant::StageGeometry& g = m.geom;
  SEI_CHECK(in.size() == static_cast<std::size_t>(g.in_h) * g.in_w * g.in_ch);
  const int cols = g.cols, k = m.block_count;
  ctx.block_sums.assign(static_cast<std::size_t>(k) * cols, 0.0);
  ctx.n_active.assign(static_cast<std::size_t>(k), 0);

  const std::size_t positions = static_cast<std::size_t>(g.out_h) * g.out_w;
  if (m.binarize) ctx.stage_bits.assign(positions * cols, 0);
  else scores.assign(static_cast<std::size_t>(cols), 0.0f);

  const bool is_conv = g.kind == quant::StageSpec::Kind::Conv;
  const int span = is_conv ? g.kernel * g.in_ch : g.rows;

  for (int y = 0; y < g.out_h; ++y) {
    for (int x = 0; x < g.out_w; ++x) {
      std::fill(ctx.block_sums.begin(), ctx.block_sums.end(), 0.0);
      std::fill(ctx.n_active.begin(), ctx.n_active.end(), 0);
      const int window_rows = is_conv ? g.kernel : 1;
      for (int di = 0; di < window_rows; ++di) {
        const std::uint8_t* in_px =
            is_conv ? in.data() + (static_cast<std::size_t>(y + di) * g.in_w +
                                   x) * g.in_ch
                    : in.data();
        const int r0 = di * span;
        for (int t = 0; t < span; ++t) {
          if (!in_px[t]) continue;
          const int r = r0 + t;
          const int b = m.row_to_block[static_cast<std::size_t>(r)];
          ++ctx.n_active[static_cast<std::size_t>(b)];
          const float* wrow =
              m.eff.data() + static_cast<std::size_t>(r) * cols;
          double* sums = ctx.block_sums.data() +
                         static_cast<std::size_t>(b) * cols;
          for (int c = 0; c < cols; ++c) sums[c] += wrow[c];
        }
      }
      if (m.binarize) {
        decide_position(
            m, ctx.block_sums.data(), ctx.n_active.data(),
            ctx.stage_bits.data() +
                (static_cast<std::size_t>(y) * g.out_w + x) * cols,
            ctx.rng);
      } else {
        // Classifier: block currents merge exactly (WTA readout).
        for (int c = 0; c < cols; ++c) {
          double s = 0.0;
          for (int b = 0; b < k; ++b)
            s += readout(
                ctx.block_sums[static_cast<std::size_t>(b) * cols + c],
                ctx.rng);
          scores[static_cast<std::size_t>(c)] +=
              static_cast<float>(s * m.weight_scale) +
              m.col_bias[static_cast<std::size_t>(c)];
        }
      }
    }
  }

  if (m.binarize) {
    if (g.pool_after)
      or_pool(ctx.stage_bits, g.out_h, g.out_w, cols, bits_out);
    else
      bits_out = ctx.stage_bits;
  }
}

void SeiNetwork::eval_stage_float(const MappedLayer& m,
                                  std::span<const float> in,
                                  quant::BitMap& bits_out,
                                  std::vector<float>& scores,
                                  EvalContext& ctx) const {
  const quant::StageGeometry& g = m.geom;
  SEI_CHECK(in.size() == static_cast<std::size_t>(g.in_h) * g.in_w * g.in_ch);
  const int cols = g.cols, k = m.block_count;
  ctx.block_sums.assign(static_cast<std::size_t>(k) * cols, 0.0);
  ctx.n_active.assign(static_cast<std::size_t>(k), 0);

  const std::size_t positions = static_cast<std::size_t>(g.out_h) * g.out_w;
  if (m.binarize) ctx.stage_bits.assign(positions * cols, 0);
  else scores.assign(static_cast<std::size_t>(cols), 0.0f);

  const bool is_conv = g.kind == quant::StageSpec::Kind::Conv;
  const int span = is_conv ? g.kernel * g.in_ch : g.rows;

  for (int y = 0; y < g.out_h; ++y) {
    for (int x = 0; x < g.out_w; ++x) {
      std::fill(ctx.block_sums.begin(), ctx.block_sums.end(), 0.0);
      std::fill(ctx.n_active.begin(), ctx.n_active.end(), 0);
      const int window_rows = is_conv ? g.kernel : 1;
      for (int di = 0; di < window_rows; ++di) {
        const float* in_px =
            is_conv ? in.data() + (static_cast<std::size_t>(y + di) * g.in_w +
                                   x) * g.in_ch
                    : in.data();
        const int r0 = di * span;
        for (int t = 0; t < span; ++t) {
          const float xq = dac_quantize(in_px[t], cfg_.input_bits);
          if (xq == 0.0f) continue;
          const int r = r0 + t;
          const int b = m.row_to_block[static_cast<std::size_t>(r)];
          ++ctx.n_active[static_cast<std::size_t>(b)];
          const float* wrow =
              m.eff.data() + static_cast<std::size_t>(r) * cols;
          double* sums = ctx.block_sums.data() +
                         static_cast<std::size_t>(b) * cols;
          for (int c = 0; c < cols; ++c)
            sums[c] += static_cast<double>(xq) * wrow[c];
        }
      }
      if (m.binarize) {
        decide_position(
            m, ctx.block_sums.data(), ctx.n_active.data(),
            ctx.stage_bits.data() +
                (static_cast<std::size_t>(y) * g.out_w + x) * cols,
            ctx.rng);
      } else {
        for (int c = 0; c < cols; ++c) {
          double s = 0.0;
          for (int b = 0; b < k; ++b)
            s += readout(
                ctx.block_sums[static_cast<std::size_t>(b) * cols + c],
                ctx.rng);
          scores[static_cast<std::size_t>(c)] +=
              static_cast<float>(s * m.weight_scale) +
              m.col_bias[static_cast<std::size_t>(c)];
        }
      }
    }
  }

  if (m.binarize) {
    if (g.pool_after)
      or_pool(ctx.stage_bits, g.out_h, g.out_w, cols, bits_out);
    else
      bits_out = ctx.stage_bits;
  }
}

int SeiNetwork::predict(std::span<const float> image) const {
  EvalContext ctx;
  return predict(image, ctx, 0);
}

int SeiNetwork::predict(std::span<const float> image, EvalContext& ctx,
                        long long image_index) const {
  SEI_CHECK_MSG(ctx.cancel == nullptr,
                "predict() cannot take a cancel token — use try_predict()");
  return try_predict(image, ctx, image_index).value();
}

Result<int> SeiNetwork::try_predict(std::span<const float> image,
                                    EvalContext& ctx,
                                    long long image_index) const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    // The stage boundary is the cancellation point: coarse enough to stay
    // free when no token is armed, fine enough that a request misses its
    // deadline by at most one stage of work.
    if (ctx.cancel && ctx.cancel->expired()) return ctx.cancel->to_error();
    const MappedLayer& m = layers_[i];
    ctx.rng = stage_stream(image_index, static_cast<int>(i));
    if (i == 0)
      eval_stage_float(m, image, ctx.pooled_bits, ctx.scores, ctx);
    else
      eval_stage_bits(m, ctx.bits, ctx.pooled_bits, ctx.scores, ctx);
    if (ctx.meter && ctx.energy) ctx.meter->charge_stage(i, *ctx.energy);
    if (!m.binarize) {
      if (ctx.energy) ++ctx.energy->images;
      return static_cast<int>(
          std::max_element(ctx.scores.begin(), ctx.scores.end()) -
          ctx.scores.begin());
    }
    std::swap(ctx.bits, ctx.pooled_bits);
  }
  SEI_CHECK_MSG(false, "network has no classifier stage");
  return -1;
}

double SeiNetwork::error_rate(const data::Dataset& d, int max_images) const {
  const int n = max_images < 0 ? d.size() : std::min(max_images, d.size());
  SEI_CHECK(n > 0);
  const std::size_t per_image =
      d.images.numel() / static_cast<std::size_t>(d.size());
  const long long correct = exec::parallel_reduce<long long>(
      n, exec::kEvalGrain, 0LL, [&](int lo, int hi) {
        EvalContext ctx;
        long long c = 0;
        for (int i = lo; i < hi; ++i) {
          const std::span<const float> img{
              d.images.data() + static_cast<std::size_t>(i) * per_image,
              per_image};
          if (predict(img, ctx, i) == d.labels[static_cast<std::size_t>(i)])
            ++c;
        }
        // Batch chunks charge in bulk — every completed image costs the
        // same whole-network price, so per-stage metering in the hot loop
        // would only add stores (per-request attribution stays on the
        // serving path, which meters through EvalContext).
        if (meter_) {
          telemetry::EnergyAccum acc;
          const auto images = static_cast<std::uint64_t>(hi - lo);
          meter_->charge_stages(0, meter_->stage_count(), images, acc);
          acc.images = images;
          telemetry::publish_energy(telemetry::MetricsRegistry::global(),
                                    "sei_batch", acc);
        }
        return c;
      });
  return 100.0 * (1.0 - static_cast<double>(correct) / n);
}

std::vector<quant::BitMap> SeiNetwork::cache_stage_inputs(
    const data::Dataset& d, int stage, int max_images) const {
  SEI_CHECK(stage >= 1 && stage < stage_count());
  const int n = max_images < 0 ? d.size() : std::min(max_images, d.size());
  const std::size_t per_image =
      d.images.numel() / static_cast<std::size_t>(d.size());
  std::vector<quant::BitMap> out(static_cast<std::size_t>(n));
  exec::parallel_for_chunks(n, exec::kEvalGrain, [&](int lo, int hi) {
    EvalContext ctx;
    for (int i = lo; i < hi; ++i) {
      const std::span<const float> img{
          d.images.data() + static_cast<std::size_t>(i) * per_image,
          per_image};
      for (int s = 0; s < stage; ++s) {
        const MappedLayer& m = layers_[static_cast<std::size_t>(s)];
        SEI_CHECK_MSG(m.binarize, "cannot cache past the classifier");
        ctx.rng = stage_stream(i, s);
        if (s == 0)
          eval_stage_float(m, img, ctx.pooled_bits, ctx.scores, ctx);
        else
          eval_stage_bits(m, ctx.bits, ctx.pooled_bits, ctx.scores, ctx);
        std::swap(ctx.bits, ctx.pooled_bits);
      }
      out[static_cast<std::size_t>(i)] = ctx.bits;
    }
    // Partial evaluations (stages [0, stage) only): charged in bulk, no
    // image count — these are not full inferences.
    if (meter_) {
      telemetry::EnergyAccum acc;
      meter_->charge_stages(0, static_cast<std::size_t>(stage),
                            static_cast<std::uint64_t>(hi - lo), acc);
      telemetry::publish_energy(telemetry::MetricsRegistry::global(),
                                "sei_batch", acc);
    }
  });
  return out;
}

double SeiNetwork::error_rate_from(
    const data::Dataset& d, int stage,
    const std::vector<quant::BitMap>& inputs) const {
  SEI_CHECK(stage >= 1 && stage < stage_count());
  const int n = static_cast<int>(inputs.size());
  SEI_CHECK(n > 0 && n <= d.size());
  const long long correct = exec::parallel_reduce<long long>(
      n, exec::kEvalGrain, 0LL, [&](int lo, int hi) {
        EvalContext ctx;
        long long c = 0;
        for (int i = lo; i < hi; ++i) {
          ctx.bits = inputs[static_cast<std::size_t>(i)];
          int pred = -1;
          for (int s = stage; s < stage_count(); ++s) {
            const MappedLayer& m = layers_[static_cast<std::size_t>(s)];
            // Same per-(image, stage) stream a full predict would use, so
            // tail evaluation replays the identical noise draws.
            ctx.rng = stage_stream(i, s);
            eval_stage_bits(m, ctx.bits, ctx.pooled_bits, ctx.scores, ctx);
            if (!m.binarize) {
              pred = static_cast<int>(
                  std::max_element(ctx.scores.begin(), ctx.scores.end()) -
                  ctx.scores.begin());
              break;
            }
            std::swap(ctx.bits, ctx.pooled_bits);
          }
          if (pred == d.labels[static_cast<std::size_t>(i)]) ++c;
        }
        // Tail evaluations run stages [stage, end) per image: bulk-charge.
        if (meter_) {
          telemetry::EnergyAccum acc;
          const auto images = static_cast<std::uint64_t>(hi - lo);
          meter_->charge_stages(static_cast<std::size_t>(stage),
                                meter_->stage_count(), images, acc);
          acc.images = images;
          telemetry::publish_energy(telemetry::MetricsRegistry::global(),
                                    "sei_batch", acc);
        }
        return c;
      });
  return 100.0 * (1.0 - static_cast<double>(correct) / n);
}

int SeiNetwork::total_crossbars() const {
  int n = 0;
  for (const auto& l : layers_) n += l.crossbars;
  return n;
}

long long SeiNetwork::total_cells() const {
  long long n = 0;
  for (const auto& l : layers_) n += l.cells_used;
  return n;
}

}  // namespace sei::core
