#include "core/plan.hpp"

#include <algorithm>
#include <cmath>

#include "core/eval_context.hpp"
#include "core/simd_caps.hpp"

namespace sei::core {
namespace {

std::size_t words_for(std::size_t bits) { return (bits + 63) / 64; }

/// Folds stage `m`'s scratch needs into `sp` — bounds for BOTH engines of
/// the stage, so the same context serves the plan executor, the
/// interpreter, and either setting of the packed switch.
void bound_stage(const MappedLayer& m, int stage, ScratchPlan& sp) {
  const quant::StageGeometry& g = m.geom;
  const std::size_t cols = static_cast<std::size_t>(g.cols);
  const std::size_t k = static_cast<std::size_t>(std::max(1, m.block_count));
  const std::size_t positions =
      static_cast<std::size_t>(g.out_h) * static_cast<std::size_t>(g.out_w);
  const std::size_t in_bits = static_cast<std::size_t>(g.in_h) *
                              static_cast<std::size_t>(g.in_w) *
                              static_cast<std::size_t>(g.in_ch);
  const std::size_t pre_bits = positions * cols;
  const std::size_t pooled_bits = static_cast<std::size_t>(g.pooled_h) *
                                  static_cast<std::size_t>(g.pooled_w) * cols;

  sp.block_sums = std::max(sp.block_sums, k * cols);
  sp.n_active = std::max(sp.n_active, k);
  sp.pos_bits = std::max(sp.pos_bits, cols);
  sp.bitmap_bytes =
      std::max({sp.bitmap_bytes, pre_bits, pooled_bits, in_bits});
  sp.packed_words = std::max({sp.packed_words, words_for(pre_bits),
                              words_for(pooled_bits), words_for(in_bits)});
  if (!m.binarize) sp.scores = std::max(sp.scores, cols);

  // Packed hidden-stage kernels.
  const PackedStage& ps = m.packed;
  const std::size_t ps_words = std::max<std::size_t>(
      static_cast<std::size_t>(std::max(0, ps.words)),
      words_for(static_cast<std::size_t>(g.rows)));
  sp.window = std::max(sp.window, ps_words);
  if (!ps.block_loff.empty()) {
    const std::size_t lw = static_cast<std::size_t>(ps.block_loff[k]) * 8;
    sp.lw8 = std::max(sp.lw8, lw);
  }
  sp.nact8 = std::max(sp.nact8, k * 8);
  sp.sums8 = std::max(sp.sums8, k * cols * 8);

  // Stage-0 DAC engine.
  if (stage == 0) {
    sp.dac_vals = std::max(sp.dac_vals, in_bits);
    sp.dac_d = std::max(sp.dac_d, in_bits);
    // The scatter kernel's stride is k·cols per position; the dense
    // transpose uses cols·positions — the scatter bound covers both.
    sp.pos_sums = std::max(sp.pos_sums, positions * k * cols);
    sp.pos_active = std::max(sp.pos_active, positions * k);
    const std::size_t pwords = words_for(positions);
    sp.col_cmp = std::max(sp.col_cmp, cols * pwords);
    sp.col_pool = std::max(sp.col_pool, cols * pwords);
  }
}

template <typename T>
std::size_t span_bytes(std::size_t count) {
  return Arena::aligned(count * sizeof(T));
}

}  // namespace

void ScratchPlan::merge(const ScratchPlan& o) {
  block_sums = std::max(block_sums, o.block_sums);
  n_active = std::max(n_active, o.n_active);
  plane_sums = std::max(plane_sums, o.plane_sums);
  merged = std::max(merged, o.merged);
  window = std::max(window, o.window);
  dac_vals = std::max(dac_vals, o.dac_vals);
  dac_d = std::max(dac_d, o.dac_d);
  pos_bits = std::max(pos_bits, o.pos_bits);
  pos_sums = std::max(pos_sums, o.pos_sums);
  pos_active = std::max(pos_active, o.pos_active);
  col_cmp = std::max(col_cmp, o.col_cmp);
  col_pool = std::max(col_pool, o.col_pool);
  lw8 = std::max(lw8, o.lw8);
  nact8 = std::max(nact8, o.nact8);
  sums8 = std::max(sums8, o.sums8);
  scores = std::max(scores, o.scores);
  bitmap_bytes = std::max(bitmap_bytes, o.bitmap_bytes);
  packed_words = std::max(packed_words, o.packed_words);
  finalize();
}

bool ScratchPlan::covers(const ScratchPlan& o) const {
  return block_sums >= o.block_sums && n_active >= o.n_active &&
         plane_sums >= o.plane_sums && merged >= o.merged &&
         window >= o.window && dac_vals >= o.dac_vals && dac_d >= o.dac_d &&
         pos_bits >= o.pos_bits && pos_sums >= o.pos_sums &&
         pos_active >= o.pos_active && col_cmp >= o.col_cmp &&
         col_pool >= o.col_pool && lw8 >= o.lw8 && nact8 >= o.nact8 &&
         sums8 >= o.sums8 && scores >= o.scores &&
         bitmap_bytes >= o.bitmap_bytes && packed_words >= o.packed_words;
}

void ScratchPlan::finalize() {
  arena_bytes = span_bytes<double>(block_sums) + span_bytes<int>(n_active) +
                span_bytes<double>(plane_sums) + span_bytes<double>(merged) +
                span_bytes<std::uint64_t>(window) +
                span_bytes<float>(dac_vals) + span_bytes<double>(dac_d) +
                span_bytes<std::uint8_t>(pos_bits) +
                span_bytes<double>(pos_sums) + span_bytes<int>(pos_active) +
                span_bytes<std::uint64_t>(col_cmp) +
                span_bytes<std::uint64_t>(col_pool) +
                span_bytes<std::uint64_t>(lw8) +
                span_bytes<std::int32_t>(nact8) + span_bytes<double>(sums8);
}

StageEngine select_engine(const MappedLayer& m, int stage,
                          const HardwareConfig& /*cfg*/, bool packed_eval) {
  if (stage == 0) {
    // Stage 0 consumes DAC levels, not bits: the packed variant needs the
    // dense-sum exactness bound on top of integral weights.
    return packed_eval && m.packed.valid && m.packed.dac_exact
               ? StageEngine::kDacDense
               : StageEngine::kScalarFloat;
  }
  return packed_eval && m.packed.valid ? StageEngine::kPackedBits
                                       : StageEngine::kScalarBits;
}

PackedKernel select_packed_kernel(const MappedLayer& m,
                                  const HardwareConfig& cfg) {
  const quant::StageGeometry& g = m.geom;
  const PackedStage& ps = m.packed;
  const bool is_conv = g.kind == quant::StageSpec::Kind::Conv;
  const bool noise_free = cfg.device.read_noise_sigma <= 0.0;
  if (kHaveAvx512 && !ps.rows_ok && m.binarize && is_conv && g.cols <= 64 &&
      noise_free)
    return PackedKernel::kBatch8;
  if (kHaveAvx512 && ps.rows_ok && m.binarize && m.block_count == 1 &&
      g.cols <= 32 && noise_free)
    return PackedKernel::kRow16Cmp;
  return PackedKernel::kGeneric;
}

DacKernel select_dac_kernel(const MappedLayer& m) {
  const bool is_conv = m.geom.kind == quant::StageSpec::Kind::Conv;
  if (is_conv && m.binarize && m.block_count == 1)
    return DacKernel::kDenseTranspose;
  if (is_conv && m.binarize) return DacKernel::kScatter;
  return DacKernel::kGeneric;
}

CompiledPlan compile_plan(const std::vector<MappedLayer>& layers,
                          const HardwareConfig& cfg, bool packed_eval,
                          const telemetry::EnergyMeter* meter,
                          const std::vector<int>* skip_bounds) {
  CompiledPlan plan;
  plan.ops.reserve(layers.size());
  plan.priced_for = meter;
  ActForm live = ActForm::kImage;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const MappedLayer& m = layers[i];
    const quant::StageGeometry& g = m.geom;
    StageOp op;
    op.stage = static_cast<int>(i);
    op.engine = select_engine(m, op.stage, cfg, packed_eval);
    op.classifier = !m.binarize;
    op.pool_after = g.pool_after;
    op.rows = g.rows;
    op.cols = g.cols;
    op.blocks = m.block_count;
    op.positions = static_cast<long long>(g.out_h) * g.out_w;
    switch (op.engine) {
      case StageEngine::kScalarFloat:
      case StageEngine::kDacDense:
        op.in_form = ActForm::kImage;
        break;
      case StageEngine::kScalarBits:
        op.in_form = ActForm::kBytes;
        break;
      case StageEngine::kPackedBits:
        op.in_form = ActForm::kPacked;
        break;
    }
    // Explicit converts where the producing stage's form differs — what
    // the old runtime `packed_live` flag used to decide per request.
    op.pack_input = op.in_form == ActForm::kPacked && live == ActForm::kBytes;
    op.unpack_input =
        op.in_form == ActForm::kBytes && live == ActForm::kPacked;
    if (op.classifier) {
      op.out_form = ActForm::kScores;
    } else {
      op.out_form = (op.engine == StageEngine::kDacDense ||
                     op.engine == StageEngine::kPackedBits)
                        ? ActForm::kPacked
                        : ActForm::kBytes;
    }
    live = op.out_form;
    if (op.engine == StageEngine::kPackedBits)
      op.packed_kernel = select_packed_kernel(m, cfg);
    if (op.engine == StageEngine::kDacDense)
      op.dac_kernel = select_dac_kernel(m);
    // Sparsity: the skip predicate applies to the SEI hidden/classifier
    // stages only — stage 0 is DAC-driven through resistor ladders, its
    // rows have no transmission gates to switch off. A configured bound is
    // clamped to >= 0 so "bounds present" always implies activity tracking
    // (and per-row charging), even where the bound itself is 0.
    if (skip_bounds && !skip_bounds->empty() && op.stage > 0) {
      const std::size_t si = static_cast<std::size_t>(op.stage);
      const int b = si < skip_bounds->size() ? (*skip_bounds)[si] : 0;
      // The bound is a per-9-row-word popcount threshold
      // (SeiNetwork::kWordRows): bound 0 masks only all-zero words, which
      // keeps predictions bit-identical to the dense network.
      op.skip_bound = b > 0 ? b : 0;
    }
    if (meter && i < meter->stage_count()) {
      op.price = meter->stage(i);
      op.priced = true;
    }
    bound_stage(m, op.stage, plan.scratch);
    plan.ops.push_back(op);
  }
  plan.scratch.finalize();
  return plan;
}

void EvalContext::bind(const ScratchPlan& plan) {
  arena_.reset(plan.arena_bytes);
  // Carve order is fixed and mirrors ScratchPlan::finalize — the last carve
  // exactly exhausts the arena.
  block_sums.bind(arena_, plan.block_sums);
  n_active.bind(arena_, plan.n_active);
  plane_sums.bind(arena_, plan.plane_sums);
  merged.bind(arena_, plan.merged);
  window.bind(arena_, plan.window);
  dac_vals.bind(arena_, plan.dac_vals);
  dac_d.bind(arena_, plan.dac_d);
  pos_bits.bind(arena_, plan.pos_bits);
  pos_sums.bind(arena_, plan.pos_sums);
  pos_active.bind(arena_, plan.pos_active);
  col_cmp.bind(arena_, plan.col_cmp);
  col_pool.bind(arena_, plan.col_pool);
  lw8.bind(arena_, plan.lw8);
  nact8.bind(arena_, plan.nact8);
  sums8.bind(arena_, plan.sums8);
  // Swap-rotated buffers: every one of the trio can hold any stage's
  // largest map, so all reserve the shared bound.
  stage_bits.reserve(plan.bitmap_bytes);
  pooled_bits.reserve(plan.bitmap_bytes);
  bits.reserve(plan.bitmap_bytes);
  scores.reserve(plan.scores);
  packed_bits.words.reserve(plan.packed_words);
  packed_stage.words.reserve(plan.packed_words);
  packed_pooled.words.reserve(plan.packed_words);
  bound_ = plan;
  bound_has_value_ = true;
}

}  // namespace sei::core
