#include "core/adc_network.hpp"

#include <algorithm>
#include <cmath>

#include "core/bitpack.hpp"
#include "exec/thread_pool.hpp"
#include "quant/weight_quant.hpp"
#include "rram/crossbar.hpp"

namespace sei::core {

// or_pool_bytes / dac_quantize shared with the SEI engine (core/bitpack).

AdcNetwork::AdcNetwork(const quant::QNetwork& qnet, const AdcConfig& cfg,
                       const data::Dataset& calibration)
    : cfg_(cfg) {
  SEI_CHECK(!qnet.layers.empty());
  SEI_CHECK_MSG(cfg.adc_bits >= 1 && cfg.adc_bits <= 16,
                "adc bits out of range");
  const int db = cfg.device.bits;
  const int slices = (cfg.weight_bits - 1 + db - 1) / db;
  planes_ = 2 * slices;
  Rng rng(cfg.seed);

  for (const quant::QLayer& l : qnet.layers) {
    Stage st;
    st.geom = l.geom;
    st.binarize = l.binarize;
    const quant::QuantizedMatrix q =
        quant::quantize_weights(l.weight, cfg.weight_bits);
    st.weight_scale = q.scale;

    const int rows = l.geom.rows, cols = l.geom.cols;
    SEI_CHECK_MSG(cols <= cfg.limits.max_cols,
                  "stage has more columns than a crossbar");
    // One cell per logical row per plane → row blocks at the raw limit.
    const int k = (rows + cfg.limits.max_rows - 1) / cfg.limits.max_rows;
    st.block_count = k;
    st.row_to_block.resize(static_cast<std::size_t>(rows));
    const split::Partition part =
        split::partition_from_order(split::natural_order(rows), k);
    for (int b = 0; b < k; ++b)
      for (int r : part.blocks[static_cast<std::size_t>(b)])
        st.row_to_block[static_cast<std::size_t>(r)] = b;

    // Build the plane crossbars (one per slice × polarity × block) and
    // extract effective per-plane values.
    st.plane_eff.assign(static_cast<std::size_t>(planes_),
                        std::vector<float>(
                            static_cast<std::size_t>(rows) * cols, 0.0f));
    st.plane_coeff.resize(static_cast<std::size_t>(planes_));
    const int mask = (1 << db) - 1;
    for (int s = 0; s < slices; ++s) {
      const double coeff = std::exp2(db * (slices - 1 - s));
      st.plane_coeff[static_cast<std::size_t>(s)] = coeff;            // +
      st.plane_coeff[static_cast<std::size_t>(slices + s)] = -coeff;  // −
    }
    for (int b = 0; b < k; ++b) {
      const auto& block_rows = part.blocks[static_cast<std::size_t>(b)];
      for (int p = 0; p < planes_; ++p) {
        const int s = p % slices;
        const bool negative = p >= slices;
        rram::Crossbar xb(static_cast<int>(block_rows.size()), cols,
                          cfg.device, rng);
        for (std::size_t i = 0; i < block_rows.size(); ++i) {
          const int r = block_rows[i];
          for (int c = 0; c < cols; ++c) {
            const int v = q.at(r, c);
            if ((v < 0) != negative) continue;  // wrong-polarity plane: off
            const int field =
                (std::abs(v) >> (db * (slices - 1 - s))) & mask;
            xb.program(static_cast<int>(i), c, field);
          }
        }
        for (std::size_t i = 0; i < block_rows.size(); ++i) {
          const int r = block_rows[i];
          for (int c = 0; c < cols; ++c)
            st.plane_eff[static_cast<std::size_t>(p)]
                        [static_cast<std::size_t>(r) * cols + c] =
                static_cast<float>(xb.cell(static_cast<int>(i), c));
        }
      }
    }

    if (l.binarize) {
      st.col_threshold.resize(static_cast<std::size_t>(cols));
      for (int c = 0; c < cols; ++c)
        st.col_threshold[static_cast<std::size_t>(c)] =
            (l.threshold - l.bias[static_cast<std::size_t>(c)]) / q.scale;
    } else {
      st.col_bias.assign(l.bias.flat().begin(), l.bias.flat().end());
    }
    stages_.push_back(std::move(st));
  }

  // Scratch bounds of the built stages — the ADC pipeline's analogue of
  // compile_plan's ScratchPlan, computed once so serving contexts (and the
  // calibration loop below) bind with a single arena allocation.
  for (const Stage& st : stages_) {
    const quant::StageGeometry& g = st.geom;
    const std::size_t cols = static_cast<std::size_t>(g.cols);
    const std::size_t k =
        static_cast<std::size_t>(std::max(1, st.block_count));
    const std::size_t positions =
        static_cast<std::size_t>(g.out_h) * static_cast<std::size_t>(g.out_w);
    const std::size_t in_bits = static_cast<std::size_t>(g.in_h) *
                                static_cast<std::size_t>(g.in_w) *
                                static_cast<std::size_t>(g.in_ch);
    const std::size_t pooled_bits = static_cast<std::size_t>(g.pooled_h) *
                                    static_cast<std::size_t>(g.pooled_w) *
                                    cols;
    scratch_plan_.plane_sums = std::max(
        scratch_plan_.plane_sums, static_cast<std::size_t>(planes_) * k * cols);
    scratch_plan_.merged = std::max(scratch_plan_.merged, cols);
    scratch_plan_.bitmap_bytes =
        std::max({scratch_plan_.bitmap_bytes, positions * cols, pooled_bits,
                  in_bits});
    if (!st.binarize) scratch_plan_.scores = std::max(scratch_plan_.scores, cols);
  }
  scratch_plan_.finalize();

  // Calibrate the ADC full scales: run the calibration images with the
  // quantizer bypassed, tracking the per-stage maximum plane current. Max
  // commutes exactly, so the parallel merge is order-independent and the
  // chosen full scales are bit-identical at any thread count.
  ideal_ = true;
  const int n = std::min(calibration.size(), cfg.calibration_images);
  const std::size_t per_image =
      calibration.images.numel() / static_cast<std::size_t>(calibration.size());
  const std::size_t n_stages = stages_.size();
  const std::vector<double> observed = exec::parallel_reduce<std::vector<double>>(
      n, exec::kEvalGrain, std::vector<double>(n_stages, 0.0),
      [&](int lo, int hi) {
        EvalContext ctx;
        ctx.observed_max.assign(n_stages, 0.0);
        for (int i = lo; i < hi; ++i)
          (void)predict({calibration.images.data() +
                             static_cast<std::size_t>(i) * per_image,
                         per_image},
                        ctx);
        return ctx.observed_max;
      },
      [](std::vector<double> a, const std::vector<double>& b) {
        for (std::size_t s = 0; s < a.size(); ++s) a[s] = std::max(a[s], b[s]);
        return a;
      });
  ideal_ = false;
  for (std::size_t s = 0; s < n_stages; ++s) {
    SEI_CHECK_MSG(observed[s] > 0.0, "ADC calibration saw no current");
    stages_[s].full_scale = observed[s];
  }
}

double AdcNetwork::adc_quantize(double current, double full_scale) const {
  const double codes = std::exp2(cfg_.adc_bits) - 1.0;
  const double lsb = full_scale / codes;
  const double clamped = std::clamp(current, 0.0, full_scale);
  return std::round(clamped / lsb) * lsb;
}

void AdcNetwork::run_stage(const Stage& st, int stage_index,
                           const quant::BitMap* bits_in,
                           std::span<const float> float_in,
                           quant::BitMap& bits_out,
                           std::vector<float>& scores,
                           EvalContext& ctx) const {
  const quant::StageGeometry& g = st.geom;
  const int cols = g.cols, k = st.block_count;
  const std::size_t lanes =
      static_cast<std::size_t>(planes_) * k * cols;  // plane-block sums
  ctx.plane_sums.assign(lanes, 0.0);

  const std::size_t positions = static_cast<std::size_t>(g.out_h) * g.out_w;
  if (st.binarize) ctx.stage_bits.assign(positions * cols, 0);
  else scores.assign(static_cast<std::size_t>(cols), 0.0f);

  const bool is_conv = g.kind == quant::StageSpec::Kind::Conv;
  const int span = is_conv ? g.kernel * g.in_ch : g.rows;
  const int window_rows = is_conv ? g.kernel : 1;

  for (int y = 0; y < g.out_h; ++y) {
    for (int x = 0; x < g.out_w; ++x) {
      std::fill(ctx.plane_sums.begin(), ctx.plane_sums.end(), 0.0);
      for (int di = 0; di < window_rows; ++di) {
        const std::size_t in_off =
            is_conv
                ? (static_cast<std::size_t>(y + di) * g.in_w + x) * g.in_ch
                : 0;
        const int r0 = di * span;
        for (int t = 0; t < span; ++t) {
          double drive;
          if (bits_in) {
            if (!(*bits_in)[in_off + static_cast<std::size_t>(t)]) continue;
            drive = 1.0;
          } else {
            drive = dac_quantize(float_in[in_off + static_cast<std::size_t>(t)],
                                 cfg_.input_bits);
            if (drive == 0.0) continue;
          }
          const int r = r0 + t;
          const int b = st.row_to_block[static_cast<std::size_t>(r)];
          for (int p = 0; p < planes_; ++p) {
            const float* eff =
                st.plane_eff[static_cast<std::size_t>(p)].data() +
                static_cast<std::size_t>(r) * cols;
            double* sums =
                ctx.plane_sums.data() +
                (static_cast<std::size_t>(p) * k + b) * cols;
            for (int c = 0; c < cols; ++c) sums[c] += drive * eff[c];
          }
        }
      }

      // ADC quantization of every plane-block current + digital merge.
      ctx.merged.assign(static_cast<std::size_t>(cols), 0.0);
      for (int p = 0; p < planes_; ++p) {
        const double coeff = st.plane_coeff[static_cast<std::size_t>(p)];
        for (int b = 0; b < k; ++b) {
          const double* sums =
              ctx.plane_sums.data() +
              (static_cast<std::size_t>(p) * k + b) * cols;
          for (int c = 0; c < cols; ++c) {
            double v = sums[c];
            if (ideal_) {
              double& peak =
                  ctx.observed_max[static_cast<std::size_t>(stage_index)];
              peak = std::max(peak, v);
            } else {
              v = adc_quantize(v, st.full_scale);
            }
            ctx.merged[static_cast<std::size_t>(c)] += coeff * v;
          }
        }
      }

      if (st.binarize) {
        std::uint8_t* out =
            ctx.stage_bits.data() +
            (static_cast<std::size_t>(y) * g.out_w + x) * cols;
        for (int c = 0; c < cols; ++c)
          out[c] = ctx.merged[static_cast<std::size_t>(c)] >
                           static_cast<double>(
                               st.col_threshold[static_cast<std::size_t>(c)])
                       ? 1
                       : 0;
      } else {
        for (int c = 0; c < cols; ++c)
          scores[static_cast<std::size_t>(c)] +=
              static_cast<float>(ctx.merged[static_cast<std::size_t>(c)] *
                                 st.weight_scale) +
              st.col_bias[static_cast<std::size_t>(c)];
      }
    }
  }

  if (st.binarize) {
    if (g.pool_after)
      or_pool_bytes(ctx.stage_bits, g.out_h, g.out_w, cols, bits_out);
    else
      bits_out = ctx.stage_bits;
  }
}

int AdcNetwork::predict(std::span<const float> image) const {
  EvalContext ctx;
  return predict(image, ctx);
}

int AdcNetwork::predict(std::span<const float> image, EvalContext& ctx) const {
  SEI_CHECK_MSG(ctx.cancel == nullptr,
                "predict() cannot take a cancel token — use try_predict()");
  return try_predict(image, ctx).value();
}

Result<int> AdcNetwork::try_predict(std::span<const float> image,
                                    EvalContext& ctx) const {
  prepare(ctx);
  if (ideal_ && ctx.observed_max.size() < stages_.size())
    ctx.observed_max.resize(stages_.size(), 0.0);
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (ctx.cancel && ctx.cancel->expired()) return ctx.cancel->to_error();
    const Stage& st = stages_[i];
    if (i == 0)
      run_stage(st, static_cast<int>(i), nullptr, image, ctx.pooled_bits,
                ctx.scores, ctx);
    else
      run_stage(st, static_cast<int>(i), &ctx.bits, {}, ctx.pooled_bits,
                ctx.scores, ctx);
    if (ctx.meter && ctx.energy) ctx.meter->charge_stage(i, *ctx.energy);
    if (!st.binarize) {
      if (ctx.energy) ++ctx.energy->images;
      return static_cast<int>(
          std::max_element(ctx.scores.begin(), ctx.scores.end()) -
          ctx.scores.begin());
    }
    std::swap(ctx.bits, ctx.pooled_bits);
  }
  SEI_CHECK_MSG(false, "network has no classifier stage");
  return -1;
}

double AdcNetwork::error_rate(const data::Dataset& d, int max_images) const {
  const int n = max_images < 0 ? d.size() : std::min(max_images, d.size());
  SEI_CHECK(n > 0);
  const std::size_t per_image =
      d.images.numel() / static_cast<std::size_t>(d.size());
  const long long correct = exec::parallel_reduce<long long>(
      n, exec::kEvalGrain, 0LL, [&](int lo, int hi) {
        EvalContext ctx;
        long long c = 0;
        for (int i = lo; i < hi; ++i) {
          const std::span<const float> img{
              d.images.data() + static_cast<std::size_t>(i) * per_image,
              per_image};
          if (predict(img, ctx) == d.labels[static_cast<std::size_t>(i)]) ++c;
        }
        // Bulk-charge the chunk (see SeiNetwork::error_rate): every image
        // costs the same whole-network price.
        if (meter_) {
          telemetry::EnergyAccum acc;
          const auto images = static_cast<std::uint64_t>(hi - lo);
          meter_->charge_stages(0, meter_->stage_count(), images, acc);
          acc.images = images;
          telemetry::publish_energy(telemetry::MetricsRegistry::global(),
                                    "adc_batch", acc);
        }
        return c;
      });
  return 100.0 * (1.0 - static_cast<double>(correct) / n);
}

}  // namespace sei::core
