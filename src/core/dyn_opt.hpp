// Training-set optimization of the splitting compensation knobs
// (Section 4.3, "compensating posteriori knowledge of input data").
//
// For every hidden stage that splits into K ≥ 2 crossbars, grid-search:
//   * the digital vote threshold V (how many of the K block bits must fire);
//   * the dynamic-threshold slope β — each block's sense-amp reference is
//     Thres/K + β·|w̄|·(n_active_block − n_active_mean), realized in hardware
//     by the input-selected extra RRAM column of Fig. 4.
// Stages are optimized front to back (greedy, like Algorithm 1), each on the
// training set with earlier stages' choices already applied.
#pragma once

#include "core/sei_network.hpp"

namespace sei::core {

struct DynThreshConfig {
  std::vector<double> beta_grid{0.0, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0};
  bool optimize_vote = true;  // else keep the majority-vote default
  int max_images = 1500;      // training subset used for the search
};

struct DynThreshChoice {
  int stage = 0;
  int block_count = 1;
  int vote = 1;
  double beta = 0.0;
  double train_error_before_pct = 0.0;
  double train_error_after_pct = 0.0;
};

struct DynThreshResult {
  std::vector<DynThreshChoice> choices;  // one per optimized (split) stage
};

/// Mutates `net`'s split stages in place with the best (V, β) found.
DynThreshResult optimize_dynamic_threshold(SeiNetwork& net,
                                           const data::Dataset& train,
                                           const DynThreshConfig& cfg = {});

}  // namespace sei::core
