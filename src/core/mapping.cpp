#include "core/mapping.hpp"

#include <cmath>

#include "split/homogenize.hpp"

namespace sei::core {

std::string to_string(StructureKind k) {
  switch (k) {
    case StructureKind::kDacAdc8: return "DAC+ADC";
    case StructureKind::kBinInputAdc: return "1-bit-Input+ADC";
    case StructureKind::kSei: return "SEI";
  }
  return "?";
}

namespace {

int bit_slices(int value_bits, int device_bits) {
  return (value_bits + device_bits - 1) / device_bits;
}

/// Field values of a non-negative magnitude, most significant slice first.
std::vector<int> slice_fields(int magnitude, int slices, int device_bits) {
  std::vector<int> fields(static_cast<std::size_t>(slices));
  const int mask = (1 << device_bits) - 1;
  for (int j = 0; j < slices; ++j) {
    const int shift = device_bits * (slices - 1 - j);
    fields[static_cast<std::size_t>(j)] = (magnitude >> shift) & mask;
  }
  return fields;
}

}  // namespace

int HardwareConfig::cells_per_weight() const {
  const int db = device.bits;
  if (sign_mode == SignMode::kBipolarPort)
    return 2 * bit_slices(weight_bits - 1, db);
  return bit_slices(weight_bits, db);
}

std::vector<double> port_coefficients(const HardwareConfig& cfg) {
  const int db = cfg.device.bits;
  std::vector<double> coeffs;
  if (cfg.sign_mode == SignMode::kBipolarPort) {
    const int slices = bit_slices(cfg.weight_bits - 1, db);
    for (int j = 0; j < slices; ++j)
      coeffs.push_back(std::exp2(db * (slices - 1 - j)));
    for (int j = 0; j < slices; ++j)
      coeffs.push_back(-std::exp2(db * (slices - 1 - j)));
  } else {
    const int slices = bit_slices(cfg.weight_bits, db);
    for (int j = 0; j < slices; ++j)
      coeffs.push_back(std::exp2(db * (slices - 1 - j)));
  }
  return coeffs;
}

int column_blocks(int cols, const HardwareConfig& cfg) {
  const int extra = cfg.sign_mode == SignMode::kUnipolarDynThresh ? 1 : 0;
  const int usable = cfg.limits.max_cols - extra;
  SEI_CHECK_MSG(usable >= 1, "crossbar cannot hold any output column");
  return (cols + usable - 1) / usable;
}

std::vector<rram::Crossbar> build_block_crossbars(
    const quant::QuantizedMatrix& q, const HardwareConfig& cfg,
    const split::Partition& partition, Rng& rng) {
  const int db = cfg.device.bits;
  const int cpw = cfg.cells_per_weight();
  const bool unipolar = cfg.sign_mode == SignMode::kUnipolarDynThresh;
  const int w0 = (1 << (cfg.weight_bits - 1)) - 1;  // shift making w* ≥ 0

  // Columns wider than one crossbar partition freely: each column group
  // owns disjoint outputs, so no merging is ever needed across groups
  // (the paper therefore only discusses the row direction).
  const int cgroups = column_blocks(q.cols, cfg);
  const int group_cols = (q.cols + cgroups - 1) / cgroups;

  std::vector<rram::Crossbar> xbars;
  xbars.reserve(partition.blocks.size() * static_cast<std::size_t>(cgroups));
  for (const auto& rows : partition.blocks) {
    const int phys_rows = static_cast<int>(rows.size()) * cpw;
    const int spares =
        split::spare_rows_for(phys_rows, cfg.spare_row_fraction);
    SEI_CHECK_MSG(phys_rows + spares <= cfg.limits.max_rows,
                  "block of " << rows.size() << " logical rows (+" << spares
                              << " spares) exceeds the " << cfg.limits.max_rows
                              << "-row crossbar limit");
    for (int g = 0; g < cgroups; ++g) {
      const int c0 = g * group_cols;
      const int c1 = std::min(q.cols, c0 + group_cols);
      const int local_cols = c1 - c0;
      rram::Crossbar xb(phys_rows, local_cols + (unipolar ? 1 : 0),
                        cfg.device, rng, spares);

      for (std::size_t i = 0; i < rows.size(); ++i) {
        const int r = rows[i];
        const int base = static_cast<int>(i) * cpw;
        for (int c = c0; c < c1; ++c) {
          const int v = q.at(r, c);
          if (unipolar) {
            const int slices = bit_slices(cfg.weight_bits, db);
            const auto fields = slice_fields(v + w0, slices, db);
            for (int j = 0; j < slices; ++j)
              xb.program(base + j, c - c0,
                         fields[static_cast<std::size_t>(j)]);
          } else {
            const int slices = bit_slices(cfg.weight_bits - 1, db);
            const auto fields = slice_fields(std::abs(v), slices, db);
            const int polarity_base = v >= 0 ? base : base + slices;
            for (int j = 0; j < slices; ++j)
              xb.program(polarity_base + j, c - c0,
                         fields[static_cast<std::size_t>(j)]);
            // The opposite-polarity cells stay at level 0 (off).
          }
        }
        if (unipolar) {
          // Dynamic-threshold column: stores w0 for every logical row.
          const int slices = bit_slices(cfg.weight_bits, db);
          const auto fields = slice_fields(w0, slices, db);
          for (int j = 0; j < slices; ++j)
            xb.program(base + j, local_cols,
                       fields[static_cast<std::size_t>(j)]);
        }
      }
      xbars.push_back(std::move(xb));
    }
  }
  return xbars;
}

std::vector<int> default_row_order(const quant::QLayer& layer,
                                   const HardwareConfig& cfg) {
  const int k =
      split::blocks_needed(layer.geom.rows, cfg.limits.max_rows,
                           cfg.cells_per_weight(), cfg.spare_row_fraction);
  if (k <= 1 || !cfg.homogenize) return split::natural_order(layer.geom.rows);
  split::HomogenizeConfig hcfg;
  hcfg.iterations = cfg.homogenize_iterations;
  hcfg.seed = cfg.seed ^ 0x4a0b1c2dULL;
  return split::homogenize_rows(layer.weight, k, hcfg).order;
}

MappedLayer map_layer(const quant::QLayer& layer, const HardwareConfig& cfg,
                      const std::vector<int>& row_order, Rng& rng,
                      const CrossbarHook& hook) {
  const quant::StageGeometry& g = layer.geom;
  SEI_CHECK(static_cast<int>(row_order.size()) == g.rows);

  MappedLayer m;
  m.geom = g;
  m.binarize = layer.binarize;
  m.physical_rows_per_weight = cfg.cells_per_weight();

  const quant::QuantizedMatrix q =
      quant::quantize_weights(layer.weight, cfg.weight_bits);
  m.weight_scale = q.scale;

  const int k =
      split::blocks_needed(g.rows, cfg.limits.max_rows,
                           cfg.cells_per_weight(), cfg.spare_row_fraction);
  m.partition = split::partition_from_order(row_order, k);
  m.block_count = k;
  m.vote_threshold = (k + 1) / 2;  // majority vote by default
  m.row_to_block.assign(static_cast<std::size_t>(g.rows), 0);
  for (int b = 0; b < k; ++b)
    for (int r : m.partition.blocks[static_cast<std::size_t>(b)])
      m.row_to_block[static_cast<std::size_t>(r)] = b;

  auto xbars = build_block_crossbars(q, cfg, m.partition, rng);
  // Post-programming maintenance: age the arrays (conductance drift), then
  // let the reliability hook diagnose/repair before cells are snapshotted.
  for (auto& xb : xbars) {
    if (cfg.device.drift_t_s > 0) xb.age(cfg.device.drift_t_s);
    if (hook) hook(xb, rng);
  }
  const auto coeffs = port_coefficients(cfg);
  const int cpw = cfg.cells_per_weight();
  const bool unipolar = cfg.sign_mode == SignMode::kUnipolarDynThresh;
  const int cgroups = column_blocks(g.cols, cfg);
  const int group_cols = (g.cols + cgroups - 1) / cgroups;
  SEI_CHECK(static_cast<int>(xbars.size()) == k * cgroups);

  // Reduce the physical cells to effective per-(row, col) analog values.
  m.eff.assign(static_cast<std::size_t>(g.rows) * g.cols, 0.0f);
  double mis = 0.0;
  for (int b = 0; b < k; ++b) {
    const auto& rows = m.partition.blocks[static_cast<std::size_t>(b)];
    for (int cg = 0; cg < cgroups; ++cg) {
      const rram::Crossbar& xb =
          xbars[static_cast<std::size_t>(b) * cgroups + cg];
      const int c0 = cg * group_cols;
      const int c1 = std::min(g.cols, c0 + group_cols);
      const int local_cols = c1 - c0;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const int r = rows[i];
        const int base = static_cast<int>(i) * cpw;
        double w0_eff = 0.0;
        if (unipolar) {
          for (int j = 0; j < cpw; ++j)
            w0_eff += coeffs[static_cast<std::size_t>(j)] *
                      xb.cell(base + j, local_cols);
        }
        for (int c = c0; c < c1; ++c) {
          double v = 0.0;
          for (int j = 0; j < cpw; ++j)
            v += coeffs[static_cast<std::size_t>(j)] *
                 xb.cell(base + j, c - c0);
          if (unipolar) v -= w0_eff;  // threshold-side subtraction (Equ. 9)
          m.eff[static_cast<std::size_t>(r) * g.cols + c] =
              static_cast<float>(v);
        }
      }
      m.cells_used += static_cast<long long>(xb.physical_rows()) * xb.cols();
      m.spare_cells +=
          static_cast<long long>(xb.spare_rows_total()) * xb.cols();
      mis += xb.misprogrammed_fraction();
    }
  }
  m.crossbars = k * cgroups;
  m.misprogrammed_fraction = mis / (k * cgroups);

  // Per-column thresholds / biases in integer-weight units.
  if (layer.binarize) {
    m.col_threshold.resize(static_cast<std::size_t>(g.cols));
    for (int c = 0; c < g.cols; ++c)
      m.col_threshold[static_cast<std::size_t>(c)] =
          (layer.threshold - layer.bias[static_cast<std::size_t>(c)]) /
          q.scale;
  } else {
    m.col_bias.assign(layer.bias.flat().begin(), layer.bias.flat().end());
  }

  // Static sense-amp offsets (one comparator per block × column).
  if (cfg.sa_offset_sigma > 0.0 && layer.binarize) {
    m.sa_offset.resize(static_cast<std::size_t>(k) * g.cols);
    for (auto& o : m.sa_offset)
      o = static_cast<float>(rng.gaussian(0.0, cfg.sa_offset_sigma));
  }

  double abs_sum = 0.0;
  for (float v : m.eff) abs_sum += std::fabs(v);
  m.mean_abs_eff = static_cast<float>(abs_sum / m.eff.size());

  m.packed = build_packed_stage(m.eff, g.rows, g.cols, m.row_to_block,
                                m.block_count, cfg.input_bits);
  return m;
}

}  // namespace sei::core
