// Arena-backed scratch storage for EvalContext (docs/plans.md §4).
//
// Plan compilation (core/plan.cpp) knows the exact high-water size of every
// scratch buffer an evaluation can touch, so a context binds once to a plan:
// one arena allocation, typed spans carved out of it, and every subsequent
// resize/assign inside the engines is a pointer bump within the carved
// capacity — zero heap traffic per request on the serving path.
//
// A Scratch<T> is the vector-subset facade the engines use. Unbound (no
// plan — calibration loops, ad-hoc tests) it degrades to an owned
// std::vector. Bound, a resize beyond the carved capacity also falls back
// to the owned vector: correctness never depends on the plan's bounds being
// right — the telemetry allocation counters (and the CI zero-alloc gate)
// are what enforce that the fallback never fires on the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sei::core {

/// One grow-only block of bytes; spans are carved front to back.
class Arena {
 public:
  static constexpr std::size_t kAlign = 64;  // cache line / zmm load

  static constexpr std::size_t aligned(std::size_t bytes) {
    return (bytes + kAlign - 1) / kAlign * kAlign;
  }

  /// (Re)allocates the block when `bytes` exceeds the current capacity and
  /// restarts carving from the front. Existing carved spans are invalidated
  /// — callers re-bind every Scratch after a reset.
  void reset(std::size_t bytes) {
    if (bytes > cap_) {
      block_.reset(new (std::align_val_t{kAlign}) std::byte[bytes]);
      cap_ = bytes;
    }
    used_ = 0;
  }

  /// Next `bytes` of the block, 64-byte aligned. Returns nullptr when the
  /// block is exhausted (the caller's Scratch then stays unbound).
  void* carve(std::size_t bytes) {
    const std::size_t take = aligned(bytes);
    if (used_ + take > cap_) return nullptr;
    void* p = block_.get() + used_;
    used_ += take;
    return p;
  }

  std::size_t capacity() const { return cap_; }
  std::size_t used() const { return used_; }

 private:
  struct AlignedDelete {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t{Arena::kAlign});
    }
  };
  std::unique_ptr<std::byte[], AlignedDelete> block_;
  std::size_t cap_ = 0;
  std::size_t used_ = 0;
};

/// Vector-subset scratch span: resize/assign/data/iterators/indexing — the
/// operations the evaluation engines use. Trivially-copyable T only.
template <typename T>
class Scratch {
 public:
  /// Points this scratch at `count` elements carved from `a`. Pass the
  /// arena by reference after Arena::reset; a failed carve leaves the
  /// scratch unbound (owned-vector fallback).
  void bind(Arena& a, std::size_t count) {
    bound_ = static_cast<T*>(a.carve(count * sizeof(T)));
    bound_cap_ = bound_ ? count : 0;
    data_ = bound_ ? bound_ : owned_.data();
    size_ = 0;
  }

  void unbind() {
    bound_ = nullptr;
    bound_cap_ = 0;
    data_ = owned_.data();
    size_ = 0;
  }

  void resize(std::size_t n) {
    if (bound_ && n <= bound_cap_) {
      data_ = bound_;
    } else {
      if (owned_.size() < n) owned_.resize(n);
      data_ = owned_.data();
    }
    size_ = n;
  }

  void assign(std::size_t n, T value) {
    resize(n);
    for (std::size_t i = 0; i < n; ++i) data_[i] = value;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  bool is_bound() const { return bound_ != nullptr; }

 private:
  T* bound_ = nullptr;         // arena span (nullptr: owned fallback only)
  std::size_t bound_cap_ = 0;  // elements the span holds
  T* data_ = nullptr;          // active storage for [0, size_)
  std::size_t size_ = 0;
  std::vector<T> owned_;       // fallback storage, grow-only
};

}  // namespace sei::core
