#include "exec/thread_pool.hpp"

namespace sei::exec {

namespace {
thread_local bool tl_in_task = false;
}  // namespace

bool ThreadPool::in_task() { return tl_in_task; }

int ThreadPool::resolve_threads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) : threads_(resolve_threads(threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i + 1 < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::drain(const std::function<void(int)>& fn,
                       std::uint64_t gen) {
  for (;;) {
    int chunk;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (gen_ != gen || next_chunk_ >= chunks_) return;
      // Cooperative cancellation: an expired token abandons the unclaimed
      // chunks (already-claimed ones finish; their results are discarded by
      // the submitter, which throws Cancelled instead of returning).
      if (token_ && token_->expired()) {
        next_chunk_ = chunks_;
        aborted_ = true;
        return;
      }
      chunk = next_chunk_++;
      ++claimed_;
    }
    const bool was_in_task = tl_in_task;
    tl_in_task = true;
    std::exception_ptr err;
    try {
      fn(chunk);
    } catch (...) {
      err = std::current_exception();
    }
    tl_in_task = was_in_task;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (gen_ == gen) {
        if (err) {
          if (!error_) error_ = err;
          next_chunk_ = chunks_;  // abandon unclaimed chunks
        }
        ++completed_;
      }
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    std::uint64_t gen = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] {
        return stop_ || (job_ != nullptr && next_chunk_ < chunks_);
      });
      if (stop_) return;
      job = job_;
      gen = gen_;
    }
    drain(*job, gen);
    done_cv_.notify_one();
  }
}

void ThreadPool::run_chunks(int chunks, const std::function<void(int)>& fn,
                            const CancelToken* token) {
  if (chunks <= 0) return;
  bool inline_run = threads_ == 1 || chunks == 1 || tl_in_task;
  if (!inline_run) {
    // A second top-level submitter while a job is in flight falls back to
    // inline execution — same results, no queue contention.
    std::lock_guard<std::mutex> lk(mu_);
    if (job_ != nullptr) inline_run = true;
  }
  if (inline_run) {
    for (int c = 0; c < chunks; ++c) {
      if (token && token->expired()) throw Cancelled("batch cancelled");
      fn(c);
    }
    return;
  }

  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lk(mu_);
    gen = ++gen_;
    job_ = &fn;
    token_ = token;
    chunks_ = chunks;
    next_chunk_ = 0;
    claimed_ = 0;
    completed_ = 0;
    aborted_ = false;
    error_ = nullptr;
  }
  work_cv_.notify_all();
  drain(fn, gen);  // the submitting thread participates

  std::exception_ptr err;
  bool aborted = false;
  {
    // An errored job abandons its unclaimed chunks, so completion means
    // "nothing left to claim and every claimed chunk finished" — not
    // completed_ == chunks_.
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] {
      return next_chunk_ >= chunks_ && completed_ == claimed_;
    });
    job_ = nullptr;
    token_ = nullptr;
    err = error_;
    error_ = nullptr;
    aborted = aborted_;
    aborted_ = false;
  }
  if (err) std::rethrow_exception(err);
  if (aborted) throw Cancelled("batch cancelled");
}

namespace {
std::mutex g_default_mu;
std::unique_ptr<ThreadPool> g_default_pool;
int g_default_threads = 0;  // 0 = hardware concurrency
}  // namespace

ThreadPool& default_pool() {
  std::lock_guard<std::mutex> lk(g_default_mu);
  if (!g_default_pool)
    g_default_pool = std::make_unique<ThreadPool>(g_default_threads);
  return *g_default_pool;
}

void set_default_threads(int threads) {
  SEI_CHECK_MSG(threads >= 0,
                "thread count cannot be negative, got " << threads);
  std::lock_guard<std::mutex> lk(g_default_mu);
  SEI_CHECK_MSG(!ThreadPool::in_task(),
                "cannot reconfigure the default pool from inside a task");
  if (g_default_pool &&
      g_default_pool->thread_count() == ThreadPool::resolve_threads(threads)) {
    g_default_threads = threads;
    return;
  }
  g_default_pool.reset();  // joins any workers
  g_default_threads = threads;
}

int default_threads() {
  std::lock_guard<std::mutex> lk(g_default_mu);
  if (g_default_pool) return g_default_pool->thread_count();
  return ThreadPool::resolve_threads(g_default_threads);
}

}  // namespace sei::exec
