#include "exec/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#if defined(__linux__)
#include <sched.h>

#include <cstdio>
#endif

namespace sei::exec {

namespace {
thread_local bool tl_in_task = false;

// Chaos seam: consulted once per chunk, before the body runs. The flag is
// the fast-path gate (one relaxed load when unset); the function object is
// written only at quiescent points per the header contract.
std::function<void(int)> g_chunk_delay_hook;
std::atomic<bool> g_chunk_delay_hook_set{false};

inline void maybe_chunk_delay(int chunk) {
  if (g_chunk_delay_hook_set.load(std::memory_order_acquire))
    g_chunk_delay_hook(chunk);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(__linux__)
/// cgroup v2 CPU quota in whole CPUs (ceil), or 0 when unlimited/unknown.
int cgroup_cpu_limit() {
  std::FILE* f = std::fopen("/sys/fs/cgroup/cpu.max", "r");
  if (!f) return 0;
  long long quota = 0, period = 0;
  char first[32] = {0};
  int cpus = 0;
  if (std::fscanf(f, "%31s %lld", first, &period) == 2 &&
      std::sscanf(first, "%lld", &quota) == 1 && quota > 0 && period > 0)
    cpus = static_cast<int>((quota + period - 1) / period);
  std::fclose(f);
  return cpus;
}
#endif
}  // namespace

bool ThreadPool::in_task() { return tl_in_task; }

int ThreadPool::effective_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  int n = hw ? static_cast<int>(hw) : 1;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int affinity = CPU_COUNT(&mask);
    if (affinity > 0) n = std::min(n, affinity);
  }
  const int quota = cgroup_cpu_limit();
  if (quota > 0) n = std::min(n, quota);
#endif
  return n > 0 ? n : 1;
}

int ThreadPool::resolve_threads(int threads) {
  if (threads > 0) return threads;
  return effective_concurrency();
}

ThreadPool::ThreadPool(int threads) : threads_(resolve_threads(threads)) {
  slot_busy_ns_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(
          static_cast<std::size_t>(threads_));
  slot_chunks_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(
          static_cast<std::size_t>(threads_));
  for (int i = 0; i < threads_; ++i) {
    slot_busy_ns_[i].store(0, std::memory_order_relaxed);
    slot_chunks_[i].store(0, std::memory_order_relaxed);
  }
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i + 1 < threads_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.workers.resize(static_cast<std::size_t>(threads_));
  for (int i = 0; i < threads_; ++i) {
    s.workers[static_cast<std::size_t>(i)].busy_ns =
        slot_busy_ns_[i].load(std::memory_order_relaxed);
    s.workers[static_cast<std::size_t>(i)].chunks =
        slot_chunks_[i].load(std::memory_order_relaxed);
  }
  s.jobs = jobs_.load(std::memory_order_relaxed);
  s.inline_jobs = inline_jobs_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::reset_stats() {
  for (int i = 0; i < threads_; ++i) {
    slot_busy_ns_[i].store(0, std::memory_order_relaxed);
    slot_chunks_[i].store(0, std::memory_order_relaxed);
  }
  jobs_.store(0, std::memory_order_relaxed);
  inline_jobs_.store(0, std::memory_order_relaxed);
}

void ThreadPool::drain(const std::function<void(int)>& fn, std::uint64_t gen,
                       int slot) {
  for (;;) {
    int chunk;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (gen_ != gen || next_chunk_ >= chunks_) return;
      // Cooperative cancellation: an expired token abandons the unclaimed
      // chunks (already-claimed ones finish; their results are discarded by
      // the submitter, which throws Cancelled instead of returning).
      if (token_ && token_->expired()) {
        next_chunk_ = chunks_;
        aborted_ = true;
        return;
      }
      chunk = next_chunk_++;
      ++claimed_;
    }
    const bool was_in_task = tl_in_task;
    tl_in_task = true;
    std::uint64_t t0 = 0;
    if constexpr (telemetry::kEnabled) t0 = now_ns();
    std::exception_ptr err;
    try {
      maybe_chunk_delay(chunk);
      fn(chunk);
    } catch (...) {
      err = std::current_exception();
    }
    if constexpr (telemetry::kEnabled) {
      slot_busy_ns_[slot].fetch_add(now_ns() - t0, std::memory_order_relaxed);
      slot_chunks_[slot].fetch_add(1, std::memory_order_relaxed);
    }
    tl_in_task = was_in_task;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (gen_ == gen) {
        if (err) {
          if (!error_) error_ = err;
          next_chunk_ = chunks_;  // abandon unclaimed chunks
        }
        ++completed_;
      }
    }
  }
}

void ThreadPool::worker_loop(int slot) {
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    std::uint64_t gen = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] {
        return stop_ || (job_ != nullptr && next_chunk_ < chunks_);
      });
      if (stop_) return;
      job = job_;
      gen = gen_;
    }
    drain(*job, gen, slot);
    done_cv_.notify_one();
  }
}

void ThreadPool::run_chunks(int chunks, const std::function<void(int)>& fn,
                            const CancelToken* token) {
  if (chunks <= 0) return;
  const bool nested = tl_in_task;
  bool inline_run = threads_ == 1 || chunks == 1 || nested;
  if (!inline_run) {
    // A second top-level submitter while a job is in flight falls back to
    // inline execution — same results, no queue contention.
    std::lock_guard<std::mutex> lk(mu_);
    if (job_ != nullptr) inline_run = true;
  }
  if (inline_run) {
    // Nested runs are already inside a timed chunk of the outer job, so
    // only top-level inline batches are accounted (into slot 0).
    std::uint64_t t0 = 0;
    if constexpr (telemetry::kEnabled)
      if (!nested) t0 = now_ns();
    for (int c = 0; c < chunks; ++c) {
      if (token && token->expired()) throw Cancelled("batch cancelled");
      maybe_chunk_delay(c);
      fn(c);
    }
    if constexpr (telemetry::kEnabled) {
      if (!nested) {
        slot_busy_ns_[0].fetch_add(now_ns() - t0, std::memory_order_relaxed);
        slot_chunks_[0].fetch_add(static_cast<std::uint64_t>(chunks),
                                  std::memory_order_relaxed);
        inline_jobs_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return;
  }

  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lk(mu_);
    gen = ++gen_;
    job_ = &fn;
    token_ = token;
    chunks_ = chunks;
    next_chunk_ = 0;
    claimed_ = 0;
    completed_ = 0;
    aborted_ = false;
    error_ = nullptr;
  }
  if constexpr (telemetry::kEnabled)
    jobs_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_all();
  drain(fn, gen, 0);  // the submitting thread participates

  std::exception_ptr err;
  bool aborted = false;
  {
    // An errored job abandons its unclaimed chunks, so completion means
    // "nothing left to claim and every claimed chunk finished" — not
    // completed_ == chunks_.
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] {
      return next_chunk_ >= chunks_ && completed_ == claimed_;
    });
    job_ = nullptr;
    token_ = nullptr;
    err = error_;
    error_ = nullptr;
    aborted = aborted_;
    aborted_ = false;
  }
  if (err) std::rethrow_exception(err);
  if (aborted) throw Cancelled("batch cancelled");
}

namespace {
std::mutex g_default_mu;
std::unique_ptr<ThreadPool> g_default_pool;
int g_default_threads = 0;  // 0 = effective concurrency
}  // namespace

ThreadPool& default_pool() {
  std::lock_guard<std::mutex> lk(g_default_mu);
  if (!g_default_pool)
    g_default_pool = std::make_unique<ThreadPool>(g_default_threads);
  return *g_default_pool;
}

void set_default_threads(int threads) {
  SEI_CHECK_MSG(threads >= 0,
                "thread count cannot be negative, got " << threads);
  std::lock_guard<std::mutex> lk(g_default_mu);
  SEI_CHECK_MSG(!ThreadPool::in_task(),
                "cannot reconfigure the default pool from inside a task");
  if (g_default_pool &&
      g_default_pool->thread_count() == ThreadPool::resolve_threads(threads)) {
    g_default_threads = threads;
    return;
  }
  g_default_pool.reset();  // joins any workers
  g_default_threads = threads;
}

int default_threads() {
  std::lock_guard<std::mutex> lk(g_default_mu);
  if (g_default_pool) return g_default_pool->thread_count();
  return ThreadPool::resolve_threads(g_default_threads);
}

void set_chunk_delay_hook(std::function<void(int)> hook) {
  g_chunk_delay_hook = std::move(hook);
  g_chunk_delay_hook_set.store(static_cast<bool>(g_chunk_delay_hook),
                               std::memory_order_release);
}

bool chunk_delay_hook_installed() {
  return g_chunk_delay_hook_set.load(std::memory_order_acquire);
}

}  // namespace sei::exec
