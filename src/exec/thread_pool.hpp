// Deterministic batch execution: a fixed-size thread pool plus chunked
// parallel_for / parallel_reduce helpers.
//
// The contract (docs/parallelism.md) is that every parallel loop in the
// library produces bit-identical results at any thread count:
//
//  * work is split into contiguous index chunks whose boundaries depend
//    only on (n, grain) — never on the thread count — so any per-chunk
//    state (scratch buffers, partial reductions) is the same whether one
//    thread or sixteen drain the chunk queue;
//  * chunks are claimed dynamically for load balancing, but results land in
//    per-index / per-chunk slots and reductions combine the chunk partials
//    in ascending chunk order on the calling thread;
//  * stochastic loop bodies derive their randomness from counter-based
//    streams (Rng::fork) keyed by the loop index, never from shared
//    mutable generators.
//
// Nested parallelism is safe: a parallel_* call issued from inside a pool
// task runs inline on the calling thread (same results, no deadlock), so
// e.g. a parallel campaign trial may call the parallel error_rate freely.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "exec/cancel.hpp"
#include "telemetry/config.hpp"  // header-only compile gate, no link dep

namespace sei::exec {

/// Per-thread work accounting (slot 0 = the submitting thread, slots
/// 1..N-1 = pool workers). busy_ns counts wall time inside chunk bodies.
struct WorkerStats {
  std::uint64_t busy_ns = 0;
  std::uint64_t chunks = 0;
};

/// Cumulative pool counters since construction / reset_stats(). Only
/// populated when telemetry is compiled in (SEI_TELEMETRY=ON); zeros
/// otherwise.
struct PoolStats {
  std::vector<WorkerStats> workers;
  std::uint64_t jobs = 0;         // batches distributed over the pool
  std::uint64_t inline_jobs = 0;  // batches run entirely on the submitter

  std::uint64_t busy_ns_total() const {
    std::uint64_t t = 0;
    for (const WorkerStats& w : workers) t += w.busy_ns;
    return t;
  }
  std::uint64_t chunks_total() const {
    std::uint64_t t = 0;
    for (const WorkerStats& w : workers) t += w.chunks;
    return t;
  }
};

/// Fixed pool of worker threads draining a queue of chunk indices. The
/// submitting thread participates in the work, so a 1-thread pool spawns no
/// workers and runs everything inline.
class ThreadPool {
 public:
  /// `threads` <= 0 selects effective_concurrency().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return threads_; }

  /// Invokes fn(chunk) for every chunk in [0, chunks), distributing chunks
  /// over the pool plus the calling thread; blocks until all complete and
  /// rethrows the first exception a chunk raised. Calls issued from inside
  /// a pool task (or when the pool has one thread) run inline.
  ///
  /// `token` (optional) makes the batch cancellable: once it expires, no
  /// further chunk is claimed (in-flight chunks finish), the unclaimed rest
  /// is abandoned, and run_chunks throws Cancelled. A batch whose every
  /// chunk completed before expiry returns normally.
  void run_chunks(int chunks, const std::function<void(int)>& fn,
                  const CancelToken* token = nullptr);

  /// True while the calling thread is executing a pool task.
  static bool in_task();

  /// `threads` resolved the way the constructor resolves it: positive
  /// values pass through, <= 0 selects effective_concurrency().
  static int resolve_threads(int threads);

  /// CPUs this process can actually use: hardware_concurrency clamped by
  /// the scheduler affinity mask and (on Linux) the cgroup v2 cpu.max
  /// quota. In a 1-core container this is 1 even when the host advertises
  /// 8 hardware threads — oversubscribing a quota only adds contention
  /// (see docs/observability.md for the bench_throughput case study).
  static int effective_concurrency();

  /// Per-thread busy/chunk counters since construction or reset_stats().
  PoolStats stats() const;
  void reset_stats();

 private:
  void worker_loop(int slot);
  /// Claims and runs chunks of job `gen` until its queue drains (or a newer
  /// job replaced it — the generation tag keeps a lagging thread from
  /// executing a later job's chunks with an earlier job's function).
  /// `slot` indexes the per-thread stats counters.
  void drain(const std::function<void(int)>& fn, std::uint64_t gen, int slot);

  int threads_;
  std::vector<std::thread> workers_;

  // Per-slot accounting (atomics: read by stats() while workers run).
  std::unique_ptr<std::atomic<std::uint64_t>[]> slot_busy_ns_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slot_chunks_;
  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> inline_jobs_{0};

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a job arrived / shutdown
  std::condition_variable done_cv_;  // submitter: all chunks completed
  const std::function<void(int)>* job_ = nullptr;  // guarded by mu_
  const CancelToken* token_ = nullptr;  // current job's token (guarded by mu_)
  std::uint64_t gen_ = 0;  // bumped per job publication
  int chunks_ = 0;
  int next_chunk_ = 0;
  int claimed_ = 0;    // chunks handed to a thread (stops growing on error)
  int completed_ = 0;  // claimed chunks that finished (even by throwing)
  bool aborted_ = false;      // token expired; unclaimed chunks abandoned
  std::exception_ptr error_;  // first failure of the current job
  bool stop_ = false;
};

/// Process-wide default pool used by the library's batch loops. Lazily
/// created on first use with the thread count from set_default_threads()
/// (initially 0 = all hardware threads).
ThreadPool& default_pool();

/// Sets the default pool's thread count (0 = hardware concurrency) and
/// tears down any existing default pool so the next use rebuilds it. Must
/// not race with parallel work in flight — call it between batches (benches
/// and tests call it at startup / between measurements).
void set_default_threads(int threads);

/// Thread count the default pool has (or would be created with).
int default_threads();

/// Chaos seam (docs/chaos.md): when installed, invoked with the chunk index
/// right before each chunk body runs — pooled workers and the inline path
/// alike. Injected stalls (sleeps) shift timing only: chunk boundaries and
/// result slots are data-determined, so the bit-identical contract above is
/// unaffected, which is exactly what makes worker stalls a safe chaos
/// ingredient. Install/clear only while no parallel batch is in flight;
/// nullptr clears. Unset cost: one relaxed atomic load per chunk.
void set_chunk_delay_hook(std::function<void(int chunk)> hook);

/// True when a chunk-delay hook is currently installed.
bool chunk_delay_hook_installed();

/// Images-per-chunk default for the evaluation loops: coarse enough to
/// amortize scratch-buffer construction, fine enough to load-balance.
inline constexpr int kEvalGrain = 8;

/// Runs fn(lo, hi) over the ceil(n/grain) contiguous ranges of [0, n).
/// Chunk boundaries depend only on (n, grain), so per-chunk state is
/// identical at every thread count. An expired `token` abandons the
/// unclaimed chunks and throws Cancelled.
template <typename Fn>
void parallel_for_chunks(int n, int grain, Fn&& fn, ThreadPool* pool = nullptr,
                         const CancelToken* token = nullptr) {
  if (n <= 0) return;
  SEI_CHECK(grain >= 1);
  const int chunks = (n + grain - 1) / grain;
  ThreadPool& p = pool ? *pool : default_pool();
  auto chunk_fn = [&](int c) {
    const int lo = c * grain;
    const int hi = lo + grain < n ? lo + grain : n;
    fn(lo, hi);
  };
  if (chunks == 1) {
    if (token && token->expired()) throw Cancelled("batch cancelled");
    chunk_fn(0);
    return;
  }
  p.run_chunks(chunks, chunk_fn, token);
}

/// Runs fn(i) for every i in [0, n).
template <typename Fn>
void parallel_for(int n, Fn&& fn, ThreadPool* pool = nullptr,
                  int grain = kEvalGrain, const CancelToken* token = nullptr) {
  parallel_for_chunks(
      n, grain,
      [&](int lo, int hi) {
        for (int i = lo; i < hi; ++i) fn(i);
      },
      pool, token);
}

/// Reduction: chunk_fn(lo, hi) -> T per chunk, then
/// init = combine(init, partial) in ascending chunk order on the calling
/// thread. Exact determinism at any thread count even for non-associative
/// combines (floating point), because the bracketing is fixed by grain.
template <typename T, typename ChunkFn, typename Combine = std::plus<T>>
T parallel_reduce(int n, int grain, T init, ChunkFn&& chunk_fn,
                  Combine combine = {}, ThreadPool* pool = nullptr,
                  const CancelToken* token = nullptr) {
  if (n <= 0) return init;
  SEI_CHECK(grain >= 1);
  const int chunks = (n + grain - 1) / grain;
  std::vector<T> partials(static_cast<std::size_t>(chunks));
  parallel_for_chunks(
      n, grain,
      [&](int lo, int hi) {
        partials[static_cast<std::size_t>(lo / grain)] = chunk_fn(lo, hi);
      },
      pool, token);
  for (const T& part : partials) init = combine(init, part);
  return init;
}

}  // namespace sei::exec
