// Cooperative cancellation and deadlines for batch work.
//
// A CancelToken is a thread-safe flag plus an optional steady-clock
// deadline. Producers (the serving runtime's request path, shutdown
// handlers) arm it; consumers (ThreadPool chunk claiming, the per-stage
// checks inside SeiNetwork::try_predict) poll expired() at natural
// boundaries and stop claiming new work. Cancellation is cooperative and
// cheap — one relaxed atomic load plus, only when a deadline is armed, one
// clock read — and never interrupts a chunk mid-flight, so partial results
// are simply discarded, keeping the determinism contract intact (a
// completed computation is bit-identical whether or not a token was
// attached).
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "common/result.hpp"

namespace sei::exec {

/// Thrown by the parallel helpers when a token expires mid-batch and the
/// remaining chunks were abandoned. Callers on the serving path convert it
/// to Error{kCancelled/kDeadlineExceeded}; everyone else treats it as an
/// ordinary failure.
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(const std::string& what) : std::runtime_error(what) {}
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  using Clock = std::chrono::steady_clock;

  /// Requests cancellation (sticky until reset()).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms an absolute deadline; expired() turns true once it passes.
  void set_deadline(Clock::time_point tp) {
    deadline_ns_.store(tp.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  void set_deadline_after(Clock::duration d) {
    set_deadline(Clock::now() + d);
  }
  void clear_deadline() { deadline_ns_.store(0, std::memory_order_relaxed); }

  /// Re-arms the token for a new unit of work (serving workers reuse one
  /// token per thread instead of allocating per request).
  void reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    clear_deadline();
  }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True once cancelled or past the armed deadline.
  bool expired() const {
    if (cancel_requested()) return true;
    const auto ns = deadline_ns_.load(std::memory_order_relaxed);
    return ns != 0 && Clock::now().time_since_epoch().count() >= ns;
  }

  /// Structured error describing why the token fired (explicit cancel wins
  /// over deadline when both hold).
  Error to_error() const {
    if (cancel_requested())
      return {ErrorCode::kCancelled, "work was cancelled"};
    return {ErrorCode::kDeadlineExceeded, "deadline exceeded"};
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<Clock::rep> deadline_ns_{0};  // 0 = no deadline
};

}  // namespace sei::exec
