#include "nn/relu.hpp"

namespace sei::nn {

Tensor ReLU::forward(const Tensor& input, bool train) {
  Tensor out = input;
  if (train) {
    mask_ = Tensor(input.shape());
    float* m = mask_.data();
    float* o = out.data();
    for (std::size_t i = 0; i < out.numel(); ++i) {
      const bool pos = o[i] > 0.0f;
      m[i] = pos ? 1.0f : 0.0f;
      if (!pos) o[i] = 0.0f;
    }
  } else {
    for (float& v : out.flat())
      if (v < 0.0f) v = 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  SEI_CHECK_MSG(!mask_.empty(), "relu: backward before forward");
  check_same_shape(grad_output, mask_, "relu backward");
  Tensor grad_in = grad_output;
  const float* m = mask_.data();
  float* g = grad_in.data();
  for (std::size_t i = 0; i < grad_in.numel(); ++i) g[i] *= m[i];
  return grad_in;
}

}  // namespace sei::nn
