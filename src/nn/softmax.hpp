// Softmax + cross-entropy loss head (kept outside the Layer stack because it
// needs labels). The fused backward (p − onehot)/N is numerically stable.
#pragma once

#include <cstdint>
#include <span>

#include "nn/tensor.hpp"

namespace sei::nn {

struct LossResult {
  double loss = 0.0;      // mean cross-entropy over the batch
  int correct = 0;        // argmax hits
};

class SoftmaxCrossEntropy {
 public:
  /// logits: [N × classes]; labels: N class indices.
  /// Fills `probs_` and returns loss/accuracy for the batch.
  LossResult forward(const Tensor& logits, std::span<const std::uint8_t> labels);

  /// Gradient w.r.t. logits of the *mean* loss.
  Tensor backward(std::span<const std::uint8_t> labels) const;

  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
};

/// Row-wise argmax of a [N × classes] tensor.
int argmax_row(const Tensor& logits, int row);

}  // namespace sei::nn
