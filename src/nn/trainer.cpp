#include "nn/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/timer.hpp"

namespace sei::nn {

EpochStats Trainer::fit(
    Network& net, const Tensor& images, std::span<const std::uint8_t> labels,
    const std::function<void(const EpochStats&)>& on_epoch) {
  const int n = images.dim(0);
  SEI_CHECK(labels.size() == static_cast<std::size_t>(n));
  SEI_CHECK(config_.batch_size >= 1 && config_.epochs >= 1);

  Rng rng(config_.seed);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  auto params = net.params();
  std::vector<Tensor> velocity;
  velocity.reserve(params.size());
  for (const auto& p : params) velocity.emplace_back(p.value->shape());

  SoftmaxCrossEntropy head;
  double lr = config_.learning_rate;
  EpochStats stats;

  const std::size_t per_image = images.numel() / static_cast<std::size_t>(n);
  std::vector<int> img_shape = images.shape();

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    Timer timer;
    rng.shuffle(order);
    double loss_sum = 0.0;
    int correct = 0, batches = 0;

    for (int begin = 0; begin < n; begin += config_.batch_size) {
      const int end = std::min(n, begin + config_.batch_size);
      const int bsz = end - begin;

      // Gather shuffled batch.
      std::vector<int> bshape = img_shape;
      bshape[0] = bsz;
      Tensor batch(bshape);
      std::vector<std::uint8_t> blabels(static_cast<std::size_t>(bsz));
      for (int i = 0; i < bsz; ++i) {
        const int src = order[static_cast<std::size_t>(begin + i)];
        std::copy_n(images.data() + static_cast<std::size_t>(src) * per_image,
                    per_image,
                    batch.data() + static_cast<std::size_t>(i) * per_image);
        blabels[static_cast<std::size_t>(i)] = labels[static_cast<std::size_t>(src)];
      }

      for (auto& p : params) p.grad->zero();

      Tensor logits = net.forward(batch, /*train=*/true);
      logits.reshape({bsz, static_cast<int>(logits.numel()) / bsz});
      const LossResult r = head.forward(logits, blabels);
      loss_sum += r.loss;
      correct += r.correct;
      ++batches;
      net.backward(head.backward(blabels));

      // Momentum SGD with decoupled weight decay on the weights only.
      for (std::size_t pi = 0; pi < params.size(); ++pi) {
        Tensor& v = velocity[pi];
        Tensor& w = *params[pi].value;
        const Tensor& g = *params[pi].grad;
        const bool is_bias = params[pi].name.ends_with(".bias");
        const float decay =
            is_bias ? 0.0f : static_cast<float>(config_.weight_decay);
        float* vp = v.data();
        float* wp = w.data();
        const float* gp = g.data();
        const auto mom = static_cast<float>(config_.momentum);
        const auto step = static_cast<float>(lr);
        for (std::size_t i = 0; i < w.numel(); ++i) {
          vp[i] = mom * vp[i] - step * (gp[i] + decay * wp[i]);
          wp[i] += vp[i];
        }
      }
    }

    stats.epoch = epoch + 1;
    stats.train_loss = loss_sum / std::max(1, batches);
    stats.train_error_pct = 100.0 * (1.0 - static_cast<double>(correct) / n);
    stats.seconds = timer.seconds();
    if (config_.verbose)
      std::printf("  epoch %d/%d  loss %.4f  train-err %.2f%%  (%.1fs)\n",
                  stats.epoch, config_.epochs, stats.train_loss,
                  stats.train_error_pct, stats.seconds);
    if (on_epoch) on_epoch(stats);
    lr *= config_.lr_decay;
  }
  return stats;
}

}  // namespace sei::nn
